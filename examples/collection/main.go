// Collection: a live data-collection campaign. An organization wants the
// distribution of a sensitive attribute across its user base. Each user's
// device randomizes the value locally with an OptRR-optimized matrix before
// anything is sent; the collector watches its running estimate converge and
// stops as soon as the confidence interval is tight enough — collecting no
// more data than necessary.
package main

import (
	"fmt"
	"log"

	"optrr"
)

func main() {
	// The sensitive attribute: 6 categories, skewed.
	prior := []float64{0.34, 0.26, 0.17, 0.11, 0.08, 0.04}
	const (
		delta        = 0.8  // worst-case posterior bound promised to users
		targetMargin = 0.01 // stop when every category is known to ±1%
	)

	// Pick the disguise matrix: the most private optimal matrix that can
	// still hit the target margin with at most 200k reports.
	fmt.Println("optimizing the disguise matrix...")
	res, err := optrr.Optimize(optrr.Problem{
		Prior:       prior,
		Records:     100000,
		Delta:       delta,
		Seed:        8,
		Generations: 2000,
	})
	if err != nil {
		log.Fatal(err)
	}
	m, ok := res.MatrixWithPrivacyAtLeast(0.55)
	if !ok {
		log.Fatal("no matrix with privacy >= 0.55")
	}
	ev, err := optrr.Evaluate(m, prior, 100000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matrix: privacy %.3f, worst-case posterior %.3f\n\n", ev.Privacy, ev.MaxPosterior)

	// The campaign: users report in waves; after each wave the collector
	// re-estimates and checks its margin of error.
	rng := optrr.NewRand(80)
	c := optrr.NewCollector(m)
	users := sample(prior, 400000, rng)

	const wave = 10000
	next := 0
	fmt.Println("   reports   margin(95%)   est[0]   est[1]   est[2]")
	for next < len(users) {
		end := next + wave
		if end > len(users) {
			end = len(users)
		}
		for _, v := range users[next:end] {
			resp, err := optrr.NewRespondent(m, v)
			if err != nil {
				log.Fatal(err)
			}
			if err := c.Ingest(resp.Report(rng)); err != nil {
				log.Fatal(err)
			}
		}
		next = end

		s, err := c.Snapshot(1.96)
		if err != nil {
			log.Fatal(err)
		}
		margin, err := c.MarginOfError(1.96)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %8d       %.4f    %.4f   %.4f   %.4f\n",
			s.Reports, margin, s.Estimate[0], s.Estimate[1], s.Estimate[2])
		if margin <= targetMargin {
			fmt.Printf("\ntarget margin ±%.2f reached after %d of %d users — stopping early.\n",
				targetMargin, s.Reports, len(users))
			break
		}
		if need, err := c.ReportsForMargin(targetMargin, 1.96); err == nil && s.Reports == wave {
			fmt.Printf("  (projected reports needed: ~%d)\n", need)
		}
	}

	s, err := c.Snapshot(1.96)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfinal estimate vs truth (never observed by the collector):")
	for k := range prior {
		fmt.Printf("  category %d: %.4f ± %.4f   (true %.4f)\n",
			k, s.Estimate[k], s.HalfWidth[k], prior[k])
	}
}

func sample(prior []float64, n int, rng *optrr.Rand) []int {
	cum := make([]float64, len(prior))
	s := 0.0
	for i, p := range prior {
		s += p
		cum[i] = s
	}
	out := make([]int, n)
	for i := range out {
		u := rng.Float64()
		out[i] = len(prior) - 1
		for k, c := range cum {
			if u <= c {
				out[i] = k
				break
			}
		}
	}
	return out
}
