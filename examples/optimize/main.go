// Optimize: run the full OptRR search for a skewed prior and compare the
// resulting Pareto front against the classic Warner scheme — the paper's
// central experiment (Section VI) as a library user would run it. The
// program then picks one matrix meeting a concrete privacy requirement and
// shows what it costs in utility versus the best Warner alternative.
package main

import (
	"fmt"
	"log"

	"optrr"
)

func main() {
	// A right-skewed prior over ten categories (e.g. discretized income).
	prior := []float64{0.28, 0.22, 0.15, 0.11, 0.08, 0.06, 0.04, 0.03, 0.02, 0.01}
	const (
		records = 10000
		delta   = 0.8 // no adversary may pin any record above 80% confidence
	)

	fmt.Println("searching for optimal RR matrices (this takes a few seconds)...")
	res, err := optrr.Optimize(optrr.Problem{
		Prior:       prior,
		Records:     records,
		Delta:       delta,
		Seed:        7,
		Generations: 3000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("found %d Pareto-optimal matrices (%d evaluations)\n",
		len(res.Front), res.Evaluations)
	fmt.Printf("privacy range: [%.3f, %.3f]\n",
		res.Front[0].Privacy, res.Front[len(res.Front)-1].Privacy)

	// Requirement: privacy of at least 0.55.
	const need = 0.55
	m, ok := res.MatrixWithPrivacyAtLeast(need)
	if !ok {
		log.Fatalf("no matrix reaches privacy %.2f", need)
	}
	ev, err := optrr.Evaluate(m, prior, records)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nOptRR matrix at privacy >= %.2f: privacy %.3f, MSE %.3e\n",
		need, ev.Privacy, ev.Utility)

	// The best Warner matrix with the same privacy and the same bound, by
	// sweeping its parameter like the paper does.
	bestWarner := -1.0
	var bestEv optrr.Evaluation
	for k := 0; k <= 1000; k++ {
		p := float64(k) / 1000
		w, err := optrr.Warner(len(prior), p)
		if err != nil {
			continue
		}
		mp, err := optrr.MaxPosterior(w, prior)
		if err != nil || mp > delta {
			continue
		}
		wev, err := optrr.Evaluate(w, prior, records)
		if err != nil {
			continue
		}
		if wev.Privacy >= need && (bestWarner < 0 || wev.Utility < bestEv.Utility) {
			bestWarner = p
			bestEv = wev
		}
	}
	if bestWarner < 0 {
		fmt.Println("no Warner matrix meets the requirement at this bound")
		return
	}
	fmt.Printf("best Warner (p=%.3f):            privacy %.3f, MSE %.3e\n",
		bestWarner, bestEv.Privacy, bestEv.Utility)
	fmt.Printf("\nOptRR reduces the reconstruction MSE by a factor of %.2f\n",
		bestEv.Utility/ev.Utility)
}
