// Quickstart: disguise a categorical data set with a randomized-response
// matrix, reconstruct its distribution, and measure the privacy/utility of
// the matrix used — the full pipeline of the paper's Section III in a
// minute of reading.
package main

import (
	"fmt"
	"log"

	"optrr"
)

func main() {
	// The original (private) data: 10,000 records over four categories,
	// e.g. answers to a sensitive multiple-choice survey question.
	prior := []float64{0.45, 0.30, 0.15, 0.10}
	rng := optrr.NewRand(42)
	records := sample(prior, 10000, rng)

	// A Warner disguise matrix: keep the true value with probability 0.7,
	// otherwise report one of the other categories uniformly.
	m, err := optrr.Warner(len(prior), 0.7)
	if err != nil {
		log.Fatal(err)
	}

	// Each respondent applies the matrix locally; only disguised values are
	// ever collected.
	disguised, err := m.Disguise(records, rng)
	if err != nil {
		log.Fatal(err)
	}
	changed := 0
	for i := range records {
		if disguised[i] != records[i] {
			changed++
		}
	}
	fmt.Printf("disguised %d records (%.1f%% changed)\n",
		len(records), 100*float64(changed)/float64(len(records)))

	// The collector reconstructs the aggregate distribution from the
	// disguised records alone (Theorem 1: unbiased MLE via inversion).
	estimate, err := m.EstimateInversion(disguised)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("category   true     estimated")
	for i := range prior {
		fmt.Printf("   %d       %.3f     %.3f\n", i, prior[i], estimate[i])
	}

	// How good was this trade-off? Privacy is what a Bayes-optimal
	// adversary cannot learn about individuals; utility is the MSE of the
	// reconstruction (smaller is better).
	ev, err := optrr.Evaluate(m, prior, len(records))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("privacy %.3f, utility (MSE) %.3e, worst-case posterior %.3f\n",
		ev.Privacy, ev.Utility, ev.MaxPosterior)
}

// sample draws n records from a probability vector.
func sample(prior []float64, n int, rng *optrr.Rand) []int {
	cum := make([]float64, len(prior))
	s := 0.0
	for i, p := range prior {
		s += p
		cum[i] = s
	}
	out := make([]int, n)
	for i := range out {
		u := rng.Float64()
		for k, c := range cum {
			if u <= c {
				out[i] = k
				break
			}
		}
	}
	return out
}
