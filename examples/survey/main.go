// Survey: Warner's original 1965 use-case. A researcher wants to estimate
// how many people have engaged in a sensitive behaviour. Each respondent
// secretly flips a biased coin: with probability p they answer truthfully,
// otherwise they answer the opposite. No individual answer is trustworthy —
// that is the point — yet the population rate is recoverable, and the
// program quantifies exactly how much an adversary could still infer.
package main

import (
	"fmt"
	"log"

	"optrr"
)

func main() {
	const (
		respondents = 50000
		trueRate    = 0.12 // 12% of the population has the sensitive trait
		truthProb   = 0.75 // answer truthfully with probability 0.75
	)
	rng := optrr.NewRand(1965)

	// Binary randomized response is the 2x2 Warner matrix.
	m, err := optrr.Warner(2, truthProb)
	if err != nil {
		log.Fatal(err)
	}

	// Ground truth (never leaves the respondents' heads).
	answers := make([]int, respondents)
	for i := range answers {
		if rng.Float64() < trueRate {
			answers[i] = 1
		}
	}

	// Each respondent randomizes locally; the researcher sees only this.
	reported, err := m.Disguise(answers, rng)
	if err != nil {
		log.Fatal(err)
	}
	yes := 0
	for _, a := range reported {
		yes += a
	}
	rawRate := float64(yes) / respondents
	fmt.Printf("raw 'yes' rate in reported answers: %.3f (inflated by the coin)\n", rawRate)

	// Reconstruct the true rate from the disguised answers.
	est, err := m.EstimateInversion(reported)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reconstructed sensitive rate:       %.3f (true %.3f)\n", est[1], trueRate)

	// What could the researcher (as adversary) infer about an individual?
	prior := []float64{1 - trueRate, trueRate}
	priv, err := optrr.Privacy(m, prior)
	if err != nil {
		log.Fatal(err)
	}
	mp, err := optrr.MaxPosterior(m, prior)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nadversary's best per-record accuracy: %.3f (privacy %.3f)\n", 1-priv, priv)
	fmt.Printf("worst-case posterior on any answer:   %.3f\n", mp)

	// What matters to a respondent: how sure can anyone be that they have
	// the sensitive trait after seeing their 'yes' report?
	// P(trait | reported yes) = P(yes|trait)·P(trait) / P(reported yes).
	pReportYes := truthProb*trueRate + (1-truthProb)*(1-trueRate)
	posteriorTrait := truthProb * trueRate / pReportYes
	fmt.Printf("\na reported 'yes' raises the belief in the sensitive trait from %.0f%% to only %.0f%%\n",
		trueRate*100, posteriorTrait*100)
	fmt.Println("— the respondent keeps plausible deniability.")
}
