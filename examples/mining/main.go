// Mining: the privacy-preserving data-mining workloads that motivate the
// paper, run end to end on disguised data only.
//
// Part 1 builds a decision tree from disguised multi-attribute records (the
// Du–Zhan scenario): each attribute — including the class label — is
// disguised with its own RR matrix, the joint distribution is reconstructed
// by multi-dimensional inversion, and an ID3 tree grown on that
// reconstruction is evaluated against the clean hold-out data.
//
// Part 2 mines association rules from disguised market baskets (the
// Rizvi–Haritsa scenario): every item flag is flipped independently, and
// itemset supports are reconstructed before running Apriori.
package main

import (
	"fmt"
	"log"

	"optrr"
)

func main() {
	decisionTree()
	fmt.Println()
	associationRules()
}

func decisionTree() {
	fmt.Println("=== decision tree on disguised records ===")
	rng := optrr.NewRand(3)

	// World: loan approval (class) depends on income bracket and existing
	// debt; a third attribute is noise.
	//   income ∈ {low, mid, high}, debt ∈ {none, some, heavy},
	//   noise ∈ {0, 1}, approved ∈ {no, yes}.
	records := make([][]int, 40000)
	for i := range records {
		income := rng.Intn(3)
		debt := rng.Intn(3)
		noise := rng.Intn(2)
		approved := 0
		if income == 2 || (income == 1 && debt == 0) {
			approved = 1
		}
		if rng.Float64() < 0.05 { // label noise
			approved = 1 - approved
		}
		records[i] = []int{income, debt, noise, approved}
	}

	// Disguise every attribute, the class included.
	var ms []*optrr.Matrix
	for _, spec := range []struct {
		n int
		p float64
	}{{3, 0.8}, {3, 0.8}, {2, 0.85}, {2, 0.85}} {
		m, err := optrr.Warner(spec.n, spec.p)
		if err != nil {
			log.Fatal(err)
		}
		ms = append(ms, m)
	}
	mr, err := optrr.NewMultiRR(ms...)
	if err != nil {
		log.Fatal(err)
	}
	disguised, err := mr.Disguise(records, rng)
	if err != nil {
		log.Fatal(err)
	}

	// Reconstruct the joint distribution and grow the tree on it.
	joint, err := mr.EstimateJoint(disguised)
	if err != nil {
		log.Fatal(err)
	}
	tree, err := optrr.BuildTree(mr, joint, 3, optrr.TreeConfig{})
	if err != nil {
		log.Fatal(err)
	}
	acc, err := tree.Accuracy(records)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tree trained on DISGUISED data classifies clean records at %.1f%% accuracy\n", 100*acc)
	fmt.Print(tree)
}

func associationRules() {
	fmt.Println("=== association rules from disguised baskets ===")
	rng := optrr.NewRand(4)

	// World: 6 items; bread ⇒ butter is planted (confidence ~0.85), plus a
	// popular independent item.
	const (
		bread = iota
		butter
		milk
		coffee
		tea
		salt
	)
	names := []string{"bread", "butter", "milk", "coffee", "tea", "salt"}
	baskets := make([][]int, 50000)
	for i := range baskets {
		b := make([]int, 6)
		if rng.Float64() < 0.55 {
			b[bread] = 1
		}
		pButter := 0.08
		if b[bread] == 1 {
			pButter = 0.85
		}
		if rng.Float64() < pButter {
			b[butter] = 1
		}
		if rng.Float64() < 0.5 {
			b[milk] = 1
		}
		for _, it := range []int{coffee, tea, salt} {
			if rng.Float64() < 0.15 {
				b[it] = 1
			}
		}
		baskets[i] = b
	}

	// Disguise each item flag independently (85% truthful bits).
	ms := make([]*optrr.Matrix, 6)
	for i := range ms {
		m, err := optrr.Warner(2, 0.85)
		if err != nil {
			log.Fatal(err)
		}
		ms[i] = m
	}
	mr, err := optrr.NewMultiRR(ms...)
	if err != nil {
		log.Fatal(err)
	}
	disguised, err := mr.Disguise(baskets, rng)
	if err != nil {
		log.Fatal(err)
	}

	miner, err := optrr.NewBasketMiner(ms, disguised)
	if err != nil {
		log.Fatal(err)
	}
	frequent, err := miner.FrequentItemsets(0.3, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("frequent itemsets (reconstructed support >= 0.30):")
	for _, f := range frequent {
		fmt.Printf("  %v support %.3f\n", itemNames(f.Items, names), f.Support)
	}
	rules, err := miner.Rules(frequent, 0.6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("rules (confidence >= 0.60):")
	for _, r := range rules {
		fmt.Printf("  %v => %v  support %.3f confidence %.3f\n",
			itemNames(r.Antecedent, names), itemNames(r.Consequent, names), r.Support, r.Confidence)
	}
}

func itemNames(items []int, names []string) []string {
	out := make([]string, len(items))
	for i, it := range items {
		out[i] = names[it]
	}
	return out
}
