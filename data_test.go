package optrr

import (
	"math"
	"strings"
	"testing"
)

func TestFacadeTableRoundTrip(t *testing.T) {
	attrs := []Attribute{
		{Name: "color", Categories: []string{"red", "green"}},
		{Name: "size", Categories: []string{"s", "m", "l"}},
	}
	tab, err := NewTable(attrs)
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Append([]int{0, 2}); err != nil {
		t.Fatal(err)
	}
	if err := tab.Append([]int{1, 0}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tab.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTableCSV(strings.NewReader(sb.String()), attrs)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 || back.Row(0)[1] != 2 {
		t.Fatalf("round trip failed: %v", back.Rows())
	}
}

func TestFacadeSyntheticTableAndIndependence(t *testing.T) {
	attrs := []Attribute{
		{Name: "a", Categories: []string{"0", "1", "2"}},
		{Name: "b", Categories: []string{"0", "1", "2"}},
	}
	// Strongly dependent joint: mass on the diagonal.
	joint := make([]float64, 9)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if i == j {
				joint[i*3+j] = 0.30
			} else {
				joint[i*3+j] = 0.10 / 6
			}
		}
	}
	rng := NewRand(19)
	tab, err := SyntheticTable(attrs, joint, 30000, rng)
	if err != nil {
		t.Fatal(err)
	}
	ms := make([]*Matrix, 2)
	for i := range ms {
		m, err := Warner(3, 0.8)
		if err != nil {
			t.Fatal(err)
		}
		ms[i] = m
	}
	mr, err := NewMultiRR(ms...)
	if err != nil {
		t.Fatal(err)
	}
	disguised, err := mr.Disguise(tab.Rows(), rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ChiSquareIndependence(mr, disguised, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Dependent(0.001) {
		t.Fatalf("diagonal dependence not detected through disguise: %+v", res)
	}
	if res.PValue < 0 || res.PValue > 1 || math.IsNaN(res.PValue) {
		t.Fatalf("p-value = %v", res.PValue)
	}
}
