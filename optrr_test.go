package optrr

import (
	"math"
	"testing"

	"optrr/internal/core"
)

func testProblem() Problem {
	return Problem{
		Prior:   []float64{0.35, 0.25, 0.2, 0.12, 0.08},
		Records: 5000,
		Delta:   0.8,
		Seed:    3,
		Advanced: &core.Config{
			PopulationSize: 16,
			ArchiveSize:    16,
			OmegaSize:      200,
			Generations:    80,
			Normalize:      true,
		},
	}
}

func TestOptimizeProducesSortedFront(t *testing.T) {
	res, err := Optimize(testProblem())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty front")
	}
	if len(res.Matrices()) != len(res.Front) {
		t.Fatal("matrices not aligned with front")
	}
	for i := 1; i < len(res.Front); i++ {
		if res.Front[i].Privacy < res.Front[i-1].Privacy {
			t.Fatal("front not sorted by privacy")
		}
	}
}

func TestOptimizeMatrixEvaluationsMatchFront(t *testing.T) {
	p := testProblem()
	res, err := Optimize(p)
	if err != nil {
		t.Fatal(err)
	}
	ms := res.Matrices()
	for i, m := range ms {
		priv, err := Privacy(m, p.Prior)
		if err != nil {
			t.Fatal(err)
		}
		util, err := Utility(m, p.Prior, p.Records)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(priv-res.Front[i].Privacy) > 1e-9 || math.Abs(util-res.Front[i].Utility) > 1e-12 {
			t.Fatalf("matrix %d does not reproduce its front point", i)
		}
	}
}

func TestOptimizeRespectsBound(t *testing.T) {
	p := testProblem()
	res, err := Optimize(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.Matrices() {
		mp, err := MaxPosterior(m, p.Prior)
		if err != nil {
			t.Fatal(err)
		}
		if mp > p.Delta+1e-9 {
			t.Fatalf("front matrix violates delta: %v", mp)
		}
	}
}

func TestMatrixWithPrivacyAtLeast(t *testing.T) {
	res, err := Optimize(testProblem())
	if err != nil {
		t.Fatal(err)
	}
	mid := res.Front[len(res.Front)/2].Privacy
	m, ok := res.MatrixWithPrivacyAtLeast(mid)
	if !ok || m == nil {
		t.Fatal("no matrix at a privacy level inside the front range")
	}
	priv, err := Privacy(m, testProblem().Prior)
	if err != nil {
		t.Fatal(err)
	}
	if priv < mid-1e-9 {
		t.Fatalf("returned matrix has privacy %v < requested %v", priv, mid)
	}
	if _, ok := res.MatrixWithPrivacyAtLeast(0.99); ok {
		t.Fatal("privacy 0.99 should be unreachable")
	}
}

func TestMatrixWithUtilityAtMost(t *testing.T) {
	res, err := Optimize(testProblem())
	if err != nil {
		t.Fatal(err)
	}
	mid := res.Front[len(res.Front)/2].Utility
	m, ok := res.MatrixWithUtilityAtMost(mid)
	if !ok || m == nil {
		t.Fatal("no matrix at a utility level inside the front range")
	}
	util, err := Utility(m, testProblem().Prior, testProblem().Records)
	if err != nil {
		t.Fatal(err)
	}
	if util > mid+1e-15 {
		t.Fatalf("returned matrix has utility %v > requested %v", util, mid)
	}
	if _, ok := res.MatrixWithUtilityAtMost(0); ok {
		t.Fatal("utility 0 should be unreachable")
	}
}

func TestOptimizeInfeasibleDelta(t *testing.T) {
	p := testProblem()
	p.Delta = 0.1
	if _, err := Optimize(p); err == nil {
		t.Fatal("delta below prior mode accepted")
	}
}

func TestOptimizeGenerationsOverride(t *testing.T) {
	p := testProblem()
	p.Generations = 10
	res, err := Optimize(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Generations != 10 {
		t.Fatalf("generations = %d, want 10", res.Generations)
	}
}

func TestSchemesRoundTrip(t *testing.T) {
	// The facade re-exports must behave like the internals.
	w, err := Warner(4, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	up, err := UniformPerturbation(4, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := FRAPP(4, 6)
	if err != nil {
		t.Fatal(err)
	}
	id := Identity(4)
	prior := []float64{0.4, 0.3, 0.2, 0.1}
	for _, m := range []*Matrix{w, up, fr, id} {
		if _, err := Evaluate(m, prior, 1000); err != nil {
			t.Fatal(err)
		}
	}
	priv, err := Privacy(id, prior)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(priv) > 1e-12 {
		t.Fatalf("identity privacy = %v, want 0", priv)
	}
}

func TestEmpiricalDistribution(t *testing.T) {
	p, err := EmpiricalDistribution(3, []int{0, 1, 1, 2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.0 / 6, 2.0 / 6, 3.0 / 6}
	for i := range p {
		if math.Abs(p[i]-want[i]) > 1e-12 {
			t.Fatalf("EmpiricalDistribution = %v", p)
		}
	}
	if _, err := EmpiricalDistribution(2, []int{0, 5}); err == nil {
		t.Fatal("out-of-range record accepted")
	}
}

func TestEndToEndDisguiseAndReconstruct(t *testing.T) {
	// The full user workflow: optimize, pick a matrix, disguise real
	// records, reconstruct the distribution.
	p := testProblem()
	res, err := Optimize(p)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := res.MatrixWithPrivacyAtLeast(res.Front[0].Privacy)
	if !ok {
		t.Fatal("no matrix")
	}
	rng := NewRand(9)
	records := make([]int, 20000)
	cum := make([]float64, len(p.Prior))
	s := 0.0
	for i, v := range p.Prior {
		s += v
		cum[i] = s
	}
	for i := range records {
		u := rng.Float64()
		for k, c := range cum {
			if u <= c {
				records[i] = k
				break
			}
		}
	}
	disguised, err := m.Disguise(records, rng)
	if err != nil {
		t.Fatal(err)
	}
	est, err := m.EstimateInversion(disguised)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Prior {
		if math.Abs(est[i]-p.Prior[i]) > 0.05 {
			t.Fatalf("reconstruction off at %d: %v vs %v", i, est[i], p.Prior[i])
		}
	}
}
