package optrr_test

import (
	"context"
	"errors"
	"testing"

	"optrr"
	"optrr/internal/core"
)

// TestOptimizeContextAlreadyCancelled: the public contract — a cancelled
// context returns promptly with a non-nil (empty-front) Result and an error
// wrapping context.Canceled.
func TestOptimizeContextAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := optrr.OptimizeContext(ctx, optrr.Problem{
		Prior:       []float64{0.4, 0.3, 0.2, 0.1},
		Records:     1000,
		Delta:       0.8,
		Seed:        1,
		Generations: 100,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapping context.Canceled", err)
	}
	if res == nil {
		t.Fatal("result is nil; want a partial (empty-front) result")
	}
	if len(res.Front) != 0 {
		t.Fatalf("front has %d points before any work", len(res.Front))
	}
}

// TestOptimizeContextMidRun cancels deterministically from a Progress
// callback a few generations in and checks the partial front is returned,
// sorted and aligned with usable matrices.
func TestOptimizeContextMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := core.DefaultConfig([]float64{0.4, 0.3, 0.2, 0.1}, 1000, 0.8)
	cfg.Generations = 1000
	cfg.PopulationSize = 12
	cfg.ArchiveSize = 12
	cfg.Workers = 1
	cfg.Progress = func(st core.Stats) {
		if st.Generation >= 4 {
			cancel()
		}
	}
	res, err := optrr.OptimizeContext(ctx, optrr.Problem{
		Prior:    []float64{0.4, 0.3, 0.2, 0.1},
		Records:  1000,
		Delta:    0.8,
		Seed:     1,
		Advanced: &cfg,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapping context.Canceled", err)
	}
	if res == nil || len(res.Front) == 0 {
		t.Fatal("cancelled run returned no best-so-far front")
	}
	if res.Generations >= 1000 {
		t.Fatalf("generations = %d; cancellation did not stop the run", res.Generations)
	}
	ms := res.Matrices()
	if len(ms) != len(res.Front) {
		t.Fatalf("front/matrices misaligned: %d vs %d", len(res.Front), len(ms))
	}
	for i := 1; i < len(res.Front); i++ {
		if res.Front[i].Privacy < res.Front[i-1].Privacy {
			t.Fatalf("partial front not sorted by privacy at %d", i)
		}
	}
	// The partial matrices are valid RR matrices the caller can deploy.
	for i, m := range ms {
		if err := m.Validate(); err != nil {
			t.Fatalf("matrix %d invalid: %v", i, err)
		}
	}
}

// TestOptimizeBackgroundUnaffected pins that Optimize still succeeds with no
// error under the refactor to OptimizeContext.
func TestOptimizeBackgroundUnaffected(t *testing.T) {
	res, err := optrr.Optimize(optrr.Problem{
		Prior:       []float64{0.5, 0.3, 0.2},
		Records:     1000,
		Delta:       0.8,
		Seed:        1,
		Generations: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty front")
	}
}
