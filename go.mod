module optrr

go 1.22
