package optrr

import (
	"optrr/internal/mining"
	"optrr/internal/rr"
)

// This file re-exports the privacy-preserving data-mining layer: the
// multi-dimensional randomized response of the paper's future-work section
// and the downstream consumers (decision trees, association rules, naive
// Bayes) that Sections I–II motivate.

// MultiRR disguises and reconstructs multi-attribute categorical data with
// one RR matrix per attribute.
type MultiRR = mining.MultiRR

// Tree is a decision tree trained on a reconstructed joint distribution.
type Tree = mining.Tree

// TreeConfig controls decision-tree growth.
type TreeConfig = mining.TreeConfig

// NaiveBayes is a classifier trained on disguised records.
type NaiveBayes = mining.NaiveBayes

// BasketMiner estimates itemset supports from disguised basket data.
type BasketMiner = mining.BasketMiner

// Itemset is a frequent itemset with its reconstructed support.
type Itemset = mining.Itemset

// Rule is an association rule with reconstructed support and confidence.
type Rule = mining.Rule

// NewMultiRR builds a multi-dimensional disguiser from per-attribute
// matrices.
func NewMultiRR(ms ...*Matrix) (*MultiRR, error) { return mining.NewMultiRR(ms...) }

// BuildTree grows an ID3 decision tree for classAttr from a (reconstructed)
// joint distribution over mr's schema.
func BuildTree(mr *MultiRR, joint []float64, classAttr int, cfg TreeConfig) (*Tree, error) {
	return mining.BuildTree(mr, joint, classAttr, cfg)
}

// TrainNaiveBayes reconstructs a naive-Bayes classifier from disguised
// records.
func TrainNaiveBayes(mr *MultiRR, disguised [][]int, classAttr int, alpha float64) (*NaiveBayes, error) {
	return mining.TrainNaiveBayes(mr, disguised, classAttr, alpha)
}

// NewBasketMiner wraps disguised binary baskets with their per-item RR
// matrices.
func NewBasketMiner(ms []*Matrix, disguised [][]int) (*BasketMiner, error) {
	return mining.NewBasketMiner(ms, disguised)
}

// ClipDistribution projects an inversion estimate onto the probability
// simplex (negative components zeroed, rest renormalized).
func ClipDistribution(p []float64) []float64 { return rr.Clip(p) }

// IndependenceResult reports a chi-square independence test run on
// disguised data.
type IndependenceResult = mining.IndependenceResult

// ChiSquareIndependence tests whether attributes attrA and attrB of the
// disguised records are independent, with the sample size adjusted for the
// disguise noise.
func ChiSquareIndependence(mr *MultiRR, disguised [][]int, attrA, attrB int) (IndependenceResult, error) {
	return mining.ChiSquareIndependence(mr, disguised, attrA, attrB)
}
