package optrr

import (
	"optrr/internal/collector"
	"optrr/internal/randx"
)

// This file re-exports the collection-campaign layer: local randomization at
// the respondent, incremental aggregation at the collector, and running
// reconstruction with confidence intervals.

// Collector accumulates disguised reports and answers distribution queries
// at any point during collection.
type Collector = collector.Collector

// CollectionSummary is a point-in-time view of a collection: the
// reconstruction and its confidence half-widths.
type CollectionSummary = collector.Summary

// Respondent holds one private value and submits disguised reports.
type Respondent = collector.Respondent

// SafeCollector is a Collector safe for concurrent ingestion and querying.
type SafeCollector = collector.SafeCollector

// ShardedCollector is a concurrency-safe collector that stripes counts
// across independently locked shards, for ingestion rates where a single
// mutex becomes the bottleneck. Queries are consistent points in time and
// match SafeCollector bit for bit on identical streams.
type ShardedCollector = collector.ShardedCollector

// NewCollector returns a collector for reports disguised with m. It is not
// safe for concurrent use; see NewSafeCollector.
func NewCollector(m *Matrix) *Collector { return collector.New(m) }

// NewSafeCollector returns a concurrency-safe collector for reports
// disguised with m.
func NewSafeCollector(m *Matrix) *SafeCollector { return collector.NewSafe(m) }

// NewShardedCollector returns a sharded collector for reports disguised
// with m, striped across the given number of shards (<= 0 picks a default
// sized to GOMAXPROCS).
func NewShardedCollector(m *Matrix, shards int) *ShardedCollector {
	return collector.NewSharded(m, shards)
}

// RestoreShardedCollector rebuilds a sharded collector from a snapshot
// produced by its MarshalJSON, for crash recovery of a running campaign.
func RestoreShardedCollector(data []byte, shards int) (*ShardedCollector, error) {
	return collector.RestoreSharded(data, shards)
}

// NewRespondent prepares a respondent holding the given private value.
func NewRespondent(m *Matrix, value int) (*Respondent, error) {
	return collector.NewRespondent(m, value)
}

// SimulateCollection runs a complete campaign: records values drawn from the
// prior, disguised with m, ingested into a fresh collector.
func SimulateCollection(m *Matrix, prior []float64, records int, rng *randx.Source) (*Collector, error) {
	return collector.Simulate(m, prior, records, rng)
}
