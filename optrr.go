// Package optrr is a Go implementation of OptRR (Huang & Du, ICDE 2008):
// optimal randomized-response schemes for privacy-preserving data mining.
//
// Randomized response (RR) disguises a categorical attribute by replacing
// each value c_i with c_j according to a column-stochastic matrix M with
// M[j][i] = P(report c_j | true value c_i). The data distribution remains
// recoverable from the disguised records, while individual values are
// protected. Two conflicting qualities measure an RR matrix:
//
//   - Privacy: 1 minus the accuracy of the Bayes-optimal (MAP) adversary
//     estimating individual records from their disguised values.
//   - Utility: the mean squared error of the reconstructed distribution
//     (smaller is better).
//
// OptRR searches for the Pareto-optimal set of RR matrices under a
// worst-case posterior bound max P(X|Y) ≤ δ using an evolutionary
// multi-objective optimizer (a customized SPEA2).
//
// # Quick start
//
//	prior := []float64{0.4, 0.3, 0.2, 0.1}
//	res, err := optrr.Optimize(optrr.Problem{
//		Prior:   prior,
//		Records: 10000,
//		Delta:   0.8,
//		Seed:    1,
//	})
//	// res.Front is the optimal privacy/utility trade-off curve;
//	// pick a matrix with at least the privacy you need:
//	m, ok := res.MatrixWithPrivacyAtLeast(0.5)
//
// Apply a matrix to data and reconstruct the distribution:
//
//	disguised, _ := m.Disguise(records, rng)
//	estimate, _ := m.EstimateInversion(disguised)
//
// The classic schemes (Warner, Uniform Perturbation, FRAPP) are available
// through Warner, UniformPerturbation and FRAPP for comparison; Theorem 2 of
// the paper (and this package's tests) shows all three generate the same
// one-parameter matrix family.
package optrr

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"optrr/internal/core"
	"optrr/internal/dataset"
	"optrr/internal/metrics"
	"optrr/internal/pareto"
	"optrr/internal/randx"
	"optrr/internal/rr"
)

// Matrix is a column-stochastic randomized-response matrix. See
// internal/rr for its methods: Disguise, EstimateInversion,
// EstimateIterative, DisguisedDistribution, Theta, N, Validate.
type Matrix = rr.Matrix

// IterativeOptions configures Matrix.EstimateIterative.
type IterativeOptions = rr.IterativeOptions

// Evaluation bundles the privacy and utility of a matrix under a prior.
type Evaluation = metrics.Evaluation

// Point is a position in objective space: the canonical (privacy, utility)
// pair plus any extra objectives configured on the run (see
// Problem.ExtraObjectives).
type Point = pareto.Point

// Rand is the deterministic random source used across the library.
type Rand = randx.Source

// NewRand returns a seeded deterministic random source.
func NewRand(seed uint64) *Rand { return randx.New(seed) }

// Warner returns the Warner-scheme matrix over n categories: diagonal p,
// off-diagonal (1−p)/(n−1).
func Warner(n int, p float64) (*Matrix, error) { return rr.Warner(n, p) }

// UniformPerturbation returns the UP-scheme matrix: retain with probability
// q, otherwise replace uniformly.
func UniformPerturbation(n int, q float64) (*Matrix, error) {
	return rr.UniformPerturbation(n, q)
}

// FRAPP returns the FRAPP-scheme matrix with parameter gamma ("λ" in the
// paper): diagonal λ/(λ+n−1).
func FRAPP(n int, lambda float64) (*Matrix, error) { return rr.FRAPP(n, lambda) }

// Identity returns the identity matrix (no disguise: best utility, zero
// privacy).
func Identity(n int) *Matrix { return rr.Identity(n) }

// Privacy returns the paper's privacy metric for m under the given prior:
// 1 minus the MAP adversary's expected accuracy. Larger is better.
func Privacy(m *Matrix, prior []float64) (float64, error) {
	return metrics.Privacy(m, prior)
}

// Utility returns the paper's utility metric: the average closed-form MSE of
// the inversion estimator over a data set of the given size. Smaller is
// better.
func Utility(m *Matrix, prior []float64, records int) (float64, error) {
	return metrics.Utility(m, prior, records)
}

// MaxPosterior returns the worst-case per-record estimation accuracy
// max P(X|Y), the quantity bounded by δ.
func MaxPosterior(m *Matrix, prior []float64) (float64, error) {
	return metrics.MaxPosterior(m, prior)
}

// Evaluate computes privacy, utility and the posterior bound in one call.
func Evaluate(m *Matrix, prior []float64, records int) (Evaluation, error) {
	return metrics.Evaluate(m, prior, records)
}

// EmpiricalDistribution returns the category frequencies of records over n
// categories — the MLE of the underlying distribution.
func EmpiricalDistribution(n int, records []int) ([]float64, error) {
	d, err := dataset.NewCategorical(n, records)
	if err != nil {
		return nil, err
	}
	return d.Distribution(), nil
}

// Problem describes one OptRR optimization task.
type Problem struct {
	// Prior is the category distribution of the original data. Estimate it
	// with EmpiricalDistribution if only raw records are available.
	Prior []float64
	// Records is the data-set size N entering the utility MSE.
	Records int
	// Delta is the worst-case posterior bound δ ∈ (0, 1]. It must be at
	// least the largest prior probability (Theorem 5).
	Delta float64
	// Seed makes the run reproducible.
	Seed uint64
	// Generations overrides the search budget; zero uses the default (500).
	// The paper's experiments use 20000.
	Generations int
	// ExtraObjectives names additional optimization axes from the objective
	// registry (e.g. "ldp-epsilon", "mutual-information", "worst-mse", or
	// anything added with RegisterObjective; aliases like "ldp" and "mi"
	// resolve). The search then returns a k-dimensional front, with the
	// extra values carried on each Point and readable by name through
	// Result.ObjectiveValues. Empty keeps the paper's two-objective search.
	ExtraObjectives []string
	// Recorder, if non-nil, receives the optimizer's structured run-trace
	// events (optimizer.start / optimizer.generation / optimizer.done); see
	// NewJSONLRecorder. Nil disables tracing at zero cost.
	Recorder Recorder
	// Metrics, if non-nil, receives live optimizer counters and gauges,
	// suitable for serving with ServeDebug while the search runs.
	Metrics *Metrics
	// Advanced exposes every tuning knob of the optimizer. If non-nil, its
	// Prior/Records/Delta/Seed/Generations are overwritten by the fields
	// above (Recorder/Metrics too, when set here).
	Advanced *core.Config
}

// Result is the outcome of Optimize: the Pareto-optimal set of RR matrices.
type Result struct {
	// Front lists the optimal trade-off points, ascending in privacy.
	Front []Point
	// matrices[i] corresponds to Front[i].
	matrices []*Matrix
	// objectives are the extra axes the run was configured with; Front[i]
	// carries their canonical values beyond the privacy/utility pair.
	objectives []metrics.Objective
	// Generations and Evaluations report the search effort spent.
	Generations int
	Evaluations int
}

// Matrices returns the optimal matrices, index-aligned with Front.
func (r *Result) Matrices() []*Matrix {
	out := make([]*Matrix, len(r.matrices))
	copy(out, r.matrices)
	return out
}

// MatrixWithPrivacyAtLeast returns the matrix with the best utility among
// those offering at least the requested privacy, or ok=false if the front
// does not reach that level.
func (r *Result) MatrixWithPrivacyAtLeast(privacy float64) (*Matrix, bool) {
	best := -1
	for i, p := range r.Front {
		if p.Privacy >= privacy && (best == -1 || p.Utility < r.Front[best].Utility) {
			best = i
		}
	}
	if best == -1 {
		return nil, false
	}
	return r.matrices[best], true
}

// MatrixWithUtilityAtMost returns the matrix with the best privacy among
// those with utility (MSE) at most the requested level, or ok=false if none
// qualifies.
func (r *Result) MatrixWithUtilityAtMost(utility float64) (*Matrix, bool) {
	best := -1
	for i, p := range r.Front {
		if p.Utility <= utility && (best == -1 || p.Privacy > r.Front[best].Privacy) {
			best = i
		}
	}
	if best == -1 {
		return nil, false
	}
	return r.matrices[best], true
}

// Optimize runs the OptRR search and returns the Pareto-optimal matrix set.
func Optimize(p Problem) (*Result, error) {
	return OptimizeContext(context.Background(), p)
}

// OptimizeContext runs the OptRR search under a context: cancellation or a
// deadline stops the search at the next generation boundary. When the
// context ends a run early, the returned Result is non-nil and holds the
// best front found so far, and the error wraps ctx.Err() — so callers can
// serve a partial trade-off curve after a timeout:
//
//	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
//	defer cancel()
//	res, err := optrr.OptimizeContext(ctx, problem)
//	if res != nil { /* res.Front is usable even when err != nil */ }
//
// An already-cancelled context returns promptly with an empty front and an
// error wrapping context.Canceled. Any other error returns a nil Result, as
// with Optimize.
func OptimizeContext(ctx context.Context, p Problem) (*Result, error) {
	var cfg core.Config
	if p.Advanced != nil {
		cfg = *p.Advanced
	} else {
		cfg = core.DefaultConfig(p.Prior, p.Records, p.Delta)
	}
	cfg.Prior = p.Prior
	cfg.Records = p.Records
	cfg.Delta = p.Delta
	cfg.Seed = p.Seed
	cfg.Context = ctx
	if p.Generations != 0 {
		cfg.Generations = p.Generations
	}
	if p.Recorder != nil {
		cfg.Recorder = p.Recorder
	}
	if p.Metrics != nil {
		cfg.Metrics = p.Metrics
	}
	if cfg.OmegaSize == 0 && p.Advanced == nil {
		cfg.OmegaSize = 1000
	}
	if len(p.ExtraObjectives) > 0 {
		objs, err := resolveObjectives(p.ExtraObjectives)
		if err != nil {
			return nil, err
		}
		cfg.Objectives = objs
	}
	opt, err := core.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("optrr: %w", err)
	}
	res, runErr := opt.Run()
	if runErr != nil && !errors.Is(runErr, context.Canceled) && !errors.Is(runErr, context.DeadlineExceeded) {
		// A real failure, not a cancellation: nothing useful to return.
		return nil, fmt.Errorf("optrr: %w", runErr)
	}
	ms, err := res.Matrices()
	if err != nil {
		return nil, fmt.Errorf("optrr: %w", err)
	}
	out := &Result{
		Front:       make([]Point, len(res.Front)),
		matrices:    ms,
		objectives:  cfg.Objectives,
		Generations: res.Generations,
		Evaluations: res.Evaluations,
	}
	for i, ind := range res.Front {
		out.Front[i] = ind.Point()
	}
	// Result rows sorted by ascending privacy, matrices aligned.
	order := make([]int, len(out.Front))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		pa, pb := out.Front[order[a]], out.Front[order[b]]
		if pa.Privacy != pb.Privacy {
			return pa.Privacy < pb.Privacy
		}
		if pa.Utility != pb.Utility {
			return pa.Utility < pb.Utility
		}
		// Extra objectives break remaining ties lexicographically so
		// k-dim result ordering is deterministic.
		for t := 2; t < pa.Dim() && t < pb.Dim(); t++ {
			if pa.At(t) != pb.At(t) {
				return pa.At(t) < pb.At(t)
			}
		}
		return false
	})
	sortedFront := make([]Point, len(order))
	sortedMats := make([]*Matrix, len(order))
	for k, i := range order {
		sortedFront[k] = out.Front[i]
		sortedMats[k] = out.matrices[i]
	}
	out.Front = sortedFront
	out.matrices = sortedMats
	if runErr != nil {
		return out, fmt.Errorf("optrr: %w", runErr)
	}
	return out, nil
}
