package optrr

import (
	"optrr/internal/collector"
	"optrr/internal/mining"
	"optrr/internal/rr"
	"optrr/internal/sketch"
)

// This file re-exports the scheme abstraction and the count-mean-sketch
// layer: disguise schemes whose report space is decoupled from the domain
// size, the O(k·m) collector that aggregates them, and heavy-hitter
// discovery over huge categorical domains.

// Scheme is a randomized-response disguise scheme: a domain, a report
// space, per-record and batch disguising, and debiased frequency
// estimation. *Matrix implements it (dense, report space = domain), as does
// the count-mean sketch (report space = hashes × hash range, independent of
// the domain).
type Scheme = rr.Scheme

// SketchScheme is the count-mean-sketch scheme: values hash into a small
// range, the hashed cell is disguised through an inner RR matrix, and
// frequency estimates are debiased for both the disguise and hash
// collisions.
type SketchScheme = sketch.CMSScheme

// SketchCollector aggregates sketch reports in memory proportional to the
// report space — not the domain — and answers point queries and
// heavy-hitter scans.
type SketchCollector = collector.SketchCollector

// SketchHeavyHitter is one frequent category found by a SketchCollector
// scan: its original-domain index and debiased frequency estimate.
type SketchHeavyHitter = collector.HeavyHitter

// FrequencyEstimator answers debiased per-category frequency queries; the
// SketchCollector implements it.
type FrequencyEstimator = mining.FrequencyEstimator

// Frequent is one heavy hitter discovered by HeavyHitters or TopK.
type Frequent = mining.Frequent

// NewSketchScheme builds a count-mean-sketch scheme over the given domain:
// hashes pairwise-independent hash functions into hashRange cells, each
// disguised through the inner matrix (which must be hashRange×hashRange and
// invertible).
func NewSketchScheme(domain, hashes, hashRange int, inner *Matrix, hashSeed uint64) (*SketchScheme, error) {
	return sketch.New(domain, hashes, hashRange, inner, hashSeed)
}

// NewSketchSchemeKRR is NewSketchScheme with the closed-form ε-LDP k-RR
// inner matrix (constant diagonal at e^ε/(e^ε+hashRange−1)).
func NewSketchSchemeKRR(domain, hashes, hashRange int, epsilon float64, hashSeed uint64) (*SketchScheme, error) {
	return sketch.NewKRR(domain, hashes, hashRange, epsilon, hashSeed)
}

// NewSketchCollector returns a collector for reports disguised with the
// given scheme, striped across shards (<= 0 picks a GOMAXPROCS default).
func NewSketchCollector(scheme Scheme, shards int) *SketchCollector {
	return collector.NewSketch(scheme, shards)
}

// RestoreSketchCollector rebuilds a sketch collector from a snapshot
// produced by its MarshalJSON, for crash recovery of a running campaign.
func RestoreSketchCollector(data []byte, shards int) (*SketchCollector, error) {
	return collector.RestoreSketch(data, shards)
}

// HeavyHitters scans the estimator's domain in bounded chunks and returns
// every category whose estimated frequency is at least threshold, sorted by
// estimate descending.
func HeavyHitters(est FrequencyEstimator, threshold float64) ([]Frequent, error) {
	return mining.HeavyHitters(est, threshold)
}

// TopK returns the k categories with the largest estimated frequencies,
// sorted descending.
func TopK(est FrequencyEstimator, k int) ([]Frequent, error) {
	return mining.TopK(est, k)
}

// MarshalScheme wraps a scheme in its kind-tagged JSON envelope, the wire
// form servers and snapshots carry.
func MarshalScheme(s Scheme) ([]byte, error) { return rr.MarshalScheme(s) }

// UnmarshalScheme decodes a kind-tagged scheme envelope produced by
// MarshalScheme.
func UnmarshalScheme(data []byte) (Scheme, error) { return rr.UnmarshalScheme(data) }

// SchemeVersion returns a scheme's wire fingerprint: equal exactly when the
// envelopes are byte-identical. Servers use it as the /v1/scheme ETag and
// collectors refuse to merge across differing versions.
func SchemeVersion(s Scheme) (string, error) { return rr.SchemeVersion(s) }
