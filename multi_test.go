package optrr

import (
	"math"
	"testing"
)

func testMultiProblem() MultiProblem {
	return MultiProblem{
		Joint:       []float64{0.25, 0.05, 0.10, 0.15, 0.05, 0.40},
		Sizes:       []int{3, 2},
		Records:     5000,
		Delta:       0.85,
		Seed:        3,
		Generations: 50,
	}
}

func TestOptimizeMultiFacade(t *testing.T) {
	p := testMultiProblem()
	res, err := OptimizeMulti(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 || len(res.Tuples()) != len(res.Front) {
		t.Fatalf("front %d, tuples %d", len(res.Front), len(res.Tuples()))
	}
	for i := 1; i < len(res.Front); i++ {
		if res.Front[i].Privacy < res.Front[i-1].Privacy {
			t.Fatal("multi front not sorted")
		}
	}
	// Tuple alignment: re-evaluating tuple i reproduces Front[i].
	for i, tuple := range res.Tuples() {
		priv, err := JointPrivacy(tuple, p.Joint)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(priv-res.Front[i].Privacy) > 1e-9 {
			t.Fatalf("tuple %d misaligned: privacy %v vs front %v", i, priv, res.Front[i].Privacy)
		}
		mp, err := JointMaxPosterior(tuple, p.Joint)
		if err != nil {
			t.Fatal(err)
		}
		if mp > p.Delta+1e-9 {
			t.Fatalf("tuple %d violates the record-level bound: %v", i, mp)
		}
	}
}

// TestOptimizeMultiWorkersFacade pins the facade-level determinism contract:
// the same problem at different Workers settings yields identical fronts and
// tuples.
func TestOptimizeMultiWorkersFacade(t *testing.T) {
	p := testMultiProblem()
	p.Generations = 20
	p.Workers = 1
	want, err := OptimizeMulti(p)
	if err != nil {
		t.Fatal(err)
	}
	p.Workers = 4
	got, err := OptimizeMulti(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Front) != len(want.Front) || got.Evaluations != want.Evaluations {
		t.Fatalf("front %d evals %d, want %d/%d", len(got.Front), got.Evaluations, len(want.Front), want.Evaluations)
	}
	for i := range want.Front {
		if got.Front[i] != want.Front[i] {
			t.Fatalf("front[%d] = %+v, want %+v", i, got.Front[i], want.Front[i])
		}
		for d, m := range want.Tuples()[i] {
			if !got.Tuples()[i][d].Equal(m, 0) {
				t.Fatalf("tuple %d attribute %d differs across worker counts", i, d)
			}
		}
	}
}

// TestMultiBatchFacadeRoundTrip runs the batched pipeline end to end:
// disguise with DisguiseMultiBatch, estimate with EstimateJointInversion,
// and land near the true joint.
func TestMultiBatchFacadeRoundTrip(t *testing.T) {
	m1, err := Warner(3, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Warner(2, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	ms := []*Matrix{m1, m2}
	joint := []float64{0.25, 0.05, 0.10, 0.15, 0.05, 0.40}
	rng := NewRand(13)
	const total = 200000
	recs := make([][]int, total)
	for k := range recs {
		u := rng.Float64()
		idx := 0
		for acc := 0.0; idx < len(joint)-1; idx++ {
			acc += joint[idx]
			if u < acc {
				break
			}
		}
		recs[k] = []int{idx / 2, idx % 2}
	}
	disguised, err := DisguiseMultiBatch(ms, recs, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	again, err := DisguiseMultiBatch(ms, recs, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	for k := range disguised {
		for d := range disguised[k] {
			if disguised[k][d] != again[k][d] {
				t.Fatalf("record %d attr %d differs across worker counts", k, d)
			}
		}
	}
	est, err := EstimateJointInversion(ms, disguised)
	if err != nil {
		t.Fatal(err)
	}
	for i := range joint {
		if math.Abs(est[i]-joint[i]) > 0.02 {
			t.Fatalf("cell %d: estimate %v, truth %v", i, est[i], joint[i])
		}
	}
}

func TestTupleWithPrivacyAtLeast(t *testing.T) {
	p := testMultiProblem()
	res, err := OptimizeMulti(p)
	if err != nil {
		t.Fatal(err)
	}
	mid := res.Front[len(res.Front)/2].Privacy
	tuple, ok := res.TupleWithPrivacyAtLeast(mid)
	if !ok || len(tuple) != 2 {
		t.Fatalf("no tuple at privacy %v", mid)
	}
	if _, ok := res.TupleWithPrivacyAtLeast(0.999); ok {
		t.Fatal("impossible privacy satisfied")
	}
}

func TestOptimizeMultiInfeasible(t *testing.T) {
	p := testMultiProblem()
	p.Delta = 0.1 // below the joint prior mode 0.40
	if _, err := OptimizeMulti(p); err == nil {
		t.Fatal("delta below joint mode accepted")
	}
}

func TestJointMetricsFacade(t *testing.T) {
	m1, err := Warner(3, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Warner(2, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	joint := []float64{0.25, 0.05, 0.10, 0.15, 0.05, 0.40}
	priv, err := JointPrivacy([]*Matrix{m1, m2}, joint)
	if err != nil {
		t.Fatal(err)
	}
	if priv <= 0 || priv >= 1 {
		t.Fatalf("joint privacy = %v", priv)
	}
	util, err := JointUtility([]*Matrix{m1, m2}, joint, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if util <= 0 {
		t.Fatalf("joint utility = %v", util)
	}
}

func TestConfidenceIntervalsCoverTruth(t *testing.T) {
	// Empirical coverage check: 95% intervals from Theorem 6 variances must
	// cover the true probabilities in roughly 95% of trials.
	prior := []float64{0.4, 0.3, 0.2, 0.1}
	m, err := Warner(4, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	rng := NewRand(31)
	const (
		records = 4000
		trials  = 300
	)
	covered, total := 0, 0
	for trial := 0; trial < trials; trial++ {
		recs := make([]int, records)
		cum := []float64{0.4, 0.7, 0.9, 1.0}
		for i := range recs {
			u := rng.Float64()
			for k, c := range cum {
				if u <= c {
					recs[i] = k
					break
				}
			}
		}
		disguised, err := m.Disguise(recs, rng)
		if err != nil {
			t.Fatal(err)
		}
		est, err := m.EstimateInversion(disguised)
		if err != nil {
			t.Fatal(err)
		}
		half, err := ConfidenceIntervals(m, est, records, 1.96)
		if err != nil {
			t.Fatal(err)
		}
		for k := range prior {
			total++
			if est[k]-half[k] <= prior[k] && prior[k] <= est[k]+half[k] {
				covered++
			}
		}
	}
	rate := float64(covered) / float64(total)
	if rate < 0.90 || rate > 0.99 {
		t.Fatalf("95%% CI empirical coverage = %v", rate)
	}
}

func TestConfidenceIntervalsValidation(t *testing.T) {
	m, err := Warner(3, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ConfidenceIntervals(m, []float64{0.5, 0.3, 0.2}, 100, 0); err == nil {
		t.Fatal("z = 0 accepted")
	}
	if _, err := ConfidenceIntervals(m, []float64{0.5, 0.3, 0.2}, 0, 1.96); err == nil {
		t.Fatal("records = 0 accepted")
	}
}
