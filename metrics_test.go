package optrr

import (
	"math"
	"testing"
)

func TestFacadePrivacyWithGain(t *testing.T) {
	prior := []float64{0.4, 0.3, 0.2, 0.1}
	id := Identity(4)
	p, err := PrivacyWithGain(id, prior, ZeroOneGain)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p) > 1e-9 {
		t.Fatalf("identity gain-privacy = %v, want 0", p)
	}
	p, err = PrivacyWithGain(id, prior, OrdinalGain(4))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p) > 1e-9 {
		t.Fatalf("identity ordinal privacy = %v, want 0", p)
	}
}

func TestFacadeBreachesPrivacy(t *testing.T) {
	prior := []float64{0.9, 0.1}
	x, y, err := BreachesPrivacy(Identity(2), prior, 0.2, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if x != 1 || y != 1 {
		t.Fatalf("breach = (%d, %d), want (1, 1)", x, y)
	}
}

func TestFacadeInformationMetrics(t *testing.T) {
	prior := []float64{0.5, 0.3, 0.2}
	m, err := Warner(3, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	mi, err := MutualInformation(m, prior)
	if err != nil {
		t.Fatal(err)
	}
	leak, err := NormalizedLeakage(m, prior)
	if err != nil {
		t.Fatal(err)
	}
	if mi <= 0 || leak <= 0 || leak >= 1 {
		t.Fatalf("MI = %v, leakage = %v", mi, leak)
	}
}

func TestFacadeCompose(t *testing.T) {
	a, err := Warner(3, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compose(a, a)
	if err != nil {
		t.Fatal(err)
	}
	prior := []float64{0.5, 0.3, 0.2}
	pSingle, err := Privacy(a, prior)
	if err != nil {
		t.Fatal(err)
	}
	pDouble, err := Privacy(c, prior)
	if err != nil {
		t.Fatal(err)
	}
	if pDouble < pSingle-1e-12 {
		t.Fatalf("double disguise privacy %v below single %v", pDouble, pSingle)
	}
}
