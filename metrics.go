package optrr

import (
	"optrr/internal/metrics"
	"optrr/internal/rr"
)

// This file re-exports the extended privacy-analysis toolbox: generalized
// Bayes-adversary privacy under arbitrary gain functions (the full
// generality of the paper's Section IV-A), privacy-breach detection, and
// information-theoretic leakage.

// Gain scores an adversary's estimate against the true value; larger is
// better for the adversary. See ZeroOneGain and OrdinalGain.
type Gain = metrics.Gain

// ZeroOneGain is the paper's accuracy function (Equation 6): 1 for an exact
// hit, 0 otherwise.
func ZeroOneGain(estimate, truth int) float64 { return metrics.ZeroOneGain(estimate, truth) }

// OrdinalGain returns a gain for ordinal domains where a near miss still
// leaks information: 1 − |x̂−x|/(n−1).
func OrdinalGain(n int) Gain { return metrics.OrdinalGain(n) }

// PrivacyWithGain generalizes the paper's privacy metric to an arbitrary
// gain function, normalized so 1 means "observing the disguised value does
// not help the adversary at all" and 0 means full disclosure.
func PrivacyWithGain(m *Matrix, prior []float64, gain Gain) (float64, error) {
	return metrics.PrivacyWithGain(m, prior, gain)
}

// BreachesPrivacy reports whether m admits a ρ1-to-ρ2 privacy breach: a
// value with prior probability below rho1 whose posterior after some
// observation exceeds rho2. x is -1 when no breach exists.
func BreachesPrivacy(m *Matrix, prior []float64, rho1, rho2 float64) (x, y int, err error) {
	return metrics.BreachesPrivacy(m, prior, rho1, rho2)
}

// MutualInformation returns I(X; Y) in bits between the original and
// disguised values.
func MutualInformation(m *Matrix, prior []float64) (float64, error) {
	return metrics.MutualInformation(m, prior)
}

// NormalizedLeakage returns I(X;Y)/H(X): the fraction of the original
// value's uncertainty removed by observing its disguised value.
func NormalizedLeakage(m *Matrix, prior []float64) (float64, error) {
	return metrics.NormalizedLeakage(m, prior)
}

// Compose returns the matrix equivalent to disguising with inner first and
// outer second. Composition never leaks more than either stage (data
// processing inequality).
func Compose(outer, inner *Matrix) (*Matrix, error) { return rr.Compose(outer, inner) }

// LocalDPEpsilon returns the tightest ε-local-differential-privacy level m
// satisfies — a prior-free privacy guarantee on the modern LDP scale.
// Returns +Inf for matrices with discriminating zero entries (e.g. identity)
// and 0 for the totally random matrix.
func LocalDPEpsilon(m *Matrix) float64 { return metrics.LocalDPEpsilon(m) }

// EpsilonToWarnerP returns the Warner diagonal whose matrix satisfies
// exactly ε-LDP over n categories (the k-randomized-response mechanism):
// p = e^ε / (e^ε + n − 1).
func EpsilonToWarnerP(n int, epsilon float64) float64 {
	return metrics.EpsilonToWarnerP(n, epsilon)
}

// PrivacyReport is the one-call report card for a matrix: every privacy view
// (Equation 8, ordinal, worst-case posterior, ε-LDP, mutual information)
// alongside the utility MSE.
type PrivacyReport = metrics.PrivacyReport

// Report computes the full privacy report card of m under the prior.
func Report(m *Matrix, prior []float64, records int) (PrivacyReport, error) {
	return metrics.Report(m, prior, records)
}
