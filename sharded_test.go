package optrr_test

import (
	"encoding/json"
	"sync"
	"testing"

	"optrr"
	"optrr/internal/randx"
)

// TestShardedCollectorEndToEnd drives the root-package sharded API through a
// small campaign: concurrent respondents report into a ShardedCollector, the
// collector is checkpointed to JSON mid-campaign, restored, and finishes
// identically.
func TestShardedCollectorEndToEnd(t *testing.T) {
	m, err := optrr.Warner(4, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	c := optrr.NewShardedCollector(m, 4)

	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := randx.New(seed)
			resp, err := optrr.NewRespondent(m, int(seed)%4)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < perWorker; i++ {
				if err := c.Ingest(resp.Report(rng)); err != nil {
					t.Error(err)
					return
				}
			}
		}(uint64(w + 1))
	}
	wg.Wait()

	if c.Count() != workers*perWorker {
		t.Fatalf("count = %d, want %d", c.Count(), workers*perWorker)
	}
	sum, err := c.Snapshot(1.96)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, v := range sum.Estimate {
		total += v
	}
	if total < 0.999 || total > 1.001 {
		t.Fatalf("estimate sums to %v", total)
	}

	// Checkpoint, restore onto a different shard count, compare.
	blob, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := optrr.RestoreShardedCollector(blob, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.Snapshot(1.96)
	if err != nil {
		t.Fatal(err)
	}
	for k := range sum.Estimate {
		if got.Estimate[k] != sum.Estimate[k] {
			t.Fatalf("restored estimate[%d] = %v, want %v", k, got.Estimate[k], sum.Estimate[k])
		}
	}
}
