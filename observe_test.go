package optrr

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

func smallProblem() Problem {
	return Problem{
		Prior:       []float64{0.4, 0.3, 0.2, 0.1},
		Records:     1000,
		Delta:       0.8,
		Seed:        3,
		Generations: 5,
	}
}

// TestOptimizeWritesParseableJSONLTrace drives the public API the way
// `optrr -trace run.jsonl` does and checks the trace parses line by line
// with the documented envelope.
func TestOptimizeWritesParseableJSONLTrace(t *testing.T) {
	var buf bytes.Buffer
	rec := NewJSONLRecorder(&buf)
	p := smallProblem()
	p.Recorder = rec
	if _, err := Optimize(p); err != nil {
		t.Fatal(err)
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}

	// One start event, a generation + convergence pair per generation, one
	// done event.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2*p.Generations+2 {
		t.Fatalf("got %d trace lines, want %d", len(lines), 2*p.Generations+2)
	}
	var names []string
	for i, line := range lines {
		var parsed map[string]any
		if err := json.Unmarshal([]byte(line), &parsed); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", i, err, line)
		}
		for _, key := range []string{"ts", "seq", "event"} {
			if _, ok := parsed[key]; !ok {
				t.Fatalf("line %d missing envelope key %q: %s", i, key, line)
			}
		}
		if parsed["seq"] != float64(i) {
			t.Fatalf("line %d has seq %v", i, parsed["seq"])
		}
		names = append(names, parsed["event"].(string))
	}
	if names[0] != "optimizer.start" || names[len(names)-1] != "optimizer.done" {
		t.Fatalf("event order = %v", names)
	}
	for g := 0; g < p.Generations; g++ {
		if names[2*g+1] != "optimizer.generation" {
			t.Fatalf("event %d = %q", 2*g+1, names[2*g+1])
		}
		if names[2*g+2] != "optimizer.convergence" {
			t.Fatalf("event %d = %q", 2*g+2, names[2*g+2])
		}
	}
}

// TestOptimizeServesLiveMetrics runs a search with a registry and asserts
// the counters are visible over the debug HTTP server afterwards.
func TestOptimizeServesLiveMetrics(t *testing.T) {
	reg := NewMetrics()
	srv, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	p := smallProblem()
	p.Metrics = reg
	res, err := Optimize(p)
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var served map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&served); err != nil {
		t.Fatal(err)
	}
	evals, ok := served["optimizer.evaluations"].(float64)
	if !ok || evals <= 0 || evals > float64(res.Evaluations) {
		t.Fatalf("served optimizer.evaluations = %v (run had %d)", served["optimizer.evaluations"], res.Evaluations)
	}
	if served["optimizer.generation"] != float64(p.Generations-1) {
		t.Fatalf("served optimizer.generation = %v", served["optimizer.generation"])
	}

	pp, err := http.Get("http://" + srv.Addr() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	pp.Body.Close()
	if pp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", pp.StatusCode)
	}
}

// TestInstrumentedCollectionFacade exercises the SafeCollector
// instrumentation through the public aliases.
func TestInstrumentedCollectionFacade(t *testing.T) {
	m, err := Warner(4, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewMemoryRecorder()
	reg := NewMetrics()
	c := NewSafeCollector(m)
	c.Instrument(rec, reg)
	if err := c.IngestBatch([]int{0, 1, 2, 3, 1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Snapshot(1.96); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("collector.reports").Value(); got != 6 {
		t.Fatalf("collector.reports = %d", got)
	}
	if len(rec.Named("collector.snapshot")) != 1 {
		t.Fatal("no snapshot event through the facade")
	}
}
