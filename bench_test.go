package optrr

// Benchmark harness for the paper's evaluation (Section VI): one benchmark
// per figure plus the ablation benches DESIGN.md calls out. Each figure
// bench runs the registered experiment once per iteration at a reduced,
// fixed budget (the experiment's own shape checks still apply) and reports
// the headline comparison numbers as custom metrics:
//
//	cov-o>w    fraction of the Warner front covered by the OptRR front
//	cov-w>o    fraction of the OptRR front covered by the Warner front
//	privmin-o  lowest privacy reached by OptRR (range extension)
//	privmin-w  lowest privacy reached by Warner
//
// Run with: go test -bench=. -benchmem
// Full-scale: go run ./cmd/experiments -paper

import (
	"io"
	"runtime"
	"testing"

	"optrr/internal/core"
	"optrr/internal/dataset"
	"optrr/internal/experiments"
	"optrr/internal/pareto"
)

// benchBudget keeps figure benches to roughly a second per iteration while
// preserving the shapes.
func benchBudget() experiments.Config {
	return experiments.Config{Generations: 800, WarnerSteps: 300, Seed: 1}
}

func benchFigure(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchBudget()
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		rep, err = e.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportFrontMetrics(b, rep)
}

func reportFrontMetrics(b *testing.B, rep *experiments.Report) {
	b.Helper()
	var wf, of []pareto.Point
	for _, s := range rep.Series {
		switch s.Name {
		case "warner":
			wf = s.Points
		case "optrr":
			of = s.Points
		}
	}
	if len(wf) == 0 || len(of) == 0 {
		return
	}
	b.ReportMetric(pareto.Coverage(of, wf), "cov-o>w")
	b.ReportMetric(pareto.Coverage(wf, of), "cov-w>o")
	wMin, _ := pareto.PrivacyRange(wf)
	oMin, _ := pareto.PrivacyRange(of)
	b.ReportMetric(wMin, "privmin-w")
	b.ReportMetric(oMin, "privmin-o")
}

// Figure 4: normal prior at four privacy bounds.

func BenchmarkFig4a(b *testing.B) { benchFigure(b, "fig4a") }
func BenchmarkFig4b(b *testing.B) { benchFigure(b, "fig4b") }
func BenchmarkFig4c(b *testing.B) { benchFigure(b, "fig4c") }
func BenchmarkFig4d(b *testing.B) { benchFigure(b, "fig4d") }

// Figure 5: gamma, uniform, Adult-like, and iterative re-scoring.

func BenchmarkFig5a(b *testing.B) { benchFigure(b, "fig5a") }
func BenchmarkFig5b(b *testing.B) { benchFigure(b, "fig5b") }
func BenchmarkFig5c(b *testing.B) { benchFigure(b, "fig5c") }
func BenchmarkFig5d(b *testing.B) { benchFigure(b, "fig5d") }

// Theorem 2 and Fact 1 (cheap, exact artifacts).

// Extension: multi-dimensional OptRR (the paper's future work).

func BenchmarkExtMulti(b *testing.B) {
	e, err := experiments.Lookup("ext-multi")
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchBudget()
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		rep, err = e.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	var base, opt []pareto.Point
	for _, s := range rep.Series {
		switch s.Name {
		case "warner-tuple":
			base = s.Points
		case "optrr-multi":
			opt = s.Points
		}
	}
	if len(base) > 0 && len(opt) > 0 {
		b.ReportMetric(pareto.Coverage(opt, base), "cov-o>w")
		b.ReportMetric(pareto.Coverage(base, opt), "cov-w>o")
	}
}

func BenchmarkTheorem2(b *testing.B) {
	e, err := experiments.Lookup("thm2")
	if err != nil {
		b.Fatal(err)
	}
	cfg := experiments.Config{WarnerSteps: 1000}
	for i := 0; i < b.N; i++ {
		rep, err := e.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Passed() {
			b.Fatal("Theorem 2 check failed")
		}
	}
}

func BenchmarkFact1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.SearchSpaceSize(10, 100).BitLen() == 0 {
			b.Fatal("empty search-space size")
		}
	}
}

// benchProblem is the fixed small search used by the BenchmarkOptimize pair
// (and the ci.sh smoke run); the two benches differ only in observability so
// their delta is the tracing overhead.
func benchProblem(seed uint64) Problem {
	return Problem{
		Prior:       dataset.DefaultNormal(10).Prior(10),
		Records:     10000,
		Delta:       0.8,
		Seed:        seed,
		Generations: 200,
	}
}

// BenchmarkOptimize is the untraced baseline: no recorder, no registry —
// the zero-overhead default path.
func BenchmarkOptimize(b *testing.B) {
	var res *Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = Optimize(benchProblem(uint64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(res.Front)), "front-size")
}

// BenchmarkOptimizeTraced runs the identical search with a JSONL recorder
// and a metrics registry attached; compare ns/op against BenchmarkOptimize
// to see the cost of full observability.
func BenchmarkOptimizeTraced(b *testing.B) {
	var res *Result
	for i := 0; i < b.N; i++ {
		p := benchProblem(uint64(i + 1))
		p.Recorder = NewJSONLRecorder(io.Discard)
		p.Metrics = NewMetrics()
		var err error
		res, err = Optimize(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(res.Front)), "front-size")
}

// BenchmarkOptimizeParallel pins the island-model scaling on a
// population-200 search: w1 is the single-population baseline, w4 and wmax
// split the same generation budget across that many islands. The win does
// not require cores — W sub-populations shrink the O(u²) fitness and O(u³)
// truncation kernels by roughly W× at an equal evaluation budget, so the
// speedup holds even at GOMAXPROCS=1 (and compounds with worker-parallel
// evaluation on bigger machines). Tracked in BENCH_optimize.json.
func BenchmarkOptimizeParallel(b *testing.B) {
	prior := dataset.DefaultNormal(10).Prior(10)
	wmax := runtime.GOMAXPROCS(0)
	if wmax < 8 {
		wmax = 8
	}
	for _, wc := range []struct {
		label   string
		islands int
	}{{"w1", 1}, {"w4", 4}, {"wmax", wmax}} {
		b.Run(wc.label, func(b *testing.B) {
			var res core.Result
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig(prior, 10000, 0.8)
				cfg.PopulationSize = 200
				cfg.ArchiveSize = 200
				cfg.Generations = 100
				cfg.Islands = wc.islands
				cfg.Seed = uint64(i + 1)
				opt, err := core.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				res, err = opt.Run()
				if err != nil {
					b.Fatal(err)
				}
			}
			pts := res.FrontPoints()
			b.ReportMetric(float64(len(pts)), "front-size")
			min, max := pareto.PrivacyRange(pts)
			b.ReportMetric(max-min, "priv-span")
		})
	}
}

// benchOptimize runs the core search with the given config tweaks and
// reports front quality, for the ablation benches.
func benchOptimize(b *testing.B, tweak func(*core.Config)) {
	b.Helper()
	prior := dataset.DefaultNormal(10).Prior(10)
	var res core.Result
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig(prior, 10000, 0.8)
		cfg.Generations = 800
		cfg.Seed = uint64(i + 1)
		if tweak != nil {
			tweak(&cfg)
		}
		opt, err := core.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err = opt.Run()
		if err != nil {
			b.Fatal(err)
		}
	}
	pts := res.FrontPoints()
	b.ReportMetric(float64(len(pts)), "front-size")
	min, max := pareto.PrivacyRange(pts)
	b.ReportMetric(max-min, "priv-span")
	// The paper's comparison currency: the MSE paid for a given privacy
	// level (scaled to micro-MSE so the numbers are readable).
	for _, lvl := range []float64{0.55, 0.65} {
		if u, ok := pareto.UtilityAt(pts, lvl); ok {
			b.ReportMetric(u*1e6, "uMSE@"+levelName(lvl))
		}
	}
}

func levelName(lvl float64) string {
	if lvl == 0.55 {
		return "p55"
	}
	return "p65"
}

// Ablations (DESIGN.md §5): each switches off one of the paper's design
// choices; compare front-size / priv-span / hypervol against the baseline.

func BenchmarkAblationBaseline(b *testing.B) {
	benchOptimize(b, nil)
}

// BenchmarkAblationNoOmega disables the optimal set Ω — plain SPEA2, the
// paper's main modification removed. Expect a drastically smaller front.
func BenchmarkAblationNoOmega(b *testing.B) {
	benchOptimize(b, func(c *core.Config) { c.OmegaSize = 0 })
}

// BenchmarkAblationNaiveMutation replaces the correlation-preserving
// proportional mutation with naive renormalization.
func BenchmarkAblationNaiveMutation(b *testing.B) {
	benchOptimize(b, func(c *core.Config) { c.MutationStyle = core.MutationNaive })
}

// BenchmarkAblationRejectBound discards bound-violating children instead of
// repairing them (Section V-G removed).
func BenchmarkAblationRejectBound(b *testing.B) {
	benchOptimize(b, func(c *core.Config) { c.BoundMode = core.BoundReject })
}

// BenchmarkAblationNSGA2 swaps the SPEA2 engine for NSGA-II, validating the
// paper's algorithm choice.
func BenchmarkAblationNSGA2(b *testing.B) {
	benchOptimize(b, func(c *core.Config) { c.Engine = core.EngineNSGA2 })
}

// BenchmarkAblationSymmetricOnly restricts the search to symmetric matrices
// (the Agrawal–Haritsa related-work restriction). Expect a narrower span:
// the asymmetric low-privacy corner becomes unreachable.
func BenchmarkAblationSymmetricOnly(b *testing.B) {
	benchOptimize(b, func(c *core.Config) { c.SymmetricOnly = true })
}

// BenchmarkAblationWeightedSum runs the scalarized single-objective baseline
// the paper rejects, at a budget comparable to the other ablations; compare
// front-size and priv-span against BenchmarkAblationBaseline.
func BenchmarkAblationWeightedSum(b *testing.B) {
	prior := dataset.DefaultNormal(10).Prior(10)
	var res core.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = core.OptimizeWeightedSum(core.WeightedSumConfig{
			Prior:          prior,
			Records:        10000,
			Delta:          0.8,
			Weights:        16,
			PopulationSize: 20,
			Generations:    100, // ~32k evaluations, matching 800 EMO generations
			Seed:           uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	pts := res.FrontPoints()
	b.ReportMetric(float64(len(pts)), "front-size")
	min, max := pareto.PrivacyRange(pts)
	b.ReportMetric(max-min, "priv-span")
	for _, lvl := range []float64{0.55, 0.65} {
		if u, ok := pareto.UtilityAt(pts, lvl); ok {
			b.ReportMetric(u*1e6, "uMSE@"+levelName(lvl))
		}
	}
}
