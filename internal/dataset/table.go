package dataset

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"optrr/internal/randx"
)

// Table is a multi-attribute categorical data set: named attributes, each
// with a named category domain, and rows of category indices. It is the
// data layer under the mining package's consumers and the rrmine CLI.
type Table struct {
	attrs []Attribute
	rows  [][]int
}

// Attribute describes one column of a table.
type Attribute struct {
	// Name of the column.
	Name string
	// Categories lists the category labels; a value v means Categories[v].
	Categories []string
}

// Table errors.
var (
	// ErrBadTable reports a structurally invalid table or row.
	ErrBadTable = errors.New("dataset: invalid table")
	// ErrUnknownCategory reports a CSV cell not present in the attribute's
	// domain.
	ErrUnknownCategory = errors.New("dataset: unknown category label")
)

// NewTable creates an empty table with the given attributes.
func NewTable(attrs []Attribute) (*Table, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("%w: no attributes", ErrBadTable)
	}
	seen := map[string]bool{}
	for i, a := range attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("%w: attribute %d has no name", ErrBadTable, i)
		}
		if seen[a.Name] {
			return nil, fmt.Errorf("%w: duplicate attribute %q", ErrBadTable, a.Name)
		}
		seen[a.Name] = true
		if len(a.Categories) < 2 {
			return nil, fmt.Errorf("%w: attribute %q has %d categories", ErrBadTable, a.Name, len(a.Categories))
		}
		cats := map[string]bool{}
		for _, c := range a.Categories {
			if cats[c] {
				return nil, fmt.Errorf("%w: attribute %q has duplicate category %q", ErrBadTable, a.Name, c)
			}
			cats[c] = true
		}
	}
	out := make([]Attribute, len(attrs))
	for i, a := range attrs {
		out[i] = Attribute{Name: a.Name, Categories: append([]string(nil), a.Categories...)}
	}
	return &Table{attrs: out}, nil
}

// Attributes returns the schema (copies).
func (t *Table) Attributes() []Attribute {
	out := make([]Attribute, len(t.attrs))
	for i, a := range t.attrs {
		out[i] = Attribute{Name: a.Name, Categories: append([]string(nil), a.Categories...)}
	}
	return out
}

// Sizes returns the per-attribute category counts.
func (t *Table) Sizes() []int {
	out := make([]int, len(t.attrs))
	for i, a := range t.attrs {
		out[i] = len(a.Categories)
	}
	return out
}

// AttributeIndex returns the column index of the named attribute.
func (t *Table) AttributeIndex(name string) (int, error) {
	for i, a := range t.attrs {
		if a.Name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("%w: no attribute %q", ErrBadTable, name)
}

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.rows) }

// Row returns row i (read-only view).
func (t *Table) Row(i int) []int { return t.rows[i] }

// Rows returns all rows; the caller must treat them as read-only.
func (t *Table) Rows() [][]int { return t.rows }

// Append validates and adds a row of category indices.
func (t *Table) Append(row []int) error {
	if len(row) != len(t.attrs) {
		return fmt.Errorf("%w: row has %d values, want %d", ErrBadTable, len(row), len(t.attrs))
	}
	for d, v := range row {
		if v < 0 || v >= len(t.attrs[d].Categories) {
			return fmt.Errorf("%w: attribute %q value %d out of range", ErrBadTable, t.attrs[d].Name, v)
		}
	}
	t.rows = append(t.rows, append([]int(nil), row...))
	return nil
}

// Column returns a copy of one attribute's values across all rows.
func (t *Table) Column(d int) ([]int, error) {
	if d < 0 || d >= len(t.attrs) {
		return nil, fmt.Errorf("%w: column %d", ErrBadTable, d)
	}
	out := make([]int, len(t.rows))
	for i, row := range t.rows {
		out[i] = row[d]
	}
	return out, nil
}

// Marginal returns the empirical distribution of one attribute.
func (t *Table) Marginal(d int) ([]float64, error) {
	col, err := t.Column(d)
	if err != nil {
		return nil, err
	}
	c, err := NewCategorical(len(t.attrs[d].Categories), col)
	if err != nil {
		return nil, err
	}
	return c.Distribution(), nil
}

// WriteCSV emits the table with a header row and category labels.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, len(t.attrs))
	for i, a := range t.attrs {
		header[i] = a.Name
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(t.attrs))
	for _, row := range t.rows {
		for d, v := range row {
			rec[d] = t.attrs[d].Categories[v]
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a table from CSV. With a nil schema the schema is inferred:
// the first row is the header and each column's domain is the sorted set of
// distinct labels encountered (numeric labels sort numerically). With a
// schema, every cell must belong to its attribute's declared domain.
func ReadCSV(r io.Reader, schema []Attribute) (*Table, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTable, err)
	}
	if len(records) < 1 {
		return nil, fmt.Errorf("%w: empty input", ErrBadTable)
	}
	header := records[0]
	body := records[1:]

	if schema == nil {
		schema, err = inferSchema(header, body)
		if err != nil {
			return nil, err
		}
	} else if len(schema) != len(header) {
		return nil, fmt.Errorf("%w: header has %d columns, schema has %d", ErrBadTable, len(header), len(schema))
	}

	t, err := NewTable(schema)
	if err != nil {
		return nil, err
	}
	index := make([]map[string]int, len(schema))
	for d, a := range schema {
		index[d] = make(map[string]int, len(a.Categories))
		for v, c := range a.Categories {
			index[d][c] = v
		}
	}
	row := make([]int, len(schema))
	for line, rec := range body {
		if len(rec) != len(schema) {
			return nil, fmt.Errorf("%w: line %d has %d cells, want %d", ErrBadTable, line+2, len(rec), len(schema))
		}
		for d, cell := range rec {
			v, ok := index[d][strings.TrimSpace(cell)]
			if !ok {
				return nil, fmt.Errorf("%w: line %d, attribute %q, label %q", ErrUnknownCategory, line+2, schema[d].Name, cell)
			}
			row[d] = v
		}
		if err := t.Append(row); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// inferSchema builds per-column domains from the data.
func inferSchema(header []string, body [][]string) ([]Attribute, error) {
	if len(header) == 0 {
		return nil, fmt.Errorf("%w: empty header", ErrBadTable)
	}
	domains := make([]map[string]bool, len(header))
	for d := range domains {
		domains[d] = map[string]bool{}
	}
	for line, rec := range body {
		if len(rec) != len(header) {
			return nil, fmt.Errorf("%w: line %d has %d cells, want %d", ErrBadTable, line+2, len(rec), len(header))
		}
		for d, cell := range rec {
			domains[d][strings.TrimSpace(cell)] = true
		}
	}
	attrs := make([]Attribute, len(header))
	for d, name := range header {
		cats := make([]string, 0, len(domains[d]))
		for c := range domains[d] {
			cats = append(cats, c)
		}
		sortLabels(cats)
		attrs[d] = Attribute{Name: name, Categories: cats}
	}
	return attrs, nil
}

// sortLabels sorts numerically when every label parses as a number,
// lexicographically otherwise.
func sortLabels(labels []string) {
	numeric := true
	vals := make([]float64, len(labels))
	for i, l := range labels {
		v, err := strconv.ParseFloat(l, 64)
		if err != nil {
			numeric = false
			break
		}
		vals[i] = v
	}
	if numeric {
		sort.Slice(labels, func(a, b int) bool {
			va, _ := strconv.ParseFloat(labels[a], 64)
			vb, _ := strconv.ParseFloat(labels[b], 64)
			return va < vb
		})
		return
	}
	sort.Strings(labels)
}

// SyntheticTable draws rows from an explicit joint distribution over the
// schema (row-major, attribute 0 slowest) — the correlated-table generator
// used by tests and examples.
func SyntheticTable(attrs []Attribute, joint []float64, rows int, r *randx.Source) (*Table, error) {
	t, err := NewTable(attrs)
	if err != nil {
		return nil, err
	}
	sizes := t.Sizes()
	total := 1
	for _, s := range sizes {
		total *= s
	}
	if len(joint) != total {
		return nil, fmt.Errorf("%w: joint has %d cells, want %d", ErrBadTable, len(joint), total)
	}
	alias, err := randx.NewAlias(joint)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	row := make([]int, len(sizes))
	for i := 0; i < rows; i++ {
		idx := alias.Draw(r)
		for d := len(sizes) - 1; d >= 0; d-- {
			row[d] = idx % sizes[d]
			idx /= sizes[d]
		}
		if err := t.Append(row); err != nil {
			return nil, err
		}
	}
	return t, nil
}
