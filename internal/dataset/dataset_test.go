package dataset

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"optrr/internal/randx"
)

func TestNewCategoricalValidates(t *testing.T) {
	if _, err := NewCategorical(0, nil); !errors.Is(err, ErrBadCategory) {
		t.Fatalf("n=0: err = %v, want ErrBadCategory", err)
	}
	if _, err := NewCategorical(3, []int{0, 3}); !errors.Is(err, ErrBadCategory) {
		t.Fatalf("out-of-range record: err = %v, want ErrBadCategory", err)
	}
	if _, err := NewCategorical(3, []int{0, -1}); !errors.Is(err, ErrBadCategory) {
		t.Fatalf("negative record: err = %v, want ErrBadCategory", err)
	}
	d, err := NewCategorical(3, []int{0, 1, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if d.Categories() != 3 || d.Len() != 4 || d.Record(3) != 1 {
		t.Fatalf("accessors wrong: %+v", d)
	}
}

func TestCountsAndDistribution(t *testing.T) {
	d, err := NewCategorical(3, []int{0, 1, 1, 2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	counts := d.Counts()
	if counts[0] != 1 || counts[1] != 2 || counts[2] != 3 {
		t.Fatalf("Counts = %v", counts)
	}
	p := d.Distribution()
	want := []float64{1.0 / 6, 2.0 / 6, 3.0 / 6}
	for i := range p {
		if math.Abs(p[i]-want[i]) > 1e-12 {
			t.Fatalf("Distribution = %v, want %v", p, want)
		}
	}
}

func TestDistributionEmpty(t *testing.T) {
	d, err := NewCategorical(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := d.Distribution()
	if p[0] != 0 || p[1] != 0 {
		t.Fatalf("empty Distribution = %v, want zeros", p)
	}
}

func TestValidateDistribution(t *testing.T) {
	cases := []struct {
		p  []float64
		ok bool
	}{
		{[]float64{0.5, 0.5}, true},
		{[]float64{1}, true},
		{[]float64{0.3, 0.3}, false},
		{[]float64{-0.1, 1.1}, false},
		{[]float64{math.NaN(), 1}, false},
		{nil, false},
	}
	for _, c := range cases {
		err := ValidateDistribution(c.p)
		if c.ok && err != nil {
			t.Errorf("ValidateDistribution(%v) = %v, want nil", c.p, err)
		}
		if !c.ok && err == nil {
			t.Errorf("ValidateDistribution(%v) = nil, want error", c.p)
		}
	}
}

func TestNormalize(t *testing.T) {
	p, err := Normalize([]float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p[0]-0.25) > 1e-12 || math.Abs(p[1]-0.75) > 1e-12 {
		t.Fatalf("Normalize = %v", p)
	}
	if _, err := Normalize([]float64{0, 0}); !errors.Is(err, ErrBadDistribution) {
		t.Fatalf("zero weights: err = %v", err)
	}
	if _, err := Normalize([]float64{-1, 2}); !errors.Is(err, ErrBadDistribution) {
		t.Fatalf("negative weight: err = %v", err)
	}
}

func TestSampleConvergesToPrior(t *testing.T) {
	p := []float64{0.1, 0.2, 0.3, 0.4}
	r := randx.New(42)
	d, err := Sample(p, 200000, r)
	if err != nil {
		t.Fatal(err)
	}
	got := d.Distribution()
	for i := range p {
		if math.Abs(got[i]-p[i]) > 0.01 {
			t.Errorf("category %d: frequency %v, want approx %v", i, got[i], p[i])
		}
	}
}

func TestSampleRejectsBadPrior(t *testing.T) {
	r := randx.New(1)
	if _, err := Sample([]float64{0.5, 0.6}, 10, r); !errors.Is(err, ErrBadDistribution) {
		t.Fatalf("err = %v, want ErrBadDistribution", err)
	}
}

func TestDiscretize(t *testing.T) {
	vals := []float64{0, 0.9, 1.0, 5.5, 9.99, 10, 12, -3}
	d, err := Discretize(vals, 10, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 0, 1, 5, 9, 9, 9, 0}
	for i, w := range want {
		if d.Record(i) != w {
			t.Errorf("record %d (value %v): bin %d, want %d", i, vals[i], d.Record(i), w)
		}
	}
}

func TestDiscretizeValidates(t *testing.T) {
	if _, err := Discretize(nil, 0, 0, 1); err == nil {
		t.Fatal("zero bins accepted")
	}
	if _, err := Discretize(nil, 3, 5, 5); err == nil {
		t.Fatal("empty range accepted")
	}
}

func TestTotalVariation(t *testing.T) {
	tv, err := TotalVariation([]float64{1, 0}, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if tv != 1 {
		t.Fatalf("TV = %v, want 1", tv)
	}
	tv, err = TotalVariation([]float64{0.5, 0.5}, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if tv != 0 {
		t.Fatalf("TV = %v, want 0", tv)
	}
	if _, err := TotalVariation([]float64{1}, []float64{0.5, 0.5}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestMeanSquaredError(t *testing.T) {
	mse, err := MeanSquaredError([]float64{0.2, 0.8}, []float64{0.4, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mse-0.04) > 1e-12 {
		t.Fatalf("MSE = %v, want 0.04", mse)
	}
	if _, err := MeanSquaredError([]float64{1}, []float64{0.5, 0.5}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestMaxCategory(t *testing.T) {
	i, v := MaxCategory([]float64{0.1, 0.7, 0.2})
	if i != 1 || v != 0.7 {
		t.Fatalf("MaxCategory = (%d, %v), want (1, 0.7)", i, v)
	}
}

func TestSortedIndices(t *testing.T) {
	idx := SortedIndices([]float64{0.2, 0.5, 0.2, 0.1})
	want := []int{1, 0, 2, 3} // stable: ties keep original order
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("SortedIndices = %v, want %v", idx, want)
		}
	}
}

func TestGeneratorPriorsAreValid(t *testing.T) {
	gens := []Generator{
		DefaultNormal(10),
		NormalGenerator(3, 1),
		GammaGenerator(1, 2),
		GammaGenerator(0.5, 1),
		GammaGenerator(3, 2),
		UniformGenerator(),
		ZipfGenerator(1),
		ZipfGenerator(2),
		BimodalGenerator(),
	}
	for _, g := range gens {
		for _, n := range []int{2, 5, 10, 20} {
			p := g.Prior(n)
			if len(p) != n {
				t.Errorf("%s: prior length %d, want %d", g.Name, len(p), n)
				continue
			}
			if err := ValidateDistribution(p); err != nil {
				t.Errorf("%s (n=%d): %v", g.Name, n, err)
			}
		}
	}
}

func TestNormalPriorShape(t *testing.T) {
	p := DefaultNormal(10).Prior(10)
	// Symmetric bell: p[i] == p[9-i], peak in the middle.
	for i := 0; i < 5; i++ {
		if math.Abs(p[i]-p[9-i]) > 1e-9 {
			t.Errorf("normal prior asymmetric: p[%d]=%v, p[%d]=%v", i, p[i], 9-i, p[9-i])
		}
	}
	if p[4] <= p[0] || p[4] <= p[2] {
		t.Errorf("normal prior not peaked in the middle: %v", p)
	}
}

func TestGammaPriorShape(t *testing.T) {
	// Gamma(1, 2) is the exponential: strictly decreasing prior. The final
	// bin absorbs the clamped tail mass, so it is exempt.
	p := GammaGenerator(1, 2).Prior(10)
	for i := 1; i < len(p)-1; i++ {
		if p[i] >= p[i-1] {
			t.Fatalf("gamma(1,2) prior not decreasing at %d: %v", i, p)
		}
	}
}

func TestGammaPriorMatchesSampling(t *testing.T) {
	// The analytic binned prior must agree with Monte-Carlo discretization of
	// actual gamma draws.
	const (
		n       = 10
		records = 400000
		alpha   = 1.0
		beta    = 2.0
	)
	prior := GammaGenerator(alpha, beta).Prior(n)
	upper := alpha*beta + 4*math.Sqrt(alpha)*beta
	r := randx.New(9)
	vals := make([]float64, records)
	for i := range vals {
		vals[i] = r.Gamma(alpha, beta)
	}
	d, err := Discretize(vals, n, 0, upper)
	if err != nil {
		t.Fatal(err)
	}
	got := d.Distribution()
	for i := range prior {
		if math.Abs(got[i]-prior[i]) > 0.01 {
			t.Errorf("bin %d: sampled %v, analytic %v", i, got[i], prior[i])
		}
	}
}

func TestZipfPriorDecreasing(t *testing.T) {
	p := ZipfGenerator(1.5).Prior(8)
	for i := 1; i < len(p); i++ {
		if p[i] >= p[i-1] {
			t.Fatalf("zipf prior not decreasing: %v", p)
		}
	}
}

func TestBimodalPriorHasTwoPeaks(t *testing.T) {
	p := BimodalGenerator().Prior(12)
	peaks := 0
	for i := 1; i < len(p)-1; i++ {
		if p[i] > p[i-1] && p[i] >= p[i+1] {
			peaks++
		}
	}
	if peaks != 2 {
		t.Fatalf("bimodal prior has %d interior peaks, want 2: %v", peaks, p)
	}
}

func TestGeneratorGenerateMatchesPrior(t *testing.T) {
	g := DefaultNormal(10)
	r := randx.New(5)
	d, err := g.Generate(10, 100000, r)
	if err != nil {
		t.Fatal(err)
	}
	p := g.Prior(10)
	got := d.Distribution()
	for i := range p {
		if math.Abs(got[i]-p[i]) > 0.01 {
			t.Errorf("category %d: %v vs prior %v", i, got[i], p[i])
		}
	}
}

func TestAdultLikeShape(t *testing.T) {
	a := DefaultAdult()
	r := randx.New(3)
	ages := a.Ages(200000, r)
	var sum, sumSq float64
	for _, v := range ages {
		if v < 17 || v > 90 {
			t.Fatalf("age %v out of [17, 90]", v)
		}
		sum += v
		sumSq += v * v
	}
	n := float64(len(ages))
	mean := sum / n
	sd := math.Sqrt(sumSq/n - mean*mean)
	if mean < 36 || mean > 41 {
		t.Errorf("adult mean age = %v, want approx 38.6", mean)
	}
	if sd < 10 || sd > 16 {
		t.Errorf("adult age sd = %v, want approx 13", sd)
	}
}

func TestAdultLikeGenerate(t *testing.T) {
	a := DefaultAdult()
	r := randx.New(4)
	d, err := a.Generate(10, 50000, r)
	if err != nil {
		t.Fatal(err)
	}
	if d.Categories() != 10 || d.Len() != 50000 {
		t.Fatalf("shape: %d categories, %d records", d.Categories(), d.Len())
	}
	p := d.Distribution()
	// Right-skewed: early-middle bins dominate the tail bins.
	if !(p[2] > p[8] && p[3] > p[9]) {
		t.Errorf("adult prior not right-skewed: %v", p)
	}
}

func TestAdultGeneratorPriorValid(t *testing.T) {
	g := DefaultAdult().Generator()
	p := g.Prior(10)
	if err := ValidateDistribution(p); err != nil {
		t.Fatal(err)
	}
	// Prior must be deterministic across calls.
	p2 := g.Prior(10)
	for i := range p {
		if p[i] != p2[i] {
			t.Fatal("adult prior is not deterministic")
		}
	}
}

func TestAdultLikeBadBounds(t *testing.T) {
	a := AdultLike{MinAge: 50, MaxAge: 40}
	if _, err := a.Generate(10, 10, randx.New(1)); err == nil {
		t.Fatal("inverted bounds accepted")
	}
}

func TestPropertySampleDistributionSumsToOne(t *testing.T) {
	f := func(seed uint64, raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 12 {
			raw = raw[:12]
		}
		w := make([]float64, len(raw))
		var nonzero bool
		for i, v := range raw {
			w[i] = float64(v)
			if v > 0 {
				nonzero = true
			}
		}
		if !nonzero {
			return true
		}
		p, err := Normalize(w)
		if err != nil {
			return false
		}
		d, err := Sample(p, 500, randx.New(seed))
		if err != nil {
			return false
		}
		got := d.Distribution()
		var sum float64
		for i, v := range got {
			if v < 0 {
				return false
			}
			// Zero-weight categories must never be sampled.
			if w[i] == 0 && v > 0 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSample10k(b *testing.B) {
	p := DefaultNormal(10).Prior(10)
	r := randx.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Sample(p, 10000, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAdultGenerate(b *testing.B) {
	a := DefaultAdult()
	r := randx.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Generate(10, 10000, r); err != nil {
			b.Fatal(err)
		}
	}
}

// TestSampleBatchDeterministicAcrossWorkers: the batch sampler's output
// depends only on (p, n, seed), never on the worker count, across record
// counts straddling the chunk boundary.
func TestSampleBatchDeterministicAcrossWorkers(t *testing.T) {
	p := []float64{0.5, 0.3, 0.15, 0.05}
	for _, n := range []int{0, 1, sampleChunk - 1, sampleChunk, 2*sampleChunk + 13} {
		want, err := SampleBatch(p, n, 42, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{2, 3, 8} {
			got, err := SampleBatch(p, n, 42, w)
			if err != nil {
				t.Fatal(err)
			}
			if got.Len() != want.Len() || got.Categories() != want.Categories() {
				t.Fatalf("n=%d workers=%d: shape (%d, %d), want (%d, %d)",
					n, w, got.Categories(), got.Len(), want.Categories(), want.Len())
			}
			for i := 0; i < want.Len(); i++ {
				if got.Record(i) != want.Record(i) {
					t.Fatalf("n=%d workers=%d: record %d = %d, want %d", n, w, i, got.Record(i), want.Record(i))
				}
			}
		}
	}
}

// TestSampleBatchConvergesToPrior mirrors TestSampleConvergesToPrior for the
// batch path.
func TestSampleBatchConvergesToPrior(t *testing.T) {
	p := []float64{0.1, 0.2, 0.3, 0.4}
	d, err := SampleBatch(p, 120000, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	got := d.Distribution()
	for i := range p {
		if math.Abs(got[i]-p[i]) > 0.01 {
			t.Errorf("category %d frequency %.4f, want %.4f ± 0.01", i, got[i], p[i])
		}
	}
}

// TestSampleBatchRejectsBadPrior: validation matches Sample.
func TestSampleBatchRejectsBadPrior(t *testing.T) {
	if _, err := SampleBatch([]float64{0.5, 0.6}, 10, 1, 1); !errors.Is(err, ErrBadDistribution) {
		t.Fatalf("err = %v, want ErrBadDistribution", err)
	}
}
