package dataset

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"optrr/internal/randx"
)

func demoAttrs() []Attribute {
	return []Attribute{
		{Name: "income", Categories: []string{"low", "mid", "high"}},
		{Name: "approved", Categories: []string{"no", "yes"}},
	}
}

func TestNewTableValidates(t *testing.T) {
	if _, err := NewTable(nil); !errors.Is(err, ErrBadTable) {
		t.Fatal("empty schema accepted")
	}
	if _, err := NewTable([]Attribute{{Name: "", Categories: []string{"a", "b"}}}); !errors.Is(err, ErrBadTable) {
		t.Fatal("unnamed attribute accepted")
	}
	if _, err := NewTable([]Attribute{
		{Name: "x", Categories: []string{"a", "b"}},
		{Name: "x", Categories: []string{"a", "b"}},
	}); !errors.Is(err, ErrBadTable) {
		t.Fatal("duplicate attribute name accepted")
	}
	if _, err := NewTable([]Attribute{{Name: "x", Categories: []string{"only"}}}); !errors.Is(err, ErrBadTable) {
		t.Fatal("single-category attribute accepted")
	}
	if _, err := NewTable([]Attribute{{Name: "x", Categories: []string{"a", "a"}}}); !errors.Is(err, ErrBadTable) {
		t.Fatal("duplicate category accepted")
	}
}

func TestTableAppendAndAccess(t *testing.T) {
	tab, err := NewTable(demoAttrs())
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Append([]int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if err := tab.Append([]int{2, 0}); err != nil {
		t.Fatal(err)
	}
	if err := tab.Append([]int{3, 0}); !errors.Is(err, ErrBadTable) {
		t.Fatal("out-of-range value accepted")
	}
	if err := tab.Append([]int{1}); !errors.Is(err, ErrBadTable) {
		t.Fatal("short row accepted")
	}
	if tab.Len() != 2 {
		t.Fatalf("Len = %d", tab.Len())
	}
	if got := tab.Row(1); got[0] != 2 || got[1] != 0 {
		t.Fatalf("Row(1) = %v", got)
	}
	col, err := tab.Column(1)
	if err != nil {
		t.Fatal(err)
	}
	if col[0] != 1 || col[1] != 0 {
		t.Fatalf("Column(1) = %v", col)
	}
	if _, err := tab.Column(5); !errors.Is(err, ErrBadTable) {
		t.Fatal("bad column accepted")
	}
	if idx, err := tab.AttributeIndex("approved"); err != nil || idx != 1 {
		t.Fatalf("AttributeIndex = %d, %v", idx, err)
	}
	if _, err := tab.AttributeIndex("nope"); !errors.Is(err, ErrBadTable) {
		t.Fatal("unknown attribute accepted")
	}
	sizes := tab.Sizes()
	if sizes[0] != 3 || sizes[1] != 2 {
		t.Fatalf("Sizes = %v", sizes)
	}
}

func TestTableMarginal(t *testing.T) {
	tab, err := NewTable(demoAttrs())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range [][]int{{0, 0}, {0, 1}, {1, 1}, {2, 1}} {
		if err := tab.Append(row); err != nil {
			t.Fatal(err)
		}
	}
	m, err := tab.Marginal(0)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.5, 0.25, 0.25}
	for i := range want {
		if math.Abs(m[i]-want[i]) > 1e-12 {
			t.Fatalf("Marginal(0) = %v", m)
		}
	}
}

func TestTableCSVRoundTrip(t *testing.T) {
	tab, err := NewTable(demoAttrs())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range [][]int{{0, 0}, {1, 1}, {2, 1}} {
		if err := tab.Append(row); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, tab.Attributes())
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tab.Len() {
		t.Fatalf("round trip rows: %d vs %d", back.Len(), tab.Len())
	}
	for i := 0; i < tab.Len(); i++ {
		for d := range tab.Attributes() {
			if back.Row(i)[d] != tab.Row(i)[d] {
				t.Fatalf("row %d differs: %v vs %v", i, back.Row(i), tab.Row(i))
			}
		}
	}
}

func TestReadCSVInfersSchema(t *testing.T) {
	in := "income,approved\nlow,no\nhigh,yes\nmid,yes\nlow,yes\n"
	tab, err := ReadCSV(strings.NewReader(in), nil)
	if err != nil {
		t.Fatal(err)
	}
	attrs := tab.Attributes()
	if attrs[0].Name != "income" || attrs[1].Name != "approved" {
		t.Fatalf("names = %v, %v", attrs[0].Name, attrs[1].Name)
	}
	// Inferred domains sort lexicographically.
	if strings.Join(attrs[0].Categories, ",") != "high,low,mid" {
		t.Fatalf("income domain = %v", attrs[0].Categories)
	}
	if tab.Len() != 4 {
		t.Fatalf("rows = %d", tab.Len())
	}
}

func TestReadCSVNumericLabelsSortNumerically(t *testing.T) {
	in := "age\n10\n2\n33\n2\n"
	tab, err := ReadCSV(strings.NewReader(in), nil)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(tab.Attributes()[0].Categories, ",") != "2,10,33" {
		t.Fatalf("numeric domain = %v", tab.Attributes()[0].Categories)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), nil); !errors.Is(err, ErrBadTable) {
		t.Fatal("empty input accepted")
	}
	// Unknown label under an explicit schema.
	in := "income,approved\nultra,no\n"
	if _, err := ReadCSV(strings.NewReader(in), demoAttrs()); !errors.Is(err, ErrUnknownCategory) {
		t.Fatal("unknown label accepted")
	}
	// Schema / header arity mismatch.
	in = "a,b,c\n1,2,3\n"
	if _, err := ReadCSV(strings.NewReader(in), demoAttrs()); !errors.Is(err, ErrBadTable) {
		t.Fatal("arity mismatch accepted")
	}
	// Ragged row. The csv package reports this as a parse error wrapped
	// into ErrBadTable.
	in = "a,b\n1,2\n3\n"
	if _, err := ReadCSV(strings.NewReader(in), nil); !errors.Is(err, ErrBadTable) {
		t.Fatal("ragged row accepted")
	}
}

func TestSyntheticTableMatchesJoint(t *testing.T) {
	attrs := demoAttrs()
	// joint[income*2 + approved]
	joint := []float64{0.30, 0.05, 0.20, 0.15, 0.05, 0.25}
	tab, err := SyntheticTable(attrs, joint, 200000, randx.New(8))
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]float64, 6)
	for _, row := range tab.Rows() {
		counts[row[0]*2+row[1]]++
	}
	for i := range joint {
		got := counts[i] / float64(tab.Len())
		if math.Abs(got-joint[i]) > 0.01 {
			t.Errorf("cell %d: %v, want %v", i, got, joint[i])
		}
	}
}

func TestSyntheticTableValidates(t *testing.T) {
	if _, err := SyntheticTable(demoAttrs(), []float64{1}, 10, randx.New(1)); !errors.Is(err, ErrBadTable) {
		t.Fatal("wrong joint size accepted")
	}
}
