// Package dataset provides the categorical-data substrate of the paper's
// evaluation (Section VI): single-attribute categorical data sets, empirical
// distributions, discretization of continuous values, and seeded synthetic
// generators for the priors the paper evaluates on (discretized normal,
// gamma, discrete uniform) plus an Adult-like generator standing in for the
// UCI Adult data set (see DESIGN.md, "Substitutions").
package dataset

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"optrr/internal/randx"
)

// Categorical is a single-attribute categorical data set: every record is a
// category index in [0, N categories).
type Categorical struct {
	n       int
	records []int
}

// Dataset errors.
var (
	// ErrBadCategory reports a record outside [0, n).
	ErrBadCategory = errors.New("dataset: record out of category range")
	// ErrBadDistribution reports an invalid probability vector.
	ErrBadDistribution = errors.New("dataset: invalid probability distribution")
)

// NewCategorical wraps records over n categories. The record slice is taken
// over by the data set (not copied); callers must not modify it afterwards.
func NewCategorical(n int, records []int) (*Categorical, error) {
	if n <= 0 {
		return nil, fmt.Errorf("%w: %d categories", ErrBadCategory, n)
	}
	for i, r := range records {
		if r < 0 || r >= n {
			return nil, fmt.Errorf("%w: record %d has value %d, want [0,%d)", ErrBadCategory, i, r, n)
		}
	}
	return &Categorical{n: n, records: records}, nil
}

// Categories returns the number of categories n.
func (d *Categorical) Categories() int { return d.n }

// Len returns the number of records N.
func (d *Categorical) Len() int { return len(d.records) }

// Record returns the i-th record's category index.
func (d *Categorical) Record(i int) int { return d.records[i] }

// Records returns the underlying record slice. The caller must treat it as
// read-only.
func (d *Categorical) Records() []int { return d.records }

// Counts returns the per-category record counts N_i.
func (d *Categorical) Counts() []int {
	c := make([]int, d.n)
	for _, r := range d.records {
		c[r]++
	}
	return c
}

// Distribution returns the empirical distribution (the MLE of the category
// probabilities, Theorem 1 of the paper): P̂(c_i) = N_i / N.
func (d *Categorical) Distribution() []float64 {
	p := make([]float64, d.n)
	if len(d.records) == 0 {
		return p
	}
	inv := 1 / float64(len(d.records))
	for _, r := range d.records {
		p[r] += inv
	}
	return p
}

// ValidateDistribution checks that p is a probability vector: non-negative
// entries summing to 1 within tolerance.
func ValidateDistribution(p []float64) error {
	if len(p) == 0 {
		return fmt.Errorf("%w: empty", ErrBadDistribution)
	}
	var sum float64
	for i, v := range p {
		if v < 0 || math.IsNaN(v) {
			return fmt.Errorf("%w: p[%d] = %v", ErrBadDistribution, i, v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("%w: sum = %v, want 1", ErrBadDistribution, sum)
	}
	return nil
}

// Normalize scales a non-negative weight vector into a probability vector.
func Normalize(w []float64) ([]float64, error) {
	var sum float64
	for i, v := range w {
		if v < 0 || math.IsNaN(v) {
			return nil, fmt.Errorf("%w: weight[%d] = %v", ErrBadDistribution, i, v)
		}
		sum += v
	}
	if sum <= 0 {
		return nil, fmt.Errorf("%w: weights sum to %v", ErrBadDistribution, sum)
	}
	out := make([]float64, len(w))
	for i, v := range w {
		out[i] = v / sum
	}
	return out, nil
}

// Sample draws N records i.i.d. from the probability vector p.
func Sample(p []float64, n int, r *randx.Source) (*Categorical, error) {
	if err := ValidateDistribution(p); err != nil {
		return nil, err
	}
	alias, err := randx.NewAlias(p)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	records := make([]int, n)
	for i := range records {
		records[i] = alias.Draw(r)
	}
	return &Categorical{n: len(p), records: records}, nil
}

// sampleChunk is the fixed record-chunk granularity of SampleBatch; chunk c
// always draws from randx.Stream(seed, c), so the partition — and therefore
// the sampled data set — is independent of the worker count.
const sampleChunk = 8192

// SampleBatch draws N records i.i.d. from the probability vector p, like
// Sample, but fans fixed 8192-record chunks out over the given number of
// workers (zero means GOMAXPROCS). The result depends only on (p, n, seed):
// every worker count produces the identical data set.
func SampleBatch(p []float64, n int, seed uint64, workers int) (*Categorical, error) {
	if err := ValidateDistribution(p); err != nil {
		return nil, err
	}
	alias, err := randx.NewAlias(p)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	records := make([]int, n)
	if n > 0 {
		chunks := (n + sampleChunk - 1) / sampleChunk
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if workers > chunks {
			workers = chunks
		}
		fill := func(c int) {
			lo := c * sampleChunk
			hi := lo + sampleChunk
			if hi > n {
				hi = n
			}
			r := randx.Stream(seed, uint64(c))
			for i := lo; i < hi; i++ {
				records[i] = alias.Draw(r)
			}
		}
		if workers <= 1 {
			for c := 0; c < chunks; c++ {
				fill(c)
			}
		} else {
			// The alias table is immutable and each chunk writes a disjoint
			// range, so workers share everything but their chunk streams.
			var cursor atomic.Int64
			var wg sync.WaitGroup
			wg.Add(workers - 1)
			body := func() {
				for {
					c := int(cursor.Add(1)) - 1
					if c >= chunks {
						return
					}
					fill(c)
				}
			}
			for w := 1; w < workers; w++ {
				go func() {
					defer wg.Done()
					body()
				}()
			}
			body()
			wg.Wait()
		}
	}
	return &Categorical{n: len(p), records: records}, nil
}

// Discretize maps continuous values into n equi-width bins spanning
// [min, max]; values outside the range are clamped into the first or last
// bin. This is how the paper turns the Adult data set's continuous
// attributes into categorical ones.
func Discretize(values []float64, n int, min, max float64) (*Categorical, error) {
	if n <= 0 {
		return nil, fmt.Errorf("%w: %d bins", ErrBadCategory, n)
	}
	if !(max > min) {
		return nil, fmt.Errorf("dataset: Discretize needs max > min, got [%v, %v]", min, max)
	}
	width := (max - min) / float64(n)
	records := make([]int, len(values))
	for i, v := range values {
		b := int((v - min) / width)
		if b < 0 {
			b = 0
		}
		if b >= n {
			b = n - 1
		}
		records[i] = b
	}
	return &Categorical{n: n, records: records}, nil
}

// TotalVariation returns the total-variation distance between two
// distributions of equal length: ½ Σ |p_i − q_i|.
func TotalVariation(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, fmt.Errorf("%w: lengths %d and %d", ErrBadDistribution, len(p), len(q))
	}
	var s float64
	for i := range p {
		s += math.Abs(p[i] - q[i])
	}
	return s / 2, nil
}

// MeanSquaredError returns the mean squared per-category error between two
// distributions, the empirical counterpart of the paper's utility metric.
func MeanSquaredError(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, fmt.Errorf("%w: lengths %d and %d", ErrBadDistribution, len(p), len(q))
	}
	var s float64
	for i := range p {
		d := p[i] - q[i]
		s += d * d
	}
	return s / float64(len(p)), nil
}

// MaxCategory returns the index and value of the largest probability in p.
func MaxCategory(p []float64) (int, float64) {
	best, bestV := -1, math.Inf(-1)
	for i, v := range p {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best, bestV
}

// SortedIndices returns category indices ordered by descending probability;
// ties break on the smaller index for determinism.
func SortedIndices(p []float64) []int {
	idx := make([]int, len(p))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return p[idx[a]] > p[idx[b]] })
	return idx
}
