package dataset

import (
	"fmt"
	"math"

	"optrr/internal/mathx"
	"optrr/internal/randx"
)

// Generator produces a named synthetic single-attribute categorical data set
// with a known prior shape. The paper's experiments (Section VI-C) use
// 10 categories and 10,000 records.
type Generator struct {
	// Name identifies the generator in experiment output.
	Name string
	// Prior returns the exact category prior the generator targets, for n
	// categories. Sampled data sets converge to this prior as N grows.
	Prior func(n int) []float64
}

// Generate draws N records from the generator's prior over n categories.
func (g Generator) Generate(n, records int, r *randx.Source) (*Categorical, error) {
	p := g.Prior(n)
	if err := ValidateDistribution(p); err != nil {
		return nil, fmt.Errorf("dataset: generator %q: %w", g.Name, err)
	}
	return Sample(p, records, r)
}

// NormalGenerator returns the paper's "normal distribution" prior: a normal
// density with the given mean and standard deviation evaluated at category
// midpoints 0..n-1 and normalized. The paper's Figure 4 data sets use a bell
// shape centred on the middle categories; mean (n−1)/2 and sd n/5 reproduce
// that shape for n = 10.
func NormalGenerator(mean, stddev float64) Generator {
	return Generator{
		Name: fmt.Sprintf("normal(mean=%.3g,sd=%.3g)", mean, stddev),
		Prior: func(n int) []float64 {
			w := make([]float64, n)
			for i := range w {
				z := (float64(i) - mean) / stddev
				w[i] = math.Exp(-z * z / 2)
			}
			p, err := Normalize(w)
			if err != nil {
				panic(fmt.Sprintf("dataset: normal prior invalid: %v", err))
			}
			return p
		},
	}
}

// DefaultNormal is the Figure 4 prior: bell-shaped over the category range.
func DefaultNormal(n int) Generator {
	return NormalGenerator(float64(n-1)/2, float64(n)/5)
}

// GammaGenerator returns the paper's gamma prior (Figure 5(a) uses α = 1.0,
// β = 2.0): the Gamma(α, β) density integrated over n equi-width bins that
// cover [0, cover·α·β], normalized. Binning the density (rather than point
// evaluation) keeps the α = 1 case well defined at x = 0.
func GammaGenerator(alpha, beta float64) Generator {
	return Generator{
		Name: fmt.Sprintf("gamma(alpha=%.3g,beta=%.3g)", alpha, beta),
		Prior: func(n int) []float64 {
			// Cover roughly the mass up to mean + 4 standard deviations.
			upper := alpha*beta + 4*math.Sqrt(alpha)*beta
			width := upper / float64(n)
			w := make([]float64, n)
			for i := range w {
				lo := float64(i) * width
				hi := lo + width
				w[i] = mathx.GammaCDF(alpha, beta, hi) - mathx.GammaCDF(alpha, beta, lo)
			}
			// The residual tail mass beyond `upper` goes into the last bin,
			// mirroring the clamping behaviour of Discretize.
			w[n-1] += 1 - mathx.GammaCDF(alpha, beta, upper)
			p, err := Normalize(w)
			if err != nil {
				panic(fmt.Sprintf("dataset: gamma prior invalid: %v", err))
			}
			return p
		},
	}
}

// UniformGenerator returns the discrete uniform prior of Figure 5(b).
func UniformGenerator() Generator {
	return Generator{
		Name: "uniform",
		Prior: func(n int) []float64 {
			p := make([]float64, n)
			for i := range p {
				p[i] = 1 / float64(n)
			}
			return p
		},
	}
}

// ZipfGenerator returns a Zipf(s) prior: p_i ∝ 1/(i+1)^s. Heavy skew like
// this stresses the privacy floor of Theorem 5 (max prior probability).
func ZipfGenerator(s float64) Generator {
	return Generator{
		Name: fmt.Sprintf("zipf(s=%.3g)", s),
		Prior: func(n int) []float64 {
			w := make([]float64, n)
			for i := range w {
				w[i] = math.Pow(float64(i+1), -s)
			}
			p, err := Normalize(w)
			if err != nil {
				panic(fmt.Sprintf("dataset: zipf prior invalid: %v", err))
			}
			return p
		},
	}
}

// BimodalGenerator returns a two-bump prior (mixture of two discretized
// normals), an adversarial shape for symmetric RR schemes.
func BimodalGenerator() Generator {
	return Generator{
		Name: "bimodal",
		Prior: func(n int) []float64 {
			m1 := float64(n) / 4
			m2 := 3 * float64(n) / 4
			sd := float64(n) / 10
			w := make([]float64, n)
			for i := range w {
				z1 := (float64(i) - m1) / sd
				z2 := (float64(i) - m2) / sd
				w[i] = math.Exp(-z1*z1/2) + math.Exp(-z2*z2/2)
			}
			p, err := Normalize(w)
			if err != nil {
				panic(fmt.Sprintf("dataset: bimodal prior invalid: %v", err))
			}
			return p
		},
	}
}
