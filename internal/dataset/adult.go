package dataset

import (
	"fmt"
	"math"

	"optrr/internal/randx"
)

// AdultLike generates a stand-in for the first attribute (age) of the UCI
// Adult data set, which the paper uses for Figure 5(c). The real data set is
// not shipped with this repository; instead we sample ages from a
// right-skewed model calibrated to the published Adult age marginal
// (range 17–90, mean ≈ 38.6, sd ≈ 13.6) and discretize into n equi-width
// bins exactly as the paper discretizes continuous attributes.
//
// The experiment only consumes the resulting categorical prior, so any prior
// with the same qualitative shape (unimodal, right-skewed, bounded support,
// near-empty top bins) exercises the identical code path. See DESIGN.md.
type AdultLike struct {
	// MinAge and MaxAge bound the support. Defaults: 17 and 90.
	MinAge, MaxAge float64
}

// Adult age model: age = MinAge + Gamma(shape, scale), truncated to
// [MinAge, MaxAge]. shape=3.1, scale=7.0 gives mean ≈ 17+21.7 ≈ 38.7 and
// sd ≈ 12.3, matching the published marginal closely.
const (
	adultShape = 3.1
	adultScale = 7.0
)

// DefaultAdult returns an AdultLike with the published Adult age bounds.
func DefaultAdult() AdultLike { return AdultLike{MinAge: 17, MaxAge: 90} }

// Ages samples n raw (continuous) ages.
func (a AdultLike) Ages(n int, r *randx.Source) []float64 {
	min, max := a.bounds()
	out := make([]float64, n)
	for i := range out {
		for {
			v := min + r.Gamma(adultShape, adultScale)
			if v <= max {
				out[i] = v
				break
			}
		}
	}
	return out
}

func (a AdultLike) bounds() (min, max float64) {
	min, max = a.MinAge, a.MaxAge
	if min == 0 && max == 0 {
		min, max = 17, 90
	}
	return min, max
}

// Generate samples records raw ages and discretizes them into n equi-width
// bins over [MinAge, MaxAge].
func (a AdultLike) Generate(n, records int, r *randx.Source) (*Categorical, error) {
	min, max := a.bounds()
	if !(max > min) {
		return nil, fmt.Errorf("dataset: AdultLike needs MaxAge > MinAge, got [%v, %v]", min, max)
	}
	return Discretize(a.Ages(records, r), n, min, max)
}

// Generator adapts AdultLike to the Generator interface used by the
// experiment harness. The prior is estimated once from a large deterministic
// sample so that the "true" prior used in closed-form metrics matches the
// sampled data closely.
func (a AdultLike) Generator() Generator {
	return Generator{
		Name: "adult-age",
		Prior: func(n int) []float64 {
			const calibration = 500_000
			r := randx.New(0xAD01717) // fixed: the prior is a property of the model
			d, err := a.Generate(n, calibration, r)
			if err != nil {
				panic(fmt.Sprintf("dataset: adult prior: %v", err))
			}
			return d.Distribution()
		},
	}
}

// AdultAttributes returns stand-ins for several Adult attributes beyond age,
// calibrated to the published marginals' qualitative shapes. The paper's
// Figure 5(c) shows attribute 1 and reports that "the results for the other
// attributes have shown a similar trend"; these generators let the
// experiment verify that claim on substituted data.
//
//   - adult-age: right-skewed gamma model (see AdultLike).
//   - adult-education: the years-of-education marginal — strongly bimodal
//     with spikes at high-school (9 years) and bachelor (13 years).
//   - adult-hours: hours-per-week — a heavy spike at 40 with spread on both
//     sides, discretized like the paper discretizes continuous attributes.
func AdultAttributes() []Generator {
	education := Generator{
		Name: "adult-education",
		Prior: func(n int) []float64 {
			// Published education-num marginal over 1..16, rebinned to n.
			marginal := []float64{
				0.002, 0.005, 0.010, 0.020, 0.016, 0.028, 0.036, 0.013,
				0.322, 0.223, 0.042, 0.033, 0.164, 0.053, 0.018, 0.015,
			}
			p, err := rebin(marginal, n)
			if err != nil {
				panic(fmt.Sprintf("dataset: adult education prior: %v", err))
			}
			return p
		},
	}
	hours := Generator{
		Name: "adult-hours",
		Prior: func(n int) []float64 {
			// Hours-per-week model: a dominant mass at the standard week
			// plus normal spread, truncated to [1, 99] and binned.
			const calibration = 500_000
			r := randx.New(0xAD0BB5)
			vals := make([]float64, calibration)
			for i := range vals {
				var v float64
				switch {
				case r.Float64() < 0.45:
					v = 40 // the full-time spike
				default:
					v = r.Normal(40, 12)
				}
				if v < 1 {
					v = 1
				}
				if v > 99 {
					v = 99
				}
				vals[i] = v
			}
			d, err := Discretize(vals, n, 1, 99)
			if err != nil {
				panic(fmt.Sprintf("dataset: adult hours prior: %v", err))
			}
			return d.Distribution()
		},
	}
	return []Generator{DefaultAdult().Generator(), education, hours}
}

// rebin redistributes a fine-grained marginal over n equi-width bins.
func rebin(marginal []float64, n int) ([]float64, error) {
	w := make([]float64, n)
	for i, v := range marginal {
		// Spread value i's mass over its [i, i+1) span in bin space.
		lo := float64(i) * float64(n) / float64(len(marginal))
		hi := float64(i+1) * float64(n) / float64(len(marginal))
		for b := int(lo); b < n && float64(b) < hi; b++ {
			from := math.Max(lo, float64(b))
			to := math.Min(hi, float64(b+1))
			if to > from {
				w[b] += v * (to - from) / (hi - lo)
			}
		}
	}
	return Normalize(w)
}
