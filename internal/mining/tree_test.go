package mining

import (
	"errors"
	"testing"

	"optrr/internal/randx"
	"optrr/internal/rr"
)

// xorWorld builds records over schema [2, 2, 2] where the class (attribute
// 2) is the XOR of attributes 0 and 1 with the given noise rate. XOR defeats
// single-attribute classifiers, so a correct tree must split on both.
func xorWorld(n int, noise float64, r *randx.Source) [][]int {
	out := make([][]int, n)
	for i := range out {
		a, b := r.Intn(2), r.Intn(2)
		c := a ^ b
		if r.Float64() < noise {
			c = 1 - c
		}
		out[i] = []int{a, b, c}
	}
	return out
}

func identityMR(t testing.TB, sizes ...int) *MultiRR {
	t.Helper()
	ms := make([]*rr.Matrix, len(sizes))
	for i, s := range sizes {
		ms[i] = rr.Identity(s)
	}
	mr, err := NewMultiRR(ms...)
	if err != nil {
		t.Fatal(err)
	}
	return mr
}

func warnerMR(t testing.TB, p float64, sizes ...int) *MultiRR {
	t.Helper()
	ms := make([]*rr.Matrix, len(sizes))
	for i, s := range sizes {
		ms[i] = mustWarner(t, s, p)
	}
	mr, err := NewMultiRR(ms...)
	if err != nil {
		t.Fatal(err)
	}
	return mr
}

func TestBuildTreeValidates(t *testing.T) {
	mr := identityMR(t, 2, 2)
	if _, err := BuildTree(mr, []float64{0.5, 0.5}, 1, TreeConfig{}); !errors.Is(err, ErrSchema) {
		t.Fatal("short joint accepted")
	}
	joint := []float64{0.25, 0.25, 0.25, 0.25}
	if _, err := BuildTree(mr, joint, 2, TreeConfig{}); !errors.Is(err, ErrSchema) {
		t.Fatal("bad class attribute accepted")
	}
}

func TestTreeLearnsXOROnCleanData(t *testing.T) {
	r := randx.New(1)
	records := xorWorld(20000, 0, r)
	mr := identityMR(t, 2, 2, 2)
	joint, err := mr.EmpiricalJoint(records)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := BuildTree(mr, joint, 2, TreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := tree.Accuracy(records)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.999 {
		t.Fatalf("XOR accuracy = %v, want ~1\n%s", acc, tree)
	}
}

// TestTreeLearnsXORFromDisguisedData is the Du–Zhan scenario: the tree is
// trained purely on disguised records (via the reconstructed joint) and must
// still classify clean records well.
func TestTreeLearnsXORFromDisguisedData(t *testing.T) {
	r := randx.New(2)
	records := xorWorld(60000, 0.05, r)
	mr := warnerMR(t, 0.8, 2, 2, 2)
	disguised, err := mr.Disguise(records, r)
	if err != nil {
		t.Fatal(err)
	}
	joint, err := mr.EstimateJoint(disguised)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := BuildTree(mr, joint, 2, TreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := tree.Accuracy(records)
	if err != nil {
		t.Fatal(err)
	}
	// Bayes-optimal accuracy is 0.95 (the label noise); the reconstructed
	// tree should get close.
	if acc < 0.9 {
		t.Fatalf("disguised-data XOR accuracy = %v, want > 0.9\n%s", acc, tree)
	}
}

func TestTreeMaxDepthForcesLeaf(t *testing.T) {
	r := randx.New(3)
	records := xorWorld(5000, 0, r)
	mr := identityMR(t, 2, 2, 2)
	joint, err := mr.EmpiricalJoint(records)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := BuildTree(mr, joint, 2, TreeConfig{MaxDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Depth 1: a single split (or leaf); children must be leaves.
	if !tree.Root.Leaf {
		for _, child := range tree.Root.Children {
			if !child.Leaf {
				t.Fatal("MaxDepth 1 produced a depth-2 tree")
			}
		}
	}
	// XOR is not learnable at depth 1: accuracy near 0.5.
	acc, err := tree.Accuracy(records)
	if err != nil {
		t.Fatal(err)
	}
	if acc > 0.6 {
		t.Fatalf("depth-1 XOR accuracy = %v, expected near 0.5", acc)
	}
}

func TestTreeSkipsUselessAttributes(t *testing.T) {
	// Attribute 1 is pure noise; attribute 0 equals the class. The tree
	// should split only on attribute 0 and stop.
	r := randx.New(4)
	records := make([][]int, 10000)
	for i := range records {
		a := r.Intn(2)
		records[i] = []int{a, r.Intn(3), a}
	}
	mr := identityMR(t, 2, 3, 2)
	joint, err := mr.EmpiricalJoint(records)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := BuildTree(mr, joint, 2, TreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Root.Leaf || tree.Root.Attr != 0 {
		t.Fatalf("root should split on attribute 0:\n%s", tree)
	}
	for _, child := range tree.Root.Children {
		if !child.Leaf {
			t.Fatalf("children should be pure leaves:\n%s", tree)
		}
	}
}

func TestTreeClassifyValidation(t *testing.T) {
	mr := identityMR(t, 2, 2)
	joint := []float64{0.5, 0, 0, 0.5}
	tree, err := BuildTree(mr, joint, 1, TreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tree.Classify([]int{0}); !errors.Is(err, ErrSchema) {
		t.Fatal("short record accepted")
	}
	if _, err := tree.Classify([]int{7, 0}); !errors.Is(err, ErrSchema) {
		t.Fatal("out-of-range record accepted")
	}
	if _, err := tree.Accuracy(nil); !errors.Is(err, ErrNoData) {
		t.Fatal("empty accuracy accepted")
	}
}

func TestTreeHandlesNegativeJointEntries(t *testing.T) {
	// Inversion estimates carry small negative cells; BuildTree must clamp
	// them rather than produce negative probabilities.
	mr := identityMR(t, 2, 2)
	joint := []float64{0.6, -0.05, 0.05, 0.4}
	tree, err := BuildTree(mr, joint, 1, TreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tree.Classify([]int{0, 0}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuildTree(b *testing.B) {
	r := randx.New(1)
	records := xorWorld(10000, 0.05, r)
	mr := identityMR(b, 2, 2, 2)
	joint, err := mr.EmpiricalJoint(records)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildTree(mr, joint, 2, TreeConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}
