package mining

import (
	"errors"
	"math"
	"reflect"
	"sort"
	"testing"

	"optrr/internal/randx"
	"optrr/internal/rr"
)

// basketWorld generates baskets over nItems binary items: item 0 appears
// with probability 0.6; item 1 follows item 0 with probability 0.9 (strong
// rule 0 ⇒ 1) and appears alone with probability 0.1; remaining items are
// independent with probability 0.2.
func basketWorld(nItems, n int, r *randx.Source) [][]int {
	out := make([][]int, n)
	for i := range out {
		rec := make([]int, nItems)
		if r.Float64() < 0.6 {
			rec[0] = 1
		}
		p1 := 0.1
		if rec[0] == 1 {
			p1 = 0.9
		}
		if r.Float64() < p1 {
			rec[1] = 1
		}
		for j := 2; j < nItems; j++ {
			if r.Float64() < 0.2 {
				rec[j] = 1
			}
		}
		out[i] = rec
	}
	return out
}

func binaryMatrices(t testing.TB, nItems int, p float64) []*rr.Matrix {
	t.Helper()
	ms := make([]*rr.Matrix, nItems)
	for i := range ms {
		ms[i] = mustWarner(t, 2, p)
	}
	return ms
}

func trueSupport(baskets [][]int, items []int) float64 {
	count := 0
	for _, b := range baskets {
		all := true
		for _, it := range items {
			if b[it] != 1 {
				all = false
				break
			}
		}
		if all {
			count++
		}
	}
	return float64(count) / float64(len(baskets))
}

func TestNewBasketMinerValidates(t *testing.T) {
	if _, err := NewBasketMiner([]*rr.Matrix{mustWarner(t, 3, 0.8)}, [][]int{{0}}); !errors.Is(err, ErrSchema) {
		t.Fatal("non-binary matrix accepted")
	}
	if _, err := NewBasketMiner(binaryMatrices(t, 2, 0.8), nil); !errors.Is(err, ErrNoData) {
		t.Fatal("empty baskets accepted")
	}
	if _, err := NewBasketMiner(binaryMatrices(t, 2, 0.8), [][]int{{0, 2}}); !errors.Is(err, ErrSchema) {
		t.Fatal("non-binary basket value accepted")
	}
}

func TestSupportEmptySetIsOne(t *testing.T) {
	bm, err := NewBasketMiner(binaryMatrices(t, 2, 0.8), [][]int{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	s, err := bm.Support(nil)
	if err != nil {
		t.Fatal(err)
	}
	if s != 1 {
		t.Fatalf("empty-set support = %v, want 1", s)
	}
}

func TestSupportValidatesItems(t *testing.T) {
	bm, err := NewBasketMiner(binaryMatrices(t, 3, 0.8), [][]int{{0, 1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bm.Support([]int{0, 0}); !errors.Is(err, ErrSchema) {
		t.Fatal("duplicate items accepted")
	}
	if _, err := bm.Support([]int{5}); !errors.Is(err, ErrSchema) {
		t.Fatal("out-of-range item accepted")
	}
}

func TestSupportRecoversTrueSupport(t *testing.T) {
	r := randx.New(7)
	const nItems = 5
	baskets := basketWorld(nItems, 80000, r)
	ms := binaryMatrices(t, nItems, 0.85)
	mr, err := NewMultiRR(ms...)
	if err != nil {
		t.Fatal(err)
	}
	disguised, err := mr.Disguise(baskets, r)
	if err != nil {
		t.Fatal(err)
	}
	bm, err := NewBasketMiner(ms, disguised)
	if err != nil {
		t.Fatal(err)
	}
	for _, items := range [][]int{{0}, {1}, {0, 1}, {2, 3}, {0, 1, 2}} {
		want := trueSupport(baskets, items)
		got, err := bm.Support(items)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 0.02 {
			t.Errorf("support%v = %v, want approx %v", items, got, want)
		}
	}
}

func TestFrequentItemsetsFindsPlantedPair(t *testing.T) {
	r := randx.New(9)
	const nItems = 5
	baskets := basketWorld(nItems, 60000, r)
	ms := binaryMatrices(t, nItems, 0.85)
	mr, err := NewMultiRR(ms...)
	if err != nil {
		t.Fatal(err)
	}
	disguised, err := mr.Disguise(baskets, r)
	if err != nil {
		t.Fatal(err)
	}
	bm, err := NewBasketMiner(ms, disguised)
	if err != nil {
		t.Fatal(err)
	}
	frequent, err := bm.FrequentItemsets(0.4, 3)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range frequent {
		if reflect.DeepEqual(f.Items, []int{0, 1}) {
			found = true
			// True support of {0,1} is about 0.54.
			if f.Support < 0.45 || f.Support > 0.65 {
				t.Errorf("planted pair support = %v", f.Support)
			}
		}
		if len(f.Items) > 1 {
			// Every frequent itemset must pass the Apriori property: each
			// single item must itself be frequent.
			for _, it := range f.Items {
				s, err := bm.Support([]int{it})
				if err != nil {
					t.Fatal(err)
				}
				if s < 0.4-0.02 {
					t.Errorf("itemset %v contains infrequent item %d (s=%v)", f.Items, it, s)
				}
			}
		}
	}
	if !found {
		t.Fatalf("planted pair {0,1} not found; got %v", frequent)
	}
}

func TestFrequentItemsetsValidates(t *testing.T) {
	bm, err := NewBasketMiner(binaryMatrices(t, 2, 0.8), [][]int{{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bm.FrequentItemsets(0, 2); !errors.Is(err, ErrSchema) {
		t.Fatal("minSupport 0 accepted")
	}
	if _, err := bm.FrequentItemsets(1.2, 2); !errors.Is(err, ErrSchema) {
		t.Fatal("minSupport > 1 accepted")
	}
}

func TestRulesRecoverPlantedImplication(t *testing.T) {
	r := randx.New(11)
	const nItems = 4
	baskets := basketWorld(nItems, 60000, r)
	ms := binaryMatrices(t, nItems, 0.85)
	mr, err := NewMultiRR(ms...)
	if err != nil {
		t.Fatal(err)
	}
	disguised, err := mr.Disguise(baskets, r)
	if err != nil {
		t.Fatal(err)
	}
	bm, err := NewBasketMiner(ms, disguised)
	if err != nil {
		t.Fatal(err)
	}
	frequent, err := bm.FrequentItemsets(0.3, 2)
	if err != nil {
		t.Fatal(err)
	}
	rules, err := bm.Rules(frequent, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	// The planted rule 0 ⇒ 1 has confidence ~0.9.
	found := false
	for _, rule := range rules {
		if reflect.DeepEqual(rule.Antecedent, []int{0}) && reflect.DeepEqual(rule.Consequent, []int{1}) {
			found = true
			if rule.Confidence < 0.8 || rule.Confidence > 1.0 {
				t.Errorf("rule 0=>1 confidence = %v, want approx 0.9", rule.Confidence)
			}
		}
	}
	if !found {
		t.Fatalf("planted rule 0=>1 not found in %v", rules)
	}
	// Rules are sorted by descending confidence.
	if !sort.SliceIsSorted(rules, func(a, b int) bool { return rules[a].Confidence > rules[b].Confidence }) {
		t.Fatal("rules not sorted by confidence")
	}
}

func TestAprioriJoin(t *testing.T) {
	level := [][]int{{0, 1}, {0, 2}, {1, 2}}
	got := aprioriJoin(level)
	// {0,1}+{0,2} share prefix {0} -> {0,1,2}; {1,2} has no prefix partner.
	if len(got) != 1 || !reflect.DeepEqual(got[0], []int{0, 1, 2}) {
		t.Fatalf("aprioriJoin = %v", got)
	}
}

func TestAllSubsetsFrequent(t *testing.T) {
	keys := map[string]bool{
		keyOf([]int{0, 1}): true,
		keyOf([]int{0, 2}): true,
		keyOf([]int{1, 2}): true,
	}
	if !allSubsetsFrequent([]int{0, 1, 2}, keys) {
		t.Fatal("fully supported candidate rejected")
	}
	delete(keys, keyOf([]int{1, 2}))
	if allSubsetsFrequent([]int{0, 1, 2}, keys) {
		t.Fatal("candidate with infrequent subset accepted")
	}
}

func BenchmarkSupportPair(b *testing.B) {
	r := randx.New(1)
	baskets := basketWorld(6, 10000, r)
	ms := binaryMatrices(b, 6, 0.85)
	mr, err := NewMultiRR(ms...)
	if err != nil {
		b.Fatal(err)
	}
	disguised, err := mr.Disguise(baskets, r)
	if err != nil {
		b.Fatal(err)
	}
	bm, err := NewBasketMiner(ms, disguised)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bm.Support([]int{0, 1}); err != nil {
			b.Fatal(err)
		}
	}
}
