package mining

import (
	"fmt"
	"math"

	"optrr/internal/rr"
)

// Naive-Bayes classification from disguised data: the class prior and each
// attribute's class-conditional distribution are reconstructed from the
// disguised records (each conditional needs only the two-dimensional joint
// of one attribute with the class), then classification proceeds as usual.

// NaiveBayes is a classifier trained on disguised records.
type NaiveBayes struct {
	classAttr  int
	sizes      []int
	classPrior []float64
	// cond[d][c*size_d + v] = P(attr_d = v | class = c); nil for the class
	// attribute itself.
	cond [][]float64
}

// TrainNaiveBayes reconstructs the class prior and per-attribute
// conditionals from disguised records. Reconstructed probabilities are
// clipped onto the simplex and Laplace-smoothed with the given alpha
// (relative to a nominal record count of len(disguised)); alpha zero means
// 1.
func TrainNaiveBayes(mr *MultiRR, disguised [][]int, classAttr int, alpha float64) (*NaiveBayes, error) {
	if classAttr < 0 || classAttr >= mr.Attributes() {
		return nil, fmt.Errorf("%w: class attribute %d", ErrSchema, classAttr)
	}
	if len(disguised) == 0 {
		return nil, ErrNoData
	}
	if alpha == 0 {
		alpha = 1
	}
	n := float64(len(disguised))
	nClass := mr.Sizes()[classAttr]

	// Class prior from the class attribute's one-dimensional reconstruction.
	classCol := make([][]int, len(disguised))
	for k, rec := range disguised {
		if err := mr.checkRecord(rec); err != nil {
			return nil, fmt.Errorf("record %d: %w", k, err)
		}
		classCol[k] = []int{rec[classAttr]}
	}
	classRR, err := NewMultiRR(mr.Matrix(classAttr))
	if err != nil {
		return nil, err
	}
	rawPrior, err := classRR.EstimateJoint(classCol)
	if err != nil {
		return nil, err
	}
	prior := smooth(rr.Clip(rawPrior), alpha, n)

	nb := &NaiveBayes{
		classAttr:  classAttr,
		sizes:      mr.Sizes(),
		classPrior: prior,
		cond:       make([][]float64, mr.Attributes()),
	}
	for d := 0; d < mr.Attributes(); d++ {
		if d == classAttr {
			continue
		}
		pairRR, err := NewMultiRR(mr.Matrix(d), mr.Matrix(classAttr))
		if err != nil {
			return nil, err
		}
		pair := make([][]int, len(disguised))
		for k, rec := range disguised {
			pair[k] = []int{rec[d], rec[classAttr]}
		}
		joint, err := pairRR.EstimateJoint(pair)
		if err != nil {
			return nil, err
		}
		sizeD := nb.sizes[d]
		cond := make([]float64, nClass*sizeD)
		col := make([]float64, sizeD)
		for c := 0; c < nClass; c++ {
			for v := 0; v < sizeD; v++ {
				col[v] = joint[v*nClass+c]
			}
			sm := smooth(rr.Clip(col), alpha, n)
			copy(cond[c*sizeD:(c+1)*sizeD], sm)
		}
		nb.cond[d] = cond
	}
	return nb, nil
}

// smooth applies Laplace smoothing with pseudo-count alpha against a nominal
// record count n to a probability vector.
func smooth(p []float64, alpha, n float64) []float64 {
	k := float64(len(p))
	out := make([]float64, len(p))
	denom := n + alpha*k
	for i, v := range p {
		out[i] = (v*n + alpha) / denom
	}
	return out
}

// Classify predicts the class of a record (its class attribute value is
// ignored) by maximizing the log-posterior.
func (nb *NaiveBayes) Classify(rec []int) (int, error) {
	if len(rec) != len(nb.sizes) {
		return 0, fmt.Errorf("%w: record has %d attributes, want %d", ErrSchema, len(rec), len(nb.sizes))
	}
	nClass := nb.sizes[nb.classAttr]
	best, bestScore := 0, math.Inf(-1)
	for c := 0; c < nClass; c++ {
		score := math.Log(nb.classPrior[c])
		for d, cond := range nb.cond {
			if cond == nil {
				continue
			}
			v := rec[d]
			if v < 0 || v >= nb.sizes[d] {
				return 0, fmt.Errorf("%w: attribute %d has value %d", ErrSchema, d, v)
			}
			score += math.Log(cond[c*nb.sizes[d]+v])
		}
		if score > bestScore {
			best, bestScore = c, score
		}
	}
	return best, nil
}

// Accuracy returns the fraction of records whose class the model predicts
// correctly.
func (nb *NaiveBayes) Accuracy(records [][]int) (float64, error) {
	if len(records) == 0 {
		return 0, ErrNoData
	}
	correct := 0
	for _, rec := range records {
		c, err := nb.Classify(rec)
		if err != nil {
			return 0, err
		}
		if c == rec[nb.classAttr] {
			correct++
		}
	}
	return float64(correct) / float64(len(records)), nil
}

// ClassPrior returns the reconstructed class distribution.
func (nb *NaiveBayes) ClassPrior() []float64 {
	out := make([]float64, len(nb.classPrior))
	copy(out, nb.classPrior)
	return out
}
