package mining

import (
	"fmt"
	"sort"

	"optrr/internal/rr"
)

// Association-rule mining on disguised basket data, in the style of Rizvi &
// Haritsa: every item column is a binary attribute disguised independently
// (each bit flips with some probability), and itemset supports are estimated
// by reconstructing the joint distribution of just the itemset's columns.

// Itemset is a set of item indices with its estimated support.
type Itemset struct {
	// Items is sorted ascending.
	Items []int
	// Support is the reconstructed probability that a basket contains every
	// item in the set.
	Support float64
}

// Rule is an association rule X ⇒ Y with reconstructed quality measures.
type Rule struct {
	// Antecedent and Consequent are disjoint sorted item sets.
	Antecedent []int
	Consequent []int
	// Support is the reconstructed support of Antecedent ∪ Consequent.
	Support float64
	// Confidence is Support / support(Antecedent).
	Confidence float64
}

// BasketMiner estimates itemset supports from disguised basket data.
type BasketMiner struct {
	mr        *MultiRR
	disguised [][]int
}

// NewBasketMiner wraps disguised baskets (rows of {0, 1} values, one column
// per item) together with the per-item RR matrices that disguised them.
// Every matrix must be 2×2.
func NewBasketMiner(ms []*rr.Matrix, disguised [][]int) (*BasketMiner, error) {
	for i, m := range ms {
		if m == nil || m.N() != 2 {
			return nil, fmt.Errorf("%w: item %d needs a 2x2 matrix", ErrSchema, i)
		}
	}
	mr, err := NewMultiRR(ms...)
	if err != nil {
		return nil, err
	}
	if len(disguised) == 0 {
		return nil, ErrNoData
	}
	for k, rec := range disguised {
		if err := mr.checkRecord(rec); err != nil {
			return nil, fmt.Errorf("basket %d: %w", k, err)
		}
	}
	return &BasketMiner{mr: mr, disguised: disguised}, nil
}

// Items returns the number of item columns.
func (bm *BasketMiner) Items() int { return bm.mr.Attributes() }

// Support reconstructs the support of an itemset: the probability that all
// listed items are 1 in the original data. The reconstruction inverts only
// the |items| relevant axes, so the cost is O(N·|items| + 2^|items|).
func (bm *BasketMiner) Support(items []int) (float64, error) {
	if len(items) == 0 {
		return 1, nil
	}
	seen := make(map[int]bool, len(items))
	ms := make([]*rr.Matrix, len(items))
	for i, it := range items {
		if it < 0 || it >= bm.Items() || seen[it] {
			return 0, fmt.Errorf("%w: bad item %d", ErrSchema, it)
		}
		seen[it] = true
		ms[i] = bm.mr.Matrix(it)
	}
	sub, err := NewMultiRR(ms...)
	if err != nil {
		return 0, err
	}
	proj := make([][]int, len(bm.disguised))
	for k, rec := range bm.disguised {
		row := make([]int, len(items))
		for i, it := range items {
			row[i] = rec[it]
		}
		proj[k] = row
	}
	joint, err := sub.EstimateJoint(proj)
	if err != nil {
		return 0, err
	}
	// Support is the all-ones cell, the last index in row-major layout.
	return joint[len(joint)-1], nil
}

// FrequentItemsets runs Apriori over reconstructed supports: all itemsets
// with Support ≥ minSupport and size ≤ maxSize, in ascending-size then
// lexicographic order. Reconstructed supports can be slightly negative; such
// sets are treated as infrequent.
func (bm *BasketMiner) FrequentItemsets(minSupport float64, maxSize int) ([]Itemset, error) {
	if minSupport <= 0 || minSupport > 1 {
		return nil, fmt.Errorf("%w: minSupport %v outside (0, 1]", ErrSchema, minSupport)
	}
	if maxSize <= 0 || maxSize > bm.Items() {
		maxSize = bm.Items()
	}
	var out []Itemset
	// Level 1.
	var level [][]int
	levelKeys := make(map[string]bool)
	for it := 0; it < bm.Items(); it++ {
		s, err := bm.Support([]int{it})
		if err != nil {
			return nil, err
		}
		if s >= minSupport {
			set := []int{it}
			out = append(out, Itemset{Items: set, Support: s})
			level = append(level, set)
			levelKeys[keyOf(set)] = true
		}
	}
	for size := 2; size <= maxSize && len(level) > 0; size++ {
		candidates := aprioriJoin(level)
		var next [][]int
		nextKeys := make(map[string]bool)
		for _, cand := range candidates {
			if !allSubsetsFrequent(cand, levelKeys) {
				continue
			}
			s, err := bm.Support(cand)
			if err != nil {
				return nil, err
			}
			if s >= minSupport {
				out = append(out, Itemset{Items: cand, Support: s})
				next = append(next, cand)
				nextKeys[keyOf(cand)] = true
			}
		}
		level = next
		levelKeys = nextKeys
	}
	return out, nil
}

// Rules derives association rules with a single-item consequent from the
// frequent itemsets, keeping those meeting the confidence threshold.
func (bm *BasketMiner) Rules(frequent []Itemset, minConfidence float64) ([]Rule, error) {
	support := make(map[string]float64, len(frequent))
	for _, f := range frequent {
		support[keyOf(f.Items)] = f.Support
	}
	var rules []Rule
	for _, f := range frequent {
		if len(f.Items) < 2 {
			continue
		}
		for _, cons := range f.Items {
			ante := make([]int, 0, len(f.Items)-1)
			for _, it := range f.Items {
				if it != cons {
					ante = append(ante, it)
				}
			}
			anteSupport, ok := support[keyOf(ante)]
			if !ok || anteSupport <= 0 {
				continue
			}
			conf := f.Support / anteSupport
			if conf >= minConfidence {
				rules = append(rules, Rule{
					Antecedent: ante,
					Consequent: []int{cons},
					Support:    f.Support,
					Confidence: conf,
				})
			}
		}
	}
	sort.Slice(rules, func(a, b int) bool { return rules[a].Confidence > rules[b].Confidence })
	return rules, nil
}

// aprioriJoin merges same-size frequent sets sharing a prefix into
// candidates one item larger.
func aprioriJoin(level [][]int) [][]int {
	var out [][]int
	for i := 0; i < len(level); i++ {
		for j := i + 1; j < len(level); j++ {
			a, b := level[i], level[j]
			k := len(a)
			if !samePrefix(a, b, k-1) {
				continue
			}
			lo, hi := a[k-1], b[k-1]
			if lo > hi {
				lo, hi = hi, lo
			}
			cand := make([]int, 0, k+1)
			cand = append(cand, a[:k-1]...)
			cand = append(cand, lo, hi)
			out = append(out, cand)
		}
	}
	return out
}

func samePrefix(a, b []int, k int) bool {
	for i := 0; i < k; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// allSubsetsFrequent checks the Apriori pruning property: every subset of
// cand one item smaller must have been frequent at the previous level.
func allSubsetsFrequent(cand []int, levelKeys map[string]bool) bool {
	sub := make([]int, 0, len(cand)-1)
	for skip := range cand {
		sub = sub[:0]
		for i, it := range cand {
			if i != skip {
				sub = append(sub, it)
			}
		}
		if !levelKeys[keyOf(sub)] {
			return false
		}
	}
	return true
}

// keyOf renders a sorted itemset as a map key.
func keyOf(items []int) string {
	return fmt.Sprint(items)
}
