package mining

import (
	"fmt"
	"math"
	"strings"
)

// Decision-tree building on disguised data, in the style of Du & Zhan:
// because individual records are noisy, the tree is grown not from record
// counts but from the reconstructed joint distribution of attributes and
// class — each split's information gain is computed from (estimated)
// probabilities. The tree itself is plain ID3 over categorical attributes.

// TreeConfig controls tree growth.
type TreeConfig struct {
	// MaxDepth bounds the tree height; zero means the number of attributes.
	MaxDepth int
	// MinMass prunes branches whose (estimated) probability mass is below
	// this threshold; such estimates are dominated by reconstruction noise.
	// Zero means 1e-4.
	MinMass float64
}

func (c TreeConfig) withDefaults(attrs int) TreeConfig {
	if c.MaxDepth == 0 {
		c.MaxDepth = attrs
	}
	if c.MinMass == 0 {
		c.MinMass = 1e-4
	}
	return c
}

// TreeNode is a node of the decision tree: either a leaf predicting a class
// or a split on one attribute with one child per category.
type TreeNode struct {
	// Leaf is true for prediction nodes.
	Leaf bool
	// Class is the predicted class at a leaf (majority class elsewhere,
	// used when a record's path ends early).
	Class int
	// Attr is the split attribute at an internal node.
	Attr int
	// Children has one entry per category of Attr.
	Children []*TreeNode
}

// Tree is a trained decision tree over a record schema.
type Tree struct {
	// Root of the tree.
	Root *TreeNode
	// ClassAttr is the index of the class attribute within the schema.
	ClassAttr int
	sizes     []int
}

// BuildTree grows an ID3 decision tree for the class attribute classAttr
// from a (reconstructed) joint distribution over the full schema. Negative
// joint entries (inversion-estimate noise) are clamped to zero.
func BuildTree(mr *MultiRR, joint []float64, classAttr int, cfg TreeConfig) (*Tree, error) {
	if len(joint) != mr.JointSize() {
		return nil, fmt.Errorf("%w: joint of size %d, want %d", ErrSchema, len(joint), mr.JointSize())
	}
	if classAttr < 0 || classAttr >= mr.Attributes() {
		return nil, fmt.Errorf("%w: class attribute %d", ErrSchema, classAttr)
	}
	cfg = cfg.withDefaults(mr.Attributes() - 1)
	clean := make([]float64, len(joint))
	for i, v := range joint {
		if v > 0 {
			clean[i] = v
		}
	}
	var remaining []int
	for d := 0; d < mr.Attributes(); d++ {
		if d != classAttr {
			remaining = append(remaining, d)
		}
	}
	fixed := make([]int, mr.Attributes())
	for i := range fixed {
		fixed[i] = -1
	}
	root := grow(mr, clean, classAttr, fixed, remaining, cfg.MaxDepth, cfg)
	return &Tree{Root: root, ClassAttr: classAttr, sizes: mr.Sizes()}, nil
}

// grow recursively builds the subtree for the region of the joint
// distribution matching the fixed assignments.
func grow(mr *MultiRR, joint []float64, classAttr int, fixed []int, remaining []int, depth int, cfg TreeConfig) *TreeNode {
	classDist, mass := classDistribution(mr, joint, fixed, classAttr)
	majority := argmax(classDist)
	if depth <= 0 || len(remaining) == 0 || mass < cfg.MinMass || pure(classDist) {
		return &TreeNode{Leaf: true, Class: majority}
	}
	// Pick the attribute with maximal information gain, i.e. minimal
	// expected conditional class entropy.
	bestAttr, bestEntropy := -1, math.Inf(1)
	for _, d := range remaining {
		h := conditionalClassEntropy(mr, joint, fixed, classAttr, d)
		if h < bestEntropy-1e-12 {
			bestAttr, bestEntropy = d, h
		}
	}
	if bestAttr == -1 || bestEntropy >= entropy(classDist)-1e-12 {
		// No attribute reduces class entropy: stop.
		return &TreeNode{Leaf: true, Class: majority}
	}
	node := &TreeNode{Attr: bestAttr, Class: majority, Children: make([]*TreeNode, mr.sizes[bestAttr])}
	childRemaining := make([]int, 0, len(remaining)-1)
	for _, d := range remaining {
		if d != bestAttr {
			childRemaining = append(childRemaining, d)
		}
	}
	for v := 0; v < mr.sizes[bestAttr]; v++ {
		fixed[bestAttr] = v
		node.Children[v] = grow(mr, joint, classAttr, fixed, childRemaining, depth-1, cfg)
	}
	fixed[bestAttr] = -1
	return node
}

// classDistribution returns the class marginal within the fixed region and
// the region's total mass.
func classDistribution(mr *MultiRR, joint []float64, fixed []int, classAttr int) ([]float64, float64) {
	dist := make([]float64, mr.sizes[classAttr])
	var mass float64
	for idx, p := range joint {
		if p == 0 {
			continue
		}
		rec := mr.Unindex(idx)
		if !matches(rec, fixed) {
			continue
		}
		dist[rec[classAttr]] += p
		mass += p
	}
	if mass > 0 {
		for i := range dist {
			dist[i] /= mass
		}
	}
	return dist, mass
}

// conditionalClassEntropy returns H(class | attr) within the fixed region.
func conditionalClassEntropy(mr *MultiRR, joint []float64, fixed []int, classAttr, attr int) float64 {
	nAttr := mr.sizes[attr]
	nClass := mr.sizes[classAttr]
	table := make([]float64, nAttr*nClass)
	var mass float64
	for idx, p := range joint {
		if p == 0 {
			continue
		}
		rec := mr.Unindex(idx)
		if !matches(rec, fixed) {
			continue
		}
		table[rec[attr]*nClass+rec[classAttr]] += p
		mass += p
	}
	if mass == 0 {
		return 0
	}
	var h float64
	for a := 0; a < nAttr; a++ {
		var rowMass float64
		for c := 0; c < nClass; c++ {
			rowMass += table[a*nClass+c]
		}
		if rowMass == 0 {
			continue
		}
		var rowH float64
		for c := 0; c < nClass; c++ {
			p := table[a*nClass+c] / rowMass
			if p > 0 {
				rowH -= p * math.Log2(p)
			}
		}
		h += rowMass / mass * rowH
	}
	return h
}

func matches(rec, fixed []int) bool {
	for d, want := range fixed {
		if want >= 0 && rec[d] != want {
			return false
		}
	}
	return true
}

func entropy(p []float64) float64 {
	var h float64
	for _, v := range p {
		if v > 0 {
			h -= v * math.Log2(v)
		}
	}
	return h
}

func pure(p []float64) bool {
	for _, v := range p {
		if v > 1-1e-9 {
			return true
		}
	}
	return false
}

func argmax(p []float64) int {
	best, bestV := 0, math.Inf(-1)
	for i, v := range p {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// Classify predicts the class of a record (the class attribute's value in
// the record is ignored).
func (t *Tree) Classify(rec []int) (int, error) {
	if len(rec) != len(t.sizes) {
		return 0, fmt.Errorf("%w: record has %d attributes, want %d", ErrSchema, len(rec), len(t.sizes))
	}
	node := t.Root
	for !node.Leaf {
		v := rec[node.Attr]
		if v < 0 || v >= len(node.Children) {
			return 0, fmt.Errorf("%w: attribute %d has value %d", ErrSchema, node.Attr, v)
		}
		node = node.Children[v]
	}
	return node.Class, nil
}

// Accuracy returns the fraction of records whose class attribute the tree
// predicts correctly.
func (t *Tree) Accuracy(records [][]int) (float64, error) {
	if len(records) == 0 {
		return 0, ErrNoData
	}
	correct := 0
	for _, rec := range records {
		c, err := t.Classify(rec)
		if err != nil {
			return 0, err
		}
		if c == rec[t.ClassAttr] {
			correct++
		}
	}
	return float64(correct) / float64(len(records)), nil
}

// String renders the tree structure for debugging.
func (t *Tree) String() string {
	var b strings.Builder
	var walk func(n *TreeNode, indent string)
	walk = func(n *TreeNode, indent string) {
		if n.Leaf {
			fmt.Fprintf(&b, "%sclass=%d\n", indent, n.Class)
			return
		}
		fmt.Fprintf(&b, "%ssplit attr=%d\n", indent, n.Attr)
		for v, child := range n.Children {
			fmt.Fprintf(&b, "%s =%d:\n", indent, v)
			walk(child, indent+"  ")
		}
	}
	walk(t.Root, "")
	return b.String()
}
