package mining

import (
	"fmt"
	"sort"
)

// Heavy-hitter discovery: finding the frequent categories of a huge domain
// from privately collected reports, the mining task that motivates
// decoupling domain size from matrix size. The discovery runs against any
// FrequencyEstimator — in practice the sketch collector, whose point queries
// are O(hashes) per category regardless of how many reports were ingested —
// and scans the domain in bounded chunks, so the working set never holds a
// full domain-sized estimate vector unless the caller asks for one.

// FrequencyEstimator answers debiased point queries over an original
// categorical domain. collector.SketchCollector implements it; any source of
// per-category frequency estimates (a remote /v1/estimate endpoint, a test
// fake) can stand in.
type FrequencyEstimator interface {
	// Categories returns the domain size.
	Categories() int
	// Estimate returns debiased frequency estimates for the requested
	// categories, in order.
	Estimate(categories ...int) ([]float64, error)
}

// Frequent is one discovered heavy hitter: a category index and its
// debiased frequency estimate.
type Frequent struct {
	Category int
	Estimate float64
}

// hitterChunk bounds how many categories one Estimate call covers during a
// domain scan, capping the transient memory at O(chunk) independent of the
// domain.
const hitterChunk = 4096

// HeavyHitters scans the estimator's domain and returns every category whose
// estimated frequency is at least threshold, sorted by estimate descending
// (ties by category index).
func HeavyHitters(est FrequencyEstimator, threshold float64) ([]Frequent, error) {
	return scanHitters(est, func(hits []Frequent) []Frequent { return hits }, threshold)
}

// TopK scans the estimator's domain and returns the k categories with the
// largest estimated frequencies, sorted descending (ties by category index).
func TopK(est FrequencyEstimator, k int) ([]Frequent, error) {
	if k <= 0 {
		return nil, fmt.Errorf("mining: top-k needs a positive k, got %d", k)
	}
	trim := func(hits []Frequent) []Frequent {
		// Keep the running set small: sort and cut back to k between chunks
		// so the scan carries at most k + hitterChunk candidates.
		sortHitters(hits)
		if len(hits) > k {
			hits = hits[:k]
		}
		return hits
	}
	hits, err := scanHitters(est, trim, -1)
	if err != nil {
		return nil, err
	}
	if len(hits) > k {
		hits = hits[:k]
	}
	return hits, nil
}

// scanHitters walks the domain in hitterChunk-sized estimate calls, keeping
// categories whose estimate clears threshold and letting trim compact the
// running candidate set after each chunk.
func scanHitters(est FrequencyEstimator, trim func([]Frequent) []Frequent, threshold float64) ([]Frequent, error) {
	domain := est.Categories()
	if domain <= 0 {
		return nil, fmt.Errorf("mining: estimator reports a %d-category domain", domain)
	}
	var hits []Frequent
	cats := make([]int, 0, hitterChunk)
	for lo := 0; lo < domain; lo += hitterChunk {
		hi := lo + hitterChunk
		if hi > domain {
			hi = domain
		}
		cats = cats[:0]
		for x := lo; x < hi; x++ {
			cats = append(cats, x)
		}
		ests, err := est.Estimate(cats...)
		if err != nil {
			return nil, err
		}
		if len(ests) != len(cats) {
			return nil, fmt.Errorf("mining: estimator returned %d estimates for %d categories", len(ests), len(cats))
		}
		for i, e := range ests {
			if e >= threshold {
				hits = append(hits, Frequent{Category: cats[i], Estimate: e})
			}
		}
		hits = trim(hits)
	}
	sortHitters(hits)
	return hits, nil
}

func sortHitters(hits []Frequent) {
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Estimate != hits[j].Estimate {
			return hits[i].Estimate > hits[j].Estimate
		}
		return hits[i].Category < hits[j].Category
	})
}
