// Package mining implements the privacy-preserving data-mining consumers
// that motivate the paper (Sections I–II) on top of the RR substrate:
//
//   - multi-dimensional randomized response — the paper's stated future
//     work (Section VII): each attribute is disguised independently and the
//     joint distribution is reconstructed by per-axis inversion;
//   - decision-tree building on reconstructed distributions, in the style
//     of Du & Zhan (KDD 2003);
//   - association-rule mining with reconstructed supports, in the style of
//     Rizvi & Haritsa (VLDB 2002);
//   - naive-Bayes classification from disguised data.
//
// All consumers operate purely on disguised records plus the RR matrices
// used to disguise them; original data never enters the computation.
package mining

import (
	"errors"
	"fmt"

	"optrr/internal/matrix"
	"optrr/internal/randx"
	"optrr/internal/rr"
)

// Mining errors.
var (
	// ErrSchema reports records inconsistent with the attribute schema.
	ErrSchema = errors.New("mining: record does not match schema")
	// ErrNoData reports an estimation request over zero records.
	ErrNoData = errors.New("mining: no records")
)

// MultiRR disguises and reconstructs multi-attribute categorical data by
// applying an independent RR matrix per attribute. The joint disguise
// channel is the Kronecker product of the per-attribute matrices, so the
// joint distribution is reconstructed by inverting one axis at a time —
// never materializing the exponentially large product matrix.
type MultiRR struct {
	ms    []*rr.Matrix
	sizes []int
	total int
}

// NewMultiRR builds a multi-dimensional disguiser from one matrix per
// attribute.
func NewMultiRR(ms ...*rr.Matrix) (*MultiRR, error) {
	if len(ms) == 0 {
		return nil, fmt.Errorf("%w: no attributes", ErrSchema)
	}
	sizes := make([]int, len(ms))
	total := 1
	for d, m := range ms {
		if m == nil {
			return nil, fmt.Errorf("%w: nil matrix for attribute %d", ErrSchema, d)
		}
		sizes[d] = m.N()
		total *= m.N()
	}
	return &MultiRR{ms: ms, sizes: sizes, total: total}, nil
}

// Attributes returns the number of attributes.
func (mr *MultiRR) Attributes() int { return len(mr.ms) }

// Sizes returns the per-attribute category counts.
func (mr *MultiRR) Sizes() []int {
	out := make([]int, len(mr.sizes))
	copy(out, mr.sizes)
	return out
}

// JointSize returns the number of cells in the joint distribution.
func (mr *MultiRR) JointSize() int { return mr.total }

// Matrix returns the RR matrix of attribute d.
func (mr *MultiRR) Matrix(d int) *rr.Matrix { return mr.ms[d] }

// checkRecord validates one multi-attribute record.
func (mr *MultiRR) checkRecord(rec []int) error {
	if len(rec) != len(mr.sizes) {
		return fmt.Errorf("%w: record has %d attributes, want %d", ErrSchema, len(rec), len(mr.sizes))
	}
	for d, v := range rec {
		if v < 0 || v >= mr.sizes[d] {
			return fmt.Errorf("%w: attribute %d has value %d, want [0,%d)", ErrSchema, d, v, mr.sizes[d])
		}
	}
	return nil
}

// Disguise applies each attribute's RR matrix independently to every record.
func (mr *MultiRR) Disguise(records [][]int, r *randx.Source) ([][]int, error) {
	samplers := make([][]*randx.Alias, len(mr.ms))
	for d, m := range mr.ms {
		samplers[d] = make([]*randx.Alias, m.N())
		for i := 0; i < m.N(); i++ {
			a, err := randx.NewAlias(m.Column(i))
			if err != nil {
				return nil, fmt.Errorf("mining: attribute %d column %d: %w", d, i, err)
			}
			samplers[d][i] = a
		}
	}
	out := make([][]int, len(records))
	for k, rec := range records {
		if err := mr.checkRecord(rec); err != nil {
			return nil, fmt.Errorf("record %d: %w", k, err)
		}
		row := make([]int, len(rec))
		for d, v := range rec {
			row[d] = samplers[d][v].Draw(r)
		}
		out[k] = row
	}
	return out, nil
}

// Index flattens a multi-attribute value into a row-major joint-cell index.
func (mr *MultiRR) Index(rec []int) (int, error) {
	if err := mr.checkRecord(rec); err != nil {
		return 0, err
	}
	idx := 0
	for d, v := range rec {
		idx = idx*mr.sizes[d] + v
	}
	return idx, nil
}

// Unindex inverts Index.
func (mr *MultiRR) Unindex(idx int) []int {
	rec := make([]int, len(mr.sizes))
	for d := len(mr.sizes) - 1; d >= 0; d-- {
		rec[d] = idx % mr.sizes[d]
		idx /= mr.sizes[d]
	}
	return rec
}

// EmpiricalJoint returns the flattened joint frequency table of records.
func (mr *MultiRR) EmpiricalJoint(records [][]int) ([]float64, error) {
	if len(records) == 0 {
		return nil, ErrNoData
	}
	joint := make([]float64, mr.total)
	inv := 1 / float64(len(records))
	for k, rec := range records {
		idx, err := mr.Index(rec)
		if err != nil {
			return nil, fmt.Errorf("record %d: %w", k, err)
		}
		joint[idx] += inv
	}
	return joint, nil
}

// EstimateJoint reconstructs the original joint distribution from disguised
// records: the empirical disguised joint is computed and each axis is
// inverted with that attribute's matrix (Theorem 1 applied per axis). The
// estimate is unbiased but, like the one-dimensional inversion estimate, may
// contain small negative entries for finite samples; use rr.Clip if a proper
// distribution is required.
func (mr *MultiRR) EstimateJoint(disguised [][]int) ([]float64, error) {
	joint, err := mr.EmpiricalJoint(disguised)
	if err != nil {
		return nil, err
	}
	return mr.invertAxes(joint)
}

// invertAxes applies M_d⁻¹ along every axis of the flattened joint table.
func (mr *MultiRR) invertAxes(joint []float64) ([]float64, error) {
	out := make([]float64, len(joint))
	copy(out, joint)
	// Strides for row-major layout.
	strides := make([]int, len(mr.sizes))
	stride := 1
	for d := len(mr.sizes) - 1; d >= 0; d-- {
		strides[d] = stride
		stride *= mr.sizes[d]
	}
	for d, m := range mr.ms {
		lu, err := matrix.Factorize(m.Dense())
		if err != nil {
			return nil, fmt.Errorf("mining: attribute %d: %w", d, err)
		}
		size := mr.sizes[d]
		st := strides[d]
		block := st * size
		fiber := make([]float64, size)
		for base := 0; base < mr.total; base += block {
			for off := 0; off < st; off++ {
				start := base + off
				for i := 0; i < size; i++ {
					fiber[i] = out[start+i*st]
				}
				solved, err := lu.SolveVec(fiber)
				if err != nil {
					return nil, fmt.Errorf("mining: attribute %d: %w", d, err)
				}
				for i := 0; i < size; i++ {
					out[start+i*st] = solved[i]
				}
			}
		}
	}
	return out, nil
}

// Marginal sums the joint distribution over every attribute except the ones
// listed in keep (in keep order), returning the flattened marginal and its
// sizes.
func (mr *MultiRR) Marginal(joint []float64, keep []int) ([]float64, []int, error) {
	if len(joint) != mr.total {
		return nil, nil, fmt.Errorf("%w: joint of size %d, want %d", ErrSchema, len(joint), mr.total)
	}
	seen := make(map[int]bool, len(keep))
	outSizes := make([]int, len(keep))
	outTotal := 1
	for i, d := range keep {
		if d < 0 || d >= len(mr.sizes) || seen[d] {
			return nil, nil, fmt.Errorf("%w: bad keep attribute %d", ErrSchema, d)
		}
		seen[d] = true
		outSizes[i] = mr.sizes[d]
		outTotal *= mr.sizes[d]
	}
	out := make([]float64, outTotal)
	for idx, v := range joint {
		if v == 0 {
			continue
		}
		rec := mr.Unindex(idx)
		o := 0
		for i, d := range keep {
			o = o*outSizes[i] + rec[d]
		}
		out[o] += v
	}
	return out, outSizes, nil
}
