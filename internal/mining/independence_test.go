package mining

import (
	"errors"
	"testing"

	"optrr/internal/randx"
)

// dependentWorld produces records over [3, 3] where attribute 1 copies
// attribute 0 with the given fidelity (1 = perfect dependence, 1/3 ≈
// independence).
func dependentWorld(n int, fidelity float64, r *randx.Source) [][]int {
	out := make([][]int, n)
	for i := range out {
		a := r.Intn(3)
		b := a
		if r.Float64() > fidelity {
			b = r.Intn(3)
		}
		out[i] = []int{a, b}
	}
	return out
}

// independentWorld produces records over [3, 3] with independent attributes.
func independentWorld(n int, r *randx.Source) [][]int {
	out := make([][]int, n)
	for i := range out {
		out[i] = []int{r.Intn(3), r.Intn(3)}
	}
	return out
}

func TestChiSquareDetectsDependenceThroughDisguise(t *testing.T) {
	r := randx.New(3)
	records := dependentWorld(40000, 0.8, r)
	mr := warnerMR(t, 0.8, 3, 3)
	disguised, err := mr.Disguise(records, r)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ChiSquareIndependence(mr, disguised, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Dependent(0.01) {
		t.Fatalf("strong dependence not detected: %+v", res)
	}
	if res.DegreesOfFreedom != 4 {
		t.Fatalf("dof = %d, want 4", res.DegreesOfFreedom)
	}
	if res.CramersV < 0.2 {
		t.Fatalf("effect size %v too small for a strong dependence", res.CramersV)
	}
}

func TestChiSquareAcceptsIndependenceThroughDisguise(t *testing.T) {
	// The adjusted test should keep roughly its nominal level: across
	// repeated independent samples, rejections at alpha = 0.05 should be
	// rare (the conservative effective-N adjustment pushes the level below
	// nominal).
	rejections := 0
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		r := randx.New(uint64(100 + trial))
		records := independentWorld(20000, r)
		mr := warnerMR(t, 0.8, 3, 3)
		disguised, err := mr.Disguise(records, r)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ChiSquareIndependence(mr, disguised, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if res.Dependent(0.05) {
			rejections++
		}
	}
	if rejections > 4 {
		t.Fatalf("independent data rejected %d/%d times at alpha=0.05", rejections, trials)
	}
}

func TestChiSquareIdentityMatchesClassicTest(t *testing.T) {
	// With identity matrices the test reduces to the ordinary chi-square
	// independence test at the true sample size.
	r := randx.New(5)
	records := dependentWorld(5000, 0.6, r)
	mr := identityMR(t, 3, 3)
	res, err := ChiSquareIndependence(mr, records, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.EffectiveN != 5000 {
		t.Fatalf("identity effective N = %v, want 5000", res.EffectiveN)
	}
	if !res.Dependent(0.001) {
		t.Fatalf("clean dependent data not detected: %+v", res)
	}
}

func TestChiSquareValidation(t *testing.T) {
	mr := warnerMR(t, 0.8, 3, 3)
	if _, err := ChiSquareIndependence(mr, nil, 0, 1); !errors.Is(err, ErrNoData) {
		t.Fatal("empty data accepted")
	}
	if _, err := ChiSquareIndependence(mr, [][]int{{0, 0}}, 0, 0); !errors.Is(err, ErrSchema) {
		t.Fatal("self test accepted")
	}
	if _, err := ChiSquareIndependence(mr, [][]int{{0, 0}}, 0, 5); !errors.Is(err, ErrSchema) {
		t.Fatal("bad attribute accepted")
	}
	if _, err := ChiSquareIndependence(mr, [][]int{{0, 9}}, 0, 1); !errors.Is(err, ErrSchema) {
		t.Fatal("bad record accepted")
	}
}

func TestEffectiveSampleFactor(t *testing.T) {
	id := identityMR(t, 3, 3)
	f, err := EffectiveSampleFactor(id.Matrix(0), id.Matrix(1))
	if err != nil {
		t.Fatal(err)
	}
	if f != 1 {
		t.Fatalf("identity factor = %v, want 1", f)
	}
	noisy := warnerMR(t, 0.6, 3, 3)
	f2, err := EffectiveSampleFactor(noisy.Matrix(0), noisy.Matrix(1))
	if err != nil {
		t.Fatal(err)
	}
	if f2 >= 1 || f2 <= 0 {
		t.Fatalf("noisy factor = %v, want in (0, 1)", f2)
	}
}

func BenchmarkChiSquareIndependence(b *testing.B) {
	r := randx.New(1)
	records := dependentWorld(10000, 0.7, r)
	mr := warnerMR(b, 0.8, 3, 3)
	disguised, err := mr.Disguise(records, r)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ChiSquareIndependence(mr, disguised, 0, 1); err != nil {
			b.Fatal(err)
		}
	}
}
