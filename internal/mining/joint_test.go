package mining

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"optrr/internal/randx"
	"optrr/internal/rr"
)

func mustWarner(t testing.TB, n int, p float64) *rr.Matrix {
	t.Helper()
	m, err := rr.Warner(n, p)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// sampleJoint draws records from a known joint distribution over the given
// sizes.
func sampleJoint(t testing.TB, joint []float64, sizes []int, n int, r *randx.Source) [][]int {
	t.Helper()
	alias, err := randx.NewAlias(joint)
	if err != nil {
		t.Fatal(err)
	}
	ms := make([]*rr.Matrix, len(sizes))
	for d, s := range sizes {
		ms[d] = rr.Identity(s)
	}
	mr, err := NewMultiRR(ms...)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]int, n)
	for i := range out {
		out[i] = mr.Unindex(alias.Draw(r))
	}
	return out
}

func TestNewMultiRRValidates(t *testing.T) {
	if _, err := NewMultiRR(); !errors.Is(err, ErrSchema) {
		t.Fatalf("empty: err = %v", err)
	}
	if _, err := NewMultiRR(nil); !errors.Is(err, ErrSchema) {
		t.Fatalf("nil matrix: err = %v", err)
	}
	mr, err := NewMultiRR(mustWarner(t, 3, 0.8), mustWarner(t, 4, 0.7))
	if err != nil {
		t.Fatal(err)
	}
	if mr.Attributes() != 2 || mr.JointSize() != 12 {
		t.Fatalf("attributes = %d, joint = %d", mr.Attributes(), mr.JointSize())
	}
	if s := mr.Sizes(); s[0] != 3 || s[1] != 4 {
		t.Fatalf("sizes = %v", s)
	}
}

func TestIndexUnindexRoundTrip(t *testing.T) {
	mr, err := NewMultiRR(mustWarner(t, 3, 0.8), mustWarner(t, 4, 0.7), mustWarner(t, 2, 0.9))
	if err != nil {
		t.Fatal(err)
	}
	for idx := 0; idx < mr.JointSize(); idx++ {
		rec := mr.Unindex(idx)
		back, err := mr.Index(rec)
		if err != nil {
			t.Fatal(err)
		}
		if back != idx {
			t.Fatalf("round trip failed: %d -> %v -> %d", idx, rec, back)
		}
	}
	if _, err := mr.Index([]int{0, 0}); !errors.Is(err, ErrSchema) {
		t.Fatal("short record accepted")
	}
	if _, err := mr.Index([]int{0, 4, 0}); !errors.Is(err, ErrSchema) {
		t.Fatal("out-of-range record accepted")
	}
}

func TestDisguiseValidatesAndPreservesShape(t *testing.T) {
	mr, err := NewMultiRR(mustWarner(t, 3, 0.8), mustWarner(t, 2, 0.7))
	if err != nil {
		t.Fatal(err)
	}
	records := [][]int{{0, 1}, {2, 0}, {1, 1}}
	out, err := mr.Disguise(records, randx.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("got %d records", len(out))
	}
	for _, rec := range out {
		if rec[0] < 0 || rec[0] >= 3 || rec[1] < 0 || rec[1] >= 2 {
			t.Fatalf("disguised record out of range: %v", rec)
		}
	}
	if _, err := mr.Disguise([][]int{{0, 5}}, randx.New(1)); !errors.Is(err, ErrSchema) {
		t.Fatal("bad record accepted")
	}
}

func TestEmpiricalJoint(t *testing.T) {
	mr, err := NewMultiRR(rr.Identity(2), rr.Identity(2))
	if err != nil {
		t.Fatal(err)
	}
	joint, err := mr.EmpiricalJoint([][]int{{0, 0}, {0, 1}, {1, 1}, {1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.25, 0.25, 0, 0.5}
	for i := range want {
		if math.Abs(joint[i]-want[i]) > 1e-12 {
			t.Fatalf("joint = %v, want %v", joint, want)
		}
	}
	if _, err := mr.EmpiricalJoint(nil); !errors.Is(err, ErrNoData) {
		t.Fatal("empty data accepted")
	}
}

// TestEstimateJointRecoversDistribution is the core multi-dimensional RR
// claim: disguising each axis independently and inverting per axis recovers
// the original joint distribution.
func TestEstimateJointRecoversDistribution(t *testing.T) {
	r := randx.New(5)
	sizes := []int{3, 4, 2}
	// A correlated joint: mass concentrated where attributes agree.
	joint := make([]float64, 24)
	var sum float64
	for i := range joint {
		joint[i] = r.Float64()
		sum += joint[i]
	}
	for i := range joint {
		joint[i] /= sum
	}
	originals := sampleJoint(t, joint, sizes, 120000, r)

	mr, err := NewMultiRR(mustWarner(t, 3, 0.8), mustWarner(t, 4, 0.75), mustWarner(t, 2, 0.85))
	if err != nil {
		t.Fatal(err)
	}
	disguised, err := mr.Disguise(originals, r)
	if err != nil {
		t.Fatal(err)
	}
	est, err := mr.EstimateJoint(disguised)
	if err != nil {
		t.Fatal(err)
	}
	for i := range joint {
		if math.Abs(est[i]-joint[i]) > 0.02 {
			t.Errorf("cell %d: estimate %v, want %v", i, est[i], joint[i])
		}
	}
}

func TestEstimateJointIdentityIsExact(t *testing.T) {
	mr, err := NewMultiRR(rr.Identity(2), rr.Identity(3))
	if err != nil {
		t.Fatal(err)
	}
	records := [][]int{{0, 0}, {1, 2}, {1, 2}, {0, 1}}
	est, err := mr.EstimateJoint(records)
	if err != nil {
		t.Fatal(err)
	}
	emp, err := mr.EmpiricalJoint(records)
	if err != nil {
		t.Fatal(err)
	}
	for i := range est {
		if math.Abs(est[i]-emp[i]) > 1e-10 {
			t.Fatalf("identity estimate differs from empirical: %v vs %v", est, emp)
		}
	}
}

func TestEstimateJointSingularMatrix(t *testing.T) {
	mr, err := NewMultiRR(rr.TotallyRandom(3), rr.Identity(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mr.EstimateJoint([][]int{{0, 0}}); err == nil {
		t.Fatal("singular per-axis matrix accepted")
	}
}

func TestMarginal(t *testing.T) {
	mr, err := NewMultiRR(rr.Identity(2), rr.Identity(3))
	if err != nil {
		t.Fatal(err)
	}
	// joint[a*3+b]
	joint := []float64{0.1, 0.2, 0.0, 0.3, 0.1, 0.3}
	m0, sizes0, err := mr.Marginal(joint, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if sizes0[0] != 2 || math.Abs(m0[0]-0.3) > 1e-12 || math.Abs(m0[1]-0.7) > 1e-12 {
		t.Fatalf("marginal over attr 0 = %v", m0)
	}
	m1, _, err := mr.Marginal(joint, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	want1 := []float64{0.4, 0.3, 0.3}
	for i := range want1 {
		if math.Abs(m1[i]-want1[i]) > 1e-12 {
			t.Fatalf("marginal over attr 1 = %v", m1)
		}
	}
	// keep both, transposed order.
	mBoth, sizesBoth, err := mr.Marginal(joint, []int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if sizesBoth[0] != 3 || sizesBoth[1] != 2 {
		t.Fatalf("transposed sizes = %v", sizesBoth)
	}
	if math.Abs(mBoth[0*2+1]-joint[1*3+0]) > 1e-12 {
		t.Fatal("transposed marginal mismatch")
	}
	if _, _, err := mr.Marginal(joint, []int{0, 0}); !errors.Is(err, ErrSchema) {
		t.Fatal("duplicate keep accepted")
	}
	if _, _, err := mr.Marginal(joint[:3], []int{0}); !errors.Is(err, ErrSchema) {
		t.Fatal("short joint accepted")
	}
}

// TestPropertyEstimateJointUnbiasedOnExactInput: feeding the exact disguised
// joint distribution (M applied analytically) through invertAxes returns the
// original joint.
func TestPropertyJointInversionRoundTrip(t *testing.T) {
	f := func(seed uint64, aRaw, bRaw uint8) bool {
		r := randx.New(seed)
		na := int(aRaw%3) + 2
		nb := int(bRaw%3) + 2
		ma := mustWarner(t, na, 0.6+0.3*r.Float64())
		mb := mustWarner(t, nb, 0.6+0.3*r.Float64())
		mr, err := NewMultiRR(ma, mb)
		if err != nil {
			return false
		}
		joint := make([]float64, na*nb)
		var sum float64
		for i := range joint {
			joint[i] = r.Float64() + 0.01
			sum += joint[i]
		}
		for i := range joint {
			joint[i] /= sum
		}
		// Disguised joint = (Ma ⊗ Mb)·joint, computed cell by cell.
		disguisedJoint := make([]float64, na*nb)
		for yi := 0; yi < na; yi++ {
			for yj := 0; yj < nb; yj++ {
				var s float64
				for xi := 0; xi < na; xi++ {
					for xj := 0; xj < nb; xj++ {
						s += ma.Theta(yi, xi) * mb.Theta(yj, xj) * joint[xi*nb+xj]
					}
				}
				disguisedJoint[yi*nb+yj] = s
			}
		}
		est, err := mr.invertAxes(disguisedJoint)
		if err != nil {
			return false
		}
		for i := range joint {
			if math.Abs(est[i]-joint[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEstimateJoint3Attrs(b *testing.B) {
	r := randx.New(1)
	mr, err := NewMultiRR(mustWarner(b, 4, 0.8), mustWarner(b, 4, 0.8), mustWarner(b, 4, 0.8))
	if err != nil {
		b.Fatal(err)
	}
	records := make([][]int, 10000)
	for i := range records {
		records[i] = []int{r.Intn(4), r.Intn(4), r.Intn(4)}
	}
	disguised, err := mr.Disguise(records, r)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mr.EstimateJoint(disguised); err != nil {
			b.Fatal(err)
		}
	}
}
