package mining

import (
	"fmt"
	"math"

	"optrr/internal/mathx"
	"optrr/internal/rr"
)

// Statistical independence testing on disguised data: a classic
// privacy-preserving analysis task — "are these two sensitive attributes
// associated?" — answered without ever seeing original values. The
// two-attribute joint is reconstructed by per-axis inversion, clipped onto
// the simplex, and a chi-square statistic is computed against the product of
// its marginals. The effective sample size is adjusted for the variance
// inflation the disguise introduces, so the test keeps approximately its
// nominal level (see EffectiveSampleFactor).

// IndependenceResult reports a chi-square independence test.
type IndependenceResult struct {
	// Statistic is the chi-square value at the effective sample size.
	Statistic float64
	// DegreesOfFreedom is (n_a − 1)·(n_b − 1).
	DegreesOfFreedom int
	// PValue is the survival probability of the statistic.
	PValue float64
	// EffectiveN is the noise-adjusted sample size used by the statistic.
	EffectiveN float64
	// CramersV is the effect-size measure √(χ²/(N·(min(n_a,n_b)−1))).
	CramersV float64
}

// Dependent reports whether independence is rejected at the given level
// (e.g. 0.05).
func (r IndependenceResult) Dependent(alpha float64) bool {
	return r.PValue < alpha
}

// EffectiveSampleFactor estimates how much the randomized response of the
// two attributes inflates the variance of reconstructed joint cells: the
// reconstruction error of a cell probability scales with the squared
// Frobenius-like norm of the inverse matrices. We use the conservative
// factor 1/(‖A⁻¹‖₁·‖B⁻¹‖₁)², where ‖·‖₁ is the maximum absolute column
// sum: identity matrices give factor 1 (no loss), noisier matrices shrink
// the effective sample accordingly.
func EffectiveSampleFactor(a, b *rr.Matrix) (float64, error) {
	na, err := a.Inverse()
	if err != nil {
		return 0, err
	}
	nb, err := b.Inverse()
	if err != nil {
		return 0, err
	}
	f := na.Norm1() * nb.Norm1()
	return 1 / (f * f), nil
}

// ChiSquareIndependence tests the independence of attributes attrA and
// attrB from disguised records. The matrices in mr must be invertible for
// the two attributes involved.
func ChiSquareIndependence(mr *MultiRR, disguised [][]int, attrA, attrB int) (IndependenceResult, error) {
	if attrA == attrB {
		return IndependenceResult{}, fmt.Errorf("%w: testing an attribute against itself", ErrSchema)
	}
	for _, d := range []int{attrA, attrB} {
		if d < 0 || d >= mr.Attributes() {
			return IndependenceResult{}, fmt.Errorf("%w: attribute %d", ErrSchema, d)
		}
	}
	if len(disguised) == 0 {
		return IndependenceResult{}, ErrNoData
	}
	ma, mb := mr.Matrix(attrA), mr.Matrix(attrB)
	pair, err := NewMultiRR(ma, mb)
	if err != nil {
		return IndependenceResult{}, err
	}
	proj := make([][]int, len(disguised))
	for i, rec := range disguised {
		if err := mr.checkRecord(rec); err != nil {
			return IndependenceResult{}, fmt.Errorf("record %d: %w", i, err)
		}
		proj[i] = []int{rec[attrA], rec[attrB]}
	}
	joint, err := pair.EstimateJoint(proj)
	if err != nil {
		return IndependenceResult{}, err
	}
	joint = rr.Clip(joint)

	na, nb := ma.N(), mb.N()
	rowMarg := make([]float64, na)
	colMarg := make([]float64, nb)
	for i := 0; i < na; i++ {
		for j := 0; j < nb; j++ {
			v := joint[i*nb+j]
			rowMarg[i] += v
			colMarg[j] += v
		}
	}

	factor, err := EffectiveSampleFactor(ma, mb)
	if err != nil {
		return IndependenceResult{}, err
	}
	effN := float64(len(disguised)) * factor

	var chi2 float64
	for i := 0; i < na; i++ {
		for j := 0; j < nb; j++ {
			expected := rowMarg[i] * colMarg[j]
			if expected <= 0 {
				continue
			}
			d := joint[i*nb+j] - expected
			chi2 += effN * d * d / expected
		}
	}
	dof := (na - 1) * (nb - 1)
	minDim := na
	if nb < minDim {
		minDim = nb
	}
	cv := 0.0
	if minDim > 1 && effN > 0 {
		cv = math.Sqrt(chi2 / (effN * float64(minDim-1)))
	}
	return IndependenceResult{
		Statistic:        chi2,
		DegreesOfFreedom: dof,
		PValue:           mathx.ChiSquareSurvival(float64(dof), chi2),
		EffectiveN:       effN,
		CramersV:         cv,
	}, nil
}
