package mining

import (
	"errors"
	"math"
	"testing"

	"optrr/internal/randx"
)

// classWorld builds records over schema [3, 3, 2]: the class (attribute 2)
// is drawn with P(1) = 0.4; attribute d is equal to class-dependent
// preferred values with high probability.
func classWorld(n int, r *randx.Source) [][]int {
	out := make([][]int, n)
	for i := range out {
		c := 0
		if r.Float64() < 0.4 {
			c = 1
		}
		rec := []int{0, 0, c}
		for d := 0; d < 2; d++ {
			pref := c + d // class 0 prefers value d, class 1 prefers d+1
			if r.Float64() < 0.75 {
				rec[d] = pref
			} else {
				rec[d] = r.Intn(3)
			}
		}
		out[i] = rec
	}
	return out
}

func TestTrainNaiveBayesValidates(t *testing.T) {
	mr := identityMR(t, 3, 3, 2)
	if _, err := TrainNaiveBayes(mr, nil, 2, 1); !errors.Is(err, ErrNoData) {
		t.Fatal("empty data accepted")
	}
	if _, err := TrainNaiveBayes(mr, [][]int{{0, 0, 0}}, 5, 1); !errors.Is(err, ErrSchema) {
		t.Fatal("bad class attribute accepted")
	}
	if _, err := TrainNaiveBayes(mr, [][]int{{0, 0, 9}}, 2, 1); !errors.Is(err, ErrSchema) {
		t.Fatal("bad record accepted")
	}
}

func TestNaiveBayesOnCleanData(t *testing.T) {
	r := randx.New(1)
	records := classWorld(30000, r)
	mr := identityMR(t, 3, 3, 2)
	nb, err := TrainNaiveBayes(mr, records, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := nb.Accuracy(records)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.75 {
		t.Fatalf("clean-data accuracy = %v, want > 0.75", acc)
	}
	prior := nb.ClassPrior()
	if math.Abs(prior[1]-0.4) > 0.02 {
		t.Fatalf("class prior = %v, want approx [0.6, 0.4]", prior)
	}
}

// TestNaiveBayesFromDisguisedData: train on disguised records, evaluate on
// clean ones — the privacy-preserving classification workflow.
func TestNaiveBayesFromDisguisedData(t *testing.T) {
	r := randx.New(2)
	records := classWorld(60000, r)
	mr := warnerMR(t, 0.8, 3, 3, 2)
	disguised, err := mr.Disguise(records, r)
	if err != nil {
		t.Fatal(err)
	}
	nb, err := TrainNaiveBayes(mr, disguised, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The reconstructed model must classify CLEAN records nearly as well as
	// a model trained on clean data.
	clean, err := TrainNaiveBayes(identityMR(t, 3, 3, 2), records, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	accClean, err := clean.Accuracy(records)
	if err != nil {
		t.Fatal(err)
	}
	accDisguised, err := nb.Accuracy(records)
	if err != nil {
		t.Fatal(err)
	}
	if accDisguised < accClean-0.05 {
		t.Fatalf("disguised accuracy %v lags clean accuracy %v by more than 0.05", accDisguised, accClean)
	}
	prior := nb.ClassPrior()
	if math.Abs(prior[1]-0.4) > 0.03 {
		t.Fatalf("reconstructed class prior = %v, want approx [0.6, 0.4]", prior)
	}
}

func TestNaiveBayesClassifyValidation(t *testing.T) {
	r := randx.New(3)
	records := classWorld(1000, r)
	mr := identityMR(t, 3, 3, 2)
	nb, err := TrainNaiveBayes(mr, records, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nb.Classify([]int{0}); !errors.Is(err, ErrSchema) {
		t.Fatal("short record accepted")
	}
	if _, err := nb.Classify([]int{9, 0, 0}); !errors.Is(err, ErrSchema) {
		t.Fatal("out-of-range value accepted")
	}
	if _, err := nb.Accuracy(nil); !errors.Is(err, ErrNoData) {
		t.Fatal("empty accuracy accepted")
	}
}

func TestSmooth(t *testing.T) {
	out := smooth([]float64{1, 0}, 1, 8)
	// (8+1)/(8+2) and (0+1)/(8+2)
	if math.Abs(out[0]-0.9) > 1e-12 || math.Abs(out[1]-0.1) > 1e-12 {
		t.Fatalf("smooth = %v", out)
	}
	var sum float64
	for _, v := range out {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("smoothed vector sums to %v", sum)
	}
}

func BenchmarkTrainNaiveBayes(b *testing.B) {
	r := randx.New(1)
	records := classWorld(10000, r)
	mr := warnerMR(b, 0.8, 3, 3, 2)
	disguised, err := mr.Disguise(records, r)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TrainNaiveBayes(mr, disguised, 2, 1); err != nil {
			b.Fatal(err)
		}
	}
}
