package mining

import (
	"errors"
	"math"
	"testing"

	"optrr/internal/collector"
	"optrr/internal/randx"
	"optrr/internal/sketch"
)

// fakeEstimator serves a fixed frequency vector and records how many
// categories each Estimate call asked for.
type fakeEstimator struct {
	freqs      []float64
	calls      int
	maxPerCall int
	fail       error
}

func (f *fakeEstimator) Categories() int { return len(f.freqs) }

func (f *fakeEstimator) Estimate(categories ...int) ([]float64, error) {
	f.calls++
	if len(categories) > f.maxPerCall {
		f.maxPerCall = len(categories)
	}
	if f.fail != nil {
		return nil, f.fail
	}
	out := make([]float64, len(categories))
	for i, c := range categories {
		out[i] = f.freqs[c]
	}
	return out, nil
}

func skewedFreqs(domain int) []float64 {
	freqs := make([]float64, domain)
	rest := 1.0
	for _, hh := range []struct {
		cat int
		f   float64
	}{{7, 0.30}, {4999, 0.20}, {123, 0.10}} {
		freqs[hh.cat] = hh.f
		rest -= hh.f
	}
	per := rest / float64(domain-3)
	for i := range freqs {
		if freqs[i] == 0 {
			freqs[i] = per
		}
	}
	return freqs
}

func TestHeavyHittersScansInChunks(t *testing.T) {
	est := &fakeEstimator{freqs: skewedFreqs(10000)}
	hits, err := HeavyHitters(est, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	want := []Frequent{{7, 0.30}, {4999, 0.20}, {123, 0.10}}
	if len(hits) != len(want) {
		t.Fatalf("hits = %v, want %v", hits, want)
	}
	for i := range want {
		if hits[i] != want[i] {
			t.Fatalf("hits[%d] = %v, want %v", i, hits[i], want[i])
		}
	}
	if est.maxPerCall > hitterChunk {
		t.Fatalf("one estimate call covered %d categories, cap is %d", est.maxPerCall, hitterChunk)
	}
	if wantCalls := (10000 + hitterChunk - 1) / hitterChunk; est.calls != wantCalls {
		t.Fatalf("scan made %d estimate calls, want %d", est.calls, wantCalls)
	}
}

func TestTopK(t *testing.T) {
	est := &fakeEstimator{freqs: skewedFreqs(10000)}
	hits, err := TopK(est, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 || hits[0].Category != 7 || hits[1].Category != 4999 {
		t.Fatalf("top-2 = %v", hits)
	}
	if _, err := TopK(est, 0); err == nil {
		t.Fatal("k = 0 accepted")
	}
	// k larger than the domain returns everything, sorted.
	small := &fakeEstimator{freqs: []float64{0.2, 0.5, 0.3}}
	all, err := TopK(small, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 || all[0].Category != 1 || all[1].Category != 2 || all[2].Category != 0 {
		t.Fatalf("top-10 of 3 = %v", all)
	}
}

func TestHeavyHittersPropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	est := &fakeEstimator{freqs: make([]float64, 10), fail: boom}
	if _, err := HeavyHitters(est, 0.1); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, err := HeavyHitters(&fakeEstimator{}, 0.1); err == nil {
		t.Fatal("empty domain accepted")
	}
}

// TestHeavyHittersOverSketch is the end-to-end mining story: Zipf records
// over a domain far larger than any dense matrix, disguised through the
// count-mean sketch, aggregated in the sketch collector, and the frequent
// categories recovered by the chunked scan.
func TestHeavyHittersOverSketch(t *testing.T) {
	const domain = 50000
	s, err := sketch.NewKRR(domain, 16, 256, 5, 11)
	if err != nil {
		t.Fatal(err)
	}
	rng := randx.New(3)
	records := make([]int, 150000)
	for i := range records {
		if rng.Intn(2) == 0 {
			records[i] = rng.Intn(4) // 50% of mass on 4 heavy categories
		} else {
			records[i] = rng.Intn(domain)
		}
	}
	reports := make([]int, len(records))
	if err := s.DisguiseBatchInto(reports, records, 9, 0); err != nil {
		t.Fatal(err)
	}
	col := collector.NewSketch(s, 4)
	if err := col.IngestBatch(reports); err != nil {
		t.Fatal(err)
	}
	hits, err := TopK(col, 4)
	if err != nil {
		t.Fatal(err)
	}
	found := map[int]bool{}
	for _, h := range hits {
		found[h.Category] = true
		if math.Abs(h.Estimate-0.125) > 0.05 {
			t.Errorf("category %d estimate %.4f, want ≈ 0.125", h.Category, h.Estimate)
		}
	}
	for x := 0; x < 4; x++ {
		if !found[x] {
			t.Fatalf("heavy category %d missing from top-4 %v", x, hits)
		}
	}
}
