package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"optrr/internal/randx"
	"optrr/internal/rr"
)

func TestEntropy(t *testing.T) {
	if got := Entropy([]float64{1, 0}); got != 0 {
		t.Fatalf("deterministic entropy = %v", got)
	}
	if got := Entropy([]float64{0.5, 0.5}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("fair-coin entropy = %v, want 1", got)
	}
	if got := Entropy(uniformPrior(8)); math.Abs(got-3) > 1e-12 {
		t.Fatalf("uniform-8 entropy = %v, want 3", got)
	}
}

func TestMutualInformationEndpoints(t *testing.T) {
	prior := []float64{0.4, 0.3, 0.2, 0.1}
	// Identity: I(X;Y) = H(X).
	mi, err := MutualInformation(rr.Identity(4), prior)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mi-Entropy(prior)) > 1e-9 {
		t.Fatalf("identity MI = %v, want H(X) = %v", mi, Entropy(prior))
	}
	// Totally random: I(X;Y) = 0.
	mi, err = MutualInformation(rr.TotallyRandom(4), prior)
	if err != nil {
		t.Fatal(err)
	}
	if mi > 1e-9 {
		t.Fatalf("totally-random MI = %v, want 0", mi)
	}
}

func TestMutualInformationMonotoneInNoise(t *testing.T) {
	prior := []float64{0.4, 0.3, 0.2, 0.1}
	last := math.Inf(1)
	for _, p := range []float64{1.0, 0.8, 0.6, 0.4, 0.25} {
		m := mustWarner(t, 4, p)
		mi, err := MutualInformation(m, prior)
		if err != nil {
			t.Fatal(err)
		}
		if mi > last+1e-12 {
			t.Fatalf("MI increased with more noise at p=%v", p)
		}
		last = mi
	}
}

// TestDataProcessingInequality: composing two disguises never leaks more
// than the inner disguise alone.
func TestDataProcessingInequality(t *testing.T) {
	f := func(seed uint64, nRaw uint8, p1Raw, p2Raw uint8) bool {
		n := int(nRaw%5) + 2
		r := randx.New(seed)
		prior := make([]float64, n)
		var sum float64
		for i := range prior {
			prior[i] = r.Float64() + 0.01
			sum += prior[i]
		}
		for i := range prior {
			prior[i] /= sum
		}
		inner, err := rr.Warner(n, 0.3+0.7*float64(p1Raw)/255)
		if err != nil {
			return false
		}
		outer, err := rr.Warner(n, 0.3+0.7*float64(p2Raw)/255)
		if err != nil {
			return false
		}
		composed, err := rr.Compose(outer, inner)
		if err != nil {
			return false
		}
		miInner, err := MutualInformation(inner, prior)
		if err != nil {
			return false
		}
		miComposed, err := MutualInformation(composed, prior)
		if err != nil {
			return false
		}
		if miComposed > miInner+1e-9 {
			return false
		}
		// The same inequality holds for the Bayes-adversary accuracy.
		aInner, err := Accuracy(inner, prior)
		if err != nil {
			return false
		}
		aComposed, err := Accuracy(composed, prior)
		if err != nil {
			return false
		}
		return aComposed <= aInner+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestComposeIsMatrixProduct(t *testing.T) {
	a := mustWarner(t, 3, 0.8)
	b := mustWarner(t, 3, 0.6)
	c, err := rr.Compose(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Spot check: composing two Warner matrices gives another constant-
	// diagonal matrix with diagonal p·q + (1−p)(1−q)/(n−1)... verify via a
	// distribution round trip instead of re-deriving: P*_c = a·(b·P).
	prior := []float64{0.5, 0.3, 0.2}
	viaB, err := b.DisguisedDistribution(prior)
	if err != nil {
		t.Fatal(err)
	}
	viaBoth, err := a.DisguisedDistribution(viaB)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := c.DisguisedDistribution(prior)
	if err != nil {
		t.Fatal(err)
	}
	for i := range direct {
		if math.Abs(direct[i]-viaBoth[i]) > 1e-12 {
			t.Fatalf("composition mismatch at %d: %v vs %v", i, direct[i], viaBoth[i])
		}
	}
}

func TestComposeShapeError(t *testing.T) {
	a := mustWarner(t, 3, 0.8)
	b := mustWarner(t, 4, 0.8)
	if _, err := rr.Compose(a, b); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestNormalizedLeakage(t *testing.T) {
	prior := []float64{0.4, 0.3, 0.2, 0.1}
	l, err := NormalizedLeakage(rr.Identity(4), prior)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l-1) > 1e-9 {
		t.Fatalf("identity leakage = %v, want 1", l)
	}
	l, err = NormalizedLeakage(rr.TotallyRandom(4), prior)
	if err != nil {
		t.Fatal(err)
	}
	if l > 1e-9 {
		t.Fatalf("totally-random leakage = %v, want 0", l)
	}
	// Degenerate prior: nothing to learn.
	l, err = NormalizedLeakage(rr.Identity(2), []float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if l != 0 {
		t.Fatalf("degenerate-prior leakage = %v, want 0", l)
	}
}

func BenchmarkMutualInformation(b *testing.B) {
	m, err := rr.Warner(10, 0.7)
	if err != nil {
		b.Fatal(err)
	}
	prior := uniformPrior(10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MutualInformation(m, prior); err != nil {
			b.Fatal(err)
		}
	}
}
