package metrics

import (
	"fmt"

	"optrr/internal/rr"
)

// Generalized privacy quantification. Section IV-A of the paper defines
// privacy through an accuracy function G(x̂, x) and derives the optimal
// adversary from Bayes-estimate theory; the paper then studies the 0/1
// accuracy function (Equation 6), for which the optimal estimate is MAP
// (Theorem 3). This file implements the general case: for any G, the
// optimal consistent estimate for an observed Y maximizes the posterior
// expectation Σ_x G(x̂, x)·P(x | Y), and the adversary's expected score is
// the P(Y)-weighted sum of those maxima. Privacy is defined relative to the
// best blind guess (using the prior alone), so that a totally uninformative
// disguise scores privacy 1 and an identity disguise scores 0.

// Gain scores an adversary's estimate x̂ against the true value x. Larger is
// better for the adversary. The 0/1 function of Equation (6) is ZeroOneGain.
type Gain func(estimate, truth int) float64

// ZeroOneGain is the paper's accuracy function: 1 for an exact hit.
func ZeroOneGain(estimate, truth int) float64 {
	if estimate == truth {
		return 1
	}
	return 0
}

// OrdinalGain returns a gain for ordinal domains (e.g. discretized age):
// a near miss still leaks information, scored 1 − |x̂−x|/(n−1).
func OrdinalGain(n int) Gain {
	return func(estimate, truth int) float64 {
		d := estimate - truth
		if d < 0 {
			d = -d
		}
		return 1 - float64(d)/float64(n-1)
	}
}

// BayesScore returns the optimal adversary's expected gain against matrix m
// under the prior: E_Y[max_x̂ Σ_x G(x̂, x)·P(x|Y)]. For ZeroOneGain this is
// the accuracy A of Equation (8)'s derivation.
func BayesScore(m *rr.Matrix, prior []float64, gain Gain) (float64, error) {
	if gain == nil {
		return 0, fmt.Errorf("%w: nil gain", ErrBadPrior)
	}
	post, err := Posterior(m, prior)
	if err != nil {
		return 0, err
	}
	pStar, err := m.DisguisedDistribution(prior)
	if err != nil {
		return 0, err
	}
	n := m.N()
	var total float64
	for y := 0; y < n; y++ {
		if pStar[y] == 0 {
			continue
		}
		best := 0.0
		for xhat := 0; xhat < n; xhat++ {
			var e float64
			for x := 0; x < n; x++ {
				e += gain(xhat, x) * post[y][x]
			}
			if xhat == 0 || e > best {
				best = e
			}
		}
		total += best * pStar[y]
	}
	return total, nil
}

// BlindScore returns the best expected gain achievable from the prior alone
// (no disguised value observed): max_x̂ Σ_x G(x̂, x)·P(x).
func BlindScore(prior []float64, gain Gain) (float64, error) {
	if gain == nil {
		return 0, fmt.Errorf("%w: nil gain", ErrBadPrior)
	}
	n := len(prior)
	if n == 0 {
		return 0, fmt.Errorf("%w: empty prior", ErrBadPrior)
	}
	best := 0.0
	for xhat := 0; xhat < n; xhat++ {
		var e float64
		for x := 0; x < n; x++ {
			e += gain(xhat, x) * prior[x]
		}
		if xhat == 0 || e > best {
			best = e
		}
	}
	return best, nil
}

// PrivacyWithGain generalizes Equation (8) to an arbitrary gain: it returns
// the normalized information leakage complement
//
//	1 − (BayesScore − BlindScore) / (PerfectScore − BlindScore),
//
// where PerfectScore = Σ_x G(x, x)·P(x) is the score of an adversary who
// always guesses right. The result is 1 when observing Y does not help at
// all and 0 when Y reveals X exactly. For ZeroOneGain and a uniform prior
// this coincides with the paper's (1 − A) rescaled by its achievable range.
func PrivacyWithGain(m *rr.Matrix, prior []float64, gain Gain) (float64, error) {
	bayes, err := BayesScore(m, prior, gain)
	if err != nil {
		return 0, err
	}
	blind, err := BlindScore(prior, gain)
	if err != nil {
		return 0, err
	}
	var perfect float64
	for x, p := range prior {
		perfect += gain(x, x) * p
	}
	if perfect <= blind {
		// The blind guess is already perfect (degenerate prior): nothing to
		// leak, so privacy is complete.
		return 1, nil
	}
	leak := (bayes - blind) / (perfect - blind)
	if leak < 0 {
		leak = 0
	}
	if leak > 1 {
		leak = 1
	}
	return 1 - leak, nil
}

// BreachesPrivacy reports whether matrix m admits a ρ1-to-ρ2 privacy breach
// (Evfimievski et al., cited as [4] in the paper): a value x with prior
// probability below rho1 whose posterior after observing some y exceeds
// rho2. Requires 0 < rho1 < rho2 <= 1. The returned pair locates the breach
// (value x, observation y); x = -1 when there is none.
func BreachesPrivacy(m *rr.Matrix, prior []float64, rho1, rho2 float64) (x, y int, err error) {
	if !(rho1 > 0 && rho1 < rho2 && rho2 <= 1) {
		return -1, -1, fmt.Errorf("%w: need 0 < rho1 < rho2 <= 1, got %v, %v", ErrBadPrior, rho1, rho2)
	}
	post, err := Posterior(m, prior)
	if err != nil {
		return -1, -1, err
	}
	n := m.N()
	for yy := 0; yy < n; yy++ {
		for xx := 0; xx < n; xx++ {
			if prior[xx] < rho1 && post[yy][xx] > rho2 {
				return xx, yy, nil
			}
		}
	}
	return -1, -1, nil
}
