package metrics

import (
	"fmt"

	"optrr/internal/randx"
	"optrr/internal/rr"
)

// Empirical counterparts of the closed-form metrics. These simulate the full
// pipeline — sample original records from the prior, disguise them, run the
// adversary or the estimator — and are used by the test suite to validate
// the closed forms and by Figure 5(d), which re-scores the optimized
// matrices with the iterative estimator.

// EmpiricalPrivacy simulates a Bayes-optimal adversary: records records are
// drawn from the prior, disguised with m, and the adversary guesses each
// original value with the MAP rule. The returned value is 1 minus the
// fraction guessed correctly, converging to Privacy(m, prior) as records
// grows.
func EmpiricalPrivacy(m *rr.Matrix, prior []float64, records int, r *randx.Source) (float64, error) {
	if records <= 0 {
		return 0, fmt.Errorf("%w: %d", ErrBadRecords, records)
	}
	est, err := MAPEstimate(m, prior)
	if err != nil {
		return 0, err
	}
	alias, err := randx.NewAlias(prior)
	if err != nil {
		return 0, fmt.Errorf("metrics: %w", err)
	}
	originals := make([]int, records)
	for i := range originals {
		originals[i] = alias.Draw(r)
	}
	disguised, err := m.Disguise(originals, r)
	if err != nil {
		return 0, err
	}
	correct := 0
	for i := range originals {
		if est[disguised[i]] == originals[i] {
			correct++
		}
	}
	return 1 - float64(correct)/float64(records), nil
}

// EmpiricalUtility estimates the utility metric by Monte Carlo: trials
// independent data sets of records records are sampled from the prior,
// disguised, reconstructed with the inversion estimator, and the squared
// errors against the prior are averaged per category and then across
// categories. It converges to Utility(m, prior, records) as trials grows.
func EmpiricalUtility(m *rr.Matrix, prior []float64, records, trials int, r *randx.Source) (float64, error) {
	return empiricalUtility(m, prior, records, trials, r, func(disguised []int) ([]float64, error) {
		return m.EstimateInversion(disguised)
	})
}

// EmpiricalUtilityIterative is EmpiricalUtility with the iterative
// (EM-style) estimator of Equation (3) in place of inversion — the utility
// measurement of Figure 5(d). Non-convergence within the default budget is
// tolerated: the last iterate is scored.
func EmpiricalUtilityIterative(m *rr.Matrix, prior []float64, records, trials int, r *randx.Source) (float64, error) {
	return empiricalUtility(m, prior, records, trials, r, func(disguised []int) ([]float64, error) {
		p, err := m.EstimateIterative(disguised, rr.IterativeOptions{
			MaxIterations: 2000,
			Tolerance:     1e-9,
		})
		if err != nil && p == nil {
			return nil, err
		}
		return p, nil
	})
}

func empiricalUtility(
	m *rr.Matrix,
	prior []float64,
	records, trials int,
	r *randx.Source,
	estimate func([]int) ([]float64, error),
) (float64, error) {
	if records <= 0 || trials <= 0 {
		return 0, fmt.Errorf("%w: records=%d trials=%d", ErrBadRecords, records, trials)
	}
	if err := validatePrior(m, prior); err != nil {
		return 0, err
	}
	alias, err := randx.NewAlias(prior)
	if err != nil {
		return 0, fmt.Errorf("metrics: %w", err)
	}
	n := m.N()
	originals := make([]int, records)
	var total float64
	for t := 0; t < trials; t++ {
		for i := range originals {
			originals[i] = alias.Draw(r)
		}
		disguised, err := m.Disguise(originals, r)
		if err != nil {
			return 0, err
		}
		est, err := estimate(disguised)
		if err != nil {
			return 0, err
		}
		var sq float64
		for k := 0; k < n; k++ {
			d := est[k] - prior[k]
			sq += d * d
		}
		total += sq / float64(n)
	}
	return total / float64(trials), nil
}
