package metrics

import (
	"errors"
	"testing"

	"optrr/internal/randx"
	"optrr/internal/rr"
)

// randomStochastic draws a random column-stochastic matrix of size n. shape
// tilts the draw: 0 uniform Dirichlet-ish columns, 1 near-deterministic
// (diagonal mass ≈ 1, exercising the MSE round-off clamp), 2 near-singular
// (all columns pulled toward one shared column, stressing the LU path).
func randomStochastic(r *randx.Source, n, shape int) *rr.Matrix {
	cols := make([][]float64, n)
	draw := func() []float64 {
		c := make([]float64, n)
		var sum float64
		for j := range c {
			c[j] = r.Exp(1)
			sum += c[j]
		}
		for j := range c {
			c[j] /= sum
		}
		return c
	}
	switch shape {
	case 1:
		for i := range cols {
			c := make([]float64, n)
			eps := 1e-9 * (1 + r.Float64())
			for j := range c {
				c[j] = eps / float64(n-1)
			}
			c[i] = 1 - eps
			cols[i] = c
		}
	case 2:
		base := draw()
		for i := range cols {
			c := make([]float64, n)
			noise := draw()
			t := 1e-7 * (1 + r.Float64())
			for j := range c {
				c[j] = (1-t)*base[j] + t*noise[j]
			}
			cols[i] = c
		}
	default:
		for i := range cols {
			cols[i] = draw()
		}
	}
	m, err := rr.FromColumns(cols)
	if err != nil {
		panic(err)
	}
	return m
}

func randomPrior(r *randx.Source, n int) []float64 {
	p := make([]float64, n)
	var sum float64
	for i := range p {
		p[i] = 0.01 + r.Float64()
		sum += p[i]
	}
	for i := range p {
		p[i] /= sum
	}
	return p
}

// TestWorkspaceEvaluateMatchesComposed is the fused-path equivalence
// property: on random column-stochastic matrices — including near-singular
// and near-deterministic ones — the single-sweep Workspace evaluator must
// reproduce the composed Privacy/Utility/MaxPosterior values bit-for-bit
// (the optimizer's reproducibility guarantee depends on exact, not
// approximate, agreement). One Workspace is reused across all trials and
// sizes to exercise buffer reuse and resizing.
// evaluationEqual compares the canonical scalar fields bit-for-bit (both
// sides of the equivalence tests carry no extra objectives).
func evaluationEqual(a, b Evaluation) bool {
	return a.Privacy == b.Privacy && a.Utility == b.Utility &&
		a.MaxPosterior == b.MaxPosterior && len(a.Extra) == 0 && len(b.Extra) == 0
}

func TestWorkspaceEvaluateMatchesComposed(t *testing.T) {
	r := randx.New(2024)
	ws := NewWorkspace()
	trials := 0
	for trial := 0; trial < 400; trial++ {
		n := 2 + r.Intn(15)
		shape := trial % 3
		m := randomStochastic(r, n, shape)
		prior := randomPrior(r, n)
		records := 1 + r.Intn(100000)

		want, wantErr := EvaluateComposed(m, prior, records)
		got, gotErr := ws.Evaluate(m, prior, records)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("n=%d shape=%d: error mismatch: composed=%v fused=%v", n, shape, wantErr, gotErr)
		}
		if wantErr != nil {
			if !errors.Is(gotErr, rr.ErrSingular) != !errors.Is(wantErr, rr.ErrSingular) {
				t.Fatalf("n=%d shape=%d: error kind mismatch: composed=%v fused=%v", n, shape, wantErr, gotErr)
			}
			continue
		}
		trials++
		if !evaluationEqual(got, want) {
			t.Fatalf("n=%d shape=%d: fused %+v != composed %+v", n, shape, got, want)
		}
		// The package-level Evaluate must be the same fused result.
		pkg, err := Evaluate(m, prior, records)
		if err != nil || !evaluationEqual(pkg, want) {
			t.Fatalf("n=%d shape=%d: Evaluate %+v (err %v) != composed %+v", n, shape, pkg, err, want)
		}
	}
	if trials < 300 {
		t.Fatalf("only %d feasible trials; generator is broken", trials)
	}
}

// TestWorkspaceEvaluateHitsClampAndSingular pins the two edge branches the
// random sweep must cover: the round-off clamp (near-deterministic matrices
// drive quad−mean² slightly negative) and singular-matrix rejection.
func TestWorkspaceEvaluateHitsClampAndSingular(t *testing.T) {
	r := randx.New(7)
	ws := NewWorkspace()

	m := randomStochastic(r, 6, 1) // near-identity
	prior := randomPrior(r, 6)
	if _, err := ws.Evaluate(m, prior, 1000); err != nil {
		t.Fatalf("near-deterministic matrix should evaluate: %v", err)
	}

	// Exactly singular: two identical columns.
	col := []float64{0.5, 0.25, 0.25}
	sing, err := rr.FromColumns([][]float64{col, col, {0.2, 0.3, 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ws.Evaluate(sing, []float64{0.3, 0.3, 0.4}, 1000); !errors.Is(err, rr.ErrSingular) {
		t.Fatalf("singular matrix: got err %v, want ErrSingular", err)
	}
	// The workspace must stay usable after a singular failure.
	if _, err := ws.Evaluate(randomStochastic(r, 3, 0), []float64{0.3, 0.3, 0.4}, 1000); err != nil {
		t.Fatalf("workspace unusable after singular input: %v", err)
	}
}

// TestWorkspaceMaxPosteriorMatchesPackage checks the allocation-free
// MaxPosterior/MeetsBound against the posterior-matrix-based package
// functions, bit-for-bit.
func TestWorkspaceMaxPosteriorMatchesPackage(t *testing.T) {
	r := randx.New(99)
	ws := NewWorkspace()
	for trial := 0; trial < 300; trial++ {
		n := 2 + r.Intn(15)
		m := randomStochastic(r, n, trial%3)
		prior := randomPrior(r, n)

		want, wantErr := MaxPosterior(m, prior)
		got, gotErr := ws.MaxPosterior(m, prior)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("n=%d: error mismatch: %v vs %v", n, wantErr, gotErr)
		}
		if wantErr != nil {
			continue
		}
		if got != want {
			t.Fatalf("n=%d: workspace MaxPosterior %.17g != package %.17g", n, got, want)
		}
		delta := r.Float64()
		wantOK, err1 := MeetsBound(m, prior, delta)
		gotOK, err2 := ws.MeetsBound(m, prior, delta)
		if err1 != nil || err2 != nil || wantOK != gotOK {
			t.Fatalf("n=%d delta=%v: MeetsBound mismatch: %v/%v vs %v/%v", n, delta, wantOK, err1, gotOK, err2)
		}
	}
}
