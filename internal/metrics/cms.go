package metrics

import (
	"fmt"
	"math"
)

// Count-Mean-Sketch error terms, in the estimator-error framing of Pastore &
// Gastpar ("Locally Differentially Private Randomized Response for Discrete
// Distribution Learning"): the error of a sketch-debiased frequency estimate
// f̂(x) decomposes into a hash-collision term, governed by the hash_range m
// and the number of hash functions k, and a sampling term, governed by the
// per-row report counts and the inner RR matrix. Both are exposed here so
// the sketch scheme, its tests, and capacity planning share one definition
// of the hash_range-vs-accuracy trade-off.

// CMSDebiasScale is the m/(m−1) factor that turns the raw per-cell estimate
// t̂ into the collision-debiased frequency estimate (m·t̂ − 1)/(m − 1): under
// a pairwise-independent hash family every other category lands in a given
// cell with probability 1/m, so a cell's expected mass is f(x)/1 + (1−f(x))/m
// and solving for f(x) introduces this scale.
func CMSDebiasScale(hashRange int) float64 {
	return float64(hashRange) / float64(hashRange-1)
}

// CMSCollisionStd bounds the standard deviation of the hash-collision
// component of a sketch frequency estimate. For a pairwise-independent hash
// family, the collision mass landing on category x's cell in one hash row
// has variance at most Σ_y f(y)² / m = ell2/m; averaging k independent rows
// divides the variance by k, and the debias step multiplies the noise by
// CMSDebiasScale. ell2 is Σ_y f(y)², the squared 2-norm of the true
// frequency vector (at most 1; 1/n for the uniform distribution — callers
// without ground truth can plug in the estimated distribution or the
// worst-case 1).
func CMSCollisionStd(ell2 float64, hashRange, hashes int) float64 {
	if hashRange < 2 || hashes < 1 || ell2 < 0 {
		return math.NaN()
	}
	return CMSDebiasScale(hashRange) *
		math.Sqrt(ell2/(float64(hashRange)*float64(hashes)))
}

// CMSRowVariance is the empirical plug-in sampling variance of one hash
// row's contribution to a debiased frequency estimate. The row's cell
// estimate is t̂[u] = Σ_v inv[u][v]·p̂*[v] with p̂* the multinomial empirical
// distribution of the row's rowCount disguised reports, so
//
//	Var(t̂[u]) = (Σ_v p*[v]·inv[u][v]² − (Σ_v p*[v]·inv[u][v])²) / rowCount
//
// with the true p* replaced by the observed p̂* (the same plug-in used by the
// dense collector's Theorem-6 half-widths); the debias step scales the
// variance by CMSDebiasScale². invRow is row u of the inverse of the inner
// RR matrix and pStar the row's empirical disguised distribution.
func CMSRowVariance(invRow, pStar []float64, rowCount, hashRange int) (float64, error) {
	if len(invRow) != len(pStar) {
		return 0, fmt.Errorf("%w: inverse row of length %d against distribution of length %d", ErrShape, len(invRow), len(pStar))
	}
	if rowCount <= 0 {
		return 0, fmt.Errorf("%w: row count %d", ErrBadRecords, rowCount)
	}
	if hashRange < 2 {
		return 0, fmt.Errorf("%w: hash range %d", ErrShape, hashRange)
	}
	var ex, ex2 float64
	for v, p := range pStar {
		iv := invRow[v]
		ex += p * iv
		ex2 += p * iv * iv
	}
	variance := ex2 - ex*ex
	if variance < 0 {
		// Floating-point cancellation on a near-deterministic row.
		variance = 0
	}
	scale := CMSDebiasScale(hashRange)
	return scale * scale * variance / float64(rowCount), nil
}
