package metrics

import (
	"errors"
	"fmt"
	"math"

	"optrr/internal/matrix"
	"optrr/internal/rr"
)

// JointWorkspace is the multi-attribute analogue of Workspace: the reusable
// scratch behind the fused record-level objective evaluation. Where the 1-D
// workspace holds one n×n matrix's intermediates, the joint workspace holds
// the Kronecker-factored ones — per-attribute factor views, the factored
// inverse ⊗M_d⁻¹ and its element-wise square, and a handful of product-space
// vectors (P*, per-row MAP maxima, P̂, the Theorem-6 quadratic form) — so
// that steady-state evaluation performs zero heap allocations and never
// materializes the N×N joint channel (N = ∏n_d).
//
// Everything is computed from the factors:
//
//   - P* = (⊗M_d)·P by mode contractions, O(N·Σn_d) instead of O(N²);
//   - the MAP adversary's per-row maxima max_i θ_{j,i}·P_i by the same
//     contraction over the (max, ×) semiring — valid because every θ and P
//     entry is non-negative, so the maximum commutes through the per-factor
//     products (Kron.MaxMulVecInto). One sweep over those maxima yields both
//     the accuracy of Equation 8 and the worst-case posterior of Equation 9,
//     exactly as in the 1-D fused path;
//   - the closed-form MSE (Theorem 6) from the factored inverse:
//     (⊗M_d)⁻¹ = ⊗M_d⁻¹ needs only d small LU inverses, and the per-category
//     quadratic form Σ_i β²_{k,i}·P*_i is ((⊗M_d⁻¹)∘²)·P* because squaring
//     commutes with the Kronecker product.
//
// The dense JointChannel survives only as the test oracle; the property
// tests pin this workspace against it to 1e-12.
//
// A JointWorkspace is not safe for concurrent use; give each worker
// goroutine its own.
type JointWorkspace struct {
	dims    []int
	size    int
	factors []*matrix.Dense
	theta   *matrix.Kron
	inv     *matrix.Kron
	invSq   *matrix.Kron
	lu      *matrix.LU

	pStar  []float64
	rowMax []float64
	pHat   []float64
	quad   []float64
	tmp    []float64
}

// NewJointWorkspace returns an empty joint evaluation workspace. Buffers are
// sized lazily on first use and re-sized whenever the attribute sizes change.
func NewJointWorkspace() *JointWorkspace {
	return &JointWorkspace{lu: matrix.NewLU()}
}

// bind points the workspace at a matrix tuple, reusing every buffer when the
// per-attribute sizes are unchanged.
func (ws *JointWorkspace) bind(ms []*rr.Matrix) error {
	if len(ms) == 0 {
		return fmt.Errorf("%w: no attributes", ErrShape)
	}
	same := len(ms) == len(ws.dims)
	for d, m := range ms {
		if m == nil {
			return fmt.Errorf("%w: nil matrix for attribute %d", ErrShape, d)
		}
		if same && m.N() != ws.dims[d] {
			same = false
		}
	}
	ws.factors = ws.factors[:0]
	for _, m := range ms {
		ws.factors = append(ws.factors, m.DenseView())
	}
	if same {
		return ws.theta.Reset(ws.factors)
	}
	ws.dims = make([]int, len(ms))
	size := 1
	for d, m := range ms {
		ws.dims[d] = m.N()
		size *= m.N()
	}
	ws.size = size
	theta, err := matrix.NewKron(ws.factors...)
	if err != nil {
		return err
	}
	ws.theta = theta
	ws.inv = matrix.KronZeros(ws.dims)
	ws.invSq = matrix.KronZeros(ws.dims)
	ws.pStar = make([]float64, size)
	ws.rowMax = make([]float64, size)
	ws.pHat = make([]float64, size)
	ws.quad = make([]float64, size)
	ws.tmp = make([]float64, size)
	return nil
}

func validateJoint(size int, joint []float64) error {
	if len(joint) != size {
		return fmt.Errorf("%w: joint of length %d for %d cells", ErrShape, len(joint), size)
	}
	var sum float64
	for i, v := range joint {
		if v < 0 || math.IsNaN(v) {
			return fmt.Errorf("%w: joint[%d] = %v", ErrBadPrior, i, v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("%w: joint sums to %v", ErrBadPrior, sum)
	}
	return nil
}

// factoredInverse fills ws.inv and ws.invSq from the bound factors, mapping
// a singular factor to rr.ErrSingular exactly as the 1-D inversion path does.
func (ws *JointWorkspace) factoredInverse() error {
	if err := ws.theta.InverseInto(ws.inv, ws.lu); err != nil {
		if errors.Is(err, matrix.ErrSingular) {
			return fmt.Errorf("%w: %v", rr.ErrSingular, err)
		}
		return err
	}
	return ws.inv.SquareInto(ws.invSq)
}

// mapSweep fills ws.pStar and ws.rowMax and sweeps them once, returning the
// MAP adversary's expected accuracy A = Σ_j max_i θ_{j,i}·P_i and the
// worst-case record-level posterior max_j (max_i θ_{j,i}·P_i)/P*_j.
func (ws *JointWorkspace) mapSweep(joint []float64) (a, mp float64, err error) {
	if err := ws.theta.MulVecInto(ws.pStar, joint, ws.tmp); err != nil {
		return 0, 0, err
	}
	if err := ws.theta.MaxMulVecInto(ws.rowMax, joint, ws.tmp); err != nil {
		return 0, 0, err
	}
	for j, best := range ws.rowMax {
		a += best
		if ps := ws.pStar[j]; ps > 0 {
			if q := best / ps; q > mp {
				mp = q
			}
		}
	}
	return a, mp, nil
}

// utilityFromPStar computes the Theorem-6 average MSE of the joint inversion
// estimate from an already-filled ws.pStar, ws.inv and ws.invSq.
func (ws *JointWorkspace) utilityFromPStar(records int) (float64, error) {
	if err := ws.inv.MulVecInto(ws.pHat, ws.pStar, ws.tmp); err != nil {
		return 0, err
	}
	if err := ws.invSq.MulVecInto(ws.quad, ws.pStar, ws.tmp); err != nil {
		return 0, err
	}
	invN := 1 / float64(records)
	var sum float64
	for k, q := range ws.quad {
		mean := ws.pHat[k]
		mse := invN * (q - mean*mean)
		if mse < 0 {
			mse = 0 // guard against round-off on near-deterministic matrices
		}
		sum += mse
	}
	return sum / float64(ws.size), nil
}

// Evaluate computes the record-level privacy, the joint-reconstruction
// utility, and the worst-case posterior in one fused pass over the factored
// representation, reusing the workspace buffers. It matches the dense
// JointChannel-composed metrics to floating-point round-off (the property
// tests pin 1e-12) at O(N·Σn_d) instead of O(N²)+O(N³) cost.
func (ws *JointWorkspace) Evaluate(ms []*rr.Matrix, joint []float64, records int) (Evaluation, error) {
	if err := ws.bind(ms); err != nil {
		return Evaluation{}, err
	}
	if err := validateJoint(ws.size, joint); err != nil {
		return Evaluation{}, err
	}
	if records <= 0 {
		return Evaluation{}, fmt.Errorf("%w: %d", ErrBadRecords, records)
	}
	if err := ws.factoredInverse(); err != nil {
		return Evaluation{}, err
	}
	a, mp, err := ws.mapSweep(joint)
	if err != nil {
		return Evaluation{}, err
	}
	util, err := ws.utilityFromPStar(records)
	if err != nil {
		return Evaluation{}, err
	}
	return Evaluation{Privacy: 1 - a, Utility: util, MaxPosterior: mp}, nil
}

// Privacy returns the record-level privacy 1 − A. Unlike Evaluate it needs
// no inverse, so it is defined for singular tuples.
func (ws *JointWorkspace) Privacy(ms []*rr.Matrix, joint []float64) (float64, error) {
	if err := ws.bind(ms); err != nil {
		return 0, err
	}
	if err := validateJoint(ws.size, joint); err != nil {
		return 0, err
	}
	a, _, err := ws.mapSweep(joint)
	if err != nil {
		return 0, err
	}
	return 1 - a, nil
}

// Utility returns the average closed-form MSE of the joint inversion
// estimate (Theorem 6 over the product space) for a data set of the given
// size, computed entirely from the factors.
func (ws *JointWorkspace) Utility(ms []*rr.Matrix, joint []float64, records int) (float64, error) {
	if err := ws.bind(ms); err != nil {
		return 0, err
	}
	if err := validateJoint(ws.size, joint); err != nil {
		return 0, err
	}
	if records <= 0 {
		return 0, fmt.Errorf("%w: %d", ErrBadRecords, records)
	}
	if err := ws.factoredInverse(); err != nil {
		return 0, err
	}
	if err := ws.theta.MulVecInto(ws.pStar, joint, ws.tmp); err != nil {
		return 0, err
	}
	return ws.utilityFromPStar(records)
}

// MaxPosterior returns the worst-case record-level posterior
// max P(X-record | Y-record) without the joint channel or any inverse —
// just two mode contractions and a sweep. It is the bound check the repair
// bisection of OptimizeMulti runs dozens of times per infeasible child.
func (ws *JointWorkspace) MaxPosterior(ms []*rr.Matrix, joint []float64) (float64, error) {
	if err := ws.bind(ms); err != nil {
		return 0, err
	}
	if err := validateJoint(ws.size, joint); err != nil {
		return 0, err
	}
	_, mp, err := ws.mapSweep(joint)
	if err != nil {
		return 0, err
	}
	return mp, nil
}

// MeetsBound reports whether the tuple satisfies the record-level posterior
// bound max P(X-record | Y-record) ≤ delta under the joint prior, with the
// same tolerance as the 1-D Workspace.
func (ws *JointWorkspace) MeetsBound(ms []*rr.Matrix, joint []float64, delta float64) (bool, error) {
	mp, err := ws.MaxPosterior(ms, joint)
	if err != nil {
		return false, err
	}
	return mp <= delta+1e-12, nil
}

// Size returns the product-space cell count bound by the last successful
// call, or 0 before any.
func (ws *JointWorkspace) Size() int { return ws.size }
