package metrics

import (
	"math"

	"optrr/internal/rr"
)

// Information-theoretic privacy metrics. The paper's privacy metric is the
// Bayes-adversary accuracy; the PPDM literature also measures leakage as the
// mutual information between the original and disguised values. Both agree
// on the extremes (identity discloses everything; the totally-random matrix
// nothing) but weigh partial leakage differently, so having both lets users
// cross-check a matrix before deployment.

// Entropy returns the Shannon entropy (in bits) of a distribution. Zero
// entries contribute nothing.
func Entropy(p []float64) float64 {
	var h float64
	for _, v := range p {
		if v > 0 {
			h -= v * math.Log2(v)
		}
	}
	return h
}

// MutualInformation returns I(X; Y) in bits for original X distributed as
// prior and Y the disguised value produced by m:
//
//	I(X;Y) = H(Y) − H(Y|X) = H(Y) − Σ_x P(x)·H(M column x).
func MutualInformation(m *rr.Matrix, prior []float64) (float64, error) {
	if err := validatePrior(m, prior); err != nil {
		return 0, err
	}
	pStar, err := m.DisguisedDistribution(prior)
	if err != nil {
		return 0, err
	}
	hy := Entropy(pStar)
	var hyGivenX float64
	for x, px := range prior {
		if px == 0 {
			continue
		}
		hyGivenX += px * Entropy(m.Column(x))
	}
	mi := hy - hyGivenX
	if mi < 0 {
		mi = 0 // round-off guard: MI is non-negative
	}
	return mi, nil
}

// NormalizedLeakage returns I(X;Y)/H(X) ∈ [0, 1]: the fraction of the
// original value's uncertainty that observing the disguised value removes.
// It is 0 for a degenerate prior (nothing to learn).
func NormalizedLeakage(m *rr.Matrix, prior []float64) (float64, error) {
	mi, err := MutualInformation(m, prior)
	if err != nil {
		return 0, err
	}
	hx := Entropy(prior)
	if hx == 0 {
		return 0, nil
	}
	l := mi / hx
	if l > 1 {
		l = 1
	}
	return l, nil
}
