package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"optrr/internal/rr"
)

// Pluggable extra objectives. The paper optimizes exactly two axes —
// privacy (Equation 8) and utility (Theorem 6) — but the package already
// computes richer per-matrix measures (ε-LDP, mutual information, the
// per-category MSE spread). An Objective packages one such measure so the
// optimizer can drive a k-dimensional search: it evaluates against a
// Workspace that has just run its fused Evaluate on the same matrix, and so
// can reuse the already-computed disguised distribution and inverse instead
// of re-deriving them.

// Direction states whether larger or smaller objective values are better.
type Direction int

const (
	// Minimize means smaller values are better (like utility/MSE).
	Minimize Direction = iota
	// Maximize means larger values are better (like privacy). The
	// optimizer stores Maximize objectives negated (canonical minimized
	// form, see Evaluation.Extra and CanonicalValue).
	Maximize
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case Minimize:
		return "minimize"
	case Maximize:
		return "maximize"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Objective is one extra optimization axis beyond the paper's pair.
//
// Evaluate is called with a Workspace on which Evaluate(m, prior, records)
// has just succeeded for the same matrix, so ws.PStar() and ws.Inverse()
// hold that matrix's disguised distribution and inverse; implementations
// should reuse them rather than recompute. Evaluate must be deterministic
// and must return a finite value for every valid column-stochastic matrix —
// the SPEA2 distance kernels normalize by per-objective ranges, which an
// infinity would poison (cap instead, as the built-in ldp-epsilon does).
type Objective interface {
	// Name is the objective's registry key, e.g. "ldp-epsilon".
	Name() string
	// Direction states how the raw value is oriented.
	Direction() Direction
	// Evaluate returns the raw objective value for m under prior.
	Evaluate(ws *Workspace, m *rr.Matrix, prior []float64, records int) (float64, error)
}

// CanonicalValue maps a raw objective value into canonical minimized form:
// Minimize objectives pass through, Maximize objectives negate. It is its
// own inverse, so it also maps canonical values back to raw ones.
func CanonicalValue(o Objective, v float64) float64 {
	if o.Direction() == Maximize {
		return -v
	}
	return v
}

// funcObjective is the function-backed Objective implementation behind
// NewObjective and the built-ins.
type funcObjective struct {
	name string
	dir  Direction
	fn   func(ws *Workspace, m *rr.Matrix, prior []float64, records int) (float64, error)
}

func (o *funcObjective) Name() string         { return o.name }
func (o *funcObjective) Direction() Direction { return o.dir }
func (o *funcObjective) Evaluate(ws *Workspace, m *rr.Matrix, prior []float64, records int) (float64, error) {
	return o.fn(ws, m, prior, records)
}

// NewObjective wraps an evaluation function as an Objective.
func NewObjective(name string, dir Direction, fn func(ws *Workspace, m *rr.Matrix, prior []float64, records int) (float64, error)) Objective {
	return &funcObjective{name: name, dir: dir, fn: fn}
}

// The objective registry. Registration is concurrency-safe; the built-ins
// register at init and user code may add more (see RegisterObjective).
var objRegistry = struct {
	sync.RWMutex
	byName map[string]Objective
	alias  map[string]string
}{
	byName: map[string]Objective{},
	alias:  map[string]string{},
}

// reservedObjectiveNames are the two canonical axes, which are always
// present and cannot be re-registered as extras.
var reservedObjectiveNames = map[string]bool{"privacy": true, "utility": true}

// RegisterObjective adds an objective to the registry under its Name. It
// fails on a nil objective, an empty or reserved name, or a duplicate.
func RegisterObjective(o Objective) error {
	if o == nil {
		return fmt.Errorf("metrics: nil objective")
	}
	name := o.Name()
	if name == "" {
		return fmt.Errorf("metrics: objective with empty name")
	}
	if reservedObjectiveNames[name] {
		return fmt.Errorf("metrics: objective name %q is reserved", name)
	}
	objRegistry.Lock()
	defer objRegistry.Unlock()
	if _, dup := objRegistry.byName[name]; dup {
		return fmt.Errorf("metrics: objective %q already registered", name)
	}
	if _, dup := objRegistry.alias[name]; dup {
		return fmt.Errorf("metrics: objective name %q is taken as an alias", name)
	}
	objRegistry.byName[name] = o
	return nil
}

// registerAlias maps a short name onto a registered objective's name.
func registerAlias(alias, name string) {
	objRegistry.Lock()
	defer objRegistry.Unlock()
	objRegistry.alias[alias] = name
}

// ObjectiveByName looks an objective up by name or alias ("ldp" resolves to
// "ldp-epsilon", "mi" to "mutual-information").
func ObjectiveByName(name string) (Objective, bool) {
	objRegistry.RLock()
	defer objRegistry.RUnlock()
	if full, ok := objRegistry.alias[name]; ok {
		name = full
	}
	o, ok := objRegistry.byName[name]
	return o, ok
}

// ObjectiveNames returns the sorted names of all registered objectives
// (canonical names only, aliases excluded).
func ObjectiveNames() []string {
	objRegistry.RLock()
	defer objRegistry.RUnlock()
	out := make([]string, 0, len(objRegistry.byName))
	for name := range objRegistry.byName {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// EvaluateObjectives evaluates every objective against the workspace state
// left by the last Evaluate call on m, writing the raw values into dst
// (len(objs)). It stops at the first error.
func (ws *Workspace) EvaluateObjectives(m *rr.Matrix, prior []float64, records int, objs []Objective, dst []float64) error {
	if len(dst) != len(objs) {
		return fmt.Errorf("%w: %d objectives, dst of length %d", ErrShape, len(objs), len(dst))
	}
	for t, o := range objs {
		v, err := o.Evaluate(ws, m, prior, records)
		if err != nil {
			return fmt.Errorf("metrics: objective %q: %w", o.Name(), err)
		}
		dst[t] = v
	}
	return nil
}

// LDPEpsilonCap bounds the ldp-epsilon objective's value. LocalDPEpsilon is
// +Inf for any matrix with a zero entry in a reachable row; an infinite
// objective value would poison the optimizer's normalized distance kernels
// (Inf − Inf), so the objective saturates at this cap — e^64 is far beyond
// any meaningful privacy budget, so the cap never reorders two matrices a
// practitioner would distinguish.
const LDPEpsilonCap = 64.0

// builtin objectives, registered at init:
//
//	ldp-epsilon (alias ldp)          — minimized; LocalDPEpsilon capped at
//	                                   LDPEpsilonCap. Prior-free.
//	mutual-information (alias mi)    — minimized; I(X;Y) in bits, reusing
//	                                   the workspace's P*.
//	worst-mse                        — minimized; the largest per-category
//	                                   MSE (Theorem 6), reusing the
//	                                   workspace's P* and inverse.
func init() {
	mustRegister := func(o Objective, aliases ...string) {
		if err := RegisterObjective(o); err != nil {
			panic(err)
		}
		for _, a := range aliases {
			registerAlias(a, o.Name())
		}
	}
	mustRegister(NewObjective("ldp-epsilon", Minimize, evalLDPEpsilon), "ldp")
	mustRegister(NewObjective("mutual-information", Minimize, evalMutualInformation), "mi")
	mustRegister(NewObjective("worst-mse", Minimize, evalWorstMSE))
}

// evalLDPEpsilon is the ldp-epsilon built-in: the tightest ε-LDP level of
// the matrix, capped at LDPEpsilonCap. Prior-free, so it ignores the
// workspace entirely.
func evalLDPEpsilon(_ *Workspace, m *rr.Matrix, _ []float64, _ int) (float64, error) {
	eps := LocalDPEpsilon(m)
	if eps > LDPEpsilonCap {
		eps = LDPEpsilonCap
	}
	return eps, nil
}

// evalMutualInformation is the mutual-information built-in: I(X;Y) in bits,
// computed from the workspace's P* — the same arithmetic as the package
// MutualInformation with the DisguisedDistribution recomputation elided and
// the column entropies read straight off the matrix (Column copies; Theta
// walks the same entries in the same order without allocating).
func evalMutualInformation(ws *Workspace, m *rr.Matrix, prior []float64, _ int) (float64, error) {
	n := m.N()
	hy := Entropy(ws.PStar())
	var hyGivenX float64
	for x, px := range prior {
		if px == 0 {
			continue
		}
		var h float64
		for j := 0; j < n; j++ {
			if v := m.Theta(j, x); v > 0 {
				h -= v * math.Log2(v)
			}
		}
		hyGivenX += px * h
	}
	mi := hy - hyGivenX
	if mi < 0 {
		mi = 0 // round-off guard: MI is non-negative
	}
	return mi, nil
}

// evalWorstMSE is the worst-mse built-in: the largest per-category MSE of
// the inversion estimate (Theorem 6) — the fairness companion of the
// average the utility objective minimizes — computed from the workspace's
// P* and inverse with the exact per-category arithmetic of PerCategoryMSE.
func evalWorstMSE(ws *Workspace, m *rr.Matrix, _ []float64, records int) (float64, error) {
	n := m.N()
	pStar := ws.PStar()
	inv := ws.Inverse()
	invN := 1 / float64(records)
	worst := math.Inf(-1)
	for k := 0; k < n; k++ {
		var quad, mean float64
		bk := inv.RowView(k)
		for i, b := range bk {
			quad += b * b * pStar[i]
			mean += b * pStar[i]
		}
		mse := invN * (quad - mean*mean)
		if mse < 0 {
			mse = 0 // guard against round-off on near-deterministic matrices
		}
		if mse > worst {
			worst = mse
		}
	}
	return worst, nil
}
