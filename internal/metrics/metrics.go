// Package metrics implements the paper's quantification of privacy and
// utility (Section IV).
//
// Privacy is defined against the Bayes-optimal adversary: given a disguised
// value Y, the adversary's best estimate of the original X is the MAP
// estimate (Theorems 3–4), whose expected accuracy is
//
//	A = Σ_Y P(Y | X̂_Y)·P(X̂_Y) = Σ_j max_i θ_{j,i}·P(c_i),
//
// and Privacy = 1 − A (Equation 8). The per-record worst case is bounded by
// max_Y P(X̂_Y | Y) ≤ δ (Equation 9); Theorem 5 shows this bound can never
// be below max_X P(X).
//
// Utility is the average closed-form Mean Squared Error of the inversion
// estimator (Theorem 6). Because the estimator is unbiased, the MSE equals
// the estimator variance, which follows from the multinomial covariance of
// the disguised counts. Larger utility values mean worse utility.
package metrics

import (
	"errors"
	"fmt"
	"math"

	"optrr/internal/matrix"
	"optrr/internal/rr"
)

// Metric errors.
var (
	// ErrShape reports mismatched category counts.
	ErrShape = errors.New("metrics: dimension mismatch")
	// ErrBadPrior reports an invalid prior distribution.
	ErrBadPrior = errors.New("metrics: invalid prior distribution")
	// ErrBadRecords reports a non-positive record count.
	ErrBadRecords = errors.New("metrics: record count must be positive")
)

func validatePrior(m *rr.Matrix, prior []float64) error {
	if len(prior) != m.N() {
		return fmt.Errorf("%w: prior of length %d for %d categories", ErrShape, len(prior), m.N())
	}
	var sum float64
	for i, v := range prior {
		if v < 0 || math.IsNaN(v) {
			return fmt.Errorf("%w: prior[%d] = %v", ErrBadPrior, i, v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("%w: prior sums to %v", ErrBadPrior, sum)
	}
	return nil
}

// Posterior returns the posterior matrix post[j][i] = P(X = c_i | Y = c_j)
// under matrix m and the given prior. Rows for unobservable disguised values
// (P(Y = c_j) = 0) are all zero.
func Posterior(m *rr.Matrix, prior []float64) ([][]float64, error) {
	if err := validatePrior(m, prior); err != nil {
		return nil, err
	}
	n := m.N()
	pStar, err := m.DisguisedDistribution(prior)
	if err != nil {
		return nil, err
	}
	post := make([][]float64, n)
	for j := 0; j < n; j++ {
		row := make([]float64, n)
		if pStar[j] > 0 {
			for i := 0; i < n; i++ {
				row[i] = m.Theta(j, i) * prior[i] / pStar[j]
			}
		}
		post[j] = row
	}
	return post, nil
}

// MAPEstimate returns, for each disguised value c_j, the adversary's MAP
// estimate of the original category (Theorem 3): argmax_i P(X = c_i | Y = c_j).
// Ties break toward the smaller index for determinism. Unobservable
// disguised values map to -1.
func MAPEstimate(m *rr.Matrix, prior []float64) ([]int, error) {
	post, err := Posterior(m, prior)
	if err != nil {
		return nil, err
	}
	n := m.N()
	est := make([]int, n)
	for j := 0; j < n; j++ {
		best, bestV := -1, 0.0
		for i := 0; i < n; i++ {
			if post[j][i] > bestV {
				best, bestV = i, post[j][i]
			}
		}
		est[j] = best
	}
	return est, nil
}

// Accuracy returns the Bayes-optimal adversary's expected estimation
// accuracy A = Σ_j max_i θ_{j,i}·P(c_i). This equals
// Σ_Y P(X̂_Y | Y)·P(Y) and, by Bayes' rule, Σ_Y P(Y | X̂_Y)·P(X̂_Y).
func Accuracy(m *rr.Matrix, prior []float64) (float64, error) {
	if err := validatePrior(m, prior); err != nil {
		return 0, err
	}
	n := m.N()
	var a float64
	for j := 0; j < n; j++ {
		var best float64
		for i := 0; i < n; i++ {
			if v := m.Theta(j, i) * prior[i]; v > best {
				best = v
			}
		}
		a += best
	}
	return a, nil
}

// Privacy returns 1 − A (Equation 8). Larger is better for privacy.
func Privacy(m *rr.Matrix, prior []float64) (float64, error) {
	a, err := Accuracy(m, prior)
	if err != nil {
		return 0, err
	}
	return 1 - a, nil
}

// MaxPosterior returns max_{Y,X} P(X | Y), the worst-case per-record
// estimation accuracy that Equation (9) bounds by δ.
func MaxPosterior(m *rr.Matrix, prior []float64) (float64, error) {
	post, err := Posterior(m, prior)
	if err != nil {
		return 0, err
	}
	var max float64
	for _, row := range post {
		for _, v := range row {
			if v > max {
				max = v
			}
		}
	}
	return max, nil
}

// MeetsBound reports whether m satisfies the privacy bound
// max P(X | Y) ≤ delta under the given prior.
func MeetsBound(m *rr.Matrix, prior []float64, delta float64) (bool, error) {
	mp, err := MaxPosterior(m, prior)
	if err != nil {
		return false, err
	}
	return mp <= delta+1e-12, nil
}

// BoundFloor returns the smallest achievable posterior bound for a prior:
// by Theorem 5 no RR matrix can push max P(X̂ | Y) below max_X P(X).
func BoundFloor(prior []float64) float64 {
	var max float64
	for _, v := range prior {
		if v > max {
			max = v
		}
	}
	return max
}

// Utility returns the paper's utility metric (Equation 10): the average over
// categories of the closed-form MSE of the inversion estimator (Theorem 6)
// for a data set of n records drawn from the prior. Smaller is better. It
// returns rr.ErrSingular for non-invertible matrices, for which the
// inversion estimator is undefined.
func Utility(m *rr.Matrix, prior []float64, records int) (float64, error) {
	mses, err := PerCategoryMSE(m, prior, records)
	if err != nil {
		return 0, err
	}
	var sum float64
	for _, v := range mses {
		sum += v
	}
	return sum / float64(len(mses)), nil
}

// PerCategoryMSE returns the closed-form MSE of the inversion estimate of
// each category probability (Theorem 6):
//
//	MSE(c_k) = Σ_i β²_{k,i}·Var(N_i/N) + Σ_{i≠j} β_{k,i}β_{k,j}·Cov(N_i/N, N_j/N)
//	         = (1/N)·(Σ_i β²_{k,i}·P*_i − P_k²),
//
// where β is M⁻¹ and the simplification uses Var(N_i/N) = P*_i(1−P*_i)/N,
// Cov(N_i/N, N_j/N) = −P*_i·P*_j/N and Σ_i β_{k,i}·P*_i = P_k.
func PerCategoryMSE(m *rr.Matrix, prior []float64, records int) ([]float64, error) {
	if records <= 0 {
		return nil, fmt.Errorf("%w: %d", ErrBadRecords, records)
	}
	if err := validatePrior(m, prior); err != nil {
		return nil, err
	}
	inv, err := m.Inverse()
	if err != nil {
		return nil, err
	}
	return PerCategoryMSEWithInverse(m, inv, prior, records)
}

// PerCategoryMSEWithInverse is PerCategoryMSE with a caller-provided M⁻¹,
// skipping the LU factorization — the path collectors take on repeated
// snapshot queries, where the disguise matrix (and hence its inverse) is
// fixed for the whole campaign. inv must be the inverse of m; passing
// anything else silently yields wrong variances.
func PerCategoryMSEWithInverse(m *rr.Matrix, inv *matrix.Dense, prior []float64, records int) ([]float64, error) {
	if records <= 0 {
		return nil, fmt.Errorf("%w: %d", ErrBadRecords, records)
	}
	if err := validatePrior(m, prior); err != nil {
		return nil, err
	}
	pStar, err := m.DisguisedDistribution(prior)
	if err != nil {
		return nil, err
	}
	n := m.N()
	invN := 1 / float64(records)
	out := make([]float64, n)
	for k := 0; k < n; k++ {
		var quad, mean float64
		for i := 0; i < n; i++ {
			b := inv.At(k, i)
			quad += b * b * pStar[i]
			mean += b * pStar[i]
		}
		mse := invN * (quad - mean*mean)
		if mse < 0 {
			mse = 0 // guard against round-off on near-deterministic matrices
		}
		out[k] = mse
	}
	return out, nil
}

// Evaluation bundles the objectives for one RR matrix under a fixed prior
// and record count — the point the optimizer plots in objective space.
type Evaluation struct {
	// Privacy is 1 − A (Equation 8); larger is better.
	Privacy float64
	// Utility is the average MSE (Equation 10); smaller is better.
	Utility float64
	// MaxPosterior is the worst-case per-record accuracy of Equation 9.
	MaxPosterior float64
	// Extra holds the values of any additional configured objectives (see
	// Objective), in configuration order and in canonical minimized form:
	// a Maximize objective's value is stored negated, so that smaller is
	// better on every entry exactly as for Utility. Nil for the canonical
	// two-objective evaluation — the zero-allocation fast path.
	Extra []float64
}

// Evaluate computes both objectives and the bound value in one pass. It runs
// the fused single-sweep evaluator on a throwaway Workspace; callers in hot
// loops should hold a Workspace of their own and call its Evaluate directly.
func Evaluate(m *rr.Matrix, prior []float64, records int) (Evaluation, error) {
	return NewWorkspace().Evaluate(m, prior, records)
}

// EvaluateComposed computes the same Evaluation through the three standalone
// metric functions. It exists as the reference implementation the fused
// Workspace path is tested against; Evaluate is the faster equivalent.
func EvaluateComposed(m *rr.Matrix, prior []float64, records int) (Evaluation, error) {
	priv, err := Privacy(m, prior)
	if err != nil {
		return Evaluation{}, err
	}
	util, err := Utility(m, prior, records)
	if err != nil {
		return Evaluation{}, err
	}
	mp, err := MaxPosterior(m, prior)
	if err != nil {
		return Evaluation{}, err
	}
	return Evaluation{Privacy: priv, Utility: util, MaxPosterior: mp}, nil
}
