package metrics

import (
	"fmt"

	"optrr/internal/matrix"
	"optrr/internal/rr"
)

// Multi-dimensional metrics: the paper's future work (Section VII) extended
// from its one-dimensional definitions. A record now has d attributes, each
// disguised independently with its own RR matrix; the adversary observes the
// full disguised record and estimates the full original record, and utility
// is the MSE of the reconstructed joint distribution. The joint disguise
// channel is the Kronecker product of the per-attribute matrices, so both
// metrics reduce to their one-dimensional forms over the product space.
//
// The package-level Joint* functions run on the Kronecker-factored
// JointWorkspace — O(N·Σn_d) per evaluation, no N×N matrix, no product-space
// cap. The dense JointChannel below materializes the joint matrix explicitly
// and survives only as the oracle the factored path is property-tested
// against (and as the slow side of BenchmarkJointEvaluate).

// maxJointCells guards the explicit dense materialization of JointChannel:
// the oracle is exact but O(cells²) in storage. The factored metrics have no
// such cap.
const maxJointCells = 1 << 14

// JointChannel materializes the Kronecker-product channel of the given
// per-attribute matrices as a single RR matrix over the product category
// space. The result's category c = ((i₁·n₂)+i₂)·n₃+… follows row-major
// (attribute-0 slowest) ordering, matching mining.MultiRR.Index.
func JointChannel(ms []*rr.Matrix) (*rr.Matrix, error) {
	if len(ms) == 0 {
		return nil, fmt.Errorf("%w: no attributes", ErrShape)
	}
	total := 1
	for _, m := range ms {
		if m == nil {
			return nil, fmt.Errorf("%w: nil matrix", ErrShape)
		}
		total *= m.N()
	}
	if total > maxJointCells {
		return nil, fmt.Errorf("%w: joint space of %d cells exceeds limit %d", ErrShape, total, maxJointCells)
	}
	dense := matrix.New(total, total)
	// dense[j][i] = Π_d ms[d].Theta(j_d, i_d).
	for j := 0; j < total; j++ {
		jd := unravel(j, ms)
		for i := 0; i < total; i++ {
			id := unravel(i, ms)
			v := 1.0
			for d, m := range ms {
				v *= m.Theta(jd[d], id[d])
				if v == 0 {
					break
				}
			}
			dense.Set(j, i, v)
		}
	}
	return rr.FromDense(dense)
}

// unravel decomposes a flat product-space index into per-attribute digits
// (row-major, attribute 0 slowest). The inverse is ravel; the pair is pinned
// by FuzzJointIndexRoundTrip.
func unravel(idx int, ms []*rr.Matrix) []int {
	out := make([]int, len(ms))
	for d := len(ms) - 1; d >= 0; d-- {
		n := ms[d].N()
		out[d] = idx % n
		idx /= n
	}
	return out
}

// ravel recomposes per-attribute digits into the flat product-space index:
// idx = ((rec_0·n_1 + rec_1)·n_2 + …, matching mining.MultiRR.Index.
func ravel(rec []int, ms []*rr.Matrix) int {
	idx := 0
	for d, m := range ms {
		idx = idx*m.N() + rec[d]
	}
	return idx
}

// JointPrivacy returns the record-level privacy of disguising d attributes
// independently: 1 minus the accuracy of the MAP adversary who observes the
// full disguised record and estimates the full original record, under the
// given joint prior (row-major over the product space). It runs on a
// throwaway factored workspace; hot loops should hold a JointWorkspace.
func JointPrivacy(ms []*rr.Matrix, joint []float64) (float64, error) {
	return NewJointWorkspace().Privacy(ms, joint)
}

// JointUtility returns the average closed-form MSE of the per-axis inversion
// estimate of the joint distribution (Theorem 6 applied over the product
// space), for a data set of the given size.
func JointUtility(ms []*rr.Matrix, joint []float64, records int) (float64, error) {
	return NewJointWorkspace().Utility(ms, joint, records)
}

// JointMaxPosterior returns the worst-case record-level posterior
// max P(X-record | Y-record) — the multi-dimensional analogue of the bound
// of Equation (9). Note that per-attribute bounds δ_d do not compose
// multiplicatively in general; this is the exact joint value.
func JointMaxPosterior(ms []*rr.Matrix, joint []float64) (float64, error) {
	return NewJointWorkspace().MaxPosterior(ms, joint)
}

// JointEvaluate bundles the three joint metrics in one fused factored pass.
func JointEvaluate(ms []*rr.Matrix, joint []float64, records int) (Evaluation, error) {
	return NewJointWorkspace().Evaluate(ms, joint, records)
}
