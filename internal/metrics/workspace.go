package metrics

import (
	"fmt"

	"optrr/internal/matrix"
	"optrr/internal/rr"
)

// Workspace is the reusable scratch behind the fused objective evaluation.
// The optimizer calls Evaluate thousands of times per search on same-sized
// matrices; a Workspace owns every intermediate the metrics need (the
// disguised distribution P*, the LU factorization, the inverse M⁻¹) so that
// steady-state evaluation performs zero heap allocations.
//
// The fused path is bit-for-bit identical to the composed
// Privacy/Utility/MaxPosterior functions: it runs the same floating-point
// operations in the same order, merely sharing the intermediates —
// one prior validation instead of three, one P* instead of two, one matrix
// inverse, and the MAP accuracy and worst-case posterior extracted from a
// single sweep over θ·P (the per-row maximum of θ_{j,i}·P_i is both the
// accuracy summand of Equation 8 and, divided by P*_j, the row's posterior
// maximum for Equation 9).
//
// A Workspace is not safe for concurrent use; give each worker goroutine its
// own.
type Workspace struct {
	n     int
	pStar []float64
	lu    *matrix.LU
	inv   *matrix.Dense
}

// NewWorkspace returns an empty evaluation workspace. Buffers are sized
// lazily on first use and re-sized whenever the category count changes.
func NewWorkspace() *Workspace {
	return &Workspace{lu: matrix.NewLU()}
}

func (ws *Workspace) resize(n int) {
	if ws.n == n {
		return
	}
	ws.n = n
	ws.pStar = make([]float64, n)
	ws.inv = matrix.New(n, n)
}

// Evaluate computes both objectives and the bound value in one fused pass,
// reusing the workspace buffers. The result is identical to the composed
// Privacy/Utility/MaxPosterior path (see the package test
// TestWorkspaceEvaluateMatchesComposed, which asserts bitwise equality).
func (ws *Workspace) Evaluate(m *rr.Matrix, prior []float64, records int) (Evaluation, error) {
	if err := validatePrior(m, prior); err != nil {
		return Evaluation{}, err
	}
	if records <= 0 {
		return Evaluation{}, fmt.Errorf("%w: %d", ErrBadRecords, records)
	}
	n := m.N()
	ws.resize(n)
	if err := m.DisguisedDistributionInto(ws.pStar, prior); err != nil {
		return Evaluation{}, err
	}

	// One sweep over θ·P: the per-row maximum θ_{j,i}·P_i is the accuracy
	// summand (Equation 8); divided by P*_j it is the row's largest
	// posterior (Equation 9) — division by a positive constant preserves
	// the argmax, so no separate posterior matrix is needed.
	var a, mp float64
	for j := 0; j < n; j++ {
		row := m.ThetaRow(j)
		var best float64
		for i, th := range row {
			if v := th * prior[i]; v > best {
				best = v
			}
		}
		a += best
		if ws.pStar[j] > 0 {
			if q := best / ws.pStar[j]; q > mp {
				mp = q
			}
		}
	}

	// Closed-form MSE (Theorem 6) from the reusable inverse.
	if err := m.FactorizeInto(ws.lu); err != nil {
		return Evaluation{}, err
	}
	if err := ws.lu.InverseInto(ws.inv); err != nil {
		return Evaluation{}, err
	}
	invN := 1 / float64(records)
	var sum float64
	for k := 0; k < n; k++ {
		var quad, mean float64
		bk := ws.inv.RowView(k)
		for i, b := range bk {
			quad += b * b * ws.pStar[i]
			mean += b * ws.pStar[i]
		}
		mse := invN * (quad - mean*mean)
		if mse < 0 {
			mse = 0 // guard against round-off on near-deterministic matrices
		}
		sum += mse
	}

	return Evaluation{Privacy: 1 - a, Utility: sum / float64(n), MaxPosterior: mp}, nil
}

// PStar returns the disguised distribution P* computed by the last
// successful Evaluate call. The slice aliases the workspace buffer: it is
// valid until the next call on the workspace and must not be mutated. It is
// the intermediate extra objectives (see Objective) reuse instead of
// re-deriving it from the matrix.
func (ws *Workspace) PStar() []float64 { return ws.pStar }

// Inverse returns the matrix inverse M⁻¹ computed by the last successful
// Evaluate call, under the same aliasing contract as PStar.
func (ws *Workspace) Inverse() *matrix.Dense { return ws.inv }

// MaxPosterior computes max_{Y,X} P(X | Y) without materializing the
// posterior matrix, reusing the workspace's P* buffer. Identical to the
// package-level MaxPosterior.
func (ws *Workspace) MaxPosterior(m *rr.Matrix, prior []float64) (float64, error) {
	if err := validatePrior(m, prior); err != nil {
		return 0, err
	}
	n := m.N()
	ws.resize(n)
	if err := m.DisguisedDistributionInto(ws.pStar, prior); err != nil {
		return 0, err
	}
	var mp float64
	for j := 0; j < n; j++ {
		if ws.pStar[j] <= 0 {
			continue
		}
		row := m.ThetaRow(j)
		var best float64
		for i, th := range row {
			if v := th * prior[i]; v > best {
				best = v
			}
		}
		if q := best / ws.pStar[j]; q > mp {
			mp = q
		}
	}
	return mp, nil
}

// MeetsBound reports whether m satisfies max P(X | Y) ≤ delta under the
// given prior — the allocation-free form of the package-level MeetsBound.
func (ws *Workspace) MeetsBound(m *rr.Matrix, prior []float64, delta float64) (bool, error) {
	mp, err := ws.MaxPosterior(m, prior)
	if err != nil {
		return false, err
	}
	return mp <= delta+1e-12, nil
}
