package metrics

import (
	"errors"
	"math"
	"testing"

	"optrr/internal/randx"
	"optrr/internal/rr"
)

func uniformJoint(cells int) []float64 {
	j := make([]float64, cells)
	for i := range j {
		j[i] = 1 / float64(cells)
	}
	return j
}

func randomJoint(cells int, r *randx.Source) []float64 {
	j := make([]float64, cells)
	var sum float64
	for i := range j {
		j[i] = r.Float64() + 0.01
		sum += j[i]
	}
	for i := range j {
		j[i] /= sum
	}
	return j
}

func TestJointChannelValidates(t *testing.T) {
	if _, err := JointChannel(nil); !errors.Is(err, ErrShape) {
		t.Fatal("empty matrix list accepted")
	}
	if _, err := JointChannel([]*rr.Matrix{nil}); !errors.Is(err, ErrShape) {
		t.Fatal("nil matrix accepted")
	}
	// 2^15 cells exceeds the guard.
	big := make([]*rr.Matrix, 15)
	for i := range big {
		big[i] = rr.Identity(2)
	}
	if _, err := JointChannel(big); !errors.Is(err, ErrShape) {
		t.Fatal("oversized joint space accepted")
	}
}

func TestJointChannelSingleAttributeIsIdentityOp(t *testing.T) {
	m := mustWarner(t, 4, 0.7)
	ch, err := JointChannel([]*rr.Matrix{m})
	if err != nil {
		t.Fatal(err)
	}
	if !ch.Equal(m, 1e-15) {
		t.Fatal("single-attribute joint channel differs from the matrix itself")
	}
}

func TestJointChannelIsKroneckerProduct(t *testing.T) {
	a := mustWarner(t, 2, 0.8)
	b := mustWarner(t, 3, 0.7)
	ch, err := JointChannel([]*rr.Matrix{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if ch.N() != 6 {
		t.Fatalf("joint channel size %d, want 6", ch.N())
	}
	// Spot-check: θ((j1,j2),(i1,i2)) = θa(j1,i1)·θb(j2,i2), with row-major
	// flattening idx = a*3 + b.
	for j1 := 0; j1 < 2; j1++ {
		for j2 := 0; j2 < 3; j2++ {
			for i1 := 0; i1 < 2; i1++ {
				for i2 := 0; i2 < 3; i2++ {
					want := a.Theta(j1, i1) * b.Theta(j2, i2)
					got := ch.Theta(j1*3+j2, i1*3+i2)
					if math.Abs(got-want) > 1e-15 {
						t.Fatalf("theta mismatch at (%d%d, %d%d): %v vs %v", j1, j2, i1, i2, got, want)
					}
				}
			}
		}
	}
	if err := ch.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestJointPrivacyIdentityMatrices(t *testing.T) {
	ms := []*rr.Matrix{rr.Identity(2), rr.Identity(3)}
	r := randx.New(1)
	joint := randomJoint(6, r)
	priv, err := JointPrivacy(ms, joint)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(priv) > 1e-12 {
		t.Fatalf("identity joint privacy = %v, want 0", priv)
	}
}

// TestJointPrivacyIndependentPrior: for a product prior, the joint MAP
// adversary decomposes per attribute, so joint accuracy is the product of
// per-attribute accuracies.
func TestJointPrivacyIndependentPrior(t *testing.T) {
	a := mustWarner(t, 2, 0.8)
	b := mustWarner(t, 3, 0.7)
	pa := []float64{0.6, 0.4}
	pb := []float64{0.5, 0.3, 0.2}
	joint := make([]float64, 6)
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			joint[i*3+j] = pa[i] * pb[j]
		}
	}
	jp, err := JointPrivacy([]*rr.Matrix{a, b}, joint)
	if err != nil {
		t.Fatal(err)
	}
	accA, err := Accuracy(a, pa)
	if err != nil {
		t.Fatal(err)
	}
	accB, err := Accuracy(b, pb)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - accA*accB
	if math.Abs(jp-want) > 1e-12 {
		t.Fatalf("joint privacy = %v, want %v (product decomposition)", jp, want)
	}
}

func TestJointUtilityMatchesFlatUtility(t *testing.T) {
	// The joint utility is exactly the 1-D utility of the Kronecker channel
	// over the product space.
	a := mustWarner(t, 2, 0.8)
	b := mustWarner(t, 2, 0.75)
	r := randx.New(2)
	joint := randomJoint(4, r)
	ju, err := JointUtility([]*rr.Matrix{a, b}, joint, 10000)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := JointChannel([]*rr.Matrix{a, b})
	if err != nil {
		t.Fatal(err)
	}
	u, err := Utility(ch, joint, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if ju != u {
		t.Fatalf("joint utility %v != channel utility %v", ju, u)
	}
	if ju <= 0 {
		t.Fatalf("joint utility %v, want positive", ju)
	}
}

func TestJointMaxPosteriorAtLeastJointMode(t *testing.T) {
	// Theorem 5 lifts to the product space.
	a := mustWarner(t, 2, 0.9)
	b := mustWarner(t, 2, 0.9)
	r := randx.New(3)
	joint := randomJoint(4, r)
	mp, err := JointMaxPosterior([]*rr.Matrix{a, b}, joint)
	if err != nil {
		t.Fatal(err)
	}
	if mp < BoundFloor(joint)-1e-12 {
		t.Fatalf("joint max posterior %v below joint mode %v", mp, BoundFloor(joint))
	}
}

// TestJointUtilityMatchesMonteCarlo validates the multi-dimensional utility
// the same way Theorem 6 is validated in one dimension: the closed form over
// the Kronecker channel must match the Monte-Carlo MSE of the actual
// per-axis reconstruction pipeline.
func TestJointUtilityMatchesMonteCarlo(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo validation skipped in -short mode")
	}
	ms := []*rr.Matrix{mustWarner(t, 3, 0.8), mustWarner(t, 2, 0.75)}
	r := randx.New(7)
	joint := randomJoint(6, r)
	const (
		records = 3000
		trials  = 400
	)
	closed, err := JointUtility(ms, joint, records)
	if err != nil {
		t.Fatal(err)
	}
	// Monte Carlo: sample, disguise per axis, reconstruct the joint by
	// inverting the Kronecker channel (equivalent to per-axis inversion).
	ch, err := JointChannel(ms)
	if err != nil {
		t.Fatal(err)
	}
	alias, err := randx.NewAlias(joint)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	flat := make([]int, records)
	for trial := 0; trial < trials; trial++ {
		for i := range flat {
			flat[i] = alias.Draw(r)
		}
		disguised, err := ch.Disguise(flat, r)
		if err != nil {
			t.Fatal(err)
		}
		est, err := ch.EstimateInversion(disguised)
		if err != nil {
			t.Fatal(err)
		}
		var sq float64
		for k := range joint {
			d := est[k] - joint[k]
			sq += d * d
		}
		total += sq / float64(len(joint))
	}
	emp := total / trials
	if rel := math.Abs(emp-closed) / closed; rel > 0.15 {
		t.Fatalf("empirical joint utility %v vs closed form %v (rel err %v)", emp, closed, rel)
	}
}

func TestJointEvaluateBundles(t *testing.T) {
	ms := []*rr.Matrix{mustWarner(t, 2, 0.8), mustWarner(t, 2, 0.7)}
	joint := uniformJoint(4)
	ev, err := JointEvaluate(ms, joint, 5000)
	if err != nil {
		t.Fatal(err)
	}
	priv, err := JointPrivacy(ms, joint)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Privacy != priv {
		t.Fatalf("bundle privacy %v != %v", ev.Privacy, priv)
	}
}

func BenchmarkJointEvaluate3x4(b *testing.B) {
	ms := make([]*rr.Matrix, 3)
	for i := range ms {
		m, err := rr.Warner(4, 0.8)
		if err != nil {
			b.Fatal(err)
		}
		ms[i] = m
	}
	joint := uniformJoint(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := JointEvaluate(ms, joint, 10000); err != nil {
			b.Fatal(err)
		}
	}
}
