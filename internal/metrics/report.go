package metrics

import (
	"fmt"
	"math"
	"strings"

	"optrr/internal/rr"
)

// PrivacyReport is the one-call "report card" for an RR matrix under a
// prior: every privacy view this package implements, side by side, so a
// deployment decision can be reviewed without assembling the metrics by
// hand.
type PrivacyReport struct {
	// Privacy is the paper's Equation-8 metric (1 − MAP accuracy).
	Privacy float64
	// OrdinalPrivacy is the generalized metric under OrdinalGain — relevant
	// when the categories are ordered and near misses leak.
	OrdinalPrivacy float64
	// MaxPosterior is the worst-case per-record accuracy (Equation 9).
	MaxPosterior float64
	// Epsilon is the tightest ε-local-differential-privacy level
	// (prior-free); +Inf when some output discriminates absolutely.
	Epsilon float64
	// LeakageBits is the mutual information I(X;Y) in bits.
	LeakageBits float64
	// LeakageFraction is I(X;Y)/H(X) ∈ [0, 1].
	LeakageFraction float64
	// Utility is the paper's Equation-10 MSE for the given record count.
	Utility float64
	// Records is the data-set size behind Utility.
	Records int
}

// Report computes the full privacy report card of m under the prior for a
// data set of the given size.
func Report(m *rr.Matrix, prior []float64, records int) (PrivacyReport, error) {
	ev, err := Evaluate(m, prior, records)
	if err != nil {
		return PrivacyReport{}, err
	}
	ordinal, err := PrivacyWithGain(m, prior, OrdinalGain(m.N()))
	if err != nil {
		return PrivacyReport{}, err
	}
	mi, err := MutualInformation(m, prior)
	if err != nil {
		return PrivacyReport{}, err
	}
	leak, err := NormalizedLeakage(m, prior)
	if err != nil {
		return PrivacyReport{}, err
	}
	return PrivacyReport{
		Privacy:         ev.Privacy,
		OrdinalPrivacy:  ordinal,
		MaxPosterior:    ev.MaxPosterior,
		Epsilon:         LocalDPEpsilon(m),
		LeakageBits:     mi,
		LeakageFraction: leak,
		Utility:         ev.Utility,
		Records:         records,
	}, nil
}

// String renders the report for terminals and logs.
func (r PrivacyReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "privacy (Eq 8):        %.4f\n", r.Privacy)
	fmt.Fprintf(&b, "ordinal privacy:       %.4f\n", r.OrdinalPrivacy)
	fmt.Fprintf(&b, "max posterior (Eq 9):  %.4f\n", r.MaxPosterior)
	if math.IsInf(r.Epsilon, 1) {
		b.WriteString("LDP epsilon:           inf (some output is fully identifying)\n")
	} else {
		fmt.Fprintf(&b, "LDP epsilon:           %.3f\n", r.Epsilon)
	}
	fmt.Fprintf(&b, "leakage:               %.3f bits (%.1f%% of H(X))\n", r.LeakageBits, 100*r.LeakageFraction)
	fmt.Fprintf(&b, "utility MSE (Eq 10):   %.3e at N=%d", r.Utility, r.Records)
	return b.String()
}
