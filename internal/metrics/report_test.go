package metrics

import (
	"math"
	"strings"
	"testing"

	"optrr/internal/rr"
)

func TestReportConsistentWithIndividualMetrics(t *testing.T) {
	m := mustWarner(t, 5, 0.7)
	prior := []float64{0.3, 0.25, 0.2, 0.15, 0.1}
	rep, err := Report(m, prior, 10000)
	if err != nil {
		t.Fatal(err)
	}
	priv, _ := Privacy(m, prior)
	util, _ := Utility(m, prior, 10000)
	mi, _ := MutualInformation(m, prior)
	if rep.Privacy != priv || rep.Utility != util || rep.LeakageBits != mi {
		t.Fatalf("report disagrees with individual metrics: %+v", rep)
	}
	if rep.Epsilon != LocalDPEpsilon(m) {
		t.Fatal("epsilon mismatch")
	}
	if rep.Records != 10000 {
		t.Fatalf("records = %d", rep.Records)
	}
}

func TestReportStringRendersAllFields(t *testing.T) {
	m := mustWarner(t, 4, 0.8)
	prior := []float64{0.4, 0.3, 0.2, 0.1}
	rep, err := Report(m, prior, 5000)
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	for _, want := range []string{"privacy (Eq 8)", "ordinal privacy", "max posterior", "LDP epsilon", "leakage", "utility MSE", "N=5000"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report string missing %q:\n%s", want, s)
		}
	}
}

func TestReportIdentityEpsilonInf(t *testing.T) {
	prior := []float64{0.5, 0.3, 0.2}
	rep, err := Report(rr.Identity(3), prior, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(rep.Epsilon, 1) {
		t.Fatalf("identity epsilon = %v", rep.Epsilon)
	}
	if !strings.Contains(rep.String(), "inf") {
		t.Fatal("String does not render the infinite epsilon case")
	}
}

func TestReportSingularMatrix(t *testing.T) {
	prior := []float64{0.5, 0.3, 0.2}
	if _, err := Report(rr.TotallyRandom(3), prior, 1000); err == nil {
		t.Fatal("singular matrix accepted (utility is undefined)")
	}
}
