package metrics

import (
	"fmt"
	"math"
	"testing"

	"optrr/internal/randx"
	"optrr/internal/rr"
)

// mustObjective fails the test if name does not resolve in the registry.
func mustObjective(t testing.TB, name string) Objective {
	t.Helper()
	o, ok := ObjectiveByName(name)
	if !ok {
		t.Fatalf("objective %q not registered", name)
	}
	return o
}

// evalOn runs the fused Evaluate (priming the workspace intermediates) and
// then the named objective, failing on any error.
func evalOn(t *testing.T, ws *Workspace, name string, m *rr.Matrix, prior []float64, records int) float64 {
	t.Helper()
	if _, err := ws.Evaluate(m, prior, records); err != nil {
		t.Fatal(err)
	}
	v, err := mustObjective(t, name).Evaluate(ws, m, prior, records)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return v
}

// TestBuiltinObjectivesMatchPackageFunctions pins the built-ins to the
// standalone package functions bit-for-bit: the workspace-reusing fast paths
// must not change any arithmetic.
func TestBuiltinObjectivesMatchPackageFunctions(t *testing.T) {
	r := randx.New(17)
	for trial := 0; trial < 20; trial++ {
		n := 2 + trial%4
		m := randomStochastic(r, n, 0)
		prior := randomPrior(r, n)
		records := 1000 * (1 + trial%3)
		ws := NewWorkspace()

		gotLDP := evalOn(t, ws, "ldp-epsilon", m, prior, records)
		wantLDP := LocalDPEpsilon(m)
		if wantLDP > LDPEpsilonCap {
			wantLDP = LDPEpsilonCap
		}
		if gotLDP != wantLDP {
			t.Fatalf("trial %d: ldp-epsilon = %v, want %v", trial, gotLDP, wantLDP)
		}

		gotMI := evalOn(t, ws, "mutual-information", m, prior, records)
		wantMI, err := MutualInformation(m, prior)
		if err != nil {
			t.Fatal(err)
		}
		if wantMI < 0 {
			wantMI = 0
		}
		if gotMI != wantMI {
			t.Fatalf("trial %d: mutual-information = %v, want %v", trial, gotMI, wantMI)
		}

		gotWorst := evalOn(t, ws, "worst-mse", m, prior, records)
		mses, err := PerCategoryMSE(m, prior, records)
		if err != nil {
			t.Fatal(err)
		}
		wantWorst := math.Inf(-1)
		for _, v := range mses {
			if v > wantWorst {
				wantWorst = v
			}
		}
		if gotWorst != wantWorst {
			t.Fatalf("trial %d: worst-mse = %v, want %v", trial, gotWorst, wantWorst)
		}
	}
}

// TestLDPEpsilonObjectiveCaps checks the saturation contract: a matrix with
// a zero entry has infinite ε but the objective must stay finite.
func TestLDPEpsilonObjectiveCaps(t *testing.T) {
	m := rr.Identity(3) // zero off-diagonal entries → ε = +Inf
	if !math.IsInf(LocalDPEpsilon(m), 1) {
		t.Fatal("identity matrix should have infinite LDP epsilon")
	}
	o := mustObjective(t, "ldp")
	v, err := o.Evaluate(NewWorkspace(), m, uniformPrior(3), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if v != LDPEpsilonCap {
		t.Fatalf("capped epsilon = %v, want %v", v, LDPEpsilonCap)
	}
}

// TestObjectiveRegistry covers registration failure modes and alias lookup.
func TestObjectiveRegistry(t *testing.T) {
	if err := RegisterObjective(nil); err == nil {
		t.Fatal("nil objective registered")
	}
	noop := func(*Workspace, *rr.Matrix, []float64, int) (float64, error) { return 0, nil }
	if err := RegisterObjective(NewObjective("", Minimize, noop)); err == nil {
		t.Fatal("empty name registered")
	}
	for _, reserved := range []string{"privacy", "utility"} {
		if err := RegisterObjective(NewObjective(reserved, Minimize, noop)); err == nil {
			t.Fatalf("reserved name %q registered", reserved)
		}
	}
	if err := RegisterObjective(NewObjective("ldp-epsilon", Minimize, noop)); err == nil {
		t.Fatal("duplicate name registered")
	}
	if err := RegisterObjective(NewObjective("ldp", Minimize, noop)); err == nil {
		t.Fatal("alias-shadowing name registered")
	}

	for alias, full := range map[string]string{"ldp": "ldp-epsilon", "mi": "mutual-information"} {
		o, ok := ObjectiveByName(alias)
		if !ok || o.Name() != full {
			t.Fatalf("alias %q resolved to %v, want %s", alias, o, full)
		}
	}
	if _, ok := ObjectiveByName("no-such-objective"); ok {
		t.Fatal("unknown name resolved")
	}

	names := ObjectiveNames()
	seen := map[string]bool{}
	for _, n := range names {
		seen[n] = true
	}
	for _, want := range []string{"ldp-epsilon", "mutual-information", "worst-mse"} {
		if !seen[want] {
			t.Fatalf("built-in %q missing from ObjectiveNames() = %v", want, names)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("ObjectiveNames not sorted: %v", names)
		}
	}
}

// TestCanonicalValue checks the orientation mapping and its involution.
func TestCanonicalValue(t *testing.T) {
	noop := func(*Workspace, *rr.Matrix, []float64, int) (float64, error) { return 0, nil }
	min := NewObjective("t-min", Minimize, noop)
	max := NewObjective("t-max", Maximize, noop)
	if got := CanonicalValue(min, 3.5); got != 3.5 {
		t.Fatalf("minimize canonical = %v, want 3.5", got)
	}
	if got := CanonicalValue(max, 3.5); got != -3.5 {
		t.Fatalf("maximize canonical = %v, want -3.5", got)
	}
	if got := CanonicalValue(max, CanonicalValue(max, 3.5)); got != 3.5 {
		t.Fatalf("canonical not an involution: %v", got)
	}
	if Minimize.String() != "minimize" || Maximize.String() != "maximize" {
		t.Fatalf("Direction strings: %v %v", Minimize, Maximize)
	}
}

// TestEvaluateObjectives covers the batch helper: value order, the length
// check, and error propagation with the objective's name attached.
func TestEvaluateObjectives(t *testing.T) {
	m := mustWarner(t, 3, 0.7)
	prior := uniformPrior(3)
	ws := NewWorkspace()
	if _, err := ws.Evaluate(m, prior, 1000); err != nil {
		t.Fatal(err)
	}
	objs := []Objective{mustObjective(t, "ldp-epsilon"), mustObjective(t, "mutual-information")}
	dst := make([]float64, 2)
	if err := ws.EvaluateObjectives(m, prior, 1000, objs, dst); err != nil {
		t.Fatal(err)
	}
	for i, o := range objs {
		want, err := o.Evaluate(ws, m, prior, 1000)
		if err != nil {
			t.Fatal(err)
		}
		if dst[i] != want {
			t.Fatalf("dst[%d] = %v, want %v", i, dst[i], want)
		}
	}
	if err := ws.EvaluateObjectives(m, prior, 1000, objs, dst[:1]); err == nil {
		t.Fatal("length mismatch accepted")
	}
	boom := NewObjective("t-boom", Minimize,
		func(*Workspace, *rr.Matrix, []float64, int) (float64, error) {
			return 0, fmt.Errorf("boom")
		})
	err := ws.EvaluateObjectives(m, prior, 1000, []Objective{boom}, dst[:1])
	if err == nil {
		t.Fatal("objective error swallowed")
	}
	if want := `objective "t-boom"`; !containsStr(err.Error(), want) {
		t.Fatalf("error %q does not name the objective", err)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// BenchmarkEvaluateExtraObjectives is the pinned cost of the three built-in
// extras on top of a fused Evaluate — the steady-state per-candidate price of
// a five-objective search. Tracked in BENCH_optimize.json.
func BenchmarkEvaluateExtraObjectives(b *testing.B) {
	for _, n := range []int{4, 8} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			m := randomStochastic(randx.New(uint64(n)), n, 0)
			prior := uniformPrior(n)
			ws := NewWorkspace()
			objs := make([]Objective, 0, 3)
			for _, name := range []string{"ldp-epsilon", "mutual-information", "worst-mse"} {
				o, ok := ObjectiveByName(name)
				if !ok {
					b.Fatalf("objective %q not registered", name)
				}
				objs = append(objs, o)
			}
			dst := make([]float64, len(objs))
			if _, err := ws.Evaluate(m, prior, 1000); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ws.Evaluate(m, prior, 1000); err != nil {
					b.Fatal(err)
				}
				if err := ws.EvaluateObjectives(m, prior, 1000, objs, dst); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
