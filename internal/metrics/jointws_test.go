package metrics

import (
	"errors"
	"math"
	"testing"
	"time"

	"optrr/internal/randx"
	"optrr/internal/rr"
)

// randomTuple returns random column-stochastic matrices of the given sizes:
// each column is a normalized positive draw with a boosted diagonal, so the
// tuples exercise asymmetric, non-Warner structure while staying
// well-conditioned (the diagonal dominance keeps the inverse tame, so the
// 1e-12 factored-vs-dense comparison measures algorithmic agreement rather
// than round-off amplification through an ill-conditioned inverse).
func randomTuple(t testing.TB, r *randx.Source, sizes []int) []*rr.Matrix {
	t.Helper()
	out := make([]*rr.Matrix, len(sizes))
	for d, n := range sizes {
		cols := make([][]float64, n)
		for i := range cols {
			col := make([]float64, n)
			var sum float64
			for j := range col {
				col[j] = r.Float64() + 0.05
				if j == i {
					col[j] += float64(n)
				}
				sum += col[j]
			}
			for j := range col {
				col[j] /= sum
			}
			cols[i] = col
		}
		m, err := rr.FromColumns(cols)
		if err != nil {
			t.Fatal(err)
		}
		out[d] = m
	}
	return out
}

func relClose(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// TestJointWorkspaceMatchesDenseOracle is the tentpole property test: for
// random tuples with d ∈ {2,3} attributes of 2..5 categories, the factored
// workspace must match the dense JointChannel-composed metrics within 1e-12.
func TestJointWorkspaceMatchesDenseOracle(t *testing.T) {
	r := randx.New(42)
	ws := NewJointWorkspace()
	const records = 10000
	for trial := 0; trial < 60; trial++ {
		d := 2 + r.Intn(2)
		sizes := make([]int, d)
		cells := 1
		for i := range sizes {
			sizes[i] = 2 + r.Intn(4)
			cells *= sizes[i]
		}
		ms := randomTuple(t, r, sizes)
		joint := randomJoint(cells, r)

		ch, err := JointChannel(ms)
		if err != nil {
			t.Fatal(err)
		}
		wantPriv, err := Privacy(ch, joint)
		if err != nil {
			t.Fatal(err)
		}
		wantUtil, err := Utility(ch, joint, records)
		if err != nil {
			t.Fatal(err)
		}
		wantMP, err := MaxPosterior(ch, joint)
		if err != nil {
			t.Fatal(err)
		}

		ev, err := ws.Evaluate(ms, joint, records)
		if err != nil {
			t.Fatalf("sizes %v: %v", sizes, err)
		}
		if !relClose(ev.Privacy, wantPriv, 1e-12) {
			t.Fatalf("sizes %v: factored privacy %v, dense %v", sizes, ev.Privacy, wantPriv)
		}
		if !relClose(ev.Utility, wantUtil, 1e-12) {
			t.Fatalf("sizes %v: factored utility %v, dense %v", sizes, ev.Utility, wantUtil)
		}
		if !relClose(ev.MaxPosterior, wantMP, 1e-12) {
			t.Fatalf("sizes %v: factored max posterior %v, dense %v", sizes, ev.MaxPosterior, wantMP)
		}

		// The standalone accessors agree with the bundle.
		priv, err := ws.Privacy(ms, joint)
		if err != nil {
			t.Fatal(err)
		}
		util, err := ws.Utility(ms, joint, records)
		if err != nil {
			t.Fatal(err)
		}
		mp, err := ws.MaxPosterior(ms, joint)
		if err != nil {
			t.Fatal(err)
		}
		if priv != ev.Privacy || util != ev.Utility || mp != ev.MaxPosterior {
			t.Fatalf("sizes %v: standalone (%v %v %v) != bundled (%v %v %v)",
				sizes, priv, util, mp, ev.Privacy, ev.Utility, ev.MaxPosterior)
		}
	}
}

// TestJointWorkspaceBeyondDenseCap pins the point of the factoring: a d=4
// product space larger than maxJointCells evaluates fine through the
// workspace while the dense oracle refuses it.
func TestJointWorkspaceBeyondDenseCap(t *testing.T) {
	r := randx.New(5)
	sizes := []int{12, 12, 12, 12} // 20736 cells > 1<<14
	cells := 12 * 12 * 12 * 12
	if cells <= maxJointCells {
		t.Fatalf("test sizes %v do not exceed the dense cap", sizes)
	}
	ms := randomTuple(t, r, sizes)
	joint := randomJoint(cells, r)
	if _, err := JointChannel(ms); !errors.Is(err, ErrShape) {
		t.Fatalf("dense oracle accepted %d cells: %v", cells, err)
	}
	ev, err := NewJointWorkspace().Evaluate(ms, joint, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if !(ev.Privacy > 0 && ev.Privacy < 1) {
		t.Fatalf("privacy = %v, want in (0,1)", ev.Privacy)
	}
	if ev.Utility <= 0 {
		t.Fatalf("utility = %v, want positive", ev.Utility)
	}
	if ev.MaxPosterior < BoundFloor(joint)-1e-12 || ev.MaxPosterior > 1+1e-12 {
		t.Fatalf("max posterior = %v outside [mode, 1]", ev.MaxPosterior)
	}
}

func TestJointWorkspaceValidates(t *testing.T) {
	ws := NewJointWorkspace()
	joint := uniformJoint(4)
	ms := []*rr.Matrix{rr.Identity(2), rr.Identity(2)}
	if _, err := ws.Evaluate(nil, joint, 100); !errors.Is(err, ErrShape) {
		t.Fatalf("no attributes: err = %v, want ErrShape", err)
	}
	if _, err := ws.Evaluate([]*rr.Matrix{rr.Identity(2), nil}, joint, 100); !errors.Is(err, ErrShape) {
		t.Fatalf("nil matrix: err = %v, want ErrShape", err)
	}
	if _, err := ws.Evaluate(ms, uniformJoint(5), 100); !errors.Is(err, ErrShape) {
		t.Fatalf("wrong joint length: err = %v, want ErrShape", err)
	}
	if _, err := ws.Evaluate(ms, []float64{0.5, 0.5, 0.5, 0.5}, 100); !errors.Is(err, ErrBadPrior) {
		t.Fatalf("non-normalized joint: err = %v, want ErrBadPrior", err)
	}
	if _, err := ws.Evaluate(ms, []float64{-0.5, 0.5, 0.5, 0.5}, 100); !errors.Is(err, ErrBadPrior) {
		t.Fatalf("negative joint: err = %v, want ErrBadPrior", err)
	}
	if _, err := ws.Evaluate(ms, joint, 0); !errors.Is(err, ErrBadRecords) {
		t.Fatalf("zero records: err = %v, want ErrBadRecords", err)
	}
}

func TestJointWorkspaceSingularTuple(t *testing.T) {
	// TotallyRandom is singular: utility must fail with rr.ErrSingular (as
	// the dense path did), while privacy — which needs no inverse — works.
	ms := []*rr.Matrix{rr.TotallyRandom(2), rr.TotallyRandom(3)}
	joint := uniformJoint(6)
	ws := NewJointWorkspace()
	if _, err := ws.Evaluate(ms, joint, 100); !errors.Is(err, rr.ErrSingular) {
		t.Fatalf("Evaluate: err = %v, want rr.ErrSingular", err)
	}
	if _, err := ws.Utility(ms, joint, 100); !errors.Is(err, rr.ErrSingular) {
		t.Fatalf("Utility: err = %v, want rr.ErrSingular", err)
	}
	priv, err := ws.Privacy(ms, joint)
	if err != nil {
		t.Fatal(err)
	}
	// Perfect privacy: the totally-random tuple reveals nothing beyond the
	// prior, so accuracy equals the joint mode.
	if want := 1 - BoundFloor(joint); math.Abs(priv-want) > 1e-12 {
		t.Fatalf("privacy = %v, want %v", priv, want)
	}
}

// TestJointWorkspaceReuseAcrossShapes exercises the lazy resize: the same
// workspace must serve tuples of different attribute counts and sizes.
func TestJointWorkspaceReuseAcrossShapes(t *testing.T) {
	r := randx.New(9)
	ws := NewJointWorkspace()
	for _, sizes := range [][]int{{3, 4}, {2, 2, 2}, {3, 4}, {5}} {
		cells := 1
		for _, n := range sizes {
			cells *= n
		}
		ms := randomTuple(t, r, sizes)
		joint := randomJoint(cells, r)
		ev, err := ws.Evaluate(ms, joint, 1000)
		if err != nil {
			t.Fatalf("sizes %v: %v", sizes, err)
		}
		want, err := JointEvaluate(ms, joint, 1000)
		if err != nil {
			t.Fatal(err)
		}
		if ev.Privacy != want.Privacy || ev.Utility != want.Utility || ev.MaxPosterior != want.MaxPosterior {
			t.Fatalf("sizes %v: reused workspace %+v != fresh %+v", sizes, ev, want)
		}
	}
}

func TestJointWorkspaceMeetsBound(t *testing.T) {
	ms := []*rr.Matrix{mustWarner(t, 2, 0.6), mustWarner(t, 3, 0.6)}
	joint := uniformJoint(6)
	ws := NewJointWorkspace()
	mp, err := ws.MaxPosterior(ms, joint)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := ws.MeetsBound(ms, joint, mp)
	if err != nil || !ok {
		t.Fatalf("MeetsBound at mp: %v %v, want true", ok, err)
	}
	ok, err = ws.MeetsBound(ms, joint, mp-0.01)
	if err != nil || ok {
		t.Fatalf("MeetsBound below mp: %v %v, want false", ok, err)
	}
}

// TestJointEvaluateSpeedupFloor enforces the acceptance criterion: at d=3,
// n=5 the factored evaluation must be at least 5× faster than the dense
// channel path. The real ratio is well over an order of magnitude (the dense
// side re-materializes a 125×125 channel and LU-inverts it per evaluation),
// so the 5× floor has a wide safety margin even on loaded CI machines.
func TestJointEvaluateSpeedupFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short mode")
	}
	ms := make([]*rr.Matrix, 3)
	for i := range ms {
		ms[i] = mustWarner(t, 5, 0.75)
	}
	joint := uniformJoint(125)
	const iters = 200
	ws := NewJointWorkspace()
	dws := NewWorkspace()
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := ws.Evaluate(ms, joint, 10000); err != nil {
			t.Fatal(err)
		}
	}
	factoredNs := time.Since(start)
	start = time.Now()
	for i := 0; i < iters; i++ {
		ch, err := JointChannel(ms)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dws.Evaluate(ch, joint, 10000); err != nil {
			t.Fatal(err)
		}
	}
	denseNs := time.Since(start)
	if factoredNs*5 > denseNs {
		t.Fatalf("factored %v vs dense %v for %d evaluations: speedup %.1fx < 5x",
			factoredNs, denseNs, iters, float64(denseNs)/float64(factoredNs))
	}
	t.Logf("factored vs dense at d=3 n=5: %.1fx", float64(denseNs)/float64(factoredNs))
}

// BenchmarkJointEvaluate is the pinned factored-vs-dense comparison at the
// acceptance size d=3, n=5 (125 cells): the dense side materializes the
// Kronecker channel and runs the 1-D fused evaluator over it (one 125×125 LU
// per evaluation); the factored side reuses a JointWorkspace. The issue
// requires ≥5× here; see TestJointEvaluateSpeedupFloor for the enforced
// check.
func BenchmarkJointEvaluate(b *testing.B) {
	ms := make([]*rr.Matrix, 3)
	for i := range ms {
		m, err := rr.Warner(5, 0.75)
		if err != nil {
			b.Fatal(err)
		}
		ms[i] = m
	}
	joint := uniformJoint(125)
	b.Run("factored", func(b *testing.B) {
		ws := NewJointWorkspace()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ws.Evaluate(ms, joint, 10000); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dense", func(b *testing.B) {
		ws := NewWorkspace()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ch, err := JointChannel(ms)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := ws.Evaluate(ch, joint, 10000); err != nil {
				b.Fatal(err)
			}
		}
	})
}
