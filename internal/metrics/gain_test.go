package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"optrr/internal/randx"
	"optrr/internal/rr"
)

func TestZeroOneGain(t *testing.T) {
	if ZeroOneGain(3, 3) != 1 || ZeroOneGain(3, 4) != 0 {
		t.Fatal("ZeroOneGain wrong")
	}
}

func TestOrdinalGain(t *testing.T) {
	g := OrdinalGain(5)
	if g(2, 2) != 1 {
		t.Fatal("exact hit should score 1")
	}
	if math.Abs(g(0, 4)-0) > 1e-12 || math.Abs(g(4, 0)-0) > 1e-12 {
		t.Fatal("maximal miss should score 0")
	}
	if math.Abs(g(1, 2)-0.75) > 1e-12 {
		t.Fatalf("near miss = %v, want 0.75", g(1, 2))
	}
}

func TestBayesScoreMatchesAccuracyForZeroOne(t *testing.T) {
	// With the 0/1 gain, BayesScore is exactly the accuracy A behind
	// Equation (8).
	m := mustWarner(t, 5, 0.7)
	prior := []float64{0.3, 0.25, 0.2, 0.15, 0.1}
	score, err := BayesScore(m, prior, ZeroOneGain)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Accuracy(m, prior)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(score-a) > 1e-12 {
		t.Fatalf("BayesScore %v != Accuracy %v", score, a)
	}
}

func TestBlindScoreIsPriorMode(t *testing.T) {
	prior := []float64{0.2, 0.5, 0.3}
	b, err := BlindScore(prior, ZeroOneGain)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b-0.5) > 1e-12 {
		t.Fatalf("blind 0/1 score = %v, want the prior mode 0.5", b)
	}
}

func TestPrivacyWithGainEndpoints(t *testing.T) {
	prior := []float64{0.4, 0.35, 0.25}
	// Identity matrix: full disclosure, privacy 0.
	p, err := PrivacyWithGain(rr.Identity(3), prior, ZeroOneGain)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p) > 1e-9 {
		t.Fatalf("identity privacy = %v, want 0", p)
	}
	// Totally random matrix: nothing beyond the prior, privacy 1.
	p, err = PrivacyWithGain(rr.TotallyRandom(3), prior, ZeroOneGain)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-1) > 1e-9 {
		t.Fatalf("totally-random privacy = %v, want 1", p)
	}
}

func TestPrivacyWithGainMonotoneInNoise(t *testing.T) {
	prior := []float64{0.4, 0.3, 0.2, 0.1}
	for _, gain := range []Gain{ZeroOneGain, OrdinalGain(4)} {
		last := -1.0
		for _, p := range []float64{1.0, 0.8, 0.6, 0.4, 0.25} {
			m := mustWarner(t, 4, p)
			priv, err := PrivacyWithGain(m, prior, gain)
			if err != nil {
				t.Fatal(err)
			}
			if priv < last-1e-9 {
				t.Fatalf("privacy decreased with more noise at p=%v: %v then %v", p, last, priv)
			}
			last = priv
		}
	}
}

func TestOrdinalGainLeaksMoreThanZeroOne(t *testing.T) {
	// An ordinal adversary extracts value from near misses that the 0/1
	// adversary ignores, so ordinal privacy can never exceed... actually the
	// two are normalized separately; the checkable property is both lie in
	// [0, 1] and respond to the same ordering of matrices.
	prior := []float64{0.1, 0.2, 0.4, 0.2, 0.1}
	strong := mustWarner(t, 5, 0.9)
	weak := mustWarner(t, 5, 0.4)
	for _, gain := range []Gain{ZeroOneGain, OrdinalGain(5)} {
		ps, err := PrivacyWithGain(strong, prior, gain)
		if err != nil {
			t.Fatal(err)
		}
		pw, err := PrivacyWithGain(weak, prior, gain)
		if err != nil {
			t.Fatal(err)
		}
		if !(ps < pw) {
			t.Fatalf("stronger disclosure should have lower privacy: %v vs %v", ps, pw)
		}
	}
}

func TestPropertyPrivacyWithGainInUnitInterval(t *testing.T) {
	f := func(seed uint64, nRaw uint8, warnerRaw uint8) bool {
		n := int(nRaw%6) + 2
		r := randx.New(seed)
		prior := make([]float64, n)
		var sum float64
		for i := range prior {
			prior[i] = r.Float64() + 0.01
			sum += prior[i]
		}
		for i := range prior {
			prior[i] /= sum
		}
		p := float64(warnerRaw) / 255
		m, err := rr.Warner(n, p)
		if err != nil {
			return false
		}
		for _, gain := range []Gain{ZeroOneGain, OrdinalGain(n)} {
			priv, err := PrivacyWithGain(m, prior, gain)
			if err != nil {
				return false
			}
			if priv < -1e-9 || priv > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPrivacyWithGainDegeneratePrior(t *testing.T) {
	// With a point-mass prior the blind guess is already perfect; privacy
	// must report 1 (nothing left to leak), not divide by zero.
	prior := []float64{1, 0, 0}
	p, err := PrivacyWithGain(rr.Identity(3), prior, ZeroOneGain)
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 {
		t.Fatalf("degenerate prior privacy = %v, want 1", p)
	}
}

func TestBreachesPrivacy(t *testing.T) {
	// Identity matrix breaches everything: a rare value's posterior becomes
	// 1 after observation.
	prior := []float64{0.9, 0.1}
	x, y, err := BreachesPrivacy(rr.Identity(2), prior, 0.2, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if x != 1 || y != 1 {
		t.Fatalf("breach at (%d, %d), want (1, 1)", x, y)
	}
	// Totally random matrix never breaches: posterior equals prior.
	x, _, err = BreachesPrivacy(rr.TotallyRandom(2), prior, 0.2, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if x != -1 {
		t.Fatalf("totally-random matrix reported a breach at x=%d", x)
	}
}

func TestBreachesPrivacyValidation(t *testing.T) {
	prior := []float64{0.5, 0.5}
	for _, c := range []struct{ r1, r2 float64 }{{0, 0.5}, {0.5, 0.5}, {0.6, 0.5}, {0.5, 1.1}} {
		if _, _, err := BreachesPrivacy(rr.Identity(2), prior, c.r1, c.r2); err == nil {
			t.Errorf("rho pair (%v, %v) accepted", c.r1, c.r2)
		}
	}
}

// TestBoundImpliesNoBreach links the paper's δ bound to the breach
// framework: if max P(X|Y) ≤ δ then no (ρ1, δ) breach exists for any ρ1.
func TestBoundImpliesNoBreach(t *testing.T) {
	prior := []float64{0.4, 0.3, 0.2, 0.1}
	m := mustWarner(t, 4, 0.6)
	mp, err := MaxPosterior(m, prior)
	if err != nil {
		t.Fatal(err)
	}
	x, _, err := BreachesPrivacy(m, prior, 0.35, mp)
	if err != nil {
		t.Fatal(err)
	}
	if x != -1 {
		t.Fatalf("breach above the max posterior bound at x=%d", x)
	}
}

func BenchmarkPrivacyWithGain(b *testing.B) {
	m, err := rr.Warner(10, 0.7)
	if err != nil {
		b.Fatal(err)
	}
	prior := uniformPrior(10)
	gain := OrdinalGain(10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PrivacyWithGain(m, prior, gain); err != nil {
			b.Fatal(err)
		}
	}
}
