package metrics

import (
	"math"

	"optrr/internal/rr"
)

// Local differential privacy. A randomized-response matrix M satisfies
// ε-local differential privacy when no output can discriminate between two
// possible inputs by more than a factor e^ε:
//
//	θ_{j,i} ≤ e^ε · θ_{j,i'}   for all outputs j and inputs i, i'.
//
// Unlike the paper's Bayesian privacy metric, ε-LDP is prior-free: it bounds
// the adversary's posterior shift for every prior at once. This file
// computes the tightest ε a matrix satisfies, letting users read an
// optimized matrix on the modern LDP scale and compare with mechanisms such
// as k-randomized-response.

// LocalDPEpsilon returns the smallest ε such that m satisfies ε-local
// differential privacy: max over outputs j and input pairs (i, i') of
// ln(θ_{j,i}/θ_{j,i'}). The identity matrix (and any matrix with a zero
// entry in a row that also has a positive entry) returns +Inf; the
// totally-random matrix returns 0.
func LocalDPEpsilon(m *rr.Matrix) float64 {
	n := m.N()
	var worst float64
	for j := 0; j < n; j++ {
		min, max := math.Inf(1), 0.0
		for i := 0; i < n; i++ {
			v := m.Theta(j, i)
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		if max == 0 {
			continue // unreachable output discriminates nothing
		}
		if min == 0 {
			return math.Inf(1)
		}
		if r := math.Log(max / min); r > worst {
			worst = r
		}
	}
	return worst
}

// WarnerEpsilon returns the ε-LDP level of the Warner matrix with diagonal
// p over n categories: ln(p·(n−1)/(1−p)) for p above uniform, and the
// symmetric value below it. Useful as a closed-form cross-check and for
// picking p from an ε budget.
func WarnerEpsilon(n int, p float64) float64 {
	if p <= 0 || p >= 1 {
		return math.Inf(1)
	}
	off := (1 - p) / float64(n-1)
	hi, lo := p, off
	if lo > hi {
		hi, lo = lo, hi
	}
	return math.Log(hi / lo)
}

// EpsilonToWarnerP inverts WarnerEpsilon on the usual branch (diagonal at
// least uniform): the Warner p whose matrix satisfies exactly ε-LDP is
// p = e^ε / (e^ε + n − 1) — the classic k-randomized-response mechanism.
func EpsilonToWarnerP(n int, epsilon float64) float64 {
	e := math.Exp(epsilon)
	return e / (e + float64(n-1))
}
