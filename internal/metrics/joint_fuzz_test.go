package metrics

import (
	"testing"

	"optrr/internal/rr"
)

// FuzzJointIndexRoundTrip pins the product-space index math of joint.go:
// ravel and unravel must be mutual inverses for every attribute shape, every
// digit must stay in range, and the flattening must be row-major with
// attribute 0 slowest (adjacent flat indices differ in the last attribute
// first) — the convention mining.MultiRR.Index and the Kronecker factor
// ordering both rely on.
func FuzzJointIndexRoundTrip(f *testing.F) {
	f.Add(uint16(0), byte(3), byte(2), byte(4))
	f.Add(uint16(23), byte(2), byte(2), byte(0))
	f.Add(uint16(999), byte(5), byte(5), byte(5))
	f.Add(uint16(1), byte(9), byte(0), byte(0))
	f.Fuzz(func(t *testing.T, rawIdx uint16, s1, s2, s3 byte) {
		// 1–3 attributes of 2–9 categories each; a zero size drops the
		// attribute (but attribute 0 always exists).
		sizes := []int{2 + int(s1)%8}
		if s2 != 0 {
			sizes = append(sizes, 2+int(s2)%8)
		}
		if s3 != 0 {
			sizes = append(sizes, 2+int(s3)%8)
		}
		ms := make([]*rr.Matrix, len(sizes))
		total := 1
		for d, n := range sizes {
			ms[d] = rr.Identity(n)
			total *= n
		}
		idx := int(rawIdx) % total

		rec := unravel(idx, ms)
		if len(rec) != len(ms) {
			t.Fatalf("unravel(%d) has %d digits, want %d", idx, len(rec), len(ms))
		}
		for d, v := range rec {
			if v < 0 || v >= sizes[d] {
				t.Fatalf("unravel(%d)[%d] = %d out of range [0,%d)", idx, d, v, sizes[d])
			}
		}
		if back := ravel(rec, ms); back != idx {
			t.Fatalf("ravel(unravel(%d)) = %d", idx, back)
		}

		// Row-major adjacency: incrementing the last digit (when it has
		// room) increments the flat index by exactly one.
		last := len(sizes) - 1
		if rec[last]+1 < sizes[last] {
			rec[last]++
			if got := ravel(rec, ms); got != idx+1 {
				t.Fatalf("last-digit increment of %d gave %d, want %d", idx, got, idx+1)
			}
			rec[last]--
		}

		// Round trip in the other direction from the digits.
		if again := unravel(ravel(rec, ms), ms); len(again) == len(rec) {
			for d := range rec {
				if again[d] != rec[d] {
					t.Fatalf("unravel(ravel(%v)) = %v", rec, again)
				}
			}
		}
	})
}
