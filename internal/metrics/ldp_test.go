package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"optrr/internal/randx"
	"optrr/internal/rr"
)

func TestLocalDPEpsilonEndpoints(t *testing.T) {
	if got := LocalDPEpsilon(rr.Identity(4)); !math.IsInf(got, 1) {
		t.Fatalf("identity epsilon = %v, want +Inf", got)
	}
	if got := LocalDPEpsilon(rr.TotallyRandom(4)); got != 0 {
		t.Fatalf("totally-random epsilon = %v, want 0", got)
	}
}

func TestLocalDPEpsilonWarnerClosedForm(t *testing.T) {
	for _, n := range []int{2, 4, 10} {
		for _, p := range []float64{0.3, 0.5, 0.7, 0.9} {
			m, err := rr.Warner(n, p)
			if err != nil {
				t.Fatal(err)
			}
			got := LocalDPEpsilon(m)
			want := WarnerEpsilon(n, p)
			if math.Abs(got-want) > 1e-12 {
				t.Errorf("n=%d p=%v: epsilon %v, closed form %v", n, p, got, want)
			}
		}
	}
}

func TestEpsilonToWarnerPRoundTrip(t *testing.T) {
	f := func(nRaw uint8, eRaw uint16) bool {
		n := int(nRaw%10) + 2
		eps := 0.1 + 5*float64(eRaw)/math.MaxUint16
		p := EpsilonToWarnerP(n, eps)
		if p <= 1/float64(n) || p >= 1 {
			return false
		}
		return math.Abs(WarnerEpsilon(n, p)-eps) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestLDPBoundsPosteriorShift verifies the defining property empirically:
// for any prior, the posterior odds never shift by more than e^ε.
func TestLDPBoundsPosteriorShift(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%5) + 2
		r := randx.New(seed)
		cols := make([][]float64, n)
		for i := range cols {
			col := make([]float64, n)
			var sum float64
			for j := range col {
				col[j] = r.Float64() + 0.05
				sum += col[j]
			}
			for j := range col {
				col[j] /= sum
			}
			cols[i] = col
		}
		m, err := rr.FromColumns(cols)
		if err != nil {
			return false
		}
		eps := LocalDPEpsilon(m)
		prior := make([]float64, n)
		var sum float64
		for i := range prior {
			prior[i] = r.Float64() + 0.01
			sum += prior[i]
		}
		for i := range prior {
			prior[i] /= sum
		}
		post, err := Posterior(m, prior)
		if err != nil {
			return false
		}
		bound := math.Exp(eps)
		for j := 0; j < n; j++ {
			for x1 := 0; x1 < n; x1++ {
				for x2 := 0; x2 < n; x2++ {
					if prior[x2] == 0 || post[j][x2] == 0 {
						continue
					}
					// Posterior odds ratio vs prior odds ratio ≤ e^ε.
					shift := (post[j][x1] / post[j][x2]) / (prior[x1] / prior[x2])
					if shift > bound*(1+1e-9) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestLDPMonotoneAlongWarnerFamily: smaller ε (more noise) as p decreases
// toward uniform.
func TestLDPMonotoneAlongWarnerFamily(t *testing.T) {
	const n = 5
	last := math.Inf(1)
	for _, p := range []float64{0.95, 0.8, 0.6, 0.4, 1.0 / n} {
		m, err := rr.Warner(n, p)
		if err != nil {
			t.Fatal(err)
		}
		eps := LocalDPEpsilon(m)
		if eps > last+1e-12 {
			t.Fatalf("epsilon grew as p decreased at p=%v", p)
		}
		last = eps
	}
	if last > 1e-12 {
		t.Fatalf("uniform Warner epsilon = %v, want 0", last)
	}
}

func TestLocalDPEpsilonUnreachableOutput(t *testing.T) {
	// A matrix whose row 2 is all zeros: that output never occurs, so it
	// must not force epsilon to +Inf.
	cols := [][]float64{
		{0.5, 0.5, 0},
		{0.4, 0.6, 0},
		{0.6, 0.4, 0},
	}
	m, err := rr.FromColumns(cols)
	if err != nil {
		t.Fatal(err)
	}
	eps := LocalDPEpsilon(m)
	if math.IsInf(eps, 1) {
		t.Fatal("unreachable output inflated epsilon to +Inf")
	}
	want := math.Log(0.6 / 0.4)
	if math.Abs(eps-want) > 1e-12 {
		t.Fatalf("epsilon = %v, want %v", eps, want)
	}
}

func BenchmarkLocalDPEpsilon(b *testing.B) {
	m, err := rr.Warner(10, 0.7)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = LocalDPEpsilon(m)
	}
}
