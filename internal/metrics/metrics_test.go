package metrics

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"optrr/internal/randx"
	"optrr/internal/rr"
)

func mustWarner(t testing.TB, n int, p float64) *rr.Matrix {
	t.Helper()
	m, err := rr.Warner(n, p)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func uniformPrior(n int) []float64 {
	p := make([]float64, n)
	for i := range p {
		p[i] = 1 / float64(n)
	}
	return p
}

func TestValidatePriorErrors(t *testing.T) {
	m := rr.Identity(3)
	if _, err := Privacy(m, []float64{0.5, 0.5}); !errors.Is(err, ErrShape) {
		t.Fatalf("short prior: err = %v, want ErrShape", err)
	}
	if _, err := Privacy(m, []float64{0.5, 0.6, 0.2}); !errors.Is(err, ErrBadPrior) {
		t.Fatalf("non-normalized prior: err = %v, want ErrBadPrior", err)
	}
	if _, err := Privacy(m, []float64{-0.2, 0.6, 0.6}); !errors.Is(err, ErrBadPrior) {
		t.Fatalf("negative prior: err = %v, want ErrBadPrior", err)
	}
}

func TestPosteriorRowsAreDistributions(t *testing.T) {
	m := mustWarner(t, 4, 0.7)
	prior := []float64{0.4, 0.3, 0.2, 0.1}
	post, err := Posterior(m, prior)
	if err != nil {
		t.Fatal(err)
	}
	for j, row := range post {
		var sum float64
		for _, v := range row {
			if v < 0 {
				t.Fatalf("negative posterior in row %d: %v", j, row)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("posterior row %d sums to %v", j, sum)
		}
	}
}

func TestPosteriorBayesRule(t *testing.T) {
	// Hand-check one entry: P(X=0 | Y=1) = θ_{1,0}·P(0) / P*(1).
	m := mustWarner(t, 3, 0.6)
	prior := []float64{0.5, 0.3, 0.2}
	post, err := Posterior(m, prior)
	if err != nil {
		t.Fatal(err)
	}
	pStar, err := m.DisguisedDistribution(prior)
	if err != nil {
		t.Fatal(err)
	}
	want := m.Theta(1, 0) * prior[0] / pStar[1]
	if math.Abs(post[1][0]-want) > 1e-12 {
		t.Fatalf("posterior = %v, want %v", post[1][0], want)
	}
}

func TestPosteriorUnobservableRow(t *testing.T) {
	// A matrix that never outputs category 2: rows for it must be zero.
	cols := [][]float64{
		{0.5, 0.5, 0},
		{0.5, 0.5, 0},
		{0.5, 0.5, 0},
	}
	m, err := rr.FromColumns(cols)
	if err != nil {
		t.Fatal(err)
	}
	post, err := Posterior(m, uniformPrior(3))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range post[2] {
		if v != 0 {
			t.Fatalf("unobservable row has non-zero entry %d: %v", i, v)
		}
	}
}

func TestMAPEstimateIdentity(t *testing.T) {
	m := rr.Identity(4)
	est, err := MAPEstimate(m, []float64{0.4, 0.3, 0.2, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for j, e := range est {
		if e != j {
			t.Fatalf("identity MAP estimate = %v, want identity mapping", est)
		}
	}
}

func TestMAPEstimateSkewedPriorOverridesChannel(t *testing.T) {
	// With a weak channel and a very skewed prior, the MAP estimate is the
	// prior mode regardless of the observed value.
	m := mustWarner(t, 3, 0.4)
	est, err := MAPEstimate(m, []float64{0.9, 0.05, 0.05})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range est {
		if e != 0 {
			t.Fatalf("MAP estimate = %v, want all 0 under skewed prior", est)
		}
	}
}

func TestPrivacyIdentityIsZero(t *testing.T) {
	// The identity matrix discloses everything: A = 1, privacy = 0 (M1 of
	// the paper's Section III-C example).
	priv, err := Privacy(rr.Identity(5), uniformPrior(5))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(priv) > 1e-12 {
		t.Fatalf("identity privacy = %v, want 0", priv)
	}
}

func TestPrivacyTotallyRandomIsMax(t *testing.T) {
	// M2 of the paper: uniform output gives A = max prior... for the
	// uniform prior over n categories, A = 1/n, privacy = 1 - 1/n.
	n := 4
	priv, err := Privacy(rr.TotallyRandom(n), uniformPrior(n))
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - 1.0/float64(n)
	if math.Abs(priv-want) > 1e-12 {
		t.Fatalf("totally-random privacy = %v, want %v", priv, want)
	}
}

func TestPrivacyWarnerMonotoneInP(t *testing.T) {
	// Raising Warner's p (less disguise) can never improve privacy.
	prior := []float64{0.4, 0.3, 0.2, 0.1}
	last := math.Inf(1)
	for p := 0.25; p <= 1.0; p += 0.05 {
		priv, err := Privacy(mustWarner(t, 4, p), prior)
		if err != nil {
			t.Fatal(err)
		}
		if priv > last+1e-12 {
			t.Fatalf("privacy increased from %v to %v at p=%v", last, priv, p)
		}
		last = priv
	}
}

func TestAccuracyNeverBelowPriorMode(t *testing.T) {
	// The adversary can always guess the prior mode, so A ≥ max P(X).
	prior := []float64{0.55, 0.25, 0.15, 0.05}
	for p := 0.0; p <= 1.0; p += 0.1 {
		a, err := Accuracy(mustWarner(t, 4, p), prior)
		if err != nil {
			t.Fatal(err)
		}
		if a < 0.55-1e-12 {
			t.Fatalf("accuracy %v below prior mode at p=%v", a, p)
		}
	}
}

func TestMaxPosteriorIdentity(t *testing.T) {
	mp, err := MaxPosterior(rr.Identity(3), []float64{0.5, 0.3, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mp-1) > 1e-12 {
		t.Fatalf("identity max posterior = %v, want 1", mp)
	}
}

func TestMeetsBound(t *testing.T) {
	m := rr.TotallyRandom(4)
	prior := []float64{0.4, 0.3, 0.2, 0.1}
	// Totally random output: posterior equals prior; max posterior is 0.4.
	ok, err := MeetsBound(m, prior, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("bound 0.5 should hold for totally-random matrix")
	}
	ok, err = MeetsBound(m, prior, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("bound 0.3 cannot hold below the prior mode (Theorem 5)")
	}
}

func TestBoundFloor(t *testing.T) {
	if got := BoundFloor([]float64{0.2, 0.5, 0.3}); got != 0.5 {
		t.Fatalf("BoundFloor = %v, want 0.5", got)
	}
}

// TestTheorem5 property: for any stochastic matrix and prior, the max
// posterior is at least the prior mode.
func TestTheorem5MaxPosteriorAtLeastPriorMode(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%6) + 2
		r := randx.New(seed)
		cols := make([][]float64, n)
		for i := range cols {
			col := make([]float64, n)
			var sum float64
			for j := range col {
				col[j] = r.Float64() + 1e-3
				sum += col[j]
			}
			for j := range col {
				col[j] /= sum
			}
			cols[i] = col
		}
		m, err := rr.FromColumns(cols)
		if err != nil {
			return false
		}
		prior := make([]float64, n)
		var sum float64
		for i := range prior {
			prior[i] = r.Float64() + 1e-3
			sum += prior[i]
		}
		for i := range prior {
			prior[i] /= sum
		}
		mp, err := MaxPosterior(m, prior)
		if err != nil {
			return false
		}
		return mp >= BoundFloor(prior)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestUtilityIdentityIsZero(t *testing.T) {
	// No disguise, no estimation error: the MLE frequencies are exactly the
	// disguised frequencies... the sampling variance of the frequencies
	// themselves remains. For identity M, MSE(c_k) = P_k(1−P_k)/N.
	prior := []float64{0.5, 0.3, 0.2}
	const n = 1000
	mses, err := PerCategoryMSE(rr.Identity(3), prior, n)
	if err != nil {
		t.Fatal(err)
	}
	for k, p := range prior {
		want := p * (1 - p) / n
		if math.Abs(mses[k]-want) > 1e-12 {
			t.Fatalf("identity MSE[%d] = %v, want %v", k, mses[k], want)
		}
	}
}

func TestUtilityScalesInverselyWithN(t *testing.T) {
	m := mustWarner(t, 5, 0.7)
	prior := uniformPrior(5)
	u1, err := Utility(m, prior, 1000)
	if err != nil {
		t.Fatal(err)
	}
	u2, err := Utility(m, prior, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u1/u2-2) > 1e-9 {
		t.Fatalf("utility did not halve when N doubled: %v vs %v", u1, u2)
	}
}

func TestUtilityWorsensWithMoreNoise(t *testing.T) {
	prior := []float64{0.4, 0.3, 0.2, 0.1}
	last := 0.0
	for _, p := range []float64{1.0, 0.9, 0.8, 0.7, 0.6, 0.5} {
		u, err := Utility(mustWarner(t, 4, p), prior, 10000)
		if err != nil {
			t.Fatal(err)
		}
		if u < last-1e-15 {
			t.Fatalf("utility improved when noise increased: %v then %v at p=%v", last, u, p)
		}
		last = u
	}
}

func TestUtilitySingularMatrix(t *testing.T) {
	if _, err := Utility(rr.TotallyRandom(3), uniformPrior(3), 1000); !errors.Is(err, rr.ErrSingular) {
		t.Fatalf("err = %v, want rr.ErrSingular", err)
	}
}

func TestUtilityBadRecords(t *testing.T) {
	if _, err := Utility(rr.Identity(3), uniformPrior(3), 0); !errors.Is(err, ErrBadRecords) {
		t.Fatalf("err = %v, want ErrBadRecords", err)
	}
}

func TestEvaluateBundles(t *testing.T) {
	m := mustWarner(t, 4, 0.8)
	prior := []float64{0.4, 0.3, 0.2, 0.1}
	ev, err := Evaluate(m, prior, 10000)
	if err != nil {
		t.Fatal(err)
	}
	priv, _ := Privacy(m, prior)
	util, _ := Utility(m, prior, 10000)
	mp, _ := MaxPosterior(m, prior)
	if ev.Privacy != priv || ev.Utility != util || ev.MaxPosterior != mp {
		t.Fatalf("Evaluate = %+v, want (%v, %v, %v)", ev, priv, util, mp)
	}
}

// TestClosedFormUtilityMatchesMonteCarlo is the key validation of Theorem 6:
// the closed-form MSE must match the Monte-Carlo variance of the actual
// inversion estimator.
func TestClosedFormUtilityMatchesMonteCarlo(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo validation skipped in -short mode")
	}
	m := mustWarner(t, 5, 0.7)
	prior := []float64{0.3, 0.25, 0.2, 0.15, 0.1}
	const records = 2000
	closed, err := Utility(m, prior, records)
	if err != nil {
		t.Fatal(err)
	}
	emp, err := EmpiricalUtility(m, prior, records, 600, randx.New(17))
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(emp-closed) / closed; rel > 0.15 {
		t.Fatalf("empirical utility %v vs closed form %v (rel err %v)", emp, closed, rel)
	}
}

// TestClosedFormPrivacyMatchesSimulatedAdversary validates Equation 8
// against an actual simulated MAP adversary.
func TestClosedFormPrivacyMatchesSimulatedAdversary(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo validation skipped in -short mode")
	}
	m := mustWarner(t, 5, 0.6)
	prior := []float64{0.3, 0.25, 0.2, 0.15, 0.1}
	closed, err := Privacy(m, prior)
	if err != nil {
		t.Fatal(err)
	}
	emp, err := EmpiricalPrivacy(m, prior, 400000, randx.New(23))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(emp-closed) > 0.005 {
		t.Fatalf("empirical privacy %v vs closed form %v", emp, closed)
	}
}

func TestEmpiricalPrivacyValidation(t *testing.T) {
	m := rr.Identity(3)
	if _, err := EmpiricalPrivacy(m, uniformPrior(3), 0, randx.New(1)); !errors.Is(err, ErrBadRecords) {
		t.Fatalf("err = %v, want ErrBadRecords", err)
	}
}

func TestEmpiricalUtilityValidation(t *testing.T) {
	m := rr.Identity(3)
	if _, err := EmpiricalUtility(m, uniformPrior(3), 0, 1, randx.New(1)); !errors.Is(err, ErrBadRecords) {
		t.Fatalf("records=0: err = %v, want ErrBadRecords", err)
	}
	if _, err := EmpiricalUtility(m, uniformPrior(3), 10, 0, randx.New(1)); !errors.Is(err, ErrBadRecords) {
		t.Fatalf("trials=0: err = %v, want ErrBadRecords", err)
	}
}

func TestEmpiricalUtilityIterativeRuns(t *testing.T) {
	m := mustWarner(t, 4, 0.7)
	prior := []float64{0.4, 0.3, 0.2, 0.1}
	u, err := EmpiricalUtilityIterative(m, prior, 500, 5, randx.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if u < 0 || math.IsNaN(u) {
		t.Fatalf("iterative empirical utility = %v", u)
	}
}

// TestPrivacyUtilityConflict reproduces the paper's Section III-C
// observation: the identity matrix has the best utility and worst privacy;
// the totally-random matrix the reverse.
func TestPrivacyUtilityConflict(t *testing.T) {
	prior := []float64{0.4, 0.3, 0.2, 0.1}
	idPriv, err := Privacy(rr.Identity(4), prior)
	if err != nil {
		t.Fatal(err)
	}
	trPriv, err := Privacy(rr.TotallyRandom(4), prior)
	if err != nil {
		t.Fatal(err)
	}
	if !(idPriv < trPriv) {
		t.Fatalf("identity privacy %v should be below totally-random %v", idPriv, trPriv)
	}
	idUtil, err := Utility(rr.Identity(4), prior, 10000)
	if err != nil {
		t.Fatal(err)
	}
	warnUtil, err := Utility(mustWarner(t, 4, 0.5), prior, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if !(idUtil < warnUtil) {
		t.Fatalf("identity utility %v should beat noisy Warner %v", idUtil, warnUtil)
	}
}

func TestPropertyPrivacyInUnitRange(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%6) + 2
		r := randx.New(seed)
		cols := make([][]float64, n)
		for i := range cols {
			col := make([]float64, n)
			var sum float64
			for j := range col {
				col[j] = r.Float64()
				sum += col[j]
			}
			if sum == 0 {
				col[0] = 1
				sum = 1
			}
			for j := range col {
				col[j] /= sum
			}
			cols[i] = col
		}
		m, err := rr.FromColumns(cols)
		if err != nil {
			return false
		}
		prior := make([]float64, n)
		var sum float64
		for i := range prior {
			prior[i] = r.Float64() + 1e-6
			sum += prior[i]
		}
		for i := range prior {
			prior[i] /= sum
		}
		priv, err := Privacy(m, prior)
		if err != nil {
			return false
		}
		// A ∈ [max prior, 1] so privacy ∈ [0, 1 - max prior].
		return priv >= -1e-9 && priv <= 1-BoundFloor(prior)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPrivacy10(b *testing.B) {
	m, err := rr.Warner(10, 0.7)
	if err != nil {
		b.Fatal(err)
	}
	prior := uniformPrior(10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Privacy(m, prior); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUtilityClosedForm(b *testing.B) {
	m, err := rr.Warner(10, 0.7)
	if err != nil {
		b.Fatal(err)
	}
	prior := uniformPrior(10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Utility(m, prior, 10000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUtilityIterative quantifies the cost gap that justifies the
// paper's choice of the closed-form inversion metric inside the search loop
// (Section III-A, "being able to compute error fast at each generation is
// essential").
func BenchmarkUtilityIterative(b *testing.B) {
	m, err := rr.Warner(10, 0.7)
	if err != nil {
		b.Fatal(err)
	}
	prior := uniformPrior(10)
	r := randx.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EmpiricalUtilityIterative(m, prior, 1000, 1, r); err != nil {
			b.Fatal(err)
		}
	}
}
