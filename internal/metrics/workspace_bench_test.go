package metrics

import (
	"fmt"
	"testing"

	"optrr/internal/randx"
)

// BenchmarkEvaluate compares the fused Workspace evaluator against the
// composed Privacy/Utility/MaxPosterior reference across category counts.
// The fused/n=10 case is the optimizer's hot path (one call per genome per
// generation); steady-state allocs/op must be 0.
func BenchmarkEvaluate(b *testing.B) {
	for _, n := range []int{4, 8, 16} {
		r := randx.New(uint64(n))
		m := randomStochastic(r, n, 0)
		prior := randomPrior(r, n)

		b.Run(fmt.Sprintf("composed/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := EvaluateComposed(m, prior, 10000); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("fused/n=%d", n), func(b *testing.B) {
			ws := NewWorkspace()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ws.Evaluate(m, prior, 10000); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMaxPosterior isolates the bound check used by BoundReject mode.
func BenchmarkMaxPosterior(b *testing.B) {
	for _, n := range []int{4, 8, 16} {
		r := randx.New(uint64(n))
		m := randomStochastic(r, n, 0)
		prior := randomPrior(r, n)

		b.Run(fmt.Sprintf("composed/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := MaxPosterior(m, prior); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("fused/n=%d", n), func(b *testing.B) {
			ws := NewWorkspace()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ws.MaxPosterior(m, prior); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
