package emoo

import (
	"fmt"
	"math"
	"sort"

	"optrr/internal/pareto"
)

// NSGA-II (Deb et al.) as an alternative engine. The paper chooses SPEA2
// citing a comparison study (Section V); implementing NSGA-II lets the
// repository validate that choice empirically (the abl-nsga2 experiment).
// The interface mirrors the SPEA2 functions: a Fitness whose Value orders
// individuals (lower is better) for the shared BinaryTournament, and a
// selection routine returning archive indices.

// NondominatedSort returns the Pareto rank of every point: rank 0 for the
// non-dominated front, rank 1 for the front after removing rank 0, and so
// on. This is the O(M·N²) fast non-dominated sort.
func NondominatedSort(pts []pareto.Point) []int {
	n := len(pts)
	rank := make([]int, n)
	dominatedBy := make([]int, n) // how many points dominate i
	dominates := make([][]int, n) // which points i dominates
	var current []int
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if pts[i].Dominates(pts[j]) {
				dominates[i] = append(dominates[i], j)
			} else if pts[j].Dominates(pts[i]) {
				dominatedBy[i]++
			}
		}
		if dominatedBy[i] == 0 {
			rank[i] = 0
			current = append(current, i)
		}
	}
	r := 0
	for len(current) > 0 {
		var next []int
		for _, i := range current {
			for _, j := range dominates[i] {
				dominatedBy[j]--
				if dominatedBy[j] == 0 {
					rank[j] = r + 1
					next = append(next, j)
				}
			}
		}
		current = next
		r++
	}
	return rank
}

// CrowdingDistance returns the NSGA-II crowding distance of each point
// within its own rank: boundary points of a rank get +Inf, interior points
// the sum of normalized neighbour gaps per objective.
func CrowdingDistance(pts []pareto.Point, rank []int) []float64 {
	n := len(pts)
	dist := make([]float64, n)
	byRank := map[int][]int{}
	for i, r := range rank {
		byRank[r] = append(byRank[r], i)
	}
	for _, members := range byRank {
		if len(members) <= 2 {
			for _, i := range members {
				dist[i] = math.Inf(1)
			}
			continue
		}
		for obj := 0; obj < pointDim(pts); obj++ {
			value := func(i int) float64 { return pts[i].At(obj) }
			idx := append([]int(nil), members...)
			sort.Slice(idx, func(a, b int) bool { return value(idx[a]) < value(idx[b]) })
			lo, hi := value(idx[0]), value(idx[len(idx)-1])
			span := hi - lo
			dist[idx[0]] = math.Inf(1)
			dist[idx[len(idx)-1]] = math.Inf(1)
			if span == 0 {
				continue
			}
			for k := 1; k < len(idx)-1; k++ {
				dist[idx[k]] += (value(idx[k+1]) - value(idx[k-1])) / span
			}
		}
	}
	return dist
}

// NSGA2Fitness encodes (rank, crowding) as a scalar compatible with
// BinaryTournament: lower rank always wins; within a rank, larger crowding
// (sparser region) wins. The crowding term lives in (0, 0.5], mirroring the
// SPEA2 density term, so it can never override a rank difference.
func NSGA2Fitness(pts []pareto.Point) Fitness {
	rank := NondominatedSort(pts)
	crowd := CrowdingDistance(pts, rank)
	value := make([]float64, len(pts))
	for i := range pts {
		value[i] = float64(rank[i]) + 1/(2+crowd[i])
	}
	return Fitness{Value: value}
}

// NSGA2Select returns the indices of the capacity survivors: whole ranks are
// taken while they fit; the first rank that overflows is truncated by
// descending crowding distance.
func NSGA2Select(pts []pareto.Point, capacity int) ([]int, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("emoo: archive capacity must be positive, got %d", capacity)
	}
	if len(pts) <= capacity {
		out := make([]int, len(pts))
		for i := range out {
			out[i] = i
		}
		return out, nil
	}
	rank := NondominatedSort(pts)
	crowd := CrowdingDistance(pts, rank)
	idx := make([]int, len(pts))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		if rank[ia] != rank[ib] {
			return rank[ia] < rank[ib]
		}
		return crowd[ia] > crowd[ib]
	})
	return idx[:capacity], nil
}
