package emoo

import (
	"fmt"
	"testing"

	"optrr/internal/pareto"
	"optrr/internal/randx"
)

// kdimCloud draws a point cloud with the given number of objectives on
// realistic, wildly different scales: privacy ≈ 0.5, utility ≈ 1e-4, and
// every extra axis on its own scale — the configuration the per-objective
// normalization exists for.
func kdimCloud(n, dim int, r *randx.Source) []pareto.Point {
	pts := make([]pareto.Point, n)
	extras := make([]float64, dim-2)
	for i := range pts {
		for t := range extras {
			scale := float64(uint64(1) << (4 * uint(t)))
			extras[t] = scale * r.Float64()
		}
		pts[i] = pareto.NewPoint(0.3+0.35*r.Float64(), 1e-4*(1+10*r.Float64()), extras...)
	}
	return pts
}

// fitnessEqual asserts two Fitness values are bit-for-bit identical.
func fitnessEqual(t *testing.T, label string, a, b Fitness) {
	t.Helper()
	for i := range a.Value {
		if a.Strength[i] != b.Strength[i] || a.Raw[i] != b.Raw[i] ||
			a.Density[i] != b.Density[i] || a.Value[i] != b.Value[i] {
			t.Fatalf("%s: fitness differs at %d: (%d %v %v %v) vs (%d %v %v %v)",
				label, i,
				a.Strength[i], a.Raw[i], a.Density[i], a.Value[i],
				b.Strength[i], b.Raw[i], b.Density[i], b.Value[i])
		}
	}
}

// cloneFitness copies a scratch-aliased Fitness so it survives the next call.
func cloneFitness(f Fitness) Fitness {
	return Fitness{
		Strength: append([]int(nil), f.Strength...),
		Raw:      append([]float64(nil), f.Raw...),
		Density:  append([]float64(nil), f.Density...),
		Value:    append([]float64(nil), f.Value...),
	}
}

// TestAssignFitnessKDimScratchReuse pins the scratch-reuse guarantee on
// k-dim points: a warm, previously-used Scratch must be bit-for-bit
// identical to a fresh one for every dimension, not just the canonical pair.
func TestAssignFitnessKDimScratchReuse(t *testing.T) {
	r := randx.New(31)
	warm := NewScratch()
	for _, dim := range []int{3, 4, 6} {
		for _, n := range []int{2, 17, 80, 130} {
			pts := kdimCloud(n, dim, r)
			for _, k := range []int{1, 3} {
				for _, normalize := range []bool{true, false} {
					cfg := Config{KNearest: k, Normalize: normalize}
					want := cloneFitness(NewScratch().AssignFitness(pts, cfg))
					got := warm.AssignFitness(pts, cfg)
					label := fmt.Sprintf("dim=%d n=%d k=%d norm=%v", dim, n, k, normalize)
					fitnessEqual(t, label, want, got)
				}
			}
		}
	}
}

// TestSelectEnvironmentKDimScratchReuse drives the truncation path (capacity
// below the non-dominated count) on k-dim points through a reused Scratch,
// including the scale-change rebuild when normalization is on.
func TestSelectEnvironmentKDimScratchReuse(t *testing.T) {
	r := randx.New(47)
	warm := NewScratch()
	for _, dim := range []int{3, 4} {
		for _, n := range []int{20, 60, 110} {
			pts := kdimCloud(n, dim, r)
			for _, normalize := range []bool{true, false} {
				cfg := Config{KNearest: 1, Normalize: normalize}
				sFit := NewScratch().AssignFitness(pts, cfg)
				want, err := SelectEnvironment(pts, sFit, n/3, cfg)
				if err != nil {
					t.Fatal(err)
				}
				want = append([]int(nil), want...)
				fit := warm.AssignFitness(pts, cfg)
				got, err := warm.SelectEnvironment(pts, fit, n/3, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("dim=%d n=%d: %d selected, want %d", dim, n, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("dim=%d n=%d norm=%v: selection differs at %d: %d vs %d",
							dim, n, normalize, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestScratchReusedAcrossDimensions drives one Scratch alternately with 2-D
// and k-dim clouds: the per-dimension state (scales, dim) must reset
// correctly between calls, and the 2-D results must equal a fresh scratch's.
func TestScratchReusedAcrossDimensions(t *testing.T) {
	r := randx.New(53)
	cfg := Config{KNearest: 1, Normalize: true}
	s := NewScratch()
	for round := 0; round < 4; round++ {
		dim := 2 + (round%3)*1 // 2, 3, 4, 2
		pts := kdimCloud(40, max(dim, 2), r)
		if dim == 2 {
			flat := make([]pareto.Point, len(pts))
			for i, p := range pts {
				flat[i] = pareto.Point{Privacy: p.Privacy, Utility: p.Utility}
			}
			pts = flat
		}
		got := cloneFitness(s.AssignFitness(pts, cfg))
		want := cloneFitness(NewScratch().AssignFitness(pts, cfg))
		fitnessEqual(t, fmt.Sprintf("round %d dim %d", round, dim), want, got)
	}
}

// TestAssignFitnessKDimZeroAlloc checks the steady-state allocation contract
// on both the 2-D fast path and the generic k-dim path.
func TestAssignFitnessKDimZeroAlloc(t *testing.T) {
	r := randx.New(61)
	for _, dim := range []int{2, 3} {
		pts := kdimCloud(64, dim, r)
		cfg := Config{KNearest: 1, Normalize: true}
		s := NewScratch()
		s.AssignFitness(pts, cfg) // warm the buffers
		allocs := testing.AllocsPerRun(10, func() {
			s.AssignFitness(pts, cfg)
		})
		if allocs != 0 {
			t.Errorf("dim=%d: %v allocs/op in steady state, want 0", dim, allocs)
		}
	}
}

// TestNSGA2KDim checks that the alternative engine survives k-dim points:
// rank-0 members must be exactly the non-dominated set and crowding spans
// every objective.
func TestNSGA2KDim(t *testing.T) {
	r := randx.New(71)
	pts := kdimCloud(50, 3, r)
	rank := NondominatedSort(pts)
	frontIdx := map[int]bool{}
	for _, i := range pareto.Front(pts) {
		frontIdx[i] = true
	}
	for i, rk := range rank {
		if (rk == 0) != frontIdx[i] {
			t.Fatalf("point %d: rank %d but front membership %v", i, rk, frontIdx[i])
		}
	}
	sel, err := NSGA2Select(pts, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 20 {
		t.Fatalf("selected %d, want 20", len(sel))
	}
}

// BenchmarkAssignFitnessK3 is the pinned k-dim companion of
// BenchmarkAssignFitness: the same cloud sizes with one extra objective, on
// the generic distance path. Tracked in BENCH_optimize.json.
func BenchmarkAssignFitnessK3(b *testing.B) {
	cfg := Config{KNearest: 1, Normalize: true}
	for _, n := range []int{80, 200} {
		pts := kdimCloud(n, 3, randx.New(uint64(n)))
		b.Run(fmt.Sprintf("scratch/n=%d", n), func(b *testing.B) {
			s := NewScratch()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.AssignFitness(pts, cfg)
			}
		})
	}
}
