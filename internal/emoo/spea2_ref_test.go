package emoo

import (
	"math"
	"sort"
	"testing"

	"optrr/internal/pareto"
	"optrr/internal/randx"
)

// This file pins the scratch-based SPEA2 operators to the historical
// allocation-heavy implementation, preserved below verbatim. The optimizer's
// reproducibility guarantee (same seed → same front, across releases) relies
// on the rewrite being bit-for-bit identical, so every comparison here is
// exact equality, not tolerance-based.

// refAssignFitness is the pre-scratch AssignFitness, verbatim.
func refAssignFitness(pts []pareto.Point, cfg Config) Fitness {
	n := len(pts)
	f := Fitness{
		Strength: make([]int, n),
		Raw:      make([]float64, n),
		Density:  make([]float64, n),
		Value:    make([]float64, n),
	}
	if n == 0 {
		return f
	}
	dom := make([][]bool, n)
	for i := range dom {
		dom[i] = make([]bool, n)
		for j := range dom[i] {
			if i != j && pts[i].Dominates(pts[j]) {
				dom[i][j] = true
				f.Strength[i]++
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if dom[j][i] {
				f.Raw[i] += float64(f.Strength[j])
			}
		}
	}
	d := refDistanceMatrix(pts, cfg)
	k := cfg.k()
	if k > n-1 {
		k = n - 1
	}
	buf := make([]float64, 0, n-1)
	for i := 0; i < n; i++ {
		buf = buf[:0]
		for j := 0; j < n; j++ {
			if j != i {
				buf = append(buf, d[i][j])
			}
		}
		var sigma float64
		if len(buf) > 0 {
			sort.Float64s(buf)
			sigma = buf[k-1]
		}
		f.Density[i] = 1 / (sigma + 2)
		f.Value[i] = f.Raw[i] + f.Density[i]
	}
	return f
}

// refDistanceMatrix is the pre-scratch distanceMatrix, verbatim.
func refDistanceMatrix(pts []pareto.Point, cfg Config) [][]float64 {
	n := len(pts)
	scaleP, scaleU := 1.0, 1.0
	if cfg.Normalize && n > 1 {
		minP, maxP := pts[0].Privacy, pts[0].Privacy
		minU, maxU := pts[0].Utility, pts[0].Utility
		for _, p := range pts[1:] {
			minP = math.Min(minP, p.Privacy)
			maxP = math.Max(maxP, p.Privacy)
			minU = math.Min(minU, p.Utility)
			maxU = math.Max(maxU, p.Utility)
		}
		if r := maxP - minP; r > 0 {
			scaleP = 1 / r
		}
		if r := maxU - minU; r > 0 {
			scaleU = 1 / r
		}
	}
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dp := (pts[i].Privacy - pts[j].Privacy) * scaleP
			du := (pts[i].Utility - pts[j].Utility) * scaleU
			dist := math.Sqrt(dp*dp + du*du)
			d[i][j] = dist
			d[j][i] = dist
		}
	}
	return d
}

// refSelectEnvironment is the pre-scratch SelectEnvironment, verbatim.
func refSelectEnvironment(pts []pareto.Point, fit Fitness, capacity int, cfg Config) ([]int, error) {
	if capacity <= 0 {
		return nil, nil
	}
	var next []int
	for i, v := range fit.Value {
		if v < 1 {
			next = append(next, i)
		}
	}
	switch {
	case len(next) == capacity:
		return next, nil
	case len(next) < capacity:
		var rest []int
		for i, v := range fit.Value {
			if v >= 1 {
				rest = append(rest, i)
			}
		}
		sort.Slice(rest, func(a, b int) bool { return fit.Value[rest[a]] < fit.Value[rest[b]] })
		need := capacity - len(next)
		if need > len(rest) {
			need = len(rest)
		}
		return append(next, rest[:need]...), nil
	default:
		return refTruncate(pts, next, capacity, cfg), nil
	}
}

// refTruncate is the pre-scratch truncate, verbatim: it rebuilds the
// distance matrix and re-sorts every distance vector per removal.
func refTruncate(pts []pareto.Point, selected []int, capacity int, cfg Config) []int {
	live := append([]int(nil), selected...)
	for len(live) > capacity {
		sub := make([]pareto.Point, len(live))
		for k, idx := range live {
			sub[k] = pts[idx]
		}
		d := refDistanceMatrix(sub, cfg)
		vecs := make([][]float64, len(live))
		for i := range live {
			v := make([]float64, 0, len(live)-1)
			for j := range live {
				if j != i {
					v = append(v, d[i][j])
				}
			}
			sort.Float64s(v)
			vecs[i] = v
		}
		victim := 0
		for i := 1; i < len(live); i++ {
			if lexLess(vecs[i], vecs[victim]) {
				victim = i
			}
		}
		live = append(live[:victim], live[victim+1:]...)
	}
	return live
}

// randomClouds yields point sets that exercise the operators: uniform
// clouds, tight clusters with exact duplicates (zero distances and
// lexicographic ties), and degenerate collinear sets (zero objective range).
func randomClouds(r *randx.Source, count int) [][]pareto.Point {
	var clouds [][]pareto.Point
	for c := 0; c < count; c++ {
		n := 2 + r.Intn(70)
		pts := make([]pareto.Point, n)
		switch c % 3 {
		case 0: // uniform, wildly different objective scales
			for i := range pts {
				pts[i] = pareto.Point{Privacy: r.Float64(), Utility: r.Float64() * 1e-4}
			}
		case 1: // clusters with duplicates
			for i := range pts {
				base := pareto.Point{Privacy: float64(r.Intn(4)) * 0.2, Utility: float64(r.Intn(4)) * 1e-5}
				if r.Float64() < 0.5 {
					base.Privacy += r.Float64() * 1e-9
				}
				pts[i] = base
			}
		default: // collinear: zero utility range
			for i := range pts {
				pts[i] = pareto.Point{Privacy: r.Float64(), Utility: 0.5}
			}
		}
		clouds = append(clouds, pts)
	}
	return clouds
}

// configsUnderTest varies the density estimate and normalization; every
// configuration is checked for exact equality against the reference
// arithmetic.
func configsUnderTest() []Config {
	return []Config{
		{KNearest: 1, Normalize: true},
		{KNearest: 1, Normalize: false},
		{KNearest: 2, Normalize: true},
		{KNearest: 3, Normalize: false},
		{KNearest: 7, Normalize: true},
	}
}

func TestScratchAssignFitnessMatchesReference(t *testing.T) {
	r := randx.New(11)
	s := NewScratch()
	for _, pts := range randomClouds(r, 60) {
		for _, cfg := range configsUnderTest() {
			want := refAssignFitness(pts, cfg)
			got := s.AssignFitness(pts, cfg)
			if len(got.Value) != len(want.Value) {
				t.Fatalf("fitness length %d, want %d", len(got.Value), len(want.Value))
			}
			for i := range want.Value {
				if got.Strength[i] != want.Strength[i] {
					t.Fatalf("cfg %+v: Strength[%d] = %d, want %d", cfg, i, got.Strength[i], want.Strength[i])
				}
				if got.Raw[i] != want.Raw[i] {
					t.Fatalf("cfg %+v: Raw[%d] = %v, want %v", cfg, i, got.Raw[i], want.Raw[i])
				}
				if got.Density[i] != want.Density[i] {
					t.Fatalf("cfg %+v: Density[%d] = %.17g, want %.17g", cfg, i, got.Density[i], want.Density[i])
				}
				if got.Value[i] != want.Value[i] {
					t.Fatalf("cfg %+v: Value[%d] = %.17g, want %.17g", cfg, i, got.Value[i], want.Value[i])
				}
			}
		}
	}
}

func TestScratchSelectEnvironmentMatchesReference(t *testing.T) {
	r := randx.New(13)
	s := NewScratch()
	for _, pts := range randomClouds(r, 60) {
		for _, cfg := range configsUnderTest() {
			fit := refAssignFitness(pts, cfg)
			for _, capacity := range []int{1, 2, len(pts) / 2, len(pts) - 1, len(pts), len(pts) + 5} {
				if capacity <= 0 {
					continue
				}
				want, err := refSelectEnvironment(pts, fit, capacity, cfg)
				if err != nil {
					t.Fatal(err)
				}
				got, err := s.SelectEnvironment(pts, fit, capacity, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("cfg %+v cap %d: selected %d, want %d", cfg, capacity, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("cfg %+v cap %d: selection[%d] = %d, want %d\ngot  %v\nwant %v",
							cfg, capacity, i, got[i], want[i], got, want)
					}
				}
			}
		}
	}
}

func TestKthSmallestMatchesSort(t *testing.T) {
	r := randx.New(17)
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(40)
		buf := make([]float64, n)
		for i := range buf {
			buf[i] = math.Floor(r.Float64()*8) / 8 // force duplicates
		}
		sorted := append([]float64(nil), buf...)
		sort.Float64s(sorted)
		for k := 1; k <= n; k++ {
			scratch := append([]float64(nil), buf...)
			if got := kthSmallest(scratch, k); got != sorted[k-1] {
				t.Fatalf("kthSmallest(%v, %d) = %v, want %v", buf, k, got, sorted[k-1])
			}
		}
	}
}
