package emoo

import (
	"math"
	"testing"
	"testing/quick"

	"optrr/internal/pareto"
	"optrr/internal/randx"
)

func TestNondominatedSortLayers(t *testing.T) {
	pts := []pareto.Point{
		{Privacy: 0.9, Utility: 0.1},  // dominates everything: rank 0
		{Privacy: 0.8, Utility: 0.2},  // rank 1
		{Privacy: 0.7, Utility: 0.3},  // rank 2
		{Privacy: 0.85, Utility: 0.9}, // dominated only by the rank-0 point: rank 1
	}
	rank := NondominatedSort(pts)
	if rank[0] != 0 {
		t.Fatalf("rank[0] = %d, want 0", rank[0])
	}
	if rank[1] != 1 {
		t.Fatalf("rank[1] = %d, want 1", rank[1])
	}
	if rank[2] != 2 {
		t.Fatalf("rank[2] = %d, want 2", rank[2])
	}
	if rank[3] != 1 {
		t.Fatalf("rank[3] = %d, want 1", rank[3])
	}
}

// TestNondominatedSortRankZeroMatchesFront: rank 0 must equal the Pareto
// front, and every point of rank r must be dominated by some point of rank
// r−1 and none of rank ≥ r.
func TestNondominatedSortConsistent(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%25) + 1
		r := randx.New(seed)
		pts := make([]pareto.Point, n)
		for i := range pts {
			pts[i] = pareto.Point{Privacy: r.Float64(), Utility: r.Float64()}
		}
		rank := NondominatedSort(pts)
		front := map[int]bool{}
		for _, i := range pareto.Front(pts) {
			front[i] = true
		}
		for i := range pts {
			if front[i] != (rank[i] == 0) {
				return false
			}
			if rank[i] > 0 {
				// Must be dominated by at least one point of the previous rank.
				found := false
				for j := range pts {
					if rank[j] == rank[i]-1 && pts[j].Dominates(pts[i]) {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
			// Never dominated by a same-or-higher rank point.
			for j := range pts {
				if rank[j] >= rank[i] && i != j && pts[j].Dominates(pts[i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestCrowdingDistanceBoundariesInfinite(t *testing.T) {
	pts := []pareto.Point{
		{Privacy: 0.1, Utility: 0.1},
		{Privacy: 0.5, Utility: 0.3},
		{Privacy: 0.9, Utility: 0.9},
	}
	rank := NondominatedSort(pts)
	d := CrowdingDistance(pts, rank)
	if !math.IsInf(d[0], 1) || !math.IsInf(d[2], 1) {
		t.Fatalf("boundary points not infinite: %v", d)
	}
	if math.IsInf(d[1], 1) || d[1] <= 0 {
		t.Fatalf("interior point distance = %v", d[1])
	}
}

func TestCrowdingDistancePrefersSparse(t *testing.T) {
	// Four mutually non-dominated points; the pair crowded together must
	// get smaller distances than the interior sparse point.
	pts := []pareto.Point{
		{Privacy: 0.10, Utility: 0.10},
		{Privacy: 0.50, Utility: 0.50},
		{Privacy: 0.52, Utility: 0.52}, // crowds its neighbour
		{Privacy: 0.53, Utility: 0.53},
		{Privacy: 0.90, Utility: 0.90},
	}
	rank := NondominatedSort(pts)
	d := CrowdingDistance(pts, rank)
	if !(d[2] < d[1]) {
		t.Fatalf("crowded interior point should have smaller distance: %v", d)
	}
}

func TestNSGA2FitnessOrdersRanksFirst(t *testing.T) {
	pts := []pareto.Point{
		{Privacy: 0.9, Utility: 0.1}, // rank 0
		{Privacy: 0.5, Utility: 0.5}, // rank 1
	}
	fit := NSGA2Fitness(pts)
	if !(fit.Value[0] < fit.Value[1]) {
		t.Fatalf("rank ordering broken: %v", fit.Value)
	}
	if fit.Value[0] >= 1 {
		t.Fatalf("rank-0 fitness %v should stay below 1", fit.Value[0])
	}
}

func TestNSGA2SelectCapacity(t *testing.T) {
	f := func(seed uint64, nRaw, capRaw uint8) bool {
		n := int(nRaw%30) + 1
		capacity := int(capRaw%12) + 1
		r := randx.New(seed)
		pts := make([]pareto.Point, n)
		for i := range pts {
			pts[i] = pareto.Point{Privacy: r.Float64(), Utility: r.Float64()}
		}
		sel, err := NSGA2Select(pts, capacity)
		if err != nil {
			return false
		}
		if n <= capacity {
			return len(sel) == n
		}
		if len(sel) != capacity {
			return false
		}
		seen := map[int]bool{}
		for _, i := range sel {
			if i < 0 || i >= n || seen[i] {
				return false
			}
			seen[i] = true
		}
		// Rank monotonicity: no selected point may have a higher rank than
		// an unselected one... the reverse: every unselected point must have
		// rank >= the max selected rank (truncation only splits one rank).
		rank := NondominatedSort(pts)
		maxSel := 0
		for _, i := range sel {
			if rank[i] > maxSel {
				maxSel = rank[i]
			}
		}
		for i := range pts {
			if !seen[i] && rank[i] < maxSel {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNSGA2SelectValidation(t *testing.T) {
	if _, err := NSGA2Select([]pareto.Point{{Privacy: 1, Utility: 1}}, 0); err == nil {
		t.Fatal("capacity 0 accepted")
	}
}

func BenchmarkNSGA2Select80(b *testing.B) {
	r := randx.New(1)
	pts := make([]pareto.Point, 80)
	for i := range pts {
		pts[i] = pareto.Point{Privacy: r.Float64(), Utility: r.Float64()}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NSGA2Select(pts, 40); err != nil {
			b.Fatal(err)
		}
	}
}
