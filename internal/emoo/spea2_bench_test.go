package emoo

import (
	"fmt"
	"testing"

	"optrr/internal/pareto"
	"optrr/internal/randx"
)

// benchPoints draws a cloud sized like the optimizer's union (population ∪
// archive) with realistic objective scales: privacy in [0.3, 0.65], utility
// a few orders of magnitude smaller.
func benchPoints(n int, seed uint64) []pareto.Point {
	r := randx.New(seed)
	pts := make([]pareto.Point, n)
	for i := range pts {
		pts[i] = pareto.Point{
			Privacy: 0.3 + 0.35*r.Float64(),
			Utility: 1e-4 * (1 + 10*r.Float64()),
		}
	}
	return pts
}

// BenchmarkAssignFitness compares the historical per-call-allocating
// implementation (reference, preserved in spea2_ref_test.go) against the
// reused Scratch. The scratch variant is the per-generation hot path.
func BenchmarkAssignFitness(b *testing.B) {
	cfg := Config{KNearest: 1, Normalize: true}
	for _, n := range []int{32, 80, 200} {
		pts := benchPoints(n, uint64(n))
		b.Run(fmt.Sprintf("reference/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				refAssignFitness(pts, cfg)
			}
		})
		b.Run(fmt.Sprintf("scratch/n=%d", n), func(b *testing.B) {
			s := NewScratch()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.AssignFitness(pts, cfg)
			}
		})
	}
}

// BenchmarkTruncate forces the worst-case environmental-selection path:
// every point non-dominated (mutually incomparable), capacity half the
// cloud, so half the points are removed one nearest-neighbour victim at a
// time. This is where the seed implementation spent ~45% of optimizer CPU.
func BenchmarkTruncate(b *testing.B) {
	cfg := Config{KNearest: 1, Normalize: true}
	for _, n := range []int{32, 80, 200} {
		// A strictly trade-off front: ascending privacy, ascending utility
		// (larger privacy is better, smaller utility is better, so no point
		// dominates another and truncation does all the work).
		pts := make([]pareto.Point, n)
		r := randx.New(uint64(n))
		for i := range pts {
			pts[i] = pareto.Point{
				Privacy: 0.3 + 0.35*(float64(i)+r.Float64())/float64(n),
				Utility: 1e-4 * (float64(i) + r.Float64()),
			}
		}
		capacity := n / 2
		b.Run(fmt.Sprintf("reference/n=%d", n), func(b *testing.B) {
			fit := refAssignFitness(pts, cfg)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := refSelectEnvironment(pts, fit, capacity, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("scratch/n=%d", n), func(b *testing.B) {
			s := NewScratch()
			fit := s.AssignFitness(pts, cfg)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := s.SelectEnvironment(pts, fit, capacity, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
