package emoo

import (
	"testing"

	"optrr/internal/pareto"
	"optrr/internal/randx"
)

// FuzzAssignFitnessKDim fuzzes the scratch-reuse equivalence of
// AssignFitness over point dimension, cloud size, density k and
// normalization: for any input, a reused warm Scratch must produce
// bit-for-bit the fitness of a fresh one. The cloud is derived
// deterministically from the fuzzed seed so failures reproduce from the
// corpus entry alone.
func FuzzAssignFitnessKDim(f *testing.F) {
	f.Add(uint64(1), uint8(40), uint8(3), uint8(1), true)
	f.Add(uint64(7), uint8(90), uint8(4), uint8(3), false)
	f.Add(uint64(13), uint8(2), uint8(6), uint8(1), true)
	f.Add(uint64(99), uint8(130), uint8(2), uint8(7), true)
	f.Fuzz(func(t *testing.T, seed uint64, n, dim, k uint8, normalize bool) {
		size := 1 + int(n)%160
		d := 2 + int(dim)%(pareto.MaxExtraObjectives+1)
		r := randx.New(seed)
		pts := kdimCloud(size, d, r)
		// A sprinkling of exact duplicates and shared coordinates keeps the
		// tie-handling paths (zero distances, equal strengths) in play.
		for i := range pts {
			if r.Float64() < 0.15 && i > 0 {
				pts[i] = pts[r.Intn(i)]
			}
		}
		cfg := Config{KNearest: 1 + int(k)%8, Normalize: normalize}
		want := cloneFitness(NewScratch().AssignFitness(pts, cfg))
		warm := NewScratch()
		warm.AssignFitness(kdimCloud(8, d, r), cfg) // dirty the buffers first
		got := warm.AssignFitness(pts, cfg)
		fitnessEqual(t, "fuzz", want, got)
	})
}
