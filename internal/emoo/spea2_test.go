package emoo

import (
	"math"
	"testing"
	"testing/quick"

	"optrr/internal/pareto"
	"optrr/internal/randx"
)

var testCfg = Config{KNearest: 1, Normalize: true}

func TestAssignFitnessEmpty(t *testing.T) {
	f := AssignFitness(nil, testCfg)
	if len(f.Value) != 0 {
		t.Fatalf("fitness for empty set has %d values", len(f.Value))
	}
}

func TestAssignFitnessSingle(t *testing.T) {
	f := AssignFitness([]pareto.Point{{Privacy: 0.5, Utility: 0.1}}, testCfg)
	if f.Strength[0] != 0 || f.Raw[0] != 0 {
		t.Fatalf("lone point: strength %d raw %v, want 0 0", f.Strength[0], f.Raw[0])
	}
	if f.Value[0] >= 1 {
		t.Fatalf("lone point fitness %v, want < 1 (non-dominated)", f.Value[0])
	}
}

func TestAssignFitnessStrengthAndRaw(t *testing.T) {
	// a dominates b and c; b dominates c.
	pts := []pareto.Point{
		{Privacy: 0.9, Utility: 0.1}, // a
		{Privacy: 0.5, Utility: 0.2}, // b
		{Privacy: 0.4, Utility: 0.3}, // c
	}
	f := AssignFitness(pts, testCfg)
	if f.Strength[0] != 2 || f.Strength[1] != 1 || f.Strength[2] != 0 {
		t.Fatalf("strengths = %v, want [2 1 0]", f.Strength)
	}
	if f.Raw[0] != 0 {
		t.Fatalf("raw[a] = %v, want 0", f.Raw[0])
	}
	if f.Raw[1] != 2 { // dominated by a (strength 2)
		t.Fatalf("raw[b] = %v, want 2", f.Raw[1])
	}
	if f.Raw[2] != 3 { // dominated by a (2) and b (1)
		t.Fatalf("raw[c] = %v, want 3", f.Raw[2])
	}
}

func TestAssignFitnessNonDominatedBelowOne(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%20) + 2
		r := randx.New(seed)
		pts := make([]pareto.Point, n)
		for i := range pts {
			pts[i] = pareto.Point{Privacy: r.Float64(), Utility: r.Float64()}
		}
		fit := AssignFitness(pts, testCfg)
		frontIdx := pareto.Front(pts)
		inFront := make(map[int]bool)
		for _, i := range frontIdx {
			inFront[i] = true
		}
		for i := range pts {
			if inFront[i] && fit.Value[i] >= 1 {
				return false // non-dominated must have fitness < 1
			}
			if !inFront[i] && fit.Value[i] < 1 {
				return false // dominated must have fitness >= 1
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDensityDiscriminatesCrowding(t *testing.T) {
	// Figure 2 of the paper: three non-dominated points (utility rises with
	// privacy, so none dominates another), and the one closest to its
	// nearest neighbour has the worse (higher) fitness.
	pts := []pareto.Point{
		{Privacy: 0.10, Utility: 0.10},
		{Privacy: 0.12, Utility: 0.11}, // crowds the first
		{Privacy: 0.90, Utility: 0.90},
	}
	f := AssignFitness(pts, testCfg)
	if !(f.Value[0] > f.Value[2] && f.Value[1] > f.Value[2]) {
		t.Fatalf("crowded points should have worse fitness: %v", f.Value)
	}
	for _, v := range f.Density {
		if v <= 0 || v > 0.5 {
			t.Fatalf("density %v outside (0, 0.5]", v)
		}
	}
}

func TestDensityNeverFlipsDominance(t *testing.T) {
	// The +2 in the density denominator guarantees density < 1, so a
	// dominated individual can never beat a non-dominated one on fitness.
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%15) + 2
		r := randx.New(seed)
		pts := make([]pareto.Point, n)
		for i := range pts {
			pts[i] = pareto.Point{Privacy: r.Float64(), Utility: r.Float64()}
		}
		fit := AssignFitness(pts, testCfg)
		for i := range pts {
			for j := range pts {
				if fit.Raw[i] < fit.Raw[j] && fit.Value[i] >= fit.Value[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectEnvironmentExactFit(t *testing.T) {
	pts := []pareto.Point{
		{Privacy: 0.9, Utility: 0.1},
		{Privacy: 0.1, Utility: 0.05},
		{Privacy: 0.5, Utility: 0.5}, // dominated by {0.9, 0.1}
	}
	fit := AssignFitness(pts, testCfg)
	sel, err := SelectEnvironment(pts, fit, 2, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 {
		t.Fatalf("selected %d, want 2", len(sel))
	}
}

func TestSelectEnvironmentFillsWithBestDominated(t *testing.T) {
	pts := []pareto.Point{
		{Privacy: 0.9, Utility: 0.1},   // non-dominated
		{Privacy: 0.8, Utility: 0.2},   // dominated once
		{Privacy: 0.1, Utility: 0.9},   // dominated twice over? dominated by both above
		{Privacy: 0.85, Utility: 0.15}, // dominated once
	}
	fit := AssignFitness(pts, testCfg)
	sel, err := SelectEnvironment(pts, fit, 3, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 3 {
		t.Fatalf("selected %d, want 3", len(sel))
	}
	// The worst point (index 2) must be the one left out.
	for _, i := range sel {
		if i == 2 {
			t.Fatalf("selection %v kept the worst individual", sel)
		}
	}
}

func TestSelectEnvironmentTruncationPreservesExtremes(t *testing.T) {
	// Five mutually non-dominated points (utility rises with privacy);
	// capacity 3. Truncation should drop crowding duplicates, keeping one
	// representative of each crowded pair and the far extreme.
	pts := []pareto.Point{
		{Privacy: 0.1, Utility: 0.10},
		{Privacy: 0.12, Utility: 0.12}, // crowds the first
		{Privacy: 0.5, Utility: 0.30},
		{Privacy: 0.52, Utility: 0.31}, // crowds the third
		{Privacy: 0.9, Utility: 0.50},
	}
	fit := AssignFitness(pts, testCfg)
	sel, err := SelectEnvironment(pts, fit, 3, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 3 {
		t.Fatalf("selected %d, want 3", len(sel))
	}
	hasFirstPair, hasSecondPair, hasLast := false, false, false
	for _, i := range sel {
		switch i {
		case 0, 1:
			hasFirstPair = true
		case 2, 3:
			hasSecondPair = true
		case 4:
			hasLast = true
		}
	}
	if !hasFirstPair || !hasSecondPair || !hasLast {
		t.Fatalf("truncation collapsed a region of the front: %v", sel)
	}
}

func TestSelectEnvironmentCapacityValidation(t *testing.T) {
	pts := []pareto.Point{{Privacy: 1, Utility: 1}}
	fit := AssignFitness(pts, testCfg)
	if _, err := SelectEnvironment(pts, fit, 0, testCfg); err == nil {
		t.Fatal("capacity 0 accepted")
	}
	if _, err := SelectEnvironment(pts, Fitness{}, 1, testCfg); err == nil {
		t.Fatal("mismatched fitness accepted")
	}
}

func TestSelectEnvironmentFewerPointsThanCapacity(t *testing.T) {
	pts := []pareto.Point{{Privacy: 0.5, Utility: 0.5}, {Privacy: 0.6, Utility: 0.6}}
	fit := AssignFitness(pts, testCfg)
	sel, err := SelectEnvironment(pts, fit, 10, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 {
		t.Fatalf("selected %d, want all 2", len(sel))
	}
}

// TestSelectEnvironmentNeverDropsNonDominatedWhenRoom is a DESIGN.md
// invariant: while the archive has room, every non-dominated individual
// survives environmental selection.
func TestSelectEnvironmentNeverDropsNonDominatedWhenRoom(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%20) + 2
		r := randx.New(seed)
		pts := make([]pareto.Point, n)
		for i := range pts {
			pts[i] = pareto.Point{Privacy: r.Float64(), Utility: r.Float64()}
		}
		fit := AssignFitness(pts, testCfg)
		frontIdx := pareto.Front(pts)
		capacity := len(frontIdx) + 2 // room for every non-dominated point
		sel, err := SelectEnvironment(pts, fit, capacity, testCfg)
		if err != nil {
			return false
		}
		selSet := make(map[int]bool, len(sel))
		for _, i := range sel {
			selSet[i] = true
		}
		for _, i := range frontIdx {
			if !selSet[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectEnvironmentRespectsCapacity(t *testing.T) {
	f := func(seed uint64, nRaw, capRaw uint8) bool {
		n := int(nRaw%30) + 1
		capacity := int(capRaw%10) + 1
		r := randx.New(seed)
		pts := make([]pareto.Point, n)
		for i := range pts {
			pts[i] = pareto.Point{Privacy: r.Float64(), Utility: r.Float64()}
		}
		fit := AssignFitness(pts, testCfg)
		sel, err := SelectEnvironment(pts, fit, capacity, testCfg)
		if err != nil {
			return false
		}
		if len(sel) > capacity {
			return false
		}
		// No duplicates.
		seen := make(map[int]bool)
		for _, i := range sel {
			if i < 0 || i >= n || seen[i] {
				return false
			}
			seen[i] = true
		}
		// If there were at least `capacity` points, selection fills up.
		return n < capacity || len(sel) == capacity
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryTournamentPrefersBetter(t *testing.T) {
	fit := Fitness{Value: []float64{5, 0.2, 3}}
	r := randx.New(1)
	counts := make([]int, 3)
	for i := 0; i < 30000; i++ {
		counts[BinaryTournament(fit, r)]++
	}
	// Index 1 (best) should win far more often than the others.
	if !(counts[1] > counts[0] && counts[1] > counts[2]) {
		t.Fatalf("tournament counts = %v, best index should dominate", counts)
	}
	// Expected share for the best of 3 under binary tournament: it is
	// selected whenever drawn at all: 1 - (2/3)^2 = 5/9.
	got := float64(counts[1]) / 30000
	if math.Abs(got-5.0/9.0) > 0.02 {
		t.Fatalf("best selected %v of the time, want approx 5/9", got)
	}
}

func TestBinaryTournamentPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty set")
		}
	}()
	BinaryTournament(Fitness{}, randx.New(1))
}

func TestFillMatingPool(t *testing.T) {
	fit := Fitness{Value: []float64{1, 2, 3}}
	pool := FillMatingPool(fit, 7, randx.New(2))
	if len(pool) != 7 {
		t.Fatalf("pool size = %d, want 7", len(pool))
	}
	for _, i := range pool {
		if i < 0 || i >= 3 {
			t.Fatalf("pool index %d out of range", i)
		}
	}
}

func TestNormalizationMattersForScaleImbalance(t *testing.T) {
	// Objectives on wildly different scales (privacy ~1, utility ~1e-4,
	// like the paper's). Without normalization the density estimate
	// collapses onto the privacy axis; with it, points separated only in
	// utility still register as far apart.
	pts := []pareto.Point{
		{Privacy: 0.5, Utility: 1e-4},
		{Privacy: 0.5, Utility: 9e-4},
		{Privacy: 0.500001, Utility: 5e-4},
	}
	raw := AssignFitness(pts, Config{KNearest: 1, Normalize: false})
	norm := AssignFitness(pts, Config{KNearest: 1, Normalize: true})
	// Unnormalized: all pairwise distances are ~0, so densities are ~0.5.
	for _, d := range raw.Density {
		if math.Abs(d-0.5) > 0.01 {
			t.Fatalf("unnormalized density = %v, expected near 0.5", raw.Density)
		}
	}
	// Normalized: the two utility extremes are far apart.
	if norm.Density[0] > 0.45 || norm.Density[1] > 0.45 {
		t.Fatalf("normalized density did not separate points: %v", norm.Density)
	}
}

func BenchmarkAssignFitness80(b *testing.B) {
	r := randx.New(1)
	pts := make([]pareto.Point, 80)
	for i := range pts {
		pts[i] = pareto.Point{Privacy: r.Float64(), Utility: r.Float64()}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AssignFitness(pts, testCfg)
	}
}

func BenchmarkSelectEnvironment80(b *testing.B) {
	r := randx.New(1)
	pts := make([]pareto.Point, 80)
	for i := range pts {
		pts[i] = pareto.Point{Privacy: r.Float64(), Utility: r.Float64()}
	}
	fit := AssignFitness(pts, testCfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SelectEnvironment(pts, fit, 40, testCfg); err != nil {
			b.Fatal(err)
		}
	}
}
