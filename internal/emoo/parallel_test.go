package emoo

import (
	"runtime"
	"sync/atomic"
	"testing"

	"optrr/internal/pareto"
	"optrr/internal/randx"
)

// largeClouds draws point sets well above minParallelRows, so the parallel
// dispatch path (not the serial cutover) is what executes. The shapes mirror
// randomClouds: uniform clouds, duplicate-heavy clusters, and collinear sets.
func largeClouds(r *randx.Source, count int) [][]pareto.Point {
	var clouds [][]pareto.Point
	for c := 0; c < count; c++ {
		n := minParallelRows + 40 + r.Intn(200)
		pts := make([]pareto.Point, n)
		switch c % 3 {
		case 0:
			for i := range pts {
				pts[i] = pareto.Point{Privacy: r.Float64(), Utility: r.Float64() * 1e-4}
			}
		case 1:
			for i := range pts {
				base := pareto.Point{Privacy: float64(r.Intn(6)) * 0.15, Utility: float64(r.Intn(6)) * 1e-5}
				if r.Float64() < 0.5 {
					base.Privacy += r.Float64() * 1e-9
				}
				pts[i] = base
			}
		default:
			for i := range pts {
				pts[i] = pareto.Point{Privacy: r.Float64(), Utility: 0.5}
			}
		}
		clouds = append(clouds, pts)
	}
	return clouds
}

// workerCountsUnderTest covers serial, the smallest parallel fan-out, an
// uneven block split, and whatever this machine resolves GOMAXPROCS to.
func workerCountsUnderTest() []int {
	return []int{1, 2, 3, 8, runtime.GOMAXPROCS(0)}
}

// TestParallelFitnessMatchesSerial pins the parallel dominance, distance and
// density kernels bit-for-bit to the serial scratch path on clouds large
// enough to cross the parallel cutover.
func TestParallelFitnessMatchesSerial(t *testing.T) {
	r := randx.New(23)
	for _, pts := range largeClouds(r, 12) {
		for _, k := range []int{1, 3} {
			serialCfg := Config{KNearest: k, Normalize: true, Workers: 1}
			want := NewScratch().AssignFitness(pts, serialCfg)
			for _, w := range workerCountsUnderTest() {
				cfg := serialCfg
				cfg.Workers = w
				got := NewScratch().AssignFitness(pts, cfg)
				for i := range want.Value {
					if got.Strength[i] != want.Strength[i] || got.Raw[i] != want.Raw[i] ||
						got.Density[i] != want.Density[i] || got.Value[i] != want.Value[i] {
						t.Fatalf("n=%d k=%d workers=%d: fitness[%d] = (%d, %v, %.17g, %.17g), want (%d, %v, %.17g, %.17g)",
							len(pts), k, w, i,
							got.Strength[i], got.Raw[i], got.Density[i], got.Value[i],
							want.Strength[i], want.Raw[i], want.Density[i], want.Value[i])
					}
				}
			}
		}
	}
}

// TestParallelSelectEnvironmentMatchesSerial drives truncation hard — a
// mutually non-dominated front reduced to half capacity — and requires the
// surviving index sequence to be identical at every worker count.
func TestParallelSelectEnvironmentMatchesSerial(t *testing.T) {
	r := randx.New(29)
	for trial := 0; trial < 6; trial++ {
		n := minParallelRows + 40 + r.Intn(160)
		pts := make([]pareto.Point, n)
		for i := range pts {
			pts[i] = pareto.Point{
				Privacy: 0.3 + 0.35*(float64(i)+r.Float64())/float64(n),
				Utility: 1e-4 * (float64(i) + r.Float64()),
			}
		}
		for _, normalize := range []bool{true, false} {
			serialCfg := Config{KNearest: 1, Normalize: normalize, Workers: 1}
			sSerial := NewScratch()
			fit := sSerial.AssignFitness(pts, serialCfg)
			want, err := sSerial.SelectEnvironment(pts, fit, n/2, serialCfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range workerCountsUnderTest() {
				cfg := serialCfg
				cfg.Workers = w
				s := NewScratch()
				pfit := s.AssignFitness(pts, cfg)
				got, err := s.SelectEnvironment(pts, pfit, n/2, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("n=%d normalize=%v workers=%d: selected %d, want %d", n, normalize, w, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("n=%d normalize=%v workers=%d: selection[%d] = %d, want %d", n, normalize, w, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestForRowsCoversEveryRowOnce checks the dispatch invariant behind the
// determinism contract: every row is visited exactly once, regardless of how
// many workers claim blocks.
func TestForRowsCoversEveryRowOnce(t *testing.T) {
	for _, n := range []int{0, 1, rowBlock - 1, rowBlock, rowBlock + 1, 5 * rowBlock, 5*rowBlock + 7} {
		for _, workers := range []int{1, 2, 3, 16} {
			visits := make([]int32, n)
			forRows(n, workers, func(_, lo, hi int) {
				if lo < 0 || hi > n || lo >= hi {
					t.Errorf("n=%d workers=%d: bad block [%d, %d)", n, workers, lo, hi)
					return
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&visits[i], 1)
				}
			})
			for i, v := range visits {
				if v != 1 {
					t.Fatalf("n=%d workers=%d: row %d visited %d times", n, workers, i, v)
				}
			}
		}
	}
}

// TestKernelWorkersResolution pins the cutover rules: serial below
// minParallelRows, capped at one worker per block, and never below one.
func TestKernelWorkersResolution(t *testing.T) {
	cases := []struct{ workers, n, want int }{
		{0, 1000, 1},                // unset → serial
		{8, minParallelRows - 1, 1}, // below cutover → serial
		{8, minParallelRows, 4},     // 64 rows = 4 blocks cap
		{2, 1000, 2},                // plenty of blocks → as asked
		{1000, 2560, 160},           // capped at one worker per block
		{-3, 1000, 1},               // nonsense → serial
	}
	for _, tc := range cases {
		if got := kernelWorkers(tc.workers, tc.n); got != tc.want {
			t.Errorf("kernelWorkers(%d, %d) = %d, want %d", tc.workers, tc.n, got, tc.want)
		}
	}
}
