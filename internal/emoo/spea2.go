// Package emoo implements the SPEA2 machinery of Zitzler, Laumanns and
// Thiele that the paper builds its optimizer on (Section V): fitness
// assignment from dominance strength and nearest-neighbour density,
// environmental selection with the iterative truncation operator, and
// binary-tournament mating selection.
//
// The package is genome-agnostic: it works purely on objective-space points
// (pareto.Point) and index slices, so internal/core can drive it with RR
// matrices and tests can drive it with synthetic point clouds.
package emoo

import (
	"fmt"
	"math"
	"sort"

	"optrr/internal/pareto"
	"optrr/internal/randx"
)

// Config controls the SPEA2 operators.
type Config struct {
	// KNearest is the k in the k-th-nearest-neighbour density estimate. The
	// paper sets k = 1 ("k is usually set to 1 in practice"); zero means 1.
	KNearest int
	// Normalize rescales each objective by its range over the current point
	// set before any distance computation. The paper's two objectives live
	// on very different scales (privacy ≈ 0.5, MSE ≈ 1e-4), so without
	// normalization density and truncation would ignore utility entirely.
	Normalize bool
}

func (c Config) k() int {
	if c.KNearest <= 0 {
		return 1
	}
	return c.KNearest
}

// Fitness holds the per-individual fitness decomposition of SPEA2.
type Fitness struct {
	// Strength[i] is S(i): how many individuals i dominates.
	Strength []int
	// Raw[i] is R(i): the summed strength of everyone dominating i. Zero
	// means non-dominated.
	Raw []float64
	// Density[i] is D(i) = 1/(σ_i^k + 2) ∈ (0, 0.5].
	Density []float64
	// Value[i] is F(i) = R(i) + D(i); lower is better.
	Value []float64
}

// AssignFitness computes SPEA2 fitness for the union of archive and
// population points (Section V-B of the paper).
func AssignFitness(pts []pareto.Point, cfg Config) Fitness {
	n := len(pts)
	f := Fitness{
		Strength: make([]int, n),
		Raw:      make([]float64, n),
		Density:  make([]float64, n),
		Value:    make([]float64, n),
	}
	if n == 0 {
		return f
	}
	dom := make([][]bool, n)
	for i := range dom {
		dom[i] = make([]bool, n)
		for j := range dom[i] {
			if i != j && pts[i].Dominates(pts[j]) {
				dom[i][j] = true
				f.Strength[i]++
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if dom[j][i] {
				f.Raw[i] += float64(f.Strength[j])
			}
		}
	}
	d := distanceMatrix(pts, cfg)
	k := cfg.k()
	if k > n-1 {
		k = n - 1
	}
	buf := make([]float64, 0, n-1)
	for i := 0; i < n; i++ {
		buf = buf[:0]
		for j := 0; j < n; j++ {
			if j != i {
				buf = append(buf, d[i][j])
			}
		}
		var sigma float64
		if len(buf) > 0 {
			sort.Float64s(buf)
			sigma = buf[k-1]
		}
		f.Density[i] = 1 / (sigma + 2)
		f.Value[i] = f.Raw[i] + f.Density[i]
	}
	return f
}

// distanceMatrix returns pairwise objective-space distances, optionally
// normalized per objective by the range over pts.
func distanceMatrix(pts []pareto.Point, cfg Config) [][]float64 {
	n := len(pts)
	scaleP, scaleU := 1.0, 1.0
	if cfg.Normalize && n > 1 {
		minP, maxP := pts[0].Privacy, pts[0].Privacy
		minU, maxU := pts[0].Utility, pts[0].Utility
		for _, p := range pts[1:] {
			minP = math.Min(minP, p.Privacy)
			maxP = math.Max(maxP, p.Privacy)
			minU = math.Min(minU, p.Utility)
			maxU = math.Max(maxU, p.Utility)
		}
		if r := maxP - minP; r > 0 {
			scaleP = 1 / r
		}
		if r := maxU - minU; r > 0 {
			scaleU = 1 / r
		}
	}
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dp := (pts[i].Privacy - pts[j].Privacy) * scaleP
			du := (pts[i].Utility - pts[j].Utility) * scaleU
			dist := math.Sqrt(dp*dp + du*du)
			d[i][j] = dist
			d[j][i] = dist
		}
	}
	return d
}

// SelectEnvironment performs SPEA2 environmental selection (Section V-C):
// it returns the indices (into pts) of the individuals forming the next
// archive of size capacity. All non-dominated individuals (fitness < 1) are
// taken first; a shortfall is filled with the best dominated individuals; an
// overflow is reduced with the iterative nearest-neighbour truncation
// operator, which preserves spread.
func SelectEnvironment(pts []pareto.Point, fit Fitness, capacity int, cfg Config) ([]int, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("emoo: archive capacity must be positive, got %d", capacity)
	}
	if len(fit.Value) != len(pts) {
		return nil, fmt.Errorf("emoo: fitness for %d points, got %d values", len(pts), len(fit.Value))
	}
	var next []int
	for i, v := range fit.Value {
		if v < 1 {
			next = append(next, i)
		}
	}
	switch {
	case len(next) == capacity:
		return next, nil
	case len(next) < capacity:
		// Fill with the best dominated individuals.
		var rest []int
		for i, v := range fit.Value {
			if v >= 1 {
				rest = append(rest, i)
			}
		}
		sort.Slice(rest, func(a, b int) bool { return fit.Value[rest[a]] < fit.Value[rest[b]] })
		need := capacity - len(next)
		if need > len(rest) {
			need = len(rest)
		}
		return append(next, rest[:need]...), nil
	default:
		return truncate(pts, next, capacity, cfg), nil
	}
}

// truncate iteratively removes, from the selected index set, the individual
// with the lexicographically smallest sorted distance vector to the other
// selected individuals — i.e. the one crowding the densest spot — until the
// set fits the capacity.
func truncate(pts []pareto.Point, selected []int, capacity int, cfg Config) []int {
	live := append([]int(nil), selected...)
	for len(live) > capacity {
		sub := make([]pareto.Point, len(live))
		for k, idx := range live {
			sub[k] = pts[idx]
		}
		d := distanceMatrix(sub, cfg)
		vecs := make([][]float64, len(live))
		for i := range live {
			v := make([]float64, 0, len(live)-1)
			for j := range live {
				if j != i {
					v = append(v, d[i][j])
				}
			}
			sort.Float64s(v)
			vecs[i] = v
		}
		victim := 0
		for i := 1; i < len(live); i++ {
			if lexLess(vecs[i], vecs[victim]) {
				victim = i
			}
		}
		live = append(live[:victim], live[victim+1:]...)
	}
	return live
}

// lexLess reports whether distance vector a is lexicographically smaller
// than b (equal-length slices).
func lexLess(a, b []float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// BinaryTournament picks one index in [0, len(fit.Value)) by drawing two
// uniformly at random and keeping the one with the better (lower) fitness
// (Section V-D). It panics on an empty fitness set, which is a caller bug.
func BinaryTournament(fit Fitness, r *randx.Source) int {
	n := len(fit.Value)
	if n == 0 {
		panic("emoo: BinaryTournament over empty set")
	}
	a := r.Intn(n)
	b := r.Intn(n)
	if fit.Value[b] < fit.Value[a] {
		return b
	}
	return a
}

// FillMatingPool returns size indices selected by repeated binary
// tournaments.
func FillMatingPool(fit Fitness, size int, r *randx.Source) []int {
	out := make([]int, size)
	for i := range out {
		out[i] = BinaryTournament(fit, r)
	}
	return out
}
