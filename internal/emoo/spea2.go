// Package emoo implements the SPEA2 machinery of Zitzler, Laumanns and
// Thiele that the paper builds its optimizer on (Section V): fitness
// assignment from dominance strength and nearest-neighbour density,
// environmental selection with the iterative truncation operator, and
// binary-tournament mating selection.
//
// The package is genome-agnostic: it works purely on objective-space points
// (pareto.Point) and index slices, so internal/core can drive it with RR
// matrices and tests can drive it with synthetic point clouds.
//
// The operators run on a reusable Scratch: flat dominance and distance
// buffers instead of per-call [][]-allocations, k-th-element selection
// instead of full row sorts for the density estimate, and incremental
// nearest-neighbour maintenance during truncation. The package-level
// functions remain as one-shot conveniences over a throwaway Scratch and the
// scratch paths are bit-for-bit identical to them (see the reference
// equivalence tests).
package emoo

import (
	"fmt"
	"math"
	"sort"

	"optrr/internal/pareto"
	"optrr/internal/randx"
)

// Config controls the SPEA2 operators.
type Config struct {
	// KNearest is the k in the k-th-nearest-neighbour density estimate. The
	// paper sets k = 1 ("k is usually set to 1 in practice"); zero means 1.
	KNearest int
	// Normalize rescales each objective by its range over the current point
	// set before any distance computation. The paper's two objectives live
	// on very different scales (privacy ≈ 0.5, MSE ≈ 1e-4), so without
	// normalization density and truncation would ignore utility entirely.
	Normalize bool
}

func (c Config) k() int {
	if c.KNearest <= 0 {
		return 1
	}
	return c.KNearest
}

// Fitness holds the per-individual fitness decomposition of SPEA2.
type Fitness struct {
	// Strength[i] is S(i): how many individuals i dominates.
	Strength []int
	// Raw[i] is R(i): the summed strength of everyone dominating i. Zero
	// means non-dominated.
	Raw []float64
	// Density[i] is D(i) = 1/(σ_i^k + 2) ∈ (0, 0.5].
	Density []float64
	// Value[i] is F(i) = R(i) + D(i); lower is better.
	Value []float64
}

// Scratch holds the reusable state behind SPEA2 fitness assignment and
// environmental selection: flat dominance and distance matrices, the
// selection buffers, and the incremental truncation structures. A persistent
// Scratch makes the per-generation selection loop allocation-free in steady
// state.
//
// Slices returned by the Scratch methods (Fitness fields, selection index
// slices) alias the scratch buffers: they are valid until the next call on
// the same Scratch. A Scratch is not safe for concurrent use.
type Scratch struct {
	// Fitness buffers.
	strength []int
	raw      []float64
	density  []float64
	value    []float64
	dom      []bool
	dist     []float64 // flat n×n pairwise distances
	kbuf     []float64 // k-th-element selection buffer

	// Selection buffers.
	sel  []int
	rest []int

	// Truncation state.
	live   []int     // working copy of the selected index set
	alive  []bool    // per-slot liveness
	tdist  []float64 // flat m×m distances over the selected slots
	vec    []float64 // per-slot sorted distance vectors, stride m
	vecLen []int

	// Parallel-pass plumbing. The row-pass closures are built once per
	// Scratch (see passes) and capture only the Scratch itself; the fields
	// below carry the per-call state they read, so the steady-state hot
	// path allocates nothing — a fresh closure per call would escape to the
	// heap even when the pass runs serially.
	//
	// The distance passes are dimension-aware: dim == 2 runs the exact
	// historical two-objective expressions on scaleP/scaleU (the bit-for-bit
	// pinned fast path), while dim > 2 runs the generic loop over the
	// per-objective scales slice. All k-dim state lives in flat reusable
	// buffers sized by the objective count, so both paths stay
	// allocation-free in steady state.
	pts            []pareto.Point // current point set (cleared after each call)
	dim            int            // objective count of the current point set
	scaleP, scaleU float64        // 2-D normalization scales for the distance passes
	scales         []float64      // k-dim normalization scales (dim > 2)
	scaleLo        []float64      // per-objective minimum scratch (dim > 2)
	scaleHi        []float64      // per-objective maximum scratch (dim > 2)
	scalesNew      []float64      // truncation scale-change detection buffer
	k              int            // effective density k
	victim         int            // slot being removed by the truncation delete pass
	strengthPass   func(lo, hi int)
	rawPass        func(lo, hi int)
	distPass       func(lo, hi int)
	densityPass    func(lo, hi int)
	tdistPass      func(lo, hi int)
	tvecPass       func(lo, hi int)
	deletePass     func(lo, hi int)
}

// NewScratch returns an empty scratch; buffers grow on demand and are reused
// across calls.
func NewScratch() *Scratch { return &Scratch{} }

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

// AssignFitness computes SPEA2 fitness for the union of archive and
// population points (Section V-B of the paper). The returned Fitness slices
// alias the scratch and are valid until the next AssignFitness call.
func (s *Scratch) AssignFitness(pts []pareto.Point, cfg Config) Fitness {
	n := len(pts)
	s.strength = growInts(s.strength, n)
	s.raw = growFloats(s.raw, n)
	s.density = growFloats(s.density, n)
	s.value = growFloats(s.value, n)
	f := Fitness{Strength: s.strength, Raw: s.raw, Density: s.density, Value: s.value}
	if n == 0 {
		return f
	}
	s.ensurePasses()
	s.pts = pts
	s.dim = pointDim(pts)
	s.dom = growBools(s.dom, n*n)
	// Dominance + strength: row i owns dom[i*n:(i+1)*n] and Strength[i].
	s.strengthPass(0, n)
	// Raw fitness reads every strength, so it must follow the full strength
	// pass; row i accumulates its dominators' strengths in ascending-j order.
	s.rawPass(0, n)
	s.distanceMatrix(pts, cfg)
	k := cfg.k()
	if k > n-1 {
		k = n - 1
	}
	s.k = k
	s.kbuf = growFloats(s.kbuf, n)[:0]
	// Density: row i reads its completed distance row.
	s.densityPass(0, n)
	s.pts = nil
	return f
}

// ensurePasses builds the reusable row-pass closures on first use. Each
// closure captures only the Scratch and reads its per-call state from the
// pass fields, keeping the steady-state kernels allocation-free.
func (s *Scratch) ensurePasses() {
	if s.strengthPass != nil {
		return
	}
	s.strengthPass = func(lo, hi int) {
		pts, dom := s.pts, s.dom
		n := len(pts)
		if s.dim == 2 {
			// Inlined two-objective dominance: Point.Dominates carries the
			// extra-axis loop and does not inline, and the outlined call
			// copies two Points per pair — measurable on this O(n²) kernel.
			// The comparison structure mirrors Dominates exactly (including
			// its NaN behaviour).
			for i := lo; i < hi; i++ {
				pp, pu := pts[i].Privacy, pts[i].Utility
				st := 0
				ri := dom[i*n : (i+1)*n]
				for j := range ri {
					q := &pts[j]
					d := false
					if i != j && !(pp < q.Privacy || pu > q.Utility) {
						d = pp > q.Privacy || pu < q.Utility
					}
					ri[j] = d
					if d {
						st++
					}
				}
				s.strength[i] = st
			}
			return
		}
		for i := lo; i < hi; i++ {
			st := 0
			ri := dom[i*n : (i+1)*n]
			for j := range ri {
				d := i != j && pts[i].Dominates(pts[j])
				ri[j] = d
				if d {
					st++
				}
			}
			s.strength[i] = st
		}
	}
	s.rawPass = func(lo, hi int) {
		dom := s.dom
		n := len(s.pts)
		for i := lo; i < hi; i++ {
			var raw float64
			for j := 0; j < n; j++ {
				if dom[j*n+i] {
					raw += float64(s.strength[j])
				}
			}
			s.raw[i] = raw
		}
	}
	s.distPass = func(lo, hi int) {
		pts, d := s.pts, s.dist
		n := len(pts)
		if s.dim == 2 {
			scaleP, scaleU := s.scaleP, s.scaleU
			for i := lo; i < hi; i++ {
				d[i*n+i] = 0
				for j := i + 1; j < n; j++ {
					dp := (pts[i].Privacy - pts[j].Privacy) * scaleP
					du := (pts[i].Utility - pts[j].Utility) * scaleU
					dist := math.Sqrt(dp*dp + du*du)
					d[i*n+j] = dist
					d[j*n+i] = dist
				}
			}
			return
		}
		scales := s.scales
		for i := lo; i < hi; i++ {
			d[i*n+i] = 0
			for j := i + 1; j < n; j++ {
				dist := scaledDistance(pts[i], pts[j], scales)
				d[i*n+j] = dist
				d[j*n+i] = dist
			}
		}
	}
	s.densityPass = func(lo, hi int) {
		n := len(s.pts)
		k := s.k
		for i := lo; i < hi; i++ {
			var sigma float64
			if n > 1 {
				row := s.dist[i*n : (i+1)*n]
				if k == 1 {
					// σ is the nearest-neighbour distance: a plain minimum,
					// no sort needed.
					sigma = math.Inf(1)
					for j, d := range row {
						if j != i && d < sigma {
							sigma = d
						}
					}
				} else {
					buf := s.kbuf[:0]
					for j, d := range row {
						if j != i {
							buf = append(buf, d)
						}
					}
					sigma = kthSmallest(buf, k)
					s.kbuf = buf[:0]
				}
			}
			s.density[i] = 1 / (sigma + 2)
			s.value[i] = s.raw[i] + s.density[i]
		}
	}
	s.tdistPass = func(lo, hi int) {
		m := len(s.live)
		if s.dim == 2 {
			scaleP, scaleU := s.scaleP, s.scaleU
			for a := lo; a < hi; a++ {
				if !s.alive[a] {
					continue
				}
				pa := s.pts[s.live[a]]
				s.tdist[a*m+a] = 0
				for b := a + 1; b < m; b++ {
					if !s.alive[b] {
						continue
					}
					pb := s.pts[s.live[b]]
					dp := (pa.Privacy - pb.Privacy) * scaleP
					du := (pa.Utility - pb.Utility) * scaleU
					dist := math.Sqrt(dp*dp + du*du)
					s.tdist[a*m+b] = dist
					s.tdist[b*m+a] = dist
				}
			}
			return
		}
		scales := s.scales
		for a := lo; a < hi; a++ {
			if !s.alive[a] {
				continue
			}
			pa := s.pts[s.live[a]]
			s.tdist[a*m+a] = 0
			for b := a + 1; b < m; b++ {
				if !s.alive[b] {
					continue
				}
				dist := scaledDistance(pa, s.pts[s.live[b]], scales)
				s.tdist[a*m+b] = dist
				s.tdist[b*m+a] = dist
			}
		}
	}
	s.tvecPass = func(lo, hi int) {
		m := len(s.live)
		for a := lo; a < hi; a++ {
			if !s.alive[a] {
				continue
			}
			row := s.vec[a*m : a*m]
			for b := 0; b < m; b++ {
				if b != a && s.alive[b] {
					row = append(row, s.tdist[a*m+b])
				}
			}
			sort.Float64s(row)
			s.vecLen[a] = len(row)
		}
	}
	s.deletePass = func(lo, hi int) {
		m := len(s.live)
		victim := s.victim
		for a := lo; a < hi; a++ {
			if !s.alive[a] {
				continue
			}
			row := s.vec[a*m : a*m+s.vecLen[a]]
			d := s.tdist[a*m+victim]
			idx := sort.SearchFloat64s(row, d)
			copy(row[idx:], row[idx+1:])
			s.vecLen[a]--
		}
	}
}

// AssignFitness is the one-shot form of (*Scratch).AssignFitness: the
// returned Fitness owns freshly allocated slices.
func AssignFitness(pts []pareto.Point, cfg Config) Fitness {
	return NewScratch().AssignFitness(pts, cfg)
}

// kthSmallest returns the k-th smallest value (1-based) of buf, which it
// partially reorders in place: Hoare quickselect with a median-of-three
// pivot. Pure element selection — the result is the exact value sorting
// would put at index k-1.
func kthSmallest(buf []float64, k int) float64 {
	if len(buf) == 0 {
		return 0
	}
	target := k - 1
	lo, hi := 0, len(buf)-1
	for lo < hi {
		// Median-of-three pivot, moved to buf[lo].
		mid := lo + (hi-lo)/2
		if buf[mid] < buf[lo] {
			buf[mid], buf[lo] = buf[lo], buf[mid]
		}
		if buf[hi] < buf[lo] {
			buf[hi], buf[lo] = buf[lo], buf[hi]
		}
		if buf[hi] < buf[mid] {
			buf[hi], buf[mid] = buf[mid], buf[hi]
		}
		pivot := buf[mid]
		i, j := lo, hi
		for i <= j {
			for buf[i] < pivot {
				i++
			}
			for buf[j] > pivot {
				j--
			}
			if i <= j {
				buf[i], buf[j] = buf[j], buf[i]
				i++
				j--
			}
		}
		if target <= j {
			hi = j
		} else if target >= i {
			lo = i
		} else {
			return buf[target]
		}
	}
	return buf[target]
}

// distanceMatrix fills s.dist with the flat n×n pairwise objective-space
// distances of pts, optionally normalized per objective by the range over
// pts. For two-objective points the expressions match the historical
// [][]-based implementation exactly; for k-dim points the same
// scale-difference-square-sum recurrence runs over every axis. Each
// unordered pair {i, j} is written (to both symmetric cells) by the row with
// the smaller index.
func (s *Scratch) distanceMatrix(pts []pareto.Point, cfg Config) {
	n := len(pts)
	s.pts = pts
	s.dim = pointDim(pts)
	if s.dim == 2 {
		s.scaleP, s.scaleU = objectiveScales(pts, cfg)
	} else {
		s.scales = s.objectiveScalesK(pts, cfg, s.scales)
	}
	s.dist = growFloats(s.dist, n*n)
	s.distPass(0, n)
}

// pointDim returns the objective count of a point set; an empty set counts
// as the canonical two objectives.
func pointDim(pts []pareto.Point) int {
	if len(pts) == 0 {
		return 2
	}
	return pts[0].Dim()
}

// scaledDistance is the k-dim generalization of the inlined two-objective
// distance expression: per-axis scaled differences, squares summed in axis
// order, one square root.
func scaledDistance(a, b pareto.Point, scales []float64) float64 {
	var sum float64
	for t, sc := range scales {
		d := (a.At(t) - b.At(t)) * sc
		sum += d * d
	}
	return math.Sqrt(sum)
}

// objectiveScales returns the per-objective normalization factors over pts.
func objectiveScales(pts []pareto.Point, cfg Config) (scaleP, scaleU float64) {
	scaleP, scaleU = 1.0, 1.0
	n := len(pts)
	if cfg.Normalize && n > 1 {
		minP, maxP := pts[0].Privacy, pts[0].Privacy
		minU, maxU := pts[0].Utility, pts[0].Utility
		for _, p := range pts[1:] {
			minP = math.Min(minP, p.Privacy)
			maxP = math.Max(maxP, p.Privacy)
			minU = math.Min(minU, p.Utility)
			maxU = math.Max(maxU, p.Utility)
		}
		if r := maxP - minP; r > 0 {
			scaleP = 1 / r
		}
		if r := maxU - minU; r > 0 {
			scaleU = 1 / r
		}
	}
	return scaleP, scaleU
}

// objectiveScalesK fills dst with the s.dim per-objective normalization
// factors over pts — the k-dim generalization of objectiveScales, using the
// same math.Min/math.Max recurrence per axis. dst is grown in place and
// returned so the caller can persist the buffer.
func (s *Scratch) objectiveScalesK(pts []pareto.Point, cfg Config, dst []float64) []float64 {
	dim := s.dim
	dst = growFloats(dst, dim)
	for t := range dst {
		dst[t] = 1
	}
	if !cfg.Normalize || len(pts) <= 1 {
		return dst
	}
	lo := growFloats(s.scaleLo, dim)
	hi := growFloats(s.scaleHi, dim)
	s.scaleLo, s.scaleHi = lo, hi
	for t := 0; t < dim; t++ {
		v := pts[0].At(t)
		lo[t], hi[t] = v, v
	}
	for _, p := range pts[1:] {
		for t := 0; t < dim; t++ {
			v := p.At(t)
			lo[t] = math.Min(lo[t], v)
			hi[t] = math.Max(hi[t], v)
		}
	}
	for t := 0; t < dim; t++ {
		if r := hi[t] - lo[t]; r > 0 {
			dst[t] = 1 / r
		}
	}
	return dst
}

// SelectEnvironment performs SPEA2 environmental selection (Section V-C):
// it returns the indices (into pts) of the individuals forming the next
// archive of size capacity. All non-dominated individuals (fitness < 1) are
// taken first; a shortfall is filled with the best dominated individuals; an
// overflow is reduced with the iterative nearest-neighbour truncation
// operator, which preserves spread. The returned slice aliases the scratch
// and is valid until the next SelectEnvironment call.
func (s *Scratch) SelectEnvironment(pts []pareto.Point, fit Fitness, capacity int, cfg Config) ([]int, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("emoo: archive capacity must be positive, got %d", capacity)
	}
	if len(fit.Value) != len(pts) {
		return nil, fmt.Errorf("emoo: fitness for %d points, got %d values", len(pts), len(fit.Value))
	}
	s.sel = growInts(s.sel, len(pts))[:0]
	next := s.sel
	for i, v := range fit.Value {
		if v < 1 {
			next = append(next, i)
		}
	}
	s.sel = next
	switch {
	case len(next) == capacity:
		return next, nil
	case len(next) < capacity:
		// Fill with the best dominated individuals.
		s.rest = growInts(s.rest, len(pts))[:0]
		rest := s.rest
		for i, v := range fit.Value {
			if v >= 1 {
				rest = append(rest, i)
			}
		}
		s.rest = rest
		sort.Slice(rest, func(a, b int) bool { return fit.Value[rest[a]] < fit.Value[rest[b]] })
		need := capacity - len(next)
		if need > len(rest) {
			need = len(rest)
		}
		next = append(next, rest[:need]...)
		s.sel = next
		return next, nil
	default:
		return s.truncate(pts, next, capacity, cfg), nil
	}
}

// SelectEnvironment is the one-shot form of (*Scratch).SelectEnvironment.
func SelectEnvironment(pts []pareto.Point, fit Fitness, capacity int, cfg Config) ([]int, error) {
	return NewScratch().SelectEnvironment(pts, fit, capacity, cfg)
}

// truncate iteratively removes, from the selected index set, the individual
// with the lexicographically smallest sorted distance vector to the other
// selected individuals — i.e. the one crowding the densest spot — until the
// set fits the capacity.
//
// The loop maintains the nearest-neighbour structures incrementally: the
// pairwise distances and each survivor's sorted distance vector are computed
// once and, after a removal, only the victim's distance is deleted from each
// vector (an O(m) ordered delete instead of an O(m log m) re-sort, with no
// distance recomputation). The historical implementation rebuilt and
// re-sorted everything per removal. The one case that forces a rebuild is a
// change of the normalization scales — the victim was the sole extremum of
// an objective — which the loop detects by recomputing the min/max ranges
// over the survivors.
func (s *Scratch) truncate(pts []pareto.Point, selected []int, capacity int, cfg Config) []int {
	m := len(selected)
	s.live = growInts(s.live, m)
	copy(s.live, selected)
	s.alive = growBools(s.alive, m)
	for i := range s.alive {
		s.alive[i] = true
	}
	count := m

	s.tdist = growFloats(s.tdist, m*m)
	s.vec = growFloats(s.vec, m*m)
	s.vecLen = growInts(s.vecLen, m)

	s.ensurePasses()
	s.pts = pts
	s.dim = pointDim(pts)
	if s.dim == 2 {
		s.scaleP, s.scaleU = s.truncScales(pts, cfg)
	} else {
		s.scales = s.truncScalesK(pts, cfg, s.scales)
	}
	s.truncDistances()
	s.truncVectors()

	for count > capacity {
		// Victim: first live slot with the lexicographically smallest
		// sorted distance vector. Scanning slots in ascending order visits
		// the survivors in the same order the historical live-list
		// implementation did.
		victim := -1
		for a := 0; a < m; a++ {
			if !s.alive[a] {
				continue
			}
			if victim < 0 || lexLess(s.vec[a*m:a*m+s.vecLen[a]], s.vec[victim*m:victim*m+s.vecLen[victim]]) {
				victim = a
			}
		}
		s.alive[victim] = false
		count--
		if count <= capacity {
			break
		}
		if cfg.Normalize {
			if s.dim == 2 {
				if p, u := s.truncScales(pts, cfg); p != s.scaleP || u != s.scaleU {
					// The victim carried an objective extremum: ranges and
					// therefore all normalized distances changed. Rebuild.
					s.scaleP, s.scaleU = p, u
					s.truncDistances()
					s.truncVectors()
					continue
				}
			} else {
				s.scalesNew = s.truncScalesK(pts, cfg, s.scalesNew)
				if !floatsEqual(s.scales, s.scalesNew) {
					s.scales, s.scalesNew = s.scalesNew, s.scales
					s.truncDistances()
					s.truncVectors()
					continue
				}
			}
		}
		// Scales unchanged: drop the victim's distance from every
		// survivor's sorted vector in place.
		s.victim = victim
		s.deletePass(0, m)
	}

	s.pts = nil
	out := selected[:0]
	for a := 0; a < m; a++ {
		if s.alive[a] {
			out = append(out, s.live[a])
		}
	}
	s.sel = out
	return out
}

// truncScales returns the normalization factors over the currently live
// subset, with the same min/max recurrence as objectiveScales.
func (s *Scratch) truncScales(pts []pareto.Point, cfg Config) (scaleP, scaleU float64) {
	scaleP, scaleU = 1.0, 1.0
	if !cfg.Normalize {
		return scaleP, scaleU
	}
	first := true
	var minP, maxP, minU, maxU float64
	live := 0
	for a, ok := range s.alive {
		if !ok {
			continue
		}
		p := pts[s.live[a]]
		if first {
			minP, maxP = p.Privacy, p.Privacy
			minU, maxU = p.Utility, p.Utility
			first = false
		} else {
			minP = math.Min(minP, p.Privacy)
			maxP = math.Max(maxP, p.Privacy)
			minU = math.Min(minU, p.Utility)
			maxU = math.Max(maxU, p.Utility)
		}
		live++
	}
	if live <= 1 {
		return scaleP, scaleU
	}
	if r := maxP - minP; r > 0 {
		scaleP = 1 / r
	}
	if r := maxU - minU; r > 0 {
		scaleU = 1 / r
	}
	return scaleP, scaleU
}

// truncScalesK fills dst with the k-dim normalization factors over the
// currently live subset — the dim > 2 companion of truncScales, with the
// same min/max recurrence per axis. dst is grown in place and returned.
func (s *Scratch) truncScalesK(pts []pareto.Point, cfg Config, dst []float64) []float64 {
	dim := s.dim
	dst = growFloats(dst, dim)
	for t := range dst {
		dst[t] = 1
	}
	if !cfg.Normalize {
		return dst
	}
	lo := growFloats(s.scaleLo, dim)
	hi := growFloats(s.scaleHi, dim)
	s.scaleLo, s.scaleHi = lo, hi
	first := true
	live := 0
	for a, ok := range s.alive {
		if !ok {
			continue
		}
		p := pts[s.live[a]]
		if first {
			for t := 0; t < dim; t++ {
				v := p.At(t)
				lo[t], hi[t] = v, v
			}
			first = false
		} else {
			for t := 0; t < dim; t++ {
				v := p.At(t)
				lo[t] = math.Min(lo[t], v)
				hi[t] = math.Max(hi[t], v)
			}
		}
		live++
	}
	if live <= 1 {
		return dst
	}
	for t := 0; t < dim; t++ {
		if r := hi[t] - lo[t]; r > 0 {
			dst[t] = 1 / r
		}
	}
	return dst
}

// floatsEqual reports element-wise equality of two equal-length slices.
func floatsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// truncDistances fills s.tdist with pairwise distances over the live slots
// under the scales in s.scaleP/s.scaleU. Dead slots are skipped; their
// entries are stale and must not be read.
func (s *Scratch) truncDistances() {
	s.tdistPass(0, len(s.live))
}

// truncVectors rebuilds every live slot's sorted distance vector from
// s.tdist — the per-row nearest-neighbour recomputation after a scale
// change.
func (s *Scratch) truncVectors() {
	s.tvecPass(0, len(s.live))
}

// lexLess reports whether distance vector a is lexicographically smaller
// than b (equal-length slices).
func lexLess(a, b []float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// BinaryTournament picks one index in [0, len(fit.Value)) by drawing two
// uniformly at random and keeping the one with the better (lower) fitness
// (Section V-D). It panics on an empty fitness set, which is a caller bug.
func BinaryTournament(fit Fitness, r *randx.Source) int {
	n := len(fit.Value)
	if n == 0 {
		panic("emoo: BinaryTournament over empty set")
	}
	a := r.Intn(n)
	b := r.Intn(n)
	if fit.Value[b] < fit.Value[a] {
		return b
	}
	return a
}

// FillMatingPool returns size indices selected by repeated binary
// tournaments.
func FillMatingPool(fit Fitness, size int, r *randx.Source) []int {
	out := make([]int, size)
	for i := range out {
		out[i] = BinaryTournament(fit, r)
	}
	return out
}
