package emoo

import (
	"sync"
	"sync/atomic"
)

// The parallel kernels partition their O(n²) row loops into fixed-size row
// blocks that workers claim from a shared atomic cursor. Two properties make
// this safe for the optimizer's bit-for-bit reproducibility contract:
//
//  1. Every row's computation is self-contained — it reads only inputs that
//     are complete before the pass starts and writes only its own row (plus,
//     for the symmetric distance matrices, the mirror cells of column pairs
//     it exclusively owns) — so rows can run in any order on any worker.
//  2. The block partition depends only on the row count, never on the worker
//     count, so the set of per-row computations is identical whether one
//     worker or sixteen execute them.
//
// Together they pin every parallel result exactly to the serial scratch
// path; spea2_ref_test.go enforces this with exact float64 equality.

// rowBlock is the fixed row-block granularity. Blocks are coarse enough to
// amortize the cursor increment and avoid false sharing on adjacent output
// rows, and fine enough to load-balance the triangular distance loops (early
// rows carry more column work than late ones).
const rowBlock = 16

// minParallelRows is the serial cutover: below this row count the goroutine
// fan-out costs more than the O(n²) work it splits, so the kernels run the
// identical loop inline. The cutover never affects results (property 2
// above), only scheduling.
const minParallelRows = 64

// kernelWorkers resolves the worker count for an n-row kernel: at least one,
// at most one per block, and serial below the cutover.
func kernelWorkers(workers, n int) int {
	if workers < 1 || n < minParallelRows {
		return 1
	}
	if blocks := (n + rowBlock - 1) / rowBlock; workers > blocks {
		workers = blocks
	}
	return workers
}

// forRows runs fn(worker, lo, hi) over every block [lo, hi) of the row range
// [0, n), on the given number of workers. The calling goroutine acts as
// worker 0, so workers == 1 degenerates to a plain inline loop with no
// synchronization. fn must only write state owned by its rows (or indexed by
// its worker id); forRows returns after all blocks complete, which is the
// barrier between dependent passes.
func forRows(n, workers int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers <= 1 {
		fn(0, 0, n)
		return
	}
	blocks := (n + rowBlock - 1) / rowBlock
	var cursor atomic.Int64
	body := func(worker int) {
		for {
			b := int(cursor.Add(1)) - 1
			if b >= blocks {
				return
			}
			lo := b * rowBlock
			hi := lo + rowBlock
			if hi > n {
				hi = n
			}
			fn(worker, lo, hi)
		}
	}
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			body(w)
		}(w)
	}
	body(0)
	wg.Wait()
}
