// Package trace reads and analyzes the JSONL run traces the optimizer's
// observability seam writes (obs.JSONLRecorder attached via -trace in the
// CLIs). It is the library behind cmd/rrtrace: per-phase timing breakdowns,
// convergence curves, and A/B comparison of two runs — the measurements the
// paper's experiments (Section VI) report as figures.
//
// The format is one JSON object per line with a fixed envelope:
//
//	{"ts":"...","seq":0,"event":"optimizer.start", <event fields>...}
//
// Readers here are tolerant by design: unknown events pass through, missing
// fields read as zero, and blank lines are skipped — a trace from a newer or
// older build should still summarize.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"time"
)

// Event is one trace line: the envelope plus the event's own fields.
type Event struct {
	TS     time.Time
	Seq    int
	Name   string
	Fields map[string]any
}

// Float returns the named field as a float64 (JSON numbers decode as
// float64); missing or non-numeric fields read as NaN.
func (e Event) Float(key string) float64 {
	if v, ok := e.Fields[key].(float64); ok {
		return v
	}
	return math.NaN()
}

// Int returns the named field as an int; missing or non-numeric fields read
// as 0.
func (e Event) Int(key string) int {
	if v, ok := e.Fields[key].(float64); ok {
		return int(v)
	}
	return 0
}

// Bool returns the named field as a bool; missing or non-bool fields read as
// false.
func (e Event) Bool(key string) bool {
	v, _ := e.Fields[key].(bool)
	return v
}

// ReadAll parses a JSONL trace. Blank lines are skipped; a malformed line
// aborts with an error naming its line number — except a malformed *final*
// line, which is dropped silently: a killed or crashed run truncates its
// buffered last write mid-line, and those cut-short traces are exactly what
// an analysis tool gets pointed at. The envelope keys (ts, seq, event) are
// lifted out of Fields.
func ReadAll(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024) // generation events carry whole fronts
	var events []Event
	lineNo := 0
	var pendingErr error // parse failure that is only fatal if more lines follow
	pendingLine := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if pendingErr != nil {
			return nil, fmt.Errorf("trace line %d: %w", pendingLine, pendingErr)
		}
		var fields map[string]any
		if err := json.Unmarshal(line, &fields); err != nil {
			pendingErr, pendingLine = err, lineNo
			continue
		}
		ev := Event{Fields: fields}
		if ts, ok := fields["ts"].(string); ok {
			ev.TS, _ = time.Parse(time.RFC3339Nano, ts)
		}
		if seq, ok := fields["seq"].(float64); ok {
			ev.Seq = int(seq)
		}
		ev.Name, _ = fields["event"].(string)
		delete(fields, "ts")
		delete(fields, "seq")
		delete(fields, "event")
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace line %d: %w", lineNo+1, err)
	}
	return events, nil
}

// PhaseTotal is the accumulated wall time of one optimizer phase across a
// run.
type PhaseTotal struct {
	Name    string
	TotalMS float64
}

// Summary condenses one trace: run shape from optimizer.start, per-phase
// totals from the optimizer.generation timings, and the outcome from
// optimizer.done (zero when the trace was cut short).
type Summary struct {
	// From optimizer.start (zero values when the event is absent).
	Categories   int
	Records      int
	Delta        float64
	Generations  int // configured budget
	Engine       string
	Seed         int
	Islands      int // island-model sub-populations; 1 = single population
	MigrateEvery int // migration interval in generations (island runs)

	// Accumulated over optimizer.generation events.
	GenerationsRun int
	Evaluations    int // last generation event's cumulative counter
	Phases         []PhaseTotal

	// Accumulated over the island-model events of an Islands > 1 run.
	Migrations        int // optimizer.migration events seen
	IslandGenerations int // optimizer.island.generation events seen

	// From the last optimizer.convergence event (if any).
	BestHypervolume  float64
	SinceImprovement int
	Stalled          bool

	// From optimizer.done (if present).
	Done      bool
	WallMS    float64
	FrontSize int
	Stagnated bool
}

// phaseFields maps the optimizer.generation timing fields onto display
// names, in presentation order. select/vary/eval/omega partition the
// generation timeline; fitness/truncate are parallel-kernel sub-phases that
// overlap select and vary (see core's observability seam), listed after.
var phaseFields = []struct{ field, name string }{
	{"select_ms", "select"},
	{"vary_ms", "vary"},
	{"eval_ms", "eval"},
	{"omega_ms", "omega"},
	{"fitness_ms", "fitness"},
	{"truncate_ms", "truncate"},
}

// Summarize folds a trace into its Summary.
func Summarize(events []Event) Summary {
	var s Summary
	totals := make(map[string]float64, len(phaseFields))
	for _, ev := range events {
		switch ev.Name {
		case "optimizer.start":
			s.Categories = ev.Int("categories")
			s.Records = ev.Int("records")
			s.Delta = ev.Float("delta")
			s.Generations = ev.Int("generations")
			s.Engine, _ = ev.Fields["engine"].(string)
			s.Seed = ev.Int("seed")
			s.Islands = ev.Int("islands")
			s.MigrateEvery = ev.Int("migrate_every")
		case "optimizer.migration":
			s.Migrations++
			// Island runs emit no top-level generation events; the epoch
			// events carry the cumulative depth and evaluation counters.
			if g := ev.Int("gen"); g > s.GenerationsRun {
				s.GenerationsRun = g
			}
			if e := ev.Int("evals"); e > 0 {
				s.Evaluations = e
			}
		case "optimizer.island.generation":
			s.IslandGenerations++
			// Per-island generations carry the same timing fields as the
			// serial ones; summed across islands they form the run's
			// CPU-time phase breakdown.
			for _, p := range phaseFields {
				if v := ev.Float(p.field); !math.IsNaN(v) {
					totals[p.field] += v
				}
			}
		case "optimizer.generation":
			s.GenerationsRun++
			s.Evaluations = ev.Int("evals")
			for _, p := range phaseFields {
				if v := ev.Float(p.field); !math.IsNaN(v) {
					totals[p.field] += v
				}
			}
		case "optimizer.convergence":
			s.BestHypervolume = ev.Float("best_hypervolume")
			s.SinceImprovement = ev.Int("since_improvement")
			s.Stalled = ev.Bool("stalled")
		case "optimizer.done":
			s.Done = true
			s.WallMS = ev.Float("wall_ms")
			s.FrontSize = ev.Int("front_size")
			s.Stagnated = ev.Bool("stagnated")
		}
	}
	for _, p := range phaseFields {
		s.Phases = append(s.Phases, PhaseTotal{Name: p.name, TotalMS: totals[p.field]})
	}
	return s
}

// ConvergencePoint is one generation of a run's convergence curve.
type ConvergencePoint struct {
	Gen              int
	Hypervolume      float64
	BestHypervolume  float64
	Improved         bool
	SinceImprovement int
	Stalled          bool
	OmegaInserts     int
	OmegaEvictions   int
	Spread           float64
}

// ConvergenceCurve extracts the per-generation convergence curve. It prefers
// the dedicated optimizer.convergence events; traces recorded before those
// existed fall back to the hypervolume field of optimizer.generation events,
// reconstructing the monotone best-so-far envelope (churn and spread read as
// zero there). Points come back sorted by generation.
func ConvergenceCurve(events []Event) []ConvergencePoint {
	var pts []ConvergencePoint
	for _, ev := range events {
		if ev.Name != "optimizer.convergence" {
			continue
		}
		pts = append(pts, ConvergencePoint{
			Gen:              ev.Int("gen"),
			Hypervolume:      ev.Float("hypervolume"),
			BestHypervolume:  ev.Float("best_hypervolume"),
			Improved:         ev.Bool("improved"),
			SinceImprovement: ev.Int("since_improvement"),
			Stalled:          ev.Bool("stalled"),
			OmegaInserts:     ev.Int("omega_inserts"),
			OmegaEvictions:   ev.Int("omega_evictions"),
			Spread:           ev.Float("spread"),
		})
	}
	if pts == nil {
		pts = fallbackCurve(events)
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].Gen < pts[j].Gen })
	return pts
}

// fallbackCurve reconstructs a curve from optimizer.generation events alone.
func fallbackCurve(events []Event) []ConvergencePoint {
	var pts []ConvergencePoint
	best := math.Inf(-1)
	lastImproved := -1
	for _, ev := range events {
		if ev.Name != "optimizer.generation" {
			continue
		}
		gen := ev.Int("gen")
		hv := ev.Float("hypervolume")
		improved := !math.IsNaN(hv) && (lastImproved < 0 || hv > best)
		if improved {
			best = hv
			lastImproved = gen
		}
		since := gen - lastImproved
		if lastImproved < 0 {
			since = gen + 1
		}
		pts = append(pts, ConvergencePoint{
			Gen:              gen,
			Hypervolume:      hv,
			BestHypervolume:  best,
			Improved:         improved,
			SinceImprovement: since,
		})
	}
	return pts
}

// Comparison is the A/B verdict over two convergence curves: how many
// generations each run needed to reach the given fractions of the common
// target — min(bestA, bestB), so both runs are measured against a
// hypervolume both actually reached. -1 marks "never got there".
type Comparison struct {
	Target    float64 // the common hypervolume target
	Fractions []float64
	GensA     []int
	GensB     []int
	BestA     float64
	BestB     float64
	FinalGenA int
	FinalGenB int
}

// DefaultFractions are the convergence milestones Compare reports.
var DefaultFractions = []float64{0.50, 0.90, 0.99, 1.00}

// Compare measures two curves against their common reachable target. Empty
// fractions selects DefaultFractions.
func Compare(a, b []ConvergencePoint, fractions []float64) Comparison {
	if len(fractions) == 0 {
		fractions = DefaultFractions
	}
	c := Comparison{
		Fractions: fractions,
		BestA:     finalBest(a),
		BestB:     finalBest(b),
		FinalGenA: finalGen(a),
		FinalGenB: finalGen(b),
	}
	c.Target = math.Min(c.BestA, c.BestB)
	for _, f := range fractions {
		threshold := f * c.Target
		c.GensA = append(c.GensA, gensToReach(a, threshold))
		c.GensB = append(c.GensB, gensToReach(b, threshold))
	}
	return c
}

func finalBest(pts []ConvergencePoint) float64 {
	if len(pts) == 0 {
		return math.NaN()
	}
	return pts[len(pts)-1].BestHypervolume
}

func finalGen(pts []ConvergencePoint) int {
	if len(pts) == 0 {
		return -1
	}
	return pts[len(pts)-1].Gen
}

// gensToReach returns the first generation whose best-so-far hypervolume
// meets the threshold, or -1 when the curve never does.
func gensToReach(pts []ConvergencePoint, threshold float64) int {
	for _, p := range pts {
		if p.BestHypervolume >= threshold {
			return p.Gen
		}
	}
	return -1
}
