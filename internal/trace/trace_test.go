package trace

import (
	"math"
	"strings"
	"testing"
)

const sampleTrace = `{"ts":"2026-08-07T10:00:00.000Z","seq":0,"event":"optimizer.start","categories":4,"records":1000,"delta":0.8,"generations":3,"engine":"spea2","seed":9}

{"ts":"2026-08-07T10:00:00.010Z","seq":1,"event":"optimizer.generation","gen":0,"evals":40,"hypervolume":0.5,"select_ms":1.5,"vary_ms":0.5,"eval_ms":2,"omega_ms":0.25,"fitness_ms":1,"truncate_ms":0.5}
{"ts":"2026-08-07T10:00:00.011Z","seq":2,"event":"optimizer.convergence","gen":0,"hypervolume":0.5,"best_hypervolume":0.5,"improved":true,"since_improvement":0,"stalled":false,"omega_inserts":10,"omega_evictions":2,"spread":0.4}
{"ts":"2026-08-07T10:00:00.020Z","seq":3,"event":"optimizer.generation","gen":1,"evals":80,"hypervolume":0.8,"select_ms":1.5,"vary_ms":0.5,"eval_ms":2,"omega_ms":0.25,"fitness_ms":1,"truncate_ms":0.5}
{"ts":"2026-08-07T10:00:00.021Z","seq":4,"event":"optimizer.convergence","gen":1,"hypervolume":0.8,"best_hypervolume":0.8,"improved":true,"since_improvement":0,"stalled":false,"omega_inserts":4,"omega_evictions":1,"spread":0.3}
{"ts":"2026-08-07T10:00:00.030Z","seq":5,"event":"optimizer.generation","gen":2,"evals":120,"hypervolume":0.7,"select_ms":1,"vary_ms":1,"eval_ms":2,"omega_ms":0.25,"fitness_ms":1,"truncate_ms":0.5}
{"ts":"2026-08-07T10:00:00.031Z","seq":6,"event":"optimizer.convergence","gen":2,"hypervolume":0.7,"best_hypervolume":0.8,"improved":false,"since_improvement":1,"stalled":false,"omega_inserts":1,"omega_evictions":0,"spread":0.35}
{"ts":"2026-08-07T10:00:00.040Z","seq":7,"event":"optimizer.done","generations":3,"evaluations":120,"front_size":9,"stagnated":false,"wall_ms":40.5}
`

func readSample(t *testing.T, text string) []Event {
	t.Helper()
	events, err := ReadAll(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	return events
}

func TestReadAllLiftsEnvelope(t *testing.T) {
	events := readSample(t, sampleTrace)
	if len(events) != 8 {
		t.Fatalf("got %d events, want 8 (blank line skipped)", len(events))
	}
	ev := events[0]
	if ev.Name != "optimizer.start" || ev.Seq != 0 {
		t.Errorf("envelope: name=%q seq=%d", ev.Name, ev.Seq)
	}
	if ev.TS.IsZero() {
		t.Error("ts not parsed")
	}
	for _, key := range []string{"ts", "seq", "event"} {
		if _, ok := ev.Fields[key]; ok {
			t.Errorf("envelope key %q left in Fields", key)
		}
	}
	if ev.Int("categories") != 4 || ev.Float("delta") != 0.8 {
		t.Errorf("fields not preserved: %v", ev.Fields)
	}
}

func TestReadAllFieldAccessors(t *testing.T) {
	events := readSample(t, `{"event":"x","n":3,"f":1.5,"b":true,"s":"str"}`)
	ev := events[0]
	if ev.Int("n") != 3 || ev.Int("missing") != 0 || ev.Int("s") != 0 {
		t.Errorf("Int accessor wrong")
	}
	if ev.Float("f") != 1.5 || !math.IsNaN(ev.Float("missing")) || !math.IsNaN(ev.Float("s")) {
		t.Errorf("Float accessor wrong")
	}
	if !ev.Bool("b") || ev.Bool("missing") || ev.Bool("s") {
		t.Errorf("Bool accessor wrong")
	}
}

func TestReadAllMalformedLine(t *testing.T) {
	// A malformed interior line is corruption and must error with its line
	// number.
	_, err := ReadAll(strings.NewReader("{\"event\":\"ok\"}\nnot json\n{\"event\":\"ok2\"}\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want line-2 parse error", err)
	}
	// A malformed final line is the truncated tail of a killed run; it is
	// dropped, the rest of the trace parses.
	events, err := ReadAll(strings.NewReader("{\"event\":\"ok\"}\n{\"event\":\"optimizer.gen"))
	if err != nil {
		t.Fatalf("truncated tail: %v", err)
	}
	if len(events) != 1 || events[0].Name != "ok" {
		t.Fatalf("truncated tail events = %+v, want the one whole line", events)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(readSample(t, sampleTrace))
	if s.Categories != 4 || s.Records != 1000 || s.Delta != 0.8 || s.Engine != "spea2" || s.Seed != 9 {
		t.Errorf("start fields: %+v", s)
	}
	if s.GenerationsRun != 3 || s.Evaluations != 120 {
		t.Errorf("generations: run=%d evals=%d", s.GenerationsRun, s.Evaluations)
	}
	want := map[string]float64{
		"select": 4, "vary": 2, "eval": 6, "omega": 0.75, "fitness": 3, "truncate": 1.5,
	}
	for _, p := range s.Phases {
		if math.Abs(p.TotalMS-want[p.Name]) > 1e-9 {
			t.Errorf("phase %s = %v, want %v", p.Name, p.TotalMS, want[p.Name])
		}
	}
	if s.BestHypervolume != 0.8 || s.SinceImprovement != 1 || s.Stalled {
		t.Errorf("convergence tail: %+v", s)
	}
	if !s.Done || s.FrontSize != 9 || s.WallMS != 40.5 || s.Stagnated {
		t.Errorf("done: %+v", s)
	}
}

func TestConvergenceCurvePrefersConvergenceEvents(t *testing.T) {
	pts := ConvergenceCurve(readSample(t, sampleTrace))
	if len(pts) != 3 {
		t.Fatalf("got %d points, want 3", len(pts))
	}
	// Dedicated events carry churn and spread; the fallback cannot.
	if pts[0].OmegaInserts != 10 || pts[0].Spread != 0.4 {
		t.Errorf("point 0 not from convergence event: %+v", pts[0])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].BestHypervolume < pts[i-1].BestHypervolume {
			t.Errorf("best hypervolume not monotone at %d: %v < %v",
				i, pts[i].BestHypervolume, pts[i-1].BestHypervolume)
		}
	}
	if pts[2].Hypervolume != 0.7 || pts[2].BestHypervolume != 0.8 || pts[2].SinceImprovement != 1 {
		t.Errorf("point 2: %+v", pts[2])
	}
}

func TestConvergenceCurveFallback(t *testing.T) {
	// A pre-convergence-event trace: only generation events. The curve must
	// reconstruct the monotone envelope.
	old := `{"event":"optimizer.generation","gen":0,"hypervolume":0.5}
{"event":"optimizer.generation","gen":1,"hypervolume":0.4}
{"event":"optimizer.generation","gen":2,"hypervolume":0.9}
`
	pts := ConvergenceCurve(readSample(t, old))
	if len(pts) != 3 {
		t.Fatalf("got %d points, want 3", len(pts))
	}
	wantBest := []float64{0.5, 0.5, 0.9}
	wantSince := []int{0, 1, 0}
	for i, p := range pts {
		if p.BestHypervolume != wantBest[i] || p.SinceImprovement != wantSince[i] {
			t.Errorf("fallback point %d: %+v, want best %v since %d", i, p, wantBest[i], wantSince[i])
		}
	}
	if !pts[0].Improved || pts[1].Improved || !pts[2].Improved {
		t.Errorf("fallback improved flags: %+v", pts)
	}
}

func TestCompare(t *testing.T) {
	a := []ConvergencePoint{
		{Gen: 0, BestHypervolume: 0.3},
		{Gen: 1, BestHypervolume: 0.6},
		{Gen: 2, BestHypervolume: 1.0},
	}
	b := []ConvergencePoint{
		{Gen: 0, BestHypervolume: 0.5},
		{Gen: 1, BestHypervolume: 0.7},
		{Gen: 2, BestHypervolume: 0.8},
	}
	c := Compare(a, b, nil)
	if c.Target != 0.8 || c.BestA != 1.0 || c.BestB != 0.8 {
		t.Fatalf("targets: %+v", c)
	}
	// Fractions of 0.8: 0.4, 0.72, 0.792, 0.8. b's gen-1 best (0.7) misses
	// the 0.72 threshold, so the 90% milestone lands on gen 2 for both.
	wantA := []int{1, 2, 2, 2}
	wantB := []int{0, 2, 2, 2}
	for i := range c.Fractions {
		if c.GensA[i] != wantA[i] || c.GensB[i] != wantB[i] {
			t.Errorf("fraction %v: A=%d B=%d, want A=%d B=%d",
				c.Fractions[i], c.GensA[i], c.GensB[i], wantA[i], wantB[i])
		}
	}
	// The common target is reachable by construction (it's the min of the
	// two finals), but a custom fraction above 1 can exceed a run's best;
	// that reports -1.
	c2 := Compare(a, b, []float64{1.5})
	if c2.GensA[0] != -1 || c2.GensB[0] != -1 {
		t.Errorf("unreachable target: gensA=%d gensB=%d, want -1,-1", c2.GensA[0], c2.GensB[0])
	}
}
