package rrclient

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"optrr/internal/rr"
	"optrr/internal/rrapi"
)

// fakeService is a minimal rrserver stand-in: it serves a scheme and
// records every disguised report it is handed.
func fakeService(t *testing.T, m *rr.Matrix) (*httptest.Server, *atomic.Int64, *int32) {
	t.Helper()
	var reports atomic.Int64
	var schemeFetches int32
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/scheme", func(w http.ResponseWriter, _ *http.Request) {
		atomic.AddInt32(&schemeFetches, 1)
		json.NewEncoder(w).Encode(rrapi.SchemeResponse{Matrix: m, Z: 1.96}) //nolint:errcheck
	})
	mux.HandleFunc("POST /v1/reports", func(w http.ResponseWriter, r *http.Request) {
		var req rrapi.BatchRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		for _, rep := range req.Reports {
			if rep < 0 || rep >= m.N() {
				w.WriteHeader(http.StatusBadRequest)
				json.NewEncoder(w).Encode(rrapi.ErrorResponse{Error: "out of range"}) //nolint:errcheck
				return
			}
		}
		reports.Add(int64(len(req.Reports)))
		json.NewEncoder(w).Encode(rrapi.IngestResponse{Accepted: len(req.Reports)}) //nolint:errcheck
	})
	mux.HandleFunc("POST /v1/report", func(w http.ResponseWriter, r *http.Request) {
		var req rrapi.ReportRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		reports.Add(1)
		json.NewEncoder(w).Encode(rrapi.IngestResponse{Accepted: 1}) //nolint:errcheck
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, &reports, &schemeFetches
}

// TestClientDisguisesLocally: the scheme is fetched exactly once, draws are
// valid categories, deterministic under WithSeed, and out-of-domain private
// values are rejected client-side (nothing leaves the process).
func TestClientDisguisesLocally(t *testing.T) {
	m, err := rr.Warner(4, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	srv, reports, fetches := fakeService(t, m)
	ctx := context.Background()

	c := New(srv.URL, WithSeed(5), WithHTTPClient(srv.Client()))
	got, err := c.ReportValues(ctx, []int{0, 1, 2, 3, 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range got {
		if d < 0 || d >= 4 {
			t.Fatalf("disguised report %d outside the domain", d)
		}
	}
	if reports.Load() != 5 {
		t.Fatalf("server saw %d reports, want 5", reports.Load())
	}
	if _, err := c.ReportValue(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if n := atomic.LoadInt32(fetches); n != 1 {
		t.Fatalf("scheme fetched %d times, want 1 (cached)", n)
	}
	if _, err := c.Disguise(ctx, 4); err == nil {
		t.Fatal("out-of-domain private value accepted")
	}
	if _, err := c.Disguise(ctx, -1); err == nil {
		t.Fatal("negative private value accepted")
	}

	// Same seed, same values → same disguised stream (reproducible sims).
	c2 := New(srv.URL, WithSeed(5), WithHTTPClient(srv.Client()))
	got2, err := c2.ReportValues(ctx, []int{0, 1, 2, 3, 0})
	if err != nil {
		t.Fatal(err)
	}
	for k := range got {
		if got[k] != got2[k] {
			t.Fatalf("seeded draws diverged at %d: %d vs %d", k, got[k], got2[k])
		}
	}
}

// TestClientSurfacesServerErrors: a non-2xx answer turns into an error
// carrying the server's message and status.
func TestClientSurfacesServerErrors(t *testing.T) {
	m, err := rr.Warner(3, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	srv, _, _ := fakeService(t, m)
	c := New(srv.URL, WithSeed(1), WithHTTPClient(srv.Client()))
	err = c.ReportBatch(context.Background(), []int{0, 99})
	if err == nil {
		t.Fatal("out-of-range disguised batch accepted")
	}
	if !strings.Contains(err.Error(), "out of range") || !strings.Contains(err.Error(), "400") {
		t.Fatalf("error lost the server message: %v", err)
	}
}
