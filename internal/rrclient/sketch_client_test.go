package rrclient

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"optrr/internal/rr"
	"optrr/internal/rrapi"
	"optrr/internal/sketch"
)

// schemeService is a fake rrserver whose deployed scheme can be swapped at
// runtime, serving the envelope form with ETag/304 like the real server.
type schemeService struct {
	mu      sync.Mutex
	scheme  rr.Scheme
	version string
	fetches int // 200 responses only; 304s don't count
}

func (s *schemeService) swap(t *testing.T, scheme rr.Scheme) {
	t.Helper()
	v, err := rr.SchemeVersion(scheme)
	if err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	s.scheme, s.version = scheme, v
	s.mu.Unlock()
}

func (s *schemeService) handle(t *testing.T) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		defer s.mu.Unlock()
		etag := `"` + s.version + `"`
		w.Header().Set("ETag", etag)
		if strings.Contains(r.Header.Get("If-None-Match"), etag) {
			w.WriteHeader(http.StatusNotModified)
			return
		}
		env, err := rr.MarshalScheme(s.scheme)
		if err != nil {
			t.Error(err)
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		s.fetches++
		json.NewEncoder(w).Encode(rrapi.SchemeResponse{ //nolint:errcheck
			Kind: s.scheme.Kind(), Scheme: env, Version: s.version, Z: 1.96,
		})
	}
}

func newSketchScheme(t *testing.T, hashSeed uint64) *sketch.CMSScheme {
	t.Helper()
	s, err := sketch.NewKRR(50000, 8, 64, 4, hashSeed)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestClientSketchDisguise: the SDK decodes a cms envelope, refuses the
// dense-only accessor, and disguises a huge-domain value locally into the
// k·m report space — the value itself never hits the wire.
func TestClientSketchDisguise(t *testing.T) {
	scheme := newSketchScheme(t, 1)
	svc := &schemeService{}
	svc.swap(t, scheme)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/scheme", svc.handle(t))
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	client := New(srv.URL, WithSeed(5))
	ctx := context.Background()
	if _, err := client.Scheme(ctx); err == nil || !strings.Contains(err.Error(), "not a dense matrix") {
		t.Fatalf("Scheme() err = %v, want dense-only refusal", err)
	}
	deployed, err := client.DeployedScheme(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if deployed.Kind() != "cms" || deployed.Domain() != 50000 {
		t.Fatalf("deployed kind %q domain %d", deployed.Kind(), deployed.Domain())
	}
	for _, value := range []int{0, 7, 49999} {
		report, err := client.Disguise(ctx, value)
		if err != nil {
			t.Fatal(err)
		}
		if report < 0 || report >= scheme.ReportSpace() {
			t.Fatalf("report %d outside the %d-cell report space", report, scheme.ReportSpace())
		}
	}
	if _, err := client.Disguise(ctx, 50000); err == nil {
		t.Fatal("out-of-domain value accepted")
	}
	if svc.fetches != 1 {
		t.Fatalf("scheme fetched %d times, want 1", svc.fetches)
	}
}

// TestClientSchemeChangedAndRefresh: polling an unchanged deployment rides
// the 304 (no body refetch); a redeployment flips SchemeChanged, and
// RefreshScheme adopts the new scheme.
func TestClientSchemeChangedAndRefresh(t *testing.T) {
	first := newSketchScheme(t, 1)
	svc := &schemeService{}
	svc.swap(t, first)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/scheme", svc.handle(t))
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	client := New(srv.URL, WithSeed(5))
	ctx := context.Background()

	// First call on a cold client fetches and caches, reporting no change.
	changed, err := client.SchemeChanged(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Fatal("cold SchemeChanged reported a change")
	}
	for i := 0; i < 3; i++ {
		if changed, err = client.SchemeChanged(ctx); err != nil || changed {
			t.Fatalf("unchanged poll %d: changed=%v err=%v", i, changed, err)
		}
	}
	if svc.fetches != 1 {
		t.Fatalf("unchanged polling refetched the body: %d fetches, want 1", svc.fetches)
	}

	v1, err := client.SchemeVersion(ctx)
	if err != nil {
		t.Fatal(err)
	}
	svc.swap(t, newSketchScheme(t, 2)) // redeploy under a new hash family
	changed, err = client.SchemeChanged(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("redeployment not detected")
	}
	// SchemeChanged must not swap the cache by itself.
	if v, _ := client.SchemeVersion(ctx); v != v1 {
		t.Fatalf("SchemeChanged mutated the cached scheme: %s -> %s", v1, v)
	}
	if err := client.RefreshScheme(ctx); err != nil {
		t.Fatal(err)
	}
	v2, err := client.SchemeVersion(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v2 == v1 {
		t.Fatal("RefreshScheme kept the stale scheme")
	}
	if changed, err = client.SchemeChanged(ctx); err != nil || changed {
		t.Fatalf("post-refresh poll: changed=%v err=%v", changed, err)
	}
}
