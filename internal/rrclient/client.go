// Package rrclient is the respondent-side disguise SDK for the LDP
// collection service (cmd/rrserver). It enforces the paper's Section I
// privacy boundary in code: the client fetches the deployed disguise scheme
// once, samples the disguised report locally — through the scheme's own
// sampling (alias tables for a dense matrix, hash-then-disguise for the
// count-mean sketch) — and reports only the disguise. The private value
// never leaves the process.
package rrclient

import (
	"bytes"
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"optrr/internal/randx"
	"optrr/internal/rr"
	"optrr/internal/rrapi"

	// Register the sketch scheme codec so the SDK can decode a cms envelope
	// from any server without its users importing the sketch package.
	_ "optrr/internal/sketch"
)

// randomSeed seeds a production client's disguise draws from the OS entropy
// pool — respondent privacy must not hinge on a guessable stream — falling
// back to the clock only if that fails.
func randomSeed() uint64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		return uint64(time.Now().UnixNano())
	}
	return binary.LittleEndian.Uint64(b[:])
}

// Client talks to one rrserver deployment. It is safe for concurrent use:
// the scheme is fetched once and the sampler state is mutex-guarded, so one
// Client can front many reporting goroutines (each draw is serialized, which
// is fine — sampling is tens of nanoseconds against a network round trip).
type Client struct {
	base string
	hc   *http.Client

	mu      sync.Mutex
	scheme  rr.Scheme
	version string
	rng     *randx.Source
	z       float64
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying HTTP client (e.g. one with a
// timeout or a test transport).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithSeed makes the client's disguise draws deterministic — for tests and
// simulations only; production respondents should keep the default
// per-client random seeding irrelevant by being distinct processes.
func WithSeed(seed uint64) Option {
	return func(c *Client) { c.rng = randx.New(seed) }
}

// New returns a client for the service at baseURL (e.g.
// "http://127.0.0.1:8433"). No network traffic happens until the first call.
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base: strings.TrimRight(baseURL, "/"),
		hc:   http.DefaultClient,
		rng:  randx.New(randomSeed()),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Scheme returns the deployed disguise matrix, fetching and caching the
// scheme on first use. It fails for a non-dense deployment (the sketch has
// no matrix to hand out); use DeployedScheme for the scheme-generic form.
func (c *Client) Scheme(ctx context.Context) (*rr.Matrix, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.ensureSchemeLocked(ctx); err != nil {
		return nil, err
	}
	m, ok := c.scheme.(*rr.Matrix)
	if !ok {
		return nil, fmt.Errorf("rrclient: deployed scheme is %q, not a dense matrix; use DeployedScheme", c.scheme.Kind())
	}
	return m, nil
}

// DeployedScheme returns the deployed disguise scheme, fetching and caching
// it on first use.
func (c *Client) DeployedScheme(ctx context.Context) (rr.Scheme, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.ensureSchemeLocked(ctx); err != nil {
		return nil, err
	}
	return c.scheme, nil
}

// SchemeVersion returns the cached scheme's wire fingerprint (the server's
// /v1/scheme ETag), fetching the scheme on first use.
func (c *Client) SchemeVersion(ctx context.Context) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.ensureSchemeLocked(ctx); err != nil {
		return "", err
	}
	return c.version, nil
}

// ensureSchemeLocked fetches GET /v1/scheme once and caches the decoded
// scheme and its version. New servers carry a kind-tagged envelope; the
// legacy matrix-only body (from servers predating the scheme abstraction, or
// bare-matrix test fakes) is accepted as a dense scheme.
func (c *Client) ensureSchemeLocked(ctx context.Context) error {
	if c.scheme != nil {
		return nil
	}
	resp, _, err := c.fetchScheme(ctx, "")
	if err != nil || resp == nil {
		return err
	}
	return c.adoptSchemeLocked(resp)
}

// fetchScheme runs GET /v1/scheme. A non-empty ifNoneMatch is sent as
// If-None-Match; a 304 answer returns (nil, etag, nil).
func (c *Client) fetchScheme(ctx context.Context, ifNoneMatch string) (*rrapi.SchemeResponse, string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/scheme", nil)
	if err != nil {
		return nil, "", fmt.Errorf("rrclient: %w", err)
	}
	if ifNoneMatch != "" {
		req.Header.Set("If-None-Match", ifNoneMatch)
	}
	hr, err := c.hc.Do(req)
	if err != nil {
		return nil, "", fmt.Errorf("rrclient: GET /v1/scheme: %w", err)
	}
	defer hr.Body.Close()
	etag := hr.Header.Get("ETag")
	if hr.StatusCode == http.StatusNotModified {
		return nil, etag, nil
	}
	if hr.StatusCode/100 != 2 {
		var apiErr rrapi.ErrorResponse
		if err := json.NewDecoder(io.LimitReader(hr.Body, 1<<16)).Decode(&apiErr); err == nil && apiErr.Error != "" {
			return nil, etag, fmt.Errorf("rrclient: GET /v1/scheme: %s (HTTP %d)", apiErr.Error, hr.StatusCode)
		}
		return nil, etag, fmt.Errorf("rrclient: GET /v1/scheme: HTTP %d", hr.StatusCode)
	}
	var resp rrapi.SchemeResponse
	if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
		return nil, etag, fmt.Errorf("rrclient: decoding /v1/scheme response: %w", err)
	}
	return &resp, etag, nil
}

// adoptSchemeLocked decodes a scheme response into the cache.
func (c *Client) adoptSchemeLocked(resp *rrapi.SchemeResponse) error {
	scheme, version, err := decodeScheme(resp)
	if err != nil {
		return err
	}
	c.scheme, c.version, c.z = scheme, version, resp.Z
	return nil
}

// decodeScheme turns a /v1/scheme body into a scheme and its fingerprint,
// preferring the envelope and falling back to the legacy matrix field.
func decodeScheme(resp *rrapi.SchemeResponse) (rr.Scheme, string, error) {
	var scheme rr.Scheme
	switch {
	case len(resp.Scheme) > 0:
		s, err := rr.UnmarshalScheme(resp.Scheme)
		if err != nil {
			return nil, "", fmt.Errorf("rrclient: decoding scheme envelope: %w", err)
		}
		scheme = s
	case resp.Matrix != nil:
		scheme = resp.Matrix
	default:
		return nil, "", fmt.Errorf("rrclient: scheme response has no scheme")
	}
	version := resp.Version
	if version == "" {
		v, err := rr.SchemeVersion(scheme)
		if err != nil {
			return nil, "", fmt.Errorf("rrclient: fingerprinting scheme: %w", err)
		}
		version = v
	}
	return scheme, version, nil
}

// SchemeChanged asks the server whether the deployed scheme differs from the
// cached one, using If-None-Match against the scheme ETag so an unchanged
// deployment costs a bodyless 304. It never swaps the cached scheme — call
// RefreshScheme to adopt a new deployment. Without a cached scheme it
// fetches and caches one, reporting no change.
func (c *Client) SchemeChanged(ctx context.Context) (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.scheme == nil {
		return false, c.ensureSchemeLocked(ctx)
	}
	resp, _, err := c.fetchScheme(ctx, `"`+c.version+`"`)
	if err != nil {
		return false, err
	}
	if resp == nil { // 304: deployment unchanged
		return false, nil
	}
	_, version, err := decodeScheme(resp)
	if err != nil {
		return false, err
	}
	return version != c.version, nil
}

// RefreshScheme drops the cached scheme and fetches the currently deployed
// one, e.g. after SchemeChanged reports a redeployment.
func (c *Client) RefreshScheme(ctx context.Context) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.scheme = nil
	return c.ensureSchemeLocked(ctx)
}

// Disguise samples the disguised report for one private value, locally.
// Nothing is sent; combine with Report/ReportBatch, or use ReportValue.
func (c *Client) Disguise(ctx context.Context, value int) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.disguiseLocked(ctx, value)
}

func (c *Client) disguiseLocked(ctx context.Context, value int) (int, error) {
	if err := c.ensureSchemeLocked(ctx); err != nil {
		return 0, err
	}
	if value < 0 || value >= c.scheme.Domain() {
		return 0, fmt.Errorf("rrclient: value %d outside the %d-category domain", value, c.scheme.Domain())
	}
	return c.scheme.DisguiseValue(value, c.rng)
}

// ReportValue disguises one private value locally and submits only the
// disguised report; it returns what was reported (never the input).
func (c *Client) ReportValue(ctx context.Context, value int) (int, error) {
	disguised, err := c.Disguise(ctx, value)
	if err != nil {
		return 0, err
	}
	if err := c.Report(ctx, disguised); err != nil {
		return 0, err
	}
	return disguised, nil
}

// ReportValues disguises each private value locally and submits the whole
// batch in one POST /v1/reports; it returns the disguised batch.
func (c *Client) ReportValues(ctx context.Context, values []int) ([]int, error) {
	c.mu.Lock()
	disguised := make([]int, len(values))
	for k, v := range values {
		d, err := c.disguiseLocked(ctx, v)
		if err != nil {
			c.mu.Unlock()
			return nil, err
		}
		disguised[k] = d
	}
	c.mu.Unlock()
	if err := c.ReportBatch(ctx, disguised); err != nil {
		return nil, err
	}
	return disguised, nil
}

// Report submits one already-disguised report (POST /v1/report). Most
// callers want ReportValue, which disguises first.
func (c *Client) Report(ctx context.Context, disguised int) error {
	var resp rrapi.IngestResponse
	return c.do(ctx, http.MethodPost, "/v1/report", rrapi.ReportRequest{Report: disguised}, &resp)
}

// ReportBatch submits a batch of already-disguised reports
// (POST /v1/reports), which land atomically on the collector.
func (c *Client) ReportBatch(ctx context.Context, disguised []int) error {
	var resp rrapi.IngestResponse
	return c.do(ctx, http.MethodPost, "/v1/reports", rrapi.BatchRequest{Reports: disguised}, &resp)
}

// Estimate fetches the server's current debiased reconstruction with
// per-category confidence half-widths. margin > 0 additionally asks the
// server to project the total report count needed to reach that margin
// (EstimateResponse.ReportsForMargin). Dense deployments only; sketch
// deployments answer point queries via EstimateCategories.
func (c *Client) Estimate(ctx context.Context, margin float64) (*rrapi.EstimateResponse, error) {
	path := "/v1/estimate"
	if margin > 0 {
		path += "?margin=" + strconv.FormatFloat(margin, 'g', -1, 64)
	}
	var resp rrapi.EstimateResponse
	if err := c.do(ctx, http.MethodGet, path, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// EstimateCategories fetches debiased point estimates for the given
// original-domain categories (GET /v1/estimate?categories=...), the query
// form sketch deployments answer.
func (c *Client) EstimateCategories(ctx context.Context, categories []int) (*rrapi.EstimateResponse, error) {
	if len(categories) == 0 {
		return nil, fmt.Errorf("rrclient: EstimateCategories needs at least one category")
	}
	parts := make([]string, len(categories))
	for i, v := range categories {
		parts[i] = strconv.Itoa(v)
	}
	var resp rrapi.EstimateResponse
	path := "/v1/estimate?categories=" + strings.Join(parts, ",")
	if err := c.do(ctx, http.MethodGet, path, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// HeavyHitters fetches the categories whose estimated frequency is at least
// threshold (GET /v1/heavyhitters), capped at limit when limit > 0.
func (c *Client) HeavyHitters(ctx context.Context, threshold float64, limit int) (*rrapi.HeavyHittersResponse, error) {
	path := "/v1/heavyhitters?threshold=" + strconv.FormatFloat(threshold, 'g', -1, 64)
	if limit > 0 {
		path += "&limit=" + strconv.Itoa(limit)
	}
	var resp rrapi.HeavyHittersResponse
	if err := c.do(ctx, http.MethodGet, path, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// do runs one JSON round trip. Non-2xx answers are surfaced as errors
// carrying the server's ErrorResponse message.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("rrclient: encoding request: %w", err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return fmt.Errorf("rrclient: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("rrclient: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var apiErr rrapi.ErrorResponse
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&apiErr); err == nil && apiErr.Error != "" {
			return fmt.Errorf("rrclient: %s %s: %s (HTTP %d)", method, path, apiErr.Error, resp.StatusCode)
		}
		return fmt.Errorf("rrclient: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("rrclient: decoding %s response: %w", path, err)
	}
	return nil
}
