// Package rrclient is the respondent-side disguise SDK for the LDP
// collection service (cmd/rrserver). It enforces the paper's Section I
// privacy boundary in code: the client fetches the deployed disguise matrix
// once, samples the disguised category locally — the same alias-sampler
// construction collector.Respondent uses — and reports only the disguise.
// The private value never leaves the process.
package rrclient

import (
	"bytes"
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"optrr/internal/randx"
	"optrr/internal/rr"
	"optrr/internal/rrapi"
)

// randomSeed seeds a production client's disguise draws from the OS entropy
// pool — respondent privacy must not hinge on a guessable stream — falling
// back to the clock only if that fails.
func randomSeed() uint64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		return uint64(time.Now().UnixNano())
	}
	return binary.LittleEndian.Uint64(b[:])
}

// Client talks to one rrserver deployment. It is safe for concurrent use:
// the scheme is fetched once and the sampler state is mutex-guarded, so one
// Client can front many reporting goroutines (each draw is serialized, which
// is fine — sampling is tens of nanoseconds against a network round trip).
type Client struct {
	base string
	hc   *http.Client

	mu       sync.Mutex
	m        *rr.Matrix
	samplers []*randx.Alias // one per original category (matrix column)
	rng      *randx.Source
	z        float64
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying HTTP client (e.g. one with a
// timeout or a test transport).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithSeed makes the client's disguise draws deterministic — for tests and
// simulations only; production respondents should keep the default
// per-client random seeding irrelevant by being distinct processes.
func WithSeed(seed uint64) Option {
	return func(c *Client) { c.rng = randx.New(seed) }
}

// New returns a client for the service at baseURL (e.g.
// "http://127.0.0.1:8433"). No network traffic happens until the first call.
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base: strings.TrimRight(baseURL, "/"),
		hc:   http.DefaultClient,
		rng:  randx.New(randomSeed()),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Scheme returns the deployed disguise matrix, fetching and caching it (and
// the derived per-category samplers) on first use.
func (c *Client) Scheme(ctx context.Context) (*rr.Matrix, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.ensureSchemeLocked(ctx); err != nil {
		return nil, err
	}
	return c.m, nil
}

// ensureSchemeLocked fetches GET /v1/scheme once and builds the alias
// samplers, one per matrix column, exactly as collector.Respondent does.
func (c *Client) ensureSchemeLocked(ctx context.Context) error {
	if c.m != nil {
		return nil
	}
	var resp rrapi.SchemeResponse
	if err := c.do(ctx, http.MethodGet, "/v1/scheme", nil, &resp); err != nil {
		return err
	}
	if resp.Matrix == nil {
		return fmt.Errorf("rrclient: scheme response has no matrix")
	}
	n := resp.Matrix.N()
	samplers := make([]*randx.Alias, n)
	for i := 0; i < n; i++ {
		a, err := randx.NewAlias(resp.Matrix.Column(i))
		if err != nil {
			return fmt.Errorf("rrclient: scheme column %d: %w", i, err)
		}
		samplers[i] = a
	}
	c.m, c.samplers, c.z = resp.Matrix, samplers, resp.Z
	return nil
}

// Disguise samples the disguised category for one private value, locally.
// Nothing is sent; combine with Report/ReportBatch, or use ReportValue.
func (c *Client) Disguise(ctx context.Context, value int) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.disguiseLocked(ctx, value)
}

func (c *Client) disguiseLocked(ctx context.Context, value int) (int, error) {
	if err := c.ensureSchemeLocked(ctx); err != nil {
		return 0, err
	}
	if value < 0 || value >= len(c.samplers) {
		return 0, fmt.Errorf("rrclient: value %d outside the %d-category domain", value, len(c.samplers))
	}
	return c.samplers[value].Draw(c.rng), nil
}

// ReportValue disguises one private value locally and submits only the
// disguised category; it returns what was reported (never the input).
func (c *Client) ReportValue(ctx context.Context, value int) (int, error) {
	disguised, err := c.Disguise(ctx, value)
	if err != nil {
		return 0, err
	}
	if err := c.Report(ctx, disguised); err != nil {
		return 0, err
	}
	return disguised, nil
}

// ReportValues disguises each private value locally and submits the whole
// batch in one POST /v1/reports; it returns the disguised batch.
func (c *Client) ReportValues(ctx context.Context, values []int) ([]int, error) {
	c.mu.Lock()
	disguised := make([]int, len(values))
	for k, v := range values {
		d, err := c.disguiseLocked(ctx, v)
		if err != nil {
			c.mu.Unlock()
			return nil, err
		}
		disguised[k] = d
	}
	c.mu.Unlock()
	if err := c.ReportBatch(ctx, disguised); err != nil {
		return nil, err
	}
	return disguised, nil
}

// Report submits one already-disguised category (POST /v1/report). Most
// callers want ReportValue, which disguises first.
func (c *Client) Report(ctx context.Context, disguised int) error {
	var resp rrapi.IngestResponse
	return c.do(ctx, http.MethodPost, "/v1/report", rrapi.ReportRequest{Report: disguised}, &resp)
}

// ReportBatch submits a batch of already-disguised categories
// (POST /v1/reports), which land atomically on the collector.
func (c *Client) ReportBatch(ctx context.Context, disguised []int) error {
	var resp rrapi.IngestResponse
	return c.do(ctx, http.MethodPost, "/v1/reports", rrapi.BatchRequest{Reports: disguised}, &resp)
}

// Estimate fetches the server's current debiased reconstruction with
// per-category confidence half-widths. margin > 0 additionally asks the
// server to project the total report count needed to reach that margin
// (EstimateResponse.ReportsForMargin).
func (c *Client) Estimate(ctx context.Context, margin float64) (*rrapi.EstimateResponse, error) {
	path := "/v1/estimate"
	if margin > 0 {
		path += "?margin=" + strconv.FormatFloat(margin, 'g', -1, 64)
	}
	var resp rrapi.EstimateResponse
	if err := c.do(ctx, http.MethodGet, path, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// do runs one JSON round trip. Non-2xx answers are surfaced as errors
// carrying the server's ErrorResponse message.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("rrclient: encoding request: %w", err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return fmt.Errorf("rrclient: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("rrclient: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var apiErr rrapi.ErrorResponse
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&apiErr); err == nil && apiErr.Error != "" {
			return fmt.Errorf("rrclient: %s %s: %s (HTTP %d)", method, path, apiErr.Error, resp.StatusCode)
		}
		return fmt.Errorf("rrclient: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("rrclient: decoding %s response: %w", path, err)
	}
	return nil
}
