package pareto

import (
	"math"
	"testing"

	"optrr/internal/randx"
)

// randomPoint draws a point with the given number of objectives from a small
// discrete value grid, so that ties and strict dominance are both common —
// uniform continuous draws would almost never produce the equal-coordinate
// edge cases the dominance axioms are most fragile around.
func randomPoint(dim int, rng *randx.Source) Point {
	draw := func() float64 { return float64(rng.Intn(5)) / 4 }
	extras := make([]float64, dim-2)
	for i := range extras {
		extras[i] = draw()
	}
	return NewPoint(draw(), draw(), extras...)
}

// TestDominanceProperties checks the strict-partial-order axioms of
// Dominates and the compatibility of WeaklyDominates on sampled points for
// k ∈ {2, 3, 4}: irreflexivity, antisymmetry, transitivity, and
// weak-dominance = dominance-or-equality.
func TestDominanceProperties(t *testing.T) {
	for _, dim := range []int{2, 3, 4} {
		rng := randx.New(uint64(dim) * 7919)
		pts := make([]Point, 60)
		for i := range pts {
			pts[i] = randomPoint(dim, rng)
		}
		for i, p := range pts {
			if p.Dominates(p) {
				t.Fatalf("dim %d: point %d dominates itself", dim, i)
			}
			if !p.WeaklyDominates(p) {
				t.Fatalf("dim %d: point %d does not weakly dominate itself", dim, i)
			}
			for j, q := range pts {
				if p.Dominates(q) && q.Dominates(p) {
					t.Fatalf("dim %d: symmetric dominance between %d and %d", dim, i, j)
				}
				// Weak dominance must be exactly dominance-or-equality.
				want := p.Dominates(q) || p == q
				eqAllAxes := true
				for a := 0; a < dim; a++ {
					if p.At(a) != q.At(a) {
						eqAllAxes = false
					}
				}
				if eqAllAxes {
					want = true
				}
				if got := p.WeaklyDominates(q); got != want {
					t.Fatalf("dim %d: WeaklyDominates(%v, %v) = %v, want %v", dim, p, q, got, want)
				}
				for l, r := range pts {
					if p.Dominates(q) && q.Dominates(r) && !p.Dominates(r) {
						t.Fatalf("dim %d: transitivity broken over %d, %d, %d", dim, i, j, l)
					}
				}
			}
		}
	}
}

func TestNewPointAccessors(t *testing.T) {
	p := NewPoint(0.5, 0.25, 1.5, 2.5)
	if p.Dim() != 4 {
		t.Fatalf("Dim = %d, want 4", p.Dim())
	}
	want := []float64{0.5, 0.25, 1.5, 2.5}
	for i, w := range want {
		if p.At(i) != w {
			t.Fatalf("At(%d) = %v, want %v", i, p.At(i), w)
		}
	}
	if p.ExtraAt(0) != 1.5 || p.ExtraAt(1) != 2.5 {
		t.Fatalf("ExtraAt mismatch: %v, %v", p.ExtraAt(0), p.ExtraAt(1))
	}
	ex := p.Extras()
	if len(ex) != 2 || ex[0] != 1.5 || ex[1] != 2.5 {
		t.Fatalf("Extras = %v", ex)
	}
	// Two-dimensional points report nil extras and stay comparable to the
	// plain struct literal.
	q := NewPoint(0.5, 0.25)
	if q.Extras() != nil {
		t.Fatalf("2-D point has extras %v", q.Extras())
	}
	if q != (Point{Privacy: 0.5, Utility: 0.25}) {
		t.Fatal("NewPoint 2-D differs from the struct literal")
	}
}

func TestNewPointTooManyExtrasPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected a panic for too many extras")
		}
	}()
	NewPoint(0, 0, 1, 2, 3, 4, 5)
}

// TestDominatesKDim pins the axis directions: privacy is maximized, utility
// and every extra axis minimized.
func TestDominatesKDim(t *testing.T) {
	base := NewPoint(0.5, 0.2, 1.0)
	cases := []struct {
		name string
		p, q Point
		want bool
	}{
		{"better extra dominates", NewPoint(0.5, 0.2, 0.5), base, true},
		{"worse extra blocks", NewPoint(0.6, 0.1, 2.0), base, false},
		{"equal never dominates", base, base, false},
		{"all better dominates", NewPoint(0.6, 0.1, 0.5), base, true},
		{"mixed incomparable", NewPoint(0.6, 0.3, 0.5), base, false},
	}
	for _, c := range cases {
		if got := c.p.Dominates(c.q); got != c.want {
			t.Errorf("%s: Dominates = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestDistanceKDim(t *testing.T) {
	p := NewPoint(1, 2, 3)
	q := NewPoint(2, 4, 6)
	want := math.Sqrt(1 + 4 + 9)
	if got := p.Distance(q); math.Abs(got-want) > 1e-15 {
		t.Fatalf("Distance = %v, want %v", got, want)
	}
	// 2-D distance is unchanged by the generalization.
	a := Point{Privacy: 1, Utility: 2}
	b := Point{Privacy: 4, Utility: 6}
	if got := a.Distance(b); got != 5 {
		t.Fatalf("2-D Distance = %v, want 5", got)
	}
}

// TestSortByPrivacyNaNTotal checks that NaN objective values sort last,
// deterministically, and that re-sorting a shuffled copy reproduces the same
// order.
func TestSortByPrivacyNaNTotal(t *testing.T) {
	nan := math.NaN()
	pts := []Point{
		{Privacy: nan, Utility: 1},
		{Privacy: 0.5, Utility: nan},
		{Privacy: 0.5, Utility: 0.2},
		{Privacy: 0.1, Utility: 0.9},
		{Privacy: nan, Utility: nan},
		{Privacy: 0.5, Utility: 0.1},
	}
	SortByPrivacy(pts)
	// Finite privacy ascending first; within privacy 0.5 the NaN utility is
	// last; NaN privacy sorts after all numbers.
	wantPriv := []float64{0.1, 0.5, 0.5, 0.5, nan, nan}
	for i, w := range wantPriv {
		got := pts[i].Privacy
		if math.IsNaN(w) != math.IsNaN(got) || (!math.IsNaN(w) && got != w) {
			t.Fatalf("pos %d: privacy %v, want %v (order %v)", i, got, w, pts)
		}
	}
	if pts[1].Utility != 0.1 || pts[2].Utility != 0.2 || !math.IsNaN(pts[3].Utility) {
		t.Fatalf("NaN utility did not sort last within its privacy group: %v", pts)
	}

	// Determinism: shuffling and re-sorting reproduces the exact order.
	shuffled := append([]Point(nil), pts...)
	rng := randx.New(99)
	for i := len(shuffled) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	}
	SortByPrivacy(shuffled)
	for i := range pts {
		same := pts[i] == shuffled[i] ||
			(math.IsNaN(pts[i].Privacy) && math.IsNaN(shuffled[i].Privacy) &&
				(pts[i].Utility == shuffled[i].Utility ||
					math.IsNaN(pts[i].Utility) && math.IsNaN(shuffled[i].Utility))) ||
			(pts[i].Privacy == shuffled[i].Privacy &&
				math.IsNaN(pts[i].Utility) && math.IsNaN(shuffled[i].Utility))
		if !same {
			t.Fatalf("pos %d differs after re-sort: %v vs %v", i, pts[i], shuffled[i])
		}
	}
}

// TestUtilityAtContract pins the documented non-finite behaviour: +Inf
// utility qualifies, NaN utility and NaN privacy are skipped.
func TestUtilityAtContract(t *testing.T) {
	inf, nan := math.Inf(1), math.NaN()
	t.Run("inf qualifies when alone", func(t *testing.T) {
		u, ok := UtilityAt([]Point{{Privacy: 0.9, Utility: inf}}, 0.5)
		if !ok || !math.IsInf(u, 1) {
			t.Fatalf("got (%v, %v), want (+Inf, true)", u, ok)
		}
	})
	t.Run("finite beats inf", func(t *testing.T) {
		u, ok := UtilityAt([]Point{{Privacy: 0.9, Utility: inf}, {Privacy: 0.8, Utility: 0.3}}, 0.5)
		if !ok || u != 0.3 {
			t.Fatalf("got (%v, %v), want (0.3, true)", u, ok)
		}
	})
	t.Run("nan utility skipped", func(t *testing.T) {
		if _, ok := UtilityAt([]Point{{Privacy: 0.9, Utility: nan}}, 0.5); ok {
			t.Fatal("NaN utility qualified")
		}
	})
	t.Run("nan privacy skipped", func(t *testing.T) {
		if _, ok := UtilityAt([]Point{{Privacy: nan, Utility: 0.1}}, 0.5); ok {
			t.Fatal("NaN privacy qualified")
		}
	})
	t.Run("empty", func(t *testing.T) {
		if _, ok := UtilityAt(nil, 0.5); ok {
			t.Fatal("empty front qualified")
		}
	})
}

func TestObjectiveAt(t *testing.T) {
	pts := []Point{
		NewPoint(0.4, 0.10, 3.0),
		NewPoint(0.6, 0.20, 2.0),
		NewPoint(0.8, 0.30, 1.0),
	}
	// Objective 0 (privacy) is maximized over the qualifying set.
	if v, ok := ObjectiveAt(pts, 0, 0.5); !ok || v != 0.8 {
		t.Fatalf("obj 0: got (%v, %v)", v, ok)
	}
	// Objective 1 (utility) is minimized.
	if v, ok := ObjectiveAt(pts, 1, 0.5); !ok || v != 0.20 {
		t.Fatalf("obj 1: got (%v, %v)", v, ok)
	}
	// Extra objective 2 is minimized.
	if v, ok := ObjectiveAt(pts, 2, 0.5); !ok || v != 1.0 {
		t.Fatalf("obj 2: got (%v, %v)", v, ok)
	}
	// Out-of-range objective on every point: no answer.
	if _, ok := ObjectiveAt(pts, 3, 0.5); ok {
		t.Fatal("out-of-range objective qualified")
	}
	// Matches UtilityAt on objective 1.
	u, uok := UtilityAt(pts, 0.5)
	v, vok := ObjectiveAt(pts, 1, 0.5)
	if u != v || uok != vok {
		t.Fatalf("ObjectiveAt(1) = (%v, %v), UtilityAt = (%v, %v)", v, vok, u, uok)
	}
}

func TestObjectiveRange(t *testing.T) {
	pts := []Point{
		NewPoint(0.1, 5, 7),
		NewPoint(0.9, 2, 3),
		NewPoint(0.5, math.NaN(), 11),
	}
	if lo, hi, ok := ObjectiveRange(pts, 0); !ok || lo != 0.1 || hi != 0.9 {
		t.Fatalf("obj 0 range (%v, %v, %v)", lo, hi, ok)
	}
	if lo, hi, ok := ObjectiveRange(pts, 1); !ok || lo != 2 || hi != 5 {
		t.Fatalf("obj 1 range skipping NaN (%v, %v, %v)", lo, hi, ok)
	}
	if lo, hi, ok := ObjectiveRange(pts, 2); !ok || lo != 3 || hi != 11 {
		t.Fatalf("obj 2 range (%v, %v, %v)", lo, hi, ok)
	}
	if _, _, ok := ObjectiveRange(pts, 5); ok {
		t.Fatal("missing objective reported a range")
	}
	if _, _, ok := ObjectiveRange(nil, 0); ok {
		t.Fatal("empty slice reported a range")
	}
	// All-NaN column: no range.
	if _, _, ok := ObjectiveRange([]Point{{Privacy: math.NaN()}}, 0); ok {
		t.Fatal("all-NaN column reported a range")
	}
}

// TestFrontKDim checks non-dominated extraction on a 3-D set where the
// third axis changes the outcome versus the 2-D projection.
func TestFrontKDim(t *testing.T) {
	pts := []Point{
		NewPoint(0.5, 0.2, 1.0), // dominated in 2-D projection by the next point…
		NewPoint(0.6, 0.1, 2.0), // …but its better third axis keeps it in the front
		NewPoint(0.4, 0.3, 3.0), // dominated by point 0 in all three axes
	}
	idx := Front(pts)
	if len(idx) != 2 || idx[0] != 0 || idx[1] != 1 {
		t.Fatalf("Front = %v, want [0 1]", idx)
	}
	// The 2-D projections of the same points collapse to a single point.
	flat := []Point{
		{Privacy: 0.5, Utility: 0.2},
		{Privacy: 0.6, Utility: 0.1},
		{Privacy: 0.4, Utility: 0.3},
	}
	if idx := Front(flat); len(idx) != 1 || idx[0] != 1 {
		t.Fatalf("2-D Front = %v, want [1]", idx)
	}
}
