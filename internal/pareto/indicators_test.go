package pareto

import (
	"math"
	"math/rand"
	"testing"
)

// TestHypervolumeK2DMatchesHypervolume pins the 2-D dispatch: for plain
// two-objective points HypervolumeK must be the existing Hypervolume, bit
// for bit, including clipping and empty inputs.
func TestHypervolumeK2DMatchesHypervolume(t *testing.T) {
	cases := [][]Point{
		nil,
		{{Privacy: 0.4, Utility: 0.6}},
		{{Privacy: 0.2, Utility: 0.5}, {Privacy: 0.5, Utility: 0.7}, {Privacy: 0.8, Utility: 0.9}},
		{{Privacy: -0.5, Utility: 0.5}, {Privacy: 0.3, Utility: 2}}, // clipped points
		{{Privacy: 0.3, Utility: 0.1}, {Privacy: 0.3, Utility: 0.1}},
	}
	for i, pts := range cases {
		want := Hypervolume(pts, 0, 1)
		got := HypervolumeK(pts, Point{Privacy: 0, Utility: 1})
		if got != want {
			t.Errorf("case %d: HypervolumeK = %v, Hypervolume = %v", i, got, want)
		}
	}
}

// TestHypervolumeK3DBoxes checks exact volumes on hand-computable 3-D
// configurations (one extra minimized axis).
func TestHypervolumeK3DBoxes(t *testing.T) {
	ref := NewPoint(0, 1, 1)
	// One point: a single box (privacy gain 0.5) × (utility gain 0.6) ×
	// (extra gain 0.8).
	one := []Point{NewPoint(0.5, 0.4, 0.2)}
	if got, want := HypervolumeK(one, ref), 0.5*0.6*0.8; math.Abs(got-want) > 1e-12 {
		t.Fatalf("single box = %v, want %v", got, want)
	}
	// Two nested boxes: the second is dominated, volume unchanged.
	nested := append(one, NewPoint(0.4, 0.5, 0.3))
	if got, want := HypervolumeK(nested, ref), 0.5*0.6*0.8; math.Abs(got-want) > 1e-12 {
		t.Fatalf("nested boxes = %v, want %v", got, want)
	}
	// Two disjointly-strong boxes: inclusion-exclusion by hand.
	// a: gains (0.5, 0.6, 0.8); b: gains (0.8, 0.3, 0.2).
	two := []Point{NewPoint(0.5, 0.4, 0.2), NewPoint(0.8, 0.7, 0.8)}
	want := 0.5*0.6*0.8 + 0.8*0.3*0.2 - 0.5*0.3*0.2
	if got := HypervolumeK(two, ref); math.Abs(got-want) > 1e-12 {
		t.Fatalf("two boxes = %v, want %v", got, want)
	}
	// A point worse than the reference on one axis contributes nothing.
	clipped := append(two, NewPoint(0.9, 0.2, 1.5))
	if got := HypervolumeK(clipped, ref); math.Abs(got-want) > 1e-12 {
		t.Fatalf("clipped boxes = %v, want %v", got, want)
	}
}

// hvMonteCarlo estimates the k-dim hypervolume by sampling the reference
// box, the brute-force oracle for the sweep.
func hvMonteCarlo(pts []Point, ref Point, dim int, samples int, rng *rand.Rand) float64 {
	// Axis ranges: privacy in [ref, ref+1], minimized axes in [ref-1, ref].
	hit := 0
	x := make([]float64, dim)
	for s := 0; s < samples; s++ {
		for t := 0; t < dim; t++ {
			u := rng.Float64()
			if t == 0 {
				x[t] = ref.At(t) + u
			} else {
				x[t] = ref.At(t) - u
			}
		}
		for _, p := range pts {
			dominated := p.At(0) >= x[0]
			for t := 1; t < dim && dominated; t++ {
				dominated = p.At(t) <= x[t]
			}
			if dominated {
				hit++
				break
			}
		}
	}
	return float64(hit) / float64(samples)
}

// TestHypervolumeKAgainstMonteCarlo cross-checks the sweep against sampling
// for k = 3 and k = 4 on random fronts inside the unit reference box.
func TestHypervolumeKAgainstMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, dim := range []int{3, 4} {
		for trial := 0; trial < 3; trial++ {
			n := 5 + rng.Intn(10)
			pts := make([]Point, n)
			for i := range pts {
				extras := make([]float64, dim-2)
				for t := range extras {
					extras[t] = 1 - rng.Float64()
				}
				pts[i] = NewPoint(rng.Float64(), 1-rng.Float64(), extras...)
			}
			refExtras := make([]float64, dim-2)
			for t := range refExtras {
				refExtras[t] = 1
			}
			ref := NewPoint(0, 1, refExtras...)
			got := HypervolumeK(pts, ref)
			est := hvMonteCarlo(pts, ref, dim, 200000, rng)
			if math.Abs(got-est) > 0.01 {
				t.Errorf("dim %d trial %d: sweep %v vs Monte-Carlo %v", dim, trial, got, est)
			}
		}
	}
}

// TestHypervolumeKDominatedInvariance: adding dominated points must not
// change the volume.
func TestHypervolumeKDominatedInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts := make([]Point, 8)
	for i := range pts {
		pts[i] = NewPoint(rng.Float64(), 1-rng.Float64(), 1-rng.Float64())
	}
	ref := NewPoint(0, 1, 1)
	base := HypervolumeK(pts, ref)
	withDominated := append(append([]Point(nil), pts...),
		NewPoint(pts[0].Privacy/2, pts[0].Utility*1.5, pts[0].ExtraAt(0)*1.5))
	if got := HypervolumeK(withDominated, ref); math.Abs(got-base) > 1e-12 {
		t.Fatalf("dominated point changed volume: %v vs %v", got, base)
	}
}

func TestAdditiveEpsilon(t *testing.T) {
	a := []Point{{Privacy: 0.5, Utility: 0.2}, {Privacy: 0.7, Utility: 0.4}}
	// a weakly dominates b: epsilon 0.
	b := []Point{{Privacy: 0.5, Utility: 0.2}, {Privacy: 0.6, Utility: 0.5}}
	if got := AdditiveEpsilon(a, b); got != 0 {
		t.Fatalf("dominating front epsilon = %v, want 0", got)
	}
	// b's second point has privacy 0.8: the best a can do is 0.7 shifted by
	// 0.1 (its utility 0.4 ≤ 0.6 already holds).
	b = []Point{{Privacy: 0.8, Utility: 0.6}}
	if got := AdditiveEpsilon(a, b); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("epsilon = %v, want 0.1", got)
	}
	// The max over both axes rules: needing 0.1 privacy and 0.3 utility
	// costs 0.3.
	b = []Point{{Privacy: 0.8, Utility: 0.1}}
	if got := AdditiveEpsilon(a, b); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("epsilon = %v, want 0.3", got)
	}
	// Extra axes participate.
	a3 := []Point{NewPoint(0.5, 0.2, 0.3)}
	b3 := []Point{NewPoint(0.5, 0.2, 0.1)}
	if got := AdditiveEpsilon(a3, b3); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("3-D epsilon = %v, want 0.2", got)
	}
	// Edge cases.
	if got := AdditiveEpsilon(a, nil); got != 0 {
		t.Fatalf("empty b epsilon = %v, want 0", got)
	}
	if got := AdditiveEpsilon(nil, b); !math.IsInf(got, 1) {
		t.Fatalf("empty a epsilon = %v, want +Inf", got)
	}
	if got := AdditiveEpsilon(a, []Point{{Privacy: math.NaN(), Utility: 0.5}}); !math.IsNaN(got) {
		t.Fatalf("NaN target epsilon = %v, want NaN", got)
	}
}

// TestAdditiveEpsilonSelf: every front is at epsilon 0 from itself.
func TestAdditiveEpsilonSelf(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := make([]Point, 12)
	for i := range pts {
		pts[i] = NewPoint(rng.Float64(), rng.Float64(), rng.Float64())
	}
	if got := AdditiveEpsilon(pts, pts); got != 0 {
		t.Fatalf("self epsilon = %v, want 0", got)
	}
}

func TestSpread(t *testing.T) {
	// Perfectly uniform front: spread 0.
	uniform := []Point{
		{Privacy: 0.1, Utility: 0.9}, {Privacy: 0.2, Utility: 0.8},
		{Privacy: 0.3, Utility: 0.7}, {Privacy: 0.4, Utility: 0.6},
	}
	if got := Spread(uniform); got > 1e-12 {
		t.Fatalf("uniform spread = %v, want ~0", got)
	}
	// A clumped front spreads worse than a uniform one.
	clumped := []Point{
		{Privacy: 0.1, Utility: 0.9}, {Privacy: 0.101, Utility: 0.899},
		{Privacy: 0.102, Utility: 0.898}, {Privacy: 0.9, Utility: 0.1},
	}
	if got := Spread(clumped); got <= 0.1 {
		t.Fatalf("clumped spread = %v, want clearly > 0", got)
	}
	// Degenerate inputs.
	if got := Spread(nil); got != 0 {
		t.Fatalf("nil spread = %v, want 0", got)
	}
	if got := Spread(uniform[:2]); got != 0 {
		t.Fatalf("2-point spread = %v, want 0", got)
	}
	coincident := []Point{{Privacy: 0.5, Utility: 0.5}, {Privacy: 0.5, Utility: 0.5}, {Privacy: 0.5, Utility: 0.5}}
	if got := Spread(coincident); got != 0 {
		t.Fatalf("coincident spread = %v, want 0", got)
	}
}
