package pareto

// Front-quality indicators beyond the 2-D hypervolume of pareto.go: a
// k-dimensional hypervolume (k ≤ 2+MaxExtraObjectives), the additive-epsilon
// indicator, and a spread measure. Together they answer the questions the
// paper's evaluation (Section VI) asks of an evolved front — how much
// objective space it dominates, how far it sits from a reference front, and
// how evenly it covers its extent — and they are what the per-generation
// convergence telemetry and cmd/rrtrace report.

import "math"

// HypervolumeK returns the k-dimensional hypervolume dominated by the front
// of pts relative to the reference point ref, which must be weakly worse
// than every point on every axis (lower privacy, higher utility and extras).
// Larger is better. Points not strictly better than the reference on every
// axis contribute no volume (they are clipped, like in Hypervolume).
//
// For 2-D inputs (no extra objectives on pts or ref) this is exactly
// Hypervolume(pts, ref.Privacy, ref.Utility) — the same code path, bit for
// bit. Higher dimensions run a dominated-hyperbox sweep (hypervolume by
// slicing objectives): the boxes spanned between each point and the
// reference are swept along the last axis, each slab contributing its width
// times the (k−1)-dimensional volume of the boxes alive in it. Exact for
// every k this package supports; cost grows steeply with k, which is fine
// for k ≤ 2+MaxExtraObjectives and front sizes in the hundreds.
func HypervolumeK(pts []Point, ref Point) float64 {
	dim := ref.Dim()
	for _, p := range pts {
		if p.Dim() > dim {
			dim = p.Dim()
		}
	}
	if dim == 2 {
		return Hypervolume(pts, ref.Privacy, ref.Utility)
	}
	// Gain space: per-axis improvement over the reference, every axis
	// oriented "larger is better". A point contributes the box [0, g] and
	// the hypervolume is the volume of the union of those boxes.
	boxes := make([][]float64, 0, len(pts))
	for _, p := range pts {
		g := make([]float64, dim)
		clipped := false
		for t := 0; t < dim; t++ {
			var d float64
			if t == 0 {
				d = p.At(0) - ref.At(0) // privacy: maximized
			} else {
				d = ref.At(t) - axisValue(p, t) // minimized axes
			}
			if d <= 0 {
				clipped = true
				break
			}
			g[t] = d
		}
		if !clipped {
			boxes = append(boxes, g)
		}
	}
	return unionVolume(boxes, dim)
}

// axisValue reads objective t of p, treating axes the point does not carry
// as 0 — the canonical value of a missing minimized extra. Mixing dimensions
// in one front is a caller bug everywhere else in the package; here it
// degrades gracefully instead of panicking.
func axisValue(p Point, t int) float64 {
	if t < p.Dim() {
		return p.At(t)
	}
	return 0
}

// unionVolume computes the volume of the union of origin-anchored boxes
// [0,b[0]]×...×[0,b[dim-1]] by slicing along the last axis.
func unionVolume(boxes [][]float64, dim int) float64 {
	if len(boxes) == 0 {
		return 0
	}
	if dim == 1 {
		max := 0.0
		for _, b := range boxes {
			if b[0] > max {
				max = b[0]
			}
		}
		return max
	}
	if dim == 2 {
		return union2D(boxes)
	}
	// Sort the distinct heights along the last axis descending; each slab
	// between consecutive heights is covered by exactly the boxes at least
	// that tall, whose (dim−1)-volume is constant across the slab.
	order := make([]int, len(boxes))
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ { // insertion sort: n is small
		for j := i; j > 0 && boxes[order[j]][dim-1] > boxes[order[j-1]][dim-1]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	var volume float64
	alive := make([][]float64, 0, len(boxes))
	for i, idx := range order {
		alive = append(alive, boxes[idx])
		upper := boxes[idx][dim-1]
		lower := 0.0
		if i+1 < len(order) {
			lower = boxes[order[i+1]][dim-1]
		}
		if upper > lower {
			volume += (upper - lower) * unionVolume(alive, dim-1)
		}
	}
	return volume
}

// union2D is the exact area of a union of origin-anchored rectangles:
// sweep by descending width, each rectangle adding area only above the
// tallest rectangle at least as wide.
func union2D(boxes [][]float64) float64 {
	order := make([]int, len(boxes))
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && boxes[order[j]][0] > boxes[order[j-1]][0]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	var area, maxH float64
	for _, idx := range order {
		w, h := boxes[idx][0], boxes[idx][1]
		if h > maxH {
			area += w * (h - maxH)
			maxH = h
		}
	}
	return area
}

// AdditiveEpsilon returns the additive-epsilon indicator ε+(a, b): the
// smallest ε such that shifting every point of a by ε on every axis (toward
// worse values' direction of b) makes some a-point weakly dominate each
// b-point. Zero means a already weakly dominates all of b; larger values
// mean a sits farther from b. It is not symmetric. An empty b yields 0; an
// empty a against a non-empty b yields +Inf. NaN objective values propagate
// to the result, matching the contract of the other indicators: a NaN ε
// means the comparison is meaningless.
//
// With a as the evolved front and b as a reference front (for example the
// closed-form DP-optimal mechanisms of Holohan et al.), ε+ measures how far
// the search still is from the reference — the front-proximity number the
// adaptive-campaign work tracks over generations.
func AdditiveEpsilon(a, b []Point) float64 {
	if len(b) == 0 {
		return 0
	}
	if len(a) == 0 {
		return math.Inf(1)
	}
	var eps float64
	for _, q := range b {
		best := math.Inf(1)
		for _, p := range a {
			// Smallest shift making p weakly dominate q over shared axes.
			need := q.Privacy - p.Privacy // privacy is maximized
			if d := p.Utility - q.Utility; d > need {
				need = d
			}
			na, nb := int(p.nExtra), int(q.nExtra)
			for t := 0; t < na && t < nb; t++ {
				if d := p.extra[t] - q.extra[t]; d > need {
					need = d
				}
			}
			if need < best || math.IsNaN(need) {
				best = need
			}
		}
		if best > eps || math.IsNaN(best) {
			eps = best
		}
	}
	if eps < 0 {
		eps = 0
	}
	return eps
}

// Spread measures how evenly a front covers its extent: the normalized mean
// absolute deviation of nearest-neighbour distances, Σ|dᵢ−d̄| / (n·d̄),
// where dᵢ is point i's Euclidean distance to its nearest other point. Zero
// means perfectly uniform spacing; values near 1 mean the front is clumped
// with large gaps. Fronts with fewer than 3 points, or whose points all
// coincide, yield 0. Distances are taken over all shared axes, unscaled —
// like Point.Distance, callers wanting scale-aware spread normalize first.
func Spread(pts []Point) float64 {
	n := len(pts)
	if n < 3 {
		return 0
	}
	dists := make([]float64, n)
	var mean float64
	for i, p := range pts {
		best := math.Inf(1)
		for j, q := range pts {
			if i == j {
				continue
			}
			if d := p.Distance(q); d < best {
				best = d
			}
		}
		dists[i] = best
		mean += best
	}
	mean /= float64(n)
	if mean == 0 {
		return 0
	}
	var dev float64
	for _, d := range dists {
		dev += math.Abs(d - mean)
	}
	return dev / (float64(n) * mean)
}
