package pareto

import (
	"math"
	"testing"
	"testing/quick"

	"optrr/internal/randx"
)

func TestDominates(t *testing.T) {
	cases := []struct {
		p, q Point
		want bool
	}{
		// Better in both.
		{Point{Privacy: 0.5, Utility: 0.1}, Point{Privacy: 0.4, Utility: 0.2}, true},
		// Better privacy, equal utility.
		{Point{Privacy: 0.5, Utility: 0.2}, Point{Privacy: 0.4, Utility: 0.2}, true},
		// Equal privacy, better utility.
		{Point{Privacy: 0.5, Utility: 0.1}, Point{Privacy: 0.5, Utility: 0.2}, true},
		// Equal points do not dominate each other.
		{Point{Privacy: 0.5, Utility: 0.1}, Point{Privacy: 0.5, Utility: 0.1}, false},
		// Trade-off: neither dominates.
		{Point{Privacy: 0.5, Utility: 0.2}, Point{Privacy: 0.4, Utility: 0.1}, false},
		// Worse in both.
		{Point{Privacy: 0.4, Utility: 0.3}, Point{Privacy: 0.5, Utility: 0.1}, false},
	}
	for _, c := range cases {
		if got := c.p.Dominates(c.q); got != c.want {
			t.Errorf("%+v Dominates %+v = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}

func TestWeaklyDominates(t *testing.T) {
	p := Point{Privacy: 0.5, Utility: 0.1}
	if !p.WeaklyDominates(p) {
		t.Fatal("a point must weakly dominate itself")
	}
	if !p.WeaklyDominates(Point{Privacy: 0.4, Utility: 0.2}) {
		t.Fatal("strict dominance implies weak dominance")
	}
	if p.WeaklyDominates(Point{Privacy: 0.6, Utility: 0.05}) {
		t.Fatal("weak dominance of a strictly better point")
	}
}

func TestDominanceIrreflexiveAndAsymmetric(t *testing.T) {
	f := func(p1, u1, p2, u2 uint16) bool {
		a := Point{Privacy: float64(p1) / 1000, Utility: float64(u1) / 1000}
		b := Point{Privacy: float64(p2) / 1000, Utility: float64(u2) / 1000}
		if a.Dominates(a) || b.Dominates(b) {
			return false
		}
		return !(a.Dominates(b) && b.Dominates(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDistance(t *testing.T) {
	d := Point{Privacy: 0, Utility: 0}.Distance(Point{Privacy: 3, Utility: 4})
	if math.Abs(d-5) > 1e-12 {
		t.Fatalf("Distance = %v, want 5", d)
	}
}

func TestFrontSimple(t *testing.T) {
	pts := []Point{
		{Privacy: 0.1, Utility: 0.5}, // dominated by {Privacy: 0.2, Utility: 0.1}
		{Privacy: 0.2, Utility: 0.1}, // trade-off with {Privacy: 0.3, Utility: 0.2}: lower privacy, lower MSE
		{Privacy: 0.3, Utility: 0.4}, // dominated by {Privacy: 0.3, Utility: 0.2}
		{Privacy: 0.3, Utility: 0.2},
		{Privacy: 0.25, Utility: 0.35}, // dominated by {Privacy: 0.3, Utility: 0.2}
	}
	idx := Front(pts)
	want := map[int]bool{1: true, 3: true}
	if len(idx) != 2 {
		t.Fatalf("Front = %v, want indices {Privacy: 1, Utility: 3}", idx)
	}
	for _, i := range idx {
		if !want[i] {
			t.Fatalf("Front = %v, want indices {Privacy: 1, Utility: 3}", idx)
		}
	}
}

func TestFrontKeepsDuplicates(t *testing.T) {
	pts := []Point{{Privacy: 0.5, Utility: 0.1}, {Privacy: 0.5, Utility: 0.1}}
	if got := Front(pts); len(got) != 2 {
		t.Fatalf("duplicates should both survive, got %v", got)
	}
}

func TestFrontEmpty(t *testing.T) {
	if got := Front(nil); got != nil {
		t.Fatalf("Front(nil) = %v, want nil", got)
	}
}

func TestFrontPointsSorted(t *testing.T) {
	pts := []Point{{Privacy: 0.6, Utility: 0.2}, {Privacy: 0.2, Utility: 0.05}, {Privacy: 0.4, Utility: 0.1}}
	front := FrontPoints(pts)
	for i := 1; i < len(front); i++ {
		if front[i].Privacy < front[i-1].Privacy {
			t.Fatalf("FrontPoints not sorted: %v", front)
		}
	}
}

// TestFrontIsMutuallyNonDominatedAndCoversInput is the core property of
// Definition 3.1: no front member dominates another, and every excluded
// point is dominated by some front member.
func TestFrontIsMutuallyNonDominatedAndCoversInput(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%30) + 1
		r := randx.New(seed)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{Privacy: r.Float64(), Utility: r.Float64()}
		}
		idx := Front(pts)
		inFront := make(map[int]bool, len(idx))
		for _, i := range idx {
			inFront[i] = true
		}
		for _, i := range idx {
			for _, j := range idx {
				if i != j && pts[i].Dominates(pts[j]) {
					return false
				}
			}
		}
		for i := range pts {
			if inFront[i] {
				continue
			}
			dominated := false
			for _, j := range idx {
				if pts[j].Dominates(pts[i]) {
					dominated = true
					break
				}
			}
			if !dominated {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCoverage(t *testing.T) {
	a := []Point{{Privacy: 0.5, Utility: 0.1}}
	b := []Point{{Privacy: 0.4, Utility: 0.2}, {Privacy: 0.6, Utility: 0.05}}
	// a covers b[0] but not b[1].
	if got := Coverage(a, b); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Coverage = %v, want 0.5", got)
	}
	if got := Coverage(a, nil); got != 0 {
		t.Fatalf("Coverage over empty = %v, want 0", got)
	}
	// Every set covers itself fully (weak dominance is reflexive).
	if got := Coverage(b, b); got != 1 {
		t.Fatalf("self Coverage = %v, want 1", got)
	}
}

func TestPrivacyRange(t *testing.T) {
	min, max := PrivacyRange([]Point{{Privacy: 0.3, Utility: 1}, {Privacy: 0.1, Utility: 2}, {Privacy: 0.7, Utility: 3}})
	if min != 0.1 || max != 0.7 {
		t.Fatalf("PrivacyRange = (%v, %v), want (0.1, 0.7)", min, max)
	}
	min, max = PrivacyRange(nil)
	if min != 0 || max != 0 {
		t.Fatalf("empty PrivacyRange = (%v, %v), want (0, 0)", min, max)
	}
}

func TestUtilityAt(t *testing.T) {
	pts := []Point{{Privacy: 0.3, Utility: 0.5}, {Privacy: 0.5, Utility: 0.2}, {Privacy: 0.7, Utility: 0.4}}
	u, ok := UtilityAt(pts, 0.4)
	if !ok || u != 0.2 {
		t.Fatalf("UtilityAt(0.4) = (%v, %v), want (0.2, true)", u, ok)
	}
	u, ok = UtilityAt(pts, 0.65)
	if !ok || u != 0.4 {
		t.Fatalf("UtilityAt(0.65) = (%v, %v), want (0.4, true)", u, ok)
	}
	if _, ok := UtilityAt(pts, 0.9); ok {
		t.Fatal("UtilityAt beyond the range should report false")
	}
}

func TestHypervolumeSinglePoint(t *testing.T) {
	pts := []Point{{Privacy: 0.5, Utility: 0.2}}
	// Reference (0, 1): rectangle (0.5-0) × (1-0.2) = 0.4.
	got := Hypervolume(pts, 0, 1)
	if math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("Hypervolume = %v, want 0.4", got)
	}
}

func TestHypervolumeStaircase(t *testing.T) {
	pts := []Point{{Privacy: 0.2, Utility: 0.1}, {Privacy: 0.6, Utility: 0.5}}
	// From 0 to 0.2 best utility among {privacy >= x} is 0.1 -> area 0.2*(1-0.1)
	// From 0.2 to 0.6 best utility is 0.5 -> area 0.4*(1-0.5)
	want := 0.2*0.9 + 0.4*0.5
	got := Hypervolume(pts, 0, 1)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Hypervolume = %v, want %v", got, want)
	}
}

func TestHypervolumeEmpty(t *testing.T) {
	if got := Hypervolume(nil, 0, 1); got != 0 {
		t.Fatalf("Hypervolume(nil) = %v, want 0", got)
	}
}

func TestHypervolumeIgnoresPointsOutsideReference(t *testing.T) {
	pts := []Point{{Privacy: -0.5, Utility: 0.2}, {Privacy: 0.5, Utility: 2}}
	if got := Hypervolume(pts, 0, 1); got != 0 {
		t.Fatalf("Hypervolume = %v, want 0", got)
	}
}

// TestHypervolumeMonotoneUnderDominatingPoint: adding a point can never
// shrink the hypervolume, and adding a dominating point grows it.
func TestHypervolumeMonotone(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%20) + 1
		r := randx.New(seed)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{Privacy: r.Float64(), Utility: r.Float64()}
		}
		base := Hypervolume(pts, 0, 1)
		extra := append(append([]Point{}, pts...), Point{Privacy: r.Float64(), Utility: r.Float64()})
		return Hypervolume(extra, 0, 1) >= base-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestCoverageConsistentWithHypervolume: if front a fully covers front b,
// then a's hypervolume is at least b's.
func TestCoverageConsistentWithHypervolume(t *testing.T) {
	f := func(seed uint64) bool {
		r := randx.New(seed)
		a := make([]Point, 8)
		b := make([]Point, 8)
		for i := range a {
			a[i] = Point{Privacy: r.Float64(), Utility: r.Float64()}
			b[i] = Point{Privacy: r.Float64(), Utility: r.Float64()}
		}
		if Coverage(a, b) < 1 {
			return true // premise not met
		}
		return Hypervolume(a, 0, 1) >= Hypervolume(b, 0, 1)-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFront100(b *testing.B) {
	r := randx.New(1)
	pts := make([]Point, 100)
	for i := range pts {
		pts[i] = Point{Privacy: r.Float64(), Utility: r.Float64()}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Front(pts)
	}
}

func BenchmarkHypervolume100(b *testing.B) {
	r := randx.New(1)
	pts := make([]Point, 100)
	for i := range pts {
		pts[i] = Point{Privacy: r.Float64(), Utility: r.Float64()}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Hypervolume(pts, 0, 1)
	}
}
