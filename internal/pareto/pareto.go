// Package pareto implements the dominance machinery of the paper's
// multi-objective formulation (Definitions 3.1 and 5.1) and the Pareto-front
// tooling used by the evaluation (Section VI-A): front extraction, merging,
// and indicator metrics for comparing the fronts of two schemes.
//
// Points live in the paper's two-dimensional objective space: privacy
// (larger is better) and utility measured as MSE (smaller is better).
package pareto

import (
	"math"
	"sort"
)

// Point is a solution's image in objective space.
type Point struct {
	// Privacy is objective one; larger is better.
	Privacy float64
	// Utility is objective two (mean squared error); smaller is better.
	Utility float64
}

// Dominates reports whether p dominates q (Definition 5.1): p is at least as
// good in both objectives and strictly better in at least one.
func (p Point) Dominates(q Point) bool {
	if p.Privacy < q.Privacy || p.Utility > q.Utility {
		return false
	}
	return p.Privacy > q.Privacy || p.Utility < q.Utility
}

// WeaklyDominates reports whether p is at least as good as q in both
// objectives (dominance or equality).
func (p Point) WeaklyDominates(q Point) bool {
	return p.Privacy >= q.Privacy && p.Utility <= q.Utility
}

// Distance returns the Euclidean distance between two points in objective
// space. Callers who need scale-aware distances should normalize first.
func (p Point) Distance(q Point) float64 {
	dp := p.Privacy - q.Privacy
	du := p.Utility - q.Utility
	return math.Sqrt(dp*dp + du*du)
}

// Front returns the indices of the non-dominated points in pts (the Pareto
// optimal set, Definition 3.1), in input order. Duplicate points are all
// kept: a point equal to another is not dominated by it.
func Front(pts []Point) []int {
	var out []int
	for i, p := range pts {
		dominated := false
		for j, q := range pts {
			if i != j && q.Dominates(p) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	return out
}

// FrontPoints returns the non-dominated points themselves, sorted by
// ascending privacy (the natural plotting order for the paper's figures).
func FrontPoints(pts []Point) []Point {
	idx := Front(pts)
	out := make([]Point, len(idx))
	for k, i := range idx {
		out[k] = pts[i]
	}
	SortByPrivacy(out)
	return out
}

// SortByPrivacy orders points by ascending privacy, breaking ties on
// ascending utility.
func SortByPrivacy(pts []Point) {
	sort.Slice(pts, func(a, b int) bool {
		if pts[a].Privacy != pts[b].Privacy {
			return pts[a].Privacy < pts[b].Privacy
		}
		return pts[a].Utility < pts[b].Utility
	})
}

// Coverage returns the C-metric C(a, b): the fraction of points in b weakly
// dominated by at least one point in a. C(a,b) = 1 means every point of b is
// covered by a; the metric is not symmetric. An empty b yields 0.
func Coverage(a, b []Point) float64 {
	if len(b) == 0 {
		return 0
	}
	covered := 0
	for _, q := range b {
		for _, p := range a {
			if p.WeaklyDominates(q) {
				covered++
				break
			}
		}
	}
	return float64(covered) / float64(len(b))
}

// PrivacyRange returns the smallest and largest privacy values in pts. It
// returns (0, 0) for an empty slice.
func PrivacyRange(pts []Point) (min, max float64) {
	if len(pts) == 0 {
		return 0, 0
	}
	min, max = pts[0].Privacy, pts[0].Privacy
	for _, p := range pts[1:] {
		if p.Privacy < min {
			min = p.Privacy
		}
		if p.Privacy > max {
			max = p.Privacy
		}
	}
	return min, max
}

// UtilityAt returns the best (smallest) utility achieved by any point whose
// privacy is at least the requested level — "what MSE do I pay for privacy
// ≥ x under this scheme". The boolean result is false if no point qualifies.
func UtilityAt(pts []Point, privacy float64) (float64, bool) {
	best := math.Inf(1)
	found := false
	for _, p := range pts {
		if p.Privacy >= privacy && p.Utility < best {
			best = p.Utility
			found = true
		}
	}
	return best, found
}

// Hypervolume returns the area of objective space dominated by the front,
// relative to a reference point (refPrivacy, refUtility) that must be weakly
// worse than every point (lower privacy, higher utility). Larger is better.
// Points outside the reference box are clipped.
func Hypervolume(pts []Point, refPrivacy, refUtility float64) float64 {
	front := FrontPoints(pts) // sorted by ascending privacy
	if len(front) == 0 {
		return 0
	}
	// Integrate over the privacy axis from refPrivacy upward: at privacy
	// level x the dominated depth is refUtility minus the best utility among
	// points whose privacy is at least x.
	suffixBest := make([]float64, len(front)+1)
	suffixBest[len(front)] = math.Inf(1)
	for i := len(front) - 1; i >= 0; i-- {
		suffixBest[i] = math.Min(front[i].Utility, suffixBest[i+1])
	}
	var volume float64
	x := refPrivacy
	for i, p := range front {
		if p.Privacy <= x {
			continue
		}
		if u := suffixBest[i]; u < refUtility {
			volume += (p.Privacy - x) * (refUtility - u)
		}
		x = p.Privacy
	}
	return volume
}
