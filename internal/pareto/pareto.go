// Package pareto implements the dominance machinery of the paper's
// multi-objective formulation (Definitions 3.1 and 5.1) and the Pareto-front
// tooling used by the evaluation (Section VI-A): front extraction, merging,
// and indicator metrics for comparing the fronts of two schemes.
//
// Points live in a k-dimensional objective space whose first two axes are
// the paper's: privacy (larger is better) and utility measured as MSE
// (smaller is better). Up to MaxExtraObjectives additional axes may be
// attached with NewPoint; every extra axis is minimized (callers wanting a
// maximized extra objective negate it before construction). The plain
// two-field literal Point{Privacy: p, Utility: u} remains a valid
// 2-dimensional point, and the 2-D behaviour of every function in this
// package is bit-for-bit what it was before the extra axes existed.
package pareto

import (
	"math"
	"sort"
)

// MaxExtraObjectives is the number of objective axes a Point can carry
// beyond the canonical (privacy, utility) pair. The extras live in a
// fixed-size inline array so Point stays a small comparable value type —
// golden tests compare points with ==, and the SPEA2 kernels copy points by
// value with zero allocations.
const MaxExtraObjectives = 4

// Point is a solution's image in objective space.
type Point struct {
	// Privacy is objective one; larger is better.
	Privacy float64
	// Utility is objective two (mean squared error); smaller is better.
	Utility float64

	// extra holds the additional minimized objectives; only the first
	// nExtra entries are meaningful. Unexported so the zero value remains
	// the canonical 2-D point and equality stays well-defined.
	extra  [MaxExtraObjectives]float64
	nExtra uint8
}

// NewPoint builds a point from a privacy value, a utility value and up to
// MaxExtraObjectives extra objective values. Every extra objective is
// minimized, like utility. It panics when given more extras than
// MaxExtraObjectives — a caller bug that configuration validation in
// internal/core rejects long before points are built.
func NewPoint(privacy, utility float64, extra ...float64) Point {
	if len(extra) > MaxExtraObjectives {
		panic("pareto: too many extra objectives")
	}
	p := Point{Privacy: privacy, Utility: utility, nExtra: uint8(len(extra))}
	copy(p.extra[:], extra)
	return p
}

// Dim returns the number of objectives the point carries (at least 2).
func (p Point) Dim() int { return 2 + int(p.nExtra) }

// At returns the value of objective i: 0 is privacy, 1 is utility, and
// 2..Dim()-1 are the extra objectives in construction order.
func (p Point) At(i int) float64 {
	switch i {
	case 0:
		return p.Privacy
	case 1:
		return p.Utility
	default:
		return p.extra[i-2]
	}
}

// ExtraAt returns the value of extra objective i (0-based, so objective
// index 2+i).
func (p Point) ExtraAt(i int) float64 { return p.extra[i] }

// Extras returns a copy of the extra objective values.
func (p Point) Extras() []float64 {
	if p.nExtra == 0 {
		return nil
	}
	return append([]float64(nil), p.extra[:p.nExtra]...)
}

// Dominates reports whether p dominates q (Definition 5.1): p is at least as
// good in every objective and strictly better in at least one. Privacy is
// maximized; utility and every extra objective are minimized. Points of
// different dimension never dominate each other in the extra axes they do
// not share; callers are expected to compare points of equal dimension.
func (p Point) Dominates(q Point) bool {
	if p.Privacy < q.Privacy || p.Utility > q.Utility {
		return false
	}
	strict := p.Privacy > q.Privacy || p.Utility < q.Utility
	for t := 0; t < int(p.nExtra) && t < int(q.nExtra); t++ {
		if p.extra[t] > q.extra[t] {
			return false
		}
		if p.extra[t] < q.extra[t] {
			strict = true
		}
	}
	return strict
}

// WeaklyDominates reports whether p is at least as good as q in every
// objective (dominance or equality).
func (p Point) WeaklyDominates(q Point) bool {
	if p.Privacy < q.Privacy || p.Utility > q.Utility {
		return false
	}
	for t := 0; t < int(p.nExtra) && t < int(q.nExtra); t++ {
		if p.extra[t] > q.extra[t] {
			return false
		}
	}
	return true
}

// Distance returns the Euclidean distance between two points in objective
// space, over all shared axes. Callers who need scale-aware distances
// should normalize first.
func (p Point) Distance(q Point) float64 {
	dp := p.Privacy - q.Privacy
	du := p.Utility - q.Utility
	sum := dp*dp + du*du
	for t := 0; t < int(p.nExtra) && t < int(q.nExtra); t++ {
		d := p.extra[t] - q.extra[t]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// Front returns the indices of the non-dominated points in pts (the Pareto
// optimal set, Definition 3.1), in input order. Duplicate points are all
// kept: a point equal to another is not dominated by it.
func Front(pts []Point) []int {
	var out []int
	for i, p := range pts {
		dominated := false
		for j, q := range pts {
			if i != j && q.Dominates(p) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	return out
}

// FrontPoints returns the non-dominated points themselves, sorted by
// ascending privacy (the natural plotting order for the paper's figures).
func FrontPoints(pts []Point) []Point {
	idx := Front(pts)
	out := make([]Point, len(idx))
	for k, i := range idx {
		out[k] = pts[i]
	}
	SortByPrivacy(out)
	return out
}

// SortByPrivacy orders points by ascending privacy, breaking ties on
// ascending utility and then lexicographically on the extra objectives.
// The order is total even when objective values are NaN: within each key a
// NaN sorts after every number and ties with other NaNs, so repeated sorts
// of the same multiset produce the same deterministic order.
func SortByPrivacy(pts []Point) {
	sort.Slice(pts, func(a, b int) bool {
		return Compare(pts[a], pts[b]) < 0
	})
}

// Compare is the total order underlying SortByPrivacy: -1 when a sorts
// before b, +1 after, 0 when every objective ties. Callers sorting parallel
// structures (e.g. a front with its matrices attached) use it to reproduce
// exactly the order SortByPrivacy produces.
func Compare(a, b Point) int {
	if c := compareNaNLast(a.Privacy, b.Privacy); c != 0 {
		return c
	}
	if c := compareNaNLast(a.Utility, b.Utility); c != 0 {
		return c
	}
	na, nb := int(a.nExtra), int(b.nExtra)
	for t := 0; t < na && t < nb; t++ {
		if c := compareNaNLast(a.extra[t], b.extra[t]); c != 0 {
			return c
		}
	}
	switch {
	case na < nb:
		return -1
	case na > nb:
		return 1
	}
	return 0
}

// compareNaNLast orders two float64s ascending with NaN as the largest
// value: -1 when x sorts before y, +1 after, 0 when tied (equal numbers, or
// both NaN).
func compareNaNLast(x, y float64) int {
	switch {
	case x < y:
		return -1
	case x > y:
		return 1
	case x == y:
		return 0
	}
	// At least one operand is NaN.
	switch {
	case math.IsNaN(x) && !math.IsNaN(y):
		return 1
	case !math.IsNaN(x) && math.IsNaN(y):
		return -1
	default:
		return 0
	}
}

// Coverage returns the C-metric C(a, b): the fraction of points in b weakly
// dominated by at least one point in a. C(a,b) = 1 means every point of b is
// covered by a; the metric is not symmetric. An empty b yields 0.
func Coverage(a, b []Point) float64 {
	if len(b) == 0 {
		return 0
	}
	covered := 0
	for _, q := range b {
		for _, p := range a {
			if p.WeaklyDominates(q) {
				covered++
				break
			}
		}
	}
	return float64(covered) / float64(len(b))
}

// PrivacyRange returns the smallest and largest privacy values in pts. It
// returns (0, 0) for an empty slice.
func PrivacyRange(pts []Point) (min, max float64) {
	if len(pts) == 0 {
		return 0, 0
	}
	min, max = pts[0].Privacy, pts[0].Privacy
	for _, p := range pts[1:] {
		if p.Privacy < min {
			min = p.Privacy
		}
		if p.Privacy > max {
			max = p.Privacy
		}
	}
	return min, max
}

// ObjectiveRange returns the smallest and largest finite-or-infinite value
// of objective obj over pts, skipping NaN entries. ok is false when pts is
// empty, obj is out of range for every point, or every value is NaN.
func ObjectiveRange(pts []Point, obj int) (min, max float64, ok bool) {
	for _, p := range pts {
		if obj >= p.Dim() {
			continue
		}
		v := p.At(obj)
		if math.IsNaN(v) {
			continue
		}
		if !ok {
			min, max = v, v
			ok = true
			continue
		}
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max, ok
}

// UtilityAt returns the best (smallest) utility achieved by any point whose
// privacy is at least the requested level — "what MSE do I pay for privacy
// ≥ x under this scheme". The boolean result is false if no point qualifies.
//
// Contract for non-finite utilities: a qualifying point with Utility = +Inf
// does count (the answer is then +Inf, true — the scheme reaches the privacy
// level, at unbounded cost), while a point with NaN utility is skipped as
// carrying no usable utility information. A NaN privacy never satisfies the
// threshold, so such points are skipped on the privacy test already.
func UtilityAt(pts []Point, privacy float64) (float64, bool) {
	best := math.Inf(1)
	found := false
	for _, p := range pts {
		if !(p.Privacy >= privacy) || math.IsNaN(p.Utility) {
			continue
		}
		if !found || p.Utility < best {
			best = p.Utility
			found = true
		}
	}
	return best, found
}

// ObjectiveAt generalizes UtilityAt to any objective index: it returns the
// best value of objective obj among the points whose privacy is at least
// the requested level — the largest value for obj 0 (privacy is maximized),
// the smallest for every other objective (all minimized). NaN objective
// values are skipped under the same contract as UtilityAt; points that do
// not carry objective obj are skipped too.
func ObjectiveAt(pts []Point, obj int, privacy float64) (float64, bool) {
	var best float64
	found := false
	for _, p := range pts {
		if !(p.Privacy >= privacy) || obj >= p.Dim() {
			continue
		}
		v := p.At(obj)
		if math.IsNaN(v) {
			continue
		}
		better := obj == 0 && v > best || obj != 0 && v < best
		if !found || better {
			best = v
			found = true
		}
	}
	return best, found
}

// Hypervolume returns the area of objective space dominated by the front,
// relative to a reference point (refPrivacy, refUtility) that must be weakly
// worse than every point (lower privacy, higher utility). Larger is better.
// Points outside the reference box are clipped. For points carrying extra
// objectives this is the 2-D hypervolume of the (privacy, utility)
// projection — the paper's indicator — not a k-dimensional volume.
func Hypervolume(pts []Point, refPrivacy, refUtility float64) float64 {
	front := FrontPoints(pts) // sorted by ascending privacy
	if len(front) == 0 {
		return 0
	}
	// Integrate over the privacy axis from refPrivacy upward: at privacy
	// level x the dominated depth is refUtility minus the best utility among
	// points whose privacy is at least x.
	suffixBest := make([]float64, len(front)+1)
	suffixBest[len(front)] = math.Inf(1)
	for i := len(front) - 1; i >= 0; i-- {
		suffixBest[i] = math.Min(front[i].Utility, suffixBest[i+1])
	}
	var volume float64
	x := refPrivacy
	for i, p := range front {
		if p.Privacy <= x {
			continue
		}
		if u := suffixBest[i]; u < refUtility {
			volume += (p.Privacy - x) * (refUtility - u)
		}
		x = p.Privacy
	}
	return volume
}
