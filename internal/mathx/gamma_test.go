package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGammaPExponential(t *testing.T) {
	// Gamma(1, 1) is Exp(1): P(1, x) = 1 - e^{-x}.
	for _, x := range []float64{0.01, 0.5, 1, 2, 5, 10} {
		want := 1 - math.Exp(-x)
		if got := GammaP(1, x); math.Abs(got-want) > 1e-12 {
			t.Errorf("GammaP(1, %v) = %v, want %v", x, got, want)
		}
	}
}

func TestGammaPEdges(t *testing.T) {
	if GammaP(2, 0) != 0 || GammaP(2, -1) != 0 {
		t.Fatal("GammaP at x <= 0 should be 0")
	}
	if got := GammaP(3, 1e4); math.Abs(got-1) > 1e-12 {
		t.Fatalf("GammaP at large x = %v", got)
	}
	if GammaQ(2, 0) != 1 {
		t.Fatal("GammaQ at 0 should be 1")
	}
}

func TestGammaPQComplement(t *testing.T) {
	f := func(aRaw, xRaw uint16) bool {
		a := 0.1 + float64(aRaw%500)/25 // 0.1 .. 20.1
		x := float64(xRaw%2000) / 50    // 0 .. 40
		return math.Abs(GammaP(a, x)+GammaQ(a, x)-1) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestGammaPMonotone(t *testing.T) {
	f := func(aRaw, xRaw uint16) bool {
		a := 0.2 + float64(aRaw%100)/10
		x := float64(xRaw%1000) / 50
		return GammaP(a, x+0.25) >= GammaP(a, x)-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestChiSquareKnownQuantiles(t *testing.T) {
	// Standard table values: P(X > x) for chi-square.
	cases := []struct {
		k, x, pValue float64
	}{
		{1, 3.841, 0.05},
		{2, 5.991, 0.05},
		{5, 11.070, 0.05},
		{10, 18.307, 0.05},
		{1, 6.635, 0.01},
		{4, 13.277, 0.01},
	}
	for _, c := range cases {
		got := ChiSquareSurvival(c.k, c.x)
		if math.Abs(got-c.pValue) > 5e-4 {
			t.Errorf("ChiSquareSurvival(%v, %v) = %v, want %v", c.k, c.x, got, c.pValue)
		}
	}
}

func TestChiSquareCDFMedianOfK2(t *testing.T) {
	// Chi-square with 2 dof is Exp(1/2): median at 2·ln 2.
	med := 2 * math.Ln2
	if got := ChiSquareCDF(2, med); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("CDF at median = %v", got)
	}
}

func TestGammaCDFScale(t *testing.T) {
	// Scaling: CDF of Gamma(a, s) at x equals P(a, x/s).
	if got, want := GammaCDF(2, 3, 6), GammaP(2, 2); math.Abs(got-want) > 1e-12 {
		t.Fatalf("GammaCDF scale handling: %v vs %v", got, want)
	}
	if GammaCDF(2, 3, 0) != 0 {
		t.Fatal("GammaCDF at 0")
	}
}
