// Package mathx provides the special functions shared by the data
// generators and the statistical tests: the regularized incomplete gamma
// function and the chi-square distribution built on it. Implementations
// follow the classic series / continued-fraction split (Numerical Recipes
// §6.2); accuracy is ~1e-12 over the parameter ranges used here.
package mathx

import "math"

// GammaP returns the regularized lower incomplete gamma function P(a, x)
// for a > 0, x ≥ 0: the CDF at x of a Gamma(shape a, scale 1) variable.
func GammaP(a, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x < a+1 {
		return gammaSeriesP(a, x)
	}
	return 1 - gammaContFracQ(a, x)
}

// GammaQ returns the regularized upper incomplete gamma function
// Q(a, x) = 1 − P(a, x).
func GammaQ(a, x float64) float64 {
	if x <= 0 {
		return 1
	}
	if x < a+1 {
		return 1 - gammaSeriesP(a, x)
	}
	return gammaContFracQ(a, x)
}

// GammaCDF returns the CDF at x of a Gamma(shape, scale) variable.
func GammaCDF(shape, scale, x float64) float64 {
	if x <= 0 {
		return 0
	}
	return GammaP(shape, x/scale)
}

// ChiSquareCDF returns the CDF at x of a chi-square variable with k degrees
// of freedom.
func ChiSquareCDF(k float64, x float64) float64 {
	return GammaP(k/2, x/2)
}

// ChiSquareSurvival returns P(X > x) for a chi-square variable with k
// degrees of freedom — the p-value of a chi-square statistic.
func ChiSquareSurvival(k float64, x float64) float64 {
	return GammaQ(k/2, x/2)
}

func gammaSeriesP(a, x float64) float64 {
	const (
		maxIter = 500
		eps     = 1e-14
	)
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < maxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func gammaContFracQ(a, x float64) float64 {
	const (
		maxIter = 500
		eps     = 1e-14
		tiny    = 1e-300
	)
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= maxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}
