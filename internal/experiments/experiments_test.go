package experiments

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"optrr/internal/pareto"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig4a", "fig4b", "fig4c", "fig4d",
		"fig5a", "fig5b", "fig5c", "fig5d",
		"thm2", "fact1",
		"ext-multi", "ext-gain", "ext-triobj", "ext-joint-scale",
		"abl-omega", "abl-symmetric", "abl-reject", "abl-nsga2", "abl-naive-mutation",
		"abl-weighted-sum",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	seen := make(map[string]bool)
	for _, e := range all {
		seen[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %q incomplete", e.ID)
		}
	}
	for _, id := range want {
		if !seen[id] {
			t.Errorf("experiment %q missing", id)
		}
	}
}

func TestLookup(t *testing.T) {
	e, err := Lookup("fig4a")
	if err != nil || e.ID != "fig4a" {
		t.Fatalf("Lookup(fig4a) = %v, %v", e.ID, err)
	}
	if _, err := Lookup("nope"); !errors.Is(err, ErrUnknownExperiment) {
		t.Fatalf("err = %v, want ErrUnknownExperiment", err)
	}
}

func TestFact1MatchesPaper(t *testing.T) {
	rep, err := runFact1(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("Fact 1 check failed: %s", rep.Summary())
	}
}

func TestSearchSpaceSizeSmallCases(t *testing.T) {
	// n=2, d=1: each column is one of {(0,1),(1,0)}... C(2,1)=2 choices per
	// column, squared = 4.
	if got := SearchSpaceSize(2, 1).Int64(); got != 4 {
		t.Fatalf("SearchSpaceSize(2,1) = %d, want 4", got)
	}
	// n=2, d=2: C(3,2)=3 per column -> 9.
	if got := SearchSpaceSize(2, 2).Int64(); got != 9 {
		t.Fatalf("SearchSpaceSize(2,2) = %d, want 9", got)
	}
}

func TestTheorem2Experiment(t *testing.T) {
	rep, err := runThm2(Config{WarnerSteps: 100, Generations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("Theorem 2 failed:\n%s", rep.Summary())
	}
	if len(rep.Series) != 3 {
		t.Fatalf("thm2 produced %d series, want 3", len(rep.Series))
	}
}

// TestFig4aQuick runs the flagship experiment at the quick budget and
// verifies the universal shape checks hold.
func TestFig4aQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run skipped in -short mode")
	}
	e, err := Lookup("fig4a")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Generations: 2000, WarnerSteps: 300, Seed: 1}
	rep, err := e.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// At this reduced budget the dominance checks must hold; the
	// range-extension check may legitimately need a deeper run, so only
	// the first two checks are asserted here.
	for _, c := range rep.Checks[:2] {
		if !c.Pass {
			t.Errorf("check failed: %s (%s)", c.Name, c.Detail)
		}
	}
	if len(rep.Series) != 2 {
		t.Fatalf("fig4a produced %d series", len(rep.Series))
	}
	for _, s := range rep.Series {
		if len(s.Points) == 0 {
			t.Fatalf("series %q empty", s.Name)
		}
	}
}

// TestFig5bQuick checks the uniform-prior exception experiment end to end.
func TestFig5bQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run skipped in -short mode")
	}
	e, err := Lookup("fig5b")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Generations: 3000, WarnerSteps: 300, Seed: 2}
	rep, err := e.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rep.Checks {
		if !c.Pass {
			t.Errorf("check failed: %s (%s)", c.Name, c.Detail)
		}
	}
}

// TestAllExperimentsExecute runs every registered experiment at a micro
// budget: no shape checks are asserted (those need real budgets and are
// covered by the dedicated tests above and the CLI runs), but every runner
// must complete without error and produce well-formed output.
func TestAllExperimentsExecute(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep skipped in -short mode")
	}
	cfg := Config{
		Categories:  6,
		Records:     2000,
		Generations: 60,
		WarnerSteps: 60,
		Seed:        1,
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			rep, err := e.Run(cfg)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if rep.ID != e.ID {
				t.Fatalf("report ID %q for experiment %q", rep.ID, e.ID)
			}
			if rep.Title == "" || len(rep.Checks) == 0 {
				t.Fatalf("%s: empty report", e.ID)
			}
			// Reports must render without panicking.
			if rep.Summary() == "" {
				t.Fatalf("%s: empty summary", e.ID)
			}
			_ = rep.ASCIIPlot()
			var sink strings.Builder
			if err := rep.WriteCSV(&sink); err != nil {
				t.Fatalf("%s: csv: %v", e.ID, err)
			}
		})
	}
}

func TestWarnerFrontShape(t *testing.T) {
	prior := []float64{0.4, 0.3, 0.2, 0.1}
	front, err := warnerFront(prior, 10000, 0.9, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(front) == 0 {
		t.Fatal("empty Warner front")
	}
	// Front points must be mutually non-dominated and sorted by privacy.
	for i := 1; i < len(front); i++ {
		if front[i].Privacy < front[i-1].Privacy {
			t.Fatal("warner front not sorted")
		}
		if front[i].Utility < front[i-1].Utility {
			t.Fatal("warner front utility not monotone: a cheaper higher-privacy point would dominate")
		}
	}
}

func TestSharedLevels(t *testing.T) {
	a := []pareto.Point{{Privacy: 0.2, Utility: 1}, {Privacy: 0.8, Utility: 2}}
	b := []pareto.Point{{Privacy: 0.4, Utility: 1}, {Privacy: 1.0, Utility: 2}}
	levels := sharedLevels(a, b, 3)
	if len(levels) != 3 {
		t.Fatalf("levels = %v", levels)
	}
	for _, l := range levels {
		if l <= 0.4 || l >= 0.8 {
			t.Fatalf("level %v outside shared range (0.4, 0.8)", l)
		}
	}
	if got := sharedLevels(a, []pareto.Point{{Privacy: 0.9, Utility: 1}}, 3); got != nil {
		t.Fatalf("disjoint ranges should give no levels, got %v", got)
	}
}

func TestReportCSV(t *testing.T) {
	rep := &Report{
		ID: "x",
		Series: []Series{
			{Name: "a", Points: []pareto.Point{{Privacy: 0.5, Utility: 0.001}}},
			{Name: "b", Points: []pareto.Point{{Privacy: 0.6, Utility: 0.002}}},
		},
	}
	var buf bytes.Buffer
	if err := rep.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want 3:\n%s", len(lines), out)
	}
	if lines[0] != "series,privacy,utility" {
		t.Fatalf("CSV header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "a,0.5,") {
		t.Fatalf("CSV row = %q", lines[1])
	}
}

// TestReportCSVExtraObjectives pins the k-dim CSV shape: one named column
// per extra axis, filled from the point when it carries the axis and left
// empty for lower-dimensional series in the same report.
func TestReportCSVExtraObjectives(t *testing.T) {
	rep := &Report{
		ID:              "x",
		ExtraObjectives: []string{"ldp-epsilon"},
		Series: []Series{
			{Name: "tri", Points: []pareto.Point{pareto.NewPoint(0.5, 0.001, 1.25)}},
			{Name: "flat", Points: []pareto.Point{{Privacy: 0.6, Utility: 0.002}}},
		},
	}
	var buf bytes.Buffer
	if err := rep.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want 3:\n%s", len(lines), buf.String())
	}
	if lines[0] != "series,privacy,utility,ldp-epsilon" {
		t.Fatalf("CSV header = %q", lines[0])
	}
	if lines[1] != "tri,0.5,0.001,1.25" {
		t.Fatalf("tri row = %q", lines[1])
	}
	if lines[2] != "flat,0.6,0.002," {
		t.Fatalf("flat row = %q", lines[2])
	}
}

func TestASCIIPlot(t *testing.T) {
	rep := &Report{
		Title: "test",
		Series: []Series{
			{Name: "a", Points: []pareto.Point{{Privacy: 0.2, Utility: 0.001}, {Privacy: 0.8, Utility: 0.01}}},
		},
	}
	plot := rep.ASCIIPlot()
	if !strings.Contains(plot, "w = a (2 pts)") {
		t.Fatalf("plot legend missing:\n%s", plot)
	}
	if strings.Count(plot, "w") < 3 { // legend + 2 points
		t.Fatalf("plot points missing:\n%s", plot)
	}
	empty := (&Report{Title: "empty"}).ASCIIPlot()
	if !strings.Contains(empty, "no data") {
		t.Fatalf("empty plot = %q", empty)
	}
}

func TestSummaryRendering(t *testing.T) {
	rep := &Report{
		ID:         "x",
		Title:      "t",
		PaperClaim: "c",
		Checks:     []Check{{Name: "n", Pass: true, Detail: "d"}, {Name: "m", Pass: false, Detail: "e"}},
		Notes:      []string{"note1"},
	}
	s := rep.Summary()
	for _, want := range []string{"[PASS] n", "[FAIL] m", "paper: c", "note: note1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
	if rep.Passed() {
		t.Fatal("Passed() true despite failing check")
	}
}
