// Package experiments regenerates every table and figure of the paper's
// evaluation (Section VI). Each experiment is a registered, parameterized
// runner that produces the same series the paper plots — the Pareto fronts
// of the Warner scheme and of OptRR in (privacy, MSE) space — plus shape
// checks that encode the paper's qualitative claims (who wins, range
// endpoints, crossovers). See DESIGN.md for the experiment index and
// EXPERIMENTS.md for paper-vs-measured results.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"optrr/internal/core"
	"optrr/internal/dataset"
	"optrr/internal/metrics"
	"optrr/internal/pareto"
	"optrr/internal/rr"
)

// Config scales an experiment run. The zero value means paper-like defaults
// scaled down to finish in seconds; see Paper() for the full-scale budgets.
type Config struct {
	// Categories is the attribute domain size n; zero means 10 (the paper).
	Categories int
	// Records is the data-set size N; zero means 10000 (the paper).
	Records int
	// Generations is the EMO budget; zero means 3000 (the paper used
	// 20000; 3000 reproduces the shapes within seconds).
	Generations int
	// WarnerSteps is the Warner sweep resolution; zero means 1000 (the
	// paper's 1001 matrices).
	WarnerSteps int
	// Seed drives all randomness.
	Seed uint64
	// Workers bounds the parallelism of a RunGrid call: how many experiment
	// cells run concurrently. Zero means GOMAXPROCS. It does not change any
	// figure — cells are independent and each derives its randomness from
	// Seed — only wall-clock time.
	Workers int
	// Islands runs each OptRR search as this many sub-populations with ring
	// migration (core.Config.Islands). 0 or 1 keeps the single-population
	// search the figures were pinned on; island runs trade bit-for-bit
	// continuity with those figures for a cheaper equivalent-quality search.
	Islands int
	// MigrateEvery is the island migration interval; zero means the core
	// default. Only meaningful with Islands > 1.
	MigrateEvery int
	// Context optionally bounds every optimizer run inside the experiment;
	// nil means run to completion. A cancelled context surfaces as the
	// experiment's error (wrapping context.Canceled / DeadlineExceeded).
	Context context.Context
}

func (c Config) withDefaults() Config {
	if c.Categories == 0 {
		c.Categories = 10
	}
	if c.Records == 0 {
		c.Records = 10000
	}
	if c.Generations == 0 {
		c.Generations = 3000
	}
	if c.WarnerSteps == 0 {
		c.WarnerSteps = 1000
	}
	return c
}

// Paper returns the full-scale configuration of the paper's experiments
// (20000 generations; minutes per experiment).
func Paper() Config {
	return Config{Generations: 20000}
}

// Quick returns a configuration for smoke tests (seconds per experiment,
// shapes still hold qualitatively).
func Quick() Config {
	return Config{Generations: 400, WarnerSteps: 200}
}

// Series is one named curve in objective space, sorted by ascending privacy.
type Series struct {
	Name   string
	Points []pareto.Point
}

// Check is one machine-verified shape claim from the paper.
type Check struct {
	// Name summarizes the claim.
	Name string
	// Pass reports whether the measured data supports it.
	Pass bool
	// Detail carries the measured numbers behind the verdict.
	Detail string
}

// Report is the outcome of one experiment.
type Report struct {
	// ID is the registry key (e.g. "fig4a").
	ID string
	// Title describes the experiment.
	Title string
	// PaperClaim quotes what the paper reports for this figure.
	PaperClaim string
	// Series holds the regenerated curves.
	Series []Series
	// ExtraObjectives names the objective axes the series' points carry
	// beyond the canonical (privacy, utility) pair, in point order: axis
	// 2+t of every point is ExtraObjectives[t]. Empty for the paper's
	// two-objective experiments; WriteCSV emits one column per entry.
	ExtraObjectives []string
	// Checks holds the machine-verified shape claims.
	Checks []Check
	// Notes carries free-form measurements (ranges, coverage values).
	Notes []string
}

// Passed reports whether every check passed.
func (r *Report) Passed() bool {
	for _, c := range r.Checks {
		if !c.Pass {
			return false
		}
	}
	return true
}

// Experiment is a registered, runnable reproduction of one paper artifact.
type Experiment struct {
	// ID is the registry key.
	ID string
	// Title describes the experiment.
	Title string
	// Run executes it.
	Run func(Config) (*Report, error)
}

// ErrUnknownExperiment reports a lookup of an unregistered ID.
var ErrUnknownExperiment = errors.New("experiments: unknown experiment")

var registry []Experiment

func register(e Experiment) {
	registry = append(registry, e)
}

// All returns the registered experiments in presentation order: the paper's
// figures and claims first (fig*, thm*, fact*), then extensions (ext-*),
// then ablations (abl-*); alphabetical within each group.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	group := func(id string) int {
		switch {
		case strings.HasPrefix(id, "fig"):
			return 0
		case strings.HasPrefix(id, "thm"), strings.HasPrefix(id, "fact"):
			return 1
		case strings.HasPrefix(id, "ext"):
			return 2
		default:
			return 3
		}
	}
	sort.SliceStable(out, func(a, b int) bool {
		ga, gb := group(out[a].ID), group(out[b].ID)
		if ga != gb {
			return ga < gb
		}
		return out[a].ID < out[b].ID
	})
	return out
}

// Lookup returns the experiment with the given ID.
func Lookup(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("%w: %q", ErrUnknownExperiment, id)
}

// warnerFront evaluates the Warner sweep under the bound delta and returns
// its Pareto front.
func warnerFront(prior []float64, records int, delta float64, steps int) ([]pareto.Point, error) {
	ms, err := rr.WarnerSweep(len(prior), steps)
	if err != nil {
		return nil, err
	}
	var pts []pareto.Point
	for _, m := range ms {
		ok, err := metrics.MeetsBound(m, prior, delta)
		if err != nil || !ok {
			continue
		}
		ev, err := metrics.Evaluate(m, prior, records)
		if err != nil {
			continue // singular sweep members have no inversion utility
		}
		pts = append(pts, pareto.Point{Privacy: ev.Privacy, Utility: ev.Utility})
	}
	return pareto.FrontPoints(pts), nil
}

// optrrRun executes the OptRR search and returns its result.
func optrrRun(prior []float64, records int, delta float64, cfg Config) (core.Result, error) {
	cc := core.DefaultConfig(prior, records, delta)
	cc.Generations = cfg.Generations
	cc.Seed = cfg.Seed
	cc.Context = cfg.Context
	cc.Islands = cfg.Islands
	cc.MigrateEvery = cfg.MigrateEvery
	opt, err := core.New(cc)
	if err != nil {
		return core.Result{}, err
	}
	return opt.Run()
}

// frontComparison runs one Warner-vs-OptRR comparison and assembles the
// standard report skeleton with the paper's two universal shape checks:
// OptRR is never dominated by Warner, and OptRR covers most of the Warner
// front.
func frontComparison(id, title, claim string, gen dataset.Generator, delta float64, cfg Config) (*Report, *core.Result, error) {
	cfg = cfg.withDefaults()
	prior := gen.Prior(cfg.Categories)
	wf, err := warnerFront(prior, cfg.Records, delta, cfg.WarnerSteps)
	if err != nil {
		return nil, nil, err
	}
	res, err := optrrRun(prior, cfg.Records, delta, cfg)
	if err != nil {
		return nil, nil, err
	}
	of := res.FrontPoints()

	covOW := pareto.Coverage(of, wf)
	covWO := pareto.Coverage(wf, of)
	wMin, wMax := pareto.PrivacyRange(wf)
	oMin, oMax := pareto.PrivacyRange(of)

	rep := &Report{
		ID:         id,
		Title:      title,
		PaperClaim: claim,
		Series: []Series{
			{Name: "warner", Points: wf},
			{Name: "optrr", Points: of},
		},
		Checks: []Check{
			{
				Name:   "optrr front is not dominated by the Warner front",
				Pass:   covWO <= 0.02,
				Detail: fmt.Sprintf("coverage(warner over optrr) = %.3f", covWO),
			},
			{
				Name:   "optrr front covers most of the Warner front",
				Pass:   covOW >= 0.5,
				Detail: fmt.Sprintf("coverage(optrr over warner) = %.3f", covOW),
			},
		},
		Notes: []string{
			fmt.Sprintf("warner privacy range [%.3f, %.3f] (%d points)", wMin, wMax, len(wf)),
			fmt.Sprintf("optrr privacy range [%.3f, %.3f] (%d points)", oMin, oMax, len(of)),
			fmt.Sprintf("coverage optrr>warner %.3f, warner>optrr %.3f", covOW, covWO),
			fmt.Sprintf("search: %d generations, %d evaluations", res.Generations, res.Evaluations),
		},
	}
	// Per-privacy-level utility comparison at shared levels.
	levels := sharedLevels(wf, of, 5)
	for _, lvl := range levels {
		wu, wok := pareto.UtilityAt(wf, lvl)
		ou, ook := pareto.UtilityAt(of, lvl)
		if wok && ook {
			rep.Notes = append(rep.Notes, fmt.Sprintf("privacy>=%.2f: warner MSE %.3e, optrr MSE %.3e (ratio %.2f)", lvl, wu, ou, wu/ou))
		}
	}
	return rep, &res, nil
}

// sharedLevels picks k privacy levels inside the intersection of both
// fronts' ranges.
func sharedLevels(a, b []pareto.Point, k int) []float64 {
	aMin, aMax := pareto.PrivacyRange(a)
	bMin, bMax := pareto.PrivacyRange(b)
	lo := aMin
	if bMin > lo {
		lo = bMin
	}
	hi := aMax
	if bMax < hi {
		hi = bMax
	}
	if hi <= lo {
		return nil
	}
	out := make([]float64, 0, k)
	for i := 1; i <= k; i++ {
		out = append(out, lo+(hi-lo)*float64(i)/float64(k+1))
	}
	return out
}

// rangeExtensionCheck encodes the paper's Figure 4 claim that OptRR's front
// reaches strictly lower privacy than Warner's under the same bound.
func rangeExtensionCheck(rep *Report, minGain float64) {
	var wf, of []pareto.Point
	for _, s := range rep.Series {
		switch s.Name {
		case "warner":
			wf = s.Points
		case "optrr":
			of = s.Points
		}
	}
	wMin, _ := pareto.PrivacyRange(wf)
	oMin, _ := pareto.PrivacyRange(of)
	rep.Checks = append(rep.Checks, Check{
		Name:   fmt.Sprintf("optrr extends the privacy range below Warner's minimum by at least %.2f", minGain),
		Pass:   oMin <= wMin-minGain,
		Detail: fmt.Sprintf("warner min privacy %.3f, optrr min privacy %.3f", wMin, oMin),
	})
}

// epsilonMatchCheck verifies that at every shared privacy level the OptRR
// front's best MSE is within (1+tol) of the Warner front's — i.e. OptRR
// never does meaningfully worse than the analytic one-parameter family even
// where that family is the true optimum.
func epsilonMatchCheck(rep *Report, tol float64) Check {
	return epsilonMatchCheckNamed(rep, "warner", "optrr", tol)
}

// epsilonMatchCheckNamed is epsilonMatchCheck with explicit series names for
// the baseline and the optimized front.
func epsilonMatchCheckNamed(rep *Report, baseName, optName string, tol float64) Check {
	var wf, of []pareto.Point
	for _, s := range rep.Series {
		switch s.Name {
		case baseName:
			wf = s.Points
		case optName:
			of = s.Points
		}
	}
	worst := 0.0
	for _, lvl := range sharedLevels(wf, of, 20) {
		wu, wok := pareto.UtilityAt(wf, lvl)
		ou, ook := pareto.UtilityAt(of, lvl)
		if !wok || !ook || wu <= 0 {
			continue
		}
		if ratio := ou/wu - 1; ratio > worst {
			worst = ratio
		}
	}
	return Check{
		Name:   fmt.Sprintf("optrr MSE within %.0f%% of Warner's at every shared privacy level", tol*100),
		Pass:   worst <= tol,
		Detail: fmt.Sprintf("worst relative MSE excess = %.3f", worst),
	}
}

// sameRangeCheck encodes the Figure 5(b) exception: on the uniform prior the
// two schemes cover (approximately) the same privacy range.
func sameRangeCheck(rep *Report, tol float64) {
	var wf, of []pareto.Point
	for _, s := range rep.Series {
		switch s.Name {
		case "warner":
			wf = s.Points
		case "optrr":
			of = s.Points
		}
	}
	wMin, _ := pareto.PrivacyRange(wf)
	oMin, _ := pareto.PrivacyRange(of)
	diff := oMin - wMin
	if diff < 0 {
		diff = -diff
	}
	rep.Checks = append(rep.Checks, Check{
		Name:   "privacy ranges coincide on the uniform prior",
		Pass:   diff <= tol,
		Detail: fmt.Sprintf("warner min privacy %.3f, optrr min privacy %.3f", wMin, oMin),
	})
}

// sortByPrivacy returns pts sorted ascending (copy).
func sortByPrivacy(pts []pareto.Point) []pareto.Point {
	out := append([]pareto.Point(nil), pts...)
	sort.Slice(out, func(a, b int) bool { return out[a].Privacy < out[b].Privacy })
	return out
}
