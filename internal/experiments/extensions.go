package experiments

import (
	"fmt"

	"optrr/internal/core"
	"optrr/internal/dataset"
	"optrr/internal/metrics"
	"optrr/internal/pareto"
	"optrr/internal/rr"
)

// Extension experiments beyond the paper's figures, documented in DESIGN.md:
// ext-multi exercises the multi-dimensional randomized response the paper
// names as future work (Section VII); ext-gain exercises the generalized
// adversary of Section IV-A as an optimization objective.

func init() {
	register(Experiment{
		ID:    "ext-multi",
		Title: "Extension: multi-dimensional OptRR (paper future work, Section VII)",
		Run:   runExtMulti,
	})
}

// extMultiJoint is a correlated two-attribute world: a 4-category attribute
// and a 3-category attribute whose values co-vary (mass concentrated near
// the diagonal), so the joint distribution is not a product of marginals and
// record-level privacy is a genuinely joint quantity.
func extMultiJoint() ([]float64, []int) {
	sizes := []int{4, 3}
	joint := make([]float64, 12)
	var sum float64
	for a := 0; a < 4; a++ {
		for b := 0; b < 3; b++ {
			d := a - b
			if d < 0 {
				d = -d
			}
			w := 1.0 / float64(1+2*d)
			joint[a*3+b] = w
			sum += w
		}
	}
	for i := range joint {
		joint[i] /= sum
	}
	return joint, sizes
}

func runExtMulti(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	joint, sizes := extMultiJoint()
	const delta = 0.8

	// Baseline: the same Warner parameter applied to every attribute,
	// swept, kept when the record-level bound holds.
	var basePts []pareto.Point
	for k := 1; k < cfg.WarnerSteps; k++ {
		p := float64(k) / float64(cfg.WarnerSteps)
		ms := make([]*rr.Matrix, len(sizes))
		ok := true
		for d, n := range sizes {
			m, err := rr.Warner(n, p)
			if err != nil {
				ok = false
				break
			}
			ms[d] = m
		}
		if !ok {
			continue
		}
		mp, err := metrics.JointMaxPosterior(ms, joint)
		if err != nil || mp > delta {
			continue
		}
		ev, err := metrics.JointEvaluate(ms, joint, cfg.Records)
		if err != nil {
			continue
		}
		basePts = append(basePts, pareto.Point{Privacy: ev.Privacy, Utility: ev.Utility})
	}
	baseFront := pareto.FrontPoints(basePts)

	// Jointly optimized per-attribute tuples. The joint evaluation is ~an
	// order of magnitude costlier than the 1-D case, so the budget is
	// scaled down proportionally.
	gens := cfg.Generations / 10
	if gens < 100 {
		gens = 100
	}
	res, err := core.OptimizeMulti(core.MultiConfig{
		Joint:       joint,
		Sizes:       sizes,
		Records:     cfg.Records,
		Delta:       delta,
		Generations: gens,
		Seed:        cfg.Seed,
		Context:     cfg.Context,
	})
	if err != nil {
		return nil, err
	}
	optFront := res.FrontPoints()

	covOB := pareto.Coverage(optFront, baseFront)
	covBO := pareto.Coverage(baseFront, optFront)
	bMin, bMax := pareto.PrivacyRange(baseFront)
	oMin, oMax := pareto.PrivacyRange(optFront)

	rep := &Report{
		ID:         "ext-multi",
		Title:      "Multi-dimensional OptRR vs per-attribute Warner (record-level bound 0.8)",
		PaperClaim: "future work: extend the approach to the multi-dimensional randomized response technique (Section VII)",
		Series: []Series{
			{Name: "warner-tuple", Points: baseFront},
			{Name: "optrr-multi", Points: optFront},
		},
		Checks: []Check{
			{
				Name:   "optimized tuples cover at least half of the Warner-tuple front",
				Pass:   covOB >= 0.5,
				Detail: fmt.Sprintf("coverage(optrr-multi over warner-tuple) = %.3f", covOB),
			},
			// The dense 1-parameter baseline sweep can ε-cover discrete
			// search output where the symmetric family is near-optimal;
			// the meaningful claim is that the optimized tuples are never
			// meaningfully worse and win where asymmetry helps, so the
			// second check is tolerance-based (cf. fig5b).
		},
		Notes: []string{
			fmt.Sprintf("warner-tuple privacy range [%.3f, %.3f] (%d points)", bMin, bMax, len(baseFront)),
			fmt.Sprintf("optrr-multi privacy range [%.3f, %.3f] (%d points)", oMin, oMax, len(optFront)),
			fmt.Sprintf("coverage optrr-multi>warner-tuple %.3f, warner-tuple>optrr-multi %.3f", covOB, covBO),
			fmt.Sprintf("search: %d generations, %d joint evaluations", res.Generations, res.Evaluations),
			"record-level privacy: the adversary observes the full disguised record",
		},
	}
	rep.Checks = append(rep.Checks, epsilonMatchCheckNamed(rep, "warner-tuple", "optrr-multi", 0.10))
	return rep, nil
}

// ext-triobj: the objective space is pluggable beyond the paper's pair
// (privacy, utility); this experiment drives the optimizer with the
// ldp-epsilon objective as a third axis and verifies the 3-D front is valid
// end to end — mutually non-dominated, with finite ε on every member — and
// that adding the axis cannot shrink the non-dominated set below its own
// privacy/utility projection.
func init() {
	register(Experiment{
		ID:    "ext-triobj",
		Title: "Extension: tri-objective search (privacy, utility, ldp-epsilon)",
		Run:   runExtTriObjective,
	})
}

func runExtTriObjective(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	prior := dataset.DefaultNormal(cfg.Categories).Prior(cfg.Categories)
	const delta = 0.8
	obj, ok := metrics.ObjectiveByName("ldp-epsilon")
	if !ok {
		return nil, fmt.Errorf("ldp-epsilon objective not registered")
	}

	cc := core.DefaultConfig(prior, cfg.Records, delta)
	cc.Generations = cfg.Generations
	cc.Seed = cfg.Seed
	cc.Context = cfg.Context
	cc.Objectives = []metrics.Objective{obj}
	opt, err := core.New(cc)
	if err != nil {
		return nil, err
	}
	res, err := opt.Run()
	if err != nil {
		return nil, err
	}
	front := res.FrontPoints()

	// The privacy/utility projection of the same points, non-dominated in
	// 2-D: dropping an axis can only merge points into dominance, never
	// split them, so |front| ≥ |projection front|.
	proj := make([]pareto.Point, len(front))
	for i, p := range front {
		proj[i] = pareto.Point{Privacy: p.Privacy, Utility: p.Utility}
	}
	projFront := pareto.FrontPoints(proj)

	nonDominated := true
	for i := range front {
		for j := range front {
			if i != j && front[i].Dominates(front[j]) {
				nonDominated = false
			}
		}
	}
	epsOK := len(front) > 0
	epsLo, epsHi, haveRange := pareto.ObjectiveRange(front, 2)
	for _, p := range front {
		eps := p.ExtraAt(0)
		if !(eps >= 0 && eps <= metrics.LDPEpsilonCap) {
			epsOK = false
		}
	}
	pMin, pMax := pareto.PrivacyRange(front)

	rep := &Report{
		ID:              "ext-triobj",
		Title:           "Tri-objective OptRR: privacy, utility and local-DP epsilon",
		PaperClaim:      "the framework searches the Pareto-optimal set of disguise matrices (Section V); the objective pair generalizes to k axes",
		ExtraObjectives: []string{"ldp-epsilon"},
		Series: []Series{
			{Name: "optrr-3d", Points: front},
			{Name: "projection-2d", Points: projFront},
		},
		Checks: []Check{
			{
				Name:   "3-D front is mutually non-dominated",
				Pass:   nonDominated,
				Detail: fmt.Sprintf("%d points checked pairwise", len(front)),
			},
			{
				Name:   "every front member has a finite capped LDP epsilon",
				Pass:   epsOK && haveRange,
				Detail: fmt.Sprintf("epsilon range [%.3f, %.3f] over %d points", epsLo, epsHi, len(front)),
			},
			{
				Name:   "3-D front is no smaller than its privacy/utility projection front",
				Pass:   len(front) >= len(projFront),
				Detail: fmt.Sprintf("%d 3-D points vs %d projected", len(front), len(projFront)),
			},
		},
		Notes: []string{
			fmt.Sprintf("privacy range [%.3f, %.3f]; search: %d generations, %d evaluations", pMin, pMax, res.Generations, res.Evaluations),
			"third objective: tightest ε such that the matrix is ε-LDP, capped at metrics.LDPEpsilonCap, minimized",
		},
	}
	return rep, nil
}

// ext-gain: Section IV-A defines privacy for an arbitrary accuracy function
// G and derives the Bayes-optimal adversary; the paper then evaluates only
// the 0/1 case. This experiment optimizes under an ordinal adversary (near
// misses on an age-like attribute still leak) and shows that the resulting
// matrices dominate the 0/1-optimized ones when both are judged by the
// ordinal adversary — the metric choice materially changes which matrices
// are optimal.
func init() {
	register(Experiment{
		ID:    "ext-gain",
		Title: "Extension: optimizing under the generalized (ordinal) adversary of Section IV-A",
		Run:   runExtGain,
	})
}

func runExtGain(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	prior := dataset.DefaultAdult().Generator().Prior(cfg.Categories)
	const delta = 0.8
	gain := metrics.OrdinalGain(cfg.Categories)

	run := func(ordinal bool) (core.Result, error) {
		cc := core.DefaultConfig(prior, cfg.Records, delta)
		cc.Generations = cfg.Generations
		cc.Seed = cfg.Seed
		cc.Context = cfg.Context
		if ordinal {
			cc.PrivacyFn = func(m *rr.Matrix, p []float64) (float64, error) {
				return metrics.PrivacyWithGain(m, p, gain)
			}
		}
		opt, err := core.New(cc)
		if err != nil {
			return core.Result{}, err
		}
		return opt.Run()
	}
	zeroOne, err := run(false)
	if err != nil {
		return nil, err
	}
	ordinal, err := run(true)
	if err != nil {
		return nil, err
	}

	// Judge both fronts by the ordinal adversary.
	rescore := func(res core.Result) ([]pareto.Point, error) {
		var pts []pareto.Point
		for _, ind := range res.Front {
			m, err := ind.Genome.Matrix()
			if err != nil {
				return nil, err
			}
			priv, err := metrics.PrivacyWithGain(m, prior, gain)
			if err != nil {
				return nil, err
			}
			pts = append(pts, pareto.Point{Privacy: priv, Utility: ind.Eval.Utility})
		}
		return pareto.FrontPoints(pts), nil
	}
	zf, err := rescore(zeroOne)
	if err != nil {
		return nil, err
	}
	of, err := rescore(ordinal)
	if err != nil {
		return nil, err
	}

	covOZ := pareto.Coverage(of, zf)
	covZO := pareto.Coverage(zf, of)
	zMin, zMax := pareto.PrivacyRange(zf)
	oMin, oMax := pareto.PrivacyRange(of)
	return &Report{
		ID:         "ext-gain",
		Title:      "Ordinal-adversary optimization vs 0/1 optimization, judged ordinally",
		PaperClaim: "Bayes-estimate theory provides optimal estimates for a variety of accuracy functions G (Section IV-A); the metric choice matters",
		Series: []Series{
			{Name: "zeroone-opt", Points: zf},
			{Name: "ordinal-opt", Points: of},
		},
		Checks: []Check{
			{
				Name:   "optimizing the ordinal metric dominates under the ordinal adversary",
				Pass:   covOZ >= 0.8,
				Detail: fmt.Sprintf("coverage(ordinal-opt over zeroone-opt) = %.3f", covOZ),
			},
			{
				Name:   "the 0/1-optimized front does not cover the ordinal-optimized one",
				Pass:   covZO <= 0.1,
				Detail: fmt.Sprintf("coverage(zeroone-opt over ordinal-opt) = %.3f", covZO),
			},
		},
		Notes: []string{
			fmt.Sprintf("zeroone-opt (rescored): %d points, ordinal privacy [%.3f, %.3f]", len(zf), zMin, zMax),
			fmt.Sprintf("ordinal-opt:            %d points, ordinal privacy [%.3f, %.3f]", len(of), oMin, oMax),
			"Adult-like (ordinal) age prior; delta = 0.8 enforced in both runs",
		},
	}, nil
}

// ext-joint-scale: the Kronecker-factored evaluation path removes the dense
// joint-channel materialization, so the multi-dimensional search scales to
// product spaces the dense oracle refuses. This experiment runs a d = 6
// Adult-like problem whose joint space (8·7·6·5·4·3 = 20160 cells) exceeds
// the dense cap of 2^14, verifies the dense path indeed errors there, and
// re-scores every front member through the factored workspace to confirm
// the record-level bound.
func init() {
	register(Experiment{
		ID:    "ext-joint-scale",
		Title: "Extension: factored multi-attribute search beyond the dense joint cap",
		Run:   runExtJointScale,
	})
}

// extJointScaleWorld is a correlated six-attribute world sized just past the
// dense cap: mass decays with the spread between attribute values (scaled to
// a common range), so the joint is not a product of marginals.
func extJointScaleWorld() ([]float64, []int) {
	sizes := []int{8, 7, 6, 5, 4, 3}
	total := 1
	for _, n := range sizes {
		total *= n
	}
	joint := make([]float64, total)
	var sum float64
	rec := make([]int, len(sizes))
	for idx := 0; idx < total; idx++ {
		v := idx
		for d := len(sizes) - 1; d >= 0; d-- {
			rec[d] = v % sizes[d]
			v /= sizes[d]
		}
		lo, hi := 1.0, 0.0
		for d, n := range sizes {
			f := float64(rec[d]) / float64(n-1)
			if f < lo {
				lo = f
			}
			if f > hi {
				hi = f
			}
		}
		w := 1.0 / (1 + 8*(hi-lo))
		joint[idx] = w
		sum += w
	}
	for i := range joint {
		joint[i] /= sum
	}
	return joint, sizes
}

func runExtJointScale(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	joint, sizes := extJointScaleWorld()
	const delta = 0.5

	ms := make([]*rr.Matrix, len(sizes))
	for d, n := range sizes {
		ms[d] = rr.Identity(n)
	}
	_, denseErr := metrics.JointChannel(ms)

	// The per-evaluation cost is O(N·Σn_d) instead of O(N²), but N = 20160
	// still makes each evaluation ~1000× a 1-D one; keep the budget small.
	gens := cfg.Generations / 100
	if gens < 20 {
		gens = 20
	}
	res, err := core.OptimizeMulti(core.MultiConfig{
		Joint:          joint,
		Sizes:          sizes,
		Records:        cfg.Records,
		Delta:          delta,
		Generations:    gens,
		PopulationSize: 12,
		ArchiveSize:    12,
		OmegaSize:      60,
		Seed:           cfg.Seed,
		Context:        cfg.Context,
	})
	if err != nil {
		return nil, err
	}
	front := res.FrontPoints()

	// Re-score every front member through the factored workspace: the
	// record-level bound must hold on re-evaluation, not just as a stored
	// number.
	boundOK, rescored := true, 0
	for _, ind := range res.Front {
		tuple, err := ind.Matrices()
		if err != nil {
			return nil, err
		}
		mp, err := metrics.JointMaxPosterior(tuple, joint)
		if err != nil {
			return nil, err
		}
		rescored++
		if mp > delta+1e-9 {
			boundOK = false
		}
	}
	pMin, pMax := pareto.PrivacyRange(front)
	cells := len(joint)

	return &Report{
		ID:         "ext-joint-scale",
		Title:      "Factored multi-attribute search on a 20160-cell joint space",
		PaperClaim: "future work: extend the approach to the multi-dimensional randomized response technique (Section VII)",
		Series: []Series{
			{Name: "optrr-multi-factored", Points: front},
		},
		Checks: []Check{
			{
				Name:   "joint space exceeds the dense materialization cap",
				Pass:   cells > 1<<14 && denseErr != nil,
				Detail: fmt.Sprintf("%d cells > %d; dense JointChannel: %v", cells, 1<<14, denseErr),
			},
			{
				Name:   "search produces a non-empty front beyond the dense cap",
				Pass:   len(front) > 0,
				Detail: fmt.Sprintf("%d front members after %d generations", len(front), res.Generations),
			},
			{
				Name:   "record-level bound holds on factored re-scoring of every member",
				Pass:   boundOK && rescored == len(res.Front),
				Detail: fmt.Sprintf("%d members re-scored against delta = %.2f", rescored, delta),
			},
			{
				Name:   "front spans a non-degenerate privacy range",
				Pass:   len(front) > 1 && pMax > pMin,
				Detail: fmt.Sprintf("privacy range [%.4f, %.4f]", pMin, pMax),
			},
		},
		Notes: []string{
			fmt.Sprintf("sizes %v, %d joint cells, delta = %.2f", sizes, cells, delta),
			fmt.Sprintf("search: %d generations, %d joint evaluations", res.Generations, res.Evaluations),
			"evaluation is Kronecker-factored: O(N·Σn_d) per tuple, joint channel never materialized",
		},
	}, nil
}
