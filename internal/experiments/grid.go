package experiments

import (
	"runtime"
	"sync"
	"time"

	"optrr/internal/obs"
)

// Outcome is the result of one grid cell: the experiment together with its
// report (or error) and wall-clock cost. Skipped marks cells that never ran
// because the run's context was already cancelled when the cell was picked
// up.
type Outcome struct {
	Experiment Experiment
	Report     *Report
	Err        error
	Elapsed    time.Duration
	Skipped    bool
}

// Passed reports whether the cell produced a report with every check green.
func (o Outcome) Passed() bool {
	return o.Err == nil && !o.Skipped && o.Report != nil && o.Report.Passed()
}

// GridOptions carries the optional observability hooks of a grid run.
type GridOptions struct {
	// Recorder receives one "experiment.cell" event per completed cell
	// (worker id, elapsed time, outcome) plus an "experiment.grid" event at
	// the start. Nil means no trace.
	Recorder obs.Recorder
	// Registry, when non-nil, counts cells into "experiments.cells.run" and
	// "experiments.cells.skipped" and gauges the effective worker count as
	// "experiments.workers".
	Registry *obs.Registry
}

// gridWorkers resolves the worker count of a grid over n cells: Workers when
// positive, GOMAXPROCS otherwise, never more than one per cell.
func gridWorkers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// RunGrid runs every experiment of the grid under the shared configuration,
// fanning the cells out over cfg.Workers goroutines (zero means GOMAXPROCS).
// The returned outcomes are in input order regardless of completion order.
//
// Every cell receives cfg verbatim — exactly what the historical serial loop
// passed — and each experiment derives its own random streams from
// Config.Seed internally, so the figures are bit-for-bit identical to a
// serial run at every worker count. Cells picked up after cfg.Context is
// cancelled are marked Skipped instead of running.
func RunGrid(exps []Experiment, cfg Config, opts GridOptions) []Outcome {
	out := make([]Outcome, len(exps))
	if len(exps) == 0 {
		return out
	}
	workers := gridWorkers(cfg.Workers, len(exps))
	rec := obs.OrNop(opts.Recorder)
	if opts.Registry != nil {
		opts.Registry.Gauge("experiments.workers").Set(float64(workers))
	}
	if rec.Enabled() {
		rec.Record("experiment.grid", obs.Fields{
			"cells":   len(exps),
			"workers": workers,
		})
	}

	// Cells are claimed from a channel rather than pre-partitioned: the cost
	// of a cell varies by orders of magnitude (fact1 is instant, fig4a runs a
	// full EMO search), so static assignment would leave workers idle.
	cells := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for i := range cells {
				out[i] = runCell(exps[i], cfg, worker, rec, opts.Registry)
			}
		}(w)
	}
	for i := range exps {
		cells <- i
	}
	close(cells)
	wg.Wait()
	return out
}

// runCell executes one grid cell and records its telemetry.
func runCell(e Experiment, cfg Config, worker int, rec obs.Recorder, reg *obs.Registry) Outcome {
	o := Outcome{Experiment: e}
	if ctx := cfg.Context; ctx != nil && ctx.Err() != nil {
		o.Err = ctx.Err()
		o.Skipped = true
		if reg != nil {
			reg.Counter("experiments.cells.skipped").Inc()
		}
		return o
	}
	start := time.Now()
	o.Report, o.Err = e.Run(cfg)
	o.Elapsed = time.Since(start)
	if reg != nil {
		reg.Counter("experiments.cells.run").Inc()
	}
	if rec.Enabled() {
		rec.Record("experiment.cell", obs.Fields{
			"id":     e.ID,
			"worker": worker,
			"ms":     float64(o.Elapsed.Microseconds()) / 1e3,
			"ok":     o.Err == nil,
		})
	}
	return o
}
