package experiments

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"

	"optrr/internal/obs"
)

// gridBudget is a micro configuration: large enough that the searches do
// real work, small enough that the worker sweep below stays in test time.
func gridBudget() Config {
	return Config{
		Categories:  6,
		Records:     2000,
		Generations: 60,
		WarnerSteps: 60,
		Seed:        1,
	}
}

// gridExperiments picks a cheap but non-trivial subset of the registry: one
// closed-form experiment and two that run the full optimizer.
func gridExperiments(t *testing.T) []Experiment {
	t.Helper()
	var exps []Experiment
	for _, id := range []string{"fact1", "thm2", "fig4a"} {
		e, err := Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		exps = append(exps, e)
	}
	return exps
}

// TestRunGridDeterministicAcrossWorkers is the grid's reproducibility
// contract: every worker count yields deep-equal reports in input order.
func TestRunGridDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("grid sweep skipped in -short mode")
	}
	exps := gridExperiments(t)
	cfg := gridBudget()
	cfg.Workers = 1
	want := RunGrid(exps, cfg, GridOptions{})
	for i, o := range want {
		if o.Err != nil {
			t.Fatalf("serial cell %s: %v", exps[i].ID, o.Err)
		}
	}
	for _, w := range []int{2, runtime.GOMAXPROCS(0)} {
		cfg.Workers = w
		got := RunGrid(exps, cfg, GridOptions{})
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d outcomes, want %d", w, len(got), len(want))
		}
		for i := range want {
			if got[i].Experiment.ID != exps[i].ID {
				t.Fatalf("workers=%d: outcome[%d] is %s, want %s", w, i, got[i].Experiment.ID, exps[i].ID)
			}
			if got[i].Err != nil {
				t.Fatalf("workers=%d cell %s: %v", w, exps[i].ID, got[i].Err)
			}
			if !reflect.DeepEqual(got[i].Report, want[i].Report) {
				t.Errorf("workers=%d: report %s differs from the serial run", w, exps[i].ID)
			}
		}
	}
}

// TestRunGridTelemetry checks the cell events and counters: one
// experiment.cell per cell, a grid event carrying the worker count, and the
// registry tallies.
func TestRunGridTelemetry(t *testing.T) {
	exps := gridExperiments(t)[:2] // fact1 + thm2: no optimizer runs needed
	cfg := Config{WarnerSteps: 60, Generations: 1, Seed: 1, Workers: 2}
	rec := obs.NewMemory()
	reg := obs.NewRegistry()
	out := RunGrid(exps, cfg, GridOptions{Recorder: rec, Registry: reg})
	for i, o := range out {
		if o.Err != nil {
			t.Fatalf("cell %s: %v", exps[i].ID, o.Err)
		}
		if !o.Passed() {
			t.Errorf("cell %s did not pass", exps[i].ID)
		}
	}
	grid := rec.Named("experiment.grid")
	if len(grid) != 1 {
		t.Fatalf("%d experiment.grid events, want 1", len(grid))
	}
	if got := grid[0].Fields["workers"]; got != 2 {
		t.Errorf("grid workers field = %v, want 2", got)
	}
	cells := rec.Named("experiment.cell")
	if len(cells) != len(exps) {
		t.Fatalf("%d experiment.cell events, want %d", len(cells), len(exps))
	}
	seen := map[string]bool{}
	for _, ev := range cells {
		id, _ := ev.Fields["id"].(string)
		seen[id] = true
		if ok, _ := ev.Fields["ok"].(bool); !ok {
			t.Errorf("cell %s recorded ok=false", id)
		}
	}
	for _, e := range exps {
		if !seen[e.ID] {
			t.Errorf("no experiment.cell event for %s", e.ID)
		}
	}
	if got := reg.Counter("experiments.cells.run").Value(); got != int64(len(exps)) {
		t.Errorf("cells.run = %d, want %d", got, len(exps))
	}
	if got := reg.Gauge("experiments.workers").Value(); got != 2 {
		t.Errorf("workers gauge = %v, want 2", got)
	}
}

// TestRunGridCancelledContext: cells picked up after cancellation are marked
// Skipped with the context error, never run.
func TestRunGridCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	exps := gridExperiments(t)
	cfg := gridBudget()
	cfg.Context = ctx
	cfg.Workers = 2
	reg := obs.NewRegistry()
	out := RunGrid(exps, cfg, GridOptions{Registry: reg})
	for i, o := range out {
		if !o.Skipped {
			t.Errorf("cell %s ran under a cancelled context", exps[i].ID)
		}
		if !errors.Is(o.Err, context.Canceled) {
			t.Errorf("cell %s error = %v, want context.Canceled", exps[i].ID, o.Err)
		}
	}
	if got := reg.Counter("experiments.cells.skipped").Value(); got != int64(len(exps)) {
		t.Errorf("cells.skipped = %d, want %d", got, len(exps))
	}
}

// TestGridWorkersResolution pins the worker resolution rules.
func TestGridWorkersResolution(t *testing.T) {
	cases := []struct{ workers, n, want int }{
		{0, 8, runtime.GOMAXPROCS(0)}, // unset → GOMAXPROCS
		{3, 8, 3},
		{16, 3, 3}, // never more than one per cell
		{-2, 5, runtime.GOMAXPROCS(0)},
	}
	for _, tc := range cases {
		want := tc.want
		if want > tc.n {
			want = tc.n
		}
		if got := gridWorkers(tc.workers, tc.n); got != want {
			t.Errorf("gridWorkers(%d, %d) = %d, want %d", tc.workers, tc.n, got, want)
		}
	}
}
