package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WriteCSV emits every series of the report as rows of
// (series, privacy, utility), suitable for external plotting. Reports with
// ExtraObjectives gain one named column per extra axis; a point that does
// not carry an axis (e.g. a two-objective baseline series in a k-dim
// report) leaves that cell empty.
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{"series", "privacy", "utility"}, r.ExtraObjectives...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, s := range r.Series {
		for _, p := range s.Points {
			rec := []string{
				s.Name,
				strconv.FormatFloat(p.Privacy, 'g', 10, 64),
				strconv.FormatFloat(p.Utility, 'g', 10, 64),
			}
			for t := range r.ExtraObjectives {
				if 2+t < p.Dim() {
					rec = append(rec, strconv.FormatFloat(p.ExtraAt(t), 'g', 10, 64))
				} else {
					rec = append(rec, "")
				}
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// asciiWidth and asciiHeight size the text plot.
const (
	asciiWidth  = 72
	asciiHeight = 22
)

// ASCIIPlot renders the report's series as a text scatter plot in the
// paper's axes: privacy on x, utility (MSE) on y. Each series uses its own
// glyph; overlapping cells show the later series.
func (r *Report) ASCIIPlot() string {
	glyphs := []byte{'w', 'o', 'u', 'f', '#', '+'}
	var minX, maxX, minY, maxY float64
	first := true
	for _, s := range r.Series {
		for _, p := range s.Points {
			if first {
				minX, maxX, minY, maxY = p.Privacy, p.Privacy, p.Utility, p.Utility
				first = false
				continue
			}
			minX = math.Min(minX, p.Privacy)
			maxX = math.Max(maxX, p.Privacy)
			minY = math.Min(minY, p.Utility)
			maxY = math.Max(maxY, p.Utility)
		}
	}
	if first {
		return "(no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, asciiHeight)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", asciiWidth))
	}
	for si, s := range r.Series {
		g := glyphs[si%len(glyphs)]
		for _, p := range s.Points {
			x := int((p.Privacy - minX) / (maxX - minX) * float64(asciiWidth-1))
			y := int((p.Utility - minY) / (maxY - minY) * float64(asciiHeight-1))
			row := asciiHeight - 1 - y // utility grows upward
			grid[row][x] = g
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — utility (MSE) vs privacy\n", r.Title)
	for si, s := range r.Series {
		fmt.Fprintf(&b, "  %c = %s (%d pts)\n", glyphs[si%len(glyphs)], s.Name, len(s.Points))
	}
	fmt.Fprintf(&b, "  y: [%.3e, %.3e]  x: [%.3f, %.3f]\n", minY, maxY, minX, maxX)
	for _, row := range grid {
		b.WriteString("  |")
		b.Write(row)
		b.WriteString("|\n")
	}
	b.WriteString("  +" + strings.Repeat("-", asciiWidth) + "+\n")
	return b.String()
}

// Summary renders the report's claims, checks and notes as text.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s\n", r.ID, r.Title)
	if r.PaperClaim != "" {
		fmt.Fprintf(&b, "   paper: %s\n", r.PaperClaim)
	}
	for _, c := range r.Checks {
		mark := "PASS"
		if !c.Pass {
			mark = "FAIL"
		}
		fmt.Fprintf(&b, "   [%s] %s (%s)\n", mark, c.Name, c.Detail)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "   note: %s\n", n)
	}
	return b.String()
}
