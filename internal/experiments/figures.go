package experiments

import (
	"fmt"
	"math/big"

	"optrr/internal/dataset"
	"optrr/internal/metrics"
	"optrr/internal/pareto"
	"optrr/internal/randx"
	"optrr/internal/rr"
)

// Figure 4: normal-distribution data at four privacy bounds. The paper's
// reported Warner minimum-privacy floors are 0.6, 0.5, 0.4, 0.22 and OptRR's
// approximately 0.4, 0.3, 0.22, 0.17.
func init() {
	type fig4 struct {
		id    string
		delta float64
		gain  float64 // required range extension
	}
	for _, f := range []fig4{
		{"fig4a", 0.6, 0.04},
		{"fig4b", 0.7, 0.05},
		{"fig4c", 0.8, 0.05},
		{"fig4d", 0.9, 0.02},
	} {
		f := f
		register(Experiment{
			ID:    f.id,
			Title: fmt.Sprintf("Figure 4: normal prior, delta = %.1f", f.delta),
			Run: func(cfg Config) (*Report, error) {
				cfg = cfg.withDefaults()
				claim := fmt.Sprintf("OptRR reaches lower privacy than Warner under delta=%.1f and a lower MSE throughout the shared range", f.delta)
				rep, _, err := frontComparison(f.id, fmt.Sprintf("Normal prior, delta=%.1f", f.delta), claim,
					dataset.DefaultNormal(cfg.Categories), f.delta, cfg)
				if err != nil {
					return nil, err
				}
				rangeExtensionCheck(rep, f.gain)
				return rep, nil
			},
		})
	}
}

// Figure 5(a): gamma(1, 2) prior at delta = 0.75. The paper reports roughly
// a two-times-wider privacy range and a clear win above privacy 0.62.
func init() {
	register(Experiment{
		ID:    "fig5a",
		Title: "Figure 5(a): gamma(1,2) prior, delta = 0.75",
		Run: func(cfg Config) (*Report, error) {
			cfg = cfg.withDefaults()
			rep, _, err := frontComparison("fig5a", "Gamma(1,2) prior, delta=0.75",
				"OptRR covers roughly twice the Warner privacy range and clearly wins at high privacy",
				dataset.GammaGenerator(1, 2), 0.75, cfg)
			if err != nil {
				return nil, err
			}
			rangeExtensionCheck(rep, 0.03)
			return rep, nil
		},
	})
}

// Figure 5(b): discrete uniform prior at delta = 0.75. The paper reports the
// same privacy range as Warner (the exception) but better MSE inside it.
func init() {
	register(Experiment{
		ID:    "fig5b",
		Title: "Figure 5(b): discrete uniform prior, delta = 0.75",
		Run: func(cfg Config) (*Report, error) {
			cfg = cfg.withDefaults()
			rep, _, err := frontComparison("fig5b", "Uniform prior, delta=0.75",
				"OptRR finds better matrices but covers the same privacy range as Warner",
				dataset.UniformGenerator(), 0.75, cfg)
			if err != nil {
				return nil, err
			}
			// On the uniform prior the symmetric Warner family is
			// near-optimal over the low-privacy half, so the strict
			// no-domination check is replaced by an ε-tolerance version:
			// OptRR may trail the continuous Warner curve by a small
			// relative MSE margin but must match it closely everywhere and
			// win at the top (which the coverage check captures).
			rep.Checks[0] = epsilonMatchCheck(rep, 0.10)
			sameRangeCheck(rep, 0.1)
			return rep, nil
		},
	})
}

// Figure 5(c): the first attribute of the Adult data set at delta = 0.75
// (substituted by the calibrated Adult-like age model; see DESIGN.md). The
// paper shows attribute 1 and states that the other attributes behave the
// same way, so the experiment additionally sweeps two more Adult-like
// attributes (education, hours-per-week) and checks the trend on each.
func init() {
	register(Experiment{
		ID:    "fig5c",
		Title: "Figure 5(c): Adult attributes (age shown; education, hours checked), delta = 0.75",
		Run:   runFig5c,
	})
}

func runFig5c(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	attrs := dataset.AdultAttributes()
	// The headline report plots the first attribute, like the paper.
	rep, _, err := frontComparison("fig5c", "Adult-like age prior, delta=0.75",
		"OptRR consistently outperforms Warner on all Adult attributes",
		attrs[0], 0.75, cfg)
	if err != nil {
		return nil, err
	}
	// The remaining attributes are verified for the same dominance trend;
	// a seed offset keeps their searches independent.
	for i, gen := range attrs[1:] {
		sub := cfg
		sub.Seed = cfg.Seed + uint64(i) + 1
		subRep, _, err := frontComparison("fig5c-"+gen.Name, gen.Name+", delta=0.75", "",
			gen, 0.75, sub)
		if err != nil {
			return nil, err
		}
		var wf, of []pareto.Point
		for _, s := range subRep.Series {
			switch s.Name {
			case "warner":
				wf = s.Points
			case "optrr":
				of = s.Points
			}
		}
		covOW := pareto.Coverage(of, wf)
		covWO := pareto.Coverage(wf, of)
		rep.Checks = append(rep.Checks, Check{
			Name:   fmt.Sprintf("trend holds on %s", gen.Name),
			Pass:   covWO <= 0.05 && covOW >= 0.5,
			Detail: fmt.Sprintf("coverage optrr>warner %.3f, warner>optrr %.3f", covOW, covWO),
		})
		wMin, wMax := pareto.PrivacyRange(wf)
		oMin, oMax := pareto.PrivacyRange(of)
		rep.Notes = append(rep.Notes,
			fmt.Sprintf("%s: warner [%.3f, %.3f], optrr [%.3f, %.3f]", gen.Name, wMin, wMax, oMin, oMax))
	}
	return rep, nil
}

// Figure 5(d): the gamma experiment re-scored with the iterative estimator
// of Equation (3) instead of the closed-form inversion MSE. The paper
// reports that OptRR's matrices still win: a wider privacy range and lower
// measured MSE.
func init() {
	register(Experiment{
		ID:    "fig5d",
		Title: "Figure 5(d): gamma(1,2), utility re-measured with the iterative estimator",
		Run:   runFig5d,
	})
}

func runFig5d(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	const delta = 0.75
	prior := dataset.GammaGenerator(1, 2).Prior(cfg.Categories)
	rng := randx.New(cfg.Seed + 0xF15D)

	// Trials are the dominant cost; keep the re-scoring budget fixed.
	const trials = 8

	rescore := func(ms []*rr.Matrix) ([]pareto.Point, error) {
		var pts []pareto.Point
		for _, m := range ms {
			ok, err := metrics.MeetsBound(m, prior, delta)
			if err != nil || !ok {
				continue
			}
			priv, err := metrics.Privacy(m, prior)
			if err != nil {
				return nil, err
			}
			mse, err := metrics.EmpiricalUtilityIterative(m, prior, cfg.Records, trials, rng)
			if err != nil {
				return nil, err
			}
			pts = append(pts, pareto.Point{Privacy: priv, Utility: mse})
		}
		return pareto.FrontPoints(pts), nil
	}

	// Warner sweep, re-scored. A coarser sweep keeps the Monte-Carlo cost
	// manageable; the front shape is insensitive to the step count here.
	steps := cfg.WarnerSteps / 10
	if steps < 50 {
		steps = 50
	}
	wm, err := rr.WarnerSweep(cfg.Categories, steps)
	if err != nil {
		return nil, err
	}
	wf, err := rescore(wm)
	if err != nil {
		return nil, err
	}

	// OptRR optimal set (searched with the fast closed form, exactly as in
	// the paper), then re-scored with the iterative estimator.
	res, err := optrrRun(prior, cfg.Records, delta, cfg)
	if err != nil {
		return nil, err
	}
	om, err := res.Matrices()
	if err != nil {
		return nil, err
	}
	of, err := rescore(om)
	if err != nil {
		return nil, err
	}

	covOW := pareto.Coverage(of, wf)
	covWO := pareto.Coverage(wf, of)
	wMin, wMax := pareto.PrivacyRange(wf)
	oMin, oMax := pareto.PrivacyRange(of)
	rep := &Report{
		ID:         "fig5d",
		Title:      "Gamma(1,2), iterative-estimator utility, delta=0.75",
		PaperClaim: "OptRR keeps a wider privacy range and much lower MSE when utility is measured by the iterative approach",
		Series: []Series{
			{Name: "warner", Points: wf},
			{Name: "optrr", Points: of},
		},
		Checks: []Check{
			{
				Name:   "optrr still covers most of the Warner front under iterative scoring",
				Pass:   covOW >= 0.5,
				Detail: fmt.Sprintf("coverage(optrr over warner) = %.3f", covOW),
			},
			{
				Name:   "warner does not cover the optrr front under iterative scoring",
				Pass:   covWO <= 0.25,
				Detail: fmt.Sprintf("coverage(warner over optrr) = %.3f", covWO),
			},
		},
		Notes: []string{
			fmt.Sprintf("warner privacy range [%.3f, %.3f] (%d points)", wMin, wMax, len(wf)),
			fmt.Sprintf("optrr privacy range [%.3f, %.3f] (%d points)", oMin, oMax, len(of)),
			fmt.Sprintf("iterative re-scoring: %d Monte-Carlo trials per matrix", trials),
		},
	}
	return rep, nil
}

// Theorem 2: the Warner, UP and FRAPP parameter sweeps generate the same
// matrix family and therefore the same (privacy, utility) solution set.
func init() {
	register(Experiment{
		ID:    "thm2",
		Title: "Theorem 2: Warner, UP and FRAPP solution sets are identical",
		Run:   runThm2,
	})
}

func runThm2(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	n := cfg.Categories
	prior := dataset.DefaultNormal(n).Prior(n)

	sweep := func(name string, build func(gamma float64) (*rr.Matrix, error)) (Series, error) {
		var pts []pareto.Point
		for k := 1; k < cfg.WarnerSteps; k++ {
			gamma := float64(k) / float64(cfg.WarnerSteps)
			m, err := build(gamma)
			if err != nil {
				return Series{}, err
			}
			ev, err := metrics.Evaluate(m, prior, cfg.Records)
			if err != nil {
				continue // singular point (gamma = 1/n)
			}
			pts = append(pts, pareto.Point{Privacy: ev.Privacy, Utility: ev.Utility})
		}
		return Series{Name: name, Points: sortByPrivacy(pts)}, nil
	}

	warner, err := sweep("warner", func(g float64) (*rr.Matrix, error) { return rr.Warner(n, rr.GammaToWarnerP(n, g)) })
	if err != nil {
		return nil, err
	}
	up, err := sweep("up", func(g float64) (*rr.Matrix, error) {
		q := rr.GammaToUPQ(n, g)
		if q < 0 {
			q = 0 // UP covers only gamma >= 1/n; clamp maps it to gamma=1/n
		}
		return rr.UniformPerturbation(n, q)
	})
	if err != nil {
		return nil, err
	}
	frapp, err := sweep("frapp", func(g float64) (*rr.Matrix, error) {
		return rr.FRAPP(n, rr.GammaToFRAPPLambda(n, g))
	})
	if err != nil {
		return nil, err
	}

	// Check: for every gamma in the shared range, the three schemes yield
	// identical matrices (hence identical objective points).
	maxDiff := 0.0
	for k := 1; k < cfg.WarnerSteps; k++ {
		gamma := float64(k) / float64(cfg.WarnerSteps)
		if gamma <= 1.0/float64(n) || gamma >= 1 {
			continue
		}
		w, err := rr.Warner(n, rr.GammaToWarnerP(n, gamma))
		if err != nil {
			return nil, err
		}
		u, err := rr.UniformPerturbation(n, rr.GammaToUPQ(n, gamma))
		if err != nil {
			return nil, err
		}
		f, err := rr.FRAPP(n, rr.GammaToFRAPPLambda(n, gamma))
		if err != nil {
			return nil, err
		}
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				for _, d := range []float64{w.Theta(j, i) - u.Theta(j, i), w.Theta(j, i) - f.Theta(j, i)} {
					if d < 0 {
						d = -d
					}
					if d > maxDiff {
						maxDiff = d
					}
				}
			}
		}
	}
	return &Report{
		ID:         "thm2",
		Title:      "Warner/UP/FRAPP equivalence",
		PaperClaim: "The solution sets for the Warner, UP, and FRAPP schemes are identical (Theorem 2)",
		Series:     []Series{warner, up, frapp},
		Checks: []Check{{
			Name:   "matrices coincide across the shared parameter range",
			Pass:   maxDiff < 1e-9,
			Detail: fmt.Sprintf("max element difference = %.3g", maxDiff),
		}},
		Notes: []string{
			"Warner covers diagonal gamma in [0,1]; UP covers [1/n,1]; FRAPP covers (0,1): identical where defined",
		},
	}, nil
}

// Fact 1: the brute-force search-space size. For n = 10 and d = 100 the
// paper reports 1.98e126 combinations.
func init() {
	register(Experiment{
		ID:    "fact1",
		Title: "Fact 1: brute-force search-space size",
		Run:   runFact1,
	})
}

// SearchSpaceSize returns C(d+n-1, d)^n, the number of RR matrices whose
// entries are multiples of 1/d (Fact 1).
func SearchSpaceSize(n, d int) *big.Int {
	c := new(big.Int).Binomial(int64(d+n-1), int64(d))
	return new(big.Int).Exp(c, big.NewInt(int64(n)), nil)
}

func runFact1(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	size := SearchSpaceSize(10, 100)
	f := new(big.Float).SetInt(size)
	digits := len(size.Text(10))
	// The paper reports 1.98e126: 127 decimal digits, leading 198.
	lead := size.Text(10)[:3]
	return &Report{
		ID:         "fact1",
		Title:      "Brute-force search-space size at n=10, d=100",
		PaperClaim: "the number of combinations can be 1.98e126, which is infeasible to search",
		Checks: []Check{{
			Name:   "C(109,100)^10 is approximately 1.98e126",
			Pass:   digits == 127 && lead == "198",
			Detail: fmt.Sprintf("computed %s (%d digits)", f.Text('e', 3), digits),
		}},
		Notes: []string{fmt.Sprintf("exact value has %d decimal digits", digits)},
	}, nil
}
