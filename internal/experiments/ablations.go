package experiments

import (
	"fmt"

	"optrr/internal/core"
	"optrr/internal/dataset"
	"optrr/internal/pareto"
)

// Ablation experiments (DESIGN.md §5): each disables one of the paper's
// design choices and compares the resulting front against the unmodified
// optimizer on the same budget and seed. The comparison currency is the
// paper's: MSE at matched privacy levels, plus front size for the Ω
// ablation (whose whole point is keeping more optimal matrices).

type ablation struct {
	id, title string
	tweak     func(*core.Config)
	// check receives (baseline front, ablated front) and returns the
	// experiment's verdict.
	check func(base, abl []pareto.Point) Check
}

func init() {
	ablations := []ablation{
		{
			id:    "abl-omega",
			title: "Ablation: optimal set Ω disabled (plain SPEA2)",
			tweak: func(c *core.Config) { c.OmegaSize = 0 },
			check: func(base, abl []pareto.Point) Check {
				return Check{
					Name:   "Ω multiplies the number of optimal matrices delivered",
					Pass:   len(base) >= 2*len(abl),
					Detail: fmt.Sprintf("front size %d with Ω vs %d without", len(base), len(abl)),
				}
			},
		},
		{
			id:    "abl-symmetric",
			title: "Ablation: symmetric-only search (the Agrawal–Haritsa restriction)",
			tweak: func(c *core.Config) { c.SymmetricOnly = true },
			check: func(base, abl []pareto.Point) Check {
				// The paper's argument against [11]: asymmetric matrices
				// achieve better utility. Compare MSE at matched levels.
				worse := mseExcess(abl, base)
				return Check{
					Name:   "asymmetric search beats the symmetric restriction on utility",
					Pass:   worse >= 0.10,
					Detail: fmt.Sprintf("symmetric-only front pays %.0f%% more MSE at its worst matched level", worse*100),
				}
			},
		},
		{
			id:    "abl-reject",
			title: "Ablation: reject bound violations instead of repairing",
			tweak: func(c *core.Config) { c.BoundMode = core.BoundReject },
			check: func(base, abl []pareto.Point) Check {
				worse := mseExcess(abl, base)
				return Check{
					Name:   "repair (Section V-G) outperforms rejection",
					Pass:   worse >= 0.05,
					Detail: fmt.Sprintf("reject-mode front pays %.0f%% more MSE at its worst matched level", worse*100),
				}
			},
		},
		{
			id:    "abl-nsga2",
			title: "Ablation: NSGA-II engine in place of SPEA2",
			tweak: func(c *core.Config) { c.Engine = core.EngineNSGA2 },
			check: func(base, abl []pareto.Point) Check {
				// The paper picked SPEA2 from a comparison study; the
				// verifiable claim here is that SPEA2 is at least
				// competitive — never substantially worse than NSGA-II on
				// this problem.
				worse := mseExcess(base, abl)
				return Check{
					Name:   "SPEA2 is at least competitive with NSGA-II",
					Pass:   worse <= 0.25,
					Detail: fmt.Sprintf("SPEA2 front pays %.0f%% more MSE at its worst matched level", worse*100),
				}
			},
		},
		{
			id:    "abl-naive-mutation",
			title: "Ablation: naive renormalizing mutation",
			tweak: func(c *core.Config) { c.MutationStyle = core.MutationNaive },
			check: func(base, abl []pareto.Point) Check {
				// The operators are close on mild priors; the claim checked
				// is only that the paper's operator is never substantially
				// worse.
				worse := mseExcess(base, abl)
				return Check{
					Name:   "the proportional operator is not substantially worse than naive",
					Pass:   worse <= 0.25,
					Detail: fmt.Sprintf("proportional front pays %.0f%% more MSE at its worst matched level", worse*100),
				}
			},
		},
	}
	for _, a := range ablations {
		a := a
		register(Experiment{
			ID:    a.id,
			Title: a.title,
			Run: func(cfg Config) (*Report, error) {
				return runAblation(a, cfg)
			},
		})
	}
	register(Experiment{
		ID:    "abl-weighted-sum",
		Title: "Ablation: weighted-sum single-objective GA (the approach Section V rejects)",
		Run:   runWeightedSumAblation,
	})
}

// runWeightedSumAblation compares the EMO against the weighted-sum baseline
// at a matched evaluation budget, reproducing the Das & Dennis argument the
// paper cites: the scalarized search cannot populate the front properly.
func runWeightedSumAblation(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	prior := dataset.DefaultNormal(cfg.Categories).Prior(cfg.Categories)
	const delta = 0.8

	wsGens := cfg.Generations / 20
	if wsGens < 30 {
		wsGens = 30
	}
	wsRes, err := core.OptimizeWeightedSum(core.WeightedSumConfig{
		Prior:          prior,
		Records:        cfg.Records,
		Delta:          delta,
		Weights:        21,
		PopulationSize: 30,
		Generations:    wsGens,
		Seed:           cfg.Seed,
		Context:        cfg.Context,
	})
	if err != nil {
		return nil, err
	}

	cc := core.DefaultConfig(prior, cfg.Records, delta)
	cc.Seed = cfg.Seed
	cc.Context = cfg.Context
	cc.Generations = wsRes.Evaluations / 40 // matched evaluation budget
	if cc.Generations < 50 {
		cc.Generations = 50
	}
	opt, err := core.New(cc)
	if err != nil {
		return nil, err
	}
	emoRes, err := opt.Run()
	if err != nil {
		return nil, err
	}

	wf := wsRes.FrontPoints()
	ef := emoRes.FrontPoints()
	covEW := pareto.Coverage(ef, wf)
	covWE := pareto.Coverage(wf, ef)
	wMin, wMax := pareto.PrivacyRange(wf)
	eMin, eMax := pareto.PrivacyRange(ef)
	return &Report{
		ID:         "abl-weighted-sum",
		Title:      "Weighted-sum scalarization vs the EMO, matched evaluation budget",
		PaperClaim: "a combined single fitness cannot generate proper members of the optimal set (Section V, citing Das & Dennis)",
		Series: []Series{
			{Name: "weighted-sum", Points: wf},
			{Name: "emo", Points: ef},
		},
		Checks: []Check{
			{
				Name:   "the EMO front covers much of the weighted-sum front",
				Pass:   covEW >= 0.3,
				Detail: fmt.Sprintf("coverage(emo over weighted-sum) = %.3f", covEW),
			},
			{
				Name:   "the weighted-sum front does not cover the EMO front",
				Pass:   covWE <= 0.2,
				Detail: fmt.Sprintf("coverage(weighted-sum over emo) = %.3f", covWE),
			},
		},
		Notes: []string{
			fmt.Sprintf("weighted-sum: %d points, privacy [%.3f, %.3f], %d evaluations", len(wf), wMin, wMax, wsRes.Evaluations),
			fmt.Sprintf("emo:          %d points, privacy [%.3f, %.3f], %d evaluations", len(ef), eMin, eMax, emoRes.Evaluations),
			"weighted-sum front is the union of every individual the baseline evaluated (most generous accounting)",
		},
	}, nil
}

// mseExcess returns the worst relative MSE excess of front a over front b
// across their shared privacy levels (0 when a is everywhere at least as
// good).
func mseExcess(a, b []pareto.Point) float64 {
	worst := 0.0
	for _, lvl := range sharedLevels(a, b, 20) {
		au, aok := pareto.UtilityAt(a, lvl)
		bu, bok := pareto.UtilityAt(b, lvl)
		if !aok || !bok || bu <= 0 {
			continue
		}
		if e := au/bu - 1; e > worst {
			worst = e
		}
	}
	return worst
}

func runAblation(a ablation, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	prior := dataset.DefaultNormal(cfg.Categories).Prior(cfg.Categories)
	const delta = 0.8

	run := func(tweak func(*core.Config)) ([]pareto.Point, *core.Result, error) {
		cc := core.DefaultConfig(prior, cfg.Records, delta)
		cc.Generations = cfg.Generations
		cc.Seed = cfg.Seed
		cc.Context = cfg.Context
		if tweak != nil {
			tweak(&cc)
		}
		opt, err := core.New(cc)
		if err != nil {
			return nil, nil, err
		}
		res, err := opt.Run()
		if err != nil {
			return nil, nil, err
		}
		return res.FrontPoints(), &res, nil
	}

	base, baseRes, err := run(nil)
	if err != nil {
		return nil, err
	}
	abl, ablRes, err := run(a.tweak)
	if err != nil {
		return nil, err
	}
	bMin, bMax := pareto.PrivacyRange(base)
	aMin, aMax := pareto.PrivacyRange(abl)
	return &Report{
		ID:         a.id,
		Title:      a.title,
		PaperClaim: "design-choice ablation (DESIGN.md §5); not a paper figure",
		Series: []Series{
			{Name: "baseline", Points: base},
			{Name: "ablated", Points: abl},
		},
		Checks: []Check{a.check(base, abl)},
		Notes: []string{
			fmt.Sprintf("baseline: %d points, privacy [%.3f, %.3f], %d evaluations", len(base), bMin, bMax, baseRes.Evaluations),
			fmt.Sprintf("ablated:  %d points, privacy [%.3f, %.3f], %d evaluations", len(abl), aMin, aMax, ablRes.Evaluations),
			"normal prior, delta = 0.8, identical seed and budget",
		},
	}, nil
}
