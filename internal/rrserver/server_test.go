package rrserver

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"optrr/internal/obs"
	"optrr/internal/randx"
	"optrr/internal/rr"
	"optrr/internal/rrclient"
)

func mustWarner(t testing.TB, n int, p float64) *rr.Matrix {
	t.Helper()
	m, err := rr.Warner(n, p)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// startService stands the full HTTP stack up on a loopback port: the
// collection API mounted beside the obs debug endpoints, exactly as
// cmd/rrserver wires it.
func startService(t testing.TB, cfg Config) (*Server, *obs.Server, string) {
	t.Helper()
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	httpSrv, err := obs.ServeMux("127.0.0.1:0", cfg.Registry, srv.Register)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { httpSrv.Close() })
	return srv, httpSrv, "http://" + httpSrv.Addr()
}

// TestServerEndToEnd is the paper's whole pipeline over real HTTP: SDK
// clients draw private values from a known prior, disguise them locally
// through the fetched scheme, and report only the disguise; the server's
// /v1/estimate then recovers the prior within its own stated per-category
// confidence half-widths.
func TestServerEndToEnd(t *testing.T) {
	m := mustWarner(t, 5, 0.75)
	reg := obs.NewRegistry()
	// z = 3.29 (~99.9% per category) so the joint five-category coverage
	// check holds with headroom; the default 1.96 leaves ~23% odds that
	// some category strays outside its own interval.
	const z = 3.29
	srv, _, base := startService(t, Config{Matrix: m, Registry: reg, Z: z})

	prior := []float64{0.35, 0.25, 0.2, 0.15, 0.05}
	alias, err := randx.NewAlias(prior)
	if err != nil {
		t.Fatal(err)
	}
	values := randx.New(42)
	client := rrclient.New(base, rrclient.WithSeed(43))
	ctx := context.Background()

	// The scheme the client samples through is the deployed matrix.
	scheme, err := client.Scheme(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !scheme.Equal(m, 0) {
		t.Fatal("served scheme differs from the deployed matrix")
	}

	const reports = 60000
	batch := make([]int, 0, 2000)
	for i := 0; i < reports; i++ {
		batch = append(batch, alias.Draw(values))
		if len(batch) == cap(batch) {
			if _, err := client.ReportValues(ctx, batch); err != nil {
				t.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	if srv.Collector().Count() != reports {
		t.Fatalf("server holds %d reports, want %d", srv.Collector().Count(), reports)
	}

	est, err := client.Estimate(ctx, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	if est.Reports != reports || est.Z != z {
		t.Fatalf("estimate header: reports=%d z=%v", est.Reports, est.Z)
	}
	for k, p := range prior {
		if d := math.Abs(est.Estimate[k] - p); d > est.HalfWidth[k] {
			t.Errorf("category %d: |%.4f - %.4f| = %.4f exceeds half-width %.4f",
				k, est.Estimate[k], p, d, est.HalfWidth[k])
		}
	}
	if est.Margin <= 0 {
		t.Fatalf("margin = %v, want positive", est.Margin)
	}
	if est.ReportsForMargin <= reports {
		t.Fatalf("reports_for_margin = %d for a tighter target, want > %d",
			est.ReportsForMargin, reports)
	}
	// The ingest path fed the latency histogram and collector counters.
	if got := reg.Counter("collector.reports").Value(); got != reports {
		t.Fatalf("collector.reports = %d, want %d", got, reports)
	}
	if reg.Histogram("rrserver.ingest_ns", obs.LogBuckets(1000, 4, 12)).Count() == 0 {
		t.Fatal("ingest latency histogram never observed")
	}
}

// TestServerErrorPaths pins the HTTP status contract: malformed and
// out-of-range reports are 400 with batch atomicity intact, an estimate
// before any ingestion is 409, a bad margin target is 400, and a wrong
// method is 405.
func TestServerErrorPaths(t *testing.T) {
	srv, _, base := startService(t, Config{Matrix: mustWarner(t, 3, 0.8)})

	post := func(path, body string) (int, string) {
		t.Helper()
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf strings.Builder
		var raw json.RawMessage
		json.NewDecoder(resp.Body).Decode(&raw) //nolint:errcheck
		buf.Write(raw)
		return resp.StatusCode, buf.String()
	}
	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := get("/v1/estimate"); code != http.StatusConflict {
		t.Fatalf("estimate on empty collector: %d, want 409", code)
	}
	if code, _ := post("/v1/report", `{"report": 7}`); code != http.StatusBadRequest {
		t.Fatalf("out-of-range report: %d, want 400", code)
	}
	if code, _ := post("/v1/report", `not json`); code != http.StatusBadRequest {
		t.Fatalf("malformed body: %d, want 400", code)
	}
	// Batch atomicity: a bad report anywhere rejects the whole batch.
	if code, _ := post("/v1/reports", `{"reports": [0, 1, 2, 3]}`); code != http.StatusBadRequest {
		t.Fatalf("batch with out-of-range report: %d, want 400", code)
	}
	if got := srv.Collector().Count(); got != 0 {
		t.Fatalf("rejected batch left %d reports behind", got)
	}
	if code, _ := post("/v1/reports", `{"reports": [0, 1, 2]}`); code != http.StatusOK {
		t.Fatalf("good batch: %d, want 200", code)
	}
	if code := get("/v1/estimate?margin=-1"); code != http.StatusBadRequest {
		t.Fatalf("negative margin: %d, want 400", code)
	}
	if code := get("/v1/estimate?z=bogus"); code != http.StatusBadRequest {
		t.Fatalf("unparseable z: %d, want 400", code)
	}
	if code := get("/v1/report"); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET on ingest route: %d, want 405", code)
	}
	// Oversized batch is refused before touching the collector.
	srv2, _, base2 := startService(t, Config{Matrix: mustWarner(t, 3, 0.8), MaxBatch: 2})
	resp, err := http.Post(base2+"/v1/reports", "application/json", strings.NewReader(`{"reports": [0, 1, 2]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch: %d, want 413", resp.StatusCode)
	}
	if got := srv2.Collector().Count(); got != 0 {
		t.Fatalf("oversized batch left %d reports behind", got)
	}
}

// TestServerSnapshotKillRestore is the crash-recovery acceptance path:
// persist, "kill" the process (drop the server), boot a fresh one on the
// same snapshot file, and verify zero counts were lost — then corrupt the
// file and verify the fresh boot falls back to an empty collector with a
// logged warning instead of serving poisoned estimates.
func TestServerSnapshotKillRestore(t *testing.T) {
	m := mustWarner(t, 4, 0.7)
	path := filepath.Join(t.TempDir(), "state.json")

	srv1, err := New(Config{Matrix: m, SnapshotPath: path, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	rng := randx.New(9)
	for i := 0; i < 12345; i++ {
		if err := srv1.Collector().Ingest(rng.Intn(4)); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv1.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	wantCounts := srv1.Collector().Counts()

	// Boot 2: same snapshot, nothing lost, bit-identical counts.
	srv2, err := New(Config{Matrix: m, SnapshotPath: path, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if !srv2.Restored() {
		t.Fatal("second boot did not restore from snapshot")
	}
	gotCounts := srv2.Collector().Counts()
	for k := range wantCounts {
		if gotCounts[k] != wantCounts[k] {
			t.Fatalf("restored counts[%d] = %d, want %d", k, gotCounts[k], wantCounts[k])
		}
	}

	// Corrupt file → warning + fresh collector.
	if err := os.WriteFile(path, []byte(`{"matrix": {"categories": 4`), 0o644); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var warnings []string
	logf := func(format string, args ...any) {
		mu.Lock()
		warnings = append(warnings, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	srv3, err := New(Config{Matrix: m, SnapshotPath: path, Logf: logf})
	if err != nil {
		t.Fatal(err)
	}
	if srv3.Restored() || srv3.Collector().Count() != 0 {
		t.Fatal("corrupt snapshot was not abandoned")
	}
	mu.Lock()
	warned := len(warnings) > 0 && strings.Contains(warnings[0], "rejected")
	mu.Unlock()
	if !warned {
		t.Fatalf("no rejection warning logged: %v", warnings)
	}

	// Snapshot taken under a different same-size scheme → fresh, warned.
	other, err := New(Config{Matrix: mustWarner(t, 4, 0.9), SnapshotPath: path, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	other.Collector().Ingest(1) //nolint:errcheck
	if err := other.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	warnings = nil
	srv4, err := New(Config{Matrix: m, SnapshotPath: path, Logf: logf})
	if err != nil {
		t.Fatal(err)
	}
	if srv4.Restored() || srv4.Collector().Count() != 0 {
		t.Fatal("scheme-mismatched snapshot was not abandoned")
	}
	mu.Lock()
	warned = len(warnings) > 0 && strings.Contains(warnings[0], "different disguise matrix")
	mu.Unlock()
	if !warned {
		t.Fatalf("no scheme-mismatch warning logged: %v", warnings)
	}
}

// TestServerDrainThenPersist mirrors cmd/rrserver's shutdown ordering:
// concurrent ingestion, close the HTTP server (drain), then cancel the
// snapshot loop — the final snapshot must hold every accepted report.
func TestServerDrainThenPersist(t *testing.T) {
	m := mustWarner(t, 3, 0.8)
	path := filepath.Join(t.TempDir(), "state.json")
	srv, httpSrv, base := startService(t, Config{
		Matrix: m, SnapshotPath: path, SnapshotEvery: time.Hour,
	})

	snapCtx, snapCancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- srv.Run(snapCtx) }()

	const workers, batches = 4, 20
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := rrclient.New(base, rrclient.WithSeed(uint64(100+w)))
			vals := randx.Stream(7, uint64(w))
			for b := 0; b < batches; b++ {
				batch := make([]int, 50)
				for i := range batch {
					batch[i] = vals.Intn(3)
				}
				if _, err := client.ReportValues(context.Background(), batch); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	accepted := srv.Collector().Count()
	if accepted != workers*batches*50 {
		t.Fatalf("accepted %d reports, want %d", accepted, workers*batches*50)
	}

	// Shutdown ordering: drain HTTP first, then final snapshot.
	if err := httpSrv.Close(); err != nil {
		t.Fatal(err)
	}
	snapCancel()
	if err := <-runDone; err != nil {
		t.Fatal(err)
	}

	recovered, err := New(Config{Matrix: m, SnapshotPath: path, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if !recovered.Restored() || recovered.Collector().Count() != accepted {
		t.Fatalf("recovered %d reports (restored=%v), want %d",
			recovered.Collector().Count(), recovered.Restored(), accepted)
	}
}

// TestLoadDriverMillionReports is the load acceptance run: a million
// reports through the full HTTP batch-ingest path, then a kill/restore
// cycle that must lose zero counts. -short keeps it out of quick edit
// loops; CI and the default `go test ./...` run it.
func TestLoadDriverMillionReports(t *testing.T) {
	if testing.Short() {
		t.Skip("million-report load driver skipped in -short mode")
	}
	m := mustWarner(t, 10, 0.75)
	path := filepath.Join(t.TempDir(), "state.json")
	srv, httpSrv, base := startService(t, Config{Matrix: m, SnapshotPath: path})

	const reports = 1_000_000
	res, err := LoadTest(context.Background(), LoadConfig{
		BaseURL:    base,
		Categories: 10,
		Reports:    reports,
		Batch:      10_000,
		Workers:    8,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if srv.Collector().Count() != reports {
		t.Fatalf("server holds %d reports, want %d", srv.Collector().Count(), reports)
	}
	if res.Batches != reports/10_000 {
		t.Fatalf("drove %d batches, want %d", res.Batches, reports/10_000)
	}
	if res.P99ms <= 0 || res.Throughput <= 0 {
		t.Fatalf("degenerate load result: %+v", res)
	}
	t.Logf("load: %.0f reports/sec, p50 %.2fms p90 %.2fms p99 %.2fms",
		res.Throughput, res.P50ms, res.P90ms, res.P99ms)

	// Kill/restore: persist, drop everything, boot fresh — zero loss.
	if err := srv.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	want := srv.Collector().Counts()
	httpSrv.Close()
	recovered, err := New(Config{Matrix: m, SnapshotPath: path, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	got := recovered.Collector().Counts()
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("restored counts[%d] = %d, want %d", k, got[k], want[k])
		}
	}
}

// BenchmarkServerIngest measures the HTTP batch-ingest path end to end
// (SDK disguise + POST /v1/reports + sharded collector landing): ns/op is
// per report, and the p99 per-batch round-trip latency is reported as
// p99-batch-ns for the pinned bench harness.
func BenchmarkServerIngest(b *testing.B) {
	m := mustWarner(b, 10, 0.75)
	_, _, base := startService(b, Config{Matrix: m})
	client := rrclient.New(base, rrclient.WithSeed(3))
	values := randx.New(4)
	ctx := context.Background()

	const batchSize = 1000
	batch := make([]int, batchSize)
	var lats []float64
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; done += batchSize {
		size := batchSize
		if rem := b.N - done; rem < size {
			size = rem
		}
		for i := 0; i < size; i++ {
			batch[i] = values.Intn(10)
		}
		t0 := time.Now()
		if _, err := client.ReportValues(ctx, batch[:size]); err != nil {
			b.Fatal(err)
		}
		lats = append(lats, float64(time.Since(t0).Nanoseconds()))
	}
	b.StopTimer()
	if len(lats) > 0 {
		sort.Float64s(lats)
		b.ReportMetric(quantileNs(lats, 0.99), "p99-batch-ns")
	}
}
