package rrserver

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"optrr/internal/randx"
	"optrr/internal/rrclient"
)

// LoadConfig parameterizes the load driver: a fleet of SDK clients pushing
// synthetic respondent values through the full HTTP disguise-and-report
// batch path against a running service.
type LoadConfig struct {
	// BaseURL is the service address, e.g. "http://127.0.0.1:8433".
	BaseURL string
	// Categories is the private-value domain; the driver draws values
	// uniformly from it (the disguise happens in the SDK, as in production).
	Categories int
	// Reports is the total number of reports to push.
	Reports int
	// Batch is the reports per POST /v1/reports call (<= 0 picks 1000).
	Batch int
	// Workers is the number of concurrent reporting clients (<= 0 picks 4).
	Workers int
	// Seed makes the driven values and disguise draws reproducible.
	Seed uint64
}

// LoadResult summarizes a load-driver run. Latencies are per-batch HTTP
// round trips measured at the client.
type LoadResult struct {
	Reports    int
	Batches    int
	Seconds    float64
	Throughput float64 // reports per second
	P50ms      float64
	P90ms      float64
	P99ms      float64
}

// LoadTest drives cfg.Reports synthetic reports through the service at
// cfg.BaseURL using cfg.Workers concurrent SDK clients, each disguising
// locally and POSTing cfg.Batch-sized batches. It returns client-side
// latency quantiles and throughput; the server's own view lands in its
// rrserver.ingest_ns histogram.
func LoadTest(ctx context.Context, cfg LoadConfig) (LoadResult, error) {
	if cfg.Reports <= 0 {
		return LoadResult{}, fmt.Errorf("rrserver: loadtest needs a positive report count, got %d", cfg.Reports)
	}
	if cfg.Categories < 2 {
		return LoadResult{}, fmt.Errorf("rrserver: loadtest needs at least 2 categories, got %d", cfg.Categories)
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 1000
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	batches := (cfg.Reports + cfg.Batch - 1) / cfg.Batch

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		lats     = make([][]float64, cfg.Workers)
	)
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Per-worker deterministic streams: one for the private values,
			// one (via WithSeed) for the SDK's disguise draws.
			values := randx.Stream(cfg.Seed, uint64(2*w))
			client := rrclient.New(cfg.BaseURL,
				rrclient.WithSeed(randx.StreamSeed(cfg.Seed, uint64(2*w+1))))
			batch := make([]int, 0, cfg.Batch)
			// Worker w drives batches w, w+Workers, w+2*Workers, ...
			for b := w; b < batches; b += cfg.Workers {
				if err := ctx.Err(); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				size := cfg.Batch
				if b == batches-1 {
					if rem := cfg.Reports - b*cfg.Batch; rem < size {
						size = rem
					}
				}
				batch = batch[:0]
				for i := 0; i < size; i++ {
					batch = append(batch, values.Intn(cfg.Categories))
				}
				t0 := time.Now()
				if _, err := client.ReportValues(ctx, batch); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				lats[w] = append(lats[w], float64(time.Since(t0).Nanoseconds()))
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	if firstErr != nil {
		return LoadResult{}, firstErr
	}

	all := make([]float64, 0, batches)
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Float64s(all)
	res := LoadResult{
		Reports:    cfg.Reports,
		Batches:    len(all),
		Seconds:    elapsed,
		Throughput: float64(cfg.Reports) / elapsed,
		P50ms:      quantileNs(all, 0.50) / 1e6,
		P90ms:      quantileNs(all, 0.90) / 1e6,
		P99ms:      quantileNs(all, 0.99) / 1e6,
	}
	return res, nil
}

// quantileNs reads the q-quantile from sorted latencies (nearest-rank).
func quantileNs(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
