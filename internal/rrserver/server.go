// Package rrserver implements the LDP collection service behind cmd/rrserver:
// an HTTP/JSON front over a sharded collector, realizing the paper's
// Section I deployment literally — a fleet of respondents disguises locally
// (internal/rrclient) and POSTs only disguised category indices; this server
// aggregates them and inverts the disguise matrix on demand to answer
// distribution queries with confidence half-widths.
//
// Endpoints (mounted on an obs debug server via obs.ServeMux, so /metrics,
// /healthz, expvar and pprof ride along):
//
//	POST /v1/report    {"report": k}        ingest one disguised report
//	POST /v1/reports   {"reports": [k...]}  ingest a batch atomically
//	GET  /v1/estimate  debiased estimate + per-category half-widths;
//	                   ?z= overrides the quantile, ?margin= adds the
//	                   projected report count to reach that margin
//	GET  /v1/scheme    the deployed disguise matrix (clients sample locally)
//
// The server periodically persists a JSON snapshot of the collection state
// (ShardedCollector.MarshalJSON) and restores it at boot; a corrupt or
// mismatched snapshot is rejected by the typed validation in RestoreSharded
// and the server falls back to a fresh collector with a logged warning
// rather than serving poisoned estimates.
package rrserver

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"optrr/internal/collector"
	"optrr/internal/obs"
	"optrr/internal/rr"
	"optrr/internal/rrapi"
)

// DefaultZ is the confidence quantile estimates are served at when the
// config leaves it zero (1.96 ≈ 95% normal coverage).
const DefaultZ = 1.96

// DefaultMaxBatch caps POST /v1/reports bodies when the config leaves
// MaxBatch zero. One batch lands under a single shard mutex, so the cap
// bounds both memory per request and the longest write a query can wait on.
const DefaultMaxBatch = 1 << 17

// Config parameterizes a collection service.
type Config struct {
	// Matrix is the deployed disguise scheme. Required, and must be
	// invertible for estimate queries to succeed.
	Matrix *rr.Matrix
	// Shards is the collector shard count (<= 0 picks the GOMAXPROCS
	// default).
	Shards int
	// Z is the confidence quantile for /v1/estimate (0 means DefaultZ).
	Z float64
	// SnapshotPath enables crash recovery: the collection state is restored
	// from this file at construction and persisted to it periodically and on
	// shutdown. Empty disables persistence.
	SnapshotPath string
	// SnapshotEvery is the persistence period (0 means 30s).
	SnapshotEvery time.Duration
	// MaxBatch caps the reports accepted in one POST /v1/reports
	// (0 means DefaultMaxBatch).
	MaxBatch int
	// Recorder receives collector and server trace events; nil records
	// nothing.
	Recorder obs.Recorder
	// Registry collects server metrics; nil uses a private registry.
	Registry *obs.Registry
	// Logf is the warning/lifecycle logger (nil means the stdlib log
	// package).
	Logf func(format string, args ...any)
}

// Server is the collection service: the sharded collector plus the HTTP
// handlers and the snapshot loop. Construct with New, mount with Register,
// run the persistence loop with Run.
type Server struct {
	cfg      Config
	col      *collector.ShardedCollector
	rec      obs.Recorder
	logf     func(string, ...any)
	restored bool

	ingestLat    *obs.Histogram // rrserver.ingest_ns: per-request ingest latency
	httpErrs     *obs.Counter   // rrserver.http_errors
	snapshots    *obs.Counter   // rrserver.snapshots
	snapshotErrs *obs.Counter   // rrserver.snapshot_errors
	snapshotSize *obs.Gauge     // rrserver.snapshot_bytes
}

// New builds the service and, when cfg.SnapshotPath names an existing file,
// attempts crash recovery. Recovery is strictly validated: a snapshot that
// fails RestoreSharded's integrity checks, or whose matrix differs from the
// deployed cfg.Matrix (reports disguised under a different scheme would make
// the inversion estimator meaningless), is abandoned with a logged warning
// and collection starts fresh.
func New(cfg Config) (*Server, error) {
	if cfg.Matrix == nil {
		return nil, fmt.Errorf("rrserver: config needs a disguise matrix")
	}
	if cfg.Z == 0 {
		cfg.Z = DefaultZ
	}
	if !(cfg.Z > 0) {
		return nil, fmt.Errorf("rrserver: z must be positive, got %v", cfg.Z)
	}
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = 30 * time.Second
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	s := &Server{
		cfg:  cfg,
		rec:  obs.OrNop(cfg.Recorder),
		logf: cfg.Logf,
		ingestLat: cfg.Registry.Histogram("rrserver.ingest_ns",
			obs.LogBuckets(1000, 4, 12)), // 1µs .. ~4s
		httpErrs:     cfg.Registry.Counter("rrserver.http_errors"),
		snapshots:    cfg.Registry.Counter("rrserver.snapshots"),
		snapshotErrs: cfg.Registry.Counter("rrserver.snapshot_errors"),
		snapshotSize: cfg.Registry.Gauge("rrserver.snapshot_bytes"),
	}
	if s.logf == nil {
		s.logf = log.Printf
	}
	if cfg.SnapshotPath != "" {
		s.col = s.recover(cfg.SnapshotPath)
	}
	if s.col == nil {
		s.col = collector.NewSharded(cfg.Matrix, cfg.Shards)
	}
	s.col.Instrument(cfg.Recorder, cfg.Registry)
	return s, nil
}

// recover tries to restore the collector from path, returning nil (start
// fresh) on any rejection. Only a clean "file does not exist" is silent;
// everything else is a warning an operator should see.
func (s *Server) recover(path string) *collector.ShardedCollector {
	data, err := os.ReadFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			s.logf("rrserver: reading snapshot %s: %v; starting fresh", path, err)
		}
		return nil
	}
	col, err := collector.RestoreSharded(data, s.cfg.Shards)
	if err != nil {
		s.logf("rrserver: snapshot %s rejected (%v); starting fresh", path, err)
		return nil
	}
	if got, want := col.Categories(), s.cfg.Matrix.N(); got != want {
		s.logf("rrserver: snapshot %s has %d categories, deployed scheme has %d; starting fresh", path, got, want)
		return nil
	}
	// Rebuild on the deployed matrix and fold the snapshot's counts in via
	// Merge, which re-checks the matrix entry by entry: a snapshot collected
	// under a different (same-sized) scheme is rejected here — its reports
	// were disguised with other probabilities and would bias every estimate.
	fresh := collector.NewSharded(s.cfg.Matrix, s.cfg.Shards)
	if err := fresh.Merge(col); err != nil {
		s.logf("rrserver: snapshot %s was collected under a different disguise matrix (%v); starting fresh", path, err)
		return nil
	}
	s.restored = true
	s.logf("rrserver: restored %d reports from %s", fresh.Count(), path)
	return fresh
}

// Restored reports whether construction recovered state from a snapshot.
func (s *Server) Restored() bool { return s.restored }

// Collector exposes the underlying sharded collector (e.g. for tests and
// the in-process load driver).
func (s *Server) Collector() *collector.ShardedCollector { return s.col }

// Z returns the configured confidence quantile.
func (s *Server) Z() float64 { return s.cfg.Z }

// Register mounts the /v1 API on mux. Pass it to obs.ServeMux so the API
// shares the debug server's listener, graceful shutdown, /healthz and
// /metrics.
func (s *Server) Register(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/report", s.handleReport)
	mux.HandleFunc("POST /v1/reports", s.handleBatch)
	mux.HandleFunc("GET /v1/estimate", s.handleEstimate)
	mux.HandleFunc("GET /v1/scheme", s.handleScheme)
}

// Run drives periodic snapshot persistence until ctx is done, then writes
// one final snapshot so a graceful shutdown loses nothing. With persistence
// disabled it just blocks until ctx is done. The returned error is the final
// snapshot's (nil on a clean drain). Cancel ctx only after the HTTP server
// has drained, so the final snapshot includes every in-flight ingest.
func (s *Server) Run(ctx context.Context) error {
	if s.cfg.SnapshotPath == "" {
		<-ctx.Done()
		return nil
	}
	t := time.NewTicker(s.cfg.SnapshotEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return s.SnapshotNow()
		case <-t.C:
			if err := s.SnapshotNow(); err != nil {
				s.logf("rrserver: periodic snapshot: %v", err)
			}
		}
	}
}

// SnapshotNow persists the collection state to cfg.SnapshotPath, atomically
// (write temp file, rename into place) so a crash mid-write never corrupts
// the previous good snapshot.
func (s *Server) SnapshotNow() error {
	if s.cfg.SnapshotPath == "" {
		return nil
	}
	start := time.Now()
	data, err := json.Marshal(s.col)
	if err != nil {
		s.snapshotErrs.Inc()
		return fmt.Errorf("rrserver: marshaling snapshot: %w", err)
	}
	dir := filepath.Dir(s.cfg.SnapshotPath)
	tmp, err := os.CreateTemp(dir, ".rrserver-snapshot-*")
	if err != nil {
		s.snapshotErrs.Inc()
		return fmt.Errorf("rrserver: snapshot temp file: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		s.snapshotErrs.Inc()
		return fmt.Errorf("rrserver: writing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		s.snapshotErrs.Inc()
		return fmt.Errorf("rrserver: closing snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.cfg.SnapshotPath); err != nil {
		os.Remove(tmp.Name())
		s.snapshotErrs.Inc()
		return fmt.Errorf("rrserver: installing snapshot: %w", err)
	}
	s.snapshots.Inc()
	s.snapshotSize.Set(float64(len(data)))
	if s.rec.Enabled() {
		s.rec.Record("rrserver.snapshot", obs.Fields{
			"reports": s.col.Count(),
			"bytes":   len(data),
			"ms":      float64(time.Since(start).Microseconds()) / 1e3,
		})
	}
	return nil
}

// handleReport ingests one disguised report.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req rrapi.ReportRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("decoding body: %v", err))
		return
	}
	if err := s.col.Ingest(req.Report); err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	s.ingestLat.Observe(float64(time.Since(start).Nanoseconds()))
	s.writeJSON(w, http.StatusOK, rrapi.IngestResponse{Accepted: 1})
}

// handleBatch ingests a batch of disguised reports atomically.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req rrapi.BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("decoding body: %v", err))
		return
	}
	if len(req.Reports) > s.cfg.MaxBatch {
		s.writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("batch of %d exceeds the %d-report limit", len(req.Reports), s.cfg.MaxBatch))
		return
	}
	if len(req.Reports) > 0 {
		if err := s.col.IngestBatch(req.Reports); err != nil {
			s.writeError(w, statusFor(err), err)
			return
		}
	}
	s.ingestLat.Observe(float64(time.Since(start).Nanoseconds()))
	s.writeJSON(w, http.StatusOK, rrapi.IngestResponse{Accepted: len(req.Reports)})
}

// handleEstimate serves the current reconstruction with confidence
// half-widths; ?z= overrides the quantile and ?margin= adds the projected
// report count needed to shrink the worst half-width to the target.
func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	z := s.cfg.Z
	if raw := r.URL.Query().Get("z"); raw != "" {
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad z %q: %v", raw, err))
			return
		}
		z = v
	}
	sum, err := s.col.Snapshot(z)
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	resp := rrapi.EstimateResponse{
		Reports:   sum.Reports,
		Disguised: sum.Disguised,
		Estimate:  sum.Estimate,
		HalfWidth: sum.HalfWidth,
		Z:         sum.Z,
	}
	for _, h := range sum.HalfWidth {
		if h > resp.Margin {
			resp.Margin = h
		}
	}
	if raw := r.URL.Query().Get("margin"); raw != "" {
		target, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad margin %q: %v", raw, err))
			return
		}
		need, err := s.col.ReportsForMargin(target, z)
		if err != nil {
			s.writeError(w, statusFor(err), err)
			return
		}
		resp.ReportsForMargin = need
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleScheme serves the deployed disguise matrix so clients can sample
// locally and never upload a true value.
func (s *Server) handleScheme(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, rrapi.SchemeResponse{Matrix: s.cfg.Matrix, Z: s.cfg.Z})
}

// statusFor maps collector errors onto HTTP statuses: client mistakes are
// 4xx, a not-yet-answerable estimate is 409, an undefined estimator is 500.
func statusFor(err error) int {
	switch {
	case errors.Is(err, collector.ErrBadReport), errors.Is(err, collector.ErrBadMargin):
		return http.StatusBadRequest
	case errors.Is(err, collector.ErrNoReports):
		return http.StatusConflict
	case errors.Is(err, rr.ErrSingular):
		return http.StatusInternalServerError
	default:
		return http.StatusBadRequest
	}
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone; nothing to do
}

func (s *Server) writeError(w http.ResponseWriter, code int, err error) {
	s.httpErrs.Inc()
	s.writeJSON(w, code, rrapi.ErrorResponse{Error: err.Error()})
}
