// Package rrserver implements the LDP collection service behind cmd/rrserver:
// an HTTP/JSON front over a sharded collector, realizing the paper's
// Section I deployment literally — a fleet of respondents disguises locally
// (internal/rrclient) and POSTs only disguised category indices; this server
// aggregates them and inverts the disguise matrix on demand to answer
// distribution queries with confidence half-widths.
//
// Endpoints (mounted on an obs debug server via obs.ServeMux, so /metrics,
// /healthz, expvar and pprof ride along):
//
//	POST /v1/report       {"report": k}        ingest one disguised report
//	POST /v1/reports      {"reports": [k...]}  ingest a batch atomically
//	GET  /v1/estimate     debiased estimate + confidence half-widths;
//	                      ?z= overrides the quantile. Dense mode returns the
//	                      full domain and supports ?margin= (projected report
//	                      count to reach the target). Sketch mode answers
//	                      point queries only: ?categories=3,17,42 is required
//	                      and ?margin= is rejected.
//	GET  /v1/scheme       the deployed disguise scheme (clients sample
//	                      locally); ETagged with the scheme version, so
//	                      If-None-Match polling is a 304 until redeployment
//	GET  /v1/heavyhitters ?threshold= (required) frequency floor, ?limit=
//	                      caps the result; scans the original domain
//
// The service is generic over rr.Scheme. A dense *rr.Matrix deployment
// behaves exactly as before (full-domain estimates from a ShardedCollector);
// a sketch scheme (internal/sketch) aggregates into the O(k·m)
// SketchCollector, decoupling server memory from the domain size, and serves
// point queries and heavy-hitter scans instead of dense reconstructions.
//
// The server periodically persists a JSON snapshot of the collection state
// and restores it at boot; a corrupt or mismatched snapshot is rejected by
// the typed validation in RestoreSharded/RestoreSketch (sketch snapshots
// embed the scheme envelope, compared by wire fingerprint) and the server
// falls back to a fresh collector with a logged warning rather than serving
// poisoned estimates.
package rrserver

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"optrr/internal/collector"
	"optrr/internal/obs"
	"optrr/internal/rr"
	"optrr/internal/rrapi"
)

// DefaultZ is the confidence quantile estimates are served at when the
// config leaves it zero (1.96 ≈ 95% normal coverage).
const DefaultZ = 1.96

// DefaultMaxBatch caps POST /v1/reports bodies when the config leaves
// MaxBatch zero. One batch lands under a single shard mutex, so the cap
// bounds both memory per request and the longest write a query can wait on.
const DefaultMaxBatch = 1 << 17

// Config parameterizes a collection service.
type Config struct {
	// Scheme is the deployed disguise scheme: a dense *rr.Matrix for
	// classic full-domain collection or a sketch scheme for large domains.
	// When nil, Matrix is used.
	Scheme rr.Scheme
	// Matrix is the deployed dense disguise matrix — the pre-Scheme form of
	// the same knob, kept so existing callers compile unchanged. Ignored
	// when Scheme is set. One of the two is required.
	Matrix *rr.Matrix
	// Shards is the collector shard count (<= 0 picks the GOMAXPROCS
	// default).
	Shards int
	// Z is the confidence quantile for /v1/estimate (0 means DefaultZ).
	Z float64
	// SnapshotPath enables crash recovery: the collection state is restored
	// from this file at construction and persisted to it periodically and on
	// shutdown. Empty disables persistence.
	SnapshotPath string
	// SnapshotEvery is the persistence period (0 means 30s).
	SnapshotEvery time.Duration
	// MaxBatch caps the reports accepted in one POST /v1/reports
	// (0 means DefaultMaxBatch).
	MaxBatch int
	// Recorder receives collector and server trace events; nil records
	// nothing.
	Recorder obs.Recorder
	// Registry collects server metrics; nil uses a private registry.
	Registry *obs.Registry
	// Logf is the warning/lifecycle logger (nil means the stdlib log
	// package).
	Logf func(format string, args ...any)
}

// Server is the collection service: the collector plus the HTTP handlers
// and the snapshot loop. Construct with New, mount with Register, run the
// persistence loop with Run.
type Server struct {
	cfg       Config
	scheme    rr.Scheme
	schemeEnv json.RawMessage             // kind-tagged envelope, marshaled once
	version   string                      // rr.SchemeVersion fingerprint, doubles as the ETag
	col       *collector.ShardedCollector // dense mode only
	skcol     *collector.SketchCollector  // sketch mode only
	ing       ingester                    // whichever of the two is live
	rec       obs.Recorder
	logf      func(string, ...any)
	restored  bool

	ingestLat    *obs.Histogram // rrserver.ingest_ns: per-request ingest latency
	httpErrs     *obs.Counter   // rrserver.http_errors
	snapshots    *obs.Counter   // rrserver.snapshots
	snapshotErrs *obs.Counter   // rrserver.snapshot_errors
	snapshotSize *obs.Gauge     // rrserver.snapshot_bytes
}

// ingester is the slice of the collector surface the hot handlers need; both
// ShardedCollector and SketchCollector satisfy it (and both marshal their
// snapshot form through json.Marshal).
type ingester interface {
	Ingest(report int) error
	IngestBatch(reports []int) error
	Count() int
}

// boundedEstimator is the optional scheme capability of attaching
// distribution-free confidence half-widths to sketch point queries
// (implemented by sketch.CMSScheme). The server stays decoupled from the
// sketch package; any scheme exposing the method gets half-widths on
// /v1/estimate.
type boundedEstimator interface {
	EstimateWithBound(counts []int, categories []int, z, ell2 float64) ([]float64, []float64, error)
}

// New builds the service and, when cfg.SnapshotPath names an existing file,
// attempts crash recovery. Recovery is strictly validated: a snapshot that
// fails the collector's integrity checks, or whose scheme differs from the
// deployed one (reports disguised under a different scheme would make the
// debiasing meaningless), is abandoned with a logged warning and collection
// starts fresh.
func New(cfg Config) (*Server, error) {
	if cfg.Scheme == nil {
		if cfg.Matrix == nil {
			return nil, fmt.Errorf("rrserver: config needs a disguise scheme")
		}
		cfg.Scheme = cfg.Matrix
	}
	if m, ok := cfg.Scheme.(*rr.Matrix); ok {
		cfg.Matrix = m // keep the legacy field coherent for handleScheme
	} else {
		cfg.Matrix = nil
	}
	if cfg.Z == 0 {
		cfg.Z = DefaultZ
	}
	if !(cfg.Z > 0) {
		return nil, fmt.Errorf("rrserver: z must be positive, got %v", cfg.Z)
	}
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = 30 * time.Second
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	env, err := rr.MarshalScheme(cfg.Scheme)
	if err != nil {
		return nil, fmt.Errorf("rrserver: encoding deployed scheme: %w", err)
	}
	version, err := rr.SchemeVersion(cfg.Scheme)
	if err != nil {
		return nil, fmt.Errorf("rrserver: fingerprinting deployed scheme: %w", err)
	}
	s := &Server{
		cfg:       cfg,
		scheme:    cfg.Scheme,
		schemeEnv: env,
		version:   version,
		rec:       obs.OrNop(cfg.Recorder),
		logf:      cfg.Logf,
		ingestLat: cfg.Registry.Histogram("rrserver.ingest_ns",
			obs.LogBuckets(1000, 4, 12)), // 1µs .. ~4s
		httpErrs:     cfg.Registry.Counter("rrserver.http_errors"),
		snapshots:    cfg.Registry.Counter("rrserver.snapshots"),
		snapshotErrs: cfg.Registry.Counter("rrserver.snapshot_errors"),
		snapshotSize: cfg.Registry.Gauge("rrserver.snapshot_bytes"),
	}
	if s.logf == nil {
		s.logf = log.Printf
	}
	if cfg.Matrix != nil {
		if cfg.SnapshotPath != "" {
			s.col = s.recover(cfg.SnapshotPath)
		}
		if s.col == nil {
			s.col = collector.NewSharded(cfg.Matrix, cfg.Shards)
		}
		s.col.Instrument(cfg.Recorder, cfg.Registry)
		s.ing = s.col
	} else {
		if cfg.SnapshotPath != "" {
			s.skcol = s.recoverSketch(cfg.SnapshotPath)
		}
		if s.skcol == nil {
			s.skcol = collector.NewSketch(cfg.Scheme, cfg.Shards)
		}
		s.skcol.Instrument(cfg.Recorder, cfg.Registry)
		s.ing = s.skcol
	}
	return s, nil
}

// recover tries to restore the collector from path, returning nil (start
// fresh) on any rejection. Only a clean "file does not exist" is silent;
// everything else is a warning an operator should see.
func (s *Server) recover(path string) *collector.ShardedCollector {
	data, err := os.ReadFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			s.logf("rrserver: reading snapshot %s: %v; starting fresh", path, err)
		}
		return nil
	}
	col, err := collector.RestoreSharded(data, s.cfg.Shards)
	if err != nil {
		s.logf("rrserver: snapshot %s rejected (%v); starting fresh", path, err)
		return nil
	}
	if got, want := col.Categories(), s.cfg.Matrix.N(); got != want {
		s.logf("rrserver: snapshot %s has %d categories, deployed scheme has %d; starting fresh", path, got, want)
		return nil
	}
	// Rebuild on the deployed matrix and fold the snapshot's counts in via
	// Merge, which re-checks the matrix entry by entry: a snapshot collected
	// under a different (same-sized) scheme is rejected here — its reports
	// were disguised with other probabilities and would bias every estimate.
	fresh := collector.NewSharded(s.cfg.Matrix, s.cfg.Shards)
	if err := fresh.Merge(col); err != nil {
		s.logf("rrserver: snapshot %s was collected under a different disguise matrix (%v); starting fresh", path, err)
		return nil
	}
	s.restored = true
	s.logf("rrserver: restored %d reports from %s", fresh.Count(), path)
	return fresh
}

// recoverSketch is recover for sketch mode: RestoreSketch validates counts
// and scheme envelope; Merge onto the deployed scheme re-checks the wire
// fingerprint, so a snapshot collected under a different hash family or
// inner matrix is refused.
func (s *Server) recoverSketch(path string) *collector.SketchCollector {
	data, err := os.ReadFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			s.logf("rrserver: reading snapshot %s: %v; starting fresh", path, err)
		}
		return nil
	}
	col, err := collector.RestoreSketch(data, s.cfg.Shards)
	if err != nil {
		s.logf("rrserver: snapshot %s rejected (%v); starting fresh", path, err)
		return nil
	}
	fresh := collector.NewSketch(s.scheme, s.cfg.Shards)
	if err := fresh.Merge(col); err != nil {
		s.logf("rrserver: snapshot %s was collected under a different scheme (%v); starting fresh", path, err)
		return nil
	}
	s.restored = true
	s.logf("rrserver: restored %d reports from %s", fresh.Count(), path)
	return fresh
}

// Restored reports whether construction recovered state from a snapshot.
func (s *Server) Restored() bool { return s.restored }

// Collector exposes the underlying sharded collector (e.g. for tests and
// the in-process load driver). It is nil for a sketch deployment; see
// SketchCollector.
func (s *Server) Collector() *collector.ShardedCollector { return s.col }

// SketchCollector exposes the underlying sketch collector; nil for a dense
// deployment.
func (s *Server) SketchCollector() *collector.SketchCollector { return s.skcol }

// Scheme returns the deployed disguise scheme.
func (s *Server) Scheme() rr.Scheme { return s.scheme }

// SchemeVersion returns the deployed scheme's wire fingerprint — the value
// GET /v1/scheme serves as its ETag.
func (s *Server) SchemeVersion() string { return s.version }

// Count returns the number of reports ingested so far, in either mode.
func (s *Server) Count() int { return s.ing.Count() }

// Categories returns the original-domain size of the deployed scheme.
func (s *Server) Categories() int { return s.scheme.Domain() }

// Z returns the configured confidence quantile.
func (s *Server) Z() float64 { return s.cfg.Z }

// Register mounts the /v1 API on mux. Pass it to obs.ServeMux so the API
// shares the debug server's listener, graceful shutdown, /healthz and
// /metrics.
func (s *Server) Register(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/report", s.handleReport)
	mux.HandleFunc("POST /v1/reports", s.handleBatch)
	mux.HandleFunc("GET /v1/estimate", s.handleEstimate)
	mux.HandleFunc("GET /v1/scheme", s.handleScheme)
	mux.HandleFunc("GET /v1/heavyhitters", s.handleHeavyHitters)
}

// Run drives periodic snapshot persistence until ctx is done, then writes
// one final snapshot so a graceful shutdown loses nothing. With persistence
// disabled it just blocks until ctx is done. The returned error is the final
// snapshot's (nil on a clean drain). Cancel ctx only after the HTTP server
// has drained, so the final snapshot includes every in-flight ingest.
func (s *Server) Run(ctx context.Context) error {
	if s.cfg.SnapshotPath == "" {
		<-ctx.Done()
		return nil
	}
	t := time.NewTicker(s.cfg.SnapshotEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return s.SnapshotNow()
		case <-t.C:
			if err := s.SnapshotNow(); err != nil {
				s.logf("rrserver: periodic snapshot: %v", err)
			}
		}
	}
}

// SnapshotNow persists the collection state to cfg.SnapshotPath, atomically
// (write temp file, rename into place) so a crash mid-write never corrupts
// the previous good snapshot.
func (s *Server) SnapshotNow() error {
	if s.cfg.SnapshotPath == "" {
		return nil
	}
	start := time.Now()
	data, err := json.Marshal(s.ing)
	if err != nil {
		s.snapshotErrs.Inc()
		return fmt.Errorf("rrserver: marshaling snapshot: %w", err)
	}
	dir := filepath.Dir(s.cfg.SnapshotPath)
	tmp, err := os.CreateTemp(dir, ".rrserver-snapshot-*")
	if err != nil {
		s.snapshotErrs.Inc()
		return fmt.Errorf("rrserver: snapshot temp file: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		s.snapshotErrs.Inc()
		return fmt.Errorf("rrserver: writing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		s.snapshotErrs.Inc()
		return fmt.Errorf("rrserver: closing snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.cfg.SnapshotPath); err != nil {
		os.Remove(tmp.Name())
		s.snapshotErrs.Inc()
		return fmt.Errorf("rrserver: installing snapshot: %w", err)
	}
	s.snapshots.Inc()
	s.snapshotSize.Set(float64(len(data)))
	if s.rec.Enabled() {
		s.rec.Record("rrserver.snapshot", obs.Fields{
			"reports": s.ing.Count(),
			"bytes":   len(data),
			"ms":      float64(time.Since(start).Microseconds()) / 1e3,
		})
	}
	return nil
}

// handleReport ingests one disguised report.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req rrapi.ReportRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("decoding body: %v", err))
		return
	}
	if err := s.ing.Ingest(req.Report); err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	s.ingestLat.Observe(float64(time.Since(start).Nanoseconds()))
	s.writeJSON(w, http.StatusOK, rrapi.IngestResponse{Accepted: 1})
}

// handleBatch ingests a batch of disguised reports atomically.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req rrapi.BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("decoding body: %v", err))
		return
	}
	if len(req.Reports) > s.cfg.MaxBatch {
		s.writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("batch of %d exceeds the %d-report limit", len(req.Reports), s.cfg.MaxBatch))
		return
	}
	if len(req.Reports) > 0 {
		if err := s.ing.IngestBatch(req.Reports); err != nil {
			s.writeError(w, statusFor(err), err)
			return
		}
	}
	s.ingestLat.Observe(float64(time.Since(start).Nanoseconds()))
	s.writeJSON(w, http.StatusOK, rrapi.IngestResponse{Accepted: len(req.Reports)})
}

// handleEstimate serves the current reconstruction with confidence
// half-widths; ?z= overrides the quantile. Dense mode returns the full
// domain and supports ?margin= (projected report count needed to shrink the
// worst half-width to the target); sketch mode answers ?categories= point
// queries only — a full-domain response over a million-category sketch would
// be exactly the dense payload the sketch exists to avoid.
func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	z := s.cfg.Z
	if raw := r.URL.Query().Get("z"); raw != "" {
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad z %q: %v", raw, err))
			return
		}
		z = v
	}
	if s.skcol != nil {
		s.handleSketchEstimate(w, r, z)
		return
	}
	sum, err := s.col.Snapshot(z)
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	resp := rrapi.EstimateResponse{
		Reports:   sum.Reports,
		Disguised: sum.Disguised,
		Estimate:  sum.Estimate,
		HalfWidth: sum.HalfWidth,
		Z:         sum.Z,
	}
	for _, h := range sum.HalfWidth {
		if h > resp.Margin {
			resp.Margin = h
		}
	}
	if raw := r.URL.Query().Get("margin"); raw != "" {
		target, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad margin %q: %v", raw, err))
			return
		}
		need, err := s.col.ReportsForMargin(target, z)
		if err != nil {
			s.writeError(w, statusFor(err), err)
			return
		}
		resp.ReportsForMargin = need
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleSketchEstimate answers point queries over the sketch: debiased
// frequency estimates for the requested categories, with distribution-free
// half-widths when the scheme can provide them (boundedEstimator, at the
// worst-case ℓ² mass of 1).
func (s *Server) handleSketchEstimate(w http.ResponseWriter, r *http.Request, z float64) {
	if r.URL.Query().Get("margin") != "" {
		s.writeError(w, http.StatusBadRequest,
			fmt.Errorf("margin projection is not supported for sketch schemes"))
		return
	}
	rawCats := r.URL.Query().Get("categories")
	if rawCats == "" {
		s.writeError(w, http.StatusBadRequest,
			fmt.Errorf("sketch estimates are point queries: pass ?categories=i,j,... or use /v1/heavyhitters"))
		return
	}
	cats, err := parseCategories(rawCats, s.scheme.Domain())
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	counts := s.skcol.Counts()
	total := 0
	for _, v := range counts {
		total += v
	}
	if total == 0 {
		s.writeError(w, statusFor(collector.ErrNoReports), collector.ErrNoReports)
		return
	}
	resp := rrapi.EstimateResponse{Reports: total, Categories: cats, Z: z}
	if be, ok := s.scheme.(boundedEstimator); ok {
		ests, bounds, err := be.EstimateWithBound(counts, cats, z, 1)
		if err != nil {
			s.writeError(w, statusFor(err), err)
			return
		}
		resp.Estimate, resp.HalfWidth = ests, bounds
		for _, h := range bounds {
			if h > resp.Margin {
				resp.Margin = h
			}
		}
	} else {
		ests, err := s.scheme.EstimateFrom(counts, cats)
		if err != nil {
			s.writeError(w, statusFor(err), err)
			return
		}
		resp.Estimate = ests
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// parseCategories decodes a comma-separated ?categories= list and bounds it
// against the scheme domain.
func parseCategories(raw string, domain int) ([]int, error) {
	parts := strings.Split(raw, ",")
	cats := make([]int, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad category %q: %v", p, err)
		}
		if v < 0 || v >= domain {
			return nil, fmt.Errorf("category %d outside the %d-category domain", v, domain)
		}
		cats = append(cats, v)
	}
	if len(cats) == 0 {
		return nil, fmt.Errorf("empty ?categories= list")
	}
	return cats, nil
}

// handleHeavyHitters scans the original domain for categories whose debiased
// frequency estimate clears ?threshold=, sorted by estimate descending;
// ?limit= caps the result. Works in both modes — over the sketch it is the
// paper-motivating query (frequent categories without a dense reconstruction);
// over the dense collector it filters the clipped full-domain estimate.
func (s *Server) handleHeavyHitters(w http.ResponseWriter, r *http.Request) {
	rawThr := r.URL.Query().Get("threshold")
	if rawThr == "" {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("missing required ?threshold="))
		return
	}
	threshold, err := strconv.ParseFloat(rawThr, 64)
	if err != nil || !(threshold >= 0) {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad threshold %q", rawThr))
		return
	}
	limit := 0
	if raw := r.URL.Query().Get("limit"); raw != "" {
		limit, err = strconv.Atoi(raw)
		if err != nil || limit < 0 {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", raw))
			return
		}
	}
	resp := rrapi.HeavyHittersResponse{Threshold: threshold}
	if s.skcol != nil {
		hits, err := s.skcol.HeavyHitters(threshold, limit)
		if err != nil {
			s.writeError(w, statusFor(err), err)
			return
		}
		resp.Reports = s.skcol.Count()
		resp.Hits = make([]rrapi.HeavyHitter, len(hits))
		for i, h := range hits {
			resp.Hits[i] = rrapi.HeavyHitter{Category: h.Category, Estimate: h.Estimate}
		}
	} else {
		sum, err := s.col.Snapshot(s.cfg.Z)
		if err != nil {
			s.writeError(w, statusFor(err), err)
			return
		}
		resp.Reports = sum.Reports
		for x, e := range sum.Estimate {
			if e >= threshold {
				resp.Hits = append(resp.Hits, rrapi.HeavyHitter{Category: x, Estimate: e})
			}
		}
		sort.Slice(resp.Hits, func(i, j int) bool {
			if resp.Hits[i].Estimate != resp.Hits[j].Estimate {
				return resp.Hits[i].Estimate > resp.Hits[j].Estimate
			}
			return resp.Hits[i].Category < resp.Hits[j].Category
		})
		if limit > 0 && len(resp.Hits) > limit {
			resp.Hits = resp.Hits[:limit]
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleScheme serves the deployed disguise scheme so clients can sample
// locally and never upload a true value. The scheme version is the ETag:
// clients polling for redeployment send If-None-Match and get a bodyless
// 304 until the scheme actually changes. Dense deployments also fill the
// legacy Matrix field for old clients.
func (s *Server) handleScheme(w http.ResponseWriter, r *http.Request) {
	etag := `"` + s.version + `"`
	w.Header().Set("ETag", etag)
	if match := r.Header.Get("If-None-Match"); match != "" && strings.Contains(match, etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	s.writeJSON(w, http.StatusOK, rrapi.SchemeResponse{
		Kind:    s.scheme.Kind(),
		Scheme:  s.schemeEnv,
		Version: s.version,
		Matrix:  s.cfg.Matrix,
		Z:       s.cfg.Z,
	})
}

// statusFor maps collector errors onto HTTP statuses: client mistakes are
// 4xx, a not-yet-answerable estimate is 409, an undefined estimator is 500.
func statusFor(err error) int {
	switch {
	case errors.Is(err, collector.ErrBadReport), errors.Is(err, collector.ErrBadMargin):
		return http.StatusBadRequest
	case errors.Is(err, collector.ErrNoReports), errors.Is(err, rr.ErrEmptyData):
		return http.StatusConflict
	case errors.Is(err, rr.ErrSingular):
		return http.StatusInternalServerError
	default:
		return http.StatusBadRequest
	}
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone; nothing to do
}

func (s *Server) writeError(w http.ResponseWriter, code int, err error) {
	s.httpErrs.Inc()
	s.writeJSON(w, code, rrapi.ErrorResponse{Error: err.Error()})
}
