package rrserver

import (
	"context"
	"math"
	"net/http"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"optrr/internal/randx"
	"optrr/internal/rrclient"
	"optrr/internal/sketch"
)

func mustCMS(t testing.TB, domain, hashes, hashRange int, eps float64, seed uint64) *sketch.CMSScheme {
	t.Helper()
	s, err := sketch.NewKRR(domain, hashes, hashRange, eps, seed)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// zipfValues draws total records from a Zipf(1) distribution over the domain
// and returns them with their empirical frequencies.
func zipfValues(t testing.TB, domain, total int, seed uint64) ([]int, []float64) {
	t.Helper()
	cdf := make([]float64, domain)
	sum := 0.0
	for i := range cdf {
		sum += 1 / float64(i+1)
		cdf[i] = sum
	}
	rng := randx.New(seed)
	values := make([]int, total)
	freqs := make([]float64, domain)
	for i := range values {
		u := rng.Float64() * sum
		values[i] = sort.SearchFloat64s(cdf, u)
		freqs[values[i]] += 1 / float64(total)
	}
	return values, freqs
}

// TestServerSketchEndToEnd is the large-domain pipeline over real HTTP:
// Zipf-distributed private values over a 100000-category domain — far past
// any dense matrix — disguised locally by the SDK through the fetched sketch
// scheme, reported in batches, and the heavy hitters recovered by the
// server's point queries and heavy-hitter scan. The point estimates must
// land within the server's own stated distribution-free half-widths (the
// Pastore-style collision + sampling bound), and the collection state must
// stay O(k·m) as reports accumulate.
func TestServerSketchEndToEnd(t *testing.T) {
	const (
		domain = 100000
		n      = 120000
		z      = 3.29
	)
	scheme := mustCMS(t, domain, 16, 256, 5, 2026)
	srv, _, base := startService(t, Config{Scheme: scheme, Z: z})

	client := rrclient.New(base, rrclient.WithSeed(7))
	ctx := context.Background()

	// The SDK must refuse to hand out a dense matrix for a sketch deployment
	// but serve the scheme-generic form, same fingerprint as the server's.
	if _, err := client.Scheme(ctx); err == nil || !strings.Contains(err.Error(), "not a dense matrix") {
		t.Fatalf("Scheme() on a sketch deployment: err = %v", err)
	}
	deployed, err := client.DeployedScheme(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if deployed.Kind() != "cms" || deployed.Domain() != domain {
		t.Fatalf("deployed scheme kind %q domain %d", deployed.Kind(), deployed.Domain())
	}
	version, err := client.SchemeVersion(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if version != srv.SchemeVersion() {
		t.Fatalf("client version %s, server %s", version, srv.SchemeVersion())
	}

	values, truth := zipfValues(t, domain, n, 11)
	for lo := 0; lo < n; lo += 10000 {
		if _, err := client.ReportValues(ctx, values[lo:lo+10000]); err != nil {
			t.Fatal(err)
		}
	}
	if srv.Count() != n {
		t.Fatalf("server holds %d reports, want %d", srv.Count(), n)
	}

	// Point queries for the six most frequent Zipf categories: each estimate
	// must be inside the server's stated half-width, and close in absolute
	// terms (the ℓ²=1 worst-case bound is loose; the estimator is much
	// better on a real skewed distribution).
	cats := []int{0, 1, 2, 3, 4, 5}
	est, err := client.EstimateCategories(ctx, cats)
	if err != nil {
		t.Fatal(err)
	}
	if est.Reports != n || len(est.Estimate) != len(cats) || len(est.HalfWidth) != len(cats) {
		t.Fatalf("estimate response shape: reports %d, %d estimates, %d half-widths",
			est.Reports, len(est.Estimate), len(est.HalfWidth))
	}
	for i, x := range cats {
		diff := math.Abs(est.Estimate[i] - truth[x])
		if diff > est.HalfWidth[i] {
			t.Errorf("category %d: |%.4f − %.4f| = %.4f exceeds the stated half-width %.4f",
				x, est.Estimate[i], truth[x], diff, est.HalfWidth[i])
		}
		if diff > 0.02 {
			t.Errorf("category %d: estimate %.4f vs truth %.4f", x, est.Estimate[i], truth[x])
		}
	}

	// The heavy-hitter scan over all 100000 categories recovers the Zipf
	// head: the two most frequent categories are present, and nothing
	// outside the true top ten sneaks in.
	hits, err := client.HeavyHitters(ctx, 0.03, 10)
	if err != nil {
		t.Fatal(err)
	}
	found := map[int]bool{}
	for _, h := range hits.Hits {
		found[h.Category] = true
		if h.Category >= 10 {
			t.Errorf("false heavy hitter: category %d at %.4f", h.Category, h.Estimate)
		}
	}
	if !found[0] || !found[1] {
		t.Fatalf("Zipf head missing from heavy hitters %v", hits.Hits)
	}

	// O(k·m) state: the snapshot is the k×m count grid plus the scheme,
	// so doubling the report volume must not grow it beyond digit-width
	// jitter — the collection state is independent of n (and of the
	// 100000-category domain).
	data0, err := srv.SketchCollector().MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.ReportValues(ctx, values[:10000]); err != nil {
		t.Fatal(err)
	}
	data1, err := srv.SketchCollector().MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if grow := len(data1) - len(data0); grow > 4096 {
		t.Fatalf("snapshot grew %d bytes after 10000 more reports; state must be O(k·m), not O(n)", grow)
	}
}

// TestServerSketchQueryValidation pins the sketch-mode API contract:
// estimates are point queries, margin projection is dense-only, and the
// heavy-hitter endpoint validates its parameters.
func TestServerSketchQueryValidation(t *testing.T) {
	scheme := mustCMS(t, 5000, 8, 64, 4, 1)
	_, _, base := startService(t, Config{Scheme: scheme})
	client := rrclient.New(base, rrclient.WithSeed(1))
	ctx := context.Background()

	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	// Empty collector: a valid point query is 409, not 200-with-zeros.
	if got := get("/v1/estimate?categories=1,2"); got != http.StatusConflict {
		t.Errorf("estimate on empty collector: HTTP %d, want 409", got)
	}
	if _, err := client.ReportValues(ctx, []int{1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"missing categories": "/v1/estimate",
		"margin unsupported": "/v1/estimate?categories=1&margin=0.01",
		"bad category":       "/v1/estimate?categories=nope",
		"category too large": "/v1/estimate?categories=5000",
		"empty list":         "/v1/estimate?categories=,",
		"missing threshold":  "/v1/heavyhitters",
		"bad threshold":      "/v1/heavyhitters?threshold=-1",
		"bad limit":          "/v1/heavyhitters?threshold=0.1&limit=-2",
	}
	for name, path := range cases {
		if got := get(path); got != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400", name, got)
		}
	}
	if got := get("/v1/estimate?categories=1,2,3"); got != http.StatusOK {
		t.Errorf("valid point query: HTTP %d, want 200", got)
	}
	if got := get("/v1/heavyhitters?threshold=0.5"); got != http.StatusOK {
		t.Errorf("valid heavy-hitter scan: HTTP %d, want 200", got)
	}
}

// TestServerSchemeETag: /v1/scheme carries the scheme version as a strong
// ETag, If-None-Match polling gets a 304, and the SDK's SchemeChanged rides
// that without refetching the body.
func TestServerSchemeETag(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"dense", Config{Matrix: mustWarner(t, 6, 0.8)}},
		{"sketch", Config{Scheme: mustCMS(t, 1000, 4, 16, 4, 1)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			srv, _, base := startService(t, tc.cfg)
			resp, err := http.Get(base + "/v1/scheme")
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			etag := resp.Header.Get("ETag")
			if want := `"` + srv.SchemeVersion() + `"`; etag != want {
				t.Fatalf("ETag %q, want %q", etag, want)
			}

			req, _ := http.NewRequest(http.MethodGet, base+"/v1/scheme", nil)
			req.Header.Set("If-None-Match", etag)
			resp2, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp2.Body.Close()
			if resp2.StatusCode != http.StatusNotModified {
				t.Fatalf("matching If-None-Match: HTTP %d, want 304", resp2.StatusCode)
			}

			req.Header.Set("If-None-Match", `"stale"`)
			resp3, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp3.Body.Close()
			if resp3.StatusCode != http.StatusOK {
				t.Fatalf("stale If-None-Match: HTTP %d, want 200", resp3.StatusCode)
			}

			client := rrclient.New(base)
			changed, err := client.SchemeChanged(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if changed {
				t.Fatal("SchemeChanged reported a change against an unchanged deployment")
			}
		})
	}
}

// TestServerSketchSnapshotRestore: a sketch deployment persists its k×m grid
// with the scheme envelope and restores it on reboot; a snapshot from a
// different hash family is refused and collection starts fresh.
func TestServerSketchSnapshotRestore(t *testing.T) {
	scheme := mustCMS(t, 20000, 8, 64, 4, 5)
	path := filepath.Join(t.TempDir(), "sketch.json")
	srv, _, base := startService(t, Config{Scheme: scheme, SnapshotPath: path})
	client := rrclient.New(base, rrclient.WithSeed(3))
	ctx := context.Background()

	values, _ := zipfValues(t, 20000, 5000, 1)
	if _, err := client.ReportValues(ctx, values); err != nil {
		t.Fatal(err)
	}
	if err := srv.SnapshotNow(); err != nil {
		t.Fatal(err)
	}

	reborn, err := New(Config{Scheme: scheme, SnapshotPath: path, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if !reborn.Restored() || reborn.Count() != 5000 {
		t.Fatalf("restored=%v count=%d, want true/5000", reborn.Restored(), reborn.Count())
	}

	// A server deployed with a different hash seed must reject the snapshot:
	// its reports were hashed under another family.
	var warned bool
	logf := func(format string, args ...any) {
		if strings.Contains(format, "different scheme") {
			warned = true
		}
		t.Logf(format, args...)
	}
	other, err := New(Config{Scheme: mustCMS(t, 20000, 8, 64, 4, 6), SnapshotPath: path, Logf: logf})
	if err != nil {
		t.Fatal(err)
	}
	if other.Restored() || other.Count() != 0 {
		t.Fatalf("mismatched scheme adopted the snapshot: restored=%v count=%d", other.Restored(), other.Count())
	}
	if !warned {
		t.Fatal("scheme mismatch was not logged")
	}
}
