// Package rrapi defines the JSON wire types of the LDP collection service
// (cmd/rrserver): what a disguising client POSTs and what the collector-side
// estimate queries return. It is shared by internal/rrserver (the service)
// and internal/rrclient (the disguise SDK) and deliberately depends on
// nothing but the rr matrix type, so the client pulls in no server code.
//
// The protocol is the paper's Section I split made literal: the private
// value is sampled through the disguise matrix on the respondent's machine,
// and only the disguised category index ever crosses the wire.
package rrapi

import (
	"encoding/json"

	"optrr/internal/rr"
)

// ReportRequest is the body of POST /v1/report: one disguised category.
type ReportRequest struct {
	Report int `json:"report"`
}

// BatchRequest is the body of POST /v1/reports: many disguised categories,
// ingested atomically (all land or, on any out-of-range report, none do).
type BatchRequest struct {
	Reports []int `json:"reports"`
}

// IngestResponse acknowledges an ingest: how many reports the batch carried.
type IngestResponse struct {
	Accepted int `json:"accepted"`
}

// SchemeResponse is the body of GET /v1/scheme: the deployed disguise
// scheme, so a client can build its local samplers, plus the collection's z
// quantile so client and server quote the same confidence level.
//
// The scheme travels twice for compatibility. Kind/Scheme/Version is the
// current form: a kind-tagged envelope (rr.MarshalScheme) that carries any
// registered scheme — the dense matrix or the count-mean sketch — plus the
// wire fingerprint the server also serves as the ETag. Matrix is the legacy
// dense-only field; servers keep filling it for dense deployments so old
// clients survive, and new clients fall back to it when the envelope is
// absent.
type SchemeResponse struct {
	Kind    string          `json:"kind,omitempty"`
	Scheme  json.RawMessage `json:"scheme,omitempty"`
	Version string          `json:"version,omitempty"`
	Matrix  *rr.Matrix      `json:"matrix,omitempty"`
	Z       float64         `json:"z"`
}

// EstimateResponse is the body of GET /v1/estimate: the debiased frequency
// estimate with per-category confidence half-widths (the collector Summary
// over the wire), framing the estimator-error/report-count tradeoff for
// operators: Margin is the worst half-width now, and ReportsForMargin (when
// a ?margin= target was given) projects how many total reports shrink it to
// the target.
type EstimateResponse struct {
	Reports   int       `json:"reports"`
	Disguised []float64 `json:"disguised,omitempty"`
	Estimate  []float64 `json:"estimate"`
	HalfWidth []float64 `json:"half_width,omitempty"`
	Z         float64   `json:"z"`
	Margin    float64   `json:"margin"`
	// Categories names the original-domain categories Estimate covers, in
	// order. Dense mode leaves it empty (Estimate is the full domain);
	// sketch mode echoes the requested ?categories= point queries.
	Categories []int `json:"categories,omitempty"`
	// ReportsForMargin is the projected total report count needed to meet
	// the requested ?margin= target (0 when no target was requested).
	ReportsForMargin int `json:"reports_for_margin,omitempty"`
}

// HeavyHitter is one frequent category discovered by GET /v1/heavyhitters:
// its original-domain index and its debiased frequency estimate.
type HeavyHitter struct {
	Category int     `json:"category"`
	Estimate float64 `json:"estimate"`
}

// HeavyHittersResponse is the body of GET /v1/heavyhitters: the categories
// whose estimated frequency clears ?threshold=, sorted by estimate
// descending, capped at ?limit= when given.
type HeavyHittersResponse struct {
	Reports   int           `json:"reports"`
	Threshold float64       `json:"threshold"`
	Hits      []HeavyHitter `json:"hits"`
}

// ErrorResponse is the body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
}
