package sketch

import (
	"errors"
	"math"
	"runtime"
	"testing"

	"optrr/internal/randx"
	"optrr/internal/rr"
)

// The sketch must satisfy the scheme interface.
var _ rr.Scheme = (*CMSScheme)(nil)

func testScheme(t *testing.T, domain, hashes, hashRange int, epsilon float64) *CMSScheme {
	t.Helper()
	s, err := NewKRR(domain, hashes, hashRange, epsilon, 42)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// zipfRecords draws records from a Zipf(1) distribution over the domain.
func zipfRecords(domain, total int, seed uint64) ([]int, []float64) {
	freq := make([]float64, domain)
	var norm float64
	for x := range freq {
		freq[x] = 1 / float64(x+1)
		norm += freq[x]
	}
	cum := make([]float64, domain)
	var acc float64
	for x := range freq {
		freq[x] /= norm
		acc += freq[x]
		cum[x] = acc
	}
	r := randx.New(seed)
	recs := make([]int, total)
	for i := range recs {
		u := r.Float64()
		// Binary search the CDF.
		lo, hi := 0, domain-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		recs[i] = lo
	}
	return recs, freq
}

func TestCMSParams(t *testing.T) {
	s := testScheme(t, 100000, 8, 64, 4)
	if s.Kind() != Kind {
		t.Fatalf("Kind = %q, want %q", s.Kind(), Kind)
	}
	if s.Domain() != 100000 || s.Hashes() != 8 || s.HashRange() != 64 {
		t.Fatalf("params = (%d, %d, %d)", s.Domain(), s.Hashes(), s.HashRange())
	}
	if got, want := s.ReportSpace(), 8*64; got != want {
		t.Fatalf("ReportSpace = %d, want %d", got, want)
	}
}

func TestCMSRejectsBadParams(t *testing.T) {
	inner, err := rr.Warner(8, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name                      string
		domain, hashes, hashRange int
	}{
		{"zero domain", 0, 4, 8},
		{"negative domain", -1, 4, 8},
		{"zero hashes", 100, 0, 8},
		{"hash range 1", 100, 4, 1},
		{"inner size mismatch", 100, 4, 16},
	}
	for _, tc := range cases {
		if _, err := New(tc.domain, tc.hashes, tc.hashRange, inner, 1); !errors.Is(err, ErrBadParams) {
			t.Errorf("%s: err = %v, want ErrBadParams", tc.name, err)
		}
	}
	if _, err := New(100, 4, 8, nil, 1); !errors.Is(err, ErrBadParams) {
		t.Errorf("nil inner: err = %v, want ErrBadParams", err)
	}
	// A singular inner matrix has no inversion estimator.
	if _, err := New(100, 4, 8, rr.TotallyRandom(8), 1); !errors.Is(err, rr.ErrSingular) {
		t.Errorf("singular inner: err = %v, want rr.ErrSingular", err)
	}
	if _, err := NewKRR(100, 4, 8, 0, 1); !errors.Is(err, ErrBadParams) {
		t.Errorf("epsilon 0: err = %v, want ErrBadParams", err)
	}
	if _, err := NewKRR(100, 4, 8, math.NaN(), 1); !errors.Is(err, ErrBadParams) {
		t.Errorf("epsilon NaN: err = %v, want ErrBadParams", err)
	}
}

func TestCMSHashDeterministicInRange(t *testing.T) {
	s := testScheme(t, 1<<20, 16, 128, 4)
	s2 := testScheme(t, 1<<20, 16, 128, 4)
	for j := 0; j < s.Hashes(); j++ {
		for _, x := range []int{0, 1, 12345, 1<<20 - 1} {
			h := s.Hash(j, x)
			if h < 0 || h >= s.HashRange() {
				t.Fatalf("Hash(%d, %d) = %d out of range", j, x, h)
			}
			if h2 := s2.Hash(j, x); h2 != h {
				t.Fatalf("same seed, different hash: %d vs %d", h, h2)
			}
		}
	}
	// Different seeds give a different family.
	other, err := NewKRR(1<<20, 16, 128, 4, 43)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for x := 0; x < 1000; x++ {
		if other.Hash(0, x) == s.Hash(0, x) {
			same++
		}
	}
	if same > 100 {
		t.Fatalf("different seeds agree on %d/1000 hashes", same)
	}
}

func TestCMSHashRowsIndependent(t *testing.T) {
	// Distinct rows must hash the same value differently (pairwise
	// independence makes row agreement probability 1/m per value).
	s := testScheme(t, 1<<18, 8, 256, 4)
	same := 0
	for x := 0; x < 1000; x++ {
		if s.Hash(0, x) == s.Hash(1, x) {
			same++
		}
	}
	if same > 30 { // E = 1000/256 ≈ 4
		t.Fatalf("rows 0 and 1 agree on %d/1000 hashes", same)
	}
}

func TestCMSReportEncoding(t *testing.T) {
	s := testScheme(t, 1000, 5, 32, 4)
	for j := 0; j < 5; j++ {
		for _, cell := range []int{0, 7, 31} {
			rep := s.Report(j, cell)
			if rep < 0 || rep >= s.ReportSpace() {
				t.Fatalf("Report(%d, %d) = %d out of report space", j, cell, rep)
			}
			gj, gc := s.RowCell(rep)
			if gj != j || gc != cell {
				t.Fatalf("RowCell(Report(%d, %d)) = (%d, %d)", j, cell, gj, gc)
			}
		}
	}
}

func TestCMSDisguiseValueInReportSpace(t *testing.T) {
	s := testScheme(t, 50000, 8, 64, 4)
	rng := randx.New(5)
	rows := make([]int, s.Hashes())
	for i := 0; i < 5000; i++ {
		rep, err := s.DisguiseValue(i%50000, rng)
		if err != nil {
			t.Fatal(err)
		}
		if rep < 0 || rep >= s.ReportSpace() {
			t.Fatalf("report %d out of space %d", rep, s.ReportSpace())
		}
		j, _ := s.RowCell(rep)
		rows[j]++
	}
	// Hash rows are chosen uniformly: each of the 8 rows expects 625 ± noise.
	for j, c := range rows {
		if c < 450 || c > 800 {
			t.Fatalf("row %d got %d of 5000 reports, want ≈ 625", j, c)
		}
	}
	if _, err := s.DisguiseValue(-1, rng); !errors.Is(err, rr.ErrShape) {
		t.Fatalf("negative value err = %v, want rr.ErrShape", err)
	}
	if _, err := s.DisguiseValue(50000, rng); !errors.Is(err, rr.ErrShape) {
		t.Fatalf("out-of-domain value err = %v, want rr.ErrShape", err)
	}
}

func TestCMSDisguiseBatchDeterministicAcrossWorkers(t *testing.T) {
	s := testScheme(t, 1<<16, 8, 64, 4)
	recs, _ := zipfRecords(1<<16, 3*8192+77, 9)
	want := make([]int, len(recs))
	if err := s.DisguiseBatchInto(want, recs, 21, 1); err != nil {
		t.Fatal(err)
	}
	got := make([]int, len(recs))
	for _, w := range []int{2, 3, 8, runtime.GOMAXPROCS(0)} {
		if err := s.DisguiseBatchInto(got, recs, 21, w); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: record %d = %d, want %d", w, i, got[i], want[i])
			}
		}
	}
	// Error semantics match the dense batch: first bad record named.
	bad := append([]int(nil), recs...)
	bad[100] = -5
	if err := s.DisguiseBatchInto(got, bad, 21, 4); !errors.Is(err, rr.ErrShape) {
		t.Fatalf("bad record err = %v, want rr.ErrShape", err)
	}
	if err := s.DisguiseBatchInto(make([]int, 3), recs, 21, 1); !errors.Is(err, rr.ErrShape) {
		t.Fatalf("length mismatch err = %v, want rr.ErrShape", err)
	}
}

// aggregate disguises records and tallies the k×m count grid.
func aggregate(t *testing.T, s *CMSScheme, recs []int, seed uint64) []int {
	t.Helper()
	reports := make([]int, len(recs))
	if err := s.DisguiseBatchInto(reports, recs, seed, 0); err != nil {
		t.Fatal(err)
	}
	counts := make([]int, s.ReportSpace())
	for _, rep := range reports {
		counts[rep]++
	}
	return counts
}

func TestCMSEstimateRecoversDistribution(t *testing.T) {
	// A domain far larger than the hash range: the sketch must still rank
	// heavy categories correctly and estimate their mass closely.
	const domain = 5000
	s := testScheme(t, domain, 16, 256, 5)
	recs, freq := zipfRecords(domain, 400000, 3)
	counts := aggregate(t, s, recs, 77)
	top := []int{0, 1, 2, 3, 4, 5}
	ests, bounds, err := s.EstimateWithBound(counts, top, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range top {
		if math.IsNaN(ests[i]) || math.IsInf(ests[i], 0) {
			t.Fatalf("category %d estimate %v", x, ests[i])
		}
		if bounds[i] <= 0 {
			t.Fatalf("category %d bound %v, want > 0", x, bounds[i])
		}
		if diff := math.Abs(ests[i] - freq[x]); diff > bounds[i] {
			t.Errorf("category %d: estimate %.4f, true %.4f, |diff| %.4f > bound %.4f",
				x, ests[i], freq[x], diff, bounds[i])
		}
	}
}

func TestCMSEstimateFullDomainSumsToOne(t *testing.T) {
	const domain = 2000
	s := testScheme(t, domain, 16, 256, 5)
	recs, _ := zipfRecords(domain, 200000, 11)
	counts := aggregate(t, s, recs, 5)
	ests, err := s.EstimateFrom(counts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != domain {
		t.Fatalf("full-domain estimate has %d entries, want %d", len(ests), domain)
	}
	var sum float64
	for _, e := range ests {
		if math.IsNaN(e) || math.IsInf(e, 0) {
			t.Fatalf("estimate %v", e)
		}
		sum += e
	}
	if math.Abs(sum-1) > 0.2 {
		t.Fatalf("full-domain estimates sum to %.4f, want ≈ 1", sum)
	}
}

func TestCMSEstimateErrors(t *testing.T) {
	s := testScheme(t, 1000, 4, 16, 4)
	if _, err := s.EstimateFrom(make([]int, 3), nil); !errors.Is(err, rr.ErrShape) {
		t.Fatalf("short counts err = %v, want rr.ErrShape", err)
	}
	if _, err := s.EstimateFrom(make([]int, s.ReportSpace()), nil); !errors.Is(err, rr.ErrEmptyData) {
		t.Fatalf("zero counts err = %v, want rr.ErrEmptyData", err)
	}
	counts := make([]int, s.ReportSpace())
	counts[0] = -1
	counts[1] = 2
	if _, err := s.EstimateFrom(counts, nil); !errors.Is(err, rr.ErrShape) {
		t.Fatalf("negative count err = %v, want rr.ErrShape", err)
	}
	counts[0] = 1
	if _, err := s.EstimateFrom(counts, []int{1000}); !errors.Is(err, rr.ErrShape) {
		t.Fatalf("out-of-domain category err = %v, want rr.ErrShape", err)
	}
}

func TestCMSEstimateSkipsEmptyRows(t *testing.T) {
	// Reports concentrated in a single hash row must not divide by the other
	// rows' zero totals.
	s := testScheme(t, 100, 4, 8, 4)
	counts := make([]int, s.ReportSpace())
	for cell := 0; cell < s.HashRange(); cell++ {
		counts[s.Report(2, cell)] = 100
	}
	ests, err := s.EstimateFrom(counts, []int{0, 5, 99})
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range ests {
		if math.IsNaN(e) || math.IsInf(e, 0) {
			t.Fatalf("estimate[%d] = %v with empty rows", i, e)
		}
	}
}

func TestCMSSchemeEnvelopeRoundTrip(t *testing.T) {
	s := testScheme(t, 123456, 8, 64, 3)
	data, err := rr.MarshalScheme(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rr.UnmarshalScheme(data)
	if err != nil {
		t.Fatal(err)
	}
	back, ok := got.(*CMSScheme)
	if !ok {
		t.Fatalf("decoded scheme is %T, want *CMSScheme", got)
	}
	if back.Domain() != s.Domain() || back.Hashes() != s.Hashes() ||
		back.HashRange() != s.HashRange() || back.HashSeed() != s.HashSeed() {
		t.Fatal("round-tripped parameters differ")
	}
	if !back.Inner().Equal(s.Inner(), 1e-15) {
		t.Fatal("round-tripped inner matrix differs")
	}
	// The revived scheme must produce the identical hash family.
	for j := 0; j < s.Hashes(); j++ {
		for _, x := range []int{0, 17, 123455} {
			if back.Hash(j, x) != s.Hash(j, x) {
				t.Fatalf("hash family changed over the wire at (%d, %d)", j, x)
			}
		}
	}
	v1, err := rr.SchemeVersion(s)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := rr.SchemeVersion(back)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Fatalf("round trip changed scheme version: %q vs %q", v1, v2)
	}
}

func TestCMSWireSizeIndependentOfDomain(t *testing.T) {
	small := testScheme(t, 1000, 8, 64, 4)
	huge := testScheme(t, 100000000, 8, 64, 4)
	ds, err := rr.MarshalScheme(small)
	if err != nil {
		t.Fatal(err)
	}
	dh, err := rr.MarshalScheme(huge)
	if err != nil {
		t.Fatal(err)
	}
	// The domain travels as one integer: 10⁵× the domain must cost a handful
	// of digits, not a larger matrix.
	if delta := len(dh) - len(ds); delta > 16 {
		t.Fatalf("wire size grew by %d bytes for a 10⁵× domain", delta)
	}
}
