// Package sketch implements the Count-Mean-Sketch randomized-response scheme
// that decouples the category domain size from the disguise-matrix size: the
// dense schemes of package rr carry an n×n matrix, hopeless when categories
// are URLs or app IDs (n = 10⁶), while the sketch hashes each record through
// one of k pairwise-independent hash functions into a small hash_range m and
// disguises only the m-ary hashed value with an inner m×m RR matrix — any
// OptRR-optimized or Holohan constant-diagonal matrix plugs straight in.
//
// A report is the pair (hash index j, disguised hash cell), encoded as the
// single integer j·m + cell, so the report space is k·m, independent of the
// domain. Aggregated reports form a k×m count grid; estimation debiases each
// row through the inner matrix inverse (the Theorem-1 inversion of the
// paper, applied per row) and then removes the expected hash-collision mass:
// under a pairwise-independent family every other category lands in a given
// cell with probability 1/m, so f̂(x) averages (m·t̂_j[h_j(x)] − 1)/(m − 1)
// over the rows. The error decomposes into the sampling and collision terms
// of metrics.CMSRowVariance and metrics.CMSCollisionStd — Pastore's
// hash_range-vs-accuracy trade-off.
package sketch

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/bits"

	"optrr/internal/matrix"
	"optrr/internal/metrics"
	"optrr/internal/randx"
	"optrr/internal/rr"
)

// Kind is the wire identifier of the Count-Mean-Sketch scheme (see
// rr.RegisterScheme).
const Kind = "cms"

// hashPrime is the Mersenne prime 2⁶¹−1 over which the pairwise-independent
// family (a·x + b) mod p is defined; the domain must fit below it.
const hashPrime = uint64(1)<<61 - 1

// ErrBadParams reports invalid sketch parameters.
var ErrBadParams = errors.New("sketch: invalid parameters")

// CMSScheme is a Count-Mean-Sketch randomized-response scheme. It implements
// rr.Scheme; values are immutable after construction and safe for concurrent
// use.
type CMSScheme struct {
	domain   int
	hashes   int // k: number of hash functions / sketch rows
	rangeM   int // m: hash range / inner matrix size
	hashSeed uint64
	a, b     []uint64      // per-row hash coefficients, derived from hashSeed
	inner    *rr.Matrix    // m×m disguise matrix for hashed values
	inv      *matrix.Dense // cached inverse of inner, for estimation
}

// New builds a Count-Mean-Sketch scheme over domain categories, with hashes
// pairwise-independent hash functions into [0, hashRange) and the given
// inner disguise matrix (hashRange×hashRange, must be invertible — the
// inversion estimator runs per sketch row). The hash coefficients are
// derived deterministically from hashSeed, so clients and server agree on
// the family by exchanging only the seed.
func New(domain, hashes, hashRange int, inner *rr.Matrix, hashSeed uint64) (*CMSScheme, error) {
	if domain < 1 || uint64(domain) >= hashPrime {
		return nil, fmt.Errorf("%w: domain %d (want 1 ≤ domain < 2⁶¹−1)", ErrBadParams, domain)
	}
	if hashes < 1 {
		return nil, fmt.Errorf("%w: %d hash functions", ErrBadParams, hashes)
	}
	if hashRange < 2 {
		return nil, fmt.Errorf("%w: hash range %d (want ≥ 2)", ErrBadParams, hashRange)
	}
	if inner == nil {
		return nil, fmt.Errorf("%w: nil inner matrix", ErrBadParams)
	}
	if inner.N() != hashRange {
		return nil, fmt.Errorf("%w: inner matrix over %d categories for hash range %d", ErrBadParams, inner.N(), hashRange)
	}
	inv, err := inner.Inverse()
	if err != nil {
		return nil, fmt.Errorf("sketch: inner matrix: %w", err)
	}
	s := &CMSScheme{
		domain:   domain,
		hashes:   hashes,
		rangeM:   hashRange,
		hashSeed: hashSeed,
		a:        make([]uint64, hashes),
		b:        make([]uint64, hashes),
		inner:    inner.Clone(),
		inv:      inv,
	}
	for j := 0; j < hashes; j++ {
		r := randx.Stream(hashSeed, uint64(j))
		s.a[j] = 1 + r.Uint64()%(hashPrime-1)
		s.b[j] = r.Uint64() % hashPrime
	}
	return s, nil
}

// NewKRR builds a sketch whose inner matrix is the closed-form ε-optimal
// k-ary randomized response of Holohan et al.: constant diagonal
// γ(ε) = e^ε / (e^ε + m − 1), uniform off-diagonal — the natural baseline
// before plugging in an OptRR-optimized matrix.
func NewKRR(domain, hashes, hashRange int, epsilon float64, hashSeed uint64) (*CMSScheme, error) {
	if epsilon <= 0 || math.IsInf(epsilon, 0) || math.IsNaN(epsilon) {
		return nil, fmt.Errorf("%w: epsilon %v", ErrBadParams, epsilon)
	}
	if hashRange < 2 {
		return nil, fmt.Errorf("%w: hash range %d (want ≥ 2)", ErrBadParams, hashRange)
	}
	e := math.Exp(epsilon)
	gamma := e / (e + float64(hashRange) - 1)
	inner, err := rr.Warner(hashRange, gamma)
	if err != nil {
		return nil, fmt.Errorf("sketch: closed-form inner matrix: %w", err)
	}
	return New(domain, hashes, hashRange, inner, hashSeed)
}

// Kind returns "cms".
func (s *CMSScheme) Kind() string { return Kind }

// Domain returns the original category domain size.
func (s *CMSScheme) Domain() int { return s.domain }

// ReportSpace returns k·m: reports are j·m + cell for hash row j and
// disguised cell.
func (s *CMSScheme) ReportSpace() int { return s.hashes * s.rangeM }

// Hashes returns k, the number of hash functions (sketch rows).
func (s *CMSScheme) Hashes() int { return s.hashes }

// HashRange returns m, the hash range and inner matrix size.
func (s *CMSScheme) HashRange() int { return s.rangeM }

// HashSeed returns the seed the hash family is derived from.
func (s *CMSScheme) HashSeed() uint64 { return s.hashSeed }

// Inner returns the inner disguise matrix. The returned value aliases the
// scheme's immutable copy; callers must treat it as read-only.
func (s *CMSScheme) Inner() *rr.Matrix { return s.inner }

// Hash returns h_j(value) ∈ [0, m): the pairwise-independent affine stage
// (a_j·value + b_j) mod p over the Mersenne prime p = 2⁶¹−1, scrambled
// through a bijective 64-bit finalizer before the mod-m reduction. The
// finalizer matters: reducing the affine value directly makes the cells of a
// sequential domain piecewise arithmetic progressions mod m — far more
// balanced than a random function — which silently breaks the 1/m collision
// mass the debias step subtracts. An injection preserves the family's
// pairwise independence while destroying that joint structure. Exported so
// collectors and tests can locate a category's cell in each sketch row.
func (s *CMSScheme) Hash(j, value int) int {
	// a, value < p < 2⁶¹ so the 128-bit product's high word is < 2⁵⁸ < p and
	// Div64 cannot panic; the sum after reduction fits 62 bits.
	hi, lo := bits.Mul64(s.a[j], uint64(value))
	_, rem := bits.Div64(hi, lo, hashPrime)
	return int(mix64((rem+s.b[j])%hashPrime) % uint64(s.rangeM))
}

// mix64 is the splitmix64 finalizer: a fixed bijection on 64-bit words with
// full avalanche behavior.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Report encodes (hash row j, disguised cell) as the single report integer.
func (s *CMSScheme) Report(j, cell int) int { return j*s.rangeM + cell }

// RowCell decodes a report integer back into (hash row, disguised cell).
func (s *CMSScheme) RowCell(report int) (j, cell int) {
	return report / s.rangeM, report % s.rangeM
}

// DisguiseValue disguises one private value: a uniformly chosen hash row j,
// the value hashed into that row's cell, and the cell disguised by a draw
// from the inner matrix column — so the report reveals the raw value only
// through the hash-then-RR channel.
func (s *CMSScheme) DisguiseValue(value int, rng *randx.Source) (int, error) {
	samplers, err := s.inner.Samplers()
	if err != nil {
		return 0, err
	}
	return s.disguise(value, rng, samplers)
}

func (s *CMSScheme) disguise(value int, rng *randx.Source, samplers []*randx.Alias) (int, error) {
	if value < 0 || value >= s.domain {
		return 0, fmt.Errorf("%w: value %d of %d categories", rr.ErrShape, value, s.domain)
	}
	j := rng.Intn(s.hashes)
	cell := s.Hash(j, value)
	return s.Report(j, samplers[cell].Draw(rng)), nil
}

// DisguiseBatchInto disguises records into dst (same length) through
// rr.BatchChunks, so the output depends only on (scheme, records, seed),
// never on the worker count.
func (s *CMSScheme) DisguiseBatchInto(dst, records []int, seed uint64, workers int) error {
	if len(dst) != len(records) {
		return fmt.Errorf("%w: dst length %d for %d records", rr.ErrShape, len(dst), len(records))
	}
	samplers, err := s.inner.Samplers()
	if err != nil {
		return err
	}
	return rr.BatchChunks(len(records), seed, workers, func(lo, hi int, rng *randx.Source) error {
		for k := lo; k < hi; k++ {
			rep, err := s.disguise(records[k], rng, samplers)
			if err != nil {
				return fmt.Errorf("%w: record %d has category %d", rr.ErrShape, k, records[k])
			}
			dst[k] = rep
		}
		return nil
	})
}

// rows debiases the k×m count grid: for every sketch row with reports it
// computes the row weight N_j/N and the row's debiased cell estimates
// t̂_j = inner⁻¹ · p̂*_j. Rows without reports get weight 0 and are skipped;
// the remaining weights are renormalized over the observed mass.
func (s *CMSScheme) rows(counts []int) (weights []float64, cells [][]float64, err error) {
	if len(counts) != s.ReportSpace() {
		return nil, nil, fmt.Errorf("%w: %d counts for report space %d", rr.ErrShape, len(counts), s.ReportSpace())
	}
	total := 0
	for k, c := range counts {
		if c < 0 {
			return nil, nil, fmt.Errorf("%w: count[%d] = %d is negative", rr.ErrShape, k, c)
		}
		total += c
	}
	if total == 0 {
		return nil, nil, rr.ErrEmptyData
	}
	weights = make([]float64, s.hashes)
	cells = make([][]float64, s.hashes)
	pStar := make([]float64, s.rangeM)
	for j := 0; j < s.hashes; j++ {
		row := counts[j*s.rangeM : (j+1)*s.rangeM]
		rowTotal := 0
		for _, c := range row {
			rowTotal += c
		}
		if rowTotal == 0 {
			continue
		}
		weights[j] = float64(rowTotal) / float64(total)
		invTotal := 1 / float64(rowTotal)
		for v, c := range row {
			pStar[v] = float64(c) * invTotal
		}
		t := make([]float64, s.rangeM)
		if err := s.inv.MulVecInto(t, pStar); err != nil {
			return nil, nil, err
		}
		cells[j] = t
	}
	return weights, cells, nil
}

// EstimateFrom debiases aggregated report counts (length ReportSpace(),
// row-major k×m) into frequency estimates for the requested categories; a
// nil categories slice means the full domain. The estimate for category x is
// the row-weighted mean of the collision-debiased cell estimates
// (m·t̂_j[h_j(x)] − 1)/(m − 1), unbiased over the hash family.
func (s *CMSScheme) EstimateFrom(counts []int, categories []int) ([]float64, error) {
	est, _, err := s.estimate(counts, categories, 0, 0)
	return est, err
}

// EstimateWithBound is EstimateFrom plus a per-category error bound: z
// standard deviations of the empirical sampling variance (the row-weighted
// metrics.CMSRowVariance terms) plus z times the metrics.CMSCollisionStd
// collision term for the given ell2 = Σ_y f(y)² (use 1 when no better bound
// on the true distribution is known).
func (s *CMSScheme) EstimateWithBound(counts []int, categories []int, z, ell2 float64) (ests, bounds []float64, err error) {
	return s.estimate(counts, categories, z, ell2)
}

func (s *CMSScheme) estimate(counts []int, categories []int, z, ell2 float64) (ests, bounds []float64, err error) {
	weights, cells, err := s.rows(counts)
	if err != nil {
		return nil, nil, err
	}
	withBound := z > 0
	m := float64(s.rangeM)
	// Per-row, per-cell debiased estimates and (optionally) variances are
	// precomputed once — O(k·m²) — so each category query is O(k).
	debiased := make([][]float64, s.hashes)
	var rowVar [][]float64
	if withBound {
		rowVar = make([][]float64, s.hashes)
	}
	for j, t := range cells {
		if t == nil {
			continue
		}
		d := make([]float64, s.rangeM)
		for u, tv := range t {
			d[u] = (m*tv - 1) / (m - 1)
		}
		debiased[j] = d
		if !withBound {
			continue
		}
		row := counts[j*s.rangeM : (j+1)*s.rangeM]
		rowTotal := 0
		for _, c := range row {
			rowTotal += c
		}
		pStar := make([]float64, s.rangeM)
		invTotal := 1 / float64(rowTotal)
		for v, c := range row {
			pStar[v] = float64(c) * invTotal
		}
		vr := make([]float64, s.rangeM)
		for u := range vr {
			v, err := metrics.CMSRowVariance(s.inv.RowView(u), pStar, rowTotal, s.rangeM)
			if err != nil {
				return nil, nil, err
			}
			// The m·t̂ debias multiplies the cell estimate by m before the
			// 1/(m−1) division; CMSRowVariance already carries the
			// (m/(m−1))² scale.
			vr[u] = v
		}
		rowVar[j] = vr
	}
	if categories == nil {
		categories = make([]int, s.domain)
		for x := range categories {
			categories[x] = x
		}
	}
	ests = make([]float64, len(categories))
	if withBound {
		bounds = make([]float64, len(categories))
	}
	collision := 0.0
	if withBound {
		collision = metrics.CMSCollisionStd(ell2, s.rangeM, s.hashes)
	}
	for i, x := range categories {
		if x < 0 || x >= s.domain {
			return nil, nil, fmt.Errorf("%w: category %d of %d", rr.ErrShape, x, s.domain)
		}
		var est, variance float64
		for j := 0; j < s.hashes; j++ {
			if debiased[j] == nil {
				continue
			}
			u := s.Hash(j, x)
			w := weights[j]
			est += w * debiased[j][u]
			if withBound {
				variance += w * w * rowVar[j][u]
			}
		}
		ests[i] = est
		if withBound {
			bounds[i] = z * (math.Sqrt(variance) + collision)
		}
	}
	return ests, bounds, nil
}

// cmsJSON is the wire form of the scheme: the hash family travels as its
// seed, the inner matrix in the rr matrix format. Decoding reconstructs
// through New, so invariants are revalidated.
type cmsJSON struct {
	Domain    int        `json:"domain"`
	Hashes    int        `json:"hashes"`
	HashRange int        `json:"hash_range"`
	HashSeed  uint64     `json:"hash_seed"`
	Inner     *rr.Matrix `json:"inner"`
}

// MarshalJSON implements json.Marshaler.
func (s *CMSScheme) MarshalJSON() ([]byte, error) {
	return json.Marshal(cmsJSON{
		Domain:    s.domain,
		Hashes:    s.hashes,
		HashRange: s.rangeM,
		HashSeed:  s.hashSeed,
		Inner:     s.inner,
	})
}

// UnmarshalJSON implements json.Unmarshaler, revalidating through New.
func (s *CMSScheme) UnmarshalJSON(data []byte) error {
	var raw cmsJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("sketch: decoding scheme: %w", err)
	}
	if raw.Inner == nil {
		return fmt.Errorf("%w: missing inner matrix", ErrBadParams)
	}
	decoded, err := New(raw.Domain, raw.Hashes, raw.HashRange, raw.Inner, raw.HashSeed)
	if err != nil {
		return err
	}
	*s = *decoded
	return nil
}

func init() {
	rr.RegisterScheme(Kind, func(data []byte) (rr.Scheme, error) {
		s := new(CMSScheme)
		if err := s.UnmarshalJSON(data); err != nil {
			return nil, err
		}
		return s, nil
	})
}
