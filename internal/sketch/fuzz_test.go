package sketch

import (
	"errors"
	"math"
	"testing"

	"optrr/internal/randx"
	"optrr/internal/rr"
)

// FuzzCMSRoundTrip drives the full hash→disguise→debias round trip under
// adversarial parameters. Constructor inputs are probed raw — invalid
// (hash_range, k, domain, ε) combinations must return errors, never panic —
// then folded into a valid range where the pipeline invariants must hold:
// every estimate finite, each row's debiased cell estimates summing to
// exactly zero mass above the 1/m collision floor, and the full-domain
// estimates summing to ≈ 1. The scheme must also survive a JSON round trip
// with its version fingerprint intact.
func FuzzCMSRoundTrip(f *testing.F) {
	f.Add(uint16(100), uint8(4), uint8(32), uint8(40), uint64(1), uint64(2))
	f.Add(uint16(2000), uint8(16), uint8(255), uint8(10), uint64(42), uint64(7))
	f.Add(uint16(0), uint8(0), uint8(0), uint8(0), uint64(0), uint64(0))
	f.Add(uint16(65535), uint8(255), uint8(1), uint8(255), uint64(1<<63), uint64(3))
	f.Fuzz(func(t *testing.T, domainRaw uint16, hashesRaw, rangeRaw, epsRaw uint8, hashSeed, dataSeed uint64) {
		// Raw probe: whatever the bytes say, construction either succeeds or
		// fails cleanly.
		if s, err := NewKRR(int(domainRaw), int(hashesRaw), int(rangeRaw),
			float64(epsRaw)/8, hashSeed); err == nil {
			_ = s.ReportSpace()
		} else if !errors.Is(err, ErrBadParams) && !errors.Is(err, rr.ErrSingular) {
			t.Fatalf("constructor error is neither ErrBadParams nor ErrSingular: %v", err)
		}

		// Folded valid range: m ∈ [32, 160), k ∈ [6, 16], domain ∈ [m, 4m],
		// ε ∈ [2, 9) — a regime where the collision and inverse-amplified
		// sampling variance of the full-domain sum stay well inside the
		// asserted tolerance (at ε below ~2 the inner inverse amplifies
		// per-row noise past any usable sum bound; that regime is still
		// exercised for crash-freedom by the raw probe above).
		m := 32 + int(rangeRaw)%128
		k := 6 + int(hashesRaw)%11
		domain := m * (1 + int(domainRaw)%4)
		eps := 2 + float64(epsRaw%56)/8
		s, err := NewKRR(domain, k, m, eps, hashSeed)
		if err != nil {
			t.Fatalf("folded params (%d, %d, %d, %v) rejected: %v", domain, k, m, eps, err)
		}

		// Disguise a skewed record stream and aggregate the k×m grid.
		const total = 20000
		rng := randx.New(dataSeed)
		records := make([]int, total)
		for i := range records {
			// Half the mass on twenty heavy categories, the rest uniform:
			// exercises both collision-heavy and near-empty cells.
			if rng.Intn(2) == 0 {
				records[i] = rng.Intn(20)
			} else {
				records[i] = rng.Intn(domain)
			}
		}
		reports := make([]int, total)
		if err := s.DisguiseBatchInto(reports, records, dataSeed, 0); err != nil {
			t.Fatal(err)
		}
		counts := make([]int, s.ReportSpace())
		for _, rep := range reports {
			if rep < 0 || rep >= len(counts) {
				t.Fatalf("report %d outside report space %d", rep, len(counts))
			}
			counts[rep]++
		}

		ests, bounds, err := s.EstimateWithBound(counts, nil, 3, 1)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for x, e := range ests {
			if math.IsNaN(e) || math.IsInf(e, 0) {
				t.Fatalf("estimate[%d] = %v", x, e)
			}
			if math.IsNaN(bounds[x]) || math.IsInf(bounds[x], 0) || bounds[x] < 0 {
				t.Fatalf("bound[%d] = %v", x, bounds[x])
			}
			sum += e
		}
		if math.Abs(sum-1) > 0.75 {
			t.Fatalf("full-domain estimates sum to %v over (domain=%d, k=%d, m=%d, ε=%v)",
				sum, domain, k, m, eps)
		}

		// JSON round trip preserves the scheme identity.
		data, err := rr.MarshalScheme(s)
		if err != nil {
			t.Fatal(err)
		}
		back, err := rr.UnmarshalScheme(data)
		if err != nil {
			t.Fatal(err)
		}
		v1, err := rr.SchemeVersion(s)
		if err != nil {
			t.Fatal(err)
		}
		v2, err := rr.SchemeVersion(back)
		if err != nil {
			t.Fatal(err)
		}
		if v1 != v2 {
			t.Fatalf("JSON round trip changed version %q -> %q", v1, v2)
		}
	})
}
