package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Prometheus text exposition (version 0.0.4) for a Registry: the format
// every scrape-based monitoring stack ingests. Metric names are sanitized
// (dots and other illegal runes become underscores), counters and gauges
// expose their value directly, and histograms expose the standard
// cumulative le-labelled bucket series plus _sum and _count — so
// histogram_quantile() works server-side on the same fixed buckets the
// in-process Quantile method uses.

// PrometheusContentType is the Content-Type of the text exposition format.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every metric of the registry in the Prometheus
// text exposition format. Metrics render in name order; unknown expvar kinds
// (anything that is not a Counter, Gauge or Histogram) are skipped — they
// have no well-defined exposition. The first error from w aborts the walk.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var err error
	r.Do(func(name string, v expvar.Var) {
		if err != nil {
			return
		}
		pn := promName(name)
		switch m := v.(type) {
		case *Counter:
			_, err = fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, m.Value())
		case *Gauge:
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", pn, pn, promFloat(m.Value()))
		case *Histogram:
			err = writePromHistogram(w, pn, m)
		}
	})
	return err
}

// writePromHistogram renders one histogram: cumulative buckets, sum, count.
// Each bucket counter is read once, so the le="+Inf" series equals the
// cumulative total even while writers race the scrape.
func writePromHistogram(w io.Writer, name string, h *Histogram) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	var cum int64
	for i, bound := range h.bounds {
		cum += h.BucketCount(i)
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, promFloat(bound), cum); err != nil {
			return err
		}
	}
	cum += h.BucketCount(len(h.bounds))
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, promFloat(h.Sum()), name, cum)
	return err
}

// promFloat renders a float64 in the exposition format, which — unlike JSON
// — has spellings for the non-finite values.
func promFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promName maps a registry metric name onto the Prometheus name charset
// [a-zA-Z_:][a-zA-Z0-9_:]*: every illegal rune becomes an underscore, and a
// leading digit gains one. "optimizer.generation_seconds" →
// "optimizer_generation_seconds".
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if r >= '0' && r <= '9' && i == 0 {
			b.WriteByte('_')
			b.WriteRune(r)
			continue
		}
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}
