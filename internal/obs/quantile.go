package obs

import "math"

// Quantile estimation from fixed histogram buckets, Prometheus-style: the
// observation at a requested rank is located in its bucket by the cumulative
// counts, then linearly interpolated between the bucket's bounds. Accuracy
// is bounded by bucket width, which is why latency histograms use log-spaced
// bounds (LogBuckets): the relative error of a quantile estimate is then
// bounded by the bucket growth factor regardless of scale.

// Quantile returns the estimated q-quantile (0 ≤ q ≤ 1) of the observed
// values. It returns NaN when the histogram is empty or q is outside [0, 1].
// Observations in the overflow (+Inf) bucket cannot be interpolated: a
// quantile landing there returns the largest finite bound. The first
// bucket interpolates from 0 when its bound is positive (the natural lower
// edge for duration and size histograms), from the bound itself otherwise.
//
// The counts are read without a lock, like every other histogram accessor:
// under concurrent writers a quantile is a near-consistent estimate, which
// is all a bucketed quantile ever is. Each bucket is read exactly once, so
// the located rank never runs past the counted total. Allocation-free for
// histograms up to 63 finite bounds.
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	var inline [64]int64
	counts := inline[:]
	if len(h.counts) > len(inline) {
		counts = make([]int64, len(h.counts))
	}
	counts = counts[:len(h.counts)]
	var total int64
	for i := range counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i == len(counts)-1 {
			// Overflow bucket: no upper edge to interpolate toward.
			break
		}
		upper := h.bounds[i]
		lower := 0.0
		if i > 0 {
			lower = h.bounds[i-1]
		} else if upper <= 0 {
			lower = upper
		}
		// Position of the rank within this bucket's count mass.
		within := (rank - float64(cum-c)) / float64(c)
		if within < 0 {
			within = 0
		}
		return lower + (upper-lower)*within
	}
	return h.bounds[len(h.bounds)-1]
}

// QuantileSnapshot is a one-shot summary of a histogram: the count, the sum,
// and the three operational quantiles every latency dashboard wants.
type QuantileSnapshot struct {
	Count         int64
	Sum           float64
	P50, P90, P99 float64
}

// Quantiles returns the histogram's quantile snapshot (p50/p90/p99). The
// three quantiles are estimated from the same lock-free bucket reads as
// Quantile; under concurrent writers the snapshot is near-consistent.
func (h *Histogram) Quantiles() QuantileSnapshot {
	return QuantileSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
	}
}

// LogBuckets returns n log-spaced histogram bounds starting at start and
// multiplying by factor: start, start·factor, start·factor², .... It panics
// on non-positive start, factor ≤ 1 or n < 1 — wiring-time programming
// errors, like NewHistogram's. A quantile estimated from such buckets has
// relative error at most factor−1.
func LogBuckets(start, factor float64, n int) []float64 {
	if !(start > 0) || !(factor > 1) || n < 1 {
		panic("obs: LogBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}
