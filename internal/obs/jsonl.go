package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// JSONLRecorder writes one JSON object per event to an io.Writer — the
// run-trace format consumed by jq, pandas and the like. Each line carries a
// fixed envelope followed by the event fields in sorted key order:
//
//	{"ts":"2026-08-06T12:00:00.000Z","seq":3,"event":"optimizer.generation","gen":2,...}
//
// The recorder is safe for concurrent use; lines are written atomically.
type JSONLRecorder struct {
	mu  sync.Mutex
	w   *bufio.Writer
	seq int
	now func() time.Time // test hook; nil means time.Now
	buf bytes.Buffer
}

// NewJSONL returns a recorder writing JSONL events to w. Call Flush (or
// Close on the underlying writer after Flush) when done.
func NewJSONL(w io.Writer) *JSONLRecorder {
	return &JSONLRecorder{w: bufio.NewWriter(w)}
}

// Enabled reports true.
func (r *JSONLRecorder) Enabled() bool { return true }

// Record writes the event as one JSON line.
func (r *JSONLRecorder) Record(event string, fields Fields) {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := time.Now
	if r.now != nil {
		now = r.now
	}
	b := &r.buf
	b.Reset()
	b.WriteByte('{')
	b.WriteString(`"ts":`)
	appendJSON(b, now().UTC().Format("2006-01-02T15:04:05.000Z07:00"))
	fmt.Fprintf(b, `,"seq":%d,"event":`, r.seq)
	appendJSON(b, event)
	for _, k := range sortedKeys(fields) {
		b.WriteByte(',')
		appendJSON(b, k)
		b.WriteByte(':')
		appendJSON(b, fields[k])
	}
	b.WriteString("}\n")
	r.seq++
	r.w.Write(b.Bytes()) //nolint:errcheck // surfaced by Flush
}

// Flush forces buffered lines out to the underlying writer.
func (r *JSONLRecorder) Flush() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.w.Flush()
}

// appendJSON marshals v onto b, degrading to a quoted %v representation for
// values encoding/json cannot handle (NaN, Inf, channels, ...): a trace line
// must never be lost to an exotic field value.
func appendJSON(b *bytes.Buffer, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		data, _ = json.Marshal(fmt.Sprintf("%v", v))
	}
	b.Write(data)
}
