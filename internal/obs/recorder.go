// Package obs is the repository's observability layer: a concurrency-safe
// metrics registry (counters, gauges, fixed-bucket histograms) publishable
// through expvar, and a structured event Recorder producing machine-readable
// JSONL run traces. Everything is standard library only, and every
// integration point is designed so that the disabled path (NopRecorder, nil
// *Registry) costs nothing: no allocations, no locks, no syscalls.
//
// The subsystem exists because the paper's deployment story — a collector
// aggregating disguised reports from millions of respondents while an
// optimizer maintains the disguise matrices — is operated by watching
// reconstruction error, ingestion rates and search progress over time.
// Counters answer "how much, right now" (expvar + pprof for live services),
// traces answer "what happened, in order" (JSONL for offline analysis).
package obs

import (
	"sort"
	"sync"
	"time"
)

// Fields carries the payload of one structured event. Keys must not collide
// with the envelope keys "ts", "seq" and "event" reserved by the JSONL
// encoding.
type Fields map[string]any

// Recorder consumes structured events. Implementations must be safe for
// concurrent use.
//
// Instrumented code must guard event construction with Enabled so the
// disabled path allocates nothing:
//
//	if rec.Enabled() {
//	    rec.Record("optimizer.generation", obs.Fields{"gen": gen})
//	}
type Recorder interface {
	// Enabled reports whether Record does anything; callers use it to skip
	// building Fields maps entirely.
	Enabled() bool
	// Record consumes one event. The Fields map must not be mutated after
	// the call; implementations may retain it.
	Record(event string, fields Fields)
}

// NopRecorder discards everything; its Enabled returns false. The zero value
// is ready to use.
type NopRecorder struct{}

// Enabled reports false: events should not even be constructed.
func (NopRecorder) Enabled() bool { return false }

// Record discards the event.
func (NopRecorder) Record(string, Fields) {}

// Nop is a shared ready-to-use NopRecorder.
var Nop Recorder = NopRecorder{}

// OrNop returns rec, or Nop when rec is nil, so instrumented code can hold a
// never-nil Recorder.
func OrNop(rec Recorder) Recorder {
	if rec == nil {
		return Nop
	}
	return rec
}

// MultiRecorder fans every event out to several recorders.
type MultiRecorder struct {
	recs []Recorder
}

// NewMulti returns a recorder forwarding to every non-nil, enabled argument.
func NewMulti(recs ...Recorder) *MultiRecorder {
	m := &MultiRecorder{}
	for _, r := range recs {
		if r != nil && r.Enabled() {
			m.recs = append(m.recs, r)
		}
	}
	return m
}

// Enabled reports whether any target recorder is enabled.
func (m *MultiRecorder) Enabled() bool { return len(m.recs) > 0 }

// Record forwards the event to every target.
func (m *MultiRecorder) Record(event string, fields Fields) {
	for _, r := range m.recs {
		r.Record(event, fields)
	}
}

// Event is one recorded event as captured by MemoryRecorder.
type Event struct {
	// Seq is the zero-based arrival index within the recorder.
	Seq int
	// Time is the arrival time.
	Time time.Time
	// Name is the event name, e.g. "optimizer.generation".
	Name string
	// Fields is the event payload.
	Fields Fields
}

// MemoryRecorder captures events in memory, for tests and programmatic
// consumers. The zero value is ready to use.
type MemoryRecorder struct {
	mu     sync.Mutex
	events []Event
	now    func() time.Time
}

// NewMemory returns an empty in-memory recorder.
func NewMemory() *MemoryRecorder { return &MemoryRecorder{} }

// Enabled reports true.
func (m *MemoryRecorder) Enabled() bool { return true }

// Record appends the event.
func (m *MemoryRecorder) Record(event string, fields Fields) {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := time.Now
	if m.now != nil {
		now = m.now
	}
	m.events = append(m.events, Event{
		Seq:    len(m.events),
		Time:   now(),
		Name:   event,
		Fields: fields,
	})
}

// Events returns a copy of the captured events in arrival order.
func (m *MemoryRecorder) Events() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Event, len(m.events))
	copy(out, m.events)
	return out
}

// Named returns the captured events with the given name, in arrival order.
func (m *MemoryRecorder) Named(name string) []Event {
	var out []Event
	for _, e := range m.Events() {
		if e.Name == name {
			out = append(out, e)
		}
	}
	return out
}

// Len returns the number of captured events.
func (m *MemoryRecorder) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.events)
}

// sortedKeys returns the field keys in deterministic order.
func sortedKeys(f Fields) []string {
	keys := make([]string, 0, len(f))
	for k := range f {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
