package obs

import (
	"context"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
	"time"
)

// Server exposes the debug endpoints of a running process:
//
//	/debug/vars    expvar (all published variables, incl. registries)
//	/debug/pprof/  net/http/pprof profiles (cpu, heap, goroutine, ...)
//	/metrics       the registry passed to Serve: JSON by default, the
//	               Prometheus text exposition under content negotiation
//	/healthz       liveness probe: 200 "ok" while the server runs
//
// It deliberately uses its own mux, not http.DefaultServeMux, so importing
// this package never changes the behavior of an application's own server.
type Server struct {
	ln  net.Listener
	srv *http.Server

	closeOnce sync.Once
	closeErr  error
}

// shutdownTimeout bounds how long Close waits for in-flight scrapes before
// forcing connections shut. Scrape handlers respond in milliseconds; the
// grace period only matters for a pprof profile in progress.
const shutdownTimeout = 5 * time.Second

// Serve starts a debug server on addr ("host:port"; ":0" picks a free port).
// reg may be nil; when non-nil it is additionally served at /metrics. The
// server runs until Close.
func Serve(addr string, reg *Registry) (*Server, error) {
	return ServeMux(addr, reg, nil)
}

// ServeMux is Serve with an application hook: when register is non-nil it is
// called with the server's mux before the listener starts accepting, so a
// service (e.g. cmd/rrserver) can mount its own API routes next to the debug
// endpoints and inherit the listener, the graceful Close, /healthz and the
// /metrics exposition instead of running a second HTTP server.
func ServeMux(addr string, reg *Registry, register func(mux *http.ServeMux)) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	if reg != nil {
		mux.HandleFunc("/metrics", metricsHandler(reg))
	}
	if register != nil {
		register(mux)
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	s := &Server{ln: ln, srv: srv}
	go srv.Serve(ln) //nolint:errcheck // ErrServerClosed on Close
	return s, nil
}

// metricsHandler serves the registry with content negotiation. The JSON
// document of Registry.String stays the default (existing consumers see
// byte-identical output); the Prometheus text exposition is selected by a
// scraper's Accept header (which names text/plain or an OpenMetrics type
// before any JSON type) or explicitly with ?format=prometheus. ?format=json
// forces JSON regardless of Accept.
func metricsHandler(reg *Registry) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		format := r.URL.Query().Get("format")
		prom := format == "prometheus"
		if format == "" {
			accept := r.Header.Get("Accept")
			prom = strings.Contains(accept, "text/plain") ||
				strings.Contains(accept, "application/openmetrics-text")
		}
		if prom {
			w.Header().Set("Content-Type", PrometheusContentType)
			reg.WritePrometheus(w) //nolint:errcheck // client gone; nothing to do
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		fmt.Fprintln(w, reg.String())
	}
}

// Addr returns the bound address, e.g. "127.0.0.1:43561".
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close gracefully stops the server: the listener closes immediately (the
// port is released, /healthz goes unreachable) and in-flight requests get
// shutdownTimeout to finish before their connections are forced shut.
//
// Close is idempotent: the shutdown runs once and every call returns the
// same result. Without the guard a second Close re-entered
// http.Server.Shutdown, which re-closes the (already closed) listener and
// surfaces a spurious net.ErrClosed — exactly the kind of shutdown-path
// noise a supervisor restarting rrserver turns into a false alert.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		ctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
		defer cancel()
		err := s.srv.Shutdown(ctx)
		// Shutdown only closes listeners the serve goroutine has registered;
		// if Close races server startup the listener may not be tracked yet,
		// so close it directly too (idempotent — double close just errors).
		s.ln.Close() //nolint:errcheck
		if err == context.DeadlineExceeded {
			// Grace period exhausted: drop whatever is still running.
			err = s.srv.Close()
		}
		s.closeErr = err
	})
	return s.closeErr
}
