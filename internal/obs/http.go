package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server exposes the debug endpoints of a running process:
//
//	/debug/vars    expvar (all published variables, incl. registries)
//	/debug/pprof/  net/http/pprof profiles (cpu, heap, goroutine, ...)
//	/metrics       the registry passed to Serve, as one JSON object
//
// It deliberately uses its own mux, not http.DefaultServeMux, so importing
// this package never changes the behavior of an application's own server.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts a debug server on addr ("host:port"; ":0" picks a free port).
// reg may be nil; when non-nil it is additionally served at /metrics. The
// server runs until Close.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if reg != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			fmt.Fprintln(w, reg.String())
		})
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	s := &Server{ln: ln, srv: srv}
	go srv.Serve(ln) //nolint:errcheck // ErrServerClosed on Close
	return s, nil
}

// Addr returns the bound address, e.g. "127.0.0.1:43561".
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and releases the port.
func (s *Server) Close() error { return s.srv.Close() }
