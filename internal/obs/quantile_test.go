package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestQuantileUniformBucket(t *testing.T) {
	// 100 observations spread evenly through (0, 10]: the estimate should
	// interpolate linearly inside the single bucket.
	h := NewHistogram([]float64{10, 20})
	for i := 0; i < 100; i++ {
		h.Observe(5)
	}
	if got := h.Quantile(0.5); !almostEqual(got, 5, 1e-9) {
		t.Errorf("p50 of one full (0,10] bucket = %v, want 5", got)
	}
	if got := h.Quantile(0.9); !almostEqual(got, 9, 1e-9) {
		t.Errorf("p90 of one full (0,10] bucket = %v, want 9", got)
	}
	if got := h.Quantile(1); !almostEqual(got, 10, 1e-9) {
		t.Errorf("p100 of one full (0,10] bucket = %v, want 10", got)
	}
}

func TestQuantileAcrossBuckets(t *testing.T) {
	// 50 observations in (0,1], 50 in (1,2]: the median sits at the shared
	// edge, p75 in the middle of the second bucket.
	h := NewHistogram([]float64{1, 2, 4})
	for i := 0; i < 50; i++ {
		h.Observe(0.5)
		h.Observe(1.5)
	}
	if got := h.Quantile(0.5); !almostEqual(got, 1, 1e-9) {
		t.Errorf("p50 = %v, want 1", got)
	}
	if got := h.Quantile(0.75); !almostEqual(got, 1.5, 1e-9) {
		t.Errorf("p75 = %v, want 1.5", got)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	if got := h.Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("quantile of empty histogram = %v, want NaN", got)
	}
	h.Observe(0.5)
	for _, q := range []float64{-0.1, 1.1, math.NaN()} {
		if got := h.Quantile(q); !math.IsNaN(got) {
			t.Errorf("Quantile(%v) = %v, want NaN", q, got)
		}
	}
	// Overflow-bucket observations clamp to the largest finite bound.
	h2 := NewHistogram([]float64{1, 2})
	h2.Observe(100)
	if got := h2.Quantile(0.5); got != 2 {
		t.Errorf("p50 of overflow-only histogram = %v, want 2 (largest bound)", got)
	}
	// Negative-bound first bucket has no natural zero edge: interpolation
	// degenerates to the bound itself.
	h3 := NewHistogram([]float64{-1, 1})
	h3.Observe(-5)
	if got := h3.Quantile(0.5); got != -1 {
		t.Errorf("p50 in first negative bucket = %v, want -1", got)
	}
}

func TestQuantilesSnapshot(t *testing.T) {
	h := NewHistogram(LogBuckets(0.001, 2, 20))
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) / 1000) // (0, 1]
	}
	qs := h.Quantiles()
	if qs.Count != 1000 {
		t.Fatalf("Count = %d, want 1000", qs.Count)
	}
	if !almostEqual(qs.Sum, 500.5, 1e-6) {
		t.Errorf("Sum = %v, want 500.5", qs.Sum)
	}
	// Log buckets with factor 2 bound the relative error by 2: each estimate
	// must land within a factor of 2 of the true quantile.
	for _, tc := range []struct{ got, want float64 }{
		{qs.P50, 0.5}, {qs.P90, 0.9}, {qs.P99, 0.99},
	} {
		if tc.got < tc.want/2 || tc.got > tc.want*2 {
			t.Errorf("quantile estimate %v not within factor 2 of %v", tc.got, tc.want)
		}
	}
	if qs.P50 > qs.P90 || qs.P90 > qs.P99 {
		t.Errorf("quantiles not monotone: p50=%v p90=%v p99=%v", qs.P50, qs.P90, qs.P99)
	}
}

func TestQuantileManyBucketsHeapPath(t *testing.T) {
	// More than 63 finite bounds forces the heap-allocated scratch path;
	// the estimate must be identical in kind.
	h := NewHistogram(LogBuckets(1, 1.1, 100))
	for i := 0; i < 1000; i++ {
		h.Observe(50)
	}
	got := h.Quantile(0.5)
	if got < 40 || got > 60 {
		t.Errorf("p50 = %v, want within [40, 60]", got)
	}
}

func TestQuantileConcurrentWriters(t *testing.T) {
	// Quantile reads race live writers; under -race this exercises the
	// lock-free access pattern, and the estimate must stay inside the
	// observed value range at all times.
	h := NewHistogram(LogBuckets(0.001, 2, 24))
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			v := 0.001 * float64(seed+1)
			h.Observe(v) // at least one observation survives even if stop wins the scheduling race
			for {
				select {
				case <-stop:
					return
				default:
				}
				h.Observe(v)
				v *= 1.37
				if v > 1000 {
					v = 0.001 * float64(seed+1)
				}
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		if q := h.Quantile(0.9); !math.IsNaN(q) && (q < 0 || q > 1e7) {
			t.Errorf("mid-write p90 = %v, outside plausible range", q)
		}
		_ = h.Quantiles()
		_ = h.String()
	}
	close(stop)
	wg.Wait()
	qs := h.Quantiles()
	if qs.Count == 0 || math.IsNaN(qs.P50) {
		t.Fatalf("post-race snapshot degenerate: %+v", qs)
	}
}

func TestHistogramStringIncludesQuantiles(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	var doc map[string]any
	if err := json.Unmarshal([]byte(h.String()), &doc); err != nil {
		t.Fatalf("histogram String not valid JSON: %v\n%s", err, h.String())
	}
	for _, key := range []string{"p50", "p90", "p99"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("histogram JSON missing %q: %s", key, h.String())
		}
	}
	// Empty histogram: quantiles are NaN and must render as null, keeping
	// the document parseable.
	empty := NewHistogram([]float64{1})
	var doc2 map[string]any
	if err := json.Unmarshal([]byte(empty.String()), &doc2); err != nil {
		t.Fatalf("empty histogram String not valid JSON: %v\n%s", err, empty.String())
	}
	if doc2["p50"] != nil {
		t.Errorf("empty histogram p50 = %v, want null", doc2["p50"])
	}
}

func TestLogBuckets(t *testing.T) {
	got := LogBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("LogBuckets = %v, want %v", got, want)
	}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Fatalf("LogBuckets = %v, want %v", got, want)
		}
	}
	for _, bad := range [][3]float64{{0, 2, 4}, {1, 1, 4}, {1, 2, 0}, {-1, 2, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("LogBuckets(%v, %v, %v) did not panic", bad[0], bad[1], bad[2])
				}
			}()
			LogBuckets(bad[0], bad[1], int(bad[2]))
		}()
	}
}

func TestNonFiniteMetricsRenderAsValidJSON(t *testing.T) {
	// Regression: a NaN or ±Inf gauge used to render bare (NaN is not a JSON
	// token), corrupting the whole Registry.String document.
	reg := NewRegistry()
	reg.Gauge("g.nan").Set(math.NaN())
	reg.Gauge("g.posinf").Set(math.Inf(1))
	reg.Gauge("g.neginf").Set(math.Inf(-1))
	reg.Gauge("g.finite").Set(1.5)
	h := reg.Histogram("h.poisoned", []float64{1, 2})
	h.Observe(math.Inf(1)) // poisons the sum
	doc := reg.String()
	var parsed map[string]any
	if err := json.Unmarshal([]byte(doc), &parsed); err != nil {
		t.Fatalf("registry with non-finite metrics is not valid JSON: %v\n%s", err, doc)
	}
	for _, name := range []string{"g.nan", "g.posinf", "g.neginf"} {
		if parsed[name] != nil {
			t.Errorf("%s = %v, want null", name, parsed[name])
		}
	}
	if parsed["g.finite"] != 1.5 {
		t.Errorf("g.finite = %v, want 1.5", parsed["g.finite"])
	}
	hist, ok := parsed["h.poisoned"].(map[string]any)
	if !ok {
		t.Fatalf("h.poisoned did not parse as object: %v", parsed["h.poisoned"])
	}
	if hist["sum"] != nil {
		t.Errorf("poisoned histogram sum = %v, want null", hist["sum"])
	}
	if !strings.Contains(doc, `"g.nan":null`) {
		t.Errorf("document does not spell null for NaN gauge: %s", doc)
	}
}

func BenchmarkHistogramQuantiles(b *testing.B) {
	h := NewHistogram(LogBuckets(0.0001, 2, 30))
	for i := 1; i <= 10000; i++ {
		h.Observe(float64(i) * 0.0003)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qs := h.Quantiles()
		if qs.Count == 0 {
			b.Fatal("empty snapshot")
		}
	}
}
