package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	c.Add(-5) // ignored: counters are monotone
	if got := c.Value(); got != 42 {
		t.Fatalf("Value = %d, want 42", got)
	}
	if got := c.String(); got != "42" {
		t.Fatalf("String = %q, want \"42\"", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(1.5)
	g.Add(-0.25)
	if got := g.Value(); got != 1.25 {
		t.Fatalf("Value = %v, want 1.25", got)
	}
	if got := g.String(); got != "1.25" {
		t.Fatalf("String = %q, want \"1.25\"", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 3, 50, 1000} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("Count = %d, want 5", got)
	}
	if got := h.Sum(); got != 1054.5 {
		t.Fatalf("Sum = %v, want 1054.5", got)
	}
	// Upper-bound-inclusive buckets: (-Inf,1], (1,10], (10,100], (100,+Inf).
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if got := h.BucketCount(i); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	var parsed struct {
		Count   int64            `json:"count"`
		Sum     float64          `json:"sum"`
		Buckets map[string]int64 `json:"buckets"`
	}
	if err := json.Unmarshal([]byte(h.String()), &parsed); err != nil {
		t.Fatalf("String is not valid JSON: %v\n%s", err, h.String())
	}
	if parsed.Count != 5 || parsed.Buckets["+Inf"] != 1 {
		t.Fatalf("parsed = %+v", parsed)
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	for _, bounds := range [][]float64{nil, {}, {2, 1}, {1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("hits")
	c1.Add(7)
	if c2 := r.Counter("hits"); c2 != c1 {
		t.Fatal("second Counter lookup returned a different instance")
	}
	r.Gauge("temp").Set(3)
	r.Histogram("lat", []float64{1, 2}).Observe(1.5)

	snap := r.Snapshot()
	if snap["hits"] != "7" || snap["temp"] != "3" {
		t.Fatalf("Snapshot = %v", snap)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("hits")
}

func TestRegistryStringIsJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Inc()
	r.Gauge("b").Set(0.5)
	r.Histogram("c", []float64{1}).Observe(2)
	var parsed map[string]any
	if err := json.Unmarshal([]byte(r.String()), &parsed); err != nil {
		t.Fatalf("String is not valid JSON: %v\n%s", err, r.String())
	}
	for _, k := range []string{"a", "b", "c"} {
		if _, ok := parsed[k]; !ok {
			t.Errorf("missing key %q in %s", k, r.String())
		}
	}
	// Deterministic (sorted) key order.
	s := r.String()
	if !(strings.Index(s, `"a"`) < strings.Index(s, `"b"`) && strings.Index(s, `"b"`) < strings.Index(s, `"c"`)) {
		t.Fatalf("keys not sorted: %s", s)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("n").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h", []float64{500}).Observe(float64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("n").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Gauge("g").Value(); got != 8000 {
		t.Fatalf("gauge = %v, want 8000", got)
	}
	if got := r.Histogram("h", nil).Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestMetricUpdatesAllocateNothing(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", []float64{1, 2, 4})
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		g.Set(1)
		h.Observe(3)
	}); n != 0 {
		t.Fatalf("metric updates allocated %v times per run, want 0", n)
	}
}
