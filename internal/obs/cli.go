package obs

import (
	"fmt"
	"os"
)

// CLI bundles the observability endpoints shared by the command-line tools:
// an optional JSONL trace file (-trace) and an optional live debug server
// (-metrics-addr). Fields are never nil / always usable; with both flags
// empty the bundle is free.
type CLI struct {
	// Recorder is the trace sink: a JSONLRecorder when -trace was given,
	// Nop otherwise.
	Recorder Recorder
	// Registry collects the tool's metrics. Always non-nil so instrumented
	// code can register unconditionally; only served when -metrics-addr was
	// given.
	Registry *Registry
	// MetricsURL is the base URL of the debug server ("" when disabled).
	MetricsURL string

	trace  *os.File
	jsonl  *JSONLRecorder
	server *Server
}

// OpenCLI materializes the observability endpoints for one tool run.
// tracePath == "" disables tracing; metricsAddr == "" disables the debug
// server; expvarName is the expvar variable the registry publishes under
// (e.g. "optrr"). Call Close when the run ends.
func OpenCLI(tracePath, metricsAddr, expvarName string) (*CLI, error) {
	c := &CLI{Recorder: Nop, Registry: NewRegistry()}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return nil, fmt.Errorf("obs: trace file: %w", err)
		}
		c.trace = f
		c.jsonl = NewJSONL(f)
		c.Recorder = c.jsonl
	}
	if metricsAddr != "" {
		c.Registry.PublishExpvar(expvarName)
		srv, err := Serve(metricsAddr, c.Registry)
		if err != nil {
			c.Close() //nolint:errcheck // the listen error wins
			return nil, err
		}
		c.server = srv
		c.MetricsURL = "http://" + srv.Addr()
	}
	return c, nil
}

// Close flushes the trace and stops the debug server.
func (c *CLI) Close() error {
	var first error
	if c.jsonl != nil {
		if err := c.jsonl.Flush(); err != nil && first == nil {
			first = err
		}
	}
	if c.trace != nil {
		if err := c.trace.Close(); err != nil && first == nil {
			first = err
		}
	}
	if c.server != nil {
		if err := c.server.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
