package obs

import (
	"io"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestWritePrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("optimizer.generations").Add(7)
	reg.Gauge("optimizer.front_size").Set(12.5)
	h := reg.Histogram("optimizer.generation_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE optimizer_generations counter\noptimizer_generations 7\n",
		"# TYPE optimizer_front_size gauge\noptimizer_front_size 12.5\n",
		"# TYPE optimizer_generation_seconds histogram\n",
		`optimizer_generation_seconds_bucket{le="0.1"} 1`,
		`optimizer_generation_seconds_bucket{le="1"} 2`,
		`optimizer_generation_seconds_bucket{le="+Inf"} 3`,
		"optimizer_generation_seconds_sum 5.55\n",
		"optimizer_generation_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, ".") && strings.Contains(out, "optimizer.generations") {
		t.Errorf("unsanitized metric name leaked into exposition:\n%s", out)
	}
}

func TestWritePrometheusNonFinite(t *testing.T) {
	// Unlike JSON, the exposition format has spellings for non-finite
	// values; they must pass through, not turn into null.
	reg := NewRegistry()
	reg.Gauge("g.nan").Set(math.NaN())
	reg.Gauge("g.inf").Set(math.Inf(1))
	reg.Gauge("g.neg").Set(math.Inf(-1))
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := b.String()
	for _, want := range []string{"g_nan NaN\n", "g_inf +Inf\n", "g_neg -Inf\n"} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestPromName(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"optimizer.generation_seconds", "optimizer_generation_seconds"},
		{"a-b c", "a_b_c"},
		{"9lives", "_9lives"},
		{"ok_name:sub", "ok_name:sub"},
		{"", "_"},
	} {
		if got := promName(tc.in); got != tc.want {
			t.Errorf("promName(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func fetch(t *testing.T, url string, accept string) (int, string, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
}

func TestServerContentNegotiationAndHealthz(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("optimizer.generations").Add(3)
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	// Default (no Accept): JSON, as before this change.
	code, ct, body := fetch(t, base+"/metrics", "")
	if code != http.StatusOK || !strings.HasPrefix(ct, "application/json") {
		t.Errorf("default /metrics: code=%d ct=%q", code, ct)
	}
	if !strings.Contains(body, `"optimizer.generations":3`) {
		t.Errorf("default /metrics body not the JSON document: %s", body)
	}

	// A Prometheus scraper's Accept header selects the text exposition.
	code, ct, body = fetch(t, base+"/metrics", "text/plain;version=0.0.4")
	if code != http.StatusOK || ct != PrometheusContentType {
		t.Errorf("prometheus /metrics: code=%d ct=%q", code, ct)
	}
	if !strings.Contains(body, "optimizer_generations 3\n") {
		t.Errorf("prometheus /metrics body missing series: %s", body)
	}

	// Explicit format override beats the Accept header.
	code, _, body = fetch(t, base+"/metrics?format=prometheus", "application/json")
	if code != http.StatusOK || !strings.Contains(body, "optimizer_generations 3") {
		t.Errorf("?format=prometheus: code=%d body=%s", code, body)
	}
	code, _, body = fetch(t, base+"/metrics?format=json", "text/plain")
	if code != http.StatusOK || !strings.Contains(body, `"optimizer.generations":3`) {
		t.Errorf("?format=json: code=%d body=%s", code, body)
	}

	code, _, body = fetch(t, base+"/healthz", "")
	if code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Errorf("/healthz: code=%d body=%q", code, body)
	}
}

func TestServerGracefulClose(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", nil)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	addr := srv.Addr()
	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(shutdownTimeout + time.Second):
		t.Fatal("Close did not return within the shutdown grace period")
	}
	// The port must be released: a fresh listener can bind immediately.
	srv2, err := Serve(addr, nil)
	if err != nil {
		t.Fatalf("rebind %s after Close: %v", addr, err)
	}
	srv2.Close()
}
