package obs

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestServerCloseIdempotent: Close runs the shutdown exactly once and every
// call — sequential or concurrent — returns the same nil result. Before the
// once-guard a second Close re-entered http.Server.Shutdown and surfaced a
// spurious net.ErrClosed from the already-closed listener.
func TestServerCloseIdempotent(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	const closers = 8
	errs := make(chan error, closers)
	var wg sync.WaitGroup
	for i := 0; i < closers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- srv.Close()
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("concurrent Close: %v", err)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close after Close: %v", err)
	}
}

// TestServerCloseDuringScrapes: /metrics scrapes racing shutdown neither
// panic nor wedge the grace period — every request either completes or fails
// with a connection error, and Close returns promptly. Run under -race by
// ci.sh (the name matches the Concurrent sweep).
func TestServerCloseDuringScrapesConcurrent(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x.requests").Add(1)
	reg.Histogram("x.lat", []float64{1, 10, 100}).Observe(5)
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	base := "http://" + srv.Addr()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{Timeout: 2 * time.Second}
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Get(base + "/metrics")
				if err != nil {
					// Expected once the listener closes.
					continue
				}
				resp.Body.Close()
			}
		}()
	}
	time.Sleep(20 * time.Millisecond) // let scrapes overlap the shutdown
	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close under scrape load: %v", err)
		}
	case <-time.After(shutdownTimeout + time.Second):
		t.Fatal("Close wedged past the grace period under scrape load")
	}
	close(stop)
	wg.Wait()
}

// TestServeMuxExtraRoutes: an application hook mounts its own routes on the
// obs server and the debug endpoints keep working beside them.
func TestServeMuxExtraRoutes(t *testing.T) {
	reg := NewRegistry()
	srv, err := ServeMux("127.0.0.1:0", reg, func(mux *http.ServeMux) {
		mux.HandleFunc("/v1/ping", func(w http.ResponseWriter, _ *http.Request) {
			fmt.Fprint(w, "pong")
		})
	})
	if err != nil {
		t.Fatalf("ServeMux: %v", err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, _, body := fetch(t, base+"/v1/ping", "")
	if code != http.StatusOK || body != "pong" {
		t.Fatalf("/v1/ping: code=%d body=%q", code, body)
	}
	code, _, body = fetch(t, base+"/healthz", "")
	if code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz beside extra routes: code=%d body=%q", code, body)
	}
}
