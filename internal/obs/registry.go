package obs

import (
	"bytes"
	"expvar"
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. All methods are
// safe for concurrent use and allocation-free.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative; negative deltas are ignored to keep
// the counter monotone).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// String implements expvar.Var.
func (c *Counter) String() string { return strconv.FormatInt(c.v.Load(), 10) }

// Gauge is a float-valued metric that can move in both directions. All
// methods are safe for concurrent use and allocation-free.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the value by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// String implements expvar.Var. NaN and ±Inf have no JSON representation;
// they render as null so a single poisoned gauge cannot corrupt the whole
// /debug/vars or /metrics document (the Prometheus exposition keeps the
// exact values — its text format represents non-finite numbers).
func (g *Gauge) String() string { return jsonFloat(g.Value()) }

// jsonFloat renders a float64 as a JSON value: the shortest round-trip
// representation for finite values, null for NaN and ±Inf.
func jsonFloat(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "null"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Histogram accumulates observations into fixed buckets defined by ascending
// upper bounds; one implicit +Inf bucket catches the overflow. Observation is
// allocation-free and lock-free (binary search + two atomic adds).
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram returns a histogram over the given ascending upper bounds.
// It panics on unsorted or empty bounds — a programming error at wiring time.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at %d: %v", i, bounds))
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// BucketCount returns the count of bucket i (i == len(bounds) is +Inf).
func (h *Histogram) BucketCount(i int) int64 { return h.counts[i].Load() }

// String implements expvar.Var:
// {"count":n,"sum":s,"buckets":{"0.5":1,...,"+Inf":0},"p50":...,"p90":...,"p99":...}.
// The p50/p90/p99 keys are the bucket-interpolated quantile snapshot (see
// Quantile). A non-finite sum (after observing NaN or ±Inf values) and the
// quantiles of an empty histogram render as null, like Gauge.String.
func (h *Histogram) String() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, `{"count":%d,"sum":%s,"buckets":{`, h.Count(), jsonFloat(h.Sum()))
	for i, bound := range h.bounds {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `"%s":%d`, strconv.FormatFloat(bound, 'g', -1, 64), h.counts[i].Load())
	}
	fmt.Fprintf(&b, `,"+Inf":%d}`, h.counts[len(h.bounds)].Load())
	fmt.Fprintf(&b, `,"p50":%s,"p90":%s,"p99":%s}`,
		jsonFloat(h.Quantile(0.50)), jsonFloat(h.Quantile(0.90)), jsonFloat(h.Quantile(0.99)))
	return b.String()
}

// Registry is a namespace of metrics. Lookups are get-or-create and safe for
// concurrent use; the returned metric pointers should be cached by hot paths
// so steady-state updates never touch the registry lock.
//
// A Registry implements expvar.Var, rendering every metric into one JSON
// object, so a whole registry publishes under a single expvar name:
//
//	reg.PublishExpvar("optrr")   // GET /debug/vars → {"optrr": {...}, ...}
type Registry struct {
	mu   sync.Mutex
	vars map[string]expvar.Var
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{vars: make(map[string]expvar.Var)}
}

// Counter returns the counter with the given name, creating it if needed.
// It panics if the name is already taken by a different metric kind.
func (r *Registry) Counter(name string) *Counter {
	v := r.getOrCreate(name, func() expvar.Var { return new(Counter) })
	c, ok := v.(*Counter)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q is a %T, not a counter", name, v))
	}
	return c
}

// Gauge returns the gauge with the given name, creating it if needed.
// It panics if the name is already taken by a different metric kind.
func (r *Registry) Gauge(name string) *Gauge {
	v := r.getOrCreate(name, func() expvar.Var { return new(Gauge) })
	g, ok := v.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q is a %T, not a gauge", name, v))
	}
	return g
}

// Histogram returns the histogram with the given name, creating it with the
// given bounds if needed (bounds are ignored for an existing histogram).
// It panics if the name is already taken by a different metric kind.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	v := r.getOrCreate(name, func() expvar.Var { return NewHistogram(bounds) })
	h, ok := v.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q is a %T, not a histogram", name, v))
	}
	return h
}

func (r *Registry) getOrCreate(name string, mk func() expvar.Var) expvar.Var {
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := r.vars[name]; ok {
		return v
	}
	v := mk()
	r.vars[name] = v
	return v
}

// Do calls fn for every metric in name order.
func (r *Registry) Do(fn func(name string, v expvar.Var)) {
	r.mu.Lock()
	names := make([]string, 0, len(r.vars))
	for name := range r.vars {
		names = append(names, name)
	}
	sort.Strings(names)
	vars := make([]expvar.Var, len(names))
	for i, name := range names {
		vars[i] = r.vars[name]
	}
	r.mu.Unlock()
	for i, name := range names {
		fn(name, vars[i])
	}
}

// Snapshot returns the rendered value of every metric, keyed by name.
func (r *Registry) Snapshot() map[string]string {
	out := make(map[string]string)
	r.Do(func(name string, v expvar.Var) { out[name] = v.String() })
	return out
}

// String implements expvar.Var: one JSON object with a key per metric.
func (r *Registry) String() string {
	var b bytes.Buffer
	b.WriteByte('{')
	first := true
	r.Do(func(name string, v expvar.Var) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%q:%s", name, v.String())
	})
	b.WriteByte('}')
	return b.String()
}

// PublishExpvar publishes the registry as one expvar variable under the
// given name. Publishing the same name twice is a no-op (expvar itself
// panics on duplicates), so call sites don't need once-guards; note that a
// repeat call does NOT swap in the new registry.
func (r *Registry) PublishExpvar(name string) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, r)
}
