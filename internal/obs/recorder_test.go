package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNopRecorder(t *testing.T) {
	if Nop.Enabled() {
		t.Fatal("Nop.Enabled() = true")
	}
	Nop.Record("x", Fields{"a": 1}) // must not panic
	if OrNop(nil) != Nop {
		t.Fatal("OrNop(nil) != Nop")
	}
	m := NewMemory()
	if OrNop(m) != Recorder(m) {
		t.Fatal("OrNop(rec) != rec")
	}
}

func TestNopRecordAllocatesNothing(t *testing.T) {
	rec := OrNop(nil)
	if n := testing.AllocsPerRun(100, func() {
		if rec.Enabled() {
			rec.Record("event", Fields{"k": 1})
		}
	}); n != 0 {
		t.Fatalf("guarded nop path allocated %v times per run, want 0", n)
	}
}

func TestMemoryRecorder(t *testing.T) {
	m := NewMemory()
	m.Record("a", Fields{"x": 1})
	m.Record("b", nil)
	m.Record("a", Fields{"x": 2})
	if m.Len() != 3 {
		t.Fatalf("Len = %d, want 3", m.Len())
	}
	evs := m.Named("a")
	if len(evs) != 2 || evs[0].Fields["x"] != 1 || evs[1].Fields["x"] != 2 {
		t.Fatalf("Named(a) = %+v", evs)
	}
	if evs[0].Seq >= evs[1].Seq {
		t.Fatalf("sequence not increasing: %d, %d", evs[0].Seq, evs[1].Seq)
	}
}

func TestMultiRecorder(t *testing.T) {
	a, b := NewMemory(), NewMemory()
	m := NewMulti(a, nil, Nop, b)
	if !m.Enabled() {
		t.Fatal("multi with live targets reports disabled")
	}
	m.Record("e", Fields{"v": 7})
	if a.Len() != 1 || b.Len() != 1 {
		t.Fatalf("fan-out missed a target: %d, %d", a.Len(), b.Len())
	}
	if NewMulti(nil, Nop).Enabled() {
		t.Fatal("multi with no live targets reports enabled")
	}
}

func TestJSONLRecorderLines(t *testing.T) {
	var buf bytes.Buffer
	r := NewJSONL(&buf)
	r.now = func() time.Time { return time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC) }
	r.Record("optimizer.generation", Fields{"gen": 0, "hv": 1.5, "name": "x"})
	r.Record("optimizer.done", nil)
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), buf.String())
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 0 is not JSON: %v\n%s", err, lines[0])
	}
	if first["event"] != "optimizer.generation" || first["gen"] != float64(0) ||
		first["hv"] != 1.5 || first["seq"] != float64(0) {
		t.Fatalf("line 0 = %v", first)
	}
	if first["ts"] != "2026-08-06T12:00:00.000Z" {
		t.Fatalf("ts = %v", first["ts"])
	}
	var second map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatalf("line 1 is not JSON: %v", err)
	}
	if second["seq"] != float64(1) {
		t.Fatalf("seq = %v, want 1", second["seq"])
	}
}

func TestJSONLRecorderDeterministicKeyOrder(t *testing.T) {
	var buf bytes.Buffer
	r := NewJSONL(&buf)
	r.Record("e", Fields{"zeta": 1, "alpha": 2, "mid": 3})
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	line := buf.String()
	if !(strings.Index(line, `"alpha"`) < strings.Index(line, `"mid"`) &&
		strings.Index(line, `"mid"`) < strings.Index(line, `"zeta"`)) {
		t.Fatalf("field keys not sorted: %s", line)
	}
}

func TestJSONLRecorderSurvivesUnmarshalableValues(t *testing.T) {
	var buf bytes.Buffer
	r := NewJSONL(&buf)
	r.Record("e", Fields{"ch": make(chan int)})
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	var parsed map[string]any
	if err := json.Unmarshal(bytes.TrimSpace(buf.Bytes()), &parsed); err != nil {
		t.Fatalf("fallback line is not JSON: %v\n%s", err, buf.String())
	}
}

func TestJSONLRecorderConcurrentLinesStayWhole(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	safe := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	r := NewJSONL(safe)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				r.Record("e", Fields{"worker": w, "i": i})
			}
		}(w)
	}
	wg.Wait()
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	sc := bufio.NewScanner(&buf)
	n := 0
	for sc.Scan() {
		var parsed map[string]any
		if err := json.Unmarshal(sc.Bytes(), &parsed); err != nil {
			t.Fatalf("torn line %d: %v\n%s", n, err, sc.Text())
		}
		n++
	}
	if n != 200 {
		t.Fatalf("got %d lines, want 200", n)
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestServeExposesVarsMetricsAndPprof(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("reports").Add(5)
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		var b bytes.Buffer
		b.ReadFrom(resp.Body) //nolint:errcheck
		return b.String()
	}

	var metrics map[string]any
	if err := json.Unmarshal([]byte(get("/metrics")), &metrics); err != nil {
		t.Fatalf("/metrics is not JSON: %v", err)
	}
	if metrics["reports"] != float64(5) {
		t.Fatalf("/metrics = %v", metrics)
	}
	if body := get("/debug/vars"); !strings.Contains(body, "cmdline") {
		t.Fatalf("/debug/vars missing expvar defaults: %s", body)
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ missing profile index: %.200s", body)
	}
}

func TestOpenCLI(t *testing.T) {
	dir := t.TempDir()
	cli, err := OpenCLI(dir+"/run.jsonl", "127.0.0.1:0", "test-obs-cli")
	if err != nil {
		t.Fatal(err)
	}
	if !cli.Recorder.Enabled() {
		t.Fatal("trace recorder disabled")
	}
	if cli.MetricsURL == "" {
		t.Fatal("no metrics URL")
	}
	cli.Registry.Counter("x").Inc()
	cli.Recorder.Record("hello", Fields{"a": 1})
	resp, err := http.Get(cli.MetricsURL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}

	// Disabled bundle: free and usable.
	off, err := OpenCLI("", "", "unused")
	if err != nil {
		t.Fatal(err)
	}
	if off.Recorder.Enabled() || off.MetricsURL != "" {
		t.Fatal("disabled bundle is not disabled")
	}
	off.Registry.Counter("y").Inc() // registry always usable
	if err := off.Close(); err != nil {
		t.Fatal(err)
	}
}
