package matrix

import (
	"errors"
	"math"
	"testing"

	"optrr/internal/randx"
)

// randomFactors returns well-conditioned random square factors of the given
// sizes: uniform [0,1) entries with a diagonal boost, so every factor (and
// hence the Kronecker product) is comfortably invertible.
func randomFactors(r *randx.Source, dims []int) []*Dense {
	out := make([]*Dense, len(dims))
	for d, n := range dims {
		f := New(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				v := r.Float64()
				if i == j {
					v += float64(n)
				}
				f.Set(i, j, v)
			}
		}
		out[d] = f
	}
	return out
}

func mustKron(t *testing.T, factors ...*Dense) *Kron {
	t.Helper()
	k, err := NewKron(factors...)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestKronValidates(t *testing.T) {
	if _, err := NewKron(); !errors.Is(err, ErrShape) {
		t.Fatalf("no factors: err = %v, want ErrShape", err)
	}
	if _, err := NewKron(New(2, 2), nil); !errors.Is(err, ErrShape) {
		t.Fatalf("nil factor: err = %v, want ErrShape", err)
	}
	if _, err := NewKron(New(2, 3)); !errors.Is(err, ErrShape) {
		t.Fatalf("non-square factor: err = %v, want ErrShape", err)
	}
	k := mustKron(t, New(2, 2), New(3, 3), New(4, 4))
	if k.Size() != 24 {
		t.Fatalf("Size = %d, want 24", k.Size())
	}
	if k.NumFactors() != 3 {
		t.Fatalf("NumFactors = %d, want 3", k.NumFactors())
	}
	if got := k.Dims(); len(got) != 3 || got[0] != 2 || got[1] != 3 || got[2] != 4 {
		t.Fatalf("Dims = %v, want [2 3 4]", got)
	}
}

func TestKronDenseMatchesAt(t *testing.T) {
	r := randx.New(7)
	k := mustKron(t, randomFactors(r, []int{2, 3, 2})...)
	dense := k.Dense()
	if dense.Rows() != k.Size() || dense.Cols() != k.Size() {
		t.Fatalf("dense shape = %dx%d, want %d", dense.Rows(), dense.Cols(), k.Size())
	}
	for i := 0; i < k.Size(); i++ {
		for j := 0; j < k.Size(); j++ {
			if got, want := k.At(i, j), dense.At(i, j); math.Abs(got-want) > 1e-12*math.Max(1, math.Abs(want)) {
				t.Fatalf("At(%d,%d) = %v, dense %v", i, j, got, want)
			}
		}
	}
}

// TestKronDenseOrdering pins the flattening convention: factor 0 varies
// slowest, so ⊗ of [[a]]-style 2×2 blocks places factor 0's entry as the
// block multiplier.
func TestKronDenseOrdering(t *testing.T) {
	a := mustFromRows(t, [][]float64{{1, 2}, {3, 4}})
	b := mustFromRows(t, [][]float64{{0, 5}, {6, 7}})
	dense := mustKron(t, a, b).Dense()
	// Row 0 of A⊗B is [a00*b00 a00*b01 a01*b00 a01*b01] = [0 5 0 10].
	want := []float64{0, 5, 0, 10}
	for j, w := range want {
		if got := dense.At(0, j); got != w {
			t.Fatalf("dense[0][%d] = %v, want %v", j, got, w)
		}
	}
	if got := dense.At(3, 2); got != 4*6 {
		t.Fatalf("dense[3][2] = %v, want 24", got)
	}
}

func TestKronMulVecMatchesDense(t *testing.T) {
	r := randx.New(11)
	for _, dims := range [][]int{{2}, {3, 2}, {2, 3, 4}, {5, 5, 5}} {
		k := mustKron(t, randomFactors(r, dims)...)
		n := k.Size()
		src := make([]float64, n)
		for i := range src {
			src[i] = r.Float64()
		}
		dst := make([]float64, n)
		tmp := make([]float64, n)
		if err := k.MulVecInto(dst, src, tmp); err != nil {
			t.Fatal(err)
		}
		want, err := k.Dense().MulVec(src)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if rel := math.Abs(dst[i]-want[i]) / math.Max(1, math.Abs(want[i])); rel > 1e-12 {
				t.Fatalf("dims %v: dst[%d] = %v, dense %v", dims, i, dst[i], want[i])
			}
		}
	}
}

func TestKronMaxMulVecMatchesDense(t *testing.T) {
	r := randx.New(13)
	for _, dims := range [][]int{{3}, {2, 2}, {3, 4, 2}} {
		k := mustKron(t, randomFactors(r, dims)...)
		n := k.Size()
		src := make([]float64, n)
		for i := range src {
			src[i] = r.Float64()
		}
		dst := make([]float64, n)
		tmp := make([]float64, n)
		if err := k.MaxMulVecInto(dst, src, tmp); err != nil {
			t.Fatal(err)
		}
		dense := k.Dense()
		for i := 0; i < n; i++ {
			var want float64
			for j := 0; j < n; j++ {
				if v := dense.At(i, j) * src[j]; v > want {
					want = v
				}
			}
			if rel := math.Abs(dst[i]-want) / math.Max(1, want); rel > 1e-12 {
				t.Fatalf("dims %v: dst[%d] = %v, want %v", dims, i, dst[i], want)
			}
		}
	}
}

func TestKronMulVecChecksLengths(t *testing.T) {
	k := mustKron(t, New(2, 2), New(2, 2))
	buf := make([]float64, 4)
	if err := k.MulVecInto(buf, make([]float64, 3), buf[:4:4]); !errors.Is(err, ErrShape) {
		t.Fatalf("short src: err = %v, want ErrShape", err)
	}
	if err := k.MulVecInto(make([]float64, 3), buf, buf); !errors.Is(err, ErrShape) {
		t.Fatalf("short dst: err = %v, want ErrShape", err)
	}
	if err := k.MulVecInto(buf, buf, make([]float64, 2)); !errors.Is(err, ErrShape) {
		t.Fatalf("short tmp: err = %v, want ErrShape", err)
	}
}

func TestKronInverseMatchesDense(t *testing.T) {
	r := randx.New(17)
	dims := []int{3, 2, 4}
	k := mustKron(t, randomFactors(r, dims)...)
	inv := KronZeros(dims)
	if err := k.InverseInto(inv, NewLU()); err != nil {
		t.Fatal(err)
	}
	want, err := k.Dense().Inverse()
	if err != nil {
		t.Fatal(err)
	}
	got := inv.Dense()
	n := k.Size()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if d := math.Abs(got.At(i, j) - want.At(i, j)); d > 1e-10 {
				t.Fatalf("inv[%d][%d] = %v, dense %v (diff %v)", i, j, got.At(i, j), want.At(i, j), d)
			}
		}
	}
	// A nil LU workspace is allowed.
	if err := k.InverseInto(inv, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKronInverseSingularFactor(t *testing.T) {
	good := mustFromRows(t, [][]float64{{2, 0}, {0, 2}})
	bad := mustFromRows(t, [][]float64{{1, 1}, {1, 1}})
	k := mustKron(t, good, bad)
	if err := k.InverseInto(KronZeros([]int{2, 2}), NewLU()); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
	if err := k.InverseInto(KronZeros([]int{2, 3}), NewLU()); !errors.Is(err, ErrShape) {
		t.Fatalf("mismatched dst: err = %v, want ErrShape", err)
	}
}

func TestKronSquareInto(t *testing.T) {
	r := randx.New(19)
	dims := []int{2, 3}
	k := mustKron(t, randomFactors(r, dims)...)
	sq := KronZeros(dims)
	if err := k.SquareInto(sq); err != nil {
		t.Fatal(err)
	}
	n := k.Size()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := k.At(i, j)
			if got := sq.At(i, j); math.Abs(got-v*v) > 1e-12*math.Max(1, v*v) {
				t.Fatalf("sq[%d][%d] = %v, want %v", i, j, got, v*v)
			}
		}
	}
}

func TestKronColAndDiag(t *testing.T) {
	r := randx.New(23)
	dims := []int{3, 2, 2}
	k := mustKron(t, randomFactors(r, dims)...)
	n := k.Size()
	dense := k.Dense()
	col := make([]float64, n)
	for j := 0; j < n; j++ {
		if err := k.ColInto(col, j); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if math.Abs(col[i]-dense.At(i, j)) > 1e-14 {
				t.Fatalf("col %d[%d] = %v, want %v", j, i, col[i], dense.At(i, j))
			}
		}
	}
	if err := k.ColInto(col, n); !errors.Is(err, ErrShape) {
		t.Fatalf("out-of-range col: err = %v, want ErrShape", err)
	}
	diag := make([]float64, n)
	if err := k.DiagInto(diag); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if math.Abs(diag[i]-dense.At(i, i)) > 1e-14 {
			t.Fatalf("diag[%d] = %v, want %v", i, diag[i], dense.At(i, i))
		}
	}
}

func TestKronReset(t *testing.T) {
	r := randx.New(29)
	k := mustKron(t, randomFactors(r, []int{2, 2})...)
	if err := k.Reset(randomFactors(r, []int{3, 5})); err != nil {
		t.Fatal(err)
	}
	if k.Size() != 15 {
		t.Fatalf("Size after Reset = %d, want 15", k.Size())
	}
	src := make([]float64, 15)
	for i := range src {
		src[i] = r.Float64()
	}
	dst := make([]float64, 15)
	tmp := make([]float64, 15)
	if err := k.MulVecInto(dst, src, tmp); err != nil {
		t.Fatal(err)
	}
	want, err := k.Dense().MulVec(src)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(dst[i]-want[i]) > 1e-10*math.Max(1, math.Abs(want[i])) {
			t.Fatalf("after Reset dst[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
}
