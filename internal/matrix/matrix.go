// Package matrix implements the dense linear algebra needed by the
// randomized-response machinery: matrix-vector products for P* = M·P,
// LU-based inversion for the inversion estimator P̂ = M⁻¹·P̂* (Theorem 1 of
// the paper), and the quadratic forms behind the closed-form utility MSE
// (Theorem 6).
//
// The package is deliberately small: row-major dense float64 storage,
// Doolittle LU with partial pivoting, and the handful of operations the rest
// of the repository needs. It is hand-rolled because the reproduction is
// restricted to the standard library.
package matrix

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Dense is a row-major dense matrix of float64 values.
type Dense struct {
	rows, cols int
	data       []float64
}

// Common matrix errors.
var (
	// ErrSingular reports that a matrix is singular (or numerically so) and
	// cannot be inverted or used to solve a linear system.
	ErrSingular = errors.New("matrix: singular matrix")
	// ErrShape reports incompatible dimensions.
	ErrShape = errors.New("matrix: dimension mismatch")
)

// New returns a rows×cols zero matrix. It panics if either dimension is not
// positive, since a zero-sized matrix is always a caller bug here.
func New(rows, cols int) *Dense {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("matrix: New(%d, %d): dimensions must be positive", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equally long rows. The data is
// copied.
func FromRows(rows [][]float64) (*Dense, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, fmt.Errorf("%w: empty row set", ErrShape)
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			return nil, fmt.Errorf("%w: row %d has %d entries, want %d", ErrShape, i, len(r), m.cols)
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], r)
	}
	return m, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: index (%d, %d) out of range for %dx%d matrix", i, j, m.rows, m.cols))
	}
}

// Row returns a copy of row i.
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("matrix: row %d out of range", i))
	}
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Dense) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: column %d out of range", j))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// SetCol overwrites column j with v.
func (m *Dense) SetCol(j int, v []float64) {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: column %d out of range", j))
	}
	if len(v) != m.rows {
		panic(fmt.Sprintf("matrix: SetCol with %d values for %d rows", len(v), m.rows))
	}
	for i := 0; i < m.rows; i++ {
		m.data[i*m.cols+j] = v[i]
	}
}

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	c := New(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Equal reports whether m and other have the same shape and elements within
// the absolute tolerance tol.
func (m *Dense) Equal(other *Dense, tol float64) bool {
	if other == nil || m.rows != other.rows || m.cols != other.cols {
		return false
	}
	for i, v := range m.data {
		if math.Abs(v-other.data[i]) > tol {
			return false
		}
	}
	return true
}

// T returns the transpose of m as a new matrix.
func (m *Dense) T() *Dense {
	t := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.data[i*m.cols+j]
		}
	}
	return t
}

// Mul returns the product m·other.
func (m *Dense) Mul(other *Dense) (*Dense, error) {
	if m.cols != other.rows {
		return nil, fmt.Errorf("%w: %dx%d times %dx%d", ErrShape, m.rows, m.cols, other.rows, other.cols)
	}
	out := New(m.rows, other.cols)
	for i := 0; i < m.rows; i++ {
		mi := m.data[i*m.cols : (i+1)*m.cols]
		oi := out.data[i*out.cols : (i+1)*out.cols]
		for k, mik := range mi {
			if mik == 0 {
				continue
			}
			ok := other.data[k*other.cols : (k+1)*other.cols]
			for j, okj := range ok {
				oi[j] += mik * okj
			}
		}
	}
	return out, nil
}

// MulVec returns the matrix-vector product m·v.
func (m *Dense) MulVec(v []float64) ([]float64, error) {
	out := make([]float64, m.rows)
	if err := m.MulVecInto(out, v); err != nil {
		return nil, err
	}
	return out, nil
}

// MulVecInto computes the matrix-vector product m·v into the caller-provided
// dst, which must not alias v. It is the allocation-free form of MulVec.
func (m *Dense) MulVecInto(dst, v []float64) error {
	if m.cols != len(v) {
		return fmt.Errorf("%w: %dx%d times vector of length %d", ErrShape, m.rows, m.cols, len(v))
	}
	if len(dst) != m.rows {
		return fmt.Errorf("%w: product of length %d for %d rows", ErrShape, len(dst), m.rows)
	}
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, r := range row {
			s += r * v[j]
		}
		dst[i] = s
	}
	return nil
}

// RowView returns row i aliasing the matrix storage — no copy. Callers must
// treat the slice as read-only; it is valid until the matrix is resized.
func (m *Dense) RowView(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("matrix: row %d out of range", i))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Scale multiplies every element by f in place and returns m.
func (m *Dense) Scale(f float64) *Dense {
	for i := range m.data {
		m.data[i] *= f
	}
	return m
}

// Add returns m + other.
func (m *Dense) Add(other *Dense) (*Dense, error) {
	if m.rows != other.rows || m.cols != other.cols {
		return nil, fmt.Errorf("%w: %dx%d plus %dx%d", ErrShape, m.rows, m.cols, other.rows, other.cols)
	}
	out := m.Clone()
	for i, v := range other.data {
		out.data[i] += v
	}
	return out, nil
}

// Sub returns m - other.
func (m *Dense) Sub(other *Dense) (*Dense, error) {
	if m.rows != other.rows || m.cols != other.cols {
		return nil, fmt.Errorf("%w: %dx%d minus %dx%d", ErrShape, m.rows, m.cols, other.rows, other.cols)
	}
	out := m.Clone()
	for i, v := range other.data {
		out.data[i] -= v
	}
	return out, nil
}

// MaxAbs returns the largest absolute element value.
func (m *Dense) MaxAbs() float64 {
	var max float64
	for _, v := range m.data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// String renders the matrix for debugging.
func (m *Dense) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteByte('[')
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.6g", m.data[i*m.cols+j])
		}
		b.WriteByte(']')
	}
	return b.String()
}
