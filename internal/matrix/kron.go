package matrix

import (
	"fmt"
)

// Kron is a square matrix stored in Kronecker-factored form: the implicit
// matrix is ⊗_d F_d over the product space N = ∏_d n_d, with factor 0
// varying slowest (row-major product indexing: a flat index i decomposes as
// i = ((i_0·n_1 + i_1)·n_2 + …), matching the repository-wide multi-attribute
// convention). The matrix is never materialized; every operation works on the
// small factors, so storage is Σn_d² instead of N² and a matrix-vector apply
// costs O(N·Σn_d) instead of O(N²).
//
// A Kron either aliases caller-owned factors (NewKron, Reset) or owns its
// storage (KronZeros — the destination form for InverseInto and SquareInto).
// It holds no per-operation state: the same Kron may be read from multiple
// goroutines as long as its factors are not mutated.
type Kron struct {
	factors []*Dense
	dims    []int
	size    int
}

// NewKron returns the Kronecker-factored matrix ⊗_d factors[d]. Every factor
// must be square and non-nil; the factors are aliased, not copied.
func NewKron(factors ...*Dense) (*Kron, error) {
	k := &Kron{}
	if err := k.Reset(factors); err != nil {
		return nil, err
	}
	return k, nil
}

// Reset re-points the Kron at a new factor list, reusing internal slices when
// the factor count is unchanged. The factors are aliased, not copied.
func (k *Kron) Reset(factors []*Dense) error {
	if len(factors) == 0 {
		return fmt.Errorf("%w: Kronecker product of no factors", ErrShape)
	}
	if cap(k.factors) < len(factors) {
		k.factors = make([]*Dense, len(factors))
		k.dims = make([]int, len(factors))
	}
	k.factors = k.factors[:len(factors)]
	k.dims = k.dims[:len(factors)]
	size := 1
	for d, f := range factors {
		if f == nil {
			return fmt.Errorf("%w: nil factor %d", ErrShape, d)
		}
		if f.rows != f.cols {
			return fmt.Errorf("%w: factor %d is %dx%d, want square", ErrShape, d, f.rows, f.cols)
		}
		k.factors[d] = f
		k.dims[d] = f.rows
		size *= f.rows
	}
	k.size = size
	return nil
}

// KronZeros returns a Kron owning freshly allocated zero factors of the given
// sizes — the destination form for InverseInto and SquareInto. It panics on
// an empty or non-positive dimension list, as New does.
func KronZeros(dims []int) *Kron {
	if len(dims) == 0 {
		panic("matrix: KronZeros of no factors")
	}
	factors := make([]*Dense, len(dims))
	for d, n := range dims {
		factors[d] = New(n, n)
	}
	k, err := NewKron(factors...)
	if err != nil {
		panic(err) // unreachable: factors are square by construction
	}
	return k
}

// Size returns the side length N = ∏_d n_d of the implicit matrix.
func (k *Kron) Size() int { return k.size }

// NumFactors returns the number of Kronecker factors d.
func (k *Kron) NumFactors() int { return len(k.factors) }

// Dims returns a copy of the per-factor sizes.
func (k *Kron) Dims() []int {
	out := make([]int, len(k.dims))
	copy(out, k.dims)
	return out
}

// Factor returns factor d, aliasing the Kron's storage.
func (k *Kron) Factor(d int) *Dense { return k.factors[d] }

// At returns the implicit matrix entry (⊗F)[i][j] = ∏_d F_d[i_d][j_d] by
// digit decomposition. It is O(d) per call and exists for tests and
// spot-checks; bulk access should go through the vector operations.
func (k *Kron) At(i, j int) float64 {
	if i < 0 || i >= k.size || j < 0 || j >= k.size {
		panic(fmt.Sprintf("matrix: index (%d, %d) out of range for %dx%d Kronecker product", i, j, k.size, k.size))
	}
	v := 1.0
	for d := len(k.factors) - 1; d >= 0; d-- {
		n := k.dims[d]
		v *= k.factors[d].data[(i%n)*n+(j%n)]
		i /= n
		j /= n
	}
	return v
}

func (k *Kron) checkVecs(dst, src, tmp []float64) error {
	if len(src) != k.size {
		return fmt.Errorf("%w: vector of length %d for Kronecker product of size %d", ErrShape, len(src), k.size)
	}
	if len(dst) != k.size {
		return fmt.Errorf("%w: product of length %d for Kronecker product of size %d", ErrShape, len(dst), k.size)
	}
	if len(tmp) != k.size {
		return fmt.Errorf("%w: scratch of length %d for Kronecker product of size %d", ErrShape, len(tmp), k.size)
	}
	return nil
}

// MulVecInto computes dst = (⊗_d F_d)·src by successive per-mode
// contractions (the "vec trick"): mode d contracts factor F_d against the
// d-th axis of src viewed as a d-dimensional tensor, costing O(N·n_d), for a
// total of O(N·Σn_d) instead of the O(N²) dense product. tmp is caller
// scratch of length N; dst, src and tmp must not alias each other. src is
// left unchanged.
func (k *Kron) MulVecInto(dst, src, tmp []float64) error {
	return k.contract(dst, src, tmp, false)
}

// MaxMulVecInto is MulVecInto over the (max, ×) semiring: it computes
// dst[i] = max_j (⊗F)[i][j]·src[j] in O(N·Σn_d). It requires every factor
// entry and every src entry to be non-negative — max then commutes through
// the per-factor products, which is what lets the row-wise maxima of a
// Kronecker product factor mode by mode (this is how the MAP adversary's
// accuracy is computed without materializing the joint channel). Aliasing
// rules match MulVecInto.
func (k *Kron) MaxMulVecInto(dst, src, tmp []float64) error {
	return k.contract(dst, src, tmp, true)
}

// contract runs the mode-by-mode contraction. The ping-pong between dst and
// tmp is phased so the final mode always lands in dst.
func (k *Kron) contract(dst, src, tmp []float64, maxMode bool) error {
	if err := k.checkVecs(dst, src, tmp); err != nil {
		return err
	}
	nd := len(k.factors)
	cur := src
	// Alternate targets so that mode nd-1 writes into dst.
	a, b := dst, tmp
	if nd%2 == 0 {
		a, b = tmp, dst
	}
	inner := k.size
	for d := 0; d < nd; d++ {
		n := k.dims[d]
		inner /= n
		out := a
		if d%2 == 1 {
			out = b
		}
		contractMode(out, cur, k.factors[d], k.size, n, inner, maxMode)
		cur = out
	}
	return nil
}

// contractMode applies an n×n factor along one axis of a flat tensor of
// total length size with the given inner stride (product of the sizes of the
// faster-varying axes). With maxMode, sums become maxima; the accumulator
// starts at 0, which is only correct because all terms are non-negative.
func contractMode(dst, src []float64, f *Dense, size, n, inner int, maxMode bool) {
	block := n * inner
	for base := 0; base < size; base += block {
		for j := 0; j < n; j++ {
			row := f.data[j*n : (j+1)*n]
			out := dst[base+j*inner : base+(j+1)*inner]
			for r := range out {
				out[r] = 0
			}
			for i, a := range row {
				if a == 0 {
					continue
				}
				in := src[base+i*inner : base+(i+1)*inner]
				if maxMode {
					for r, v := range in {
						if p := a * v; p > out[r] {
							out[r] = p
						}
					}
				} else {
					for r, v := range in {
						out[r] += a * v
					}
				}
			}
		}
	}
}

// InverseInto writes the factored inverse (⊗F_d)⁻¹ = ⊗F_d⁻¹ into dst,
// inverting each small factor with the shared LU workspace (which is resized
// per factor, so one workspace serves mixed category counts). dst must have
// the same per-factor sizes; ErrSingular from any factor propagates — a
// Kronecker product is singular exactly when some factor is.
func (k *Kron) InverseInto(dst *Kron, lu *LU) error {
	if err := k.checkDst(dst); err != nil {
		return err
	}
	if lu == nil {
		lu = NewLU()
	}
	for d, f := range k.factors {
		if err := lu.Factorize(f); err != nil {
			return fmt.Errorf("factor %d: %w", d, err)
		}
		if err := lu.InverseInto(dst.factors[d]); err != nil {
			return fmt.Errorf("factor %d: %w", d, err)
		}
	}
	return nil
}

// SquareInto writes the element-wise square (⊗F_d)∘² = ⊗(F_d∘²) into dst —
// squaring commutes with the Kronecker product, which is what lets the
// quadratic form Σ_i β²_{k,i}·v_i of the closed-form MSE (Theorem 6) factor.
// dst must have the same per-factor sizes.
func (k *Kron) SquareInto(dst *Kron) error {
	if err := k.checkDst(dst); err != nil {
		return err
	}
	for d, f := range k.factors {
		df := dst.factors[d].data
		for i, v := range f.data {
			df[i] = v * v
		}
	}
	return nil
}

func (k *Kron) checkDst(dst *Kron) error {
	if dst == nil || len(dst.factors) != len(k.factors) {
		return fmt.Errorf("%w: destination factor count mismatch", ErrShape)
	}
	for d, n := range k.dims {
		if dst.dims[d] != n {
			return fmt.Errorf("%w: destination factor %d is %d, want %d", ErrShape, d, dst.dims[d], n)
		}
	}
	return nil
}

// ColInto writes column j of the implicit matrix into dst (length N):
// col_j(⊗F) = ⊗_d col_{j_d}(F_d), built by progressive outer-product
// expansion in O(N) without materializing anything else.
func (k *Kron) ColInto(dst []float64, j int) error {
	if j < 0 || j >= k.size {
		return fmt.Errorf("%w: column %d out of range for size %d", ErrShape, j, k.size)
	}
	cols := make([][]float64, len(k.factors))
	for d := len(k.factors) - 1; d >= 0; d-- {
		n := k.dims[d]
		f := k.factors[d]
		col := make([]float64, n)
		for i := 0; i < n; i++ {
			col[i] = f.data[i*n+(j%n)]
		}
		cols[d] = col
		j /= n
	}
	return k.expandInto(dst, cols)
}

// DiagInto writes the diagonal of the implicit matrix into dst (length N):
// diag(⊗F) = ⊗_d diag(F_d).
func (k *Kron) DiagInto(dst []float64) error {
	diags := make([][]float64, len(k.factors))
	for d, f := range k.factors {
		n := k.dims[d]
		diag := make([]float64, n)
		for i := 0; i < n; i++ {
			diag[i] = f.data[i*n+i]
		}
		diags[d] = diag
	}
	return k.expandInto(dst, diags)
}

// expandInto fills dst with the flattened outer product ⊗_d vecs[d]
// (factor 0 slowest). The expansion runs in place back to front, which is
// safe because each pass writes only at or beyond the slot it reads.
func (k *Kron) expandInto(dst []float64, vecs [][]float64) error {
	if len(dst) != k.size {
		return fmt.Errorf("%w: destination of length %d for size %d", ErrShape, len(dst), k.size)
	}
	dst[0] = 1
	length := 1
	for _, v := range vecs {
		n := len(v)
		for a := length - 1; a >= 0; a-- {
			va := dst[a]
			for i := n - 1; i >= 0; i-- {
				dst[a*n+i] = va * v[i]
			}
		}
		length *= n
	}
	return nil
}

// Dense materializes the full N×N matrix. It exists as the oracle for tests
// and for the dense-vs-factored benchmarks; production paths never call it.
func (k *Kron) Dense() *Dense {
	cur := []float64{1}
	curN := 1
	for _, f := range k.factors {
		n := f.rows
		nxtN := curN * n
		nxt := make([]float64, nxtN*nxtN)
		for a := 0; a < curN; a++ {
			for b := 0; b < curN; b++ {
				v := cur[a*curN+b]
				if v == 0 {
					continue
				}
				for i := 0; i < n; i++ {
					for p := 0; p < n; p++ {
						nxt[(a*n+i)*nxtN+(b*n+p)] = v * f.data[i*n+p]
					}
				}
			}
		}
		cur = nxt
		curN = nxtN
	}
	return &Dense{rows: curN, cols: curN, data: cur}
}
