package matrix

import (
	"fmt"
	"math"
)

// LU holds the LU decomposition with partial pivoting of a square matrix:
// P·A = L·U, where L is unit lower triangular and U is upper triangular,
// both packed into lu, and piv records the row permutation.
//
// An LU value doubles as a reusable factorization workspace: NewLU returns an
// empty one and (*LU).Factorize recomputes the decomposition in place,
// reusing the internal buffers whenever the matrix size is unchanged. This is
// the allocation-free path the optimizer's fused objective evaluation runs
// on; the package-level Factorize remains the convenient one-shot form.
type LU struct {
	lu      *Dense
	piv     []int
	pivSign float64
	// valid reports that the last Factorize succeeded; solve and inverse
	// calls on an invalid factorization return ErrSingular.
	valid bool
	// col and rhs are scratch columns for InverseInto.
	col []float64
	rhs []float64
}

// NewLU returns an empty factorization workspace. Call (*LU).Factorize to
// populate it; until then every solve or inverse call fails.
func NewLU() *LU { return &LU{} }

// Factorize computes the LU decomposition of a square matrix using Doolittle
// factorization with partial pivoting. It returns ErrSingular if a pivot is
// exactly zero; near-singular matrices factorize but yield large solution
// errors, which callers can detect via ConditionEstimate.
func Factorize(a *Dense) (*LU, error) {
	f := NewLU()
	if err := f.Factorize(a); err != nil {
		return nil, err
	}
	return f, nil
}

// Factorize recomputes the decomposition of a in place, reusing the
// receiver's buffers when a's size matches the previous factorization. The
// arithmetic is identical to the package-level Factorize, so a reused
// workspace produces bit-for-bit the same factors.
func (f *LU) Factorize(a *Dense) error {
	f.valid = false
	if a.rows != a.cols {
		return fmt.Errorf("%w: LU of a %dx%d matrix", ErrShape, a.rows, a.cols)
	}
	n := a.rows
	if f.lu == nil || f.lu.rows != n {
		f.lu = New(n, n)
		f.piv = make([]int, n)
		f.col = make([]float64, n)
		f.rhs = make([]float64, n)
	}
	lu := f.lu
	copy(lu.data, a.data)
	piv := f.piv
	for i := range piv {
		piv[i] = i
	}
	sign := 1.0
	for k := 0; k < n; k++ {
		// Partial pivoting: pick the largest magnitude in column k at or
		// below the diagonal.
		p := k
		max := math.Abs(lu.data[k*n+k])
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu.data[i*n+k]); a > max {
				max = a
				p = i
			}
		}
		if max == 0 {
			return fmt.Errorf("%w: zero pivot at column %d", ErrSingular, k)
		}
		if p != k {
			rk := lu.data[k*n : (k+1)*n]
			rp := lu.data[p*n : (p+1)*n]
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		pivot := lu.data[k*n+k]
		for i := k + 1; i < n; i++ {
			mult := lu.data[i*n+k] / pivot
			lu.data[i*n+k] = mult
			if mult == 0 {
				continue
			}
			ri := lu.data[i*n : (i+1)*n]
			rk := lu.data[k*n : (k+1)*n]
			for j := k + 1; j < n; j++ {
				ri[j] -= mult * rk[j]
			}
		}
	}
	f.pivSign = sign
	f.valid = true
	return nil
}

// SolveVec solves A·x = b for x using the factorization.
func (f *LU) SolveVec(b []float64) ([]float64, error) {
	x := make([]float64, f.lu.rows)
	if err := f.SolveVecInto(x, b); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveVecInto solves A·x = b into the caller-provided x, which must not
// alias b. It is the allocation-free form of SolveVec.
func (f *LU) SolveVecInto(x, b []float64) error {
	if !f.valid {
		return fmt.Errorf("%w: factorization is not valid", ErrSingular)
	}
	n := f.lu.rows
	if len(b) != n {
		return fmt.Errorf("%w: rhs of length %d for %dx%d system", ErrShape, len(b), n, n)
	}
	if len(x) != n {
		return fmt.Errorf("%w: solution of length %d for %dx%d system", ErrShape, len(x), n, n)
	}
	// Apply permutation.
	for i, p := range f.piv {
		x[i] = b[p]
	}
	// Forward substitution (L is unit lower triangular).
	for i := 1; i < n; i++ {
		ri := f.lu.data[i*n : i*n+i]
		var s float64
		for j, l := range ri {
			s += l * x[j]
		}
		x[i] -= s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		ri := f.lu.data[i*n : (i+1)*n]
		var s float64
		for j := i + 1; j < n; j++ {
			s += ri[j] * x[j]
		}
		x[i] = (x[i] - s) / ri[i]
	}
	return nil
}

// Det returns the determinant of the factorized matrix.
func (f *LU) Det() float64 {
	n := f.lu.rows
	det := f.pivSign
	for i := 0; i < n; i++ {
		det *= f.lu.data[i*n+i]
	}
	return det
}

// Inverse returns the inverse of the factorized matrix.
func (f *LU) Inverse() (*Dense, error) {
	inv := New(f.lu.rows, f.lu.rows)
	if err := f.InverseInto(inv); err != nil {
		return nil, err
	}
	return inv, nil
}

// InverseInto writes the inverse of the factorized matrix into dst, reusing
// the workspace's scratch columns. It is the allocation-free form of Inverse.
func (f *LU) InverseInto(dst *Dense) error {
	if !f.valid {
		return fmt.Errorf("%w: factorization is not valid", ErrSingular)
	}
	n := f.lu.rows
	if dst.rows != n || dst.cols != n {
		return fmt.Errorf("%w: inverse of a %dx%d matrix into %dx%d", ErrShape, n, n, dst.rows, dst.cols)
	}
	e := f.rhs
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		if err := f.SolveVecInto(f.col, e); err != nil {
			return err
		}
		dst.SetCol(j, f.col)
	}
	return nil
}

// Inverse returns m⁻¹, or ErrSingular if m is singular. m must be square.
func (m *Dense) Inverse() (*Dense, error) {
	f, err := Factorize(m)
	if err != nil {
		return nil, err
	}
	return f.Inverse()
}

// Solve solves m·x = b for a single right-hand side.
func (m *Dense) Solve(b []float64) ([]float64, error) {
	f, err := Factorize(m)
	if err != nil {
		return nil, err
	}
	return f.SolveVec(b)
}

// Det returns the determinant of m, or 0 if m is singular.
func (m *Dense) Det() float64 {
	f, err := Factorize(m)
	if err != nil {
		return 0
	}
	return f.Det()
}

// Norm1 returns the maximum absolute column sum of m.
func (m *Dense) Norm1() float64 {
	var max float64
	for j := 0; j < m.cols; j++ {
		var s float64
		for i := 0; i < m.rows; i++ {
			s += math.Abs(m.data[i*m.cols+j])
		}
		if s > max {
			max = s
		}
	}
	return max
}

// ConditionEstimate returns an estimate of the 1-norm condition number
// κ₁(m) = ‖m‖₁·‖m⁻¹‖₁, computed by explicit inversion. It returns +Inf for
// singular matrices. For the small (n ≈ 10) matrices in this repository the
// explicit computation is cheap and exact.
func (m *Dense) ConditionEstimate() float64 {
	inv, err := m.Inverse()
	if err != nil {
		return math.Inf(1)
	}
	return m.Norm1() * inv.Norm1()
}
