package matrix

import (
	"fmt"
	"math"
)

// LU holds the LU decomposition with partial pivoting of a square matrix:
// P·A = L·U, where L is unit lower triangular and U is upper triangular,
// both packed into lu, and piv records the row permutation.
type LU struct {
	lu      *Dense
	piv     []int
	pivSign float64
}

// Factorize computes the LU decomposition of a square matrix using Doolittle
// factorization with partial pivoting. It returns ErrSingular if a pivot is
// exactly zero; near-singular matrices factorize but yield large solution
// errors, which callers can detect via ConditionEstimate.
func Factorize(a *Dense) (*LU, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("%w: LU of a %dx%d matrix", ErrShape, a.rows, a.cols)
	}
	n := a.rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1.0
	for k := 0; k < n; k++ {
		// Partial pivoting: pick the largest magnitude in column k at or
		// below the diagonal.
		p := k
		max := math.Abs(lu.data[k*n+k])
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu.data[i*n+k]); a > max {
				max = a
				p = i
			}
		}
		if max == 0 {
			return nil, fmt.Errorf("%w: zero pivot at column %d", ErrSingular, k)
		}
		if p != k {
			rk := lu.data[k*n : (k+1)*n]
			rp := lu.data[p*n : (p+1)*n]
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		pivot := lu.data[k*n+k]
		for i := k + 1; i < n; i++ {
			f := lu.data[i*n+k] / pivot
			lu.data[i*n+k] = f
			if f == 0 {
				continue
			}
			ri := lu.data[i*n : (i+1)*n]
			rk := lu.data[k*n : (k+1)*n]
			for j := k + 1; j < n; j++ {
				ri[j] -= f * rk[j]
			}
		}
	}
	return &LU{lu: lu, piv: piv, pivSign: sign}, nil
}

// SolveVec solves A·x = b for x using the factorization.
func (f *LU) SolveVec(b []float64) ([]float64, error) {
	n := f.lu.rows
	if len(b) != n {
		return nil, fmt.Errorf("%w: rhs of length %d for %dx%d system", ErrShape, len(b), n, n)
	}
	x := make([]float64, n)
	// Apply permutation.
	for i, p := range f.piv {
		x[i] = b[p]
	}
	// Forward substitution (L is unit lower triangular).
	for i := 1; i < n; i++ {
		ri := f.lu.data[i*n : i*n+i]
		var s float64
		for j, l := range ri {
			s += l * x[j]
		}
		x[i] -= s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		ri := f.lu.data[i*n : (i+1)*n]
		var s float64
		for j := i + 1; j < n; j++ {
			s += ri[j] * x[j]
		}
		x[i] = (x[i] - s) / ri[i]
	}
	return x, nil
}

// Det returns the determinant of the factorized matrix.
func (f *LU) Det() float64 {
	n := f.lu.rows
	det := f.pivSign
	for i := 0; i < n; i++ {
		det *= f.lu.data[i*n+i]
	}
	return det
}

// Inverse returns the inverse of the factorized matrix.
func (f *LU) Inverse() (*Dense, error) {
	n := f.lu.rows
	inv := New(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col, err := f.SolveVec(e)
		if err != nil {
			return nil, err
		}
		inv.SetCol(j, col)
	}
	return inv, nil
}

// Inverse returns m⁻¹, or ErrSingular if m is singular. m must be square.
func (m *Dense) Inverse() (*Dense, error) {
	f, err := Factorize(m)
	if err != nil {
		return nil, err
	}
	return f.Inverse()
}

// Solve solves m·x = b for a single right-hand side.
func (m *Dense) Solve(b []float64) ([]float64, error) {
	f, err := Factorize(m)
	if err != nil {
		return nil, err
	}
	return f.SolveVec(b)
}

// Det returns the determinant of m, or 0 if m is singular.
func (m *Dense) Det() float64 {
	f, err := Factorize(m)
	if err != nil {
		return 0
	}
	return f.Det()
}

// Norm1 returns the maximum absolute column sum of m.
func (m *Dense) Norm1() float64 {
	var max float64
	for j := 0; j < m.cols; j++ {
		var s float64
		for i := 0; i < m.rows; i++ {
			s += math.Abs(m.data[i*m.cols+j])
		}
		if s > max {
			max = s
		}
	}
	return max
}

// ConditionEstimate returns an estimate of the 1-norm condition number
// κ₁(m) = ‖m‖₁·‖m⁻¹‖₁, computed by explicit inversion. It returns +Inf for
// singular matrices. For the small (n ≈ 10) matrices in this repository the
// explicit computation is cheap and exact.
func (m *Dense) ConditionEstimate() float64 {
	inv, err := m.Inverse()
	if err != nil {
		return math.Inf(1)
	}
	return m.Norm1() * inv.Norm1()
}
