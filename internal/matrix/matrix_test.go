package matrix

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"optrr/internal/randx"
)

func mustFromRows(t *testing.T, rows [][]float64) *Dense {
	t.Helper()
	m, err := FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("shape = %dx%d, want 3x4", m.Rows(), m.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("At(%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	for _, c := range []struct{ r, c int }{{0, 1}, {1, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", c.r, c.c)
				}
			}()
			New(c.r, c.c)
		}()
	}
}

func TestFromRowsRejectsRagged(t *testing.T) {
	if _, err := FromRows([][]float64{{1, 2}, {3}}); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
	if _, err := FromRows(nil); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestSetAtRoundTrip(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 7.5)
	if got := m.At(1, 2); got != 7.5 {
		t.Fatalf("At = %v, want 7.5", got)
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("At out of range did not panic")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestRowColCopies(t *testing.T) {
	m := mustFromRows(t, [][]float64{{1, 2}, {3, 4}})
	r := m.Row(0)
	r[0] = 99
	if m.At(0, 0) != 1 {
		t.Fatal("Row returned a view, want a copy")
	}
	c := m.Col(1)
	c[0] = 99
	if m.At(0, 1) != 2 {
		t.Fatal("Col returned a view, want a copy")
	}
	if got := m.Col(0); got[0] != 1 || got[1] != 3 {
		t.Fatalf("Col(0) = %v, want [1 3]", got)
	}
}

func TestSetCol(t *testing.T) {
	m := New(2, 2)
	m.SetCol(1, []float64{5, 6})
	if m.At(0, 1) != 5 || m.At(1, 1) != 6 {
		t.Fatalf("SetCol failed: %v", m)
	}
}

func TestCloneIndependent(t *testing.T) {
	m := mustFromRows(t, [][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, -1)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestTranspose(t *testing.T) {
	m := mustFromRows(t, [][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("T shape = %dx%d, want 3x2", tr.Rows(), tr.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("T mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMulKnown(t *testing.T) {
	a := mustFromRows(t, [][]float64{{1, 2}, {3, 4}})
	b := mustFromRows(t, [][]float64{{5, 6}, {7, 8}})
	got, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := mustFromRows(t, [][]float64{{19, 22}, {43, 50}})
	if !got.Equal(want, 0) {
		t.Fatalf("Mul = %v, want %v", got, want)
	}
}

func TestMulShapeError(t *testing.T) {
	a := New(2, 3)
	b := New(2, 3)
	if _, err := a.Mul(b); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestMulVecKnown(t *testing.T) {
	a := mustFromRows(t, [][]float64{{1, 2}, {3, 4}})
	got, err := a.MulVec([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 3 || got[1] != 7 {
		t.Fatalf("MulVec = %v, want [3 7]", got)
	}
	if _, err := a.MulVec([]float64{1}); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestIdentityMulIsNoOp(t *testing.T) {
	r := randx.New(1)
	a := randomMatrix(r, 5, 5)
	i5 := Identity(5)
	left, _ := i5.Mul(a)
	right, _ := a.Mul(i5)
	if !left.Equal(a, 1e-12) || !right.Equal(a, 1e-12) {
		t.Fatal("identity multiplication changed the matrix")
	}
}

func TestAddSubScale(t *testing.T) {
	a := mustFromRows(t, [][]float64{{1, 2}, {3, 4}})
	b := mustFromRows(t, [][]float64{{4, 3}, {2, 1}})
	sum, err := a.Add(b)
	if err != nil {
		t.Fatal(err)
	}
	if want := mustFromRows(t, [][]float64{{5, 5}, {5, 5}}); !sum.Equal(want, 0) {
		t.Fatalf("Add = %v", sum)
	}
	diff, err := sum.Sub(b)
	if err != nil {
		t.Fatal(err)
	}
	if !diff.Equal(a, 0) {
		t.Fatalf("Sub = %v, want %v", diff, a)
	}
	if got := a.Clone().Scale(2).At(1, 1); got != 8 {
		t.Fatalf("Scale: got %v, want 8", got)
	}
	if _, err := a.Add(New(3, 3)); !errors.Is(err, ErrShape) {
		t.Fatal("Add shape mismatch not reported")
	}
	if _, err := a.Sub(New(3, 3)); !errors.Is(err, ErrShape) {
		t.Fatal("Sub shape mismatch not reported")
	}
}

func TestInverseKnown(t *testing.T) {
	a := mustFromRows(t, [][]float64{{4, 7}, {2, 6}})
	inv, err := a.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	want := mustFromRows(t, [][]float64{{0.6, -0.7}, {-0.2, 0.4}})
	if !inv.Equal(want, 1e-12) {
		t.Fatalf("Inverse = %v, want %v", inv, want)
	}
}

func TestInverseSingular(t *testing.T) {
	a := mustFromRows(t, [][]float64{{1, 2}, {2, 4}})
	if _, err := a.Inverse(); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestInverseNonSquare(t *testing.T) {
	if _, err := New(2, 3).Inverse(); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestDetKnown(t *testing.T) {
	a := mustFromRows(t, [][]float64{{1, 2}, {3, 4}})
	if got := a.Det(); math.Abs(got-(-2)) > 1e-12 {
		t.Fatalf("Det = %v, want -2", got)
	}
	if got := Identity(7).Det(); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Det(I) = %v, want 1", got)
	}
	singular := mustFromRows(t, [][]float64{{1, 1}, {1, 1}})
	if got := singular.Det(); got != 0 {
		t.Fatalf("Det(singular) = %v, want 0", got)
	}
}

func TestDetPermutationSign(t *testing.T) {
	// A pure row swap of the identity has determinant -1; this exercises the
	// pivot-sign bookkeeping.
	a := mustFromRows(t, [][]float64{{0, 1}, {1, 0}})
	if got := a.Det(); math.Abs(got-(-1)) > 1e-12 {
		t.Fatalf("Det = %v, want -1", got)
	}
}

func TestSolveKnown(t *testing.T) {
	a := mustFromRows(t, [][]float64{{2, 1}, {1, 3}})
	x, err := a.Solve([]float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("Solve = %v, want [1 3]", x)
	}
}

func TestSolveBadRHS(t *testing.T) {
	a := Identity(3)
	if _, err := a.Solve([]float64{1}); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestNorm1(t *testing.T) {
	a := mustFromRows(t, [][]float64{{1, -2}, {-3, 4}})
	if got := a.Norm1(); got != 6 {
		t.Fatalf("Norm1 = %v, want 6", got)
	}
}

func TestMaxAbs(t *testing.T) {
	a := mustFromRows(t, [][]float64{{1, -7}, {3, 4}})
	if got := a.MaxAbs(); got != 7 {
		t.Fatalf("MaxAbs = %v, want 7", got)
	}
}

func TestConditionEstimate(t *testing.T) {
	if got := Identity(4).ConditionEstimate(); math.Abs(got-1) > 1e-12 {
		t.Fatalf("cond(I) = %v, want 1", got)
	}
	singular := mustFromRows(t, [][]float64{{1, 1}, {1, 1}})
	if got := singular.ConditionEstimate(); !math.IsInf(got, 1) {
		t.Fatalf("cond(singular) = %v, want +Inf", got)
	}
}

func TestStringFormat(t *testing.T) {
	a := mustFromRows(t, [][]float64{{1, 2}, {3, 4}})
	want := "[1 2]\n[3 4]"
	if got := a.String(); got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

// randomMatrix builds a well-conditioned-ish random matrix: random entries
// with a boosted diagonal so inversion tests are numerically stable.
func randomMatrix(r *randx.Source, rows, cols int) *Dense {
	m := New(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			v := r.Float64()*2 - 1
			if i == j {
				v += float64(cols)
			}
			m.Set(i, j, v)
		}
	}
	return m
}

func TestPropertyInverseRoundTrip(t *testing.T) {
	f := func(seed uint64, sizeRaw uint8) bool {
		n := int(sizeRaw%8) + 1
		r := randx.New(seed)
		a := randomMatrix(r, n, n)
		inv, err := a.Inverse()
		if err != nil {
			return false // diagonally dominant matrices must invert
		}
		prod, err := a.Mul(inv)
		if err != nil {
			return false
		}
		diff, err := prod.Sub(Identity(n))
		if err != nil {
			return false
		}
		return diff.MaxAbs() < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySolveMatchesInverse(t *testing.T) {
	f := func(seed uint64, sizeRaw uint8) bool {
		n := int(sizeRaw%8) + 1
		r := randx.New(seed)
		a := randomMatrix(r, n, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = r.Float64()*10 - 5
		}
		x1, err := a.Solve(b)
		if err != nil {
			return false
		}
		inv, err := a.Inverse()
		if err != nil {
			return false
		}
		x2, err := inv.MulVec(b)
		if err != nil {
			return false
		}
		for i := range x1 {
			if math.Abs(x1[i]-x2[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyTransposeInvolution(t *testing.T) {
	f := func(seed uint64, rRaw, cRaw uint8) bool {
		rows := int(rRaw%6) + 1
		cols := int(cRaw%6) + 1
		r := randx.New(seed)
		a := randomMatrix(r, rows, cols)
		return a.T().T().Equal(a, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMulAssociative(t *testing.T) {
	f := func(seed uint64, sizeRaw uint8) bool {
		n := int(sizeRaw%5) + 1
		r := randx.New(seed)
		a := randomMatrix(r, n, n)
		b := randomMatrix(r, n, n)
		c := randomMatrix(r, n, n)
		ab, _ := a.Mul(b)
		abc1, _ := ab.Mul(c)
		bc, _ := b.Mul(c)
		abc2, _ := a.Mul(bc)
		return abc1.Equal(abc2, 1e-8*abc1.MaxAbs()+1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDetProductRule(t *testing.T) {
	f := func(seed uint64, sizeRaw uint8) bool {
		n := int(sizeRaw%5) + 1
		r := randx.New(seed)
		a := randomMatrix(r, n, n)
		b := randomMatrix(r, n, n)
		ab, _ := a.Mul(b)
		lhs := ab.Det()
		rhs := a.Det() * b.Det()
		scale := math.Max(math.Abs(lhs), 1)
		return math.Abs(lhs-rhs) < 1e-8*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInverse10(b *testing.B) {
	r := randx.New(1)
	a := randomMatrix(r, 10, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Inverse(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolve10(b *testing.B) {
	r := randx.New(1)
	a := randomMatrix(r, 10, 10)
	rhs := make([]float64, 10)
	for i := range rhs {
		rhs[i] = r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Solve(rhs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMul10(b *testing.B) {
	r := randx.New(1)
	x := randomMatrix(r, 10, 10)
	y := randomMatrix(r, 10, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := x.Mul(y); err != nil {
			b.Fatal(err)
		}
	}
}
