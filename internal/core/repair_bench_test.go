package core

import (
	"fmt"
	"testing"

	"optrr/internal/randx"
)

// BenchmarkRepair measures MeetBoundStats on freshly drawn random genomes —
// the per-child cost of Section V-G's bound repair. Repair mutates the
// genome in place, so each iteration restores a pristine copy into a
// preallocated working genome (the copy cost is identical across variants).
// The scratch variant threads the reusable slack buffer exactly as the
// optimizer's worker loop does.
func BenchmarkRepair(b *testing.B) {
	for _, n := range []int{4, 8, 16} {
		r := randx.New(uint64(n))
		// A skewed prior (mode 0.5) with delta just above the Theorem 5
		// floor, so random genomes routinely violate the bound and the
		// bench exercises actual repair rounds, not only the feasibility
		// scan. A draw budget guards against configurations where
		// violations happen to be rare.
		prior := make([]float64, n)
		prior[0] = 0.5
		for i := 1; i < n; i++ {
			prior[i] = 0.5 / float64(n-1)
		}
		const delta = 0.6
		pool := make([]Genome, 0, 32)
		for attempts := 0; len(pool) < cap(pool) && attempts < 10000; attempts++ {
			g := NewRandomGenome(n, r)
			if ok, st := MeetBoundStats(g.Clone(), prior, delta, false); ok && st.Rounds > 0 {
				pool = append(pool, g)
			}
		}
		if len(pool) == 0 {
			b.Fatalf("n=%d: no repair-needing genomes in 10000 draws", n)
		}
		work := NewRandomGenome(n, r)
		restore := func(src Genome) {
			for c := range src {
				copy(work[c], src[c])
			}
		}
		// One untimed pass over the pool warms caches and branch predictors
		// before either variant is measured; without it the first sub-bench
		// at low pinned iteration counts absorbs the cold-start cost and the
		// fresh-vs-scratch comparison wobbles by hundreds of ns/op.
		warmup := func(b *testing.B, repair func() bool) {
			for range pool {
				if !repair() {
					b.Fatal("unrepairable genome in pool")
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
		}

		b.Run(fmt.Sprintf("fresh-slack/n=%d", n), func(b *testing.B) {
			i := 0
			repair := func() bool {
				restore(pool[i%len(pool)])
				i++
				ok, _ := MeetBoundStats(work, prior, delta, false)
				return ok
			}
			warmup(b, repair)
			for j := 0; j < b.N; j++ {
				if !repair() {
					b.Fatal("unrepairable genome in pool")
				}
			}
		})
		b.Run(fmt.Sprintf("scratch/n=%d", n), func(b *testing.B) {
			sc := newWorkerScratch()
			i := 0
			repair := func() bool {
				restore(pool[i%len(pool)])
				i++
				ok, _ := meetBoundStats(work, prior, delta, false, sc.slackFor(n))
				return ok
			}
			warmup(b, repair)
			for j := 0; j < b.N; j++ {
				if !repair() {
					b.Fatal("unrepairable genome in pool")
				}
			}
		})
	}
}

// BenchmarkRealizeSteadyState measures the full per-genome hot path the
// optimizer runs every generation — materialize, repair, fused evaluate —
// through one worker's persistent scratch. Steady-state allocs/op should be
// zero.
func BenchmarkRealizeSteadyState(b *testing.B) {
	for _, n := range []int{4, 8, 16} {
		r := randx.New(uint64(n))
		prior := make([]float64, n)
		var sum float64
		for i := range prior {
			prior[i] = 0.05 + r.Float64()
			sum += prior[i]
		}
		for i := range prior {
			prior[i] /= sum
		}
		pool := make([]Genome, 32)
		for i := range pool {
			pool[i] = NewRandomGenome(n, r)
		}
		work := NewRandomGenome(n, r)

		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			sc := newWorkerScratch()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				src := pool[i%len(pool)]
				for c := range src {
					copy(work[c], src[c])
				}
				if ok, _ := meetBoundStats(work, prior, 0.8, false, sc.slackFor(n)); !ok {
					continue
				}
				m, err := sc.matrixFor(work)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sc.ws.Evaluate(m, prior, 10000); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
