package core

import (
	"errors"
	"testing"

	"optrr/internal/metrics"
	"optrr/internal/pareto"
)

func quickWeighted() WeightedSumConfig {
	return WeightedSumConfig{
		Prior:          testPrior(),
		Records:        5000,
		Delta:          0.8,
		Weights:        5,
		PopulationSize: 10,
		Generations:    20,
		Seed:           4,
	}
}

func TestWeightedSumValidate(t *testing.T) {
	cfg := quickWeighted()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg.Delta = 0.1
	if err := cfg.Validate(); !errors.Is(err, ErrInfeasibleBound) {
		t.Fatalf("err = %v", err)
	}
	cfg = quickWeighted()
	cfg.Records = 0
	if err := cfg.Validate(); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("err = %v", err)
	}
}

func TestWeightedSumProducesFeasibleFront(t *testing.T) {
	res, err := OptimizeWeightedSum(quickWeighted())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty weighted-sum front")
	}
	prior := testPrior()
	for _, ind := range res.Front {
		if !ind.Genome.Valid() {
			t.Fatal("invalid genome on front")
		}
		m, err := ind.Genome.Matrix()
		if err != nil {
			t.Fatal(err)
		}
		mp, err := metrics.MaxPosterior(m, prior)
		if err != nil {
			t.Fatal(err)
		}
		if mp > 0.8+1e-9 {
			t.Fatalf("bound violated: %v", mp)
		}
	}
	// Union front is mutually non-dominated.
	pts := res.FrontPoints()
	for i := range pts {
		for j := range pts {
			if i != j && pts[i].Dominates(pts[j]) {
				t.Fatal("weighted-sum front not mutually non-dominated")
			}
		}
	}
}

func TestWeightedSumDeterministic(t *testing.T) {
	a, err := OptimizeWeightedSum(quickWeighted())
	if err != nil {
		t.Fatal(err)
	}
	b, err := OptimizeWeightedSum(quickWeighted())
	if err != nil {
		t.Fatal(err)
	}
	pa, pb := a.FrontPoints(), b.FrontPoints()
	if len(pa) != len(pb) {
		t.Fatalf("front sizes differ: %d vs %d", len(pa), len(pb))
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("weighted-sum runs differ under the same seed")
		}
	}
}

// TestWeightedSumInferiorToEMO reproduces the paper's Section V argument at
// test scale: at a matched evaluation budget the EMO front covers a large
// share of the weighted-sum front while the reverse coverage stays small —
// even though the weighted-sum front is built from the union of every
// individual the baseline ever evaluated (the most generous accounting).
func TestWeightedSumInferiorToEMO(t *testing.T) {
	ws := quickWeighted()
	ws.Weights = 11
	ws.PopulationSize = 16
	ws.Generations = 60
	wsRes, err := OptimizeWeightedSum(ws)
	if err != nil {
		t.Fatal(err)
	}

	cfg := quickConfig()
	cfg.Generations = wsRes.Evaluations / cfg.PopulationSize // match budgets
	opt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	emoRes, err := opt.Run()
	if err != nil {
		t.Fatal(err)
	}

	ef, wf := emoRes.FrontPoints(), wsRes.FrontPoints()
	covEW := pareto.Coverage(ef, wf)
	covWE := pareto.Coverage(wf, ef)
	if covEW < 0.3 {
		t.Fatalf("EMO covers only %.2f of the weighted-sum front", covEW)
	}
	if covWE > 0.2 {
		t.Fatalf("weighted sum covers %.2f of the EMO front; expected a clear asymmetry (EMO covers %.2f)", covWE, covEW)
	}
}
