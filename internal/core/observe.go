package core

import (
	"time"

	"optrr/internal/obs"
)

// This file is the optimizer's observability seam: it maps the search loop
// of Section V-A onto structured trace events and live metrics. The mapping
// to the paper's phases is one-to-one — fitness assignment + environmental
// selection ("select"), mating selection + crossover/mutation ("vary"),
// bound repair + objective evaluation ("eval", Section V-G), and the
// three-set Ω update ("omega", Section V-H).

// Phase indices for per-generation wall-time sampling.
const (
	phaseSelect = iota
	phaseVary
	phaseEval
	phaseOmega
	phaseCount
)

// optimizerMetrics caches the registry metric pointers the hot loop updates,
// so steady-state updates never touch the registry lock. All names share the
// "optimizer." prefix.
type optimizerMetrics struct {
	evaluations *obs.Counter
	repairs     *obs.Counter
	redraws     *obs.Counter
	rejects     *obs.Counter
	pushBack    *obs.Gauge // cumulative repair magnitude
	generation  *obs.Gauge
	archiveSize *obs.Gauge
	omegaBins   *obs.Gauge
	frontSize   *obs.Gauge
	hypervolume *obs.Gauge
	workers     *obs.Gauge
	genSeconds  *obs.Histogram

	// Convergence snapshot mirrors (see convergence.go): the best
	// hypervolume reached, generations since it improved, a 0/1 stall
	// flag, front spread, and Ω churn counters.
	bestHypervolume *obs.Gauge
	staleGens       *obs.Gauge
	stalled         *obs.Gauge
	spread          *obs.Gauge
	omegaInserts    *obs.Counter
	omegaEvictions  *obs.Counter
}

// newOptimizerMetrics registers the optimizer metrics on reg; nil in, nil
// out.
func newOptimizerMetrics(reg *obs.Registry) *optimizerMetrics {
	if reg == nil {
		return nil
	}
	return &optimizerMetrics{
		evaluations: reg.Counter("optimizer.evaluations"),
		repairs:     reg.Counter("optimizer.repairs"),
		redraws:     reg.Counter("optimizer.redraws"),
		rejects:     reg.Counter("optimizer.rejects"),
		pushBack:    reg.Gauge("optimizer.repair_push_back"),
		generation:  reg.Gauge("optimizer.generation"),
		archiveSize: reg.Gauge("optimizer.archive_size"),
		omegaBins:   reg.Gauge("optimizer.omega_occupied"),
		frontSize:   reg.Gauge("optimizer.front_size"),
		hypervolume: reg.Gauge("optimizer.hypervolume"),
		workers:     reg.Gauge("optimizer.workers"),
		genSeconds: reg.Histogram("optimizer.generation_seconds",
			[]float64{0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1, 3, 10}),
		bestHypervolume: reg.Gauge("optimizer.convergence.best_hypervolume"),
		staleGens:       reg.Gauge("optimizer.convergence.stale_generations"),
		stalled:         reg.Gauge("optimizer.convergence.stalled"),
		spread:          reg.Gauge("optimizer.convergence.spread"),
		omegaInserts:    reg.Counter("optimizer.omega_inserts"),
		omegaEvictions:  reg.Counter("optimizer.omega_evictions"),
	}
}

// emitStart records the run configuration. The effective worker count (the
// resolved Config.Workers every parallel kernel sees) and the effective
// island topology go to both the registry gauges and the start event.
func (o *Optimizer) emitStart() {
	if m := o.met; m != nil {
		m.workers.Set(float64(o.cfg.Workers))
	}
	if !o.rec.Enabled() {
		return
	}
	cfg := o.cfg
	islands := cfg.Islands
	if islands < 1 {
		islands = 1
	}
	o.rec.Record("optimizer.start", obs.Fields{
		"categories":    len(cfg.Prior),
		"records":       cfg.Records,
		"delta":         cfg.Delta,
		"population":    cfg.PopulationSize,
		"archive":       cfg.ArchiveSize,
		"omega":         cfg.OmegaSize,
		"generations":   cfg.Generations,
		"engine":        cfg.Engine.String(),
		"bound_mode":    cfg.BoundMode.String(),
		"seed":          cfg.Seed,
		"workers":       cfg.Workers,
		"islands":       islands,
		"migrate_every": cfg.MigrateEvery,
	})
}

// emitGeneration publishes one completed generation to the recorder and the
// metrics registry. The Stats clone detaches the event from the optimizer's
// reused Front scratch buffer: recorders may retain Fields indefinitely.
func (o *Optimizer) emitGeneration(st Stats, phases [phaseCount]time.Duration, evalsGen, truncated, backfilled int) {
	if m := o.met; m != nil {
		m.evaluations.Add(int64(evalsGen))
		m.repairs.Add(int64(st.Repairs))
		m.redraws.Add(int64(st.Redraws))
		m.rejects.Add(int64(st.Rejects))
		m.pushBack.Add(st.RepairPushBack)
		m.generation.Set(float64(st.Generation))
		m.archiveSize.Set(float64(st.ArchiveSize))
		m.omegaBins.Set(float64(st.OmegaOccupied))
		m.frontSize.Set(float64(st.FrontSize))
		m.hypervolume.Set(st.FrontHypervolume)
		var total time.Duration
		for _, d := range phases {
			total += d
		}
		m.genSeconds.Observe(total.Seconds())
	}
	if !o.rec.Enabled() {
		return
	}
	st = st.Clone()
	o.rec.Record("optimizer.generation", obs.Fields{
		"gen":            st.Generation,
		"evals":          st.Evaluations,
		"evals_gen":      evalsGen,
		"archive":        st.ArchiveSize,
		"front_size":     st.FrontSize,
		"front":          st.Front,
		"hypervolume":    st.FrontHypervolume,
		"omega_occupied": st.OmegaOccupied,
		"omega_improved": st.OmegaImproved,
		"backfilled":     backfilled,
		"truncated":      truncated,
		"repairs":        st.Repairs,
		"push_back":      st.RepairPushBack,
		"redraws":        st.Redraws,
		"rejects":        st.Rejects,
		"select_ms":      ms(phases[phaseSelect]),
		"vary_ms":        ms(phases[phaseVary]),
		"eval_ms":        ms(phases[phaseEval]),
		"omega_ms":       ms(phases[phaseOmega]),
		// Parallel-kernel sub-phases: SPEA2 fitness assignment and
		// environmental selection (truncation). Both overlap select_ms /
		// vary_ms, so they are reported separately rather than added to
		// the phase timeline.
		"fitness_ms":  ms(o.fitnessDur),
		"truncate_ms": ms(o.truncateDur),
		"workers":     o.cfg.Workers,
	})
}

// emitConvergence publishes one generation's convergence snapshot: the
// "optimizer.convergence" trace event plus the registry mirrors. Like
// emitGeneration it is free when neither a recorder nor a registry is
// attached.
func (o *Optimizer) emitConvergence(c Convergence) {
	if m := o.met; m != nil {
		m.bestHypervolume.Set(c.BestHypervolume)
		m.staleGens.Set(float64(c.SinceImprovement))
		if c.Stalled {
			m.stalled.Set(1)
		} else {
			m.stalled.Set(0)
		}
		m.spread.Set(c.Spread)
		m.omegaInserts.Add(int64(c.OmegaInserts))
		m.omegaEvictions.Add(int64(c.OmegaEvictions))
	}
	if !o.rec.Enabled() {
		return
	}
	o.rec.Record("optimizer.convergence", obs.Fields{
		"gen":               c.Generation,
		"hypervolume":       c.Hypervolume,
		"best_hypervolume":  c.BestHypervolume,
		"improved":          c.Improved,
		"since_improvement": c.SinceImprovement,
		"stalled":           c.Stalled,
		"omega_inserts":     c.OmegaInserts,
		"omega_evictions":   c.OmegaEvictions,
		"spread":            c.Spread,
	})
}

// emitDone records the run outcome.
func (o *Optimizer) emitDone(res Result, wallStart time.Time) {
	if !o.rec.Enabled() {
		return
	}
	o.rec.Record("optimizer.done", obs.Fields{
		"generations": res.Generations,
		"evaluations": res.Evaluations,
		"front_size":  len(res.Front),
		"stagnated":   res.Stagnated,
		"wall_ms":     ms(time.Since(wallStart)),
	})
}

// ms renders a duration as fractional milliseconds for event fields.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
