package core

import (
	"math"

	"optrr/internal/metrics"
)

// This file implements "meeting the privacy bound" (Section V-G): after
// crossover and mutation, every matrix is pushed back under the worst-case
// posterior bound max P(X | Y) ≤ δ of Equation (9).
//
// For an entry (row r, column c) the posterior can be written
// θ·P_c / (θ·P_c + R) with θ = θ_{r,c} and R = Σ_{i≠c} θ_{r,i}·P_i the
// disguised mass arriving at row r from other originals. The value that
// makes the posterior exactly δ is therefore
//
//	θ'_{r,c} = δ·R / (P_c·(1 − δ)).
//
// Following the paper, a violating element (posterior > δ) is decreased to
// its θ', and the removed mass is added to the other elements of the same
// column proportionally to each element's own slack θ'_{k,c} − θ_{k,c} —
// how much that element could still grow before itself hitting the bound.
// Slack-proportional redistribution steers mass into rows that already
// receive plenty of disguised mass from other categories, which is what
// allows near-deterministic asymmetric matrices (the low-privacy end of the
// Pareto front) to survive the repair. Because fixing one violation can
// create another, the repair iterates on the currently worst violation until
// the bound holds or the round budget is exhausted.

// repairRoundsPerEntry bounds the fix-worst-violation iteration relative to
// the matrix size. Violations shrink geometrically in practice; 25·n² rounds
// is far beyond what any matrix in the test corpus needs.
const repairRoundsPerEntry = 25

// RepairStats quantifies the work one MeetBound call performed, for
// observability: a zero value means the genome was already feasible.
type RepairStats struct {
	// Rounds is the number of fix-worst-violation iterations applied.
	Rounds int
	// PushBack is the total probability mass removed from violating entries
	// across all rounds — the magnitude of the repair.
	PushBack float64
	// Blended reports that the iterative repair cycled and the
	// blend-toward-uniform fallback finished the job.
	Blended bool
}

// MeetBound adjusts the genome in place so that, under the given prior, the
// maximum posterior does not exceed delta. It reports whether the bound was
// achieved. By Theorem 5 the bound is unachievable when delta is below the
// prior mode; MeetBound detects that case immediately and returns false.
func MeetBound(g Genome, prior []float64, delta float64, symmetric bool) bool {
	ok, _ := MeetBoundStats(g, prior, delta, symmetric)
	return ok
}

// MeetBoundStats is MeetBound reporting how much repair work was done.
func MeetBoundStats(g Genome, prior []float64, delta float64, symmetric bool) (bool, RepairStats) {
	return meetBoundStats(g, prior, delta, symmetric, nil)
}

// meetBoundStats is the scratch-threaded implementation: slack, when
// non-nil, is the caller's reusable per-column slack buffer (length ≥ n), so
// the repair loop allocates nothing. A nil slack allocates one buffer for
// the whole call. The arithmetic is identical either way.
func meetBoundStats(g Genome, prior []float64, delta float64, symmetric bool, slack []float64) (bool, RepairStats) {
	var st RepairStats
	n := g.N()
	if n == 0 || len(prior) != n {
		return false, st
	}
	if delta <= 0 || delta >= 1 {
		// delta >= 1 always holds; delta <= 0 never does.
		return delta >= 1, st
	}
	if metrics.BoundFloor(prior) > delta+1e-12 {
		return false, st
	}
	if len(slack) < n {
		slack = make([]float64, n)
	}
	maxRounds := repairRoundsPerEntry * n * n
	for round := 0; round < maxRounds; round++ {
		r, c, post := worstPosterior(g, prior)
		if post <= delta+1e-12 {
			return true, st
		}
		st.Rounds++
		st.PushBack += repairEntry(g, prior, delta, r, c, slack)
		if symmetric {
			g.Symmetrize()
		}
	}
	if _, _, post := worstPosterior(g, prior); post <= delta+1e-12 {
		return true, st
	}
	st.Blended = true
	return blendTowardUniform(g, prior, delta), st
}

// blendTowardUniform is the repair fallback for bounds so tight that the
// iterative fix cycles: the uniform matrix's posteriors equal the prior, so
// any δ at or above the prior mode is satisfied at blend factor 1, and the
// smallest sufficient factor is found by bisection. The blend preserves
// column stochasticity (a convex combination of stochastic columns) and, for
// symmetric inputs, symmetry.
func blendTowardUniform(g Genome, prior []float64, delta float64) bool {
	n := g.N()
	u := 1 / float64(n)
	meets := func(t float64) bool {
		worst := 0.0
		for r := 0; r < n; r++ {
			var pStar float64
			for i := 0; i < n; i++ {
				pStar += ((1-t)*g[i][r] + t*u) * prior[i]
			}
			if pStar <= 0 {
				continue
			}
			for i := 0; i < n; i++ {
				post := ((1-t)*g[i][r] + t*u) * prior[i] / pStar
				if post > worst {
					worst = post
				}
			}
		}
		return worst <= delta+1e-12
	}
	if !meets(1) {
		return false // delta below the prior mode; caller already checked
	}
	lo, hi := 0.0, 1.0
	for iter := 0; iter < 60; iter++ {
		mid := (lo + hi) / 2
		if meets(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	for _, col := range g {
		for j := range col {
			col[j] = (1-hi)*col[j] + hi*u
		}
	}
	return true
}

// repairEntry lowers g[c][r] to its bound target and redistributes the
// removed mass over the rest of column c proportionally to per-entry slack.
// It returns the mass actually moved off the violating entry. slack is a
// caller-provided buffer of length ≥ n.
func repairEntry(g Genome, prior []float64, delta float64, r, c int, slack []float64) float64 {
	n := g.N()
	col := g[c]
	target := boundTarget(g, prior, delta, r, c)
	cur := col[r]
	if target >= cur {
		// Numerically stuck (rest ≈ 0 while the prior mode allows the
		// bound): force a decrease toward uniformity so later rounds can
		// make progress.
		target = cur * 0.9
	}
	a := cur - target

	// Slack of every other entry in column c: how far it can grow before
	// its own posterior hits delta (capped by the simplex headroom 1−θ).
	// The violating entry's slot must be zero: the redistribution loops
	// below add a·slack[k]/total to every entry including k == r.
	slack = slack[:n]
	slack[r] = 0
	var total float64
	for k := 0; k < n; k++ {
		if k == r {
			continue
		}
		t := boundTarget(g, prior, delta, k, c)
		if t > 1 {
			t = 1
		}
		s := t - col[k]
		if s < 0 {
			s = 0
		}
		if h := 1 - col[k]; s > h {
			s = h
		}
		slack[k] = s
		total += s
	}

	col[r] = target
	if total <= 0 {
		// No slack anywhere: fall back to headroom-proportional filling and
		// let subsequent rounds repair any violation this creates.
		var headroom float64
		for k := 0; k < n; k++ {
			if k != r {
				headroom += 1 - col[k]
			}
		}
		if headroom <= 0 {
			col[r] = cur // cannot move any mass; undo
			return 0
		}
		for k := 0; k < n; k++ {
			if k != r {
				col[k] += a * (1 - col[k]) / headroom
			}
		}
		return a
	}
	if a > total {
		// Fill every slack completely and park the remainder back on the
		// violating entry; the next rounds shrink it further.
		for k := 0; k < n; k++ {
			col[k] += slack[k]
		}
		col[r] += a - total
		return total
	}
	for k := 0; k < n; k++ {
		col[k] += a * slack[k] / total
	}
	return a
}

// boundTarget returns the value θ'_{r,c} at which the posterior
// P(X = c_c | Y = c_r) equals delta, holding the rest of the genome fixed.
func boundTarget(g Genome, prior []float64, delta float64, r, c int) float64 {
	n := g.N()
	var rest float64
	for i := 0; i < n; i++ {
		if i != c {
			rest += g[i][r] * prior[i]
		}
	}
	if prior[c] <= 0 {
		return 1 // a zero-prior category can never violate the bound
	}
	return delta * rest / (prior[c] * (1 - delta))
}

// worstPosterior returns the location (row, column) and value of the largest
// posterior P(X = c_col | Y = c_row) implied by the genome and prior.
// Unobservable rows (zero disguised mass) are skipped.
func worstPosterior(g Genome, prior []float64) (row, col int, value float64) {
	n := g.N()
	value = -1
	for r := 0; r < n; r++ {
		var pStar float64
		for i := 0; i < n; i++ {
			pStar += g[i][r] * prior[i]
		}
		if pStar <= 0 {
			continue
		}
		for i := 0; i < n; i++ {
			if post := g[i][r] * prior[i] / pStar; post > value {
				row, col, value = r, i, post
			}
		}
	}
	if value < 0 {
		value = math.Inf(1) // no observable row: treat as unrepairable
	}
	return row, col, value
}
