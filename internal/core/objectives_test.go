package core

import (
	"errors"
	"math"
	"testing"

	"optrr/internal/metrics"
	"optrr/internal/pareto"
	"optrr/internal/rr"
)

// evalsEqual compares evaluations bit-for-bit, extras included.
func evalsEqual(a, b metrics.Evaluation) bool {
	if a.Privacy != b.Privacy || a.Utility != b.Utility ||
		a.MaxPosterior != b.MaxPosterior || len(a.Extra) != len(b.Extra) {
		return false
	}
	for i := range a.Extra {
		if a.Extra[i] != b.Extra[i] {
			return false
		}
	}
	return true
}

// testObjectives resolves the named built-ins, failing the test otherwise.
func testObjectives(t testing.TB, names ...string) []metrics.Objective {
	t.Helper()
	objs := make([]metrics.Objective, len(names))
	for i, name := range names {
		o, ok := metrics.ObjectiveByName(name)
		if !ok {
			t.Fatalf("objective %q not registered", name)
		}
		objs[i] = o
	}
	return objs
}

// triConfig is a small tri-objective (privacy, utility, ldp-epsilon)
// configuration that runs in well under a second.
func triConfig(t testing.TB) Config {
	cfg := DefaultConfig([]float64{0.5, 0.3, 0.2}, 10000, 0.75)
	cfg.PopulationSize = 16
	cfg.ArchiveSize = 16
	cfg.OmegaSize = 200
	cfg.Generations = 25
	cfg.Seed = 7
	cfg.Objectives = testObjectives(t, "ldp-epsilon")
	return cfg
}

// TestRunTriObjective drives the full optimizer with one extra objective:
// the front must be a valid 3-D Pareto set with finite canonical extras.
func TestRunTriObjective(t *testing.T) {
	opt, err := New(triConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty front")
	}
	pts := res.FrontPoints()
	for i, p := range pts {
		if p.Dim() != 3 {
			t.Fatalf("point %d: dim %d, want 3", i, p.Dim())
		}
		eps := p.ExtraAt(0)
		if math.IsNaN(eps) || eps < 0 || eps > metrics.LDPEpsilonCap {
			t.Fatalf("point %d: ldp-epsilon %v outside [0, %v]", i, eps, metrics.LDPEpsilonCap)
		}
	}
	// The front must be mutually non-dominated in 3-D.
	for i := range pts {
		for j := range pts {
			if i != j && pts[i].Dominates(pts[j]) {
				t.Fatalf("front point %d dominates %d", i, j)
			}
		}
	}
	// Each individual's Extra must match an independent evaluation of the
	// objective on its matrix (canonical form; ldp-epsilon is Minimize, so
	// no negation).
	ms, err := res.Matrices()
	if err != nil {
		t.Fatal(err)
	}
	ws := metrics.NewWorkspace()
	obj := testObjectives(t, "ldp-epsilon")[0]
	cfg := triConfig(t)
	for i, ind := range res.Front {
		if len(ind.Eval.Extra) != 1 {
			t.Fatalf("individual %d: %d extras, want 1", i, len(ind.Eval.Extra))
		}
		if _, err := ws.Evaluate(ms[i], cfg.Prior, cfg.Records); err != nil {
			t.Fatal(err)
		}
		want, err := obj.Evaluate(ws, ms[i], cfg.Prior, cfg.Records)
		if err != nil {
			t.Fatal(err)
		}
		if ind.Eval.Extra[0] != want {
			t.Fatalf("individual %d: stored extra %v, re-evaluated %v", i, ind.Eval.Extra[0], want)
		}
	}
}

// TestRunTriObjectiveDeterministicAcrossWorkers extends the worker-count
// determinism pin to k-dim runs: same seed, different Workers, identical
// front.
func TestRunTriObjectiveDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) []pareto.Point {
		cfg := triConfig(t)
		cfg.Workers = workers
		opt, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := opt.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.FrontPoints()
	}
	want := run(1)
	for _, w := range []int{2, 4} {
		got := run(w)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d points, want %d", w, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: point %d differs: %+v vs %+v", w, i, got[i], want[i])
			}
		}
	}
}

// TestDefaultRunHasNoExtras pins the fast path: without configured
// objectives every evaluation and point stays two-dimensional.
func TestDefaultRunHasNoExtras(t *testing.T) {
	cfg := triConfig(t)
	cfg.Objectives = nil
	opt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i, ind := range res.Front {
		if ind.Eval.Extra != nil {
			t.Fatalf("individual %d: Extra = %v, want nil", i, ind.Eval.Extra)
		}
		if d := ind.Point().Dim(); d != 2 {
			t.Fatalf("individual %d: dim %d, want 2", i, d)
		}
	}
}

// TestValidateObjectives covers the configuration guard rails.
func TestValidateObjectives(t *testing.T) {
	base := triConfig(t)
	noop := func(*metrics.Workspace, *rr.Matrix, []float64, int) (float64, error) { return 0, nil }

	cfg := base
	cfg.Objectives = make([]metrics.Objective, pareto.MaxExtraObjectives+1)
	for i := range cfg.Objectives {
		cfg.Objectives[i] = metrics.NewObjective("x", metrics.Minimize, noop)
	}
	if err := cfg.Validate(); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("over-capacity objectives: err = %v", err)
	}

	cfg = base
	cfg.Objectives = []metrics.Objective{nil}
	if err := cfg.Validate(); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("nil objective: err = %v", err)
	}

	cfg = base
	cfg.Objectives = []metrics.Objective{metrics.NewObjective("privacy", metrics.Minimize, noop)}
	if err := cfg.Validate(); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("reserved name: err = %v", err)
	}

	cfg = base
	dup := metrics.NewObjective("dup", metrics.Minimize, noop)
	cfg.Objectives = []metrics.Objective{dup, dup}
	if err := cfg.Validate(); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("duplicate name: err = %v", err)
	}

	if err := base.Validate(); err != nil {
		t.Fatalf("valid tri-objective config rejected: %v", err)
	}
}

// TestWeightVectors pins the legacy two-objective arithmetic and the
// simplex-lattice sweep shape.
func TestWeightVectors(t *testing.T) {
	vs := weightVectors(2, 21)
	if len(vs) != 21 {
		t.Fatalf("k=2: %d vectors, want 21", len(vs))
	}
	for wi, v := range vs {
		w := float64(wi) / 20
		if v[1] != w || v[0] != 1-w {
			t.Fatalf("k=2 wi=%d: %v, want [%v %v]", wi, v, 1-w, w)
		}
	}
	vs = weightVectors(3, 5)
	if len(vs) != 15 { // C(4+2, 2) compositions of 4 into 3 parts
		t.Fatalf("k=3 m=4: %d vectors, want 15", len(vs))
	}
	for _, v := range vs {
		var sum float64
		for _, c := range v {
			if c < 0 || c > 1 {
				t.Fatalf("component %v outside [0,1] in %v", c, v)
			}
			sum += c
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("vector %v sums to %v", v, sum)
		}
	}
}

// TestWeightedSumTriObjective runs the baseline with an extra objective: it
// must produce a k-dim union front with extras populated.
func TestWeightedSumTriObjective(t *testing.T) {
	cfg := WeightedSumConfig{
		Prior:          []float64{0.5, 0.3, 0.2},
		Records:        10000,
		Delta:          0.75,
		Weights:        3,
		PopulationSize: 8,
		Generations:    4,
		Seed:           11,
		Objectives:     testObjectives(t, "mutual-information"),
	}
	res, err := OptimizeWeightedSum(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty front")
	}
	for i, ind := range res.Front {
		if len(ind.Eval.Extra) != 1 || math.IsNaN(ind.Eval.Extra[0]) || ind.Eval.Extra[0] < 0 {
			t.Fatalf("individual %d: extras %v", i, ind.Eval.Extra)
		}
		if d := ind.Point().Dim(); d != 3 {
			t.Fatalf("individual %d: dim %d, want 3", i, d)
		}
	}
}
