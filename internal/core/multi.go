package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"

	"optrr/internal/emoo"
	"optrr/internal/metrics"
	"optrr/internal/pareto"
	"optrr/internal/randx"
	"optrr/internal/rr"
)

// Multi-dimensional OptRR — the paper's stated future work (Section VII).
// A record has d attributes, each disguised with its own matrix; the genome
// is the tuple of per-attribute genomes. Objectives are record-level: the
// privacy of the MAP adversary observing the full disguised record, and the
// MSE of the reconstructed joint distribution. The bound δ now limits the
// record-level posterior max P(X-record | Y-record), which per-attribute
// bounds cannot express (they do not compose), so repair operates through
// the joint posterior.
//
// Evaluation is Kronecker-factored end to end: every individual is scored
// through a per-worker metrics.JointWorkspace that works on the d small
// per-attribute matrices — O(N·Σn_d) per evaluation with zero steady-state
// allocations and no product-space matrix, so the search scales to product
// spaces far beyond the old dense-channel cap. Threading mirrors the 1-D
// fused evaluator: individuals fan out over parallelWork with exclusive
// scratch per worker, results land in per-index slots, and failed slots are
// redrawn sequentially with the run's RNG — bit-for-bit identical output at
// every worker count.

// MultiConfig parameterizes the multi-dimensional optimizer.
type MultiConfig struct {
	// Joint is the original joint distribution over the product space
	// (row-major, attribute 0 slowest), e.g. from
	// mining.MultiRR.EmpiricalJoint on clean calibration data.
	Joint []float64
	// Sizes lists the per-attribute category counts; their product must be
	// len(Joint).
	Sizes []int
	// Records is the data-set size N for the utility metric.
	Records int
	// Delta bounds the record-level posterior.
	Delta float64

	// PopulationSize, ArchiveSize, OmegaSize, Generations, MutationRate,
	// Seed and Workers mirror Config; zero values take the same defaults.
	PopulationSize int
	ArchiveSize    int
	OmegaSize      int
	Generations    int
	MutationRate   float64
	Seed           uint64
	Workers        int
	// Context, if non-nil, is checked once per generation; cancellation
	// stops the search and returns the best-so-far front together with an
	// error wrapping ctx.Err().
	Context context.Context
}

// MultiIndividual couples a tuple of per-attribute genomes with its
// record-level evaluation.
type MultiIndividual struct {
	Genomes []Genome
	Eval    metrics.Evaluation
}

// Point returns the individual's objective-space image, carrying any extra
// objective values the evaluation recorded (canonical minimized form).
func (mi MultiIndividual) Point() pareto.Point {
	return pareto.NewPoint(mi.Eval.Privacy, mi.Eval.Utility, mi.Eval.Extra...)
}

// Matrices converts the genome tuple into validated RR matrices.
func (mi MultiIndividual) Matrices() ([]*rr.Matrix, error) {
	out := make([]*rr.Matrix, len(mi.Genomes))
	for d, g := range mi.Genomes {
		m, err := g.Matrix()
		if err != nil {
			return nil, err
		}
		out[d] = m
	}
	return out, nil
}

// MultiResult is the outcome of a multi-dimensional run.
type MultiResult struct {
	// Front is the Pareto-optimal set, ascending in privacy.
	Front []MultiIndividual
	// Generations and Evaluations report search effort.
	Generations int
	Evaluations int
}

// FrontPoints returns the front in objective space.
func (res MultiResult) FrontPoints() []pareto.Point {
	pts := make([]pareto.Point, len(res.Front))
	for i, ind := range res.Front {
		pts[i] = ind.Point()
	}
	pareto.SortByPrivacy(pts)
	return pts
}

func (c MultiConfig) withDefaults() MultiConfig {
	if c.PopulationSize == 0 {
		c.PopulationSize = 40
	}
	if c.ArchiveSize == 0 {
		c.ArchiveSize = 40
	}
	if c.Generations == 0 {
		c.Generations = 300
	}
	if c.MutationRate == 0 {
		c.MutationRate = 0.6
	}
	if c.OmegaSize == 0 {
		c.OmegaSize = 1000
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Validate checks the configuration.
func (c MultiConfig) Validate() error {
	if len(c.Sizes) == 0 {
		return fmt.Errorf("%w: no attributes", ErrBadConfig)
	}
	total := 1
	for d, s := range c.Sizes {
		if s < 2 {
			return fmt.Errorf("%w: attribute %d has %d categories", ErrBadConfig, d, s)
		}
		total *= s
	}
	if len(c.Joint) != total {
		return fmt.Errorf("%w: joint has %d cells, want %d", ErrBadConfig, len(c.Joint), total)
	}
	var sum float64
	for i, v := range c.Joint {
		if v < 0 || math.IsNaN(v) {
			return fmt.Errorf("%w: joint[%d] = %v", ErrBadConfig, i, v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("%w: joint sums to %v", ErrBadConfig, sum)
	}
	if c.Records <= 0 {
		return fmt.Errorf("%w: records = %d", ErrBadConfig, c.Records)
	}
	if c.Delta <= 0 || c.Delta > 1 {
		return fmt.Errorf("%w: delta = %v", ErrBadConfig, c.Delta)
	}
	if metrics.BoundFloor(c.Joint) > c.Delta+1e-12 {
		return fmt.Errorf("%w: delta = %v, joint prior mode = %v", ErrInfeasibleBound, c.Delta, metrics.BoundFloor(c.Joint))
	}
	return nil
}

// ErrUnrealizable reports that no feasible multi-dimensional individual
// could be constructed within the redraw budget.
var ErrUnrealizable = errors.New("core: could not realize a feasible multi-dimensional individual")

// OptimizeMulti runs the multi-dimensional search and returns its Pareto
// front. The loop mirrors Run: SPEA2 fitness and selection over the tuple
// genomes, attribute-wise crossover and mutation, blend-to-uniform repair of
// the record-level bound, and a privacy-indexed Ω set. Individuals are
// evaluated worker-parallel through per-worker Kronecker-factored
// workspaces; the output is bit-for-bit identical at every Workers setting.
func OptimizeMulti(cfg MultiConfig) (MultiResult, error) {
	if err := cfg.Validate(); err != nil {
		return MultiResult{}, err
	}
	if err := ctxErr(cfg.Context); err != nil {
		return MultiResult{}, cancelError(0, err)
	}
	cfg = cfg.withDefaults()
	rng := randx.New(cfg.Seed)
	omega := NewOmega(cfg.OmegaSize)
	ecfg := emoo.Config{KNearest: 1, Normalize: true}
	es := emoo.NewScratch()

	evaluations := 0
	// Per-worker scratch: each worker goroutine owns a factored workspace
	// and per-attribute scratch matrices; SetColumns validates exactly as
	// Genome.Matrix. Scratch contents are fully overwritten per individual,
	// so the dynamic item-to-worker assignment never affects results.
	scratch := make([]*multiScratch, cfg.Workers)
	for w := range scratch {
		scratch[w] = newMultiScratch(cfg.Sizes)
	}
	process := func(gs []Genome, sc *multiScratch) (MultiIndividual, bool) {
		if !materializeTuple(sc.mats, gs) {
			return MultiIndividual{}, false
		}
		if !meetJointBound(gs, sc, cfg) {
			return MultiIndividual{}, false
		}
		// Re-materialize after repair.
		if !materializeTuple(sc.mats, gs) {
			return MultiIndividual{}, false
		}
		ev, err := sc.jws.Evaluate(sc.mats, cfg.Joint, cfg.Records)
		if err != nil {
			return MultiIndividual{}, false
		}
		return MultiIndividual{Genomes: gs, Eval: ev}, true
	}

	randomTuple := func() []Genome {
		gs := make([]Genome, len(cfg.Sizes))
		for d, s := range cfg.Sizes {
			gs[d] = NewRandomGenome(s, rng)
		}
		return gs
	}

	realize := func(raw [][]Genome) ([]MultiIndividual, error) {
		out := make([]MultiIndividual, len(raw))
		oks := make([]bool, len(raw))
		parallelWork(cfg.Workers, len(raw), func(w, i int) {
			out[i], oks[i] = process(raw[i], scratch[w])
		})
		evaluations += len(raw)
		// Replace failures sequentially with worker 0's scratch and the
		// run's RNG, in index order — the redraw stream is then independent
		// of the worker count, exactly as in the 1-D realize.
		const maxRedraws = 5000
		redraws := 0
		for i := range out {
			for !oks[i] {
				if redraws++; redraws > maxRedraws {
					return nil, fmt.Errorf("%w (delta=%v)", ErrUnrealizable, cfg.Delta)
				}
				evaluations++
				out[i], oks[i] = process(randomTuple(), scratch[0])
			}
		}
		return out, nil
	}

	// Omega stores single-genome Individuals; adapt by flattening the tuple
	// into one concatenated genome for storage and keeping a side map. To
	// keep things simple and allocation-light we instead maintain our own
	// Ω keyed by privacy bins over MultiIndividuals.
	type bin struct {
		ind MultiIndividual
		set bool
	}
	bins := make([]bin, omega.Size())
	updateOmega := func(ind MultiIndividual) bool {
		if len(bins) == 0 {
			return false
		}
		i := int(ind.Eval.Privacy * float64(len(bins)))
		if i < 0 {
			i = 0
		}
		if i >= len(bins) {
			i = len(bins) - 1
		}
		if bins[i].set && bins[i].ind.Eval.Utility <= ind.Eval.Utility {
			return false
		}
		cl := MultiIndividual{Genomes: make([]Genome, len(ind.Genomes)), Eval: ind.Eval}
		for d, g := range ind.Genomes {
			cl.Genomes[d] = g.Clone()
		}
		bins[i] = bin{ind: cl, set: true}
		return true
	}

	// Memetic initialization: half the initial population is random, half
	// seeds the baseline one-parameter family (the same Warner diagonal on
	// every attribute, spread over its range) so the search starts from the
	// symmetric baseline and can only improve on it.
	raw := make([][]Genome, cfg.PopulationSize)
	for i := range raw {
		if i%2 == 0 {
			raw[i] = randomTuple()
			continue
		}
		p := 0.1 + 0.85*float64(i)/float64(cfg.PopulationSize)
		gs := make([]Genome, len(cfg.Sizes))
		for d, n := range cfg.Sizes {
			gs[d] = warnerLikeGenome(n, p)
		}
		raw[i] = gs
	}
	population, err := realize(raw)
	if err != nil {
		return MultiResult{}, err
	}
	var archive []MultiIndividual

	generations := 0
	var cancelErr error
	for gen := 0; gen < cfg.Generations; gen++ {
		if err := ctxErr(cfg.Context); err != nil {
			cancelErr = cancelError(gen, err)
			break
		}
		generations++
		union := append(append([]MultiIndividual{}, population...), archive...)
		pts := make([]pareto.Point, len(union))
		for i, ind := range union {
			pts[i] = ind.Point()
		}
		// fit aliases the scratch; it is consumed (selIdx) before the next
		// AssignFitness call overwrites it.
		fit := es.AssignFitness(pts, ecfg)
		selIdx, err := es.SelectEnvironment(pts, fit, cfg.ArchiveSize, ecfg)
		if err != nil {
			return MultiResult{}, err
		}
		nextArchive := make([]MultiIndividual, len(selIdx))
		for k, i := range selIdx {
			nextArchive[k] = union[i]
		}
		archivePts := make([]pareto.Point, len(nextArchive))
		for i, ind := range nextArchive {
			archivePts[i] = ind.Point()
		}
		archiveFit := es.AssignFitness(archivePts, ecfg)

		children := make([][]Genome, 0, cfg.PopulationSize)
		for len(children) < cfg.PopulationSize {
			pa := nextArchive[emoo.BinaryTournament(archiveFit, rng)]
			pb := nextArchive[emoo.BinaryTournament(archiveFit, rng)]
			c1 := make([]Genome, len(cfg.Sizes))
			c2 := make([]Genome, len(cfg.Sizes))
			for d := range cfg.Sizes {
				a, b, err := Crossover(pa.Genomes[d], pb.Genomes[d], rng)
				if err != nil {
					return MultiResult{}, err
				}
				c1[d], c2[d] = a, b
			}
			for _, child := range [][]Genome{c1, c2} {
				if len(children) >= cfg.PopulationSize {
					break
				}
				if rng.Float64() < cfg.MutationRate {
					d := rng.Intn(len(child))
					Mutate(child[d], MutationProportional, 1, rng)
					d = rng.Intn(len(child))
					Mutate(child[d], MutationProportional, 1, rng)
				}
				children = append(children, child)
			}
		}
		population, err = realize(children)
		if err != nil {
			return MultiResult{}, err
		}
		for _, ind := range population {
			updateOmega(ind)
		}
		for _, ind := range nextArchive {
			updateOmega(ind)
		}
		archive = nextArchive
	}

	// Output: Pareto front of Ω (or the archive when Ω is disabled).
	var all []MultiIndividual
	if len(bins) > 0 {
		for _, b := range bins {
			if b.set {
				all = append(all, b.ind)
			}
		}
	} else {
		all = archive
	}
	pts := make([]pareto.Point, len(all))
	for i, ind := range all {
		pts[i] = ind.Point()
	}
	idx := pareto.Front(pts)
	front := make([]MultiIndividual, 0, len(idx))
	for _, i := range idx {
		front = append(front, all[i])
	}
	return MultiResult{Front: front, Generations: generations, Evaluations: evaluations}, cancelErr
}

// warnerLikeGenome returns the constant-diagonal genome with diagonal p.
func warnerLikeGenome(n int, p float64) Genome {
	g := make(Genome, n)
	off := (1 - p) / float64(n-1)
	for i := range g {
		col := make([]float64, n)
		for j := range col {
			if i == j {
				col[j] = p
			} else {
				col[j] = off
			}
		}
		g[i] = col
	}
	return g
}

// multiScratch is one worker's exclusive evaluation state: the factored
// joint workspace plus per-attribute scratch matrices for materialization
// and for the repair bisection's blended candidates, with preallocated
// column buffers so a repair performs no steady-state allocations either.
type multiScratch struct {
	jws   *metrics.JointWorkspace
	mats  []*rr.Matrix
	blend []*rr.Matrix
	cols  [][][]float64
}

func newMultiScratch(sizes []int) *multiScratch {
	sc := &multiScratch{
		jws:   metrics.NewJointWorkspace(),
		mats:  make([]*rr.Matrix, len(sizes)),
		blend: make([]*rr.Matrix, len(sizes)),
		cols:  make([][][]float64, len(sizes)),
	}
	for d, n := range sizes {
		sc.mats[d] = rr.NewScratchMatrix(n)
		sc.blend[d] = rr.NewScratchMatrix(n)
		cols := make([][]float64, n)
		for i := range cols {
			cols[i] = make([]float64, n)
		}
		sc.cols[d] = cols
	}
	return sc
}

// materializeTuple writes each genome into its scratch matrix, validating as
// Genome.Matrix would.
func materializeTuple(ms []*rr.Matrix, gs []Genome) bool {
	for d, g := range gs {
		if err := ms[d].SetColumns(g); err != nil {
			return false
		}
	}
	return true
}

// meetJointBound enforces the record-level posterior bound: per-attribute
// slack repair cannot target a joint posterior, so the repair blends every
// attribute's genome toward its uniform matrix by a common factor found by
// bisection (at factor 1 the joint posteriors equal the joint prior, whose
// mode is below delta by Validate). Every posterior probe runs on the
// worker's factored workspace — two mode contractions and a sweep, no joint
// channel and no inverse — so the ~30 bisection probes per infeasible child
// stay off the allocator entirely. sc.mats must hold the materialized gs.
func meetJointBound(gs []Genome, sc *multiScratch, cfg MultiConfig) bool {
	if mp, err := sc.jws.MaxPosterior(sc.mats, cfg.Joint); err == nil && mp <= cfg.Delta+1e-12 {
		return true
	}
	worst := func(t float64) float64 {
		for d, g := range gs {
			n := g.N()
			u := 1 / float64(n)
			cols := sc.cols[d]
			for i, col := range g {
				ci := cols[i]
				for j, v := range col {
					ci[j] = (1-t)*v + t*u
				}
			}
			if err := sc.blend[d].SetColumns(cols); err != nil {
				return math.Inf(1)
			}
		}
		mp, err := sc.jws.MaxPosterior(sc.blend, cfg.Joint)
		if err != nil {
			return math.Inf(1)
		}
		return mp
	}
	if worst(1) > cfg.Delta+1e-12 {
		return false
	}
	lo, hi := 0.0, 1.0
	for iter := 0; iter < 30; iter++ {
		mid := (lo + hi) / 2
		if worst(mid) <= cfg.Delta+1e-12 {
			hi = mid
		} else {
			lo = mid
		}
	}
	for _, g := range gs {
		u := 1 / float64(g.N())
		for _, col := range g {
			for j := range col {
				col[j] = (1-hi)*col[j] + hi*u
			}
		}
	}
	return true
}
