package core

import (
	"errors"
	"math"
	"runtime"
	"testing"

	"optrr/internal/metrics"
	"optrr/internal/obs"
	"optrr/internal/pareto"
	"optrr/internal/rr"
)

// testPrior is a small skewed prior keeping optimizer tests fast.
func testPrior() []float64 { return []float64{0.35, 0.25, 0.2, 0.12, 0.08} }

// quickConfig returns a config sized for unit tests (sub-second runs).
func quickConfig() Config {
	cfg := DefaultConfig(testPrior(), 5000, 0.8)
	cfg.PopulationSize = 16
	cfg.ArchiveSize = 16
	cfg.OmegaSize = 200
	cfg.Generations = 60
	cfg.Seed = 42
	cfg.Workers = 2
	return cfg
}

func TestConfigValidate(t *testing.T) {
	base := quickConfig()
	if err := base.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
		want   error
	}{
		{"short prior", func(c *Config) { c.Prior = []float64{1} }, ErrBadConfig},
		{"bad prior sum", func(c *Config) { c.Prior = []float64{0.5, 0.6} }, ErrBadConfig},
		{"negative prior", func(c *Config) { c.Prior = []float64{-0.2, 1.2} }, ErrBadConfig},
		{"records", func(c *Config) { c.Records = 0 }, ErrBadConfig},
		{"delta zero", func(c *Config) { c.Delta = 0 }, ErrBadConfig},
		{"delta big", func(c *Config) { c.Delta = 1.5 }, ErrBadConfig},
		{"delta below mode", func(c *Config) { c.Delta = 0.2 }, ErrInfeasibleBound},
		{"mutation rate", func(c *Config) { c.MutationRate = 1.5 }, ErrBadConfig},
		{"negative size", func(c *Config) { c.Generations = -1 }, ErrBadConfig},
	}
	for _, c := range cases {
		cfg := quickConfig()
		c.mutate(&cfg)
		if err := cfg.Validate(); !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	cfg := quickConfig()
	cfg.Delta = 0.1
	if _, err := New(cfg); !errors.Is(err, ErrInfeasibleBound) {
		t.Fatalf("err = %v, want ErrInfeasibleBound", err)
	}
}

func TestRunProducesFeasibleFront(t *testing.T) {
	opt, err := New(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty front")
	}
	if res.Generations != 60 {
		t.Fatalf("generations = %d, want 60", res.Generations)
	}
	prior := testPrior()
	for _, ind := range res.Front {
		if !ind.Genome.Valid() {
			t.Fatal("front genome not column-stochastic")
		}
		m, err := ind.Genome.Matrix()
		if err != nil {
			t.Fatal(err)
		}
		mp, err := metrics.MaxPosterior(m, prior)
		if err != nil {
			t.Fatal(err)
		}
		if mp > 0.8+1e-9 {
			t.Fatalf("front member violates bound: max posterior %v", mp)
		}
		// Cached evaluation must match a recomputation.
		ev, err := metrics.Evaluate(m, prior, 5000)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ev.Privacy-ind.Eval.Privacy) > 1e-12 || math.Abs(ev.Utility-ind.Eval.Utility) > 1e-12 {
			t.Fatalf("stale evaluation cached: %+v vs %+v", ind.Eval, ev)
		}
	}
}

func TestRunFrontIsMutuallyNonDominated(t *testing.T) {
	opt, err := New(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Run()
	if err != nil {
		t.Fatal(err)
	}
	pts := res.FrontPoints()
	for i := range pts {
		for j := range pts {
			if i != j && pts[i].Dominates(pts[j]) {
				t.Fatalf("front point %v dominates %v", pts[i], pts[j])
			}
		}
	}
	// FrontPoints is sorted by privacy.
	for i := 1; i < len(pts); i++ {
		if pts[i].Privacy < pts[i-1].Privacy {
			t.Fatal("front points not sorted by privacy")
		}
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	// Workers share nothing but their private scratch (workerScratch), so
	// fronts AND every telemetry counter driven by the evaluation path must
	// be identical regardless of parallelism.
	run := func(workers int) ([]pareto.Point, int, map[string]string) {
		cfg := quickConfig()
		cfg.Workers = workers
		reg := obs.NewRegistry()
		cfg.Metrics = reg
		opt, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := opt.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.FrontPoints(), res.Evaluations, reg.Snapshot()
	}
	a, evalsA, snapA := run(1)
	for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
		b, evalsB, snapB := run(workers)
		if len(a) != len(b) {
			t.Fatalf("front sizes differ across worker counts 1 vs %d: %d vs %d", workers, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("front differs across worker counts at %d: %v vs %v", i, a[i], b[i])
			}
		}
		if evalsA != evalsB {
			t.Fatalf("evaluation counts differ across worker counts: %d vs %d", evalsA, evalsB)
		}
		for _, name := range []string{
			"optimizer.evaluations", "optimizer.repairs", "optimizer.redraws",
			"optimizer.rejects", "optimizer.repair_push_back",
		} {
			if snapA[name] != snapB[name] {
				t.Fatalf("telemetry %q differs across worker counts: %s vs %s", name, snapA[name], snapB[name])
			}
		}
	}
}

func TestRunSameSeedSameResult(t *testing.T) {
	run := func() []pareto.Point {
		opt, err := New(quickConfig())
		if err != nil {
			t.Fatal(err)
		}
		res, err := opt.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.FrontPoints()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("front sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("results differ at %d", i)
		}
	}
}

func TestRunDifferentSeedsDiffer(t *testing.T) {
	run := func(seed uint64) []pareto.Point {
		cfg := quickConfig()
		cfg.Seed = seed
		opt, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := opt.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.FrontPoints()
	}
	a, b := run(1), run(2)
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical fronts")
	}
}

func TestRunStagnationTermination(t *testing.T) {
	cfg := quickConfig()
	cfg.Generations = 100000
	cfg.StagnationLimit = 5
	opt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stagnated {
		t.Fatal("run did not stop on stagnation")
	}
	if res.Generations >= 100000 {
		t.Fatal("stagnation limit ignored")
	}
}

func TestRunProgressCallback(t *testing.T) {
	cfg := quickConfig()
	cfg.Generations = 10
	var gens []int
	cfg.Progress = func(s Stats) {
		gens = append(gens, s.Generation)
		if s.ArchiveSize == 0 {
			t.Error("progress reported empty archive")
		}
		if s.Evaluations <= 0 {
			t.Error("progress reported no evaluations")
		}
	}
	opt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := opt.Run(); err != nil {
		t.Fatal(err)
	}
	if len(gens) != 10 {
		t.Fatalf("progress called %d times, want 10", len(gens))
	}
	for i, g := range gens {
		if g != i {
			t.Fatalf("generations out of order: %v", gens)
		}
	}
}

func TestRunOmegaDisabledUsesArchive(t *testing.T) {
	cfg := quickConfig()
	cfg.OmegaSize = -1 // negative also disables
	cfg.OmegaSize = 0
	opt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 {
		t.Fatal("ablation run produced empty front")
	}
	if len(res.Front) > cfg.ArchiveSize {
		t.Fatalf("front (%d) exceeds archive capacity (%d) with Omega disabled", len(res.Front), cfg.ArchiveSize)
	}
}

// TestOmegaWidensFront is the ablation claim of DESIGN.md: with the optimal
// set enabled, the output front is at least as large and covers at least the
// privacy range of the plain-SPEA2 run.
func TestOmegaWidensFront(t *testing.T) {
	run := func(omega int) []pareto.Point {
		cfg := quickConfig()
		cfg.OmegaSize = omega
		cfg.Generations = 120
		opt, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := opt.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.FrontPoints()
	}
	with := run(500)
	without := run(0)
	if len(with) < len(without) {
		t.Fatalf("Omega produced a smaller front: %d vs %d", len(with), len(without))
	}
}

func TestRunSymmetricOnly(t *testing.T) {
	cfg := quickConfig()
	cfg.SymmetricOnly = true
	opt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, ind := range res.Front {
		g := ind.Genome
		for i := range g {
			for j := range g {
				if math.Abs(g[i][j]-g[j][i]) > 1e-6 {
					t.Fatalf("SymmetricOnly front contains asymmetric matrix (%d,%d)", i, j)
				}
			}
		}
	}
}

func TestRunBoundReject(t *testing.T) {
	cfg := quickConfig()
	cfg.BoundMode = BoundReject
	cfg.Generations = 30
	opt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Run()
	if err != nil {
		t.Fatal(err)
	}
	prior := testPrior()
	for _, ind := range res.Front {
		m, err := ind.Genome.Matrix()
		if err != nil {
			t.Fatal(err)
		}
		ok, err := metrics.MeetsBound(m, prior, cfg.Delta)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatal("reject mode emitted a bound-violating matrix")
		}
	}
}

func TestRunNSGA2Engine(t *testing.T) {
	cfg := quickConfig()
	cfg.Engine = EngineNSGA2
	opt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 {
		t.Fatal("NSGA-II run produced empty front")
	}
	prior := testPrior()
	for _, ind := range res.Front {
		m, err := ind.Genome.Matrix()
		if err != nil {
			t.Fatal(err)
		}
		mp, err := metrics.MaxPosterior(m, prior)
		if err != nil {
			t.Fatal(err)
		}
		if mp > cfg.Delta+1e-9 {
			t.Fatal("NSGA-II front member violates the bound")
		}
	}
	// Engine selection must change the trajectory (different fronts).
	spea, err := New(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	speaRes, err := spea.Run()
	if err != nil {
		t.Fatal(err)
	}
	same := len(res.Front) == len(speaRes.Front)
	if same {
		for i := range res.Front {
			if !evalsEqual(res.Front[i].Eval, speaRes.Front[i].Eval) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("NSGA-II produced a byte-identical front to SPEA2; engine switch inert?")
	}
}

func TestRunCustomPrivacyFn(t *testing.T) {
	cfg := quickConfig()
	gain := metrics.OrdinalGain(len(cfg.Prior))
	cfg.PrivacyFn = func(m *rr.Matrix, p []float64) (float64, error) {
		return metrics.PrivacyWithGain(m, p, gain)
	}
	opt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 {
		t.Fatal("custom-privacy run produced empty front")
	}
	prior := testPrior()
	for _, ind := range res.Front {
		m, err := ind.Genome.Matrix()
		if err != nil {
			t.Fatal(err)
		}
		// The cached privacy must be the custom metric, not Equation 8.
		want, err := metrics.PrivacyWithGain(m, prior, gain)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ind.Eval.Privacy-want) > 1e-12 {
			t.Fatalf("cached privacy %v is not the custom metric %v", ind.Eval.Privacy, want)
		}
		// The δ bound is enforced regardless of the objective override.
		mp, err := metrics.MaxPosterior(m, prior)
		if err != nil {
			t.Fatal(err)
		}
		if mp > cfg.Delta+1e-9 {
			t.Fatal("bound violated under custom privacy metric")
		}
	}
}

func TestRunNaiveMutation(t *testing.T) {
	cfg := quickConfig()
	cfg.MutationStyle = MutationNaive
	cfg.Generations = 30
	opt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 {
		t.Fatal("naive-mutation run produced empty front")
	}
}

func TestResultMatrices(t *testing.T) {
	opt, err := New(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Run()
	if err != nil {
		t.Fatal(err)
	}
	ms, err := res.Matrices()
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != len(res.Front) {
		t.Fatalf("matrices = %d, front = %d", len(ms), len(res.Front))
	}
	for _, m := range ms {
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestOptRRDominatesWarner is the headline claim (Section VI): the optimized
// front must weakly dominate a dense Warner sweep under the same bound, and
// never be dominated by it.
func TestOptRRDominatesWarner(t *testing.T) {
	prior := testPrior()
	const records = 5000
	const delta = 0.8
	ms, err := rr.WarnerSweep(len(prior), 200)
	if err != nil {
		t.Fatal(err)
	}
	var warner []pareto.Point
	for _, m := range ms {
		ok, err := metrics.MeetsBound(m, prior, delta)
		if err != nil || !ok {
			continue
		}
		ev, err := metrics.Evaluate(m, prior, records)
		if err != nil {
			continue
		}
		warner = append(warner, pareto.Point{Privacy: ev.Privacy, Utility: ev.Utility})
	}
	warnerFront := pareto.FrontPoints(warner)

	cfg := DefaultConfig(prior, records, delta)
	cfg.PopulationSize = 24
	cfg.ArchiveSize = 24
	cfg.Generations = 400
	cfg.OmegaSize = 500
	cfg.Seed = 7
	opt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Run()
	if err != nil {
		t.Fatal(err)
	}
	front := res.FrontPoints()

	if cov := pareto.Coverage(warnerFront, front); cov > 0.02 {
		t.Fatalf("Warner covers %.2f of the OptRR front; OptRR should be undominated", cov)
	}
	if cov := pareto.Coverage(front, warnerFront); cov < 0.5 {
		t.Fatalf("OptRR covers only %.2f of the Warner front", cov)
	}
}

func BenchmarkGeneration(b *testing.B) {
	prior := testPrior()
	cfg := DefaultConfig(prior, 10000, 0.8)
	cfg.PopulationSize = 40
	cfg.ArchiveSize = 40
	cfg.Generations = b.N
	cfg.Seed = 1
	opt, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if _, err := opt.Run(); err != nil {
		b.Fatal(err)
	}
}
