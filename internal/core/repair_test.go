package core

import (
	"testing"
	"testing/quick"

	"optrr/internal/metrics"
	"optrr/internal/randx"
)

func normalish(n int) []float64 {
	// A bell-ish prior for repair tests.
	w := make([]float64, n)
	var sum float64
	for i := range w {
		d := float64(i) - float64(n-1)/2
		w[i] = 1 / (1 + d*d)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

func maxPosteriorOf(t *testing.T, g Genome, prior []float64) float64 {
	t.Helper()
	m, err := g.Matrix()
	if err != nil {
		t.Fatalf("genome invalid after repair: %v", err)
	}
	mp, err := metrics.MaxPosterior(m, prior)
	if err != nil {
		t.Fatal(err)
	}
	return mp
}

func TestMeetBoundAchievesBound(t *testing.T) {
	prior := normalish(8)
	r := randx.New(1)
	for _, delta := range []float64{0.5, 0.6, 0.75, 0.9} {
		for trial := 0; trial < 50; trial++ {
			g := NewRandomGenome(8, r)
			// Sharpen aggressively so most trials start in violation.
			for k := 0; k < 10; k++ {
				Mutate(g, MutationProportional, 1, r)
			}
			if !MeetBound(g, prior, delta, false) {
				t.Fatalf("repair failed at delta=%v", delta)
			}
			if !g.Valid() {
				t.Fatalf("repair broke stochasticity at delta=%v", delta)
			}
			if mp := maxPosteriorOf(t, g, prior); mp > delta+1e-9 {
				t.Fatalf("delta=%v: max posterior %v after repair", delta, mp)
			}
		}
	}
}

func TestMeetBoundNoOpWhenAlreadyFeasible(t *testing.T) {
	prior := normalish(5)
	// The totally-random genome has posterior equal to the prior everywhere.
	g := make(Genome, 5)
	for i := range g {
		col := make([]float64, 5)
		for j := range col {
			col[j] = 0.2
		}
		g[i] = col
	}
	before := g.Clone()
	if !MeetBound(g, prior, 0.9, false) {
		t.Fatal("feasible genome reported unrepairable")
	}
	for i := range g {
		if !equalCol(g[i], before[i]) {
			t.Fatal("repair modified an already-feasible genome")
		}
	}
}

func TestMeetBoundInfeasibleDelta(t *testing.T) {
	prior := []float64{0.7, 0.2, 0.1}
	g := NewRandomGenome(3, randx.New(2))
	// Theorem 5: delta below the prior mode (0.7) is unachievable.
	if MeetBound(g, prior, 0.5, false) {
		t.Fatal("repair claimed success below the prior mode")
	}
}

func TestMeetBoundDeltaEdgeCases(t *testing.T) {
	prior := normalish(4)
	g := NewRandomGenome(4, randx.New(3))
	if MeetBound(g, prior, 0, false) {
		t.Fatal("delta = 0 accepted")
	}
	if MeetBound(g, prior, -0.5, false) {
		t.Fatal("negative delta accepted")
	}
	if !MeetBound(g, prior, 1, false) {
		t.Fatal("delta = 1 must always hold")
	}
	if MeetBound(g, []float64{0.5, 0.5}, 0.8, false) {
		t.Fatal("prior length mismatch accepted")
	}
}

func TestMeetBoundSymmetric(t *testing.T) {
	prior := normalish(6)
	r := randx.New(4)
	for trial := 0; trial < 30; trial++ {
		g := NewRandomGenome(6, r)
		g.Symmetrize()
		if !MeetBound(g, prior, 0.7, true) {
			t.Fatal("symmetric repair failed")
		}
		if !g.Valid() {
			t.Fatal("symmetric repair broke stochasticity")
		}
		for i := 0; i < 6; i++ {
			for j := 0; j < 6; j++ {
				if d := g[i][j] - g[j][i]; d > 1e-6 || d < -1e-6 {
					t.Fatalf("repair broke symmetry at (%d,%d)", i, j)
				}
			}
		}
		if mp := maxPosteriorOf(t, g, prior); mp > 0.7+1e-9 {
			t.Fatalf("symmetric repair left max posterior %v", mp)
		}
	}
}

// TestMeetBoundNearDeterministicStart exercises the directed-dilution
// behaviour: starting close to the identity (which maximally violates any
// delta < 1), the repair must still land under the bound with a valid,
// usable genome.
func TestMeetBoundNearDeterministicStart(t *testing.T) {
	prior := normalish(6)
	for _, delta := range []float64{0.6, 0.8, 0.95} {
		g := make(Genome, 6)
		for i := range g {
			col := make([]float64, 6)
			for j := range col {
				if i == j {
					col[j] = 0.95
				} else {
					col[j] = 0.01
				}
			}
			g[i] = col
		}
		if !MeetBound(g, prior, delta, false) {
			t.Fatalf("repair failed from near-identity at delta=%v", delta)
		}
		if mp := maxPosteriorOf(t, g, prior); mp > delta+1e-9 {
			t.Fatalf("delta=%v: max posterior %v", delta, mp)
		}
	}
}

// TestPropertyMeetBound: for any random genome and any achievable delta,
// repair succeeds, preserves stochasticity and meets the bound (Theorem 5
// permitting).
func TestPropertyMeetBound(t *testing.T) {
	f := func(seed uint64, nRaw uint8, dRaw uint8) bool {
		n := int(nRaw%6) + 2
		r := randx.New(seed)
		prior := make([]float64, n)
		var sum float64
		for i := range prior {
			prior[i] = r.Float64() + 0.05
			sum += prior[i]
		}
		for i := range prior {
			prior[i] /= sum
		}
		floor := metrics.BoundFloor(prior)
		// Pick delta in (floor, 1).
		delta := floor + (1-floor)*(0.05+0.9*float64(dRaw)/255)
		g := NewRandomGenome(n, r)
		for k := 0; k < 5; k++ {
			Mutate(g, MutationProportional, 1, r)
		}
		if !MeetBound(g, prior, delta, false) {
			return false
		}
		if !g.Valid() {
			return false
		}
		m, err := g.Matrix()
		if err != nil {
			return false
		}
		mp, err := metrics.MaxPosterior(m, prior)
		if err != nil {
			return false
		}
		return mp <= delta+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMeetBound(b *testing.B) {
	prior := normalish(10)
	r := randx.New(1)
	genomes := make([]Genome, 64)
	for i := range genomes {
		genomes[i] = NewRandomGenome(10, r)
		for k := 0; k < 10; k++ {
			Mutate(genomes[i], MutationProportional, 1, r)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := genomes[i%len(genomes)].Clone()
		MeetBound(g, prior, 0.7, false)
	}
}
