package core

import (
	"optrr/internal/metrics"
	"optrr/internal/pareto"
)

// Individual couples a genome with its objective-space evaluation.
type Individual struct {
	Genome Genome
	Eval   metrics.Evaluation
}

// Point returns the individual's image in objective space: the canonical
// privacy/utility pair plus any configured extra objectives (already in
// canonical minimized form, see metrics.Evaluation.Extra).
func (ind Individual) Point() pareto.Point {
	return pareto.NewPoint(ind.Eval.Privacy, ind.Eval.Utility, ind.Eval.Extra...)
}

// Omega is the paper's "optimal set" (Section V-H): a large archive indexed
// by privacy value that collects good matrices the bounded population and
// archive would otherwise discard. Privacy lives in [0, 1); an Omega of size
// S buckets it into S equal bins, each remembering the matrix with the best
// (lowest) utility seen for that privacy level. Updates are O(1), so Omega
// can be much larger than the evolving sets without affecting the cubic
// environmental-selection cost.
type Omega struct {
	bins []*Individual

	// Cumulative churn counters: inserts counts every entry stored (first
	// occupation or replacement of a bin), evictions counts the subset that
	// displaced an existing entry. inserts − evictions is therefore the
	// number of occupied bins. The convergence telemetry diffs these across
	// generations — high eviction rates mean the search is still reshuffling
	// the optimal set, a churn signal the paper's Section V-H update has no
	// other way to expose.
	inserts   int
	evictions int
}

// NewOmega returns an optimal set with the given number of privacy bins.
// Size 0 disables the set (every operation becomes a no-op), which is the
// paper-vs-plain-SPEA2 ablation switch.
func NewOmega(size int) *Omega {
	if size <= 0 {
		return &Omega{}
	}
	return &Omega{bins: make([]*Individual, size)}
}

// Enabled reports whether the set is active.
func (o *Omega) Enabled() bool { return len(o.bins) > 0 }

// Size returns the number of privacy bins.
func (o *Omega) Size() int { return len(o.bins) }

// Len returns the number of occupied bins.
func (o *Omega) Len() int {
	n := 0
	for _, b := range o.bins {
		if b != nil {
			n++
		}
	}
	return n
}

// binIndex maps a privacy value to its bin. Values outside [0, 1) clamp.
func (o *Omega) binIndex(privacy float64) int {
	i := int(privacy * float64(len(o.bins)))
	if i < 0 {
		return 0
	}
	if i >= len(o.bins) {
		return len(o.bins) - 1
	}
	return i
}

// Update offers an individual to the set; the individual is stored (cloned)
// if its bin is empty or it improves the bin's utility. It reports whether
// the set changed. The rule is deliberately unchanged under extra
// objectives: bins index privacy and keep the utility-best entry exactly as
// in the paper, so the canonical search is bit-for-bit stable; extras enter
// through FrontSnapshot, whose dominance filter runs over the full k-dim
// points.
func (o *Omega) Update(ind Individual) bool {
	if !o.Enabled() {
		return false
	}
	i := o.binIndex(ind.Eval.Privacy)
	cur := o.bins[i]
	if cur != nil && cur.Eval.Utility <= ind.Eval.Utility {
		return false
	}
	if cur != nil {
		o.evictions++
	}
	o.inserts++
	clone := Individual{Genome: ind.Genome.Clone(), Eval: ind.Eval}
	o.bins[i] = &clone
	return true
}

// Churn returns the cumulative insert and eviction counts since
// construction. Per-generation churn is the difference between two
// consecutive readings.
func (o *Omega) Churn() (inserts, evictions int) {
	return o.inserts, o.evictions
}

// UpdateAll offers every individual and returns how many bins improved.
func (o *Omega) UpdateAll(inds []Individual) int {
	changed := 0
	for _, ind := range inds {
		if o.Update(ind) {
			changed++
		}
	}
	return changed
}

// Fold offers every occupied entry of src to o under the normal Update rule
// and returns how many bins improved. Unlike UpdateAll over src.Snapshot()
// it clones nothing up front — only entries that actually land in a bin pay
// for a copy — which keeps the island-model epoch fold cheap.
func (o *Omega) Fold(src *Omega) int {
	changed := 0
	for _, b := range src.bins {
		if b != nil && o.Update(*b) {
			changed++
		}
	}
	return changed
}

// ImproveArchive is the reverse direction of the paper's three-set update:
// each archive member whose privacy bin holds a strictly better (lower
// utility) Ω entry is replaced by a clone of that entry. It returns the
// number of replacements.
func (o *Omega) ImproveArchive(archive []Individual) int {
	if !o.Enabled() {
		return 0
	}
	replaced := 0
	for k := range archive {
		i := o.binIndex(archive[k].Eval.Privacy)
		best := o.bins[i]
		if best != nil && best.Eval.Utility < archive[k].Eval.Utility {
			archive[k] = Individual{Genome: best.Genome.Clone(), Eval: best.Eval}
			replaced++
		}
	}
	return replaced
}

// Snapshot returns the occupied entries (cloned), ordered by bin (ascending
// privacy).
func (o *Omega) Snapshot() []Individual {
	var out []Individual
	for _, b := range o.bins {
		if b != nil {
			out = append(out, Individual{Genome: b.Genome.Clone(), Eval: b.Eval})
		}
	}
	return out
}

// FrontSnapshot returns the Pareto-optimal subset of the occupied entries,
// sorted by ascending privacy — the paper's final output.
func (o *Omega) FrontSnapshot() []Individual {
	refs := o.frontRefs()
	out := make([]Individual, len(refs))
	for i, ind := range refs {
		out[i] = Individual{Genome: ind.Genome.Clone(), Eval: ind.Eval}
	}
	return out
}

// spread returns k occupied entries evenly spaced across the privacy bins,
// without cloning — the cheap privacy-diverse sample the island migration
// exports. Unlike frontRefs it skips the O(n²) dominance filter: bins
// already hold the utility-best entry per privacy level, so an evenly
// spaced pick is near-optimal at O(bins) cost. The returned genomes alias
// the live bins and must be cloned before retention.
func (o *Omega) spread(k int) []Individual {
	var all []Individual
	for _, b := range o.bins {
		if b != nil {
			all = append(all, *b)
		}
	}
	if len(all) <= k || k < 2 {
		return all
	}
	out := make([]Individual, 0, k)
	for j := 0; j < k; j++ {
		out = append(out, all[j*(len(all)-1)/(k-1)])
	}
	return out
}

// frontRefs is FrontSnapshot without the clones: the returned genomes alias
// the live bins, so callers must either not retain them past the next Update
// or clone what they keep.
func (o *Omega) frontRefs() []Individual {
	var all []Individual
	for _, b := range o.bins {
		if b != nil {
			all = append(all, *b)
		}
	}
	pts := make([]pareto.Point, len(all))
	for i, ind := range all {
		pts[i] = ind.Point()
	}
	idx := pareto.Front(pts)
	out := make([]Individual, 0, len(idx))
	for _, i := range idx {
		out = append(out, all[i])
	}
	return out
}
