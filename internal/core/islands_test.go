package core

import (
	"math"
	"runtime"
	"sync"
	"testing"

	"optrr/internal/metrics"
	"optrr/internal/obs"
	"optrr/internal/pareto"
)

// islandConfig is quickConfig scaled up enough for four islands to have
// meaningful sub-populations.
func islandConfig() Config {
	cfg := DefaultConfig(testPrior(), 5000, 0.8)
	cfg.PopulationSize = 48
	cfg.ArchiveSize = 48
	cfg.OmegaSize = 200
	cfg.Generations = 60
	cfg.Seed = 42
	cfg.Islands = 4
	cfg.MigrateEvery = 15
	return cfg
}

// frontKey flattens a result front for bit-for-bit comparison.
func frontKey(res Result) []float64 {
	var key []float64
	for _, ind := range res.Front {
		key = append(key, ind.Eval.Privacy, ind.Eval.Utility)
		for _, col := range ind.Genome {
			key = append(key, col...)
		}
	}
	return key
}

// TestIslandsSeededReproducible pins the island-mode determinism contract:
// a fixed (Seed, Islands, MigrateEvery, MigrationSize) reproduces the front
// bit-for-bit, and changing the seed changes it.
func TestIslandsSeededReproducible(t *testing.T) {
	run := func(seed uint64) Result {
		cfg := islandConfig()
		cfg.Seed = seed
		opt, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := opt.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(42), run(42)
	ka, kb := frontKey(a), frontKey(b)
	if len(ka) == 0 || len(ka) != len(kb) {
		t.Fatalf("front keys differ in size: %d vs %d", len(ka), len(kb))
	}
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("same-seed island runs differ at %d: %v vs %v", i, ka[i], kb[i])
		}
	}
	c := run(43)
	kc := frontKey(c)
	if len(kc) == len(ka) {
		same := true
		for i := range ka {
			if ka[i] != kc[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical island fronts")
		}
	}
}

// TestIslandsIndependentOfWorkers: the island result depends on the island
// topology, never on how many evaluation workers each island happens to get.
func TestIslandsIndependentOfWorkers(t *testing.T) {
	run := func(workers int) []float64 {
		cfg := islandConfig()
		cfg.Workers = workers
		opt, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := opt.Run()
		if err != nil {
			t.Fatal(err)
		}
		return frontKey(res)
	}
	want := run(1)
	for _, w := range []int{4, 8, runtime.GOMAXPROCS(0)} {
		got := run(w)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: front key size %d, want %d", w, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: island front differs at %d", w, i)
			}
		}
	}
}

// TestIslandFrontFeasible sweeps seeds and island shapes: every front
// member must be a valid column-stochastic matrix meeting the δ bound, the
// front must be mutually non-dominated, and the cached evaluations fresh —
// migration and Ω folding must never leak an invalid or stale individual.
func TestIslandFrontFeasible(t *testing.T) {
	prior := testPrior()
	for _, tc := range []struct {
		seed     uint64
		islands  int
		interval int
	}{
		{1, 2, 10},
		{2, 3, 7},
		{3, 4, 25},
		{4, 5, 13},
	} {
		cfg := islandConfig()
		cfg.Seed = tc.seed
		cfg.Islands = tc.islands
		cfg.MigrateEvery = tc.interval
		cfg.Generations = 40
		opt, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := opt.Run()
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Front) == 0 {
			t.Fatalf("seed=%d islands=%d: empty front", tc.seed, tc.islands)
		}
		pts := res.FrontPoints()
		for i := range pts {
			for j := range pts {
				if i != j && pts[i].Dominates(pts[j]) {
					t.Fatalf("seed=%d islands=%d: front point %v dominates %v", tc.seed, tc.islands, pts[i], pts[j])
				}
			}
		}
		for _, ind := range res.Front {
			if !ind.Genome.Valid() {
				t.Fatalf("seed=%d islands=%d: front genome not column-stochastic", tc.seed, tc.islands)
			}
			m, err := ind.Genome.Matrix()
			if err != nil {
				t.Fatal(err)
			}
			mp, err := metrics.MaxPosterior(m, prior)
			if err != nil {
				t.Fatal(err)
			}
			if mp > cfg.Delta+1e-9 {
				t.Fatalf("seed=%d islands=%d: front member violates bound: max posterior %v", tc.seed, tc.islands, mp)
			}
			ev, err := metrics.Evaluate(m, prior, cfg.Records)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(ev.Privacy-ind.Eval.Privacy) > 1e-12 || math.Abs(ev.Utility-ind.Eval.Utility) > 1e-12 {
				t.Fatalf("stale evaluation cached: %+v vs %+v", ind.Eval, ev)
			}
		}
	}
}

// TestIslandHypervolumeNoWorseThanSerial is the front-quality gate from the
// convergence indicators: on the pinned config the island-mode front's
// hypervolume must reach the serial front's within tolerance — islands
// restructure the search, they must not degrade it.
func TestIslandHypervolumeNoWorseThanSerial(t *testing.T) {
	serialCfg := islandConfig()
	serialCfg.Islands = 0
	serialOpt, err := New(serialCfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := serialOpt.referenceUtility()
	serialRes, err := serialOpt.Run()
	if err != nil {
		t.Fatal(err)
	}
	serialHV := pareto.Hypervolume(serialRes.FrontPoints(), 0, ref)

	islandOpt, err := New(islandConfig())
	if err != nil {
		t.Fatal(err)
	}
	islandRes, err := islandOpt.Run()
	if err != nil {
		t.Fatal(err)
	}
	islandHV := pareto.Hypervolume(islandRes.FrontPoints(), 0, ref)

	const tolerance = 0.05 // relative
	if islandHV < serialHV*(1-tolerance) {
		t.Fatalf("island hypervolume %v below serial %v − %v%%", islandHV, serialHV, tolerance*100)
	}
}

// captureRecorder collects events for trace assertions.
type captureRecorder struct {
	mu     sync.Mutex
	events []string
	fields []obs.Fields
}

func (r *captureRecorder) Enabled() bool { return true }

func (r *captureRecorder) Record(event string, fields obs.Fields) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, event)
	r.fields = append(r.fields, fields)
}

// TestIslandTraceEvents checks the island observability seam: the top-level
// start event carries the island topology, migrations are recorded, and
// per-island events arrive under the "optimizer.island." prefix with an
// island tag.
func TestIslandTraceEvents(t *testing.T) {
	rec := &captureRecorder{}
	cfg := islandConfig()
	cfg.Generations = 30
	cfg.Recorder = rec
	opt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := opt.Run(); err != nil {
		t.Fatal(err)
	}
	var starts, migrations, islandGens, dones int
	islandsSeen := map[int]bool{}
	for i, ev := range rec.events {
		switch ev {
		case "optimizer.start":
			starts++
			if got, _ := rec.fields[i]["islands"].(int); got != 4 {
				t.Fatalf("start event islands = %v, want 4", rec.fields[i]["islands"])
			}
			if got, _ := rec.fields[i]["migrate_every"].(int); got != 15 {
				t.Fatalf("start event migrate_every = %v, want 15", rec.fields[i]["migrate_every"])
			}
		case "optimizer.migration":
			migrations++
		case "optimizer.island.generation":
			islandGens++
			if idx, ok := rec.fields[i]["island"].(int); ok {
				islandsSeen[idx] = true
			}
		case "optimizer.done":
			dones++
		}
	}
	if starts != 1 {
		t.Fatalf("optimizer.start events = %d, want 1", starts)
	}
	if dones != 1 {
		t.Fatalf("optimizer.done events = %d, want 1", dones)
	}
	if migrations == 0 {
		t.Fatal("no optimizer.migration events")
	}
	if islandGens != 4*30 {
		t.Fatalf("island generation events = %d, want %d", islandGens, 4*30)
	}
	if len(islandsSeen) != 4 {
		t.Fatalf("island tags seen = %v, want all of 0..3", islandsSeen)
	}
}

// TestClosedFormSeeds pins the Holohan anchor family: the grid is dealt
// round-robin across islands with nothing dropped (when capacity allows),
// and every seed genome is the valid constant-diagonal k-RR matrix of its ε.
func TestClosedFormSeeds(t *testing.T) {
	const n, islands = 5, 3
	total := 0
	for i := 0; i < islands; i++ {
		seeds := closedFormSeeds(n, i, islands, 10)
		total += len(seeds)
		for _, g := range seeds {
			if !g.Valid() {
				t.Fatal("closed-form seed not column-stochastic")
			}
			diag := g[0][0]
			for c := range g {
				for r := range g[c] {
					want := (1 - diag) / float64(n-1)
					if r == c {
						want = diag
					}
					if math.Abs(g[c][r]-want) > 1e-15 {
						t.Fatalf("seed entry [%d][%d] = %v, want %v", c, r, g[c][r], want)
					}
				}
			}
			if diag <= 1.0/float64(n) || diag >= 1 {
				t.Fatalf("seed diagonal %v outside (1/n, 1)", diag)
			}
		}
	}
	if total != len(closedFormEpsilons) {
		t.Fatalf("dealt %d seeds across islands, want %d", total, len(closedFormEpsilons))
	}
	if got := closedFormSeeds(n, 0, 1, 2); len(got) != 2 {
		t.Fatalf("capacity cap ignored: got %d seeds, want 2", len(got))
	}
}

// TestValidateIslandConfig: negative island parameters are rejected;
// Islands 0/1 run the plain path.
func TestValidateIslandConfig(t *testing.T) {
	for _, mutate := range []func(*Config){
		func(c *Config) { c.Islands = -1 },
		func(c *Config) { c.MigrateEvery = -5 },
		func(c *Config) { c.MigrationSize = -2 },
	} {
		cfg := quickConfig()
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Fatal("negative island parameter accepted")
		}
	}
}

// TestIslandsOmegaDisabled: the ablation switch composes with islands — the
// output front comes from the concatenated archives.
func TestIslandsOmegaDisabled(t *testing.T) {
	cfg := islandConfig()
	cfg.OmegaSize = 0
	cfg.Generations = 20
	opt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty front with Ω disabled")
	}
	pts := res.FrontPoints()
	for i := range pts {
		for j := range pts {
			if i != j && pts[i].Dominates(pts[j]) {
				t.Fatalf("front point %v dominates %v", pts[i], pts[j])
			}
		}
	}
}
