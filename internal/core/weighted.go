package core

import (
	"context"
	"fmt"
	"math"

	"optrr/internal/metrics"
	"optrr/internal/pareto"
	"optrr/internal/randx"
	"optrr/internal/rr"
)

// The weighted-sum baseline. Section V of the paper motivates evolutionary
// multi-objective optimization by rejecting the obvious alternative —
// collapsing privacy and utility into one scalar fitness — citing Das &
// Dennis: a weighted sum cannot generate the concave parts of a Pareto
// front no matter how the weights are swept, and tends to cluster solutions
// at the front's extremes. This file implements that baseline faithfully (a
// plain single-objective GA per weight, sharing the RR genome, operators and
// repair with the real optimizer) so the abl-weighted-sum experiment can
// demonstrate the deficiency on this problem.

// WeightedSumConfig parameterizes the baseline.
type WeightedSumConfig struct {
	// Prior, Records, Delta as in Config. Required.
	Prior   []float64
	Records int
	Delta   float64

	// Weights is the number of weight values swept per axis; zero means
	// 21. With no extra objectives this is exactly the paper-era sweep of
	// w across [0, 1]; with k objectives the sweep enumerates the simplex
	// lattice with Weights−1 divisions, so the run count grows
	// combinatorially in k.
	Weights int
	// Objectives appends extra objectives to the scalarization, exactly as
	// Config.Objectives does for the EMO: each weight vector then has one
	// component per objective, and the collected union front is filtered by
	// k-dimensional dominance. Nil reproduces the legacy two-term scalar
	// bit-for-bit.
	Objectives []metrics.Objective
	// PopulationSize per weight; zero means 30.
	PopulationSize int
	// Generations per weight; zero means 100.
	Generations int
	// MutationRate as in Config; zero means 0.6.
	MutationRate float64
	// Seed drives all randomness.
	Seed uint64
	// Context, if non-nil, is checked once per generation; cancellation
	// stops the sweep and returns the Pareto front of everything evaluated
	// so far together with an error wrapping ctx.Err().
	Context context.Context
}

func (c WeightedSumConfig) withDefaults() WeightedSumConfig {
	if c.Weights == 0 {
		c.Weights = 21
	}
	if c.PopulationSize == 0 {
		c.PopulationSize = 30
	}
	if c.Generations == 0 {
		c.Generations = 100
	}
	if c.MutationRate == 0 {
		c.MutationRate = 0.6
	}
	return c
}

// Validate checks the configuration.
func (c WeightedSumConfig) Validate() error {
	probe := Config{Prior: c.Prior, Records: c.Records, Delta: c.Delta, Objectives: c.Objectives}
	return probe.Validate()
}

// OptimizeWeightedSum sweeps weight vectors v over the objective simplex;
// for each v a single-objective GA minimizes
//
//	f(M) = v₁·(Utility(M)/uRef) + v₀·(1 − Privacy(M)) + Σ_t v_{2+t}·(x_t/ref_t),
//
// with uRef a fixed utility normalizer so both terms share a scale, x_t the
// canonical value of extra objective t and ref_t its normalizer. Without
// extra objectives this is exactly the paper-era sweep of
// w·(Utility/uRef) + (1−w)·(1−Privacy) over w ∈ [0, 1]. Every individual
// ever evaluated feasibly is collected and the Pareto front of the union is
// returned, making the comparison against the EMO as generous to the
// baseline as possible. The returned Result mirrors Run's.
func OptimizeWeightedSum(cfg WeightedSumConfig) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if err := ctxErr(cfg.Context); err != nil {
		return Result{}, cancelError(0, err)
	}
	cfg = cfg.withDefaults()
	rng := randx.New(cfg.Seed)
	n := len(cfg.Prior)

	uRef := weightedReferenceUtility(cfg)
	extraRefs := weightedReferenceExtras(cfg)
	evaluations := 0

	// The sweep is sequential, so one scratch serves every evaluation.
	sc := newWorkerScratch()
	evaluate := func(g Genome) (Individual, bool) {
		evaluations++
		if ok, _ := meetBoundStats(g, cfg.Prior, cfg.Delta, false, sc.slackFor(n)); !ok {
			return Individual{}, false
		}
		m, err := sc.matrixFor(g)
		if err != nil {
			return Individual{}, false
		}
		ev, err := sc.ws.Evaluate(m, cfg.Prior, cfg.Records)
		if err != nil {
			return Individual{}, false
		}
		ev.Extra, err = evalExtras(sc.ws, m, cfg.Prior, cfg.Records, cfg.Objectives)
		if err != nil {
			return Individual{}, false
		}
		return Individual{Genome: g, Eval: ev}, true
	}
	// The utility term leads so that the two-term case reproduces the
	// legacy w·(U/uRef) + (1−w)·(1−P) floating-point sequence exactly
	// (v₁ = w and v₀ = 1−w bit-for-bit, see weightVectors).
	scalar := func(ind Individual, v []float64) float64 {
		s := v[1]*(ind.Eval.Utility/uRef) + v[0]*(1-ind.Eval.Privacy)
		for t, x := range ind.Eval.Extra {
			s += v[2+t] * (x / extraRefs[t])
		}
		return s
	}

	var all []Individual
	const maxRedraws = 10000
	redraws := 0
	fresh := func() (Individual, error) {
		for {
			ind, ok := evaluate(NewRandomGenome(n, rng))
			if ok {
				return ind, nil
			}
			if redraws++; redraws > maxRedraws {
				return Individual{}, fmt.Errorf("%w: delta=%v", ErrInfeasibleBound, cfg.Delta)
			}
		}
	}

	generations := 0
	var cancelErr error
	vectors := weightVectors(2+len(cfg.Objectives), cfg.Weights)
sweep:
	for _, w := range vectors {
		pop := make([]Individual, cfg.PopulationSize)
		for i := range pop {
			ind, err := fresh()
			if err != nil {
				return Result{}, err
			}
			pop[i] = ind
		}
		for gen := 0; gen < cfg.Generations; gen++ {
			if err := ctxErr(cfg.Context); err != nil {
				// Keep what the sweep has already evaluated: the union
				// front below is built from `all`, so the partial result
				// is as generous as the completed portion allows.
				all = append(all, pop...)
				cancelErr = cancelError(generations, err)
				break sweep
			}
			generations++
			// Binary-tournament parents on the scalar fitness.
			pick := func() Individual {
				a := pop[rng.Intn(len(pop))]
				b := pop[rng.Intn(len(pop))]
				if scalar(b, w) < scalar(a, w) {
					return b
				}
				return a
			}
			next := make([]Individual, 0, cfg.PopulationSize)
			// Elitism: carry the best individual over.
			best := 0
			for i := 1; i < len(pop); i++ {
				if scalar(pop[i], w) < scalar(pop[best], w) {
					best = i
				}
			}
			next = append(next, pop[best])
			for len(next) < cfg.PopulationSize {
				c1, c2, err := Crossover(pick().Genome, pick().Genome, rng)
				if err != nil {
					return Result{}, err
				}
				for _, child := range []Genome{c1, c2} {
					if len(next) >= cfg.PopulationSize {
						break
					}
					if rng.Float64() < cfg.MutationRate {
						Mutate(child, MutationProportional, 1, rng)
					}
					ind, ok := evaluate(child)
					if !ok {
						var err error
						ind, err = fresh()
						if err != nil {
							return Result{}, err
						}
					}
					next = append(next, ind)
				}
			}
			pop = next
		}
		all = append(all, pop...)
	}

	pts := make([]pareto.Point, len(all))
	for i, ind := range all {
		pts[i] = ind.Point()
	}
	idx := pareto.Front(pts)
	front := make([]Individual, 0, len(idx))
	for _, i := range idx {
		front = append(front, Individual{Genome: all[i].Genome.Clone(), Eval: all[i].Eval})
	}
	return Result{
		Front:       front,
		Generations: generations,
		Evaluations: evaluations,
	}, cancelErr
}

// weightVectors enumerates the sweep's weight vectors: length-k, entries on
// the lattice {0, 1/m, …, 1} with m = weights−1, summing to 1. The k = 2
// case is kept in the exact legacy arithmetic — v₁ = wi/m and v₀ = 1−v₁ —
// so the two-objective baseline's floating point is bit-for-bit unchanged
// (the generic c/m form can differ from 1−w in the last bit).
func weightVectors(k, weights int) [][]float64 {
	m := weights - 1
	if k == 2 {
		out := make([][]float64, weights)
		for wi := 0; wi < weights; wi++ {
			w := float64(wi) / float64(m)
			out[wi] = []float64{1 - w, w}
		}
		return out
	}
	var out [][]float64
	comp := make([]int, k)
	var rec func(pos, left int)
	rec = func(pos, left int) {
		if pos == k-1 {
			comp[pos] = left
			v := make([]float64, k)
			for i, c := range comp {
				v[i] = float64(c) / float64(m)
			}
			out = append(out, v)
			return
		}
		for c := 0; c <= left; c++ {
			comp[pos] = c
			rec(pos+1, left-c)
		}
	}
	rec(0, m)
	return out
}

// weightedReferenceExtras normalizes each extra objective's term to unit
// scale the same way uRef normalizes utility: its canonical magnitude on a
// mid-noise Warner matrix. Objectives that are zero or unevaluable on every
// probe fall back to 1.
func weightedReferenceExtras(cfg WeightedSumConfig) []float64 {
	refs := make([]float64, len(cfg.Objectives))
	for t := range refs {
		refs[t] = 1
	}
	if len(refs) == 0 {
		return refs
	}
	ws := metrics.NewWorkspace()
	for _, p := range []float64{0.6, 0.7, 0.5} {
		m, err := rr.Warner(len(cfg.Prior), p)
		if err != nil {
			continue
		}
		if _, err := ws.Evaluate(m, cfg.Prior, cfg.Records); err != nil {
			continue
		}
		ok := true
		for t, obj := range cfg.Objectives {
			v, err := obj.Evaluate(ws, m, cfg.Prior, cfg.Records)
			if err != nil || v == 0 || math.IsNaN(v) {
				ok = false
				break
			}
			refs[t] = math.Abs(v)
		}
		if ok {
			return refs
		}
	}
	for t := range refs {
		refs[t] = 1
	}
	return refs
}

// weightedReferenceUtility normalizes the utility term to the privacy
// term's unit scale: the utility of a mid-noise Warner matrix.
func weightedReferenceUtility(cfg WeightedSumConfig) float64 {
	for _, p := range []float64{0.5, 0.6, 0.7} {
		m, err := rr.Warner(len(cfg.Prior), p)
		if err != nil {
			continue
		}
		if u, err := metrics.Utility(m, cfg.Prior, cfg.Records); err == nil && u > 0 {
			return u
		}
	}
	return math.Max(1e-6, 1.0/float64(cfg.Records))
}
