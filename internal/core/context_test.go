package core

import (
	"context"
	"errors"
	"testing"
	"time"
)

func testConfig() Config {
	cfg := DefaultConfig([]float64{0.4, 0.3, 0.2, 0.1}, 1000, 0.8)
	cfg.Generations = 50
	cfg.PopulationSize = 12
	cfg.ArchiveSize = 12
	cfg.OmegaSize = 100
	cfg.Seed = 1
	cfg.Workers = 1
	return cfg
}

// TestRunAlreadyCancelledContext: a context cancelled before Run starts must
// return promptly with an error wrapping context.Canceled and without
// touching the search (zero evaluations).
func TestRunAlreadyCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := testConfig()
	cfg.Context = ctx
	opt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Run()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapping context.Canceled", err)
	}
	if res.Evaluations != 0 {
		t.Fatalf("evaluations = %d before prompt return", res.Evaluations)
	}
}

// TestRunMidwayCancellation cancels from the Progress callback after a few
// generations: Run must stop at the next generation boundary and return the
// best-so-far front alongside the cancellation error.
func TestRunMidwayCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const stopAfter = 5
	cfg := testConfig()
	cfg.Context = ctx
	cfg.Progress = func(st Stats) {
		if st.Generation == stopAfter-1 {
			cancel()
		}
	}
	opt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Run()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapping context.Canceled", err)
	}
	if res.Generations != stopAfter {
		t.Fatalf("generations = %d, want %d (stop at next boundary)", res.Generations, stopAfter)
	}
	if len(res.Front) == 0 {
		t.Fatal("cancelled run returned no best-so-far front")
	}
	for _, ind := range res.Front {
		if _, err := ind.Genome.Matrix(); err != nil {
			t.Fatalf("partial front holds invalid genome: %v", err)
		}
	}
}

// TestRunDeadline: a deadline in the past behaves like cancellation with
// context.DeadlineExceeded.
func TestRunDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	cfg := testConfig()
	cfg.Context = ctx
	opt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := opt.Run(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want wrapping context.DeadlineExceeded", err)
	}
}

// TestRunNilContextUnchanged pins that the zero Config (nil Context) still
// runs to completion exactly as before — same front as an explicit
// background context.
func TestRunNilContextUnchanged(t *testing.T) {
	run := func(ctx context.Context) Result {
		cfg := testConfig()
		cfg.Context = ctx
		opt, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := opt.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run(nil)
	b := run(context.Background())
	if len(a.Front) != len(b.Front) || a.Evaluations != b.Evaluations {
		t.Fatalf("nil context diverged: %d/%d fronts, %d/%d evaluations",
			len(a.Front), len(b.Front), a.Evaluations, b.Evaluations)
	}
	for i := range a.Front {
		if !evalsEqual(a.Front[i].Eval, b.Front[i].Eval) {
			t.Fatalf("front[%d] differs: %+v vs %+v", i, a.Front[i].Eval, b.Front[i].Eval)
		}
	}
}

// TestWeightedSumCancellation covers the scalarized baseline: an
// already-cancelled context returns promptly, and a mid-run cancellation
// returns the front of everything evaluated so far with the wrapping error.
func TestWeightedSumCancellation(t *testing.T) {
	cfg := WeightedSumConfig{
		Prior:   []float64{0.4, 0.3, 0.2, 0.1},
		Records: 1000,
		Delta:   0.8,
		Weights: 3,
		// A budget far beyond what can finish before the cancel below.
		Generations:    1 << 30,
		PopulationSize: 10,
		Seed:           1,
	}

	pre, preCancel := context.WithCancel(context.Background())
	preCancel()
	cfg.Context = pre
	if _, err := OptimizeWeightedSum(cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled err = %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	cfg.Context = ctx
	res, err := OptimizeWeightedSum(cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapping context.Canceled", err)
	}
	if len(res.Front) == 0 {
		t.Fatal("cancelled weighted-sum run returned no partial front")
	}
}

// TestOptimizeMultiCancellation covers the multi-dimensional search the same
// way.
func TestOptimizeMultiCancellation(t *testing.T) {
	joint := []float64{0.3, 0.2, 0.15, 0.35}
	cfg := MultiConfig{
		Joint:          joint,
		Sizes:          []int{2, 2},
		Records:        1000,
		Delta:          0.9,
		Generations:    1 << 30,
		PopulationSize: 10,
		ArchiveSize:    10,
		OmegaSize:      100,
		Seed:           1,
	}

	pre, preCancel := context.WithCancel(context.Background())
	preCancel()
	cfg.Context = pre
	if _, err := OptimizeMulti(cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled err = %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	cfg.Context = ctx
	res, err := OptimizeMulti(cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapping context.Canceled", err)
	}
	if len(res.Front) == 0 {
		t.Fatal("cancelled multi run returned no partial front")
	}
}
