package core

import (
	"math"

	"optrr/internal/pareto"
)

// This file adds the convergence layer of the observability seam: a
// per-generation snapshot of *search quality* — has the front stopped
// advancing, how hard is the Ω set churning — complementing the throughput
// counters of observe.go. The paper's experiments (Section VI) judge runs by
// the front they reach and how many generations it takes to get there; these
// snapshots are the raw material for both measurements (and for the
// cold-vs-warm-start comparisons cmd/rrtrace performs on recorded traces).

// convergenceStallWindow is the default number of generations without a
// hypervolume improvement after which a run is flagged as stalled, used when
// Config.StagnationLimit does not define a window of its own. It is
// deliberately smaller than typical generation budgets: the flag is a
// telemetry signal ("this run has likely converged"), not a termination
// criterion.
const convergenceStallWindow = 50

// convergenceTol is the relative hypervolume gain below which a generation
// does not count as an improvement — float noise from re-sorted fronts must
// not reset the stall clock.
const convergenceTol = 1e-9

// Convergence is the per-generation search-quality snapshot. It is carried
// on Stats, emitted as the "optimizer.convergence" trace event, and mirrored
// into registry gauges (see observe.go).
type Convergence struct {
	// Generation is the zero-based index of the completed generation.
	Generation int
	// Hypervolume is the archive front's hypervolume against the run's
	// fixed reference point (0, refUtility) — identical to
	// Stats.FrontHypervolume, repeated here so the snapshot is
	// self-contained.
	Hypervolume float64
	// BestHypervolume is the largest hypervolume any generation has reached
	// so far; monotone non-decreasing over a run.
	BestHypervolume float64
	// Improved reports whether this generation advanced BestHypervolume by
	// more than float noise.
	Improved bool
	// SinceImprovement is the number of generations elapsed since the last
	// improvement (0 when Improved).
	SinceImprovement int
	// Stalled is set once SinceImprovement reaches the stall window
	// (Config.StagnationLimit when positive, else convergenceStallWindow):
	// the search has likely converged.
	Stalled bool
	// OmegaInserts and OmegaEvictions are the Ω-archive churn of this
	// generation: entries stored and entries displaced (see Omega.Churn).
	// Falling eviction rates are an independent convergence signal — the
	// optimal set has settled even if the front's hypervolume still creeps.
	OmegaInserts   int
	OmegaEvictions int
	// Spread is pareto.Spread of the archive front: 0 means evenly spaced
	// trade-off points, larger means clumps and gaps.
	Spread float64
}

// convergenceTracker folds per-generation fronts into Convergence snapshots.
// It is owned by the optimizer's Run goroutine; zero value is not ready —
// use newConvergenceTracker.
type convergenceTracker struct {
	stallWindow   int
	bestHV        float64
	lastImproved  int
	lastInserts   int
	lastEvictions int
}

// newConvergenceTracker returns a tracker with the given stall window;
// window <= 0 selects convergenceStallWindow.
func newConvergenceTracker(window int) convergenceTracker {
	if window <= 0 {
		window = convergenceStallWindow
	}
	return convergenceTracker{stallWindow: window, bestHV: math.Inf(-1), lastImproved: -1}
}

// observe folds one completed generation into the tracker and returns its
// snapshot. front is the archive in objective space; hv its hypervolume
// against the run's fixed reference point.
func (t *convergenceTracker) observe(gen int, hv float64, omega *Omega, front []pareto.Point) Convergence {
	improved := false
	switch {
	case math.IsNaN(hv):
		// A NaN hypervolume carries no signal; the stall clock keeps
		// ticking.
	case t.lastImproved < 0:
		// First usable observation always improves on the empty history.
		improved = true
	default:
		improved = hv-t.bestHV > convergenceTol*math.Max(1, math.Abs(t.bestHV))
	}
	if improved {
		t.bestHV = hv
		t.lastImproved = gen
	}
	since := gen - t.lastImproved
	if t.lastImproved < 0 {
		// No generation has improved yet (possible only when the first
		// fronts have non-finite hypervolume): count from the start.
		since = gen + 1
	}
	inserts, evictions := omega.Churn()
	c := Convergence{
		Generation:       gen,
		Hypervolume:      hv,
		BestHypervolume:  t.bestHV,
		Improved:         improved,
		SinceImprovement: since,
		Stalled:          since >= t.stallWindow,
		OmegaInserts:     inserts - t.lastInserts,
		OmegaEvictions:   evictions - t.lastEvictions,
		Spread:           pareto.Spread(front),
	}
	t.lastInserts, t.lastEvictions = inserts, evictions
	return c
}
