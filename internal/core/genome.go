// Package core implements the paper's primary contribution: the SPEA2-based
// evolutionary search for optimal randomized-response matrices (Section V),
// including the RR-specific crossover and mutation operators, the δ-bound
// repair step, the privacy-indexed optimal set Ω, and the optimizer loop
// that ties them to the generic SPEA2 machinery in internal/emoo.
package core

import (
	"fmt"
	"math"

	"optrr/internal/randx"
	"optrr/internal/rr"
)

// Genome is the evolutionary representation of an RR matrix: a slice of n
// column vectors, each of length n and summing to one. Column i is the
// disguise distribution of original category c_i (so Genome[i][j] = θ_{j,i}).
type Genome [][]float64

// NewRandomGenome draws each column independently from the flat Dirichlet
// distribution (normalized exponentials), giving a uniform sample over the
// column simplex — the random initial population of the algorithm.
func NewRandomGenome(n int, r *randx.Source) Genome {
	g := make(Genome, n)
	for i := range g {
		col := make([]float64, n)
		var sum float64
		for j := range col {
			col[j] = r.Exp(1)
			sum += col[j]
		}
		for j := range col {
			col[j] /= sum
		}
		g[i] = col
	}
	return g
}

// Clone deep-copies the genome.
func (g Genome) Clone() Genome {
	out := make(Genome, len(g))
	for i, col := range g {
		c := make([]float64, len(col))
		copy(c, col)
		out[i] = c
	}
	return out
}

// N returns the number of categories.
func (g Genome) N() int { return len(g) }

// Matrix converts the genome into a validated RR matrix.
func (g Genome) Matrix() (*rr.Matrix, error) {
	return rr.FromColumns(g)
}

// Valid reports whether every column is a probability vector.
func (g Genome) Valid() bool {
	n := len(g)
	for _, col := range g {
		if len(col) != n {
			return false
		}
		var sum float64
		for _, v := range col {
			if v < -1e-9 || v > 1+1e-9 || math.IsNaN(v) {
				return false
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-7 {
			return false
		}
	}
	return true
}

// renormalize clamps negatives produced by floating-point drift and rescales
// each column to sum exactly to one.
func (g Genome) renormalize() {
	for _, col := range g {
		var sum float64
		for j, v := range col {
			if v < 0 {
				col[j] = 0
				v = 0
			}
			sum += v
		}
		if sum <= 0 {
			u := 1 / float64(len(col))
			for j := range col {
				col[j] = u
			}
			continue
		}
		for j := range col {
			col[j] /= sum
		}
	}
}

// Symmetrize projects the genome onto the symmetric column-stochastic
// matrices (θ_{j,i} = θ_{i,j}), which are exactly the symmetric doubly
// stochastic matrices. A single transpose-average breaks the column sums and
// a single renormalization breaks symmetry, so the projection alternates the
// two (a Sinkhorn-style iteration) until both hold. This reproduces the
// Agrawal–Haritsa restriction the paper's related-work section criticizes;
// it is exposed for the SymmetricOnly ablation.
func (g Genome) Symmetrize() {
	n := len(g)
	const (
		maxIter = 200
		tol     = 1e-12
	)
	for iter := 0; iter < maxIter; iter++ {
		var drift float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				avg := (g[i][j] + g[j][i]) / 2
				drift = math.Max(drift, math.Abs(g[i][j]-avg))
				g[i][j] = avg
				g[j][i] = avg
			}
		}
		var sumDrift float64
		for _, col := range g {
			var sum float64
			for _, v := range col {
				sum += v
			}
			sumDrift = math.Max(sumDrift, math.Abs(sum-1))
		}
		g.renormalize()
		if drift < tol && sumDrift < tol {
			return
		}
	}
}

// Crossover implements the paper's column-cut crossover (Section V-E): a
// random cut line between two neighbouring columns is chosen and all columns
// to its right are swapped between the two parents. Because whole columns
// move, column stochasticity is preserved by construction. The parents are
// not modified; two children are returned.
func Crossover(a, b Genome, r *randx.Source) (Genome, Genome, error) {
	n := a.N()
	if n != b.N() {
		return nil, nil, fmt.Errorf("core: crossover of genomes with %d and %d categories", n, b.N())
	}
	if n < 2 {
		return nil, nil, fmt.Errorf("core: crossover needs at least 2 categories, got %d", n)
	}
	cut := 1 + r.Intn(n-1) // cut ∈ [1, n-1]: both sides non-empty
	c1 := a.Clone()
	c2 := b.Clone()
	for i := cut; i < n; i++ {
		c1[i], c2[i] = c2[i], c1[i]
	}
	return c1, c2, nil
}

// MutationStyle selects between the paper's correlation-preserving mutation
// and a naive baseline, for the ablation study.
type MutationStyle int

const (
	// MutationProportional is the paper's operator (Section V-F): after
	// perturbing one element of a column, the compensation is spread over
	// the other elements proportionally — to their values when compensating
	// a subtraction of mass from them, and to their headroom (1 − value)
	// when compensating an addition — preserving the column's internal
	// correlations.
	MutationProportional MutationStyle = iota
	// MutationNaive perturbs one element and then renormalizes the whole
	// column by its sum, destroying the correlation structure. It exists as
	// the ablation baseline.
	MutationNaive
)

// String implements fmt.Stringer.
func (s MutationStyle) String() string {
	switch s {
	case MutationProportional:
		return "proportional"
	case MutationNaive:
		return "naive"
	default:
		return fmt.Sprintf("MutationStyle(%d)", int(s))
	}
}

// Mutate perturbs the genome in place according to the chosen style: a
// random element of a random column is moved by a random amount (< 1) and
// the rest of the column compensates. The magnitude is additionally scaled
// by scale ∈ (0, 1], allowing annealed mutation steps.
func Mutate(g Genome, style MutationStyle, scale float64, r *randx.Source) {
	n := g.N()
	if n < 2 {
		return
	}
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	col := g[r.Intn(n)]
	i := r.Intn(n)
	add := r.Float64() < 0.5

	switch style {
	case MutationNaive:
		delta := r.Float64() * scale
		if add {
			col[i] += delta
		} else {
			col[i] -= delta
			if col[i] < 0 {
				col[i] = 0
			}
		}
		var sum float64
		for _, v := range col {
			sum += v
		}
		if sum <= 0 {
			u := 1 / float64(n)
			for j := range col {
				col[j] = u
			}
			return
		}
		for j := range col {
			col[j] /= sum
		}
	default: // MutationProportional
		if add {
			headroom := 1 - col[i]
			if headroom <= 0 {
				return // element already saturated; mutation is a no-op
			}
			a := r.Float64() * headroom * scale
			// Subtract a in total from the other elements, proportional to
			// their current values (their combined mass is exactly 1−col[i]).
			others := 1 - col[i]
			if others <= 0 {
				return
			}
			for j := range col {
				if j != i {
					col[j] -= a * col[j] / others
				}
			}
			col[i] += a
		} else {
			if col[i] <= 0 {
				return // nothing to subtract
			}
			a := r.Float64() * col[i] * scale
			// Add a in total to the other elements, proportional to their
			// headroom 1−value.
			var headroom float64
			for j := range col {
				if j != i {
					headroom += 1 - col[j]
				}
			}
			if headroom <= 0 {
				return
			}
			for j := range col {
				if j != i {
					col[j] += a * (1 - col[j]) / headroom
				}
			}
			col[i] -= a
		}
	}
}
