package core

import (
	"math"
	"reflect"
	"testing"
	"time"

	"optrr/internal/obs"
	"optrr/internal/pareto"
)

// obsTestConfig is a small, fast, fully deterministic search configuration
// shared by the instrumentation tests.
func obsTestConfig() Config {
	cfg := DefaultConfig([]float64{0.4, 0.3, 0.2, 0.1}, 1000, 0.8)
	cfg.PopulationSize = 12
	cfg.ArchiveSize = 8
	cfg.OmegaSize = 100
	cfg.Generations = 6
	cfg.Seed = 11
	cfg.Workers = 1
	return cfg
}

func runWith(t *testing.T, cfg Config) Result {
	t.Helper()
	opt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestStatsCloneDetachesFront(t *testing.T) {
	st := Stats{Generation: 3, Front: []pareto.Point{{Privacy: 0.5, Utility: 1e-5}}}
	cl := st.Clone()
	if !reflect.DeepEqual(cl, st) {
		t.Fatalf("clone differs: %+v vs %+v", cl, st)
	}
	st.Front[0].Privacy = 0.9
	if cl.Front[0].Privacy != 0.5 {
		t.Fatal("clone shares the Front backing array")
	}
	var empty Stats
	if got := empty.Clone(); got.Front != nil {
		t.Fatalf("cloning nil Front produced %v", got.Front)
	}
}

// TestProgressRetainingCallbackCannotCorruptRun retains and corrupts the
// Stats.Front scratch slice from inside the callback; the search must be
// bit-for-bit identical to an unobserved run, and Clone must preserve what
// each generation actually reported.
func TestProgressRetainingCallbackCannotCorruptRun(t *testing.T) {
	baseline := runWith(t, obsTestConfig())

	var raws [][]pareto.Point
	var clones []Stats
	cfg := obsTestConfig()
	cfg.Progress = func(s Stats) {
		raws = append(raws, s.Front)
		clones = append(clones, s.Clone())
		// Hostile retention: scribble over the shared scratch buffer.
		for i := range s.Front {
			s.Front[i] = pareto.Point{Privacy: math.NaN(), Utility: math.NaN()}
		}
	}
	observed := runWith(t, cfg)

	if !reflect.DeepEqual(baseline.FrontPoints(), observed.FrontPoints()) {
		t.Fatal("a retaining+mutating Progress callback changed the search outcome")
	}
	if baseline.Evaluations != observed.Evaluations {
		t.Fatalf("evaluations diverged: %d vs %d", baseline.Evaluations, observed.Evaluations)
	}
	if len(clones) != cfg.Generations {
		t.Fatalf("got %d callbacks, want %d", len(clones), cfg.Generations)
	}
	for g, cl := range clones {
		if cl.Generation != g {
			t.Fatalf("clone %d has generation %d", g, cl.Generation)
		}
		for _, p := range cl.Front {
			if math.IsNaN(p.Privacy) || math.IsNaN(p.Utility) {
				t.Fatalf("generation %d clone was corrupted by later scribbles: %+v", g, p)
			}
		}
	}
	// The raw retained slices alias the reused scratch buffer — that is the
	// documented hazard the clones protect against.
	for g := 0; g+1 < len(raws); g++ {
		if len(raws[g]) > 0 && len(raws[g+1]) > 0 && &raws[g][0] != &raws[g+1][0] {
			t.Fatalf("generations %d and %d do not share the scratch buffer; hazard test is vacuous", g, g+1)
		}
	}
}

// TestRecorderEventStream scripts a run and asserts the exact event
// envelope: one start, one generation event per generation in order, one
// done, with internally consistent fields.
func TestRecorderEventStream(t *testing.T) {
	rec := obs.NewMemory()
	cfg := obsTestConfig()
	cfg.Recorder = rec
	res := runWith(t, cfg)

	events := rec.Events()
	// Per run: one start, per generation a generation event followed by a
	// convergence event, one done.
	if len(events) != 2*cfg.Generations+2 {
		t.Fatalf("got %d events, want %d", len(events), 2*cfg.Generations+2)
	}
	if events[0].Name != "optimizer.start" {
		t.Fatalf("first event = %q", events[0].Name)
	}
	if got := events[0].Fields["categories"]; got != 4 {
		t.Fatalf("start.categories = %v", got)
	}
	last := events[len(events)-1]
	if last.Name != "optimizer.done" {
		t.Fatalf("last event = %q", last.Name)
	}
	if got := last.Fields["evaluations"]; got != res.Evaluations {
		t.Fatalf("done.evaluations = %v, want %d", got, res.Evaluations)
	}

	prevEvals := 0
	for g := 0; g < cfg.Generations; g++ {
		e := events[2*g+1]
		if e.Name != "optimizer.generation" {
			t.Fatalf("event %d = %q", 2*g+1, e.Name)
		}
		if e.Fields["gen"] != g {
			t.Fatalf("event %d gen = %v, want %d", 2*g+1, e.Fields["gen"], g)
		}
		evals := e.Fields["evals"].(int)
		if evals <= prevEvals {
			t.Fatalf("gen %d evals %d not increasing past %d", g, evals, prevEvals)
		}
		prevEvals = evals
		if got := e.Fields["evals_gen"].(int); got < cfg.PopulationSize {
			t.Fatalf("gen %d evals_gen = %d, want >= population %d", g, got, cfg.PopulationSize)
		}
		front := e.Fields["front"].([]pareto.Point)
		if len(front) == 0 || len(front) != e.Fields["archive"].(int) {
			t.Fatalf("gen %d front has %d points for archive %v", g, len(front), e.Fields["archive"])
		}
		for _, key := range []string{"select_ms", "vary_ms", "eval_ms", "omega_ms"} {
			if v := e.Fields[key].(float64); v < 0 {
				t.Fatalf("gen %d %s = %v", g, key, v)
			}
		}
		c := events[2*g+2]
		if c.Name != "optimizer.convergence" {
			t.Fatalf("event %d = %q, want optimizer.convergence", 2*g+2, c.Name)
		}
		if c.Fields["gen"] != g {
			t.Fatalf("convergence event %d gen = %v, want %d", 2*g+2, c.Fields["gen"], g)
		}
		if hv := c.Fields["hypervolume"].(float64); hv != e.Fields["hypervolume"].(float64) {
			t.Fatalf("gen %d convergence hypervolume %v != generation hypervolume %v",
				g, hv, e.Fields["hypervolume"])
		}
	}

	// Each generation event must own its front points (Stats.Clone in the
	// recorder path), not alias the optimizer's scratch buffer.
	for g := 0; g < cfg.Generations-1; g++ {
		a := events[2*g+1].Fields["front"].([]pareto.Point)
		b := events[2*g+3].Fields["front"].([]pareto.Point)
		if len(a) > 0 && len(b) > 0 && &a[0] == &b[0] {
			t.Fatalf("generation events %d and %d share a front backing array", g, g+1)
		}
	}
}

// TestObservedRunMatchesBareRun: attaching a recorder and a registry must
// not perturb the search (same seed, same result).
func TestObservedRunMatchesBareRun(t *testing.T) {
	bare := runWith(t, obsTestConfig())
	cfg := obsTestConfig()
	cfg.Recorder = obs.NewMemory()
	cfg.Metrics = obs.NewRegistry()
	observed := runWith(t, cfg)
	if !reflect.DeepEqual(bare.FrontPoints(), observed.FrontPoints()) {
		t.Fatal("observability changed the search outcome")
	}
}

func TestMetricsRegistryUpdates(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := obsTestConfig()
	cfg.Metrics = reg
	res := runWith(t, cfg)

	if got := reg.Counter("optimizer.evaluations").Value(); got <= 0 || got > int64(res.Evaluations) {
		t.Fatalf("optimizer.evaluations = %d, want in (0, %d]", got, res.Evaluations)
	}
	if got := reg.Gauge("optimizer.generation").Value(); got != float64(cfg.Generations-1) {
		t.Fatalf("optimizer.generation = %v, want %d", got, cfg.Generations-1)
	}
	if got := reg.Gauge("optimizer.front_size").Value(); got <= 0 {
		t.Fatalf("optimizer.front_size = %v", got)
	}
	if got := reg.Histogram("optimizer.generation_seconds", nil).Count(); got != int64(cfg.Generations) {
		t.Fatalf("generation_seconds count = %d, want %d", got, cfg.Generations)
	}
}

// TestBoundRejectTalliesRejects checks the reject counter reaches the trace
// under the ablation bound mode.
func TestBoundRejectTalliesRejects(t *testing.T) {
	rec := obs.NewMemory()
	cfg := obsTestConfig()
	cfg.BoundMode = BoundReject
	cfg.Recorder = rec
	runWith(t, cfg)
	total := 0
	for _, e := range rec.Named("optimizer.generation") {
		total += e.Fields["rejects"].(int)
		if e.Fields["repairs"].(int) != 0 {
			t.Fatal("reject mode reported repairs")
		}
	}
	if total == 0 {
		t.Fatal("reject mode recorded zero rejects across the whole run")
	}
}

// TestRepairTalliesReachTrace checks repair counts and push-back magnitudes
// flow through under the default repair mode.
func TestRepairTalliesReachTrace(t *testing.T) {
	rec := obs.NewMemory()
	cfg := obsTestConfig()
	cfg.Recorder = rec
	runWith(t, cfg)
	repairs, pushBack := 0, 0.0
	for _, e := range rec.Named("optimizer.generation") {
		repairs += e.Fields["repairs"].(int)
		pushBack += e.Fields["push_back"].(float64)
	}
	if repairs == 0 || pushBack <= 0 {
		t.Fatalf("repair telemetry empty: repairs=%d push_back=%v", repairs, pushBack)
	}
}

// TestEmitHelpersNopAllocations guards the disabled observability path:
// with no recorder and no registry the emit helpers must not allocate.
func TestEmitHelpersNopAllocations(t *testing.T) {
	opt, err := New(obsTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if opt.observed || opt.timed {
		t.Fatal("bare config reports observed/timed")
	}
	st := Stats{Generation: 1, Front: []pareto.Point{{Privacy: 0.4, Utility: 1e-5}}}
	var phases [phaseCount]time.Duration
	if n := testing.AllocsPerRun(100, func() {
		opt.emitStart()
		opt.emitGeneration(st, phases, 10, 0, 0)
		opt.emitConvergence(st.Convergence)
		opt.emitDone(Result{}, time.Time{})
	}); n != 0 {
		t.Fatalf("disabled emit path allocated %v times per run, want 0", n)
	}
}
