package core

import (
	"errors"
	"math"
	"testing"

	"optrr/internal/metrics"
	"optrr/internal/rr"
)

// testJoint returns a mildly correlated joint over [3, 2] (6 cells).
func testJoint() ([]float64, []int) {
	joint := []float64{0.25, 0.05, 0.10, 0.15, 0.05, 0.40}
	return joint, []int{3, 2}
}

func quickMulti() MultiConfig {
	joint, sizes := testJoint()
	return MultiConfig{
		Joint:          joint,
		Sizes:          sizes,
		Records:        5000,
		Delta:          0.85,
		PopulationSize: 12,
		ArchiveSize:    12,
		OmegaSize:      100,
		Generations:    40,
		Seed:           5,
	}
}

func TestMultiConfigValidate(t *testing.T) {
	base := quickMulti()
	if err := base.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*MultiConfig)
		want   error
	}{
		{"no attributes", func(c *MultiConfig) { c.Sizes = nil }, ErrBadConfig},
		{"tiny attribute", func(c *MultiConfig) { c.Sizes = []int{1, 6} }, ErrBadConfig},
		{"joint size", func(c *MultiConfig) { c.Joint = c.Joint[:3] }, ErrBadConfig},
		{"joint sum", func(c *MultiConfig) { c.Joint = []float64{0.5, 0.2, 0.1, 0.1, 0.05, 0.5} }, ErrBadConfig},
		{"records", func(c *MultiConfig) { c.Records = 0 }, ErrBadConfig},
		{"delta", func(c *MultiConfig) { c.Delta = 0 }, ErrBadConfig},
		{"delta below joint mode", func(c *MultiConfig) { c.Delta = 0.2 }, ErrInfeasibleBound},
	}
	for _, c := range cases {
		cfg := quickMulti()
		c.mutate(&cfg)
		if err := cfg.Validate(); !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
}

func TestOptimizeMultiProducesFeasibleFront(t *testing.T) {
	cfg := quickMulti()
	res, err := OptimizeMulti(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty multi front")
	}
	if res.Generations != cfg.Generations {
		t.Fatalf("generations = %d", res.Generations)
	}
	for _, ind := range res.Front {
		if len(ind.Genomes) != 2 {
			t.Fatalf("genome tuple of %d attributes", len(ind.Genomes))
		}
		for d, g := range ind.Genomes {
			if !g.Valid() {
				t.Fatalf("attribute %d genome invalid", d)
			}
			if g.N() != cfg.Sizes[d] {
				t.Fatalf("attribute %d has %d categories, want %d", d, g.N(), cfg.Sizes[d])
			}
		}
		ms, err := ind.Matrices()
		if err != nil {
			t.Fatal(err)
		}
		mp, err := metrics.JointMaxPosterior(ms, cfg.Joint)
		if err != nil {
			t.Fatal(err)
		}
		if mp > cfg.Delta+1e-9 {
			t.Fatalf("front member violates the record-level bound: %v", mp)
		}
		// Cached evaluation must be reproducible.
		ev, err := metrics.JointEvaluate(ms, cfg.Joint, cfg.Records)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ev.Privacy-ind.Eval.Privacy) > 1e-12 {
			t.Fatal("stale cached evaluation")
		}
	}
}

func TestOptimizeMultiFrontNonDominated(t *testing.T) {
	res, err := OptimizeMulti(quickMulti())
	if err != nil {
		t.Fatal(err)
	}
	pts := res.FrontPoints()
	for i := range pts {
		for j := range pts {
			if i != j && pts[i].Dominates(pts[j]) {
				t.Fatalf("front point %v dominates %v", pts[i], pts[j])
			}
		}
	}
}

func TestOptimizeMultiDeterministic(t *testing.T) {
	a, err := OptimizeMulti(quickMulti())
	if err != nil {
		t.Fatal(err)
	}
	b, err := OptimizeMulti(quickMulti())
	if err != nil {
		t.Fatal(err)
	}
	pa, pb := a.FrontPoints(), b.FrontPoints()
	if len(pa) != len(pb) {
		t.Fatalf("front sizes differ: %d vs %d", len(pa), len(pb))
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("fronts differ at %d", i)
		}
	}
}

// TestOptimizeMultiBeatsIndependentWarner: the jointly optimized tuples
// should weakly dominate disguising each attribute with a Warner matrix of
// the same parameter, compared at matched record-level privacy under the
// same bound.
func TestOptimizeMultiBeatsIndependentWarner(t *testing.T) {
	cfg := quickMulti()
	cfg.Generations = 150
	res, err := OptimizeMulti(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pts := res.FrontPoints()
	if len(pts) < 3 {
		t.Fatalf("front too small: %d", len(pts))
	}
	// Front sanity: non-trivial privacy span, monotone utility.
	min, max := pts[0].Privacy, pts[len(pts)-1].Privacy
	if max-min < 0.05 {
		t.Fatalf("front privacy span %v too narrow", max-min)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Utility < pts[i-1].Utility-1e-15 {
			t.Fatal("front utility not monotone in privacy")
		}
	}
	// Warner-per-attribute baseline under the same joint metrics and bound.
	beats := 0
	compared := 0
	for k := 5; k <= 95; k += 5 {
		p := float64(k) / 100
		m1, err := warnerGenome(cfg.Sizes[0], p).Matrix()
		if err != nil {
			t.Fatal(err)
		}
		m2, err := warnerGenome(cfg.Sizes[1], p).Matrix()
		if err != nil {
			t.Fatal(err)
		}
		ms := []*rr.Matrix{m1, m2}
		mp, err := metrics.JointMaxPosterior(ms, cfg.Joint)
		if err != nil || mp > cfg.Delta {
			continue
		}
		ev, err := metrics.JointEvaluate(ms, cfg.Joint, cfg.Records)
		if err != nil {
			continue
		}
		compared++
		// Best optimized utility at this privacy level.
		best := math.Inf(1)
		for _, fp := range pts {
			if fp.Privacy >= ev.Privacy && fp.Utility < best {
				best = fp.Utility
			}
		}
		if best <= ev.Utility*1.05 {
			beats++
		}
	}
	if compared == 0 {
		t.Fatal("no feasible Warner baseline point to compare against")
	}
	if ratio := float64(beats) / float64(compared); ratio < 0.7 {
		t.Fatalf("optimized tuples match/beat only %.0f%% of Warner baseline points", ratio*100)
	}
}

func warnerGenome(n int, p float64) Genome {
	g := make(Genome, n)
	off := (1 - p) / float64(n-1)
	for i := range g {
		col := make([]float64, n)
		for j := range col {
			if i == j {
				col[j] = p
			} else {
				col[j] = off
			}
		}
		g[i] = col
	}
	return g
}

func TestMeetJointBoundBlends(t *testing.T) {
	joint, sizes := testJoint()
	cfg := MultiConfig{Joint: joint, Sizes: sizes, Records: 1000, Delta: 0.6}
	// Near-deterministic genomes violate any delta < 1.
	gs := []Genome{
		{{0.98, 0.01, 0.01}, {0.01, 0.98, 0.01}, {0.01, 0.01, 0.98}},
		{{0.98, 0.02}, {0.02, 0.98}},
	}
	mats, err := MultiIndividual{Genomes: gs}.Matrices()
	if err != nil {
		t.Fatal(err)
	}
	before, err := metrics.JointMaxPosterior(mats, joint)
	if err != nil {
		t.Fatal(err)
	}
	if before <= cfg.Delta {
		t.Fatalf("test premise broken: posterior %v already under bound", before)
	}
	sc := newMultiScratch(sizes)
	if !materializeTuple(sc.mats, gs) {
		t.Fatal("materialize failed")
	}
	if !meetJointBound(gs, sc, cfg) {
		t.Fatal("joint repair failed")
	}
	after, err := MultiIndividual{Genomes: gs}.Matrices()
	if err != nil {
		t.Fatal(err)
	}
	mp, err := metrics.JointMaxPosterior(after, joint)
	if err != nil {
		t.Fatal(err)
	}
	if mp > cfg.Delta+1e-9 {
		t.Fatalf("joint repair left posterior %v above %v", mp, cfg.Delta)
	}
}

// TestOptimizeMultiDeterministicAcrossWorkers pins the parallel evaluation
// contract: the factored per-worker scratch must make the search bit-for-bit
// identical at every worker count — fronts, evaluations, and every genome
// entry.
func TestOptimizeMultiDeterministicAcrossWorkers(t *testing.T) {
	var ref MultiResult
	for i, w := range []int{1, 2, 4, 7} {
		cfg := quickMulti()
		cfg.Workers = w
		res, err := OptimizeMulti(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if i == 0 {
			ref = res
			continue
		}
		if res.Evaluations != ref.Evaluations {
			t.Fatalf("workers=%d: evaluations %d, want %d", w, res.Evaluations, ref.Evaluations)
		}
		if len(res.Front) != len(ref.Front) {
			t.Fatalf("workers=%d: front size %d, want %d", w, len(res.Front), len(ref.Front))
		}
		for k, ind := range res.Front {
			want := ref.Front[k]
			if ind.Eval.Privacy != want.Eval.Privacy || ind.Eval.Utility != want.Eval.Utility ||
				ind.Eval.MaxPosterior != want.Eval.MaxPosterior {
				t.Fatalf("workers=%d: front[%d] eval %+v, want %+v", w, k, ind.Eval, want.Eval)
			}
			for d, g := range ind.Genomes {
				for ci, col := range g {
					for j, v := range col {
						if v != want.Genomes[d][ci][j] {
							t.Fatalf("workers=%d: front[%d] genome[%d][%d][%d] = %v, want %v",
								w, k, d, ci, j, v, want.Genomes[d][ci][j])
						}
					}
				}
			}
		}
	}
}

// TestOptimizeMultiBeyondDenseCap is the acceptance-scale run: a d=4 problem
// whose product space (12⁴ = 20736 cells) exceeds the old dense
// maxJointCells cap of 2^14 runs end to end through the factored path, and
// every front member still satisfies the record-level bound.
func TestOptimizeMultiBeyondDenseCap(t *testing.T) {
	sizes := []int{12, 12, 12, 12}
	cells := 1
	for _, n := range sizes {
		cells *= n
	}
	if cells <= 1<<14 {
		t.Fatalf("test sizes %v do not exceed the old cap", sizes)
	}
	// The old dense path refused this size outright.
	if _, err := metrics.JointChannel(make([]*rr.Matrix, len(sizes))); err == nil {
		t.Fatal("dense oracle accepted a nil tuple") // sanity of the oracle guard
	}
	joint := make([]float64, cells)
	sum := 0.0
	for i := range joint {
		// Deterministic skewed joint without an RNG dependency.
		joint[i] = 1 + float64(i%17)
		sum += joint[i]
	}
	for i := range joint {
		joint[i] /= sum
	}
	cfg := MultiConfig{
		Joint:          joint,
		Sizes:          sizes,
		Records:        100000,
		Delta:          0.5,
		PopulationSize: 6,
		ArchiveSize:    6,
		OmegaSize:      50,
		Generations:    3,
		Seed:           11,
	}
	res, err := OptimizeMulti(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty front on beyond-cap problem")
	}
	ws := metrics.NewJointWorkspace()
	for _, ind := range res.Front {
		ms, err := ind.Matrices()
		if err != nil {
			t.Fatal(err)
		}
		mp, err := ws.MaxPosterior(ms, joint)
		if err != nil {
			t.Fatal(err)
		}
		if mp > cfg.Delta+1e-9 {
			t.Fatalf("beyond-cap front member violates the bound: %v", mp)
		}
	}
}

func BenchmarkOptimizeMultiGeneration(b *testing.B) {
	cfg := quickMulti()
	cfg.Generations = b.N
	if _, err := OptimizeMulti(cfg); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkOptimizeMulti runs the full quickMulti search per iteration — the
// pinned end-to-end cost of the factored multi-attribute optimizer, diffed
// by cmd/benchdiff on every ci.sh run.
func BenchmarkOptimizeMulti(b *testing.B) {
	cfg := quickMulti()
	var front int
	for i := 0; i < b.N; i++ {
		res, err := OptimizeMulti(cfg)
		if err != nil {
			b.Fatal(err)
		}
		front = len(res.Front)
	}
	b.ReportMetric(float64(front), "front-size")
}
