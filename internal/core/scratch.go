package core

import (
	"optrr/internal/metrics"
	"optrr/internal/rr"
)

// workerScratch is the per-worker evaluation state: one metrics workspace,
// one reusable RR matrix the worker materializes genomes into, and the
// repair slack buffer. Each worker goroutine of realize owns exactly one
// workerScratch for the lifetime of the optimizer, so steady-state
// evaluation allocates nothing per genome. None of the scratch contents
// influence results — every buffer is fully overwritten per genome — which
// keeps runs bit-for-bit reproducible regardless of how genomes are
// distributed over workers.
type workerScratch struct {
	ws    *metrics.Workspace
	mat   *rr.Matrix
	slack []float64
}

func newWorkerScratch() *workerScratch {
	return &workerScratch{ws: metrics.NewWorkspace()}
}

// matrixFor materializes the genome into the worker's reusable matrix,
// validating exactly as Genome.Matrix does. The returned matrix aliases the
// scratch: it is valid until the worker's next matrixFor call.
func (sc *workerScratch) matrixFor(g Genome) (*rr.Matrix, error) {
	n := g.N()
	if sc.mat == nil || sc.mat.N() != n {
		sc.mat = rr.NewScratchMatrix(n)
	}
	if err := sc.mat.SetColumns(g); err != nil {
		return nil, err
	}
	return sc.mat, nil
}

// slackFor returns the repair slack buffer sized for n categories.
func (sc *workerScratch) slackFor(n int) []float64 {
	if cap(sc.slack) < n {
		sc.slack = make([]float64, n)
	}
	return sc.slack[:n]
}
