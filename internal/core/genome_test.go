package core

import (
	"math"
	"testing"
	"testing/quick"

	"optrr/internal/randx"
)

func TestNewRandomGenomeValid(t *testing.T) {
	r := randx.New(1)
	for i := 0; i < 100; i++ {
		g := NewRandomGenome(10, r)
		if !g.Valid() {
			t.Fatalf("random genome invalid: %v", g)
		}
		if _, err := g.Matrix(); err != nil {
			t.Fatalf("random genome rejected by rr: %v", err)
		}
	}
}

func TestGenomeCloneIndependent(t *testing.T) {
	r := randx.New(2)
	g := NewRandomGenome(4, r)
	c := g.Clone()
	c[0][0] = 99
	if g[0][0] == 99 {
		t.Fatal("Clone shares storage")
	}
}

func TestGenomeValidRejects(t *testing.T) {
	cases := []Genome{
		{{0.5, 0.6}, {0.5, 0.4}},       // column 0 sums to 1.1? no: columns are the inner slices: {0.5,0.6} sums to 1.1
		{{1.2, -0.2}, {0.5, 0.5}},      // out of range entries
		{{0.5, 0.5}, {0.5}},            // ragged
		{{math.NaN(), 1}, {0.5, 0.5}},  // NaN
		{{0.25, 0.25, 0.5}, {1, 0, 0}}, // 3-length columns in a 2-genome
	}
	for i, g := range cases {
		if g.Valid() {
			t.Errorf("case %d: invalid genome accepted", i)
		}
	}
}

func TestSymmetrize(t *testing.T) {
	r := randx.New(3)
	g := NewRandomGenome(5, r)
	g.Symmetrize()
	if !g.Valid() {
		t.Fatal("symmetrized genome invalid")
	}
	// Symmetric up to the renormalization: since averaging makes the matrix
	// symmetric and symmetric column-stochastic matrices are also
	// row-stochastic, the renormalization divisor is ~1 and symmetry holds.
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if math.Abs(g[i][j]-g[j][i]) > 1e-6 {
				t.Fatalf("not symmetric at (%d,%d): %v vs %v", i, j, g[i][j], g[j][i])
			}
		}
	}
}

func TestCrossoverSwapsColumnSuffix(t *testing.T) {
	r := randx.New(4)
	a := NewRandomGenome(6, r)
	b := NewRandomGenome(6, r)
	aOrig, bOrig := a.Clone(), b.Clone()
	c1, c2, err := Crossover(a, b, r)
	if err != nil {
		t.Fatal(err)
	}
	// Parents untouched.
	for i := range a {
		for j := range a[i] {
			if a[i][j] != aOrig[i][j] || b[i][j] != bOrig[i][j] {
				t.Fatal("crossover modified a parent")
			}
		}
	}
	// Each child column comes verbatim from one parent; the split is a
	// prefix/suffix at the same cut for both children.
	cut := -1
	for i := range c1 {
		fromA := equalCol(c1[i], aOrig[i])
		fromB := equalCol(c1[i], bOrig[i])
		if !fromA && !fromB {
			t.Fatalf("child column %d matches neither parent", i)
		}
		if !fromA && cut == -1 {
			cut = i
		}
		if cut != -1 && fromA && !fromB {
			t.Fatalf("child 1 has parent-A column %d after the cut %d", i, cut)
		}
	}
	if cut < 1 || cut >= 6 {
		t.Fatalf("cut = %d outside [1, 5]", cut)
	}
	for i := range c2 {
		want := bOrig[i]
		if i >= cut {
			want = aOrig[i]
		}
		if !equalCol(c2[i], want) {
			t.Fatalf("child 2 column %d is not the mirrored swap", i)
		}
	}
	if !c1.Valid() || !c2.Valid() {
		t.Fatal("crossover children invalid")
	}
}

func equalCol(a, b []float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestCrossoverErrors(t *testing.T) {
	r := randx.New(1)
	if _, _, err := Crossover(NewRandomGenome(3, r), NewRandomGenome(4, r), r); err == nil {
		t.Fatal("size mismatch accepted")
	}
	one := Genome{{1}}
	if _, _, err := Crossover(one, one, r); err == nil {
		t.Fatal("1-category crossover accepted")
	}
}

func TestPropertyCrossoverPreservesStochasticity(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%8) + 2
		r := randx.New(seed)
		a := NewRandomGenome(n, r)
		b := NewRandomGenome(n, r)
		c1, c2, err := Crossover(a, b, r)
		if err != nil {
			return false
		}
		return c1.Valid() && c2.Valid()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMutateProportionalPreservesStochasticity(t *testing.T) {
	f := func(seed uint64, nRaw uint8, rounds uint8) bool {
		n := int(nRaw%8) + 2
		r := randx.New(seed)
		g := NewRandomGenome(n, r)
		for k := 0; k < int(rounds%20)+1; k++ {
			Mutate(g, MutationProportional, 1, r)
		}
		return g.Valid()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMutateNaivePreservesStochasticity(t *testing.T) {
	f := func(seed uint64, nRaw uint8, rounds uint8) bool {
		n := int(nRaw%8) + 2
		r := randx.New(seed)
		g := NewRandomGenome(n, r)
		for k := 0; k < int(rounds%20)+1; k++ {
			Mutate(g, MutationNaive, 1, r)
		}
		return g.Valid()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMutateChangesExactlyOneColumn(t *testing.T) {
	r := randx.New(7)
	for trial := 0; trial < 50; trial++ {
		g := NewRandomGenome(6, r)
		before := g.Clone()
		Mutate(g, MutationProportional, 1, r)
		changed := 0
		for i := range g {
			if !equalCol(g[i], before[i]) {
				changed++
			}
		}
		if changed > 1 {
			t.Fatalf("mutation touched %d columns, want at most 1", changed)
		}
	}
}

// TestMutateProportionalPreservesOrdering verifies the paper's motivation
// for the proportional operator: the relative order of the untouched
// elements within the mutated column is preserved (their "correlations" are
// maintained), unlike under the naive operator where the perturbed element's
// renormalization shifts everything multiplicatively anyway — ordering also
// holds there, so we check the sharper property: ratios between untouched
// elements under subtraction-compensation stay monotone.
func TestMutateProportionalPreservesOrdering(t *testing.T) {
	r := randx.New(11)
	for trial := 0; trial < 200; trial++ {
		g := NewRandomGenome(5, r)
		before := g.Clone()
		Mutate(g, MutationProportional, 1, r)
		// Find the mutated column and its pivot (the single element whose
		// change direction differs from everyone else's).
		for ci := range g {
			if equalCol(g[ci], before[ci]) {
				continue
			}
			// Ordering among all pairs excluding the pivot must persist.
			// Identify pivot: the element with the largest absolute change.
			pivot, best := -1, -1.0
			for j := range g[ci] {
				if d := math.Abs(g[ci][j] - before[ci][j]); d > best {
					pivot, best = j, d
				}
			}
			for x := range g[ci] {
				for y := range g[ci] {
					if x == pivot || y == pivot || x == y {
						continue
					}
					if (before[ci][x] < before[ci][y]) && (g[ci][x] > g[ci][y]+1e-12) {
						t.Fatalf("ordering violated in column %d: before %v after %v", ci, before[ci], g[ci])
					}
				}
			}
		}
	}
}

func TestMutateMinimalGenome(t *testing.T) {
	r := randx.New(5)
	g := Genome{{1}}
	Mutate(g, MutationProportional, 1, r) // must not panic on n=1
	if g[0][0] != 1 {
		t.Fatal("1-category genome changed")
	}
}

func TestMutateSaturatedColumn(t *testing.T) {
	// A column that is a point mass: the add-branch has no headroom and the
	// subtract branch must still work.
	r := randx.New(6)
	for trial := 0; trial < 100; trial++ {
		g := Genome{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
		Mutate(g, MutationProportional, 1, r)
		if !g.Valid() {
			t.Fatalf("mutation broke a deterministic genome: %v", g)
		}
	}
}

func BenchmarkCrossover(b *testing.B) {
	r := randx.New(1)
	g1 := NewRandomGenome(10, r)
	g2 := NewRandomGenome(10, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Crossover(g1, g2, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMutate(b *testing.B) {
	r := randx.New(1)
	g := NewRandomGenome(10, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mutate(g, MutationProportional, 1, r)
	}
}
