package core

import (
	"math"
	"sync"
	"time"

	"optrr/internal/obs"
	"optrr/internal/pareto"
	"optrr/internal/randx"
)

// This file is the island-model scheduler: with Config.Islands = W > 1 the
// search runs as W independent sub-populations, each a full SPEA2+Ω search
// (its own RNG stream, evaluation scratch and local Ω archive) over
// PopulationSize/W individuals. Every MigrateEvery generations the islands
// synchronize: each exports its MigrationSize best front members to its ring
// neighbor, and every local Ω folds into the global Ω under the paper's
// three-set update rule. Splitting the population cuts the O(n²)–O(n³)
// SPEA2 selection kernels by ~W× while the ring keeps the islands from
// diverging into duplicated work — parallel in wall-clock when cores exist,
// and cheaper in total instructions even on one core.
//
// Determinism: island i draws from randx.Stream(Seed, i), islands advance in
// lockstep epochs, and migration + Ω folding run sequentially in island
// order after a barrier — so the result depends only on (Seed, Islands,
// MigrateEvery, MigrationSize) and the rest of the Config, never on
// scheduling. The serial path (Islands <= 1) does not share any of this
// machinery and stays bit-for-bit identical to previous releases.

// islandState couples one island's optimizer with its loop state.
type islandState struct {
	idx  int
	opt  *Optimizer
	rs   *runState
	done bool
	err  error // fatal error; the epoch aborts
}

// runIslands drives the island-model search. Called by Run when
// cfg.Islands > 1.
func (o *Optimizer) runIslands() (Result, error) {
	cfg := o.cfg
	if err := ctxErr(cfg.Context); err != nil {
		return Result{}, cancelError(0, err)
	}
	o.emitStart()
	var wallStart time.Time
	if o.timed {
		wallStart = time.Now()
	}

	islands, err := o.buildIslands()
	if err != nil {
		return Result{}, err
	}
	refUtility := o.referenceUtility()

	var cancelErr error
	epoch := 0
	for {
		if err := ctxErr(cfg.Context); err != nil {
			cancelErr = cancelError(maxGen(islands), err)
			break
		}
		epochEnd := (epoch + 1) * cfg.MigrateEvery
		if epochEnd > cfg.Generations {
			epochEnd = cfg.Generations
		}
		// Advance every live island to the epoch boundary, one goroutine
		// per island. Islands share nothing while stepping; the barrier
		// below restores a deterministic global state before migration.
		var wg sync.WaitGroup
		for _, is := range islands {
			if is.done {
				continue
			}
			wg.Add(1)
			go func(is *islandState) {
				defer wg.Done()
				is.advanceTo(epochEnd)
			}(is)
		}
		wg.Wait()
		for _, is := range islands {
			if is.err != nil {
				return Result{}, is.err
			}
		}

		// Sequential, island-ordered: ring migration, then the global Ω
		// fold under the unchanged per-bin update rule.
		o.migrate(islands)
		for _, is := range islands {
			o.omega.Fold(is.opt.omega)
		}
		o.emitEpoch(epoch, islands, refUtility)
		epoch++

		live := false
		for _, is := range islands {
			if !is.done {
				live = true
			}
		}
		if !live {
			break
		}
	}

	return o.finishIslands(islands, wallStart), cancelErr
}

// buildIslands constructs the W sub-optimizers and seeds their initial
// populations. Each island search is the plain single-population loop over
// a PopulationSize/W slice of the budget, with its own decorrelated RNG
// stream and — as diversity/correctness anchors — the closed-form
// DP-optimal constant-diagonal matrices of Holohan et al. dealt across
// islands.
func (o *Optimizer) buildIslands() ([]*islandState, error) {
	cfg := o.cfg
	w := cfg.Islands
	subPop := cfg.PopulationSize / w
	if subPop < 8 {
		subPop = 8
	}
	subArch := cfg.ArchiveSize / w
	if subArch < 8 {
		subArch = 8
	}
	subWorkers := cfg.Workers / w
	if subWorkers < 1 {
		subWorkers = 1
	}
	islands := make([]*islandState, w)
	for i := range islands {
		sub := cfg
		sub.Islands = 0
		sub.MigrateEvery = 0
		sub.MigrationSize = 0
		sub.PopulationSize = subPop
		sub.ArchiveSize = subArch
		sub.Workers = subWorkers
		sub.Seed = randx.StreamSeed(cfg.Seed, uint64(i))
		sub.Progress = nil
		sub.Metrics = nil
		sub.Recorder = nil
		if o.rec.Enabled() {
			sub.Recorder = islandRecorder{rec: o.rec, island: i}
		}
		opt, err := New(sub)
		if err != nil {
			return nil, err
		}
		opt.seedGenomes = closedFormSeeds(len(cfg.Prior), i, w, subPop/2)
		opt.emitStart()
		rs, err := opt.begin()
		if err != nil {
			return nil, err
		}
		islands[i] = &islandState{idx: i, opt: opt, rs: rs}
	}
	return islands, nil
}

// advanceTo steps the island until it reaches the target generation, stops
// early (stagnation, cancellation) or fails.
func (is *islandState) advanceTo(target int) {
	budget := is.opt.cfg.Generations
	if target > budget {
		target = budget
	}
	for !is.done && is.rs.gen < target {
		done, err := is.opt.stepGeneration(is.rs)
		if err != nil {
			is.err = err
			is.done = true
			return
		}
		if done {
			is.done = true
		}
	}
	if is.rs.gen >= budget {
		is.done = true
	}
}

// migrate runs one synchronous ring exchange: every island's exports are
// drawn from its pre-migration state, then island i's emigrants join island
// (i+1) mod W — replacing the tail of the receiver's population and
// entering its local Ω — so the exchange is order-independent and
// deterministic.
func (o *Optimizer) migrate(islands []*islandState) {
	k := o.cfg.MigrationSize
	if k <= 0 || len(islands) < 2 {
		return
	}
	exports := make([][]Individual, len(islands))
	for i, is := range islands {
		exports[i] = is.emigrants(k)
	}
	for i, out := range exports {
		recv := islands[(i+1)%len(islands)]
		pop := recv.rs.population
		for j, ind := range out {
			if j >= len(pop) {
				break
			}
			pop[len(pop)-1-j] = Individual{Genome: ind.Genome.Clone(), Eval: ind.Eval}
		}
		recv.opt.omega.UpdateAll(out)
	}
}

// emigrants picks k members spread evenly across the island's current
// privacy range (its local Ω bins, or the archive front when Ω is
// disabled), so a migration carries the whole range rather than one corner.
// The returned genomes alias live island state — migrate clones whatever a
// receiver keeps — so a migration epoch copies only the matrices that
// actually move.
func (is *islandState) emigrants(k int) []Individual {
	if out := is.opt.omega.spread(k); len(out) > 0 {
		return out
	}
	archive := is.rs.archive
	pts := make([]pareto.Point, len(archive))
	for i, ind := range archive {
		pts[i] = ind.Point()
	}
	var front []Individual
	for _, i := range pareto.Front(pts) {
		front = append(front, archive[i])
	}
	if len(front) <= k {
		return front
	}
	out := make([]Individual, 0, k)
	for j := 0; j < k; j++ {
		out = append(out, front[j*(len(front)-1)/(k-1)])
	}
	return out
}

// finishIslands folds the island states into the run's Result: the global Ω
// front (already fed by every epoch's fold), the concatenated archives, and
// the summed evaluation counts. Generations reports the deepest island —
// the wall-clock-equivalent depth of the search.
func (o *Optimizer) finishIslands(islands []*islandState, wallStart time.Time) Result {
	archive := make([]Individual, 0, len(islands)*len(islands[0].rs.archive))
	evaluations := 0
	stagnated := len(islands) > 0
	for _, is := range islands {
		archive = append(archive, is.rs.archive...)
		evaluations += is.opt.evaluations
		if !is.rs.stagnated {
			stagnated = false
		}
	}
	o.evaluations = evaluations
	front := o.omega.FrontSnapshot()
	if !o.omega.Enabled() {
		archPts := make([]pareto.Point, len(archive))
		for i, ind := range archive {
			archPts[i] = ind.Point()
		}
		idx := pareto.Front(archPts)
		front = make([]Individual, 0, len(idx))
		for _, i := range idx {
			front = append(front, Individual{Genome: archive[i].Genome.Clone(), Eval: archive[i].Eval})
		}
	}
	res := Result{
		Front:       front,
		Archive:     archive,
		Generations: maxGen(islands),
		Evaluations: evaluations,
		Stagnated:   stagnated,
	}
	o.emitDone(res, wallStart)
	return res
}

// maxGen returns the deepest completed generation across islands.
func maxGen(islands []*islandState) int {
	gen := 0
	for _, is := range islands {
		if is.rs.gen > gen {
			gen = is.rs.gen
		}
	}
	return gen
}

// emitEpoch publishes one migration epoch: the "optimizer.migration" trace
// event, the global convergence snapshot, the registry mirrors, and the
// per-epoch Progress callback. This is the island-mode analogue of the
// serial per-generation emission.
func (o *Optimizer) emitEpoch(epoch int, islands []*islandState, refUtility float64) {
	if !o.observed {
		return
	}
	gen := maxGen(islands)
	front := o.omega.FrontSnapshot()
	if len(front) == 0 {
		return
	}
	pts := make([]pareto.Point, len(front))
	for i, ind := range front {
		pts[i] = ind.Point()
	}
	evaluations := 0
	for _, is := range islands {
		evaluations += is.opt.evaluations
	}
	st := Stats{
		Generation:       gen - 1,
		Evaluations:      evaluations,
		ArchiveSize:      0,
		OmegaOccupied:    o.omega.Len(),
		FrontHypervolume: pareto.Hypervolume(pts, 0, refUtility),
		FrontSize:        len(pts),
		Front:            pts,
	}
	for _, is := range islands {
		st.ArchiveSize += len(is.rs.archive)
	}
	st.Convergence = o.conv.observe(st.Generation, st.FrontHypervolume, o.omega, pts)
	if m := o.met; m != nil {
		m.generation.Set(float64(st.Generation))
		m.archiveSize.Set(float64(st.ArchiveSize))
		m.omegaBins.Set(float64(st.OmegaOccupied))
		m.frontSize.Set(float64(st.FrontSize))
		m.hypervolume.Set(st.FrontHypervolume)
		// Island sub-optimizers run without a registry, so the evaluation
		// counter advances here, one delta per epoch.
		m.evaluations.Add(int64(evaluations - o.evaluations))
	}
	o.evaluations = evaluations
	o.emitConvergence(st.Convergence)
	if o.rec.Enabled() {
		o.rec.Record("optimizer.migration", obs.Fields{
			"epoch":          epoch,
			"gen":            gen,
			"islands":        len(islands),
			"exports":        o.cfg.MigrationSize,
			"omega_occupied": st.OmegaOccupied,
			"hypervolume":    st.FrontHypervolume,
			"front_size":     st.FrontSize,
			"evals":          evaluations,
		})
	}
	if o.cfg.Progress != nil {
		o.cfg.Progress(st)
	}
}

// islandRecorder tags one island's trace stream: every event gains an
// "island" field and moves under the "optimizer.island." prefix, so a
// combined trace separates cleanly into the top-level run (optimizer.start,
// optimizer.migration, optimizer.done) and per-island detail.
type islandRecorder struct {
	rec    obs.Recorder
	island int
}

// Enabled implements obs.Recorder.
func (r islandRecorder) Enabled() bool { return r.rec.Enabled() }

// Record implements obs.Recorder.
func (r islandRecorder) Record(event string, fields obs.Fields) {
	const prefix = "optimizer."
	if len(event) > len(prefix) && event[:len(prefix)] == prefix {
		event = "optimizer.island." + event[len(prefix):]
	}
	fields["island"] = r.island
	r.rec.Record(event, fields)
}

// closedFormEpsilons is the ε grid of the closed-form anchors: log-spaced
// from nearly-uniform (high privacy) to nearly-identity (high utility).
var closedFormEpsilons = []float64{0.25, 0.5, 1, 2, 4, 8}

// closedFormSeeds returns island i's share of the closed-form seed family:
// the constant-diagonal k-RR matrices γ(ε) = e^ε/(e^ε+n−1) that Holohan et
// al. prove optimal among ε-differentially-private randomised-response
// mechanisms. Dealt round-robin across islands, they anchor each island in
// a different privacy regime; a seed that violates the δ bound is repaired
// or replaced by the normal feasibility machinery like any other genome.
func closedFormSeeds(n, island, islands, max int) []Genome {
	if max <= 0 {
		return nil
	}
	var out []Genome
	for t, eps := range closedFormEpsilons {
		if t%islands != island || len(out) >= max {
			continue
		}
		gamma := math.Exp(eps) / (math.Exp(eps) + float64(n-1))
		out = append(out, diagonalGenome(n, gamma))
	}
	return out
}

// diagonalGenome builds the genome of the constant-diagonal scheme: γ on
// the diagonal, (1−γ)/(n−1) elsewhere (the k-RR / Warner family, see
// rr.Warner).
func diagonalGenome(n int, gamma float64) Genome {
	off := (1 - gamma) / float64(n-1)
	g := make(Genome, n)
	for i := range g {
		col := make([]float64, n)
		for j := range col {
			col[j] = off
		}
		col[i] = gamma
		g[i] = col
	}
	return g
}
