package core

import (
	"testing"
	"testing/quick"

	"optrr/internal/metrics"
	"optrr/internal/randx"
)

func indAt(privacy, utility float64) Individual {
	return Individual{
		Genome: Genome{{1, 0}, {0, 1}},
		Eval:   metrics.Evaluation{Privacy: privacy, Utility: utility},
	}
}

func TestOmegaDisabled(t *testing.T) {
	o := NewOmega(0)
	if o.Enabled() {
		t.Fatal("size-0 Omega reports enabled")
	}
	if o.Update(indAt(0.5, 0.1)) {
		t.Fatal("disabled Omega accepted an update")
	}
	if o.Len() != 0 || len(o.Snapshot()) != 0 {
		t.Fatal("disabled Omega non-empty")
	}
	if o.ImproveArchive([]Individual{indAt(0.5, 0.1)}) != 0 {
		t.Fatal("disabled Omega improved an archive")
	}
}

func TestOmegaUpdateKeepsBest(t *testing.T) {
	o := NewOmega(10)
	if !o.Update(indAt(0.55, 0.3)) {
		t.Fatal("first update rejected")
	}
	if o.Update(indAt(0.552, 0.4)) {
		t.Fatal("worse same-bin entry accepted")
	}
	if !o.Update(indAt(0.551, 0.2)) {
		t.Fatal("better same-bin entry rejected")
	}
	snap := o.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot size = %d, want 1", len(snap))
	}
	if snap[0].Eval.Utility != 0.2 {
		t.Fatalf("bin kept utility %v, want 0.2", snap[0].Eval.Utility)
	}
}

func TestOmegaBinIndexing(t *testing.T) {
	o := NewOmega(10)
	o.Update(indAt(0.05, 1))  // bin 0
	o.Update(indAt(0.15, 1))  // bin 1
	o.Update(indAt(0.95, 1))  // bin 9
	o.Update(indAt(-0.5, 1))  // clamps to bin 0 (better utility would be needed)
	o.Update(indAt(1.5, 0.5)) // clamps to bin 9, improves it
	if o.Len() != 3 {
		t.Fatalf("occupied bins = %d, want 3", o.Len())
	}
	snap := o.Snapshot()
	if snap[len(snap)-1].Eval.Utility != 0.5 {
		t.Fatal("clamped high-privacy update did not improve the last bin")
	}
}

func TestOmegaSnapshotIsolation(t *testing.T) {
	o := NewOmega(10)
	o.Update(indAt(0.5, 0.1))
	snap := o.Snapshot()
	snap[0].Genome[0][0] = 42
	snap2 := o.Snapshot()
	if snap2[0].Genome[0][0] == 42 {
		t.Fatal("snapshot shares genome storage with Omega")
	}
}

func TestOmegaUpdateClones(t *testing.T) {
	o := NewOmega(10)
	ind := indAt(0.5, 0.1)
	o.Update(ind)
	ind.Genome[0][0] = 42
	if o.Snapshot()[0].Genome[0][0] == 42 {
		t.Fatal("Update stored the caller's genome without cloning")
	}
}

func TestOmegaImproveArchive(t *testing.T) {
	o := NewOmega(10)
	o.Update(indAt(0.55, 0.1))
	archive := []Individual{
		indAt(0.552, 0.5), // same bin, worse utility: should be replaced
		indAt(0.75, 0.05), // different bin: untouched
	}
	replaced := o.ImproveArchive(archive)
	if replaced != 1 {
		t.Fatalf("replaced = %d, want 1", replaced)
	}
	if archive[0].Eval.Utility != 0.1 {
		t.Fatalf("archive[0] utility = %v, want 0.1", archive[0].Eval.Utility)
	}
	if archive[1].Eval.Utility != 0.05 {
		t.Fatal("archive[1] was touched")
	}
}

func TestOmegaFrontSnapshotNonDominated(t *testing.T) {
	o := NewOmega(100)
	o.Update(indAt(0.30, 0.10))
	o.Update(indAt(0.50, 0.20))
	o.Update(indAt(0.40, 0.30)) // dominated by the 0.50/0.20 entry
	front := o.FrontSnapshot()
	if len(front) != 2 {
		t.Fatalf("front size = %d, want 2", len(front))
	}
	for _, ind := range front {
		if ind.Eval.Privacy == 0.40 {
			t.Fatal("dominated entry survived FrontSnapshot")
		}
	}
}

// TestPropertyOmegaMonotone: per-bin utility never worsens under any update
// sequence (the DESIGN.md invariant).
func TestPropertyOmegaMonotone(t *testing.T) {
	f := func(seed uint64, count uint8) bool {
		r := randx.New(seed)
		o := NewOmega(50)
		best := make(map[int]float64)
		for i := 0; i < int(count); i++ {
			p, u := r.Float64(), r.Float64()
			o.Update(indAt(p, u))
			bin := o.binIndex(p)
			if cur, ok := best[bin]; !ok || u < cur {
				best[bin] = u
			}
		}
		for _, ind := range o.Snapshot() {
			bin := o.binIndex(ind.Eval.Privacy)
			if want, ok := best[bin]; !ok || ind.Eval.Utility != want {
				return false
			}
		}
		return len(best) == o.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkOmegaUpdate(b *testing.B) {
	o := NewOmega(1000)
	r := randx.New(1)
	inds := make([]Individual, 256)
	for i := range inds {
		inds[i] = indAt(r.Float64(), r.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Update(inds[i%len(inds)])
	}
}
