package core

import (
	"math"
	"sync"
	"testing"

	"optrr/internal/metrics"
	"optrr/internal/obs"
	"optrr/internal/pareto"
	"optrr/internal/randx"
)

// TestConvergenceSnapshotInvariants runs an observed search and checks the
// per-generation snapshot obeys its contracts: best hypervolume is monotone,
// the stall clock resets exactly on improvement, and Ω churn reconciles with
// the occupied-bin count.
func TestConvergenceSnapshotInvariants(t *testing.T) {
	var snaps []Convergence
	var lastOmega int
	cfg := obsTestConfig()
	cfg.Generations = 12
	cfg.Progress = func(s Stats) {
		snaps = append(snaps, s.Convergence)
		lastOmega = s.OmegaOccupied
	}
	runWith(t, cfg)

	if len(snaps) != cfg.Generations {
		t.Fatalf("got %d snapshots, want %d", len(snaps), cfg.Generations)
	}
	best := math.Inf(-1)
	inserts, evictions := 0, 0
	for g, c := range snaps {
		if c.Generation != g {
			t.Fatalf("snapshot %d has generation %d", g, c.Generation)
		}
		if c.BestHypervolume < best {
			t.Fatalf("gen %d best hypervolume decreased: %v < %v", g, c.BestHypervolume, best)
		}
		best = c.BestHypervolume
		if c.Hypervolume > c.BestHypervolume {
			t.Fatalf("gen %d hypervolume %v above best %v", g, c.Hypervolume, c.BestHypervolume)
		}
		if c.Improved && c.SinceImprovement != 0 {
			t.Fatalf("gen %d improved but SinceImprovement = %d", g, c.SinceImprovement)
		}
		if !c.Improved && g > 0 && c.SinceImprovement != snaps[g-1].SinceImprovement+1 {
			t.Fatalf("gen %d stall clock did not advance: %d after %d",
				g, c.SinceImprovement, snaps[g-1].SinceImprovement)
		}
		if c.OmegaInserts < 0 || c.OmegaEvictions < 0 || c.OmegaEvictions > c.OmegaInserts+evictions-inserts+lastOmega {
			t.Fatalf("gen %d churn out of range: inserts=%d evictions=%d", g, c.OmegaInserts, c.OmegaEvictions)
		}
		inserts += c.OmegaInserts
		evictions += c.OmegaEvictions
		if c.Spread < 0 || math.IsNaN(c.Spread) {
			t.Fatalf("gen %d spread = %v", g, c.Spread)
		}
	}
	if inserts == 0 {
		t.Fatal("no Ω inserts across the whole run")
	}
	if inserts-evictions != lastOmega {
		t.Fatalf("churn does not reconcile: %d inserts - %d evictions != %d occupied bins",
			inserts, evictions, lastOmega)
	}
	// The first generation always improves on the empty history.
	if !snaps[0].Improved {
		t.Fatal("generation 0 not marked improved")
	}
}

// TestConvergenceTrackerStall drives the tracker directly: a flat
// hypervolume must raise the stall flag exactly at the window, and an
// improvement must clear it.
func TestConvergenceTrackerStall(t *testing.T) {
	omega := NewOmega(10)
	tr := newConvergenceTracker(3)
	front := []pareto.Point{{Privacy: 0.2, Utility: 0.5}, {Privacy: 0.5, Utility: 0.2}}

	c := tr.observe(0, 1.0, omega, front)
	if !c.Improved || c.Stalled {
		t.Fatalf("gen 0: %+v", c)
	}
	for gen := 1; gen <= 3; gen++ {
		c = tr.observe(gen, 1.0, omega, front)
		if c.Improved {
			t.Fatalf("gen %d improved on flat hypervolume", gen)
		}
		if wantStall := gen >= 3; c.Stalled != wantStall {
			t.Fatalf("gen %d stalled = %v, want %v", gen, c.Stalled, wantStall)
		}
	}
	// Float-noise gains must not reset the stall clock...
	c = tr.observe(4, 1.0+1e-12, omega, front)
	if c.Improved || !c.Stalled {
		t.Fatalf("noise gain counted as improvement: %+v", c)
	}
	// ...but a real gain must.
	c = tr.observe(5, 1.1, omega, front)
	if !c.Improved || c.Stalled || c.SinceImprovement != 0 {
		t.Fatalf("real gain not registered: %+v", c)
	}
	if c.BestHypervolume != 1.1 {
		t.Fatalf("best hypervolume = %v, want 1.1", c.BestHypervolume)
	}
}

// TestConvergenceTrackerChurnDiffs: the tracker reports per-generation
// deltas of the cumulative Ω counters.
func TestConvergenceTrackerChurnDiffs(t *testing.T) {
	omega := NewOmega(100)
	tr := newConvergenceTracker(0)
	rng := randx.New(1)
	ind := func(priv, util float64) Individual {
		g := NewRandomGenome(3, rng)
		return Individual{Genome: g, Eval: metrics.Evaluation{Privacy: priv, Utility: util}}
	}
	omega.Update(ind(0.105, 0.5)) // insert
	omega.Update(ind(0.205, 0.5)) // insert
	c := tr.observe(0, 1, omega, nil)
	if c.OmegaInserts != 2 || c.OmegaEvictions != 0 {
		t.Fatalf("gen 0 churn = %+v", c)
	}
	omega.Update(ind(0.105, 0.4)) // evicts the first bin's entry
	omega.Update(ind(0.305, 0.5)) // insert
	omega.Update(ind(0.305, 0.9)) // worse: no churn
	c = tr.observe(1, 1, omega, nil)
	if c.OmegaInserts != 2 || c.OmegaEvictions != 1 {
		t.Fatalf("gen 1 churn = %+v", c)
	}
	c = tr.observe(2, 1, omega, nil)
	if c.OmegaInserts != 0 || c.OmegaEvictions != 0 {
		t.Fatalf("gen 2 churn = %+v", c)
	}
}

// TestConvergenceRegistryGauges: the registry mirrors of the snapshot are
// present and consistent after an observed run.
func TestConvergenceRegistryGauges(t *testing.T) {
	reg := obs.NewRegistry()
	var last Convergence
	cfg := obsTestConfig()
	cfg.Metrics = reg
	cfg.Progress = func(s Stats) { last = s.Convergence }
	runWith(t, cfg)

	if got := reg.Gauge("optimizer.convergence.best_hypervolume").Value(); got != last.BestHypervolume {
		t.Fatalf("best_hypervolume gauge = %v, want %v", got, last.BestHypervolume)
	}
	if got := reg.Gauge("optimizer.convergence.stale_generations").Value(); got != float64(last.SinceImprovement) {
		t.Fatalf("stale_generations gauge = %v, want %d", got, last.SinceImprovement)
	}
	if got := reg.Gauge("optimizer.convergence.stalled").Value(); got != 0 && got != 1 {
		t.Fatalf("stalled gauge = %v, want 0 or 1", got)
	}
	ins := reg.Counter("optimizer.omega_inserts").Value()
	evs := reg.Counter("optimizer.omega_evictions").Value()
	occupied := reg.Gauge("optimizer.omega_occupied").Value()
	if ins <= 0 || float64(ins-evs) != occupied {
		t.Fatalf("omega churn counters inconsistent: inserts=%d evictions=%d occupied=%v", ins, evs, occupied)
	}
}

// TestConvergenceConcurrentScrape runs an observed search while other
// goroutines hammer the registry's render paths — the live-scrape scenario
// the debug server's /metrics endpoint creates. Run under -race by ci.sh.
func TestConvergenceConcurrentScrape(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := obsTestConfig()
	cfg.Generations = 8
	cfg.Metrics = reg
	cfg.Recorder = obs.NewMemory()

	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				_ = reg.String()
				_ = reg.Snapshot()
			}
		}()
	}
	runWith(t, cfg)
	close(done)
	wg.Wait()

	if got := reg.Gauge("optimizer.generation").Value(); got != float64(cfg.Generations-1) {
		t.Fatalf("final generation gauge = %v", got)
	}
}

// TestConvergenceDoesNotPerturbSearch: the convergence layer is telemetry
// only — an observed run must produce the same front as a bare one (already
// covered for the recorder; this pins the tracker-on-Progress path too).
func TestConvergenceDoesNotPerturbSearch(t *testing.T) {
	bare := runWith(t, obsTestConfig())
	cfg := obsTestConfig()
	cfg.Progress = func(Stats) {}
	observed := runWith(t, cfg)
	a, b := bare.FrontPoints(), observed.FrontPoints()
	if len(a) != len(b) {
		t.Fatalf("front sizes diverged: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("front point %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// BenchmarkConvergenceSnapshot times one per-generation snapshot — tracker
// fold, spread computation over a realistic 40-point archive front, and the
// registry mirror — the exact extra work a traced generation now pays.
// Pinned into the ci.sh bench smoke.
func BenchmarkConvergenceSnapshot(b *testing.B) {
	front := make([]pareto.Point, 40)
	for i := range front {
		f := float64(i) / 40
		front[i] = pareto.Point{Privacy: 0.1 + 0.6*f, Utility: 1e-4 * (1.2 - f)}
	}
	omega := NewOmega(1000)
	tr := newConvergenceTracker(0)
	opt := &Optimizer{rec: obs.Nop, met: newOptimizerMetrics(obs.NewRegistry())}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := tr.observe(i, 0.5+float64(i%16)*1e-3, omega, front)
		opt.emitConvergence(c)
	}
}
