package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"optrr/internal/emoo"
	"optrr/internal/metrics"
	"optrr/internal/obs"
	"optrr/internal/pareto"
	"optrr/internal/randx"
	"optrr/internal/rr"
)

// Engine selects the evolutionary multi-objective algorithm driving the
// search. The paper chooses SPEA2 over other EMO algorithms citing a
// comparison study (Section V); EngineNSGA2 exists to validate that choice
// (the abl-nsga2 experiment).
type Engine int

const (
	// EngineSPEA2 is the paper's algorithm (default).
	EngineSPEA2 Engine = iota
	// EngineNSGA2 swaps in NSGA-II fitness and environmental selection.
	EngineNSGA2
)

// String implements fmt.Stringer.
func (e Engine) String() string {
	switch e {
	case EngineSPEA2:
		return "spea2"
	case EngineNSGA2:
		return "nsga2"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// BoundMode selects how matrices violating the δ bound are handled — the
// paper repairs them (Section V-G); rejection is the ablation baseline.
type BoundMode int

const (
	// BoundRepair pushes violating matrices back under the bound.
	BoundRepair BoundMode = iota
	// BoundReject discards violating matrices and substitutes fresh random
	// feasible ones.
	BoundReject
)

// String implements fmt.Stringer.
func (b BoundMode) String() string {
	switch b {
	case BoundRepair:
		return "repair"
	case BoundReject:
		return "reject"
	default:
		return fmt.Sprintf("BoundMode(%d)", int(b))
	}
}

// Config parameterizes the optimizer. The zero value is not runnable; use
// DefaultConfig as a starting point.
type Config struct {
	// Prior is the original-data category distribution P(X) the privacy and
	// utility metrics are computed against. Required.
	Prior []float64
	// Records is the data-set size N entering the utility MSE. Required.
	Records int
	// Delta is the worst-case posterior bound δ of Equation (9). Required;
	// must exceed the prior mode (Theorem 5) to be satisfiable.
	Delta float64

	// PopulationSize is N_Q; zero means 40.
	PopulationSize int
	// ArchiveSize is N_V; zero means 40.
	ArchiveSize int
	// OmegaSize is N_Ω, the number of privacy bins of the optimal set;
	// zero disables Ω (plain SPEA2, the ablation baseline). The paper's
	// experiments use 1000.
	OmegaSize int
	// Generations is the iteration budget L. Zero means 500.
	Generations int
	// StagnationLimit stops the run after this many consecutive generations
	// without any Ω improvement (the paper's alternative termination
	// criterion). Zero disables stagnation-based termination.
	StagnationLimit int

	// MutationRate is the per-child probability of applying the mutation
	// operator after crossover. Zero means 0.6.
	MutationRate float64
	// MutationsPerChild is the number of mutation applications on a child
	// selected for mutation; zero means 2. Values above one speed up the
	// discovery of the coordinated cross-column structures at the
	// low-privacy end of the front.
	MutationsPerChild int
	// ImmigrantFraction is the share of each generation's population
	// replaced by fresh random genomes, maintaining exploration pressure
	// far from the current front. Zero means 0.1; negative disables.
	ImmigrantFraction float64
	// MutationStyle selects the paper's proportional mutation (default) or
	// the naive renormalizing baseline.
	MutationStyle MutationStyle
	// BoundMode selects repair (default, the paper) or reject.
	BoundMode BoundMode
	// SymmetricOnly restricts the search to symmetric matrices,
	// reproducing the Agrawal–Haritsa related-work restriction.
	SymmetricOnly bool
	// Engine selects the EMO algorithm (default: SPEA2, the paper's).
	Engine Engine
	// PrivacyFn, if non-nil, replaces the paper's Equation-8 privacy with a
	// custom objective (e.g. metrics.PrivacyWithGain under an ordinal gain
	// — the generalized adversary of Section IV-A). It must return values
	// in [0, 1] with larger meaning more private; the δ bound of Equation 9
	// is enforced regardless.
	PrivacyFn func(m *rr.Matrix, prior []float64) (float64, error)
	// Objectives lists extra objectives appended to the canonical
	// privacy/utility pair, turning the search k-dimensional (k = 2 +
	// len(Objectives), at most 2 + pareto.MaxExtraObjectives). Each is
	// evaluated against the worker's Workspace right after the fused
	// Evaluate, so built-ins reuse the already-computed P* and inverse.
	// Values are stored in Individual.Eval.Extra in canonical minimized
	// form (Maximize objectives negated) and participate in dominance,
	// SPEA2 density and the final front. Nil (the default) is the paper's
	// two-objective search, bit-for-bit unchanged.
	Objectives []metrics.Objective

	// Context, if non-nil, bounds the run: it is checked once per
	// generation, and a cancelled or deadline-exceeded context stops the
	// search at the next generation boundary. Run then returns the best
	// front found so far together with an error wrapping ctx.Err(), so
	// callers keep the partial result. Nil means no deadline (identical to
	// context.Background()) and costs nothing.
	Context context.Context

	// Seed drives all randomness; runs with equal configs are bit-for-bit
	// reproducible.
	Seed uint64
	// Workers bounds the parallelism of objective evaluation; zero means
	// GOMAXPROCS. Results are bit-for-bit identical at every worker count.
	Workers int

	// Islands splits the search into this many independent sub-populations
	// (each with its own RNG stream, scratch and local Ω archive) that
	// exchange their best members along a ring every MigrateEvery
	// generations and fold their fronts into one global Ω. 0 or 1 (the
	// default) is the single-population search, bit-for-bit identical to
	// previous releases regardless of Workers. Island runs are
	// seeded-reproducible for a fixed (Seed, Islands, MigrateEvery,
	// MigrationSize) but produce different (equivalent-quality) fronts than
	// the serial search. In island mode Progress fires once per migration
	// epoch rather than per generation.
	Islands int
	// MigrateEvery is the migration interval M in generations; zero means
	// 25. Only meaningful with Islands > 1.
	MigrateEvery int
	// MigrationSize is the number of front members each island exports to
	// its ring neighbor per migration; zero means 4. Only meaningful with
	// Islands > 1.
	MigrationSize int

	// SPEA2 tuning (see emoo.Config). KNearest zero means 1.
	KNearest  int
	Normalize bool

	// Progress, if non-nil, is invoked after every generation with running
	// statistics. It must not retain the Stats value's slices — they alias a
	// scratch buffer the optimizer overwrites next generation; callbacks
	// that keep Stats past their return must use Stats.Clone.
	Progress func(Stats)

	// Recorder, if non-nil and enabled, receives the structured run-trace
	// events "optimizer.start", "optimizer.generation" (one per generation,
	// with evaluation, repair, Ω and per-phase wall-time detail) and
	// "optimizer.done". A nil or no-op recorder costs nothing: no events
	// are built and no extra timing is taken.
	Recorder obs.Recorder
	// Metrics, if non-nil, receives live counters and gauges under the
	// "optimizer." name prefix (see newOptimizerMetrics), suitable for
	// expvar publication while a search runs.
	Metrics *obs.Registry
}

// DefaultConfig returns the configuration used throughout the paper's
// experiments, for the given prior, record count and bound.
func DefaultConfig(prior []float64, records int, delta float64) Config {
	return Config{
		Prior:       prior,
		Records:     records,
		Delta:       delta,
		OmegaSize:   1000,
		Generations: 500,
		Normalize:   true,
	}
}

func (c Config) withDefaults() Config {
	if c.PopulationSize == 0 {
		c.PopulationSize = 40
	}
	if c.ArchiveSize == 0 {
		c.ArchiveSize = 40
	}
	if c.Generations == 0 {
		c.Generations = 500
	}
	if c.MutationRate == 0 {
		c.MutationRate = 0.6
	}
	if c.MutationsPerChild == 0 {
		c.MutationsPerChild = 2
	}
	if c.ImmigrantFraction == 0 {
		c.ImmigrantFraction = 0.1
	}
	if c.ImmigrantFraction < 0 {
		c.ImmigrantFraction = 0
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.KNearest == 0 {
		c.KNearest = 1
	}
	if c.Islands > 1 {
		if c.MigrateEvery == 0 {
			c.MigrateEvery = 25
		}
		if c.MigrationSize == 0 {
			c.MigrationSize = 4
		}
	}
	return c
}

func (c Config) emooConfig() emoo.Config {
	return emoo.Config{KNearest: c.KNearest, Normalize: c.Normalize}
}

// Optimizer errors.
var (
	// ErrBadConfig reports an unusable configuration.
	ErrBadConfig = errors.New("core: invalid configuration")
	// ErrInfeasibleBound reports a δ below the prior mode, which no RR
	// matrix can satisfy (Theorem 5).
	ErrInfeasibleBound = errors.New("core: privacy bound is below the prior mode (Theorem 5)")
)

// ctxErr returns the context's error, tolerating the nil context the zero
// Config carries.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// cancelError wraps a context error with run progress: callers can test
// errors.Is(err, context.Canceled) / context.DeadlineExceeded and still see
// how far the search got before it stopped.
func cancelError(gen int, err error) error {
	return fmt.Errorf("core: optimization stopped after %d generations: %w", gen, err)
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if len(c.Prior) < 2 {
		return fmt.Errorf("%w: prior must have at least 2 categories", ErrBadConfig)
	}
	var sum float64
	for i, v := range c.Prior {
		if v < 0 || math.IsNaN(v) {
			return fmt.Errorf("%w: prior[%d] = %v", ErrBadConfig, i, v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("%w: prior sums to %v", ErrBadConfig, sum)
	}
	if c.Records <= 0 {
		return fmt.Errorf("%w: records = %d", ErrBadConfig, c.Records)
	}
	if c.Delta <= 0 || c.Delta > 1 {
		return fmt.Errorf("%w: delta = %v outside (0, 1]", ErrBadConfig, c.Delta)
	}
	if metrics.BoundFloor(c.Prior) > c.Delta+1e-12 {
		return fmt.Errorf("%w: delta = %v, prior mode = %v", ErrInfeasibleBound, c.Delta, metrics.BoundFloor(c.Prior))
	}
	if c.PopulationSize < 0 || c.ArchiveSize < 0 || c.Generations < 0 || c.OmegaSize < 0 {
		return fmt.Errorf("%w: negative size", ErrBadConfig)
	}
	if c.MutationRate < 0 || c.MutationRate > 1 {
		return fmt.Errorf("%w: mutation rate %v outside [0, 1]", ErrBadConfig, c.MutationRate)
	}
	if c.Islands < 0 || c.MigrateEvery < 0 || c.MigrationSize < 0 {
		return fmt.Errorf("%w: negative island parameter", ErrBadConfig)
	}
	return validateObjectives(c.Objectives)
}

// validateObjectives checks an extra-objective list: bounded by the Point
// capacity, no nils, and unique non-reserved names.
func validateObjectives(objs []metrics.Objective) error {
	if len(objs) > pareto.MaxExtraObjectives {
		return fmt.Errorf("%w: %d extra objectives, at most %d supported", ErrBadConfig, len(objs), pareto.MaxExtraObjectives)
	}
	seen := make(map[string]bool, len(objs))
	for i, obj := range objs {
		if obj == nil {
			return fmt.Errorf("%w: objective %d is nil", ErrBadConfig, i)
		}
		name := obj.Name()
		if name == "" {
			return fmt.Errorf("%w: objective %d has an empty name", ErrBadConfig, i)
		}
		if name == "privacy" || name == "utility" {
			return fmt.Errorf("%w: objective name %q is reserved for the canonical axes", ErrBadConfig, name)
		}
		if seen[name] {
			return fmt.Errorf("%w: duplicate objective %q", ErrBadConfig, name)
		}
		seen[name] = true
	}
	return nil
}

// evalExtras evaluates the extra objectives against the workspace state left
// by the fused Evaluate on m, returning their values in canonical minimized
// form. Nil objs (the two-objective fast path) returns nil without touching
// the workspace.
func evalExtras(ws *metrics.Workspace, m *rr.Matrix, prior []float64, records int, objs []metrics.Objective) ([]float64, error) {
	if len(objs) == 0 {
		return nil, nil
	}
	extra := make([]float64, len(objs))
	for t, obj := range objs {
		v, err := obj.Evaluate(ws, m, prior, records)
		if err != nil {
			return nil, err
		}
		extra[t] = metrics.CanonicalValue(obj, v)
	}
	return extra, nil
}

// Stats summarizes a generation for progress reporting.
type Stats struct {
	// Generation is the zero-based index of the completed generation.
	Generation int
	// Evaluations is the cumulative number of objective evaluations.
	Evaluations int
	// ArchiveSize is the current archive population.
	ArchiveSize int
	// OmegaOccupied is the number of occupied Ω bins.
	OmegaOccupied int
	// OmegaImproved is the number of Ω bins improved this generation.
	OmegaImproved int
	// FrontHypervolume is the hypervolume of the current archive front with
	// reference point (0, refUtility), where refUtility is the utility of
	// the totally uninformative estimate; it grows as the front advances.
	// For runs with extra objectives this remains the privacy/utility
	// projection (see pareto.Hypervolume) so the trend stays comparable
	// across configurations.
	FrontHypervolume float64
	// FrontSize is the number of non-dominated points in the archive.
	FrontSize int
	// Repairs is the number of children needing bound repair (Section V-G)
	// this generation.
	Repairs int
	// RepairPushBack is the total probability mass repair moved off
	// violating entries this generation.
	RepairPushBack float64
	// Redraws is the number of infeasible children replaced by fresh random
	// genomes this generation.
	Redraws int
	// Rejects is the number of children discarded by BoundReject this
	// generation.
	Rejects int
	// Front is the archive in objective space. The slice aliases a scratch
	// buffer the optimizer overwrites every generation: callbacks keeping
	// Stats past their return must use Clone.
	Front []pareto.Point
	// Convergence is the generation's search-quality snapshot: best
	// hypervolume so far, generations since it improved, stall flag, Ω
	// churn and front spread. See the Convergence type.
	Convergence Convergence
}

// Clone returns a deep copy of the stats that is safe to retain after the
// Progress callback returns: the Front slice is copied out of the
// optimizer's reused scratch buffer.
func (s Stats) Clone() Stats {
	if s.Front != nil {
		s.Front = append([]pareto.Point(nil), s.Front...)
	}
	return s
}

// Result is the outcome of a Run.
type Result struct {
	// Front is the Pareto-optimal set the paper outputs: the non-dominated
	// members of Ω (or of the final archive when Ω is disabled), sorted by
	// ascending privacy.
	Front []Individual
	// Archive is the final SPEA2 archive.
	Archive []Individual
	// Generations is the number of generations actually run.
	Generations int
	// Evaluations is the total number of objective evaluations.
	Evaluations int
	// Stagnated reports whether the run stopped on the stagnation criterion
	// rather than the generation budget.
	Stagnated bool
}

// FrontPoints returns the result front in objective space, ascending in
// privacy.
func (res Result) FrontPoints() []pareto.Point {
	pts := make([]pareto.Point, len(res.Front))
	for i, ind := range res.Front {
		pts[i] = ind.Point()
	}
	pareto.SortByPrivacy(pts)
	return pts
}

// Matrices converts the result front into validated RR matrices.
func (res Result) Matrices() ([]*rr.Matrix, error) {
	out := make([]*rr.Matrix, len(res.Front))
	for i, ind := range res.Front {
		m, err := ind.Genome.Matrix()
		if err != nil {
			return nil, err
		}
		out[i] = m
	}
	return out, nil
}

// Optimizer runs the paper's SPEA2-based search. Construct with New.
type Optimizer struct {
	cfg   Config
	rng   *randx.Source
	omega *Omega

	evaluations int

	// Observability plumbing. rec is never nil (OrNop); met is nil without
	// a registry. observed gates all per-generation Stats assembly, timed
	// gates wall-clock sampling, so the bare configuration pays for none of
	// it.
	rec      obs.Recorder
	met      *optimizerMetrics
	observed bool
	timed    bool
	// conv folds per-generation fronts into Convergence snapshots; only
	// consulted when observed.
	conv convergenceTracker
	// frontBuf is the objective-space scratch buffer reused every
	// generation for mating selection and Stats.Front — the reuse is why
	// Progress callbacks must not retain Stats slices without Clone.
	frontBuf []pareto.Point
	// tally accumulates per-generation repair/redraw/reject counts inside
	// realize; Run resets it at the top of every generation.
	tally generationTally
	// fitnessDur/truncateDur accumulate, when timed, the wall time of the
	// generation's SPEA2 fitness assignments and environmental selection
	// (truncation) — the sub-phases of "select" whose kernels parallelize
	// across Workers. Run resets them with the tally.
	fitnessDur  time.Duration
	truncateDur time.Duration

	// Hot-path scratch, persistent across generations. emooScratch backs
	// SPEA2 fitness/selection; workers holds one evaluation workspace per
	// configured worker; unionBuf/unionPts/outcomes are the per-generation
	// population ∪ archive buffers.
	emooScratch *emoo.Scratch
	workers     []*workerScratch
	unionBuf    []Individual
	unionPts    []pareto.Point
	outcomes    []genomeOutcome

	// seedGenomes, when non-nil, is injected at the head of the initial
	// population before the random fill — the island scheduler's
	// closed-form anchors. Never set on the plain serial path.
	seedGenomes []Genome
}

// generationTally counts the feasibility work done by one generation's
// realize pass.
type generationTally struct {
	repairs  int
	pushBack float64
	redraws  int
	rejects  int
}

// New validates the configuration and returns a ready optimizer.
func New(cfg Config) (*Optimizer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	rec := obs.OrNop(cfg.Recorder)
	met := newOptimizerMetrics(cfg.Metrics)
	workers := make([]*workerScratch, cfg.Workers)
	for i := range workers {
		workers[i] = newWorkerScratch()
	}
	return &Optimizer{
		cfg:         cfg,
		rng:         randx.New(cfg.Seed),
		omega:       NewOmega(cfg.OmegaSize),
		rec:         rec,
		met:         met,
		observed:    cfg.Progress != nil || rec.Enabled() || met != nil,
		timed:       rec.Enabled() || met != nil,
		conv:        newConvergenceTracker(cfg.StagnationLimit),
		emooScratch: emoo.NewScratch(),
		workers:     workers,
	}, nil
}

// Run executes the optimization loop of Section V-A:
//
//  1. fitness assignment over population ∪ archive,
//  2. environmental selection into the next archive,
//  3. binary-tournament mating selection,
//  4. crossover and mutation into the next population,
//  5. bound repair (or rejection),
//  6. three-set update with Ω,
//  7. termination on the generation budget or Ω stagnation.
//
// With Config.Islands > 1 the same loop runs as independent island
// searches with periodic migration; see runIslands.
func (o *Optimizer) Run() (Result, error) {
	if o.cfg.Islands > 1 {
		return o.runIslands()
	}
	if err := ctxErr(o.cfg.Context); err != nil {
		// Already cancelled: return promptly, before paying for the seed
		// population. The front is empty — no work was done.
		return Result{}, cancelError(0, err)
	}
	o.emitStart()
	st, err := o.begin()
	if err != nil {
		return Result{}, err
	}
	for st.gen < o.cfg.Generations {
		done, err := o.stepGeneration(st)
		if err != nil {
			return Result{}, err
		}
		if done {
			break
		}
	}
	return o.finish(st), st.cancelErr
}

// runState is one search's loop state between generations. Run drives it
// straight through the generation budget; the island scheduler advances W of
// them a migration interval at a time.
type runState struct {
	population []Individual
	archive    []Individual
	gen        int  // completed generations
	stagnant   int  // consecutive generations without Ω improvement
	stagnated  bool // stopped on the stagnation criterion
	cancelErr  error
	refUtility float64
	wallStart  time.Time
}

// begin seeds the initial population and prepares the loop state. It does
// not emit the start event — island mode emits one start per island through
// the tagged recorder, so emission stays with the caller.
func (o *Optimizer) begin() (*runState, error) {
	st := &runState{}
	if o.timed {
		st.wallStart = time.Now()
	}
	population, err := o.seedPopulation()
	if err != nil {
		return nil, err
	}
	st.population = population
	st.refUtility = o.referenceUtility()
	return st, nil
}

// stepGeneration advances the search by one generation. It returns done
// when the run should stop early — cancellation (recorded in rs.cancelErr)
// or Ω stagnation — and a non-nil error only for fatal failures. The
// generation counter advances exactly as the monolithic loop did, so a
// sequence of steps is bit-for-bit the pre-refactor Run.
func (o *Optimizer) stepGeneration(rs *runState) (bool, error) {
	cfg := o.cfg
	gen := rs.gen
	population, archive := rs.population, rs.archive
	refUtility := rs.refUtility
	// One cancellation check per generation: cheap against the cost of
	// a generation, and the loop state is always consistent at the
	// boundary, so the best-so-far front below stays well-formed.
	if err := ctxErr(cfg.Context); err != nil {
		rs.cancelErr = cancelError(gen, err)
		return true, nil
	}
	{
		o.tally = generationTally{}
		o.fitnessDur, o.truncateDur = 0, 0
		evalsBefore := o.evaluations
		var phases [phaseCount]time.Duration
		var mark time.Time
		if o.timed {
			mark = time.Now()
		}
		lap := func(p int) {
			if o.timed {
				now := time.Now()
				phases[p] = now.Sub(mark)
				mark = now
			}
		}

		// population ∪ archive, in reused scratch buffers: the union is
		// copied into nextArchive below, so nothing retains these slices
		// past the generation.
		union := append(append(o.unionBuf[:0], population...), archive...)
		o.unionBuf = union[:0]
		if cap(o.unionPts) < len(union) {
			o.unionPts = make([]pareto.Point, len(union))
		}
		pts := o.unionPts[:len(union)]
		for i, ind := range union {
			pts[i] = ind.Point()
		}
		selIdx, err := o.selectEnvironment(pts)
		if err != nil {
			return false, err
		}
		nextArchive := make([]Individual, len(selIdx))
		for k, i := range selIdx {
			nextArchive[k] = union[i]
		}
		// Environmental-selection truncation pressure: how many of the
		// union's non-dominated points did not fit into the archive.
		truncated := 0
		if o.observed {
			if fs := len(pareto.Front(pts)); fs > len(nextArchive) {
				truncated = fs - len(nextArchive)
			}
		}
		lap(phaseSelect)

		// Mating selection over the new archive. frontBuf is the scratch
		// buffer shared with Stats.Front; it is rebuilt from the archive
		// individuals every generation, so consumers mutating or retaining
		// it cannot corrupt the search state.
		o.frontBuf = o.frontBuf[:0]
		for _, ind := range nextArchive {
			o.frontBuf = append(o.frontBuf, ind.Point())
		}
		archivePts := o.frontBuf
		archiveFit := o.assignFitness(archivePts)

		// Crossover + mutation produce the next population; a small
		// immigrant quota keeps exploration pressure away from the current
		// front.
		immigrants := int(cfg.ImmigrantFraction * float64(cfg.PopulationSize))
		genomes := make([]Genome, 0, cfg.PopulationSize)
		for len(genomes) < cfg.PopulationSize-immigrants {
			ia := emoo.BinaryTournament(archiveFit, o.rng)
			ib := emoo.BinaryTournament(archiveFit, o.rng)
			c1, c2, err := Crossover(nextArchive[ia].Genome, nextArchive[ib].Genome, o.rng)
			if err != nil {
				return false, err
			}
			for _, child := range []Genome{c1, c2} {
				if len(genomes) >= cfg.PopulationSize-immigrants {
					break
				}
				if o.rng.Float64() < cfg.MutationRate {
					for k := 0; k < cfg.MutationsPerChild; k++ {
						Mutate(child, cfg.MutationStyle, 1, o.rng)
					}
				}
				if cfg.SymmetricOnly {
					child.Symmetrize()
				}
				genomes = append(genomes, child)
			}
		}
		for len(genomes) < cfg.PopulationSize {
			g := NewRandomGenome(len(cfg.Prior), o.rng)
			if cfg.SymmetricOnly {
				g.Symmetrize()
			}
			genomes = append(genomes, g)
		}
		lap(phaseVary)

		nextPopulation, err := o.realize(genomes)
		if err != nil {
			return false, err
		}
		lap(phaseEval)

		// Three-set update (Section V-H).
		improved := o.omega.UpdateAll(nextPopulation)
		improved += o.omega.UpdateAll(nextArchive)
		backfilled := o.omega.ImproveArchive(nextArchive)
		lap(phaseOmega)

		population = nextPopulation
		archive = nextArchive
		rs.population = population
		rs.archive = archive

		if o.observed {
			st := Stats{
				Generation:       gen,
				Evaluations:      o.evaluations,
				ArchiveSize:      len(archive),
				OmegaOccupied:    o.omega.Len(),
				OmegaImproved:    improved,
				FrontHypervolume: pareto.Hypervolume(archivePts, 0, refUtility),
				FrontSize:        len(pareto.Front(archivePts)),
				Repairs:          o.tally.repairs,
				RepairPushBack:   o.tally.pushBack,
				Redraws:          o.tally.redraws,
				Rejects:          o.tally.rejects,
				Front:            archivePts,
			}
			st.Convergence = o.conv.observe(gen, st.FrontHypervolume, o.omega, archivePts)
			o.emitGeneration(st, phases, o.evaluations-evalsBefore, truncated, backfilled)
			o.emitConvergence(st.Convergence)
			if cfg.Progress != nil {
				cfg.Progress(st)
			}
		}

		if cfg.StagnationLimit > 0 {
			if improved == 0 {
				rs.stagnant++
				if rs.stagnant >= cfg.StagnationLimit {
					rs.gen = gen + 1
					rs.stagnated = true
					return true, nil
				}
			} else {
				rs.stagnant = 0
			}
		}
	}
	rs.gen = gen + 1
	return false, nil
}

// finish folds the loop state into the run's Result and emits the done
// event.
func (o *Optimizer) finish(rs *runState) Result {
	archive := rs.archive
	front := o.omega.FrontSnapshot()
	if !o.omega.Enabled() {
		// Ablation mode: the archive itself is the output set.
		archPts := make([]pareto.Point, len(archive))
		for i, ind := range archive {
			archPts[i] = ind.Point()
		}
		idx := pareto.Front(archPts)
		front = make([]Individual, 0, len(idx))
		for _, i := range idx {
			front = append(front, Individual{Genome: archive[i].Genome.Clone(), Eval: archive[i].Eval})
		}
	}
	res := Result{
		Front:       front,
		Archive:     archive,
		Generations: rs.gen,
		Evaluations: o.evaluations,
		Stagnated:   rs.stagnated,
	}
	o.emitDone(res, rs.wallStart)
	return res
}

// assignFitness computes the configured engine's fitness over points. The
// SPEA2 path runs on the optimizer's persistent scratch: the returned
// Fitness aliases it and is valid until the next assignFitness or
// selectEnvironment call.
func (o *Optimizer) assignFitness(pts []pareto.Point) emoo.Fitness {
	if o.cfg.Engine == EngineNSGA2 {
		return emoo.NSGA2Fitness(pts)
	}
	var mark time.Time
	if o.timed {
		mark = time.Now()
	}
	fit := o.emooScratch.AssignFitness(pts, o.cfg.emooConfig())
	if o.timed {
		o.fitnessDur += time.Since(mark)
	}
	return fit
}

// selectEnvironment runs the configured engine's environmental selection.
// The returned index slice aliases the scratch and must be consumed before
// the next scratch call.
func (o *Optimizer) selectEnvironment(pts []pareto.Point) ([]int, error) {
	if o.cfg.Engine == EngineNSGA2 {
		return emoo.NSGA2Select(pts, o.cfg.ArchiveSize)
	}
	fit := o.assignFitness(pts)
	var mark time.Time
	if o.timed {
		mark = time.Now()
	}
	sel, err := o.emooScratch.SelectEnvironment(pts, fit, o.cfg.ArchiveSize, o.cfg.emooConfig())
	if o.timed {
		o.truncateDur += time.Since(mark)
	}
	return sel, err
}

// referenceUtility is the hypervolume reference: the closed-form utility of
// the noisiest feasible Warner matrix, an upper anchor for MSE scale. Falls
// back to 1 if none is available.
func (o *Optimizer) referenceUtility() float64 {
	n := len(o.cfg.Prior)
	for _, p := range []float64{0.3, 0.4, 0.5, 0.6} {
		m, err := rr.Warner(n, p)
		if err != nil {
			continue
		}
		if u, err := metrics.Utility(m, o.cfg.Prior, o.cfg.Records); err == nil {
			return u * 2
		}
	}
	return 1
}

// seedPopulation builds the initial population Q_0: any injected seed
// genomes first (island mode's closed-form anchors; nil for the plain
// search, which stays purely random and bit-for-bit unchanged), random
// genomes for the rest, everything repaired (or re-drawn) until feasible.
func (o *Optimizer) seedPopulation() ([]Individual, error) {
	n := len(o.cfg.Prior)
	genomes := make([]Genome, 0, o.cfg.PopulationSize)
	for _, g := range o.seedGenomes {
		if len(genomes) >= o.cfg.PopulationSize {
			break
		}
		if o.cfg.SymmetricOnly {
			g.Symmetrize()
		}
		genomes = append(genomes, g)
	}
	for len(genomes) < o.cfg.PopulationSize {
		g := NewRandomGenome(n, o.rng)
		if o.cfg.SymmetricOnly {
			g.Symmetrize()
		}
		genomes = append(genomes, g)
	}
	return o.realize(genomes)
}

// realize repairs, evaluates and — where evaluation is impossible (singular
// matrix, unrepairable bound) — replaces genomes with fresh random feasible
// ones. Repair and evaluation are pure, so they run on a worker pool, each
// worker evaluating through its own persistent workerScratch; genome
// replacement draws from the sequential RNG to keep runs deterministic.
func (o *Optimizer) realize(genomes []Genome) ([]Individual, error) {
	cfg := o.cfg
	out := make([]Individual, len(genomes))
	if cap(o.outcomes) < len(genomes) {
		o.outcomes = make([]genomeOutcome, len(genomes))
	}
	oc := o.outcomes[:len(genomes)]

	process := func(g Genome, sc *workerScratch) (Individual, genomeOutcome) {
		var c genomeOutcome
		var m *rr.Matrix
		switch cfg.BoundMode {
		case BoundReject:
			var err error
			m, err = sc.matrixFor(g)
			if err != nil {
				return Individual{}, c
			}
			holds, err := sc.ws.MeetsBound(m, cfg.Prior, cfg.Delta)
			if err != nil || !holds {
				c.rejected = true
				return Individual{}, c
			}
		default:
			feasible, rst := meetBoundStats(g, cfg.Prior, cfg.Delta, cfg.SymmetricOnly, sc.slackFor(g.N()))
			c.repaired = rst.Rounds > 0 || rst.Blended
			c.pushBack = rst.PushBack
			if !feasible {
				return Individual{}, c
			}
			var err error
			m, err = sc.matrixFor(g)
			if err != nil {
				return Individual{}, c
			}
		}
		ev, err := sc.ws.Evaluate(m, cfg.Prior, cfg.Records)
		if err != nil {
			return Individual{}, c // singular: inversion utility undefined
		}
		// Extra objectives run while the workspace still holds this matrix's
		// P* and inverse; a failing objective voids the individual like a
		// singular matrix does.
		ev.Extra, err = evalExtras(sc.ws, m, cfg.Prior, cfg.Records, cfg.Objectives)
		if err != nil {
			return Individual{}, c
		}
		if cfg.PrivacyFn != nil {
			priv, err := cfg.PrivacyFn(m, cfg.Prior)
			if err != nil {
				return Individual{}, c
			}
			ev.Privacy = priv
		}
		c.ok = true
		return Individual{Genome: g, Eval: ev}, c
	}

	o.parallelFor(len(genomes), func(w, i int) {
		out[i], oc[i] = process(genomes[i], o.workers[w])
	})
	o.evaluations += len(genomes)
	for i := range oc {
		o.tally.add(oc[i])
	}

	// Replace failures sequentially (deterministic RNG use), re-drawing
	// until feasible. A fresh Dirichlet genome repairs successfully with
	// overwhelming probability, so this loop terminates quickly; a safety
	// budget guards pathological configurations.
	const maxRedraws = 10000
	redraws := 0
	for i := range out {
		for !oc[i].ok {
			if redraws++; redraws > maxRedraws {
				return nil, fmt.Errorf("%w: could not generate a feasible matrix for delta=%v", ErrInfeasibleBound, cfg.Delta)
			}
			g := NewRandomGenome(len(cfg.Prior), o.rng)
			if cfg.SymmetricOnly {
				g.Symmetrize()
			}
			out[i], oc[i] = process(g, o.workers[0])
			o.evaluations++
			o.tally.redraws++
			o.tally.add(oc[i])
		}
	}
	return out, nil
}

// genomeOutcome is one genome's trip through realize, for tallying.
type genomeOutcome struct {
	ok       bool
	repaired bool
	pushBack float64
	rejected bool
}

// add folds one outcome into the generation's tally.
func (t *generationTally) add(c genomeOutcome) {
	if c.repaired {
		t.repairs++
	}
	t.pushBack += c.pushBack
	if c.rejected {
		t.rejects++
	}
}

// parallelFor runs fn(worker, i) for i in [0, n) on the configured worker
// count. The worker index identifies which goroutine is calling, so callers
// can hand each goroutine exclusive scratch state; the index partition never
// affects results because scratch contents are overwritten per item.
func (o *Optimizer) parallelFor(n int, fn func(worker, i int)) {
	parallelWork(o.cfg.Workers, n, fn)
}

// parallelWork is the shared work-distribution kernel behind the 1-D and
// multi-attribute realizes: fn(worker, i) for i in [0, n) across the given
// worker count, with the worker index naming the calling goroutine so each
// can own exclusive scratch. Results must be written to per-index slots; the
// dynamic item-to-worker assignment then never affects outputs.
func parallelWork(workers, n int, fn func(worker, i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := range next {
				fn(w, i)
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
