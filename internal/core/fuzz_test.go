package core

import (
	"testing"

	"optrr/internal/metrics"
	"optrr/internal/randx"
)

// Fuzz targets complement the property tests: they derive structured inputs
// (genomes, priors, bounds) from raw bytes so the fuzzer can explore corner
// cases the quick-check generators miss. Under plain `go test` only the seed
// corpus runs; use `go test -fuzz FuzzMeetBound ./internal/core` to fuzz.

// genomeFromBytes builds an n×n genome from raw bytes, normalizing each
// column. Returns nil if there is not enough data.
func genomeFromBytes(data []byte, n int) Genome {
	if n < 2 || len(data) < n*n {
		return nil
	}
	g := make(Genome, n)
	k := 0
	for i := range g {
		col := make([]float64, n)
		var sum float64
		for j := range col {
			col[j] = float64(data[k]) + 1 // strictly positive
			sum += col[j]
			k++
		}
		for j := range col {
			col[j] /= sum
		}
		g[i] = col
	}
	return g
}

func priorFromBytes(data []byte, n int) []float64 {
	if len(data) < n {
		return nil
	}
	p := make([]float64, n)
	var sum float64
	for i := range p {
		p[i] = float64(data[i]) + 1
		sum += p[i]
	}
	for i := range p {
		p[i] /= sum
	}
	return p
}

func FuzzMeetBound(f *testing.F) {
	f.Add([]byte{10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 110, 120, 1, 2, 3}, uint8(4), uint8(200))
	f.Add([]byte{0, 0, 0, 255, 255, 255, 1, 1, 1, 9, 9, 9, 80, 80, 80}, uint8(3), uint8(128))
	f.Fuzz(func(t *testing.T, data []byte, nRaw, dRaw uint8) {
		n := int(nRaw%5) + 2
		if len(data) < n*n+n {
			return
		}
		g := genomeFromBytes(data, n)
		prior := priorFromBytes(data[n*n:], n)
		if g == nil || prior == nil {
			return
		}
		floor := metrics.BoundFloor(prior)
		delta := floor + (1-floor)*(0.02+0.96*float64(dRaw)/255)
		ok := MeetBound(g, prior, delta, false)
		if !ok {
			t.Fatalf("achievable bound %v (floor %v) reported unrepairable", delta, floor)
		}
		if !g.Valid() {
			t.Fatalf("repair broke column stochasticity: %v", g)
		}
		m, err := g.Matrix()
		if err != nil {
			t.Fatalf("repaired genome rejected: %v", err)
		}
		mp, err := metrics.MaxPosterior(m, prior)
		if err != nil {
			t.Fatal(err)
		}
		if mp > delta+1e-9 {
			t.Fatalf("max posterior %v above bound %v after repair", mp, delta)
		}
	})
}

func FuzzMutateCrossover(f *testing.F) {
	f.Add(uint64(1), uint8(3), uint8(17))
	f.Add(uint64(42), uint8(9), uint8(255))
	f.Fuzz(func(t *testing.T, seed uint64, nRaw, ops uint8) {
		n := int(nRaw%8) + 2
		r := randx.New(seed)
		a := NewRandomGenome(n, r)
		b := NewRandomGenome(n, r)
		for k := 0; k < int(ops%32); k++ {
			switch k % 3 {
			case 0:
				Mutate(a, MutationProportional, 1, r)
			case 1:
				Mutate(b, MutationNaive, 1, r)
			default:
				var err error
				a, b, err = Crossover(a, b, r)
				if err != nil {
					t.Fatal(err)
				}
			}
			if !a.Valid() || !b.Valid() {
				t.Fatalf("operator %d broke stochasticity", k%3)
			}
		}
	})
}
