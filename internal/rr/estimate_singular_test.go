package rr

import (
	"errors"
	"math"
	"testing"
)

// singularLeakyMatrix returns a column-stochastic matrix whose last row is
// all zeros: category c_2 can never be reported, so any observed mass on it
// is "impossible" under the model. The matrix is singular (rank 2), the
// exact regime the iterative estimator exists for.
func singularLeakyMatrix(t *testing.T) *Matrix {
	t.Helper()
	m, err := FromColumns([][]float64{
		{0.5, 0.5, 0},
		{0.5, 0.5, 0},
		{1, 0, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestIterativeSingularMatrixConservesMass is the regression test for the
// Equation-3 mass leak: with a zero row in the matrix and observed mass on
// the corresponding category, the denom==0 skip used to silently discard
// pStar[i], returning an "estimate" summing to the reachable mass (0.8 here)
// instead of 1 — violating the documented always-a-valid-distribution
// contract.
func TestIterativeSingularMatrixConservesMass(t *testing.T) {
	m := singularLeakyMatrix(t)
	// 20% of the observed reports land on the unreachable category c_2
	// (sampling noise, corrupted reports — the estimator must still answer).
	pStar := []float64{0.5, 0.3, 0.2}
	est, err := m.EstimateIterativeFromDistribution(pStar, IterativeOptions{})
	if err != nil && !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("unexpected error: %v", err)
	}
	if est == nil {
		t.Fatal("nil estimate")
	}
	var sum float64
	for i, v := range est {
		if v < 0 || math.IsNaN(v) {
			t.Fatalf("estimate[%d] = %v", i, v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("estimate sums to %v, want 1 within 1e-9 (mass leak)", sum)
	}
}

// TestIterativeSingularMatrixConvergedIterateConservesMass drives the same
// matrix to convergence and checks the final iterate too.
func TestIterativeSingularMatrixConvergedIterateConservesMass(t *testing.T) {
	m := singularLeakyMatrix(t)
	pStar := []float64{0.6, 0.4, 0.0}
	est, err := m.EstimateIterativeFromDistribution(pStar, IterativeOptions{})
	if err != nil && !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("unexpected error: %v", err)
	}
	var sum float64
	for _, v := range est {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("estimate sums to %v", sum)
	}
}

// TestIterativeAllMassUnreachable: when every observed report lands on
// categories the matrix cannot produce, there is nothing to condition on and
// the estimator must fail loudly instead of returning an arbitrary iterate.
func TestIterativeAllMassUnreachable(t *testing.T) {
	// Every original category reports c_0; rows 1 and 2 are zero.
	m, err := FromColumns([][]float64{
		{1, 0, 0},
		{1, 0, 0},
		{1, 0, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	est, err := m.EstimateIterativeFromDistribution([]float64{0, 0.5, 0.5}, IterativeOptions{})
	if err == nil {
		t.Fatalf("expected error, got estimate %v", est)
	}
	if !errors.Is(err, ErrShape) {
		t.Fatalf("error = %v, want ErrShape", err)
	}
}

// TestIterativeInvertibleUnchanged pins the fix's no-op behavior on the
// well-posed path: for an invertible matrix with strictly positive implied
// P*, the renormalization multiplies by 1/(sum≈1) and the estimator still
// recovers the exact prior from exact disguised data.
func TestIterativeInvertibleUnchanged(t *testing.T) {
	m, err := Warner(4, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	prior := []float64{0.4, 0.3, 0.2, 0.1}
	pStar, err := m.DisguisedDistribution(prior)
	if err != nil {
		t.Fatal(err)
	}
	est, err := m.EstimateIterativeFromDistribution(pStar, IterativeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range prior {
		if math.Abs(est[i]-prior[i]) > 1e-6 {
			t.Fatalf("estimate[%d] = %v, want %v", i, est[i], prior[i])
		}
	}
}
