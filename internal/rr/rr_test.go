package rr

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"optrr/internal/matrix"
	"optrr/internal/randx"
)

// randomStochastic builds a random column-stochastic n×n matrix for tests.
func randomStochastic(r *randx.Source, n int) *Matrix {
	cols := make([][]float64, n)
	for i := range cols {
		col := make([]float64, n)
		var sum float64
		for j := range col {
			col[j] = r.Float64() + 0.01
			sum += col[j]
		}
		for j := range col {
			col[j] /= sum
		}
		cols[i] = col
	}
	m, err := FromColumns(cols)
	if err != nil {
		panic(err)
	}
	return m
}

func TestFromDenseValidates(t *testing.T) {
	bad := matrix.New(2, 2)
	bad.Set(0, 0, 0.5)
	bad.Set(1, 0, 0.6) // column 0 sums to 1.1
	bad.Set(0, 1, 0.5)
	bad.Set(1, 1, 0.5)
	if _, err := FromDense(bad); !errors.Is(err, ErrNotStochastic) {
		t.Fatalf("err = %v, want ErrNotStochastic", err)
	}
	if _, err := FromDense(matrix.New(2, 3)); !errors.Is(err, ErrShape) {
		t.Fatalf("non-square: err = %v, want ErrShape", err)
	}
}

func TestFromDenseRejectsNegative(t *testing.T) {
	bad := matrix.New(2, 2)
	bad.Set(0, 0, 1.5)
	bad.Set(1, 0, -0.5)
	bad.Set(0, 1, 0)
	bad.Set(1, 1, 1)
	if _, err := FromDense(bad); !errors.Is(err, ErrNotStochastic) {
		t.Fatalf("err = %v, want ErrNotStochastic", err)
	}
}

func TestFromDenseClones(t *testing.T) {
	d := matrix.Identity(2)
	m, err := FromDense(d)
	if err != nil {
		t.Fatal(err)
	}
	d.Set(0, 0, 0.3)
	if m.Theta(0, 0) != 1 {
		t.Fatal("FromDense shares storage with input")
	}
}

func TestFromColumns(t *testing.T) {
	m, err := FromColumns([][]float64{{0.7, 0.3}, {0.2, 0.8}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Theta(0, 0) != 0.7 || m.Theta(1, 0) != 0.3 || m.Theta(0, 1) != 0.2 || m.Theta(1, 1) != 0.8 {
		t.Fatalf("wrong layout:\n%v", m)
	}
	if _, err := FromColumns(nil); !errors.Is(err, ErrShape) {
		t.Fatal("empty columns accepted")
	}
	if _, err := FromColumns([][]float64{{1}, {0.5, 0.5}}); !errors.Is(err, ErrShape) {
		t.Fatal("ragged columns accepted")
	}
}

func TestIdentityAndTotallyRandom(t *testing.T) {
	id := Identity(4)
	if err := id.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if id.Theta(i, i) != 1 {
			t.Fatal("identity diagonal not 1")
		}
	}
	tr := TotallyRandom(4)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 4; j++ {
		for i := 0; i < 4; i++ {
			if tr.Theta(j, i) != 0.25 {
				t.Fatal("totally-random entry not 1/n")
			}
		}
	}
	if tr.Invertible() {
		t.Fatal("totally-random matrix reported invertible")
	}
	if !id.Invertible() {
		t.Fatal("identity reported non-invertible")
	}
}

func TestDisguisedDistribution(t *testing.T) {
	m, err := Warner(3, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	p := []float64{0.5, 0.3, 0.2}
	pStar, err := m.DisguisedDistribution(p)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range pStar {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("P* sums to %v", sum)
	}
	// Manual check of first component: 0.8*0.5 + 0.1*0.3 + 0.1*0.2.
	want := 0.8*0.5 + 0.1*0.3 + 0.1*0.2
	if math.Abs(pStar[0]-want) > 1e-12 {
		t.Fatalf("P*[0] = %v, want %v", pStar[0], want)
	}
	if _, err := m.DisguisedDistribution([]float64{1}); !errors.Is(err, ErrShape) {
		t.Fatal("bad length accepted")
	}
}

func TestDisguisePreservesLengthAndRange(t *testing.T) {
	m, err := Warner(5, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	records := make([]int, 1000)
	for i := range records {
		records[i] = i % 5
	}
	out, err := m.Disguise(records, randx.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(records) {
		t.Fatalf("len = %d, want %d", len(out), len(records))
	}
	for _, v := range out {
		if v < 0 || v >= 5 {
			t.Fatalf("disguised value %d out of range", v)
		}
	}
}

func TestDisguiseRejectsBadRecord(t *testing.T) {
	m := Identity(3)
	if _, err := m.Disguise([]int{0, 3}, randx.New(1)); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestDisguiseIdentityIsNoOp(t *testing.T) {
	m := Identity(4)
	records := []int{0, 1, 2, 3, 2, 1, 0}
	out, err := m.Disguise(records, randx.New(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := range records {
		if out[i] != records[i] {
			t.Fatal("identity disguise changed a record")
		}
	}
}

func TestDisguiseMatchesMatrixStatistically(t *testing.T) {
	m, err := Warner(3, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	const per = 100000
	records := make([]int, 3*per)
	for i := range records {
		records[i] = i % 3
	}
	out, err := m.Disguise(records, randx.New(7))
	if err != nil {
		t.Fatal(err)
	}
	counts := make([][]float64, 3)
	for i := range counts {
		counts[i] = make([]float64, 3)
	}
	for k, orig := range records {
		counts[orig][out[k]]++
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			got := counts[i][j] / per
			want := m.Theta(j, i)
			if math.Abs(got-want) > 0.01 {
				t.Errorf("empirical theta(%d,%d) = %v, want %v", j, i, got, want)
			}
		}
	}
}

func TestWarnerScheme(t *testing.T) {
	m, err := Warner(4, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if m.Theta(0, 0) != 0.7 {
		t.Fatalf("diagonal = %v, want 0.7", m.Theta(0, 0))
	}
	if math.Abs(m.Theta(1, 0)-0.1) > 1e-12 {
		t.Fatalf("off-diagonal = %v, want 0.1", m.Theta(1, 0))
	}
	if _, err := Warner(4, 1.5); err == nil {
		t.Fatal("p > 1 accepted")
	}
	if _, err := Warner(1, 0.5); !errors.Is(err, ErrShape) {
		t.Fatal("n = 1 accepted")
	}
}

func TestUniformPerturbationScheme(t *testing.T) {
	m, err := UniformPerturbation(4, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	wantDiag := 0.6 + 0.4/4
	if math.Abs(m.Theta(0, 0)-wantDiag) > 1e-12 {
		t.Fatalf("diagonal = %v, want %v", m.Theta(0, 0), wantDiag)
	}
	if math.Abs(m.Theta(1, 0)-0.1) > 1e-12 {
		t.Fatalf("off-diagonal = %v, want 0.1", m.Theta(1, 0))
	}
	if _, err := UniformPerturbation(4, -0.1); err == nil {
		t.Fatal("q < 0 accepted")
	}
}

func TestFRAPPScheme(t *testing.T) {
	m, err := FRAPP(4, 6)
	if err != nil {
		t.Fatal(err)
	}
	wantDiag := 6.0 / 9.0
	if math.Abs(m.Theta(0, 0)-wantDiag) > 1e-12 {
		t.Fatalf("diagonal = %v, want %v", m.Theta(0, 0), wantDiag)
	}
	if math.Abs(m.Theta(2, 1)-1.0/9.0) > 1e-12 {
		t.Fatalf("off-diagonal = %v, want 1/9", m.Theta(2, 1))
	}
	if _, err := FRAPP(4, 0); err == nil {
		t.Fatal("lambda = 0 accepted")
	}
}

// TestTheorem2SchemesCoincide verifies Theorem 2: the Warner, UP and FRAPP
// solution sets are the same one-parameter family. For any γ in the shared
// range, the three parameter maps produce identical matrices.
func TestTheorem2SchemesCoincide(t *testing.T) {
	const n = 10
	for _, gamma := range []float64{0.15, 0.3, 0.5, 0.75, 0.99} {
		w, err := Warner(n, GammaToWarnerP(n, gamma))
		if err != nil {
			t.Fatal(err)
		}
		if q := GammaToUPQ(n, gamma); q >= 0 && q <= 1 {
			up, err := UniformPerturbation(n, q)
			if err != nil {
				t.Fatal(err)
			}
			if !w.Equal(up, 1e-12) {
				t.Errorf("gamma=%v: Warner and UP matrices differ", gamma)
			}
		}
		fr, err := FRAPP(n, GammaToFRAPPLambda(n, gamma))
		if err != nil {
			t.Fatal(err)
		}
		if !w.Equal(fr, 1e-12) {
			t.Errorf("gamma=%v: Warner and FRAPP matrices differ", gamma)
		}
	}
}

func TestTheorem2ParameterMapsInvert(t *testing.T) {
	const n = 7
	f := func(raw uint16) bool {
		gamma := 0.2 + 0.79*float64(raw)/math.MaxUint16 // [0.2, 0.99]
		g1 := WarnerGamma(n, GammaToWarnerP(n, gamma))
		g2 := UPGamma(n, GammaToUPQ(n, gamma))
		g3 := FRAPPGamma(n, GammaToFRAPPLambda(n, gamma))
		return math.Abs(g1-gamma) < 1e-12 && math.Abs(g2-gamma) < 1e-12 && math.Abs(g3-gamma) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWarnerSweep(t *testing.T) {
	ms, err := WarnerSweep(5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 11 {
		t.Fatalf("sweep produced %d matrices, want 11", len(ms))
	}
	if ms[0].Theta(0, 0) != 0 || ms[10].Theta(0, 0) != 1 {
		t.Fatal("sweep endpoints wrong")
	}
	if _, err := WarnerSweep(5, 0); err == nil {
		t.Fatal("steps = 0 accepted")
	}
}

func TestEstimateInversionExactOnTrueDistribution(t *testing.T) {
	m, err := Warner(4, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	p := []float64{0.4, 0.3, 0.2, 0.1}
	pStar, err := m.DisguisedDistribution(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.EstimateInversionFromDistribution(pStar)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p {
		if math.Abs(got[i]-p[i]) > 1e-10 {
			t.Fatalf("round trip failed: %v vs %v", got, p)
		}
	}
}

func TestEstimateInversionFromRecords(t *testing.T) {
	m, err := Warner(4, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	p := []float64{0.4, 0.3, 0.2, 0.1}
	r := randx.New(11)
	alias, err := randx.NewAlias(p)
	if err != nil {
		t.Fatal(err)
	}
	records := make([]int, 100000)
	for i := range records {
		records[i] = alias.Draw(r)
	}
	disguised, err := m.Disguise(records, r)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.EstimateInversion(disguised)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p {
		if math.Abs(got[i]-p[i]) > 0.02 {
			t.Errorf("category %d: estimate %v, want approx %v", i, got[i], p[i])
		}
	}
}

func TestEstimateInversionSingular(t *testing.T) {
	m := TotallyRandom(3)
	if _, err := m.EstimateInversion([]int{0, 1, 2}); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestEstimateEmptyData(t *testing.T) {
	m := Identity(3)
	if _, err := m.EstimateInversion(nil); !errors.Is(err, ErrEmptyData) {
		t.Fatalf("err = %v, want ErrEmptyData", err)
	}
	if _, err := m.EstimateIterative(nil, IterativeOptions{}); !errors.Is(err, ErrEmptyData) {
		t.Fatalf("iterative: err = %v, want ErrEmptyData", err)
	}
}

func TestEstimateIterativeMatchesInversion(t *testing.T) {
	m, err := Warner(5, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	p := []float64{0.3, 0.25, 0.2, 0.15, 0.1}
	pStar, err := m.DisguisedDistribution(p)
	if err != nil {
		t.Fatal(err)
	}
	inv, err := m.EstimateInversionFromDistribution(pStar)
	if err != nil {
		t.Fatal(err)
	}
	iter, err := m.EstimateIterativeFromDistribution(pStar, IterativeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range p {
		if math.Abs(inv[i]-iter[i]) > 1e-6 {
			t.Errorf("category %d: inversion %v vs iterative %v", i, inv[i], iter[i])
		}
	}
}

func TestEstimateIterativeAlwaysValidDistribution(t *testing.T) {
	// With few records the inversion estimate can go negative; the iterative
	// estimate must remain a valid distribution.
	m, err := Warner(4, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	disguised := []int{0, 0, 1, 3}
	got, err := m.EstimateIterative(disguised, IterativeOptions{})
	// EM converges sublinearly when the optimum lies on the simplex
	// boundary, as it does for this degenerate input; the iterate is still
	// returned and must be a valid distribution.
	if err != nil && !errors.Is(err, ErrNoConvergence) {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range got {
		if v < -1e-12 {
			t.Fatalf("iterative estimate has negative component: %v", got)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("iterative estimate sums to %v", sum)
	}
}

func TestEstimateIterativeWorksOnSingularMatrix(t *testing.T) {
	m := TotallyRandom(3)
	got, err := m.EstimateIterativeFromDistribution([]float64{0.4, 0.3, 0.3}, IterativeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// With total randomization nothing is learnable: the iterate stays at
	// its uniform starting point.
	for _, v := range got {
		if math.Abs(v-1.0/3.0) > 1e-9 {
			t.Fatalf("estimate %v, want uniform", got)
		}
	}
}

func TestEstimateIterativeBudgetExhaustion(t *testing.T) {
	m, err := Warner(3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.EstimateIterativeFromDistribution(
		[]float64{0.5, 0.3, 0.2},
		IterativeOptions{MaxIterations: 1, Tolerance: 1e-15},
	)
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("err = %v, want ErrNoConvergence", err)
	}
}

func TestEstimateIterativeBadInitial(t *testing.T) {
	m := Identity(3)
	_, err := m.EstimateIterativeFromDistribution(
		[]float64{0.5, 0.3, 0.2},
		IterativeOptions{Initial: []float64{0.5, 0.5}},
	)
	if !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestClip(t *testing.T) {
	got := Clip([]float64{-0.1, 0.6, 0.5})
	if got[0] != 0 {
		t.Fatalf("negative entry not clipped: %v", got)
	}
	if math.Abs(got[1]-6.0/11.0) > 1e-12 || math.Abs(got[2]-5.0/11.0) > 1e-12 {
		t.Fatalf("Clip = %v", got)
	}
	uniform := Clip([]float64{-1, -2})
	if uniform[0] != 0.5 || uniform[1] != 0.5 {
		t.Fatalf("all-negative Clip = %v, want uniform", uniform)
	}
}

func TestPropertyDisguisedDistributionIsDistribution(t *testing.T) {
	f := func(seed uint64, nRaw uint8, raw []uint8) bool {
		n := int(nRaw%8) + 2
		r := randx.New(seed)
		m := randomStochastic(r, n)
		if len(raw) < n {
			return true
		}
		w := make([]float64, n)
		var sum float64
		for i := 0; i < n; i++ {
			w[i] = float64(raw[i]) + 1
			sum += w[i]
		}
		for i := range w {
			w[i] /= sum
		}
		pStar, err := m.DisguisedDistribution(w)
		if err != nil {
			return false
		}
		var s float64
		for _, v := range pStar {
			if v < -1e-12 {
				return false
			}
			s += v
		}
		return math.Abs(s-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyInversionRoundTrip(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%6) + 2
		r := randx.New(seed)
		// Diagonally-boosted stochastic matrices are invertible.
		cols := make([][]float64, n)
		for i := range cols {
			col := make([]float64, n)
			var sum float64
			for j := range col {
				col[j] = r.Float64() * 0.3
				if j == i {
					col[j] += 1
				}
				sum += col[j]
			}
			for j := range col {
				col[j] /= sum
			}
			cols[i] = col
		}
		m, err := FromColumns(cols)
		if err != nil {
			return false
		}
		p := make([]float64, n)
		var sum float64
		for i := range p {
			p[i] = r.Float64() + 0.05
			sum += p[i]
		}
		for i := range p {
			p[i] /= sum
		}
		pStar, err := m.DisguisedDistribution(p)
		if err != nil {
			return false
		}
		back, err := m.EstimateInversionFromDistribution(pStar)
		if err != nil {
			return false
		}
		for i := range p {
			if math.Abs(back[i]-p[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySchemeMatricesAreStochastic(t *testing.T) {
	f := func(nRaw uint8, pRaw uint16) bool {
		n := int(nRaw%10) + 2
		p := float64(pRaw) / math.MaxUint16
		w, err := Warner(n, p)
		if err != nil || w.Validate() != nil {
			return false
		}
		up, err := UniformPerturbation(n, p)
		if err != nil || up.Validate() != nil {
			return false
		}
		fr, err := FRAPP(n, p*10+0.01)
		if err != nil || fr.Validate() != nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDisguise10k(b *testing.B) {
	m, err := Warner(10, 0.7)
	if err != nil {
		b.Fatal(err)
	}
	records := make([]int, 10000)
	for i := range records {
		records[i] = i % 10
	}
	r := randx.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Disguise(records, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEstimateInversion(b *testing.B) {
	m, err := Warner(10, 0.7)
	if err != nil {
		b.Fatal(err)
	}
	pStar, err := m.DisguisedDistribution(defaultPrior10())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.EstimateInversionFromDistribution(pStar); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEstimateIterative(b *testing.B) {
	m, err := Warner(10, 0.7)
	if err != nil {
		b.Fatal(err)
	}
	pStar, err := m.DisguisedDistribution(defaultPrior10())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.EstimateIterativeFromDistribution(pStar, IterativeOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func defaultPrior10() []float64 {
	p := make([]float64, 10)
	var sum float64
	for i := range p {
		p[i] = float64(i + 1)
		sum += p[i]
	}
	for i := range p {
		p[i] /= sum
	}
	return p
}
