package rr

import (
	"errors"
	"fmt"
	"math"

	"optrr/internal/obs"
)

// This file implements the two distribution-reconstruction estimators of
// Section III-A: the inversion approach (Theorem 1) and the iterative
// EM-style approach of Agrawal et al. (Equation 3).

// Estimator errors.
var (
	// ErrNoConvergence reports that the iterative estimator did not reach
	// the requested tolerance within its iteration budget.
	ErrNoConvergence = errors.New("rr: iterative estimator did not converge")
	// ErrEmptyData reports an estimation request over zero records.
	ErrEmptyData = errors.New("rr: no records to estimate from")
)

// EstimateInversion reconstructs the original distribution from disguised
// records via P̂ = M⁻¹·P̂* (Theorem 1). The estimate is an unbiased MLE but
// individual components may fall outside [0, 1] for small samples; callers
// that need a proper distribution can pass the result through Clip.
func (m *Matrix) EstimateInversion(disguised []int) ([]float64, error) {
	pStar, err := m.frequencies(disguised)
	if err != nil {
		return nil, err
	}
	return m.EstimateInversionFromDistribution(pStar)
}

// EstimateInversionFromDistribution applies the inversion estimator to an
// already-computed disguised distribution P̂*.
func (m *Matrix) EstimateInversionFromDistribution(pStar []float64) ([]float64, error) {
	if len(pStar) != m.N() {
		return nil, fmt.Errorf("%w: distribution of length %d for %d categories", ErrShape, len(pStar), m.N())
	}
	p, err := m.m.Solve(pStar)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSingular, err)
	}
	return p, nil
}

// IterativeOptions configures EstimateIterative.
type IterativeOptions struct {
	// MaxIterations bounds the iteration count. Zero means the default, 10000.
	MaxIterations int
	// Tolerance is the L∞ distance between consecutive iterates that counts
	// as convergence. Zero means the default, 1e-10.
	Tolerance float64
	// Initial is the starting distribution; nil means uniform.
	Initial []float64
	// Recorder, if non-nil and enabled, receives one "estimator.iteration"
	// event per Bayes-update step with the L∞ convergence delta, and a
	// final "estimator.done" event. Nil costs nothing.
	Recorder obs.Recorder
}

func (o IterativeOptions) withDefaults() IterativeOptions {
	if o.MaxIterations == 0 {
		o.MaxIterations = 10000
	}
	if o.Tolerance == 0 {
		o.Tolerance = 1e-10
	}
	return o
}

// EstimateIterative reconstructs the original distribution with the
// iterative Bayes-update procedure of Equation (3):
//
//	P^{k+1}(c_j) = Σ_i P*(c_i) · θ_{i,j}·P^k(c_j) / Σ_l θ_{i,l}·P^k(c_l)
//
// Iteration stops when two consecutive iterates are within Tolerance (L∞)
// or the budget is exhausted (then ErrNoConvergence is returned alongside
// the last iterate). Unlike inversion, the result is always a valid
// distribution, and the method works for singular matrices.
func (m *Matrix) EstimateIterative(disguised []int, opts IterativeOptions) ([]float64, error) {
	pStar, err := m.frequencies(disguised)
	if err != nil {
		return nil, err
	}
	return m.EstimateIterativeFromDistribution(pStar, opts)
}

// EstimateIterativeFromDistribution applies the iterative estimator to an
// already-computed disguised distribution P̂*. Every iterate is renormalized
// onto the probability simplex, so the result is a valid distribution even
// for singular matrices whose implied P* is zero on observed categories; if
// the observed distribution lies entirely on categories the matrix cannot
// produce, ErrShape is returned.
func (m *Matrix) EstimateIterativeFromDistribution(pStar []float64, opts IterativeOptions) ([]float64, error) {
	n := m.N()
	if len(pStar) != n {
		return nil, fmt.Errorf("%w: distribution of length %d for %d categories", ErrShape, len(pStar), n)
	}
	opts = opts.withDefaults()

	cur := make([]float64, n)
	if opts.Initial != nil {
		if len(opts.Initial) != n {
			return nil, fmt.Errorf("%w: initial distribution of length %d for %d categories", ErrShape, len(opts.Initial), n)
		}
		copy(cur, opts.Initial)
	} else {
		for j := range cur {
			cur[j] = 1 / float64(n)
		}
	}

	rec := obs.OrNop(opts.Recorder)
	next := make([]float64, n)
	denom := make([]float64, n)
	for iter := 0; iter < opts.MaxIterations; iter++ {
		// denom[i] = Σ_l θ_{i,l}·P^k(c_l) = P*(c_i) implied by the iterate.
		for i := 0; i < n; i++ {
			var s float64
			for l := 0; l < n; l++ {
				s += m.m.At(i, l) * cur[l]
			}
			denom[i] = s
		}
		for j := 0; j < n; j++ {
			var s float64
			for i := 0; i < n; i++ {
				if denom[i] == 0 {
					continue // no disguised mass can arrive at c_i
				}
				s += pStar[i] * m.m.At(i, j) * cur[j] / denom[i]
			}
			next[j] = s
		}
		// Skipping zero-denominator rows drops the observed mass pStar[i]
		// that the iterate says cannot occur (possible only for singular or
		// degenerate matrices). Renormalizing restores the documented
		// invariant that every iterate is a valid distribution; if no
		// observed mass is reachable at all there is nothing to condition
		// on, so fail rather than return an arbitrary iterate.
		var mass float64
		for j := 0; j < n; j++ {
			mass += next[j]
		}
		if mass <= 0 {
			return nil, fmt.Errorf("%w: observed distribution lies entirely on categories the matrix cannot produce", ErrShape)
		}
		if mass != 1 {
			inv := 1 / mass
			for j := 0; j < n; j++ {
				next[j] *= inv
			}
		}
		var maxDelta float64
		for j := 0; j < n; j++ {
			if d := math.Abs(next[j] - cur[j]); d > maxDelta {
				maxDelta = d
			}
		}
		cur, next = next, cur
		if rec.Enabled() {
			rec.Record("estimator.iteration", obs.Fields{
				"iter":  iter,
				"delta": maxDelta,
			})
		}
		if maxDelta < opts.Tolerance {
			if rec.Enabled() {
				rec.Record("estimator.done", obs.Fields{
					"iterations": iter + 1,
					"converged":  true,
					"delta":      maxDelta,
				})
			}
			out := make([]float64, n)
			copy(out, cur)
			return out, nil
		}
	}
	if rec.Enabled() {
		rec.Record("estimator.done", obs.Fields{
			"iterations": opts.MaxIterations,
			"converged":  false,
		})
	}
	out := make([]float64, n)
	copy(out, cur)
	return out, fmt.Errorf("%w after %d iterations", ErrNoConvergence, opts.MaxIterations)
}

// frequencies returns the MLE P̂* of the disguised distribution: category
// frequencies of the disguised records.
func (m *Matrix) frequencies(disguised []int) ([]float64, error) {
	if len(disguised) == 0 {
		return nil, ErrEmptyData
	}
	n := m.N()
	p := make([]float64, n)
	for k, rec := range disguised {
		if rec < 0 || rec >= n {
			return nil, fmt.Errorf("%w: record %d has category %d", ErrShape, k, rec)
		}
		p[rec]++
	}
	inv := 1 / float64(len(disguised))
	for i := range p {
		p[i] *= inv
	}
	return p, nil
}

// Clip projects an (possibly out-of-range) inversion estimate onto the
// probability simplex: negative entries are zeroed and the rest renormalized.
// If everything clips to zero, the uniform distribution is returned.
func Clip(p []float64) []float64 {
	out := make([]float64, len(p))
	var sum float64
	for i, v := range p {
		if v > 0 {
			out[i] = v
			sum += v
		}
	}
	if sum <= 0 {
		for i := range out {
			out[i] = 1 / float64(len(out))
		}
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}
