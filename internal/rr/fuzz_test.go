package rr

import (
	"errors"
	"math"
	"testing"
)

// FuzzInversionRoundTrip checks that for any diagonally-boosted stochastic
// matrix and any prior assembled from fuzz bytes, disguising the exact
// distribution and inverting returns the original.
func FuzzInversionRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, uint8(3))
	f.Add([]byte{200, 10, 10, 10, 200, 10, 10, 10, 200, 50, 60, 70}, uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, nRaw uint8) {
		n := int(nRaw%5) + 2
		if len(data) < n*n+n {
			return
		}
		cols := make([][]float64, n)
		k := 0
		for i := range cols {
			col := make([]float64, n)
			var sum float64
			for j := range col {
				col[j] = float64(data[k]) * 0.2
				if i == j {
					col[j] += 256 // diagonal boost keeps the matrix invertible
				}
				sum += col[j]
				k++
			}
			for j := range col {
				col[j] /= sum
			}
			cols[i] = col
		}
		m, err := FromColumns(cols)
		if err != nil {
			t.Fatalf("fuzz-built columns rejected: %v", err)
		}
		prior := make([]float64, n)
		var sum float64
		for i := range prior {
			prior[i] = float64(data[n*n+i]) + 1
			sum += prior[i]
		}
		for i := range prior {
			prior[i] /= sum
		}
		pStar, err := m.DisguisedDistribution(prior)
		if err != nil {
			t.Fatal(err)
		}
		back, err := m.EstimateInversionFromDistribution(pStar)
		if err != nil {
			t.Fatal(err)
		}
		for i := range prior {
			if math.Abs(back[i]-prior[i]) > 1e-8 {
				t.Fatalf("round trip failed at %d: %v vs %v", i, back[i], prior[i])
			}
		}
	})
}

// FuzzIterativeIsDistribution checks the EM estimator always returns a valid
// distribution regardless of the observed disguised frequencies, across the
// matrix regimes the estimator is documented for: well-conditioned Warner,
// singular (a zero row, so some observed categories are unreachable and the
// iterate must be renormalized), and near-deterministic (tiny off-diagonal
// mass, stressing round-off). Every returned iterate — converged or not —
// must be non-negative and sum to 1 within 1e-9; the only legal nil result
// is the ErrShape case where no observed mass is reachable at all.
func FuzzIterativeIsDistribution(f *testing.F) {
	f.Add([]byte{10, 20, 30}, uint8(3), uint16(100), uint8(0))
	f.Add([]byte{0, 0, 255, 1}, uint8(4), uint16(50), uint8(1))
	f.Add([]byte{1, 0, 0, 200}, uint8(4), uint16(10), uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, nRaw uint8, iters uint16, kind uint8) {
		n := int(nRaw%5) + 2
		if len(data) < n {
			return
		}
		var m *Matrix
		var err error
		switch kind % 3 {
		case 0:
			m, err = Warner(n, 0.6)
		case 1:
			// Singular: every column piles its mass on the first n-1
			// categories uniformly; the last row is all zeros, so any
			// observed mass on c_{n-1} is impossible under the model.
			cols := make([][]float64, n)
			for i := range cols {
				col := make([]float64, n)
				for j := 0; j < n-1; j++ {
					col[j] = 1 / float64(n-1)
				}
				cols[i] = col
			}
			m, err = FromColumns(cols)
		default:
			// Near-deterministic: diagonal 1-(n-1)e, tiny off-diagonal e.
			const eps = 1e-12
			cols := make([][]float64, n)
			for i := range cols {
				col := make([]float64, n)
				for j := range col {
					if i == j {
						col[j] = 1 - float64(n-1)*eps
					} else {
						col[j] = eps
					}
				}
				cols[i] = col
			}
			m, err = FromColumns(cols)
		}
		if err != nil {
			t.Fatal(err)
		}
		pStar := make([]float64, n)
		var sum float64
		for i := range pStar {
			pStar[i] = float64(data[i])
			sum += pStar[i]
		}
		if sum == 0 {
			return
		}
		for i := range pStar {
			pStar[i] /= sum
		}
		est, err := m.EstimateIterativeFromDistribution(pStar, IterativeOptions{
			MaxIterations: int(iters%2000) + 1,
		})
		if est == nil {
			if err == nil {
				t.Fatal("estimator returned nil estimate without error")
			}
			if !errors.Is(err, ErrShape) {
				t.Fatalf("nil estimate with unexpected error %v", err)
			}
			return
		}
		if err != nil && !errors.Is(err, ErrNoConvergence) {
			t.Fatalf("unexpected error: %v", err)
		}
		var total float64
		for i, v := range est {
			if v < 0 || math.IsNaN(v) {
				t.Fatalf("estimate[%d] = %v", i, v)
			}
			total += v
		}
		if math.Abs(total-1) > 1e-9 {
			t.Fatalf("estimate sums to %v (kind %d)", total, kind%3)
		}
	})
}
