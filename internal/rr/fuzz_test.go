package rr

import (
	"math"
	"testing"
)

// FuzzInversionRoundTrip checks that for any diagonally-boosted stochastic
// matrix and any prior assembled from fuzz bytes, disguising the exact
// distribution and inverting returns the original.
func FuzzInversionRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, uint8(3))
	f.Add([]byte{200, 10, 10, 10, 200, 10, 10, 10, 200, 50, 60, 70}, uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, nRaw uint8) {
		n := int(nRaw%5) + 2
		if len(data) < n*n+n {
			return
		}
		cols := make([][]float64, n)
		k := 0
		for i := range cols {
			col := make([]float64, n)
			var sum float64
			for j := range col {
				col[j] = float64(data[k]) * 0.2
				if i == j {
					col[j] += 256 // diagonal boost keeps the matrix invertible
				}
				sum += col[j]
				k++
			}
			for j := range col {
				col[j] /= sum
			}
			cols[i] = col
		}
		m, err := FromColumns(cols)
		if err != nil {
			t.Fatalf("fuzz-built columns rejected: %v", err)
		}
		prior := make([]float64, n)
		var sum float64
		for i := range prior {
			prior[i] = float64(data[n*n+i]) + 1
			sum += prior[i]
		}
		for i := range prior {
			prior[i] /= sum
		}
		pStar, err := m.DisguisedDistribution(prior)
		if err != nil {
			t.Fatal(err)
		}
		back, err := m.EstimateInversionFromDistribution(pStar)
		if err != nil {
			t.Fatal(err)
		}
		for i := range prior {
			if math.Abs(back[i]-prior[i]) > 1e-8 {
				t.Fatalf("round trip failed at %d: %v vs %v", i, back[i], prior[i])
			}
		}
	})
}

// FuzzIterativeIsDistribution checks the EM estimator always returns a valid
// distribution regardless of the observed disguised frequencies.
func FuzzIterativeIsDistribution(f *testing.F) {
	f.Add([]byte{10, 20, 30}, uint8(3), uint16(100))
	f.Add([]byte{0, 0, 255, 1}, uint8(4), uint16(50))
	f.Fuzz(func(t *testing.T, data []byte, nRaw uint8, iters uint16) {
		n := int(nRaw%5) + 2
		if len(data) < n {
			return
		}
		m, err := Warner(n, 0.6)
		if err != nil {
			t.Fatal(err)
		}
		pStar := make([]float64, n)
		var sum float64
		for i := range pStar {
			pStar[i] = float64(data[i])
			sum += pStar[i]
		}
		if sum == 0 {
			return
		}
		for i := range pStar {
			pStar[i] /= sum
		}
		est, err := m.EstimateIterativeFromDistribution(pStar, IterativeOptions{
			MaxIterations: int(iters%2000) + 1,
		})
		if err != nil && est == nil {
			t.Fatalf("estimator returned nil estimate with error %v", err)
		}
		var total float64
		for i, v := range est {
			if v < -1e-9 || math.IsNaN(v) {
				t.Fatalf("estimate[%d] = %v", i, v)
			}
			total += v
		}
		if math.Abs(total-1) > 1e-6 {
			t.Fatalf("estimate sums to %v", total)
		}
	})
}
