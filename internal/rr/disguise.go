package rr

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"optrr/internal/randx"
)

// disguiseChunk is the fixed record-chunk granularity of the batched
// disguise kernel. The partition into chunks depends only on the record
// count, and chunk c always draws from randx.Stream(seed, c), so the output
// is bit-for-bit identical at every worker count. 8192 records amortize the
// per-chunk Source construction to well under a nanosecond per record.
const disguiseChunk = 8192

// batchWorkers resolves the worker count for a batch over the given number
// of chunks: GOMAXPROCS when unset, never more than one per chunk.
func batchWorkers(workers, chunks int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > chunks {
		workers = chunks
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// DisguiseBatch is DisguiseBatchInto with a freshly allocated result slice.
func (m *Matrix) DisguiseBatch(records []int, seed uint64, workers int) ([]int, error) {
	out := make([]int, len(records))
	if err := m.DisguiseBatchInto(out, records, seed, workers); err != nil {
		return nil, err
	}
	return out, nil
}

// DisguiseBatchInto applies randomized response to every record — each
// original category c_i replaced by a draw from column i of M — writing the
// disguised categories into dst (same length as records). The records are
// processed in fixed chunks of disguiseChunk, chunk c drawing from the
// deterministic stream randx.Stream(seed, c), fanned out over the given
// number of workers (zero means GOMAXPROCS): the output depends only on
// (M, records, seed), never on the worker count.
//
// On error — an out-of-range record, reported exactly as Disguise reports
// it, for the first offending record — the contents of dst are unspecified.
func (m *Matrix) DisguiseBatchInto(dst, records []int, seed uint64, workers int) error {
	if len(dst) != len(records) {
		return fmt.Errorf("%w: dst length %d for %d records", ErrShape, len(dst), len(records))
	}
	n := m.N()
	samplers := make([]*randx.Alias, n)
	for i := 0; i < n; i++ {
		a, err := randx.NewAlias(m.Column(i))
		if err != nil {
			return fmt.Errorf("rr: column %d: %w", i, err)
		}
		samplers[i] = a
	}
	total := len(records)
	if total == 0 {
		return nil
	}
	chunks := (total + disguiseChunk - 1) / disguiseChunk
	workers = batchWorkers(workers, chunks)
	if workers == 1 {
		for c := 0; c < chunks; c++ {
			if err := disguiseOneChunk(dst, records, samplers, seed, c); err != nil {
				return err
			}
		}
		return nil
	}
	// The alias tables are immutable after construction, so every worker
	// shares them; all per-chunk state is the chunk's own Source. Chunks are
	// claimed from an atomic cursor; error reporting scans the per-chunk
	// results in chunk order afterwards, so the error surfaced is the one
	// the serial sweep would have hit first.
	errs := make([]error, chunks)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	body := func() {
		for {
			c := int(cursor.Add(1)) - 1
			if c >= chunks {
				return
			}
			errs[c] = disguiseOneChunk(dst, records, samplers, seed, c)
		}
	}
	for w := 1; w < workers; w++ {
		go func() {
			defer wg.Done()
			body()
		}()
	}
	body()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// disguiseOneChunk disguises records[c*disguiseChunk : ...] from the chunk's
// deterministic stream, stopping at the first out-of-range record.
func disguiseOneChunk(dst, records []int, samplers []*randx.Alias, seed uint64, c int) error {
	lo := c * disguiseChunk
	hi := lo + disguiseChunk
	if hi > len(records) {
		hi = len(records)
	}
	r := randx.Stream(seed, uint64(c))
	n := len(samplers)
	for k := lo; k < hi; k++ {
		rec := records[k]
		if rec < 0 || rec >= n {
			return fmt.Errorf("%w: record %d has category %d", ErrShape, k, rec)
		}
		dst[k] = samplers[rec].Draw(r)
	}
	return nil
}
